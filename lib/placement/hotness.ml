(* Epoch-aggregated per-page access telemetry.

   Every user memory access sampled from the pipeline lands here as one
   counter bump keyed by (pid, page); the policy reads whole-epoch
   aggregates and [decay] ages them out with a per-epoch halving, so a
   page's history fades in a few epochs instead of pinning a decision
   forever. Iteration order is sorted by key — decisions derived from a
   fold over this table are deterministic per run. *)

module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr

let nnodes = List.length Node_id.all

type page = {
  born : int; (* epoch index at which tracking of this page started *)
  reads : int array; (* per node index *)
  writes : int array;
  remote : int array; (* accesses that crossed the interconnect *)
}

type t = {
  pages : (int * int, page) Hashtbl.t; (* (pid, page-base vaddr) *)
  mutable samples : int;
}

let create () = { pages = Hashtbl.create 1024; samples = 0 }

let fresh_page ~now =
  {
    born = now;
    reads = Array.make nnodes 0;
    writes = Array.make nnodes 0;
    remote = Array.make nnodes 0;
  }

let touch t ~pid ~node ~vaddr ~write ~remote ~now =
  let key = (pid, Addr.page_base vaddr) in
  let p =
    match Hashtbl.find_opt t.pages key with
    | Some p -> p
    | None ->
        let p = fresh_page ~now in
        Hashtbl.add t.pages key p;
        p
  in
  let i = Node_id.index node in
  if write then p.writes.(i) <- p.writes.(i) + 1 else p.reads.(i) <- p.reads.(i) + 1;
  if remote then p.remote.(i) <- p.remote.(i) + 1;
  t.samples <- t.samples + 1

let page_stats t ~pid ~vaddr = Hashtbl.find_opt t.pages (pid, Addr.page_base vaddr)

(* Halve every counter; drop pages that age to silence so the table
   tracks the working set, not the whole address-space history. *)
let decay t =
  let dead =
    Hashtbl.fold
      (fun key p acc ->
        let live = ref false in
        let halve a =
          Array.iteri
            (fun i v ->
              a.(i) <- v asr 1;
              if a.(i) > 0 then live := true)
            a
        in
        halve p.reads;
        halve p.writes;
        halve p.remote;
        if !live then acc else key :: acc)
      t.pages []
  in
  List.iter (Hashtbl.remove t.pages) dead

let to_sorted t =
  Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let size t = Hashtbl.length t.pages
let samples t = t.samples
