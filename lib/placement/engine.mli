(** Adaptive page-placement engine (hotness-driven replicate / migrate /
    remote).

    Samples per-page access telemetry from the memory pipeline into
    {!Hotness} aggregates, asks a {!Policy} for verdicts at
    scheduling-quantum epoch boundaries, and executes them through the
    kernel's own paths: replica frames come from
    [Stramash_fault.alloc_frame] (hotplug donation included), table
    rewrites go through charged [Env.pt_io] under the origin PTL, and
    every install/collapse pays a cross-ISA TLB-shootdown IPI round.
    Decisions are a pure function of the (seeded) simulation, so runs are
    deterministic and Paranoid-auditable. Supports the Stramash
    personality only. *)

type t

val create :
  ?epoch:int ->
  ?max_actions:int ->
  ?payback:int ->
  ?min_remote:int ->
  ?cooldown:int ->
  ?warmup:int ->
  policy:Policy.t ->
  Stramash_core.Stramash_os.t ->
  t
(** [epoch] is in scheduling quanta (default 4); [max_actions] caps
    replications+migrations per epoch tick (default 64); [payback] is
    the amortisation horizon in epochs; [min_remote] the remote-miss
    noise floor below which the adaptive policy never acts; [cooldown]
    the number of epochs a recently-written page stays barred from
    re-replication (default 8); [warmup] the epochs of observed page
    history the adaptive policy demands before acting (default 5). *)

val policy : t -> Policy.t
val epoch : t -> int

val install_write_hook : t -> unit
(** Register the replica-collapse trigger with the fault path. Called
    once by [Machine.attach_placement]. *)

val register_proc : t -> Stramash_kernel.Process.t -> unit
(** Called by [Machine.load] for every process the engine manages. *)

val sample :
  t -> pid:int -> node:Stramash_sim.Node_id.t -> vaddr:int -> write:bool -> latency:int -> unit
(** One user access observed by the pipeline. Free of simulated cost —
    classification reuses the latency the access already paid. *)

val tick : t -> now:int -> unit
(** Quantum-boundary hook: every [epoch] quanta (with both kernels
    alive), run the policy over the hotness table, execute up to
    [max_actions] verdicts, then decay the aggregates. *)

val on_write_fault :
  t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> vaddr:int -> bool
(** The write hook body: collapse the replica covering [vaddr], if any.
    True when a collapse happened (the faulting access then retries
    against the restored leaf). *)

val reconcile : t -> node:Stramash_sim.Node_id.t -> unit
(** Restore [node]'s half of any replica collapsed in degraded mode while
    it was down; the runner calls this during restart, after the
    checkpoint restore and before any thread executes. *)

val drain : t -> proc:Stramash_kernel.Process.t -> unit
(** Collapse every replica the process holds so the exit sweep sees
    pre-placement mappings; called by [Machine.exit_process]. *)

val live_replicas : t -> int
val tlb_shootdowns : t -> int

val counters : t -> (string * int) list
(** The [placement.*] counter snapshot folded into metrics exports. *)
