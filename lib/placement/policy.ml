(* Placement policies over one epoch's hotness view of a page.

   [Static_stramash] is the paper's native strategy: every remote access
   goes over the coherent interconnect, nothing ever moves. [Static_shm]
   mimics Popcorn-SHM: any page the far node read remotely gets a local
   replica, writes be damned (the write-collapse ping-pong is exactly how
   SHM loses on write-shared pages). [Adaptive] is the cost model: an
   action is taken only when the epoch's measured remote misses, valued
   at the Table-2 local/remote latency gap and amortised over a payback
   horizon, outweigh the copy plus the cross-ISA TLB-shootdown round it
   will eventually cost to undo. *)

module Node_id = Stramash_sim.Node_id

type t = Static_stramash | Static_shm | Adaptive

let to_string = function
  | Static_stramash -> "static-stramash"
  | Static_shm -> "static-shm"
  | Adaptive -> "adaptive"

let of_string = function
  | "static-stramash" -> Some Static_stramash
  | "static-shm" -> Some Static_shm
  | "adaptive" -> Some Adaptive
  | _ -> None

let all = [ Static_stramash; Static_shm; Adaptive ]

type verdict = Keep | Replicate of Node_id.t | Migrate of Node_id.t

let verdict_to_string = function
  | Keep -> "keep"
  | Replicate n -> "replicate:" ^ Node_id.to_string n
  | Migrate n -> "migrate:" ^ Node_id.to_string n

(* One page's decision inputs: epoch counters plus the cost constants the
   engine derived from the cache configuration. [gain_per_miss] is the
   far node's remote-vs-local DRAM latency gap; [act_cost] the estimated
   page copy plus one shootdown round. *)
type view = {
  home : Node_id.t;  (** node whose memory controller holds the frame *)
  reads : int array;  (** per node index *)
  writes : int array;
  remote : int array;
  gain_per_miss : int;
  act_cost : int;
  payback : int;  (** epochs over which [act_cost] must amortise *)
  min_remote : int;  (** noise floor for the adaptive policy *)
  age : int;  (** epochs this page has been tracked *)
  warmup : int;  (** epochs of observation the adaptive policy demands *)
}

let decide policy v =
  let peer = Node_id.other v.home in
  let pi = Node_id.index peer and hi = Node_id.index v.home in
  let p_remote = v.remote.(pi) in
  match policy with
  | Static_stramash -> Keep
  | Static_shm -> if p_remote > 0 then Replicate peer else Keep
  | Adaptive ->
      let writes_total = v.writes.(pi) + v.writes.(hi) in
      let benefit = p_remote * v.gain_per_miss * v.payback in
      (* [age < warmup] defers any action on a freshly-tracked page: a
         first write phase has not had a chance to show up yet, and
         acting on first-iteration read heat is how phased
         read-then-write workloads get dragged into replicate/collapse
         churn. *)
      if v.age < v.warmup then Keep
      else if writes_total = 0 && p_remote > v.min_remote && benefit > v.act_cost then
        Replicate peer
      else if
        (* the far node owns the page outright, writes included: move the
           frame home rather than bounce replicas *)
        v.writes.(pi) > 0
        && v.reads.(hi) + v.writes.(hi) = 0
        && p_remote > v.min_remote
        && benefit > 2 * v.act_cost
      then Migrate peer
      else Keep
