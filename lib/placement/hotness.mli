(** Epoch-aggregated per-page access telemetry.

    One counter record per (pid, page): per-node reads, writes, and
    accesses that crossed the interconnect. [decay] halves everything at
    each epoch boundary so stale history (e.g. a benchmark's init-phase
    writes) ages out instead of pinning decisions. *)

type page = {
  born : int;  (** epoch index at which tracking of this page started *)
  reads : int array;  (** per {!Stramash_sim.Node_id.index} *)
  writes : int array;
  remote : int array;  (** accesses charged at remote-memory latency *)
}

type t

val create : unit -> t

val touch :
  t ->
  pid:int ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  remote:bool ->
  now:int ->
  unit
(** One sampled access; [vaddr] is normalised to its page base. [now] is
    the current epoch index, recorded as [born] on first touch. *)

val page_stats : t -> pid:int -> vaddr:int -> page option

val decay : t -> unit
(** Halve every counter and drop pages that age to silence. *)

val to_sorted : t -> ((int * int) * page) list
(** Snapshot sorted by (pid, page vaddr) — the deterministic iteration
    order policy decisions are made in. *)

val size : t -> int
val samples : t -> int
