(** Placement policies over one epoch's hotness view of a page.

    [Static_stramash] never moves anything (the paper's direct remote
    access). [Static_shm] replicates on any remote read, Popcorn-SHM
    style, accepting the write-collapse ping-pong. [Adaptive] weighs the
    epoch's measured remote misses, valued at the Table-2 local/remote
    latency gap, against the copy + TLB-shootdown cost of acting. *)

type t = Static_stramash | Static_shm | Adaptive

val to_string : t -> string
val of_string : string -> t option
val all : t list

type verdict =
  | Keep
  | Replicate of Stramash_sim.Node_id.t  (** install a replica at this reader *)
  | Migrate of Stramash_sim.Node_id.t  (** move the home frame to this node *)

val verdict_to_string : verdict -> string

type view = {
  home : Stramash_sim.Node_id.t;
  reads : int array;
  writes : int array;
  remote : int array;
  gain_per_miss : int;
  act_cost : int;
  payback : int;
  min_remote : int;
  age : int;
  warmup : int;
}

val decide : t -> view -> verdict
(** Pure function of the view — unit-testable and deterministic. *)
