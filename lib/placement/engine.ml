(* The adaptive page-placement engine.

   Samples flow in from the runner's memory pipeline (one [sample] per
   user access, free of simulated cost — sampling must never perturb the
   cycle-exact engines); decisions fire at scheduling-quantum boundaries
   every [epoch] quanta. Three actions exist:

   - {b replicate}: a read-hot remotely-homed page gets a local copy at
     the reading node. Every kernel's leaf for the page is downgraded to
     read-only first (with a cross-ISA TLB-shootdown round charged at the
     Fig. 5-6 IPI cost), so any later write must fault — which is the
     collapse trigger. The replica frame is never writable, so it stays
     bit-identical to the home frame by construction.
   - {b collapse}: the write hook registered with [Stramash_fault] fires
     on a write to a read-only-mapped page; under the origin PTL (the
     PR-4 fencing tokens keep this honest across crashes) the
     pre-replication leaves are restored, both TLBs shot down, and the
     replica frame freed. If the peer kernel is dead the survivor only
     restores its own leaf and leaves the rest to [reconcile], which the
     runner calls at the peer's restart before any thread executes.
   - {b migrate}: a page written exclusively by the far node moves its
     home frame there — allocated through [Stramash_fault.alloc_frame],
     which rides the Global_alloc hotplug-donation path on exhaustion —
     and every table is re-pointed at the new frame.

   Everything the engine touches is charged through the ordinary cache
   pipeline ([Env.charge_*], [Env.pt_io]), so placement costs land on the
   meters the same way kernel work does, in every cache-engine mode. *)

module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Latency = Stramash_mem.Latency
module Cache_sim = Stramash_cache.Cache_sim
module Config = Stramash_cache.Config
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Frame_alloc = Stramash_kernel.Frame_alloc
module Page_table = Stramash_kernel.Page_table
module Pte = Stramash_kernel.Pte
module Tlb = Stramash_kernel.Tlb
module Process = Stramash_kernel.Process
module Ipi = Stramash_interconnect.Ipi
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Stramash_ptl = Stramash_core.Stramash_ptl
module Plan = Stramash_fault_inject.Plan
module Integrity = Stramash_fault_inject.Integrity
module Trace = Stramash_obs.Trace

(* Pre-replication leaf image of one kernel's table: [None] means the
   kernel had no leaf and the engine installed a temporary read-only one
   (to be unmapped again at collapse). *)
type saved_leaf = { s_frame : int (* frame number *); s_flags : Pte.flags }

type replica = {
  r_pid : int;
  r_vaddr : int; (* page base *)
  r_reader : Node_id.t;
  r_replica_frame : int; (* paddr *)
  r_home_frame : int; (* paddr *)
  r_saved : (Node_id.t * saved_leaf option) list;
  mutable r_pending : Node_id.t list;
      (* nodes whose tables still hold post-replication leaves after a
         degraded collapse — restored by [reconcile] at their restart *)
}

type counters = {
  mutable epochs : int;
  mutable replications : int;
  mutable collapses : int;
  mutable degraded_collapses : int;
  mutable reconciles : int;
  mutable migrations : int;
  mutable shootdown_rounds : int;
  mutable ptl_denied : int;
}

type t = {
  policy : Policy.t;
  epoch : int; (* quanta per epoch *)
  max_actions : int; (* replications+migrations per epoch tick *)
  payback : int;
  min_remote : int;
  cool : int; (* epochs a write-collapsed page is barred from re-replication *)
  warm : int; (* epochs of page history the adaptive policy demands before acting *)
  hotness : Hotness.t;
  env : Env.t;
  cache : Cache_sim.t;
  faults : Stramash_fault.t;
  procs : (int, Process.t) Hashtbl.t;
  replicas : (int * int, replica) Hashtbl.t; (* (pid, page vaddr) *)
  cooldown : (int * int, int) Hashtbl.t; (* (pid, page vaddr) -> epoch when eligible again *)
  mutable quanta : int;
  c : counters;
}

let policy t = t.policy
let epoch t = t.epoch

let create ?(epoch = 4) ?(max_actions = 64) ?(payback = 4) ?(min_remote = 16) ?(cooldown = 8)
    ?(warmup = 5) ~policy os =
  let env = Stramash_os.env os in
  let t =
    {
      policy;
      epoch = max 1 epoch;
      max_actions;
      payback = max 1 payback;
      min_remote;
      cool = max 0 cooldown;
      warm = max 0 warmup;
      hotness = Hotness.create ();
      env;
      cache = env.Env.cache;
      faults = Stramash_os.faults os;
      procs = Hashtbl.create 4;
      replicas = Hashtbl.create 64;
      cooldown = Hashtbl.create 64;
      quanta = 0;
      c =
        {
          epochs = 0;
          replications = 0;
          collapses = 0;
          degraded_collapses = 0;
          reconciles = 0;
          migrations = 0;
          shootdown_rounds = 0;
          ptl_denied = 0;
        };
    }
  in
  t

let register_proc t proc = Hashtbl.replace t.procs proc.Process.pid proc

(* ---------- sampling (cost-free) ---------- *)

let sample t ~pid ~node ~vaddr ~write ~latency =
  let remote =
    match Cache_sim.latency_class t.cache ~node latency with
    | `Remote_mem -> true
    | `Local_mem | `Cache -> false
  in
  (* Write recency is the churn predictor: a page written within the last
     [cool] epochs is barred from replication, so phased read-then-write
     workloads (IS ranks) never enter the replicate/fault/collapse cycle,
     while init-once-read-forever data (CG's matrix) becomes eligible as
     soon as its init writes age out. *)
  if write then Hashtbl.replace t.cooldown (pid, Addr.page_base vaddr) (t.c.epochs + t.cool);
  Hotness.touch t.hotness ~pid ~node ~vaddr ~write ~remote ~now:t.c.epochs

(* ---------- helpers ---------- *)

let silent_io t node =
  {
    Page_table.phys = t.env.Env.phys;
    charge_read = ignore;
    charge_write = ignore;
    alloc_table = (fun () -> Kernel.alloc_table_page (Env.kernel t.env node));
  }

let frame_owner t paddr =
  List.find_opt
    (fun n -> Frame_alloc.owns_address (Env.kernel t.env n).Kernel.frames paddr)
    Node_id.all

let remote_owned_for t ~node ~frame_paddr =
  match frame_owner t frame_paddr with
  | Some owner -> not (Node_id.equal owner node)
  | None -> true

let leaf_of t ~(proc : Process.t) ~node ~vaddr =
  match Process.mm proc node with
  | None -> None
  | Some mm -> Page_table.walk mm.Process.pgtable (silent_io t node) ~vaddr

(* Invalidate both kernels' cached translations for the page. The actor's
   own flush is local; the peer's is a cross-ISA shootdown — one IPI
   round charged to the actor's meter (the peer is interrupted, not
   stalled). A dead peer has no TLB state to shoot down. *)
let shootdown_round t ~actor ~vaddr =
  let vpage = Addr.page_of vaddr in
  Tlb.flush_page (Env.tlb t.env actor) ~vpage;
  let peer = Node_id.other actor in
  if Env.node_alive t.env peer then begin
    Tlb.shootdown (Env.tlb t.env peer) ~vpage;
    Meter.add (Env.meter t.env actor) Ipi.tlb_shootdown_cycles;
    t.c.shootdown_rounds <- t.c.shootdown_rounds + 1
  end

let free_frame t paddr =
  match frame_owner t paddr with
  | Some owner ->
      let frames = (Env.kernel t.env owner).Kernel.frames in
      if Frame_alloc.is_allocated frames paddr then Frame_alloc.free frames paddr
  | None -> ()

let note op ~node ~vaddr =
  if Trace.enabled () then
    Trace.instant ~node
      ~flow:(Trace.fresh_flow ~node)
      ~subsys:"placement" ~op
      ~tags:[ ("vaddr", Printf.sprintf "0x%x" vaddr) ]
      ()

(* ---------- integrity (silent-data-corruption defence) ---------- *)

(* Replica pairs are the repair substrate for the SDC campaign: both
   frames are read-only while the pair exists, so each is a valid clean
   copy of the other. [pair] seals them into the plan's fingerprint
   store at replication; [check_and_unpair] is the choke point run
   before anything dissolves a pair (collapse, drain) — a last charged
   verify-and-repair, so corruption can never slip out of the tracked
   set when its repair source goes away. Plans without a corruption
   schedule have no store and skip all of this. *)
let integrity t =
  match Stramash_fault.inject t.faults with
  | Some plan -> Plan.integrity plan
  | None -> None

let pair_replica t (rep : replica) =
  match integrity t with
  | None -> ()
  | Some st ->
      let home_node =
        match frame_owner t rep.r_home_frame with
        | Some owner -> owner
        | None -> Node_id.other rep.r_reader
      in
      Integrity.pair st t.env.Env.phys ~home:rep.r_home_frame ~home_node
        ~replica:rep.r_replica_frame ~replica_node:rep.r_reader

let check_and_unpair t ~actor (rep : replica) =
  match integrity t with
  | None -> ()
  | Some st ->
      let meter = Env.meter t.env actor in
      let s =
        Integrity.check_pair st t.env.Env.phys ~home:rep.r_home_frame
          ~replica:rep.r_replica_frame ~now:(Meter.get meter)
      in
      Meter.add meter (s.Integrity.ts_scanned * Integrity.scan_cost_cycles);
      List.iter
        (fun (r : Integrity.repair) ->
          Meter.add meter
            (if Node_id.equal r.Integrity.rp_src r.Integrity.rp_dst then
               Integrity.repair_local_cycles
             else Integrity.repair_cross_cycles))
        s.Integrity.ts_repairs;
      Integrity.unpair st ~home:rep.r_home_frame ~replica:rep.r_replica_frame

(* ---------- replicate ---------- *)

(* Install a local copy of [vaddr]'s page at [reader]. Preconditions
   checked here rather than assumed: both kernels alive and holding mms
   (a kernel without an mm could later fault the page in writable and
   bypass the collapse trigger), every existing leaf pointing at the same
   frame (pages already diverged by the Popcorn fallback path are not
   ours to manage). All table writes happen under the origin PTL so the
   PR-4 fencing epochs apply. *)
let replicate t ~(proc : Process.t) ~vaddr ~reader =
  let vaddr = Addr.page_base vaddr in
  if not (List.for_all (fun n -> Env.node_alive t.env n) Node_id.all) then false
  else if not (List.for_all (fun n -> Process.mm proc n <> None) Node_id.all) then false
  else begin
    let leaves = List.map (fun n -> (n, leaf_of t ~proc ~node:n ~vaddr)) Node_id.all in
    let frames =
      List.filter_map (function _, Some (pfn, _) -> Some pfn | _, None -> None) leaves
    in
    match frames with
    | [] -> false
    | pfn :: rest when List.for_all (Int.equal pfn) rest -> (
        let home_frame = pfn lsl Addr.page_shift in
        let ptl = Stramash_fault.ptl_for t.faults ~proc in
        match Stramash_ptl.acquire ptl ~actor:reader with
        | Error _ ->
            t.c.ptl_denied <- t.c.ptl_denied + 1;
            false
        | Ok token -> (
            match Stramash_fault.alloc_frame t.faults ~node:reader with
            | Error _ ->
                ignore (Stramash_ptl.release ptl ~token);
                false
            | Ok replica_frame ->
                (* the copy itself: a bulk read of the home page and a
                   bulk write of the replica, performed by the reader *)
                Env.charge_bytes_load t.env reader ~paddr:home_frame ~len:Addr.page_size;
                Env.charge_bytes_store t.env reader ~paddr:replica_frame ~len:Addr.page_size;
                Phys_mem.copy_page t.env.Env.phys ~src:home_frame ~dst:replica_frame;
                let saved =
                  List.map
                    (fun (n, leaf) ->
                      let mm = Process.mm_exn proc n in
                      let io = Env.pt_io t.env ~actor:reader ~owner:n in
                      let target =
                        if Node_id.equal n reader then replica_frame else home_frame
                      in
                      let flags =
                        match leaf with
                        | Some (_, f) -> f
                        | None -> Pte.default_flags
                      in
                      Page_table.map mm.Process.pgtable io ~vaddr
                        ~frame:(target lsr Addr.page_shift)
                        {
                          flags with
                          Pte.writable = false;
                          remote_owned = remote_owned_for t ~node:n ~frame_paddr:target;
                        };
                      (n, Option.map (fun (pfn, f) -> { s_frame = pfn; s_flags = f }) leaf))
                    leaves
                in
                shootdown_round t ~actor:reader ~vaddr;
                let rep =
                  {
                    r_pid = proc.Process.pid;
                    r_vaddr = vaddr;
                    r_reader = reader;
                    r_replica_frame = replica_frame;
                    r_home_frame = home_frame;
                    r_saved = saved;
                    r_pending = [];
                  }
                in
                Hashtbl.replace t.replicas (proc.Process.pid, vaddr) rep;
                pair_replica t rep;
                ignore (Stramash_ptl.release ptl ~token);
                t.c.replications <- t.c.replications + 1;
                note "replicate" ~node:reader ~vaddr;
                true))
    | _ -> false
  end

(* ---------- collapse ---------- *)

let restore_leaf t ~(proc : Process.t) ~actor ~node ~vaddr saved =
  match Process.mm proc node with
  | None -> ()
  | Some mm -> (
      let io = Env.pt_io t.env ~actor ~owner:node in
      match saved with
      | Some { s_frame; s_flags } ->
          Page_table.map mm.Process.pgtable io ~vaddr ~frame:s_frame s_flags
      | None -> ignore (Page_table.unmap mm.Process.pgtable io ~vaddr : bool))

(* Undo a replication: restore every kernel's pre-replication leaf, shoot
   down both TLBs, free the replica frame. The replica was never
   writable, so home and replica are bit-identical and no data moves —
   the cost is the lock round, the table writes and the shootdown IPI.
   With the peer dead only the writer's own leaf can be restored; the
   rest is parked on [r_pending] for [reconcile]. *)
let collapse t ~(proc : Process.t) (rep : replica) ~writer =
  let vaddr = rep.r_vaddr in
  let peer = Node_id.other writer in
  (* Both frames are still read-only here (the triggering write has not
     landed yet), so this is the last moment each is a trustworthy
     repair source for the other — even the degraded path must dissolve
     the pair now, before the writer's restored leaf lets divergence in. *)
  check_and_unpair t ~actor:writer rep;
  if Env.node_alive t.env peer then begin
    let ptl = Stramash_fault.ptl_for t.faults ~proc in
    let token =
      match Stramash_ptl.acquire ptl ~actor:writer with
      | Ok token -> Some token
      | Error _ ->
          (* kernel entries are serialised, so this is defensive: restore
             the mappings anyway (the replica is read-only, so state is
             consistent either way) and count the anomaly *)
          t.c.ptl_denied <- t.c.ptl_denied + 1;
          None
    in
    List.iter (fun (n, saved) -> restore_leaf t ~proc ~actor:writer ~node:n ~vaddr saved)
      rep.r_saved;
    shootdown_round t ~actor:writer ~vaddr;
    free_frame t rep.r_replica_frame;
    (match token with Some token -> ignore (Stramash_ptl.release ptl ~token) | None -> ());
    Hashtbl.remove t.replicas (rep.r_pid, vaddr);
    t.c.collapses <- t.c.collapses + 1;
    note "collapse" ~node:writer ~vaddr
  end
  else begin
    (* degraded: the peer's table is checkpointed away; fix only our own
       leaf now, reconcile the peer's (and free the replica) at restart *)
    (match List.assoc_opt writer rep.r_saved with
    | Some saved -> restore_leaf t ~proc ~actor:writer ~node:writer ~vaddr saved
    | None -> ());
    Tlb.flush_page (Env.tlb t.env writer) ~vpage:(Addr.page_of vaddr);
    rep.r_pending <- [ peer ];
    t.c.degraded_collapses <- t.c.degraded_collapses + 1;
    note "collapse-degraded" ~node:writer ~vaddr
  end

(* The write hook: a write faulted on a mapped-but-read-only page. If it
   is one of ours, collapse; the retried access then sees the restored
   (writable, or absent-and-refaultable) leaf. *)
let on_write_fault t ~(proc : Process.t) ~node ~vaddr =
  match Hashtbl.find_opt t.replicas (proc.Process.pid, Addr.page_base vaddr) with
  | Some rep when rep.r_pending = [] ->
      (* a write just burned this page: bar re-replication for a while so
         write-phased workloads don't churn replicate/collapse rounds *)
      Hashtbl.replace t.cooldown (rep.r_pid, rep.r_vaddr) (t.c.epochs + t.cool);
      collapse t ~proc rep ~writer:node;
      true
  | _ -> false

(* Restore [node]'s half of any replica collapsed while it was down. The
   runner calls this inside the restart path, after the checkpoint
   restore and before any thread executes — so the stale replica leaf the
   checkpoint faithfully reinstalled is corrected before it can be read. *)
let reconcile t ~node =
  let fixups =
    Hashtbl.fold
      (fun _ rep acc -> if List.mem node rep.r_pending then rep :: acc else acc)
      t.replicas []
    |> List.sort (fun a b -> compare (a.r_pid, a.r_vaddr) (b.r_pid, b.r_vaddr))
  in
  List.iter
    (fun rep ->
      (match Hashtbl.find_opt t.procs rep.r_pid with
      | Some proc -> (
          match List.assoc_opt node rep.r_saved with
          | Some saved -> restore_leaf t ~proc ~actor:node ~node ~vaddr:rep.r_vaddr saved
          | None -> ())
      | None -> ());
      Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of rep.r_vaddr);
      rep.r_pending <- List.filter (fun n -> not (Node_id.equal n node)) rep.r_pending;
      if rep.r_pending = [] then begin
        free_frame t rep.r_replica_frame;
        Hashtbl.remove t.replicas (rep.r_pid, rep.r_vaddr);
        t.c.reconciles <- t.c.reconciles + 1;
        note "reconcile" ~node ~vaddr:rep.r_vaddr
      end)
    fixups

(* ---------- migrate ---------- *)

(* Move a page's home frame to [dst]: allocate there (riding the hotplug
   donation path on exhaustion), copy, re-point every kernel's leaf at
   the new frame (recomputing the remote-owned mirror from allocator
   ownership), shoot down both TLBs, free the old frame. *)
let migrate t ~(proc : Process.t) ~vaddr ~dst ~old_frame =
  let vaddr = Addr.page_base vaddr in
  if not (List.for_all (fun n -> Env.node_alive t.env n) Node_id.all) then false
  else begin
    let ptl = Stramash_fault.ptl_for t.faults ~proc in
    match Stramash_ptl.acquire ptl ~actor:dst with
    | Error _ ->
        t.c.ptl_denied <- t.c.ptl_denied + 1;
        false
    | Ok token -> (
        match Stramash_fault.alloc_frame t.faults ~node:dst with
        | Error _ ->
            ignore (Stramash_ptl.release ptl ~token);
            false
        | Ok new_frame ->
            Env.charge_bytes_load t.env dst ~paddr:old_frame ~len:Addr.page_size;
            Env.charge_bytes_store t.env dst ~paddr:new_frame ~len:Addr.page_size;
            Phys_mem.copy_page t.env.Env.phys ~src:old_frame ~dst:new_frame;
            List.iter
              (fun n ->
                match leaf_of t ~proc ~node:n ~vaddr with
                | Some (pfn, flags) when pfn = old_frame lsr Addr.page_shift ->
                    let mm = Process.mm_exn proc n in
                    let io = Env.pt_io t.env ~actor:dst ~owner:n in
                    Page_table.map mm.Process.pgtable io ~vaddr
                      ~frame:(new_frame lsr Addr.page_shift)
                      {
                        flags with
                        Pte.remote_owned =
                          remote_owned_for t ~node:n ~frame_paddr:new_frame;
                      }
                | _ -> ())
              Node_id.all;
            shootdown_round t ~actor:dst ~vaddr;
            free_frame t old_frame;
            ignore (Stramash_ptl.release ptl ~token);
            t.c.migrations <- t.c.migrations + 1;
            note "migrate" ~node:dst ~vaddr;
            true)
  end

(* ---------- the epoch tick ---------- *)

let lat_of t node = Config.latencies (Cache_sim.config t.cache) node

let view_for t ~home (p : Hotness.page) =
  let reader = Node_id.other home in
  let l = lat_of t reader in
  let gain = max 1 (l.Latency.remote_mem - l.Latency.mem) in
  let lines = Addr.page_size / 64 in
  let copy = lines * (l.Latency.remote_mem + l.Latency.mem) in
  {
    Policy.home;
    reads = p.Hotness.reads;
    writes = p.Hotness.writes;
    remote = p.Hotness.remote;
    gain_per_miss = gain;
    act_cost = copy + Ipi.tlb_shootdown_cycles;
    payback = t.payback;
    min_remote = t.min_remote;
    age = t.c.epochs - p.Hotness.born;
    warmup = t.warm;
  }

let decide_and_act t =
  (* Frames shared between processes would make per-proc leaf rewrites
     unsound; the single-process NPB harness is the supported shape. *)
  if Hashtbl.length t.procs = 1 then begin
    let actions = ref 0 in
    List.iter
      (fun ((pid, vaddr), stats) ->
        if !actions < t.max_actions && not (Hashtbl.mem t.replicas (pid, vaddr)) then
          match Hashtbl.find_opt t.procs pid with
          | None -> ()
          | Some proc -> (
              let leaves =
                List.filter_map
                  (fun n -> Option.map fst (leaf_of t ~proc ~node:n ~vaddr))
                  Node_id.all
              in
              match leaves with
              | pfn :: rest when List.for_all (Int.equal pfn) rest -> (
                  let frame = pfn lsl Addr.page_shift in
                  match Layout.home_node frame with
                  | None -> ()
                  | Some home -> (
                      match Policy.decide t.policy (view_for t ~home stats) with
                      | Policy.Keep -> ()
                      | Policy.Replicate reader ->
                          let cooling =
                            match Hashtbl.find_opt t.cooldown (pid, vaddr) with
                            | Some until -> t.c.epochs < until
                            | None -> false
                          in
                          if (not cooling) && replicate t ~proc ~vaddr ~reader then
                            incr actions
                      | Policy.Migrate dst ->
                          if migrate t ~proc ~vaddr ~dst ~old_frame:frame then incr actions))
              | _ -> ()))
      (Hotness.to_sorted t.hotness)
  end

let tick t ~now:_ =
  t.quanta <- t.quanta + 1;
  if t.quanta mod t.epoch = 0 && List.for_all (fun n -> Env.node_alive t.env n) Node_id.all
  then begin
    t.c.epochs <- t.c.epochs + 1;
    decide_and_act t;
    Hotness.decay t.hotness
  end

(* ---------- teardown ---------- *)

(* Collapse every replica a process still holds, so the §6.4 exit sweep
   sees exactly the mappings (and allocator state) it would have seen
   without placement. Restores only live kernels' leaves — a dead
   kernel's table is already checkpointed away and owns no frames the
   sweep will visit. *)
let drain t ~(proc : Process.t) =
  let mine =
    Hashtbl.fold
      (fun _ rep acc -> if rep.r_pid = proc.Process.pid then rep :: acc else acc)
      t.replicas []
    |> List.sort (fun a b -> compare a.r_vaddr b.r_vaddr)
  in
  List.iter
    (fun rep ->
      (* never-collapsed pairs are still sealed; degraded-collapsed ones
         were unpaired at collapse time and this is a no-op for them *)
      (if rep.r_pending = [] then
         let actor =
           if Env.node_alive t.env rep.r_reader then rep.r_reader
           else Node_id.other rep.r_reader
         in
         check_and_unpair t ~actor rep);
      List.iter
        (fun (n, saved) ->
          if Env.node_alive t.env n && not (List.mem n rep.r_pending) then begin
            restore_leaf t ~proc ~actor:n ~node:n ~vaddr:rep.r_vaddr saved;
            Tlb.flush_page (Env.tlb t.env n) ~vpage:(Addr.page_of rep.r_vaddr)
          end)
        rep.r_saved;
      free_frame t rep.r_replica_frame;
      Hashtbl.remove t.replicas (rep.r_pid, rep.r_vaddr);
      t.c.collapses <- t.c.collapses + 1)
    mine;
  Hashtbl.remove t.procs proc.Process.pid

(* ---------- reporting ---------- *)

let live_replicas t = Hashtbl.length t.replicas

let tlb_shootdowns t =
  List.fold_left (fun acc n -> acc + Tlb.shootdowns (Env.tlb t.env n)) 0 Node_id.all

let counters t =
  [
    ("placement.samples", Hotness.samples t.hotness);
    ("placement.pages_tracked", Hotness.size t.hotness);
    ("placement.epochs", t.c.epochs);
    ("placement.replications", t.c.replications);
    ("placement.collapses", t.c.collapses);
    ("placement.degraded_collapses", t.c.degraded_collapses);
    ("placement.reconciles", t.c.reconciles);
    ("placement.migrations", t.c.migrations);
    ("placement.live_replicas", live_replicas t);
    ("placement.shootdown_rounds", t.c.shootdown_rounds);
    ("placement.tlb_shootdowns", tlb_shootdowns t);
    ("placement.ptl_denied", t.c.ptl_denied);
  ]

(* Wire the collapse trigger into the fault path. Separate from [create]
   so callers construct the engine before deciding which machine owns
   it; [Machine.attach_placement] calls this exactly once. *)
let install_write_hook t =
  Stramash_fault.set_write_hook t.faults (fun ~proc ~node ~vaddr ->
      on_write_fault t ~proc ~node ~vaddr)
