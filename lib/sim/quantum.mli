(** Scheduling-quantum boundary hooks.

    The runner executes threads in fuel-bounded quanta; subsystems that
    want to act between quanta (e.g. the placement engine's epoch tick)
    register a hook here instead of patching the scheduler loop. Hooks
    fire in registration order with the smallest-node wall clock, so
    their effects are deterministic per run.

    Registration order {e is} the firing order — a documented, tested
    contract. The implementation stores hooks in a flat array indexed by
    registration rank, so the order cannot depend on closure identity,
    hash-table iteration, or the OCaml version; registering a new hook
    never reorders the hooks already present. A hook registered from
    inside a {!fire} sweep first fires on the following quantum. *)

type hook = now:int -> unit

type t

val create : unit -> t
val add : t -> hook -> unit
val count : t -> int

val fire : t -> now:int -> unit
(** Run every hook, oldest registration first. *)
