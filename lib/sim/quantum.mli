(** Scheduling-quantum boundary hooks.

    The runner executes threads in fuel-bounded quanta; subsystems that
    want to act between quanta (e.g. the placement engine's epoch tick)
    register a hook here instead of patching the scheduler loop. Hooks
    fire in registration order with the smallest-node wall clock, so
    their effects are deterministic per run. *)

type hook = now:int -> unit

type t

val create : unit -> t
val add : t -> hook -> unit
val count : t -> int

val fire : t -> now:int -> unit
(** Run every hook, oldest registration first. *)
