(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from an explicit [t]
    so that whole-machine runs are reproducible from a single seed. *)

type t

val create : seed:int64 -> t
(** Fresh generator from a 64-bit seed. *)

val split : t -> t
(** Derive an independent stream; the parent remains usable. *)

val copy : t -> t
(** Duplicate the exact state (same future draws). *)

val next_int64 : t -> int64
(** Uniform 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val gaussian : t -> mean:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
