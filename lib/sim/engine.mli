(** Discrete-event simulation engine.

    A single global clock (in {!Cycles.t}) and a priority queue of pending
    events. Components either advance the clock directly (synchronous cost
    accounting, the common case for CPU execution) or schedule callbacks at
    future instants (message delivery, IPIs, timers). *)

type t

val create : unit -> t

val now : t -> Cycles.t
(** Current simulated time. *)

val advance : t -> Cycles.t -> unit
(** [advance t d] moves the clock forward by [d] cycles, firing any events
    that fall inside the skipped interval (in timestamp order).
    Requires [d >= 0]. *)

val advance_to : t -> Cycles.t -> unit
(** Move the clock to an absolute instant (no-op if already past it). *)

val schedule : t -> delay:Cycles.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] once the clock reaches [now t + delay].
    Events with equal timestamps fire in insertion order. *)

val schedule_at : t -> at:Cycles.t -> (unit -> unit) -> unit

val pending : t -> int
(** Number of events not yet fired. *)

val run_until_idle : t -> unit
(** Fire all pending events, advancing the clock to each; terminates when
    the queue is empty. Events may schedule further events. *)

val next_event_at : t -> Cycles.t option
(** Timestamp of the earliest pending event, if any. *)
