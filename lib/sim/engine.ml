(* Binary min-heap of (time, sequence, callback); the sequence number makes
   equal-time events fire in insertion order. *)

type event = { at : Cycles.t; seq : int; fn : unit -> unit }

type t = {
  mutable clock : Cycles.t;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { at = 0; seq = 0; fn = ignore }

let create () = { clock = 0; heap = Array.make 64 dummy; size = 0; next_seq = 0 }

let now t = t.clock

let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < size && earlier h.(l) h.(i) then l else i in
  let smallest = if r < size && earlier h.(r) h.(smallest) then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h size smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop t =
  if t.size = 0 then invalid_arg "Engine.pop: empty event queue";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t.heap t.size 0;
  top

let peek t = if t.size = 0 then None else Some t.heap.(0)

let pending t = t.size

let next_event_at t = Option.map (fun ev -> ev.at) (peek t)

let schedule_at t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before the clock (%d)" at t.clock);
  push t { at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + delay) fn

(* Fire every event with timestamp <= horizon, then settle the clock there. *)
let drain_until t horizon =
  let rec loop () =
    match peek t with
    | Some ev when ev.at <= horizon ->
        let ev = pop t in
        t.clock <- ev.at;
        ev.fn ();
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if t.clock < horizon then t.clock <- horizon

let advance t d =
  if d < 0 then invalid_arg "Engine.advance: negative delta";
  drain_until t (t.clock + d)

let advance_to t at = if at > t.clock then drain_until t at

let run_until_idle t =
  let rec loop () =
    match peek t with
    | None -> ()
    | Some ev ->
        drain_until t ev.at;
        loop ()
  in
  loop ()
