type t = X86 | Arm

let other = function X86 -> Arm | Arm -> X86
let index = function X86 -> 0 | Arm -> 1

let of_index = function
  | 0 -> X86
  | 1 -> Arm
  | n -> invalid_arg (Printf.sprintf "Node_id.of_index: %d" n)

let all = [ X86; Arm ]
let to_string = function X86 -> "x86" | Arm -> "arm"
let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = match (a, b) with X86, X86 | Arm, Arm -> true | X86, Arm | Arm, X86 -> false
