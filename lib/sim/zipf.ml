(* Rejection-inversion sampling of the Zipf distribution (Hörmann &
   Derflinger, "Rejection-inversion to generate variates from monotone
   discrete distributions", ACM TOMACS 1996) — the same scheme Apache
   Commons and gem5 use for YCSB-style key popularity.

   Internally ranks are 1-based (the classical Zipf support); [sample]
   shifts to 0-based so rank 0 is the hottest key. The density is
   h(x) = x^-theta; its integral H dominates the histogram of the
   discrete distribution, so inverting a uniform draw under H and
   accepting with the exact mass gives O(1) expected draws per sample
   (the acceptance rate is high even for theta near 1). *)

type t = {
  n : int;
  theta : float;
  one_minus_theta : float; (* 0.0 signals the log/exp branch (theta = 1) *)
  h_x1 : float; (* H(1.5) - 1, upper edge of the inversion interval *)
  h_n : float; (* H(n + 0.5), lower edge *)
  cut : float; (* acceptance shortcut: |k - x| below this always accepts *)
}

let h t x =
  (* point density h(x) = x^-theta *)
  exp (-.t.theta *. log x)

(* H(x) = \int_1^x u^-theta du, and its inverse. The theta = 1 pair is
   the log/exp limit; near-1 exponents are numerically fine in the
   closed form because x^(1-theta) is evaluated via [**], not as a
   difference of large terms. *)
let h_integral t x =
  if t.one_minus_theta = 0.0 then log x else ((x ** t.one_minus_theta) -. 1.0) /. t.one_minus_theta

let h_integral_inv t x =
  if t.one_minus_theta = 0.0 then exp x
  else (1.0 +. (x *. t.one_minus_theta)) ** (1.0 /. t.one_minus_theta)

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if not (theta > 0.0) then invalid_arg "Zipf.create: theta must be > 0";
  let one_minus_theta = if theta = 1.0 then 0.0 else 1.0 -. theta in
  let t = { n; theta; one_minus_theta; h_x1 = 0.0; h_n = 0.0; cut = 0.0 } in
  let h_x1 = h_integral t 1.5 -. 1.0 in
  let h_n = h_integral t (float_of_int n +. 0.5) in
  let cut = 2.0 -. h_integral_inv t (h_integral t 2.5 -. h t 2.0) in
  { t with h_x1; h_n; cut }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let rec draw () =
    (* u uniform in [h_n, h_x1): the area under H between the support's
       outermost half-integer boundaries. *)
    let u = t.h_n +. (Rng.float rng 1.0 *. (t.h_x1 -. t.h_n)) in
    let x = h_integral_inv t u in
    let k = int_of_float (Float.round x) in
    let k = if k < 1 then 1 else if k > t.n then t.n else k in
    if float_of_int k -. x <= t.cut then k
    else if u >= h_integral t (float_of_int k +. 0.5) -. h t (float_of_int k) then k
    else draw ()
  in
  draw () - 1
