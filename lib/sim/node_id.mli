(** Identity of a kernel instance / CPU complex.

    The paper's prototype (and ours) is a pair: an x86-64 island and an
    AArch64 island, each running its own kernel instance. *)

type t = X86 | Arm

val other : t -> t
val index : t -> int
(** [X86] is node 0, [Arm] is node 1 (matching the artifact's layout). *)

val of_index : int -> t
val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
