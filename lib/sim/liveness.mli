(** Ground-truth node liveness with monotonically increasing fencing
    epochs.

    Every kill and every revive bumps the node's epoch, so an epoch
    observed while a node was alive uniquely identifies that incarnation:
    a lock token carrying a pre-crash epoch can never validate against any
    later incarnation (the classic fencing-token construction). Detection
    — when a *peer* learns of the death — is a separate, later event
    modelled by the heartbeat watchdog; this module records what is
    physically true. *)

type t

val create : unit -> t
(** All nodes alive, epoch 0. *)

val is_alive : t -> Node_id.t -> bool
val epoch : t -> Node_id.t -> int

val kill : t -> Node_id.t -> at:int -> unit
(** Crash-stop [node] at cycle [at]: epoch bumps, node goes dead.
    @raise Invalid_argument if already dead. *)

val revive : t -> Node_id.t -> at:int -> unit
(** Restart [node] at cycle [at]: epoch bumps again (so the dead-interval
    epoch is also unreachable), accumulated downtime grows by
    [at - died_at].
    @raise Invalid_argument if already alive. *)

val deaths : t -> Node_id.t -> int
val downtime : t -> Node_id.t -> int
(** Total cycles spent dead across all completed kill/revive pairs. *)

val died_at : t -> Node_id.t -> int
(** Cycle of the most recent kill (0 if never killed). *)

val all_alive : t -> bool
