(** Deterministic fork/join over OCaml 5 domains.

    [map ~domains tasks] runs every task and returns their results in
    task order. At most [domains] host domains run at once (the calling
    domain participates, so [domains] is the total parallelism); with
    [domains <= 1] the tasks run inline, sequentially, in order — the
    zero-overhead baseline the parallel path must match byte-for-byte.

    The contract that makes host parallelism invisible to simulated
    results:

    - the result array is indexed by task, never by completion order;
    - if any task raises, [map] re-raises the exception of the {e first
      failing task in task order} after every domain has been joined, so
      which error escapes does not depend on host scheduling;
    - tasks must not share mutable state (each should own its machine /
      campaign cell outright) — the pool adds no locking beyond the
      work-claim cursor.

    Used by the bench harness's [--domains] replica scaling and the chaos
    soak's campaign cells. *)

val map : domains:int -> (unit -> 'a) array -> 'a array
