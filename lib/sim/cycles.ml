type t = int

let frequency_ghz = 2.1

let of_ns ns = int_of_float (Float.round (ns *. frequency_ghz))
let of_us us = of_ns (us *. 1000.0)
let to_ns c = float_of_int c /. frequency_ghz
let to_us c = to_ns c /. 1000.0
let to_ms c = to_ns c /. 1_000_000.0

let pp fmt c =
  let ns = to_ns c in
  if ns < 1_000.0 then Format.fprintf fmt "%.0fns" ns
  else if ns < 1_000_000.0 then Format.fprintf fmt "%.2fus" (ns /. 1_000.0)
  else if ns < 1_000_000_000.0 then Format.fprintf fmt "%.2fms" (ns /. 1_000_000.0)
  else Format.fprintf fmt "%.3fs" (ns /. 1_000_000_000.0)
