(** Seeded Zipfian rank sampler over very large supports.

    Draws ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^theta,
    using Hörmann-Derflinger rejection-inversion: O(1) work and O(1)
    memory per draw, no O(n) alias table or harmonic-number precompute,
    so supports of millions of keys cost nothing to set up. Rank 0 is the
    hottest key.

    All randomness comes from the caller's {!Rng.t}, so a run's key
    stream is a pure function of its seed. The rejection loop consumes a
    variable number of draws per sample, but deterministically so — the
    serving harness pins a golden sequence in its tests to keep the
    generator from drifting across refactors. *)

type t

val create : n:int -> theta:float -> t
(** Sampler over ranks [0, n) with exponent [theta].
    @raise Invalid_argument unless [n >= 1] and [theta > 0]. *)

val n : t -> int
val theta : t -> float

val sample : t -> Rng.t -> int
(** One rank in [0, n); rank 0 is the most popular. *)
