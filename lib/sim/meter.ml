type t = { mutable cycles : int }

let create () = { cycles = 0 }
let add t d = t.cycles <- t.cycles + d
let get t = t.cycles
let set t v = t.cycles <- v
let reset t = t.cycles <- 0

let delta t f =
  let before = t.cycles in
  f ();
  t.cycles - before
