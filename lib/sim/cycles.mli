(** Simulated time, measured in CPU cycles of the canonical clock.

    The paper's big machine pair runs at 2.0/2.1 GHz; we use a single
    canonical frequency for both nodes (documented simplification in
    DESIGN.md §8), so one cycle is one unit of global simulated time. *)

type t = int
(** A cycle count. Always non-negative in well-formed uses. *)

val frequency_ghz : float
(** Canonical core frequency used for cycle/time conversions (2.1 GHz,
    matching the Xeon Gold host of the paper's evaluation). *)

val of_ns : float -> t
(** Nanoseconds to cycles, rounded to nearest. *)

val of_us : float -> t
val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
