type registry = (string, int ref) Hashtbl.t

let registry () : registry = Hashtbl.create 64

let cell reg name =
  match Hashtbl.find_opt reg name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add reg name r;
      r

let incr reg name = Stdlib.incr (cell reg name)
let add reg name n = cell reg name |> fun r -> r := !r + n
let set reg name n = cell reg name |> fun r -> r := n
let get reg name = match Hashtbl.find_opt reg name with Some r -> !r | None -> 0
let reset reg = Hashtbl.reset reg

let names reg =
  Hashtbl.fold (fun name _ acc -> name :: acc) reg [] |> List.sort String.compare

let fold reg ~init ~f =
  List.fold_left (fun acc name -> f acc name (get reg name)) init (names reg)

let to_assoc reg = List.map (fun name -> (name, get reg name)) (names reg)

module Histogram = struct
  type t = {
    counts : int array;
    lo : float;
    hi : float;
    width : float;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create ~buckets ~lo ~hi =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create: bad shape";
    {
      counts = Array.make buckets 0;
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      n = 0;
      sum = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let record t v =
    let buckets = Array.length t.counts in
    let idx =
      if v < t.lo then 0
      else if v >= t.hi then buckets - 1
      else int_of_float ((v -. t.lo) /. t.width)
    in
    let idx = if idx >= buckets then buckets - 1 else idx in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0.0 else t.minv
  let max_value t = if t.n = 0 then 0.0 else t.maxv

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 1.0 p) in
      let target = p *. float_of_int t.n in
      (* Linear interpolation within the bucket that crosses the target
         rank, rather than snapping to the bucket's upper edge. *)
      let rec scan i acc =
        if i >= Array.length t.counts then t.maxv
        else
          let c = t.counts.(i) in
          let acc' = acc + c in
          if c > 0 && float_of_int acc' >= target then begin
            let lower = t.lo +. (t.width *. float_of_int i) in
            let within = (target -. float_of_int acc) /. float_of_int c in
            let v = lower +. (t.width *. within) in
            Float.max t.minv (Float.min t.maxv v)
          end
          else scan (i + 1) acc'
      in
      scan 0 0
    end

  let p50 t = percentile t 0.50
  let p95 t = percentile t 0.95
  let p99 t = percentile t 0.99

  let bucket_counts t =
    Array.mapi (fun i c -> (t.lo +. (t.width *. float_of_int i), c)) t.counts

  let merge a b =
    if Array.length a.counts <> Array.length b.counts || a.lo <> b.lo || a.hi <> b.hi
    then invalid_arg "Histogram.merge: shape mismatch";
    {
      counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      lo = a.lo;
      hi = a.hi;
      width = a.width;
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
    }
end
