(** Per-node cycle meters.

    Each simulated CPU complex accumulates cycles here: one base cycle per
    instruction plus every memory-system stall the cache simulator reports
    — the icount-with-feedback timing model of paper §7.3. *)

type t = { mutable cycles : int }
(** Concrete (not abstract) so the runner's fused memio fast path can
    accumulate the per-instruction base cycle without a cross-module
    call. Any mutation outside this module must be exactly [add]'s
    effect; everything else goes through the functions below. *)

val create : unit -> t
val add : t -> int -> unit
val get : t -> int
val set : t -> int -> unit
val reset : t -> unit

val delta : t -> (unit -> unit) -> int
(** [delta t f] runs [f] and returns how many cycles it added to [t];
    used to bill a remote handler's duration to a waiting requester. *)
