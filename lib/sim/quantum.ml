(* Scheduling-quantum boundary hooks.

   The runner executes threads in fuel-bounded quanta; subsystems that
   want to act between quanta (the placement engine's epoch tick, for
   one) register a hook here rather than patching the scheduler loop.

   Firing order is the determinism contract: hooks run in registration
   order, period. The store is a flat array indexed by registration
   rank — nothing about the order depends on closure identity, hash
   table iteration, or list-reversal conventions, so adding a hook can
   never perturb the order of the hooks already registered, on any
   OCaml version. *)

type hook = now:int -> unit

type t = { mutable hooks : hook array; mutable n : int (* registered so far *) }

let dummy ~now:_ = ()

let create () = { hooks = [||]; n = 0 }

let add t h =
  let cap = Array.length t.hooks in
  if t.n = cap then begin
    let grown = Array.make (max 4 (2 * cap)) dummy in
    Array.blit t.hooks 0 grown 0 t.n;
    t.hooks <- grown
  end;
  t.hooks.(t.n) <- h;
  t.n <- t.n + 1

let count t = t.n

let fire t ~now =
  (* Fires exactly the hooks registered at call time, oldest first; a
     hook that registers another hook during the sweep sees it fire
     starting from the next quantum. *)
  let n = t.n in
  for i = 0 to n - 1 do
    t.hooks.(i) ~now
  done
