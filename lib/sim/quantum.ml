(* Scheduling-quantum boundary hooks.

   The runner executes threads in fuel-bounded quanta; subsystems that
   want to act between quanta (the placement engine's epoch tick, for
   one) register a hook here rather than patching the scheduler loop.
   Hooks fire in registration order with the current smallest-node wall
   clock, so everything they do is deterministic per run. *)

type hook = now:int -> unit

type t = { mutable hooks : hook list (* reverse registration order *) }

let create () = { hooks = [] }
let add t h = t.hooks <- h :: t.hooks
let count t = List.length t.hooks

let fire t ~now =
  match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun h -> h ~now) (List.rev hooks)
