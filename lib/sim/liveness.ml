(* Ground-truth node liveness with fencing epochs.

   The epoch is bumped on every transition (kill and revive), so a token
   minted under any earlier incarnation of a node can never compare equal
   to the current epoch — the fencing-token construction that keeps a
   zombie restart from replaying pre-crash ownership. *)

type state = {
  mutable alive : bool;
  mutable epoch : int;
  mutable died_at : int;
  mutable deaths : int;
  mutable downtime : int;
}

type t = state array

let create () =
  Array.init (List.length Node_id.all) (fun _ ->
      { alive = true; epoch = 0; died_at = 0; deaths = 0; downtime = 0 })

let st t node = t.(Node_id.index node)
let is_alive t node = (st t node).alive
let epoch t node = (st t node).epoch
let deaths t node = (st t node).deaths
let downtime t node = (st t node).downtime
let all_alive t = Array.for_all (fun s -> s.alive) t

let kill t node ~at =
  let s = st t node in
  if not s.alive then invalid_arg "Liveness.kill: node already dead";
  s.alive <- false;
  s.epoch <- s.epoch + 1;
  s.died_at <- at;
  s.deaths <- s.deaths + 1

let revive t node ~at =
  let s = st t node in
  if s.alive then invalid_arg "Liveness.revive: node already alive";
  s.alive <- true;
  s.epoch <- s.epoch + 1;
  s.downtime <- s.downtime + max 0 (at - s.died_at)

let died_at t node = (st t node).died_at
