(* Deterministic fork/join over OCaml 5 domains.

   The pool exists to parallelise *whole simulations* (bench replicas,
   campaign cells): each task owns a complete machine and never shares
   mutable state with its siblings, so host scheduling cannot perturb
   simulated results. Determinism therefore reduces to two properties
   this module guarantees by construction:

   - results come back indexed by task order, not completion order;
   - an error surfaces as the *first failing task in task order*, however
     the host interleaved the domains.

   Work distribution is a single atomic cursor: workers claim the next
   unclaimed index until the array is drained. Each result/error slot is
   written by exactly one domain and read only after the joins, which
   [Domain.join]'s happens-before edge makes safe without further
   synchronisation. *)

let map ~domains tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if domains <= 1 || n = 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec drain () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (match tasks.(i) () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          drain ()
        end
      in
      drain ()
    in
    (* The calling domain participates, so [domains] is the total host
       parallelism, not the number of helpers. *)
    let helpers = Array.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map Option.get results
  end
