type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser: avalanche the raw counter value. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit value would
     wrap negative through Int64.to_int. Draws land in [0, max_int] where
     max_int = 2^62 - 1; rejection-sample so every residue class mod
     [bound] is equally likely. *)
  let limit = max_int - (((max_int mod bound) + 1) mod bound) in
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if raw > limit then draw () else raw mod bound
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mean ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
