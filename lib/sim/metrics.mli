(** Named counters and histograms for simulation statistics.

    Each machine component holds a [registry]; the harness dumps registries
    into report tables. Counter lookup is by string name, created on first
    use so call sites stay terse. *)

type registry

val registry : unit -> registry

val incr : registry -> string -> unit
val add : registry -> string -> int -> unit
val set : registry -> string -> int -> unit
val get : registry -> string -> int
(** Missing counters read as 0. *)

val reset : registry -> unit
val names : registry -> string list
(** Sorted counter names present in the registry. *)

val fold : registry -> init:'a -> f:('a -> string -> int -> 'a) -> 'a

val to_assoc : registry -> (string * int) list
(** Sorted [(name, value)] pairs — the machine-readable dump the
    observability snapshot serialises. *)

(** Fixed-bound histogram with uniform buckets, used for latency
    distributions (e.g. the IPI matrices of Figs. 5-6). *)
module Histogram : sig
  type t

  val create : buckets:int -> lo:float -> hi:float -> t
  val record : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.5] approximates the median by linear interpolation
      within the bucket containing the target rank, clamped to the
      observed [min_value, max_value] range. [p] is clamped to [0, 1]. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float

  val bucket_counts : t -> (float * int) array
  (** [(lower_bound, count)] per bucket, plus overflow in the last one. *)

  val merge : t -> t -> t
  (** Combine two histograms with identical shape (bucket count, [lo],
      [hi]) into a fresh one — e.g. per-node latency distributions into a
      machine-wide view.
      @raise Invalid_argument on shape mismatch. *)
end
