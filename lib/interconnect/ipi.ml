module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles

type machine = {
  name : string;
  cores : int;
  smt : int;
  cores_per_cluster : int;
  sockets : int;
  base_ns : float;
  smt_discount_ns : float;
  cluster_penalty_ns : float;
  socket_penalty_ns : float;
  jitter_ns : float;
}

(* Calibrated so the big pair averages ~2us, matching the paper's use of
   that figure as the simulated cross-ISA IPI cost. *)
let small_arm =
  {
    name = "small_arm";
    cores = 8;
    smt = 1;
    cores_per_cluster = 4;
    sockets = 1;
    base_ns = 1350.0;
    smt_discount_ns = 0.0;
    cluster_penalty_ns = 260.0;
    socket_penalty_ns = 0.0;
    jitter_ns = 90.0;
  }

let big_arm =
  {
    name = "big_arm";
    cores = 64;
    smt = 4;
    cores_per_cluster = 16;
    sockets = 2;
    base_ns = 1500.0;
    smt_discount_ns = 450.0;
    cluster_penalty_ns = 180.0;
    socket_penalty_ns = 700.0;
    jitter_ns = 120.0;
  }

let small_x86 =
  {
    name = "small_x86";
    cores = 16;
    smt = 2;
    cores_per_cluster = 8;
    sockets = 1;
    base_ns = 1400.0;
    smt_discount_ns = 400.0;
    cluster_penalty_ns = 150.0;
    socket_penalty_ns = 0.0;
    jitter_ns = 110.0;
  }

let big_x86 =
  {
    name = "big_x86";
    cores = 104;
    smt = 2;
    cores_per_cluster = 26;
    sockets = 2;
    base_ns = 1550.0;
    smt_discount_ns = 420.0;
    cluster_penalty_ns = 160.0;
    socket_penalty_ns = 650.0;
    jitter_ns = 130.0;
  }

let physical_core m cpu = cpu / m.smt
let cluster m cpu = physical_core m cpu / (m.cores_per_cluster / m.smt)
let socket m cpu =
  let clusters_total = m.cores / m.cores_per_cluster in
  let clusters_per_socket = max 1 (clusters_total / m.sockets) in
  cluster m cpu / clusters_per_socket

let pair_latency_ns rng m ~src ~dst =
  if src = dst then 0.0
  else begin
    let lat = ref m.base_ns in
    if physical_core m src = physical_core m dst then lat := !lat -. m.smt_discount_ns
    else begin
      if cluster m src <> cluster m dst then lat := !lat +. m.cluster_penalty_ns;
      if socket m src <> socket m dst then lat := !lat +. m.socket_penalty_ns
    end;
    let noisy = Rng.gaussian rng ~mean:!lat ~sigma:m.jitter_ns in
    Float.max 200.0 noisy
  end

let matrix rng m =
  Array.init m.cores (fun src ->
      Array.init m.cores (fun dst -> pair_latency_ns rng m ~src ~dst))

let matrix_mean_ns mat =
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if i <> j then begin
            sum := !sum +. v;
            incr n
          end)
        row)
    mat;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let cross_isa_ipi_cycles = Cycles.of_us 2.0

(* A cross-ISA TLB shootdown is one IPI round to the peer kernel (the
   Fig. 5-6 ~2 us doorbell cost); the local invalidation itself is in the
   architectural noise next to it, so the round is the whole charge. *)
let tlb_shootdown_cycles = cross_isa_ipi_cycles

module Plan = Stramash_fault_inject.Plan

type delivery = { cycles : int; lost : bool; jittered : bool }

module Trace = Stramash_obs.Trace

let cross_isa_delivery ?inject ?peer ?now () =
  let d =
    match inject with
    | None -> { cycles = cross_isa_ipi_cycles; lost = false; jittered = false }
    | Some plan -> (
        match Plan.ipi_delivery plan with
        | `On_time -> { cycles = cross_isa_ipi_cycles; lost = false; jittered = false }
        | `Jitter extra ->
            { cycles = cross_isa_ipi_cycles + extra; lost = false; jittered = true }
        | `Lost ->
            (* The interrupt never arrives; the receiver notices by timeout
               and falls back to polling the ring head. *)
            { cycles = Plan.ipi_timeout_cycles plan; lost = true; jittered = false })
  in
  (* Observation only: any slow-window inflation is charged (and
     observed) once at the message layer, so the IPI feeds the peer's
     health score without double-counting cycles. *)
  (match (inject, peer, now) with
  | Some plan, Some peer, Some now ->
      if d.lost then Plan.observe_failure plan ~peer ~now
      else
        Plan.observe_service plan ~peer ~cycles:d.cycles ~nominal:cross_isa_ipi_cycles
          ~now
  | _ -> ());
  (* No node in scope here: the event lands on the node of the innermost
     open span (the message send that triggered the IPI). *)
  if Trace.enabled () then
    Trace.instant ~subsys:"ipi" ~op:"deliver"
      ~tags:
        [
          ("outcome", if d.lost then "lost" else if d.jittered then "jitter" else "on_time");
          ("cycles", string_of_int d.cycles);
        ]
      ();
  d

module Fault = Stramash_fault_inject.Fault
module Liveness = Stramash_sim.Liveness
module Node_id = Stramash_sim.Node_id

let cross_isa_delivery_checked ~liveness ~dst ?inject () =
  if not (Liveness.is_alive liveness dst) then begin
    (* There is no core to interrupt: the doorbell write lands in a dead
       complex. This is a typed error, not a lost-IPI timeout — the caller
       must take the degraded path, not retry. *)
    if Trace.enabled () then
      Trace.instant ~subsys:"ipi" ~op:"deliver"
        ~tags:[ ("outcome", "dead_node"); ("dst", Node_id.to_string dst) ]
        ();
    Error (Fault.Node_dead { node = Node_id.to_string dst; op = "ipi" })
  end
  else Ok (cross_isa_delivery ?inject ())
