(** Peer heartbeats and the crash-stop watchdog.

    Each live node publishes a beat over the message layer once per
    scheduling quantum (rate-limited by [interval]); a peer that has
    missed [miss_threshold] consecutive deadlines is *suspected* — the
    survivor's view flips from fused operation to degraded message-based
    fallback. Suspicion is perceived state: the ground truth lives in
    {!Stramash_sim.Liveness}, and the gap between a kill and its
    detection is exactly the window where a survivor still charges
    fused-path costs against a peer that will never answer. *)

type t

val create : ?readmit_beats:int -> interval:int -> miss_threshold:int -> unit -> t
(** [readmit_beats] (default 2) is the hysteresis gate: consecutive
    on-time beats required before a suspected peer is re-trusted.
    @raise Invalid_argument unless all arguments are positive. *)

val interval : t -> int
val readmit_beats : t -> int

val detection_latency : t -> int
(** [interval * miss_threshold]: worst-case cycles between a silent crash
    and the watchdog declaring the peer dead. *)

val beat : t -> node:Stramash_sim.Node_id.t -> now:int -> unit
(** Record a beat from [node]. A beat never clears suspicion by itself:
    a suspected peer must deliver [readmit_beats] consecutive beats each
    within one [interval] of the previous (the first beat after a long
    silence only resets the streak) before suspicion lifts. *)

val missed_deadlines : t -> peer:Stramash_sim.Node_id.t -> now:int -> int
val suspects : t -> peer:Stramash_sim.Node_id.t -> now:int -> bool
(** True once [peer] has missed [miss_threshold] deadlines at [now]. *)

val declare_dead : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit
(** Latch the suspicion (idempotent) and emit a watchdog trace event. *)

val is_suspected : t -> peer:Stramash_sim.Node_id.t -> bool
val detections : t -> int

val readmissions : t -> int
(** Times a suspected peer completed the re-admission streak. *)
