(** Peer heartbeats and the crash-stop watchdog.

    Each live node publishes a beat over the message layer once per
    scheduling quantum (rate-limited by [interval]); a peer that has
    missed [miss_threshold] consecutive deadlines is *suspected* — the
    survivor's view flips from fused operation to degraded message-based
    fallback. Suspicion is perceived state: the ground truth lives in
    {!Stramash_sim.Liveness}, and the gap between a kill and its
    detection is exactly the window where a survivor still charges
    fused-path costs against a peer that will never answer. *)

type t

val create : interval:int -> miss_threshold:int -> t
(** @raise Invalid_argument unless both arguments are positive. *)

val interval : t -> int

val detection_latency : t -> int
(** [interval * miss_threshold]: worst-case cycles between a silent crash
    and the watchdog declaring the peer dead. *)

val beat : t -> node:Stramash_sim.Node_id.t -> now:int -> unit
(** Record a beat from [node]; clears any suspicion of it (a restarted
    peer is trusted again as soon as it beats). *)

val missed_deadlines : t -> peer:Stramash_sim.Node_id.t -> now:int -> int
val suspects : t -> peer:Stramash_sim.Node_id.t -> now:int -> bool
(** True once [peer] has missed [miss_threshold] deadlines at [now]. *)

val declare_dead : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit
(** Latch the suspicion (idempotent) and emit a watchdog trace event. *)

val is_suspected : t -> peer:Stramash_sim.Node_id.t -> bool
val detections : t -> int
