(** TCP/IP messaging-layer cost model (paper §8.2).

    Popcorn's network transport is modelled as a latency-per-message link:
    the paper adds ~75 us per 64 KB message round trip (software-to-software
    over the SmartNIC path), independent of the hardware memory model. We
    expose one-way and round-trip costs with a small per-byte serialisation
    term so unusually large payloads are not free. *)

type t

val create : ?rtt_us:float -> ?per_kib_ns:float -> unit -> t
(** Defaults: 75 us round trip, 3 ns per KiB of payload. *)

val one_way_cycles : t -> payload_bytes:int -> int
val round_trip_cycles : t -> payload_bytes:int -> int
val rtt_us : t -> float
