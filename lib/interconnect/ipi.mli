(** Inter-processor interrupt latency model (paper §9.1.1, Figs. 5-6).

    The paper measures IPI latency between every core pair on four real
    machines (RDTSC + MONITOR/MWAIT kernel module) and uses the big-pair
    mean (~2 us) as the simulated cross-ISA IPI cost. Real hardware being
    unavailable here, we reproduce the measurement harness over a
    topology-parameterised latency model: a base cost plus penalties for
    crossing an SMT pair, a core cluster, or a socket, with Gaussian
    jitter. The consumed output is identical in kind: a per-pair matrix and
    its mean. *)

type machine = {
  name : string;
  cores : int; (* logical CPUs measured *)
  smt : int; (* threads per physical core *)
  cores_per_cluster : int; (* logical CPUs per core complex / CCX *)
  sockets : int;
  base_ns : float;
  smt_discount_ns : float; (* saved when src/dst share a physical core *)
  cluster_penalty_ns : float;
  socket_penalty_ns : float;
  jitter_ns : float;
}

val small_arm : machine (* Broadcom A72 smartNIC, 8 cores *)
val big_arm : machine (* dual ThunderX2 *)
val small_x86 : machine (* Xeon E5-2620 v4 *)
val big_x86 : machine (* dual Xeon Gold 6230R *)

val pair_latency_ns : Stramash_sim.Rng.t -> machine -> src:int -> dst:int -> float
(** One measured IPI, in nanoseconds. [src = dst] is not measurable and
    returns 0. *)

val matrix : Stramash_sim.Rng.t -> machine -> float array array
val matrix_mean_ns : float array array -> float
(** Mean over off-diagonal entries. *)

val cross_isa_ipi_cycles : int
(** The simulator's cross-ISA IPI cost: 2 us (the big-pair mean), §8.2. *)

val tlb_shootdown_cycles : int
(** Cost of one cross-ISA TLB-shootdown round: a single peer IPI at the
    Fig. 5-6 2 us doorbell cost. The placement engine charges this on
    every replica install/collapse that invalidates the other kernel's
    translations. *)

type delivery = { cycles : int; lost : bool; jittered : bool }
(** One cross-ISA notification: the cycles the receiver waits, and whether
    the interrupt was lost (receiver fell back to a polling timeout) or
    arrived late. *)

val cross_isa_delivery :
  ?inject:Stramash_fault_inject.Plan.t ->
  ?peer:Stramash_sim.Node_id.t ->
  ?now:int ->
  unit ->
  delivery
(** [cross_isa_delivery ()] is the clean 2 us cost; with a fault plan the
    draw may add a jitter spike or lose the IPI entirely, in which case
    [cycles] is the plan's detection timeout. Passing [peer] and [now]
    additionally feeds the delivery outcome into the plan's health score
    for [peer] (observation only — no extra cycles). *)

val cross_isa_delivery_checked :
  liveness:Stramash_sim.Liveness.t ->
  dst:Stramash_sim.Node_id.t ->
  ?inject:Stramash_fault_inject.Plan.t ->
  unit ->
  (delivery, Stramash_fault_inject.Fault.error) result
(** Like {!cross_isa_delivery}, but an IPI aimed at a crash-stopped node
    returns [Error (Node_dead _)] instead of a silent timeout: a dead
    complex has no core to interrupt, so the caller must degrade rather
    than retry. *)
