(** Shared-memory message ring (paper §6.2, §8.2).

    One directional ring per (sender, receiver) pair, laid out in the
    128 MB message-layer area of physical memory. Head/tail words live on
    separate cache lines; slots hold a fixed header plus payload. Costs are
    not modelled abstractly: every control-word and payload access goes
    through the cache simulator at cache-line granularity, so the ring's
    latency emerges from the memory system and hardware model, exactly as
    for the real SHM messaging layer.

    The ring also functions as a real queue for arbitrary message values
    (the simulated payload bytes are cost, the OCaml value is content). *)

type 'a t

val create :
  cache:Stramash_cache.Cache_sim.t ->
  base:int ->
  slots:int ->
  slot_bytes:int ->
  sender:Stramash_sim.Node_id.t ->
  'a t
(** [base] must be line-aligned; place it inside
    {!Stramash_mem.Layout.message_ring} for remote-shared accounting. *)

val send : 'a t -> payload_bytes:int -> 'a -> (int, [ `Full ]) result
(** Enqueue; returns the sender-side cycle cost (tail CAS + header +
    payload stores). Payloads longer than one slot occupy several slots. *)

val recv : 'a t -> (int * 'a) option
(** Dequeue the oldest message; returns the receiver-side cycle cost (head
    update + header + payload loads) and the message. *)

val length : 'a t -> int
(** Messages currently queued. *)

val capacity_slots : 'a t -> int
val bytes_reserved : 'a t -> int
(** Total physical footprint, control lines included. *)
