module Cycles = Stramash_sim.Cycles

type t = { rtt_us : float; per_kib_ns : float }

let create ?(rtt_us = 75.0) ?(per_kib_ns = 3.0) () = { rtt_us; per_kib_ns }

let one_way_cycles t ~payload_bytes =
  let ns = (t.rtt_us *. 500.0) +. (t.per_kib_ns *. (float_of_int payload_bytes /. 1024.0)) in
  Cycles.of_ns ns

let round_trip_cycles t ~payload_bytes = 2 * one_way_cycles t ~payload_bytes

let rtt_us t = t.rtt_us
