module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Cache_sim = Stramash_cache.Cache_sim

type 'a slot_entry = { payload_bytes : int; slots_used : int; value : 'a }

type 'a t = {
  cache : Cache_sim.t;
  base : int;
  slots : int;
  slot_bytes : int;
  sender : Node_id.t;
  receiver : Node_id.t;
  queue : 'a slot_entry Queue.t;
  mutable tail : int; (* next slot to write (sender-owned) *)
  mutable head : int; (* next slot to read (receiver-owned) *)
  mutable used : int;
}

let header_bytes = 64 (* one line: type, size, sequence *)

let create ~cache ~base ~slots ~slot_bytes ~sender =
  assert (base land (Addr.line_size - 1) = 0);
  assert (slots > 0 && slot_bytes >= header_bytes);
  {
    cache;
    base;
    slots;
    slot_bytes;
    sender;
    receiver = Node_id.other sender;
    queue = Queue.create ();
    tail = 0;
    head = 0;
    used = 0;
  }

let tail_word t = t.base
let head_word t = t.base + Addr.line_size
let slot_addr t i = t.base + (2 * Addr.line_size) + (i * t.slot_bytes)

let slots_for t payload_bytes =
  let data = max payload_bytes 1 in
  (header_bytes + data + t.slot_bytes - 1) / t.slot_bytes

let length t = Queue.length t.queue
let capacity_slots t = t.slots
let bytes_reserved t = (2 * Addr.line_size) + (t.slots * t.slot_bytes)

let send t ~payload_bytes value =
  let need = slots_for t payload_bytes in
  if t.used + need > t.slots then Error `Full
  else begin
    (* Reserve the slot range with an atomic tail bump, then stream the
       header and payload, then publish (second tail-line store). *)
    let cost = ref (Cache_sim.atomic_rmw t.cache ~node:t.sender ~paddr:(tail_word t)) in
    let first = t.tail in
    for s = 0 to need - 1 do
      let slot = (first + s) mod t.slots in
      let addr = slot_addr t slot in
      let bytes = min t.slot_bytes (header_bytes + payload_bytes - (s * t.slot_bytes)) in
      cost :=
        !cost
        + Cache_sim.access_bytes t.cache ~node:t.sender Cache_sim.Store ~paddr:addr ~len:bytes
    done;
    cost := !cost + Cache_sim.access t.cache ~node:t.sender Cache_sim.Store ~paddr:(tail_word t);
    t.tail <- (t.tail + need) mod t.slots;
    t.used <- t.used + need;
    Queue.push { payload_bytes; slots_used = need; value } t.queue;
    Ok !cost
  end

let recv t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some entry ->
      let cost = ref (Cache_sim.access t.cache ~node:t.receiver Cache_sim.Load ~paddr:(tail_word t)) in
      for s = 0 to entry.slots_used - 1 do
        let slot = (t.head + s) mod t.slots in
        let addr = slot_addr t slot in
        let bytes =
          min t.slot_bytes (header_bytes + entry.payload_bytes - (s * t.slot_bytes))
        in
        cost :=
          !cost
          + Cache_sim.access_bytes t.cache ~node:t.receiver Cache_sim.Load ~paddr:addr ~len:bytes
      done;
      cost := !cost + Cache_sim.access t.cache ~node:t.receiver Cache_sim.Store ~paddr:(head_word t);
      t.head <- (t.head + entry.slots_used) mod t.slots;
      t.used <- t.used - entry.slots_used;
      Some (!cost, entry.value)
