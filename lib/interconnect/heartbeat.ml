module Node_id = Stramash_sim.Node_id
module Trace = Stramash_obs.Trace

type t = {
  interval : int;
  miss_threshold : int;
  last_beat : int array;
  suspected : bool array;
  mutable detections : int;
}

let create ~interval ~miss_threshold =
  if interval <= 0 then invalid_arg "Heartbeat.create: interval must be > 0";
  if miss_threshold <= 0 then invalid_arg "Heartbeat.create: miss_threshold must be > 0";
  {
    interval;
    miss_threshold;
    last_beat = Array.make (List.length Node_id.all) 0;
    suspected = Array.make (List.length Node_id.all) false;
    detections = 0;
  }

let interval t = t.interval
let detection_latency t = t.interval * t.miss_threshold

let beat t ~node ~now =
  let i = Node_id.index node in
  if now > t.last_beat.(i) then t.last_beat.(i) <- now;
  t.suspected.(i) <- false

let missed_deadlines t ~peer ~now =
  let i = Node_id.index peer in
  if now <= t.last_beat.(i) then 0 else (now - t.last_beat.(i)) / t.interval

let suspects t ~peer ~now = missed_deadlines t ~peer ~now >= t.miss_threshold
let is_suspected t ~peer = t.suspected.(Node_id.index peer)
let detections t = t.detections

let declare_dead t ~peer ~now =
  let i = Node_id.index peer in
  if not t.suspected.(i) then begin
    t.suspected.(i) <- true;
    t.detections <- t.detections + 1;
    if Trace.enabled () then
      Trace.instant ~subsys:"heartbeat" ~op:"declare_dead"
        ~tags:
          [
            ("peer", Node_id.to_string peer);
            ("at", string_of_int now);
            ("missed", string_of_int (missed_deadlines t ~peer ~now));
          ]
        ()
  end
