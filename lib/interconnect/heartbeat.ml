module Node_id = Stramash_sim.Node_id
module Trace = Stramash_obs.Trace

type t = {
  interval : int;
  miss_threshold : int;
  readmit_beats : int;
  last_beat : int array;
  suspected : bool array;
  streak : int array;
  mutable detections : int;
  mutable readmissions : int;
}

let create ?(readmit_beats = 2) ~interval ~miss_threshold () =
  if interval <= 0 then invalid_arg "Heartbeat.create: interval must be > 0";
  if miss_threshold <= 0 then invalid_arg "Heartbeat.create: miss_threshold must be > 0";
  if readmit_beats <= 0 then invalid_arg "Heartbeat.create: readmit_beats must be > 0";
  let nodes = List.length Node_id.all in
  {
    interval;
    miss_threshold;
    readmit_beats;
    last_beat = Array.make nodes 0;
    suspected = Array.make nodes false;
    streak = Array.make nodes 0;
    detections = 0;
    readmissions = 0;
  }

let interval t = t.interval
let readmit_beats t = t.readmit_beats
let detection_latency t = t.interval * t.miss_threshold

(* Re-admission is hysteresis-gated: a suspected peer must deliver
   [readmit_beats] consecutive *on-time* beats (each within one interval
   of the previous) before it is trusted again. The first beat after a
   long silence — e.g. a restart — has a huge gap and only resets the
   streak, so a single beat never clears suspicion. *)
let beat t ~node ~now =
  let i = Node_id.index node in
  let gap = now - t.last_beat.(i) in
  if now > t.last_beat.(i) then t.last_beat.(i) <- now;
  if t.suspected.(i) then
    if gap <= t.interval then begin
      t.streak.(i) <- t.streak.(i) + 1;
      if t.streak.(i) >= t.readmit_beats then begin
        t.suspected.(i) <- false;
        t.streak.(i) <- 0;
        t.readmissions <- t.readmissions + 1;
        if Trace.enabled () then
          Trace.instant ~subsys:"heartbeat" ~op:"readmit"
            ~tags:[ ("peer", Node_id.to_string node); ("at", string_of_int now) ]
            ()
      end
    end
    else t.streak.(i) <- 0

let missed_deadlines t ~peer ~now =
  let i = Node_id.index peer in
  if now <= t.last_beat.(i) then 0 else (now - t.last_beat.(i)) / t.interval

let suspects t ~peer ~now = missed_deadlines t ~peer ~now >= t.miss_threshold
let is_suspected t ~peer = t.suspected.(Node_id.index peer)
let detections t = t.detections
let readmissions t = t.readmissions

let declare_dead t ~peer ~now =
  let i = Node_id.index peer in
  if not t.suspected.(i) then begin
    t.suspected.(i) <- true;
    t.streak.(i) <- 0;
    t.detections <- t.detections + 1;
    if Trace.enabled () then
      Trace.instant ~subsys:"heartbeat" ~op:"declare_dead"
        ~tags:
          [
            ("peer", Node_id.to_string peer);
            ("at", string_of_int now);
            ("missed", string_of_int (missed_deadlines t ~peer ~now));
          ]
        ()
  end
