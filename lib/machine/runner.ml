module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Metrics = Stramash_sim.Metrics
module Cycles = Stramash_sim.Cycles
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_sim = Stramash_cache.Cache_sim
module Cache_config = Stramash_cache.Config
module Level = Stramash_cache.Level
module Env = Stramash_kernel.Env
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Tlb = Stramash_kernel.Tlb
module Mir = Stramash_isa.Mir
module Interp = Stramash_isa.Interp
module Ipi = Stramash_interconnect.Ipi
module Heartbeat = Stramash_interconnect.Heartbeat
module Liveness = Stramash_sim.Liveness
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Trace = Stramash_obs.Trace
module Quantum = Stramash_sim.Quantum
module Placement = Stramash_placement.Engine

(* Counters that accreted onto the result across PRs (fast-path L0,
   chaos downtime, placement) live in one extension record, so the next
   subsystem adds a field here instead of another top-level array. *)
type ext = {
  l0_hits : int array;
  l0_misses : int array;
  node_downtime : int array; (* cycles each node spent crash-stopped *)
  placement : (string * int) list; (* placement.* counters; [] when detached *)
  trace_cache : (string * int) list; (* tc.* counters; [] when disabled *)
}

type result = {
  os_name : string;
  hw_model : Layout.hw_model;
  wall_cycles : int;
  node_cycles : int array;
  node_icounts : int array;
  instructions : int;
  migrations : int;
  messages : int;
  replicated_pages : int;
  tlb_misses : int array;
  cache : Metrics.registry;
  phase_marks : (int * int) list;
  node_user_stalls : int array;
  node_idle : int array;
  ext : ext;
}

let fastpath_counters r =
  List.concat_map
    (fun node ->
      let i = Node_id.index node in
      let name c = Node_id.to_string node ^ "." ^ c in
      [ (name "l0_hits", r.ext.l0_hits.(i)); (name "l0_misses", r.ext.l0_misses.(i)) ])
    Node_id.all

let node_busy r node =
  let i = Node_id.index node in
  r.node_cycles.(i) - r.node_idle.(i)

let phase_span r ~start ~stop =
  match (List.assoc_opt start r.phase_marks, List.assoc_opt stop r.phase_marks) with
  | Some a, Some b -> b - a
  | _ -> invalid_arg "Runner.phase_span: missing phase mark"

exception Deadlock of string

(* Retry bound for fault-then-walk loops: a single fault must make the
   page accessible, so more than a few retries indicates a protocol bug. *)
let max_fault_retries = 4

(* One scheduling-quantum boundary for a driver that is not [run]'s
   scheduler loop (the open-loop serving subsystem admits and completes
   requests against quantum boundaries it paces itself). Mirrors the
   scheduler's boundary exactly: the Paranoid structural audit on the
   same 1-in-64 stride, then the machine's quantum hooks (placement
   epoch tick, integrity scrubber) in registration order. [count] is the
   caller's quantum counter, carried across calls so the audit stride
   matches a single continuous run. *)
let quantum_boundary machine ~count ~now =
  let env = Machine.env machine in
  incr count;
  if Cache_sim.mode env.Env.cache = Cache_sim.Paranoid && !count land 63 = 0 then begin
    (match Cache_sim.check_consistency env.Env.cache with
    | Ok () -> ()
    | Error msg -> raise (Cache_sim.Divergence ("paranoid audit: " ^ msg)));
    match Phys_mem.self_check env.Env.phys with
    | Ok () -> ()
    | Error msg -> raise (Cache_sim.Divergence ("paranoid audit: " ^ msg))
  end;
  Quantum.fire (Machine.quantum machine) ~now

let make_memio machine proc thread ~user_stalls =
  let env = Machine.env machine in
  let node = thread.Thread.node in
  let node_index = Node_id.index node in
  let cache = env.Env.cache in
  let phys = env.Env.phys in
  let meter = Env.meter env node in
  let tlb = Env.tlb env node in
  let mm = Process.mm_exn proc node in
  let io = Env.pt_io env ~actor:node ~owner:node in
  let l1_lat = (Cache_config.latencies (Cache_sim.config cache) node).Stramash_mem.Latency.l1 in
  let stall lat =
    if lat > l1_lat then begin
      user_stalls.(node_index) <- user_stalls.(node_index) + lat;
      lat
    end
    else 0
  in
  let asid = proc.Process.pid in
  (* Placement telemetry: one counter bump per user access, reusing the
     latency the access already paid for its hit-depth class. [None]
     (the common case) keeps the fast path free of the sampling call. *)
  let sample =
    match Machine.placement machine with
    | None -> None
    | Some engine ->
        Some
          (fun ~vaddr ~write lat ->
            Placement.sample engine ~pid:asid ~node ~vaddr ~write ~latency:lat)
  in
  (* Bound once so the per-access address math below compiles to shifts and
     masks with no cross-module calls. *)
  let page_shift = Addr.page_shift in
  let page_mask = Addr.page_size - 1 in
  (* Slow translation path: charged page-table walk, then the OS fault
     handler, then retry. Each retry re-enters [Tlb.translate] so the TLB
     hit/miss accounting is identical to the pre-fast-path runner (which
     re-probed via [Tlb.lookup] on every pass of its recursion). *)
  let rec translate_slow vaddr ~write ~retries =
    match Page_table.walk mm.Process.pgtable io ~vaddr with
    | Some (frame, flags) when (not write) || flags.Stramash_kernel.Pte.writable ->
        Tlb.insert tlb ~asid ~vpage:(Addr.page_of vaddr)
          { Tlb.frame; writable = flags.Stramash_kernel.Pte.writable };
        frame
    | _ ->
        if retries >= max_fault_retries then
          failwith
            (Printf.sprintf "fault loop at 0x%x (%s, write=%b)" vaddr
               (Node_id.to_string node) write);
        (* The CLI edge of the typed-error API: an unrecoverable fault
           (segfault, OOM beyond hotplug) terminates the run as an
           exception with the error's rendering. *)
        (match Os.handle_fault (Machine.os machine) ~env ~proc ~node ~vaddr ~write with
        | Ok () -> ()
        | Error e -> raise (Stramash_fault_inject.Fault.Error e));
        let frame = Tlb.translate tlb ~asid ~vpage:(Addr.page_of vaddr) ~write in
        if frame >= 0 then frame else translate_slow vaddr ~write ~retries:(retries + 1)
  in
  (* Fused TLB probe + permission check + paddr assembly, allocation-free
     on a hit. [Tlb.translate] returns the frame, or [miss]/[not_writable];
     both negatives fall to the charged walk (a write hit on a read-only
     entry was a counted TLB hit in the reference model too — the walk is
     how the reference discovered the permission fault). *)
  let data_paddr vaddr ~write =
    let frame = Tlb.translate tlb ~asid ~vpage:(vaddr lsr page_shift) ~write in
    let frame = if frame >= 0 then frame else translate_slow vaddr ~write ~retries:0 in
    (frame lsl page_shift) + (vaddr land page_mask)
  in
  let load_slow width vaddr =
    let paddr = data_paddr vaddr ~write:false in
    let lat = Cache_sim.access cache ~node Cache_sim.Load ~paddr in
    (match sample with None -> () | Some f -> f ~vaddr ~write:false lat);
    Meter.add meter (stall lat);
    if width = 8 then Phys_mem.read_u64 phys paddr else Phys_mem.read phys paddr ~width
  in
  let store_slow width vaddr value =
    let paddr = data_paddr vaddr ~write:true in
    let lat = Cache_sim.access cache ~node Cache_sim.Store ~paddr in
    (match sample with None -> () | Some f -> f ~vaddr ~write:true lat);
    Meter.add meter (stall lat);
    if width = 8 then Phys_mem.write_u64 phys paddr value
    else Phys_mem.write phys paddr ~width value
  in
  let fetch_slow vaddr =
    let paddr = data_paddr vaddr ~write:false in
    let lat = Cache_sim.access cache ~node Cache_sim.Ifetch ~paddr in
    (match sample with None -> () | Some f -> f ~vaddr ~write:false lat);
    (* one base cycle per instruction + any fetch stall *)
    Meter.add meter (1 + stall lat)
  in
  (* Fused fast path: when the Fast cache engine is authoritative for
     every access (no probes) and no placement sampler is attached, the
     all-hit per-instruction chain — TLB probe, L0/L1 replay, meter
     charge, physical access — runs inside one closure with no
     cross-module calls. The closures re-prove {e every} hit condition
     against the live arrays and commit no counter, LRU or meter mutation
     until all of them pass; any condition failing falls back to the
     reference closure above, which recounts the access from scratch
     (both the TLB probe and the L0 probe are pure until their commit, so
     the fallback observes exactly the reference state). On the committed
     path the effects are, in reference order: the TLB hit count, the
     Cache_sim L0-hit counter set, the L1 LRU touch (same way, same tick
     advance), the meter charge (1 + 0 stall for a fetch, 0 for data at
     L1 latency — [lat_l1 > l1_lat] is never true), and the [Phys_mem]
     byte access via the page-pointer cache. [make_memio] runs at every
     scheduling quantum, so a mid-run mode flip, probe registration or
     sampler attach revives the reference closures at the next quantum
     boundary — within a quantum nothing can register one. *)
  match (Cache_sim.fast_path cache ~node, sample) with
  | Some fp, None ->
      let tv = Tlb.view tlb in
      let pv = Phys_mem.view phys in
      let s = fp.Cache_sim.fp_stats in
      let line_shift = Addr.line_shift in
      let phys_page frame =
        let ps = frame land pv.Phys_mem.pv_mask in
        if Array.unsafe_get pv.Phys_mem.pv_frames ps = frame then
          Array.unsafe_get pv.Phys_mem.pv_pages ps
        else Phys_mem.page_for phys frame
      in
      {
        Interp.load =
          (fun width vaddr ->
            let vpage = vaddr lsr page_shift in
            let ts = vpage land tv.Tlb.tv_mask in
            if
              Array.unsafe_get tv.Tlb.tv_vpages ts = vpage
              && Array.unsafe_get tv.Tlb.tv_asids ts = asid
            then begin
              let frame = (Array.unsafe_get tv.Tlb.tv_entries ts).Tlb.frame in
              let off = vaddr land page_mask in
              let line = ((frame lsl page_shift) + off) lsr line_shift in
              let slot = line land fp.Cache_sim.fp_slot_mask in
              let way = Array.unsafe_get fp.Cache_sim.fp_d_ways slot in
              let v = fp.Cache_sim.fp_d_v in
              if
                Array.unsafe_get fp.Cache_sim.fp_d_lines slot = line
                && Array.unsafe_get v.Level.v_tags way = line
              then begin
                incr tv.Tlb.tv_hits;
                s.Cache_sim.l0_hits <- s.Cache_sim.l0_hits + 1;
                s.Cache_sim.l1d_accesses <- s.Cache_sim.l1d_accesses + 1;
                s.Cache_sim.mem_accesses <- s.Cache_sim.mem_accesses + 1;
                s.Cache_sim.l1d_hits <- s.Cache_sim.l1d_hits + 1;
                let tk = v.Level.v_tick in
                tk := !tk + 1;
                Array.unsafe_set v.Level.v_stamp way !tk;
                (* data stall at L1 latency is 0 cycles: no meter charge *)
                let page = phys_page frame in
                match width with
                | 8 -> Bytes.get_int64_le page off
                | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le page off)) 0xFFFFFFFFL
                | 2 -> Int64.of_int (Bytes.get_uint16_le page off)
                | 1 -> Int64.of_int (Char.code (Bytes.get page off))
                | _ -> Phys_mem.read phys ((frame lsl page_shift) + off) ~width
              end
              else load_slow width vaddr
            end
            else load_slow width vaddr);
        store =
          (fun width vaddr value ->
            let vpage = vaddr lsr page_shift in
            let ts = vpage land tv.Tlb.tv_mask in
            if
              Array.unsafe_get tv.Tlb.tv_vpages ts = vpage
              && Array.unsafe_get tv.Tlb.tv_asids ts = asid
            then begin
              let e = Array.unsafe_get tv.Tlb.tv_entries ts in
              let off = vaddr land page_mask in
              let line = ((e.Tlb.frame lsl page_shift) + off) lsr line_shift in
              let slot = line land fp.Cache_sim.fp_slot_mask in
              let way = Array.unsafe_get fp.Cache_sim.fp_d_ways slot in
              let v = fp.Cache_sim.fp_d_v in
              if
                e.Tlb.writable
                && Array.unsafe_get fp.Cache_sim.fp_d_lines slot = line
                && Array.unsafe_get fp.Cache_sim.fp_d_store_m slot
                && Array.unsafe_get v.Level.v_tags way = line
              then begin
                incr tv.Tlb.tv_hits;
                s.Cache_sim.l0_hits <- s.Cache_sim.l0_hits + 1;
                s.Cache_sim.l1d_accesses <- s.Cache_sim.l1d_accesses + 1;
                s.Cache_sim.mem_accesses <- s.Cache_sim.mem_accesses + 1;
                s.Cache_sim.l1d_hits <- s.Cache_sim.l1d_hits + 1;
                let tk = v.Level.v_tick in
                tk := !tk + 1;
                Array.unsafe_set v.Level.v_stamp way !tk;
                let page = phys_page e.Tlb.frame in
                match width with
                | 8 -> Bytes.set_int64_le page off value
                | 4 -> Bytes.set_int32_le page off (Int64.to_int32 value)
                | 2 -> Bytes.set_uint16_le page off (Int64.to_int (Int64.logand value 0xFFFFL))
                | 1 -> Bytes.set page off (Char.chr (Int64.to_int (Int64.logand value 0xFFL)))
                | _ -> Phys_mem.write phys ((e.Tlb.frame lsl page_shift) + off) ~width value
              end
              else store_slow width vaddr value
            end
            else store_slow width vaddr value);
        fetch =
          (fun vaddr ->
            let vpage = vaddr lsr page_shift in
            let ts = vpage land tv.Tlb.tv_mask in
            if
              Array.unsafe_get tv.Tlb.tv_vpages ts = vpage
              && Array.unsafe_get tv.Tlb.tv_asids ts = asid
            then begin
              let frame = (Array.unsafe_get tv.Tlb.tv_entries ts).Tlb.frame in
              let line = ((frame lsl page_shift) + (vaddr land page_mask)) lsr line_shift in
              let slot = line land fp.Cache_sim.fp_slot_mask in
              let way = Array.unsafe_get fp.Cache_sim.fp_i_ways slot in
              let v = fp.Cache_sim.fp_i_v in
              if
                Array.unsafe_get fp.Cache_sim.fp_i_lines slot = line
                && Array.unsafe_get v.Level.v_tags way = line
              then begin
                incr tv.Tlb.tv_hits;
                s.Cache_sim.l0_hits <- s.Cache_sim.l0_hits + 1;
                s.Cache_sim.l1i_accesses <- s.Cache_sim.l1i_accesses + 1;
                s.Cache_sim.mem_accesses <- s.Cache_sim.mem_accesses + 1;
                s.Cache_sim.l1i_hits <- s.Cache_sim.l1i_hits + 1;
                let tk = v.Level.v_tick in
                tk := !tk + 1;
                Array.unsafe_set v.Level.v_stamp way !tk;
                (* one base cycle per instruction; fetch stall at L1 is 0 *)
                meter.Meter.cycles <- meter.Meter.cycles + 1
              end
              else fetch_slow vaddr
            end
            else fetch_slow vaddr);
      }
  | _ -> { Interp.load = load_slow; store = store_slow; fetch = fetch_slow }

let resolve_futex_args thread (syscall : Mir.syscall) =
  let regs = Interp.regs thread.Thread.cpu in
  match syscall with
  | Mir.Futex_wait { uaddr; expected } ->
      `Wait (Int64.to_int regs.(uaddr), regs.(expected))
  | Mir.Futex_wake { uaddr; nwake } -> `Wake (Int64.to_int regs.(uaddr), nwake)

(* Assemble the result from the machine's counters plus the scheduler's
   accumulators. (This replaces an earlier [collect] helper that
   hard-zeroed icounts/stalls and made [run_scheduler] patch the record
   afterwards; everything is now collected in one place.) *)
let collect machine ~node_icounts ~migrations ~user_stalls ~idle ~marks =
  let env = Machine.env machine in
  let os = Machine.os machine in
  let cache = env.Env.cache in
  let node_cycles = Array.map Meter.get env.Env.meters in
  let wall = Array.fold_left max 0 node_cycles in
  let per_node stat =
    Array.of_list (List.map (fun node -> Cache_sim.stat cache node stat) Node_id.all)
  in
  {
    os_name = Os.name os;
    hw_model = env.Env.hw_model;
    wall_cycles = wall;
    node_cycles;
    node_icounts;
    instructions = Array.fold_left ( + ) 0 node_icounts;
    migrations;
    messages = Os.message_count os;
    replicated_pages = Os.replicated_pages os;
    tlb_misses = Array.map Tlb.misses env.Env.tlbs;
    cache = Cache_sim.stats cache;
    phase_marks = marks;
    node_user_stalls = user_stalls;
    node_idle = idle;
    ext =
      {
        l0_hits = per_node "l0_hits";
        l0_misses = per_node "l0_misses";
        node_downtime =
          (let liveness = env.Env.liveness in
           Array.of_list
             (List.map
                (fun node ->
                  (* completed downtimes, plus the open interval of a node
                     still dead at collection *)
                  Liveness.downtime liveness node
                  + (if Liveness.is_alive liveness node then 0
                     else wall - Liveness.died_at liveness node))
                Node_id.all));
        placement =
          (match Machine.placement machine with
          | Some engine -> Placement.counters engine
          | None -> []);
        trace_cache = Machine.trace_cache_counters machine;
      };
  }

(* The scheduler: run the runnable thread whose node clock is lowest,
   interleaving in [fuel]-instruction quanta. Handles migration points,
   futex syscalls and completion for any number of threads. *)
(* Deterministic chaos mailbox: the pending crash-stop kills and
   restarts the scheduler drains at quantum boundaries. Drain order is a
   pure function of simulated time — due-time ascending, restart before
   kill on a tie (a node revived at cycle T must be back before a
   same-cycle kill targets its peer; the schedule never leaves both
   nodes dead at once). Nothing about the order depends on host
   scheduling or list-construction accidents, which is what lets
   1-domain and N-domain soaks replay the same failure sequence
   byte-for-byte. *)
module Chaos_mailbox = struct
  type event = Kill of Plan.node_event | Restart of Node_id.t

  type t = {
    mutable kills : Plan.node_event list; (* plan order = due order *)
    mutable restarts : (Node_id.t * int) list; (* sorted by due time *)
  }

  let create events = { kills = events; restarts = [] }

  let post_restart t node ~at =
    t.restarts <- List.merge (fun (_, a) (_, b) -> compare (a : int) b) t.restarts [ (node, at) ]

  let next_due t =
    let kill = match t.kills with ev :: _ -> Some (ev.Plan.kill_at, Kill ev) | [] -> None in
    let restart = match t.restarts with (n, at) :: _ -> Some (at, Restart n) | [] -> None in
    match (kill, restart) with
    | None, x | x, None -> x
    | Some (tk, _), Some (tr, _) -> if tr <= tk then restart else kill

  let pop t = function
    | Kill _ -> t.kills <- List.tl t.kills
    | Restart _ -> t.restarts <- List.tl t.restarts

  let earliest_restart t = match t.restarts with [] -> None | r :: _ -> Some r
  let restart_for t node = List.find_opt (fun (n, _) -> Node_id.equal n node) t.restarts

  let drain_restarts t =
    let rs = t.restarts in
    t.restarts <- [];
    rs
end

let run_scheduler ?on_recovery machine items ~fuel =
  (* items : (spec, proc, thread) list — each thread belongs to a process
     with its own migration plan *)
  let env = Machine.env machine in
  let os = Machine.os machine in
  let liveness = env.Env.liveness in
  let node_icounts = [| 0; 0 |] in
  let user_stalls = [| 0; 0 |] in
  let idle = [| 0; 0 |] in
  let migrations = ref 0 in
  let marks = ref [] in
  let seg_start = Hashtbl.create 8 in
  let threads = List.map (fun (_, _, th) -> th) items in
  let owner = Hashtbl.create 8 in
  List.iter
    (fun (spec, proc, th) ->
      Hashtbl.replace seg_start th.Thread.tid 0;
      Hashtbl.replace owner th.Thread.tid (spec, proc))
    items;
  let spec_of th = fst (Hashtbl.find owner th.Thread.tid) in
  let proc_of th = snd (Hashtbl.find owner th.Thread.tid) in
  (* Per-node depth-0 spans covering the whole run: their durations equal
     the meters' advance, which is what lets the attribution table be
     checked against the Meter cycle counts. *)
  let traced = Trace.enabled () in
  let run_spans =
    if traced then begin
      Trace.set_clock (fun node -> Meter.get (Env.meter env node));
      List.map
        (fun node ->
          Trace.span ~at:(Meter.get (Env.meter env node)) ~node ~subsys:"runner" ~op:"run" ())
        Node_id.all
    end
    else []
  in
  let account th =
    let count = Interp.icount th.Thread.cpu in
    let prev = Hashtbl.find seg_start th.Thread.tid in
    let idx = Node_id.index th.Thread.node in
    node_icounts.(idx) <- node_icounts.(idx) + (count - prev);
    Hashtbl.replace seg_start th.Thread.tid count
  in
  let sync_clock ~from_node ~to_node =
    let src = Env.meter env from_node in
    let dst = Env.meter env to_node in
    if Meter.get dst < Meter.get src then begin
      idle.(Node_id.index to_node) <- idle.(Node_id.index to_node) + (Meter.get src - Meter.get dst);
      Meter.set dst (Meter.get src)
    end
  in
  (* Paranoid mode: beyond the per-access cross-check inside Cache_sim,
     audit the structural invariants (cache inclusion/directory agreement,
     phys page-pointer cache) at scheduling-quantum boundaries. The audit
     walks every tracked line, so it runs on a deterministic stride rather
     than every quantum. *)
  let paranoid = Cache_sim.mode env.Env.cache = Cache_sim.Paranoid in
  let quanta = ref 0 in
  let audit () =
    if paranoid then begin
      incr quanta;
      if !quanta land 63 = 0 then begin
        (match Cache_sim.check_consistency env.Env.cache with
        | Ok () -> ()
        | Error msg -> raise (Cache_sim.Divergence ("paranoid audit: " ^ msg)));
        match Phys_mem.self_check env.Env.phys with
        | Ok () -> ()
        | Error msg -> raise (Cache_sim.Divergence ("paranoid audit: " ^ msg))
      end
    end
  in
  let finished th = th.Thread.state = Thread.Finished in
  (* --- crash-stop chaos schedule (quantum-boundary processing) ---------- *)
  let chaos_events =
    match Machine.inject_plan machine with Some p -> Plan.node_events p | None -> []
  in
  if chaos_events <> [] && not (Os.supports_chaos os) then
    invalid_arg "Runner: chaos schedule requires the Stramash personality";
  let mailbox = Chaos_mailbox.create chaos_events in
  let procs =
    List.fold_left
      (fun acc (_, p, _) ->
        if List.exists (fun q -> q.Process.pid = p.Process.pid) acc then acc else p :: acc)
      [] items
    |> List.rev
  in
  let wall () = Array.fold_left (fun a m -> max a (Meter.get m)) 0 env.Env.meters in
  (* Jump a node's clock to [at], accounting the gap as idle time. *)
  let advance_to node at =
    let m = Env.meter env node in
    if Meter.get m < at then begin
      idle.(Node_id.index node) <- idle.(Node_id.index node) + (at - Meter.get m);
      Meter.set m at
    end
  in
  (* Crash-stop injection and checkpoint restore can change control flow
     and memory mappings out from under a thread (restored register
     state, re-seeded pages), so any superblock trace built for a CPU on
     the affected node is dropped before that CPU runs again. *)
  let invalidate_node_traces node =
    List.iter
      (fun th ->
        if Node_id.equal th.Thread.node node then Interp.invalidate_traces th.Thread.cpu)
      (Machine.threads machine)
  in
  let do_kill (ev : Plan.node_event) =
    let node = ev.Plan.node in
    if not (Liveness.is_alive liveness (Node_id.other node)) then
      invalid_arg "Runner: chaos schedule kills a node while its peer is already dead";
    let now = wall () in
    Liveness.kill liveness node ~at:now;
    invalidate_node_traces node;
    Os.on_node_death os ~procs ~threads:(Machine.threads machine) ~node ~now;
    match ev.Plan.restart_after with
    | None -> ()
    | Some d -> Chaos_mailbox.post_restart mailbox node ~at:(now + d)
  in
  let do_restart node ~at =
    Liveness.revive liveness node ~at;
    advance_to node at;
    invalidate_node_traces node;
    Os.on_node_restart os ~procs ~node ~now:at;
    (* The checkpoint restore faithfully reinstalls any replica leaf the
       node held at death; if the replica was collapsed while it was
       down, the placement engine must correct that before any thread
       runs against the stale mapping. *)
    (match Machine.placement machine with
    | Some engine -> Placement.reconcile engine ~node
    | None -> ());
    match on_recovery with Some f -> f node | None -> ()
  in
  (* Watchdog bookkeeping: live nodes publish beats at their own clocks;
     a survivor whose peer has gone silent past the miss threshold
     declares it dead (the perceived-death event behind the detection
     metrics — ground-truth transitions are the schedule's job). *)
  let heartbeat_work () =
    match Os.heartbeat os with
    | None -> ()
    | Some hb ->
        List.iter
          (fun node ->
            if Liveness.is_alive liveness node then
              Os.heartbeat_tick os ~src:node ~now:(Meter.get (Env.meter env node)))
          Node_id.all;
        List.iter
          (fun peer ->
            if not (Liveness.is_alive liveness peer) then begin
              let survivor = Node_id.other peer in
              if Liveness.is_alive liveness survivor then begin
                let now = Meter.get (Env.meter env survivor) in
                if Heartbeat.suspects hb ~peer ~now && not (Heartbeat.is_suspected hb ~peer)
                then begin
                  Heartbeat.declare_dead hb ~peer ~now;
                  Os.on_peer_detected os ~node:peer ~now;
                  (* Actual detection latency (death to watchdog firing),
                     vs. the worst-case interval * miss_threshold bound. *)
                  match Machine.inject_plan machine with
                  | Some plan ->
                      Plan.note_detection_latency plan
                        ~cycles:(now - Liveness.died_at liveness peer)
                  | None -> ()
                end
              end
            end)
          Node_id.all
  in
  let rec process_chaos () =
    match Chaos_mailbox.next_due mailbox with
    | Some (at, ev) when at <= wall () ->
        Chaos_mailbox.pop mailbox ev;
        (match ev with
        | Chaos_mailbox.Kill ev -> do_kill ev
        | Chaos_mailbox.Restart node -> do_restart node ~at);
        process_chaos ()
    | _ -> heartbeat_work ()
  in
  let chaos = chaos_events <> [] in
  let rec loop () =
    if chaos then process_chaos ();
    let live = List.filter (fun th -> not (finished th)) threads in
    if live <> [] then begin
      let runnable =
        List.filter
          (fun th -> Thread.is_runnable th && Liveness.is_alive liveness th.Thread.node)
          live
      in
      match runnable with
      | [] -> (
          (* Nothing can run. If threads are frozen on a dead node and a
             restart is scheduled, idle the platform forward to it; with
             no restart coming, the failure is unrecoverable. *)
          let frozen =
            List.filter (fun th -> not (Liveness.is_alive liveness th.Thread.node)) live
          in
          match (Chaos_mailbox.earliest_restart mailbox, frozen) with
          | Some (_, at), _ ->
              List.iter
                (fun node -> if Liveness.is_alive liveness node then advance_to node at)
                Node_id.all;
              process_chaos ();
              loop ()
          | None, th :: _ ->
              raise
                (Fault.Error
                   (Fault.Node_dead
                      { node = Node_id.to_string th.Thread.node; op = "schedule" }))
          | _ ->
              raise
                (Deadlock
                   (String.concat ", "
                      (List.map
                         (fun th ->
                           Format.asprintf "tid%d:%a" th.Thread.tid Thread.pp_state
                             th.Thread.state)
                         live))))
      | _ ->
          let th =
            List.fold_left
              (fun best cand ->
                let mb = Meter.get (Env.meter env best.Thread.node) in
                let mc = Meter.get (Env.meter env cand.Thread.node) in
                if mc < mb then cand else best)
              (List.hd runnable) (List.tl runnable)
          in
          let memio = make_memio machine (proc_of th) th ~user_stalls in
          let outcome = Interp.run th.Thread.cpu memio ~fuel in
          audit ();
          Quantum.fire (Machine.quantum machine) ~now:(wall ());
          (match outcome with
          | Interp.Out_of_fuel -> account th
          | Interp.Halted ->
              account th;
              th.Thread.state <- Thread.Finished
          | Interp.Migrate point -> (
              account th;
              if not (List.mem_assoc point !marks) then begin
                marks := (point, Meter.get (Env.meter env th.Thread.node)) :: !marks;
                if traced then
                  Trace.instant ~node:th.Thread.node ~subsys:"runner" ~op:"phase"
                    ~tags:[ ("point", string_of_int point) ]
                    ()
              end;
              match Spec.target_for (spec_of th) point with
              | Some dst
                when Os.supports_migration os && not (Node_id.equal dst th.Thread.node) ->
                  let src_node = th.Thread.node in
                  if not (Liveness.is_alive liveness dst) then begin
                    (* Destination is crash-stopped: the migration request
                       blocks at the source until the peer returns. With no
                       restart scheduled the thread can never arrive. *)
                    match Chaos_mailbox.restart_for mailbox dst with
                    | None ->
                        raise
                          (Fault.Error
                             (Fault.Node_dead { node = Node_id.to_string dst; op = "migrate" }))
                    | Some (_, at) ->
                        let stall = at - Meter.get (Env.meter env src_node) in
                        advance_to src_node at;
                        (match Machine.inject_plan machine with
                        | Some p when stall > 0 -> Plan.add_degraded_cycles p ~cycles:stall
                        | _ -> ());
                        process_chaos ()
                  end;
                  let sp =
                    if traced then
                      Trace.span ~at:(Meter.get (Env.meter env src_node)) ~flow_root:true
                        ~node:src_node ~subsys:"runner" ~op:"migrate" ()
                    else Trace.null
                  in
                  Os.migrate os ~proc:(proc_of th) ~thread:th ~dst ~point;
                  incr migrations;
                  sync_clock ~from_node:src_node ~to_node:dst;
                  if sp != Trace.null then
                    Trace.close ~at:(Meter.get (Env.meter env src_node)) sp;
                  Hashtbl.replace seg_start th.Thread.tid (Interp.icount th.Thread.cpu)
              | Some _ | None -> ())
          | Interp.Syscall syscall -> (
              account th;
              match resolve_futex_args th syscall with
              | `Wait (uaddr, expected) -> (
                  match Os.futex_wait os ~env ~proc:(proc_of th) ~thread:th ~uaddr ~expected with
                  | `Block -> th.Thread.state <- Thread.Blocked_futex uaddr
                  | `Proceed -> ())
              | `Wake (uaddr, nwake) ->
                  let woken =
                    Os.futex_wake os ~env ~proc:(proc_of th) ~thread:th
                      ~threads:(Machine.threads machine) ~uaddr ~nwake
                  in
                  let wake_time = Meter.get (Env.meter env th.Thread.node) in
                  List.iter
                    (fun tid ->
                      match
                        List.find_opt (fun t2 -> t2.Thread.tid = tid) (Machine.threads machine)
                      with
                      | Some waiter ->
                          waiter.Thread.state <- Thread.Ready;
                          (* A waiter on a crash-stopped node becomes Ready
                             but its clock stays parked: it resumes when the
                             restart advances the node's meter. *)
                          if Liveness.is_alive liveness waiter.Thread.node then begin
                            let delivery =
                              if Node_id.equal waiter.Thread.node th.Thread.node then
                                Cycles.of_ns 300.0
                              else Ipi.cross_isa_ipi_cycles
                            in
                            let wm = Env.meter env waiter.Thread.node in
                            if Meter.get wm < wake_time + delivery then begin
                              let wi = Node_id.index waiter.Thread.node in
                              idle.(wi) <- idle.(wi) + (wake_time + delivery - Meter.get wm);
                              Meter.set wm (wake_time + delivery)
                            end
                          end
                      | None -> ())
                    woken));
          loop ()
    end
  in
  loop ();
  (* Restarts still pending when the workload finishes fire now: the
     platform ends the run fully recovered (kills that never came due are
     dropped). *)
  if chaos then
    List.iter (fun (node, at) -> do_restart node ~at) (Chaos_mailbox.drain_restarts mailbox);
  List.iter2
    (fun node sp -> Trace.close ~at:(Meter.get (Env.meter env node)) sp)
    (if run_spans = [] then [] else Node_id.all)
    run_spans;
  if paranoid then begin
    (match Cache_sim.check_consistency env.Env.cache with
    | Ok () -> ()
    | Error msg -> raise (Cache_sim.Divergence ("paranoid final audit: " ^ msg)));
    match Phys_mem.self_check env.Env.phys with
    | Ok () -> ()
    | Error msg -> raise (Cache_sim.Divergence ("paranoid final audit: " ^ msg))
  end;
  collect machine ~node_icounts ~migrations:!migrations ~user_stalls ~idle
    ~marks:(List.rev !marks)

let run ?on_recovery machine proc thread spec =
  run_scheduler ?on_recovery machine [ (spec, proc, thread) ] ~fuel:50_000

let run_threads ?on_recovery machine proc threads spec =
  run_scheduler ?on_recovery machine (List.map (fun th -> (spec, proc, th)) threads) ~fuel:400

let run_workloads ?on_recovery machine items = run_scheduler ?on_recovery machine items ~fuel:2_000

let pp_result fmt r =
  let pct x = 100.0 *. x in
  Format.fprintf fmt "=== %s / %s ===@." r.os_name (Layout.hw_model_to_string r.hw_model);
  List.iter
    (fun node ->
      let idx = Node_id.index node in
      let g name = Metrics.get r.cache (Node_id.to_string node ^ "." ^ name) in
      let rate h a = if a = 0 then 0.0 else float_of_int h /. float_of_int a in
      Format.fprintf fmt "%s:@." (Node_id.to_string node);
      Format.fprintf fmt "  L1 Cache Hit Rate: %.2f%%@."
        (pct
           (rate
              (g "l1d_hits" + g "l1i_hits")
              (g "l1d_accesses" + g "l1i_accesses")));
      (let l0_total = r.ext.l0_hits.(idx) + r.ext.l0_misses.(idx) in
       if l0_total > 0 then
         Format.fprintf fmt "  L0 Fast-Path Hit Rate: %.2f%% (%d of %d accesses)@."
           (pct (rate r.ext.l0_hits.(idx) l0_total))
           r.ext.l0_hits.(idx) l0_total);
      Format.fprintf fmt "  L2 Cache Hit Rate: %.2f%%@." (pct (rate (g "l2_hits") (g "l2_accesses")));
      Format.fprintf fmt "  L3 Cache Hit Rate: %.2f%%@." (pct (rate (g "l3_hits") (g "l3_accesses")));
      Format.fprintf fmt "  Local Memory Hits: %d@." (g "local_mem_hits");
      Format.fprintf fmt "  Remote Memory Hits: %d@." (g "remote_mem_hits");
      Format.fprintf fmt "  Remote Shared Memory Hits: %d@." (g "remote_shared_mem_hits");
      Format.fprintf fmt "  Number of Instructions: %d@." r.node_icounts.(idx);
      Format.fprintf fmt "  Runtime: %d cycles (%.3f ms)@." r.node_cycles.(idx)
        (Cycles.to_ms r.node_cycles.(idx)))
    Node_id.all;
  (match r.ext.trace_cache with
  | [] -> ()
  | tcs ->
      let g n = match List.assoc_opt n tcs with Some v -> v | None -> 0 in
      if g "tc.entered" > 0 then
        Format.fprintf fmt
          "Trace cache: %d built, %d entries, %d instructions replayed, %d side exits, %d flushes@."
          (g "tc.built") (g "tc.entered") (g "tc.instrs") (g "tc.side_exits") (g "tc.flushes"));
  Format.fprintf fmt "Wall: %d cycles (%.3f ms); migrations=%d messages=%d replicated=%d@."
    r.wall_cycles (Cycles.to_ms r.wall_cycles) r.migrations r.messages r.replicated_pages
