(** OS personality dispatch.

    [Vanilla] is the paper's no-migration baseline (a single kernel
    serving its local application); [Popcorn] the shared-nothing
    multiple-kernel baseline; [Stramash] the fused kernel. *)

type t =
  | Vanilla
  | Popcorn of Stramash_popcorn.Popcorn_os.t
  | Stramash of Stramash_core.Stramash_os.t

val name : t -> string
val supports_migration : t -> bool

val ensure_mm :
  t ->
  env:Stramash_kernel.Env.t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  Stramash_kernel.Process.mm

val handle_fault :
  t ->
  env:Stramash_kernel.Env.t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  (unit, Stramash_fault_inject.Fault.error) result
(** Typed at every personality: segfault and OOM come back as [Error],
    recoverable anomalies are absorbed by the personalities' retry and
    fallback paths. *)

val migrate :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  dst:Stramash_sim.Node_id.t ->
  point:int ->
  unit

val futex_wait :
  t ->
  env:Stramash_kernel.Env.t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  uaddr:int ->
  expected:int64 ->
  [ `Block | `Proceed ]

val futex_wake :
  t ->
  env:Stramash_kernel.Env.t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  threads:Stramash_kernel.Thread.t list ->
  uaddr:int ->
  nwake:int ->
  int list

val message_count : t -> int
val message_counts : t -> (string * int) list
val replicated_pages : t -> int
(** Popcorn: DSM page copies; Stramash: origin-fallback pages; Vanilla: 0. *)

val exit_process :
  t -> env:Stramash_kernel.Env.t -> proc:Stramash_kernel.Process.t -> unit
(** Process teardown and memory recycling (paper §6.4): each personality
    frees pages per its ownership rules, with teardown traffic charged. *)

val seed_resident_page : t -> proc:Stramash_kernel.Process.t -> vaddr:int -> frame:int -> unit
(** Loader hook: a page mapped eagerly at the origin must be known to the
    DSM protocol as origin-owned. *)

val reset_counters : t -> unit

(** {2 Crash-stop node failures}

    Stramash-only: the other personalities raise [Invalid_argument] when a
    chaos schedule reaches them. The runner drives these at quantum
    boundaries. *)

val supports_chaos : t -> bool

val heartbeat : t -> Stramash_interconnect.Heartbeat.t option
val heartbeat_tick : t -> src:Stramash_sim.Node_id.t -> now:int -> unit

val on_node_death :
  t ->
  procs:Stramash_kernel.Process.t list ->
  threads:Stramash_kernel.Thread.t list ->
  node:Stramash_sim.Node_id.t ->
  now:int ->
  unit

val on_peer_detected : t -> node:Stramash_sim.Node_id.t -> now:int -> unit

val on_node_restart :
  t -> procs:Stramash_kernel.Process.t list -> node:Stramash_sim.Node_id.t -> now:int -> unit
