(** Execution engine: drives threads through the interpreter, translating
    every access (TLB → charged page-table walk → OS fault handler) and
    feeding every memory reference through the cache simulator — the
    complete Stramash-QEMU execution model.

    Timing: one base cycle per instruction; stalls are charged for any
    access that misses the L1 (the fixed-non-memory-IPC model of §7.3).
    Migration synchronises the destination node's clock with the source's,
    so a single-threaded run's completion time is the final node's meter. *)

type ext = {
  l0_hits : int array;
  l0_misses : int array;
      (* per-node L0 line-filter outcomes (host-performance telemetry, not
         part of the simulated model: both arrays are all-zero in Reference
         mode and excluded from the [cache] registry so registries compare
         equal across modes) *)
  node_downtime : int array;
      (* simulated cycles each node spent crash-stopped (all-zero without a
         chaos schedule), including a still-open downtime at collection *)
  placement : (string * int) list;
      (* placement.* counter snapshot from the attached engine ([] when no
         engine is attached) *)
  trace_cache : (string * int) list;
      (* tc.* superblock trace-cache counters ([] when disabled); host
         telemetry like the L0 arrays — excluded from model metrics so
         registries compare equal with the cache on or off *)
}
(** Result-extension record: the per-PR counters (fast-path L0, chaos
    downtime, placement) collected in one place instead of as ad-hoc
    top-level fields. *)

type result = {
  os_name : string;
  hw_model : Stramash_mem.Layout.hw_model;
  wall_cycles : int;
  node_cycles : int array; (* per Node_id.index *)
  node_icounts : int array;
  instructions : int;
  migrations : int;
  messages : int;
  replicated_pages : int;
  tlb_misses : int array;
  cache : Stramash_sim.Metrics.registry; (* cache counters snapshot *)
  phase_marks : (int * int) list; (* (migration-point id, wall cycles when crossed) *)
  node_user_stalls : int array;
      (* memory-stall cycles charged to user-mode accesses per node; the
         paper's Fig. 9 breakdown separates INST (= instructions at CPI 1),
         memory overhead (these stalls), and MSG/OS work (the remainder) *)
  node_idle : int array;
      (* clock-synchronisation jumps (waiting for a migration arrival or a
         futex wake): simulated time during which the node did no work *)
  ext : ext;
}

val fastpath_counters : result -> (string * int) list
(** The L0 counters as labelled pairs ("x86.l0_hits", ...) for metrics
    snapshots and reports. *)

val node_busy : result -> Stramash_sim.Node_id.t -> int
(** Cycles of actual work on a node: its clock minus its idle jumps. *)

val phase_span : result -> start:int -> stop:int -> int
(** Cycles elapsed between two phase marks (both must be present). *)

val run :
  ?on_recovery:(Stramash_sim.Node_id.t -> unit) ->
  Machine.t ->
  Stramash_kernel.Process.t ->
  Stramash_kernel.Thread.t ->
  Spec.t ->
  result
(** Run a single thread to completion, following the spec's migration
    plan (ignored under an OS that cannot migrate).

    When the machine's fault plan carries a chaos schedule
    ({!Stramash_fault_inject.Plan.node_events}), the scheduler processes
    kills and restarts at quantum boundaries: a killed node's threads
    freeze, survivors degrade per {!Stramash_core.Stramash_fault}, and
    [on_recovery] fires after each completed restart (the chaos campaign's
    audit hook). A kill with no scheduled restart that strands unfinished
    threads raises [Fault.Error (Node_dead _)] — the unrecovered-failure
    outcome. Chaos schedules require the Stramash personality. *)

val run_threads :
  ?on_recovery:(Stramash_sim.Node_id.t -> unit) ->
  Machine.t ->
  Stramash_kernel.Process.t ->
  Stramash_kernel.Thread.t list ->
  Spec.t ->
  result
(** Interleave several threads (smallest-clock-first), with futex
    block/wake semantics; used by the futex microbenchmark. *)

val run_workloads :
  ?on_recovery:(Stramash_sim.Node_id.t -> unit) ->
  Machine.t ->
  (Spec.t * Stramash_kernel.Process.t * Stramash_kernel.Thread.t) list ->
  result
(** Run several processes concurrently on the platform (each with its own
    spec/migration plan); threads interleave smallest-clock-first, so two
    threads resident on the same node serialise on that node's single
    simulated core. *)

val pp_result : Format.formatter -> result -> unit
(** Artifact-style per-node dump (cache hit rates, memory hit classes,
    runtime) as in the paper's appendix A.5 example output. *)

val quantum_boundary : Machine.t -> count:int ref -> now:int -> unit
(** One scheduling-quantum boundary outside [run]'s scheduler loop: in
    Paranoid mode, run the structural invariant audit on the same stride
    the scheduler uses, then fire the machine's quantum hooks (placement
    epoch tick, integrity scrubber) at [now]. The open-loop serving
    subsystem calls this between request admissions so quantum-driven
    machinery runs under request load exactly as it does under [run];
    [count] is the caller's running quantum counter. *)
