(** The assembled platform: two kernel instances on cache-coherent shared
    memory under a chosen hardware model, running one OS personality.

    This is the library's main entry point:

    {[
      let m = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
      let proc, thread = Machine.load m spec in
      let result = Runner.run m proc thread spec in
      ...
    ]} *)

type os_choice =
  | Vanilla
  | Popcorn_shm
  | Popcorn_tcp
  | Stramash_kernel_os
  | Stramash_no_futex_opt (* Fig. 13 ablation: fused kernel, regular futex *)

val os_choice_name : os_choice -> string
val all_os_choices : os_choice list

type config = {
  hw_model : Stramash_mem.Layout.hw_model;
  os : os_choice;
  l3_size : int option; (* override the scaled default (Fig. 10 sweep) *)
  cache_config : Stramash_cache.Config.t option;
      (* full geometry/latency override (Fig. 7 machine-pair validation) *)
  msg_notify : Stramash_popcorn.Msg_layer.notify_mode;
      (* SHM messaging notification: IPI (default) or polling (§6.2) *)
  seed : int64;
  inject : Stramash_fault_inject.Plan.config option;
      (* arm deterministic fault injection; the plan seed is derived from
         [seed], so the same config replays the same faults *)
  cache_mode : Stramash_cache.Cache_sim.mode;
      (* Fast (default) uses the L0/fused fast paths; Reference is the
         pre-fast-path simulator for baselines; Paranoid cross-checks
         every access and makes the runner audit invariants at each
         scheduling quantum *)
  trace_cache : bool;
      (* superblock trace cache in the interpreter (default true):
         host-side replay machinery only — simulated counters, cycles
         and memory contents are bit-identical either way *)
}

val default_config : config

type t

val create : config -> t
val config : t -> config
val env : t -> Stramash_kernel.Env.t
val os : t -> Os.t

val inject_plan : t -> Stramash_fault_inject.Plan.t option
(** The armed fault plan, if [config.inject] was set — source of the
    injection metrics and recovery-latency histogram. *)

val cache : t -> Stramash_cache.Cache_sim.t
val rng : t -> Stramash_sim.Rng.t
val threads : t -> Stramash_kernel.Thread.t list

val quantum : t -> Stramash_sim.Quantum.t
(** Scheduling-quantum boundary hooks; the runner fires them after every
    quantum's invariant audit. *)

val placement : t -> Stramash_placement.Engine.t option

val trace_cache : t -> Stramash_isa.Interp.tc option
(** The machine-wide trace-cache handle ([None] with [trace_cache =
    false]); every interpreter this machine creates shares it. *)

val trace_cache_counters : t -> (string * int) list
(** Host-side [tc.*] counters; [] with the cache disabled. Kept out of
    the model metrics so registries stay bit-identical on/off. *)

val attach_placement : t -> Stramash_placement.Engine.t -> unit
(** Wire a placement engine into the machine: its epoch tick joins the
    quantum hooks, its collapse trigger joins the fault path, and [load]/
    [exit_process] register and drain processes with it. Must be called
    before any [load], at most once, and only on the Stramash
    personality — [Invalid_argument] otherwise. *)

val load : t -> Spec.t -> Stramash_kernel.Process.t * Stramash_kernel.Thread.t
(** Create the process at its origin (x86), build the origin memory
    descriptor, map code and eager data segments (load-time work is not
    charged to simulated time), and create the main thread. *)

val spawn_thread :
  t ->
  Stramash_kernel.Process.t ->
  at_point:int ->
  node:Stramash_sim.Node_id.t ->
  Stramash_kernel.Thread.t
(** Start an extra thread at the instruction after migration point
    [at_point], on [node] (its register r0 is set to the new tid). *)

val meter_of : t -> Stramash_sim.Node_id.t -> Stramash_sim.Meter.t
val reset_meters : t -> unit

val exit_process : t -> Stramash_kernel.Process.t -> unit
(** Tear the process down and recycle its memory (paper §6.4): each kernel
    instance invalidates its PTEs and frees the frames it allocated. *)

val used_frames : t -> Stramash_sim.Node_id.t -> int
(** Frames currently allocated by a kernel (leak/recycling diagnostics). *)

val read_user :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  width:int ->
  int64 option
(** Uncharged debug/verification read through [node]'s page table
    ([None] if unmapped there). *)

val read_user_f64 :
  t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> vaddr:int -> float option
