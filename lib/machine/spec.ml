type init = Zeroed | F64s of float array | I64s of int64 array | I32s of int32 array

type segment = { base : int; len : int; writable : bool; eager : bool; init : init }

type t = {
  name : string;
  description : string;
  mir : Stramash_isa.Mir.program;
  segments : segment list;
  migration_targets : (int * Stramash_sim.Node_id.t) list;
}

let segment ?(writable = true) ?(eager = true) ?(init = Zeroed) ~base ~len () =
  assert (base land (Stramash_mem.Addr.page_size - 1) = 0);
  assert (len > 0);
  { base; len; writable; eager; init }

let stack_base = 0x7FF0_0000
let stack_len = 64 * 1024
let heap_base = 0x1000_0000

let target_for t id = List.assoc_opt id t.migration_targets
