module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Tlb = Stramash_kernel.Tlb
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Mir = Stramash_isa.Mir
module Codegen = Stramash_isa.Codegen
module Machine_code = Stramash_isa.Machine
module Interp = Stramash_isa.Interp
module Popcorn_os = Stramash_popcorn.Popcorn_os
module Msg_layer = Stramash_popcorn.Msg_layer
module Stramash_os = Stramash_core.Stramash_os
module Plan = Stramash_fault_inject.Plan
module Integrity = Stramash_fault_inject.Integrity
module Quantum = Stramash_sim.Quantum
module Placement = Stramash_placement.Engine

type os_choice =
  | Vanilla
  | Popcorn_shm
  | Popcorn_tcp
  | Stramash_kernel_os
  | Stramash_no_futex_opt

let os_choice_name = function
  | Vanilla -> "vanilla"
  | Popcorn_shm -> "popcorn-shm"
  | Popcorn_tcp -> "popcorn-tcp"
  | Stramash_kernel_os -> "stramash"
  | Stramash_no_futex_opt -> "stramash-nofutexopt"

let all_os_choices = [ Vanilla; Popcorn_tcp; Popcorn_shm; Stramash_kernel_os ]

type config = {
  hw_model : Layout.hw_model;
  os : os_choice;
  l3_size : int option;
  cache_config : Cache_config.t option;
  msg_notify : Msg_layer.notify_mode;
  seed : int64;
  inject : Plan.config option;
  cache_mode : Cache_sim.mode;
  trace_cache : bool;
}

let default_config =
  {
    hw_model = Layout.Shared;
    os = Stramash_kernel_os;
    l3_size = None;
    cache_config = None;
    msg_notify = Msg_layer.Ipi;
    seed = 0xC0FFEEL;
    inject = None;
    cache_mode = Cache_sim.Fast;
    trace_cache = true;
  }

type t = {
  cfg : config;
  env : Env.t;
  os : Os.t;
  inject_plan : Plan.t option;
  rng : Rng.t;
  quantum : Quantum.t;
  (* One trace-cache handle per machine (None with the cache disabled):
     every interpreter the machine creates shares it, so its counters
     describe the whole run and never cross a machine (or host-domain)
     boundary. *)
  tc : Interp.tc option;
  mutable placement : Placement.t option;
  mutable next_pid : int;
  mutable next_tid : int; (* machine-global: futex queues and the scheduler key on tids *)
  mutable all_threads : Thread.t list;
}

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid

let create cfg =
  let cache_cfg =
    let base =
      match cfg.cache_config with
      | Some c -> { c with Cache_config.hw_model = cfg.hw_model }
      | None -> Cache_config.default cfg.hw_model
    in
    match cfg.l3_size with None -> base | Some size -> Cache_config.with_l3_size base size
  in
  let cache = Cache_sim.create cache_cfg in
  Cache_sim.set_mode cache cfg.cache_mode;
  let phys = Phys_mem.create () in
  let kernels =
    [| Kernel.boot ~node:Node_id.X86 ~phys; Kernel.boot ~node:Node_id.Arm ~phys |]
  in
  let env =
    {
      Env.cache;
      phys;
      kernels;
      meters = [| Meter.create (); Meter.create () |];
      tlbs = [| Tlb.create (); Tlb.create () |];
      hw_model = cfg.hw_model;
      liveness = Stramash_sim.Liveness.create ();
    }
  in
  (* The plan's streams derive from a seed decorrelated from — but fully
     determined by — the machine seed, so arming injection never perturbs
     the workload RNG and the whole run stays replayable from cfg. *)
  let inject_plan =
    Option.map (fun pc -> Plan.create ~seed:(Int64.logxor cfg.seed 0x5EEDFA17DEADFA17L) pc)
      cfg.inject
  in
  let inject = inject_plan in
  let os =
    match cfg.os with
    | Vanilla -> Os.Vanilla
    | Popcorn_shm ->
        Os.Popcorn (Popcorn_os.create env Msg_layer.Shm ~notify:cfg.msg_notify ?inject ())
    | Popcorn_tcp -> Os.Popcorn (Popcorn_os.create env Msg_layer.Tcp ?inject ())
    | Stramash_kernel_os -> Os.Stramash (Stramash_os.create ?inject env ())
    | Stramash_no_futex_opt ->
        Os.Stramash (Stramash_os.create ~futex_optimized:false ?inject env ())
  in
  let t =
    {
      cfg;
      env;
      os;
      inject_plan;
      rng = Rng.create ~seed:cfg.seed;
      quantum = Quantum.create ();
      tc = (if cfg.trace_cache then Some (Interp.make_tc ()) else None);
      placement = None;
      next_pid = 1;
      next_tid = 0;
      all_threads = [];
    }
  in
  (* The integrity daemon (SDC injector + background page scrubber)
     steps at every scheduling-quantum boundary, before the placement
     tick (hooks fire in registration order). Scan cycles model one
     scrubber thread per kernel working the roster in halves; each
     repair's re-fetch is billed to the node whose frame was healed —
     cross-ISA when the clean copy lives on the peer. Plans without a
     corruption schedule or scrubber register nothing. *)
  (match Option.map Plan.integrity inject_plan with
  | Some (Some st) ->
      Quantum.add t.quantum (fun ~now ->
          let s = Integrity.tick st phys ~now in
          let scan = s.Integrity.ts_scanned * Integrity.scan_cost_cycles in
          if scan > 0 then begin
            Meter.add (Env.meter env Node_id.X86) ((scan + 1) / 2);
            Meter.add (Env.meter env Node_id.Arm) (scan / 2)
          end;
          List.iter
            (fun (r : Integrity.repair) ->
              Meter.add
                (Env.meter env r.Integrity.rp_dst)
                (if Node_id.equal r.Integrity.rp_src r.Integrity.rp_dst then
                   Integrity.repair_local_cycles
                 else Integrity.repair_cross_cycles))
            s.Integrity.ts_repairs)
  | _ -> ());
  t

let config t = t.cfg
let env t = t.env
let os t = t.os
let inject_plan t = t.inject_plan
let cache t = t.env.Env.cache
let rng t = t.rng
let threads t = t.all_threads
let meter_of t node = Env.meter t.env node
let quantum t = t.quantum
let placement t = t.placement
let trace_cache t = t.tc

let trace_cache_counters t =
  match t.tc with Some tc -> Interp.tc_counters tc | None -> []

(* The engine must see every access from the first instruction on, and
   its per-proc state starts at [load] — so attachment is only legal on a
   machine that has loaded nothing yet, and only once. *)
let attach_placement t engine =
  (match t.os with
  | Os.Stramash _ -> ()
  | _ -> invalid_arg "Machine.attach_placement: placement requires the Stramash personality");
  if t.next_pid > 1 then
    invalid_arg "Machine.attach_placement: attach before loading any process";
  (match t.placement with
  | Some _ -> invalid_arg "Machine.attach_placement: already attached"
  | None -> ());
  t.placement <- Some engine;
  Placement.install_write_hook engine;
  Quantum.add t.quantum (fun ~now -> Placement.tick engine ~now)

let reset_meters t = Array.iter Meter.reset t.env.Env.meters

(* Load-time page installation: no simulated cost (the paper measures
   post-boot, post-exec behaviour). *)
let silent_io t ~node =
  {
    Page_table.phys = t.env.Env.phys;
    charge_read = ignore;
    charge_write = ignore;
    alloc_table = (fun () -> Kernel.alloc_table_page (Env.kernel t.env node));
  }

let eager_map t ~proc ~node ~(mm : Process.mm) ~vaddr =
  let kernel = Env.kernel t.env node in
  let frame = Kernel.alloc_frame_exn kernel in
  Phys_mem.zero_page t.env.Env.phys frame;
  Page_table.map mm.Process.pgtable (silent_io t ~node) ~vaddr:(Addr.page_base vaddr)
    ~frame:(frame lsr Addr.page_shift) Pte.default_flags;
  Os.seed_resident_page t.os ~proc ~vaddr:(Addr.page_base vaddr) ~frame;
  frame

let write_init t ~frame_of ~base (init : Spec.init) ~len =
  let phys = t.env.Env.phys in
  let paddr_of vaddr = frame_of vaddr + Addr.page_offset vaddr in
  match init with
  | Spec.Zeroed -> ()
  | Spec.F64s values ->
      Array.iteri
        (fun i v ->
          let vaddr = base + (8 * i) in
          assert (8 * i < len);
          Phys_mem.host_write_f64 phys (paddr_of vaddr) v)
        values
  | Spec.I64s values ->
      Array.iteri
        (fun i v ->
          let vaddr = base + (8 * i) in
          assert (8 * i < len);
          Phys_mem.host_write_u64 phys (paddr_of vaddr) v)
        values
  | Spec.I32s values ->
      Array.iteri
        (fun i v ->
          let vaddr = base + (4 * i) in
          assert (4 * i < len);
          Phys_mem.write phys (paddr_of vaddr) ~width:4 (Int64.of_int32 v))
        values

let load t (spec : Spec.t) =
  let origin = Node_id.X86 in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let images =
    List.map (fun isa -> (isa, Codegen.lower ~isa spec.Spec.mir)) Node_id.all
  in
  let proc = Process.create ~pid ~origin ~mir:spec.Spec.mir ~images in
  let mm = Os.ensure_mm t.os ~env:t.env ~proc ~node:origin in
  (* Text segment: sized by the larger of the two encodings. *)
  let code_bytes =
    List.fold_left (fun acc (_, img) -> max acc img.Machine_code.code_bytes) Addr.page_size images
  in
  let code_end = Addr.align_up (Codegen.code_base + code_bytes) ~alignment:Addr.page_size in
  ignore (Vma.add mm.Process.vmas ~start:Codegen.code_base ~end_:code_end Vma.Code ~writable:false);
  let vaddr = ref Codegen.code_base in
  while !vaddr < code_end do
    ignore (eager_map t ~proc ~node:origin ~mm ~vaddr:!vaddr);
    vaddr := !vaddr + Addr.page_size
  done;
  (* Stack. *)
  ignore
    (Vma.add mm.Process.vmas ~start:Spec.stack_base ~end_:(Spec.stack_base + Spec.stack_len)
       Vma.Stack ~writable:true);
  (* Data segments. *)
  List.iter
    (fun (seg : Spec.segment) ->
      let seg_end = Addr.align_up (seg.Spec.base + seg.Spec.len) ~alignment:Addr.page_size in
      ignore
        (Vma.add mm.Process.vmas ~start:seg.Spec.base ~end_:seg_end
           (if seg.Spec.writable then Vma.Data else Vma.Data)
           ~writable:seg.Spec.writable);
      if seg.Spec.eager then begin
        let frames = Hashtbl.create 64 in
        let vaddr = ref seg.Spec.base in
        while !vaddr < seg_end do
          Hashtbl.add frames (Addr.page_of !vaddr) (eager_map t ~proc ~node:origin ~mm ~vaddr:!vaddr);
          vaddr := !vaddr + Addr.page_size
        done;
        let frame_of vaddr = Hashtbl.find frames (Addr.page_of vaddr) in
        write_init t ~frame_of ~base:seg.Spec.base seg.Spec.init ~len:seg.Spec.len
      end)
    spec.Spec.segments;
  let cpu = Interp.create ?tc:t.tc (Process.image proc origin) in
  let thread = Thread.create ~tid:(fresh_tid t) ~origin ~cpu in
  t.all_threads <- thread :: t.all_threads;
  (match t.placement with Some e -> Placement.register_proc e proc | None -> ());
  (proc, thread)

let exit_process t proc =
  (* Collapse outstanding replicas first so the §6.4 exit sweep sees the
     mappings and allocator state it expects. *)
  (match t.placement with Some e -> Placement.drain e ~proc | None -> ());
  Os.exit_process t.os ~env:t.env ~proc

let used_frames t node =
  Stramash_kernel.Frame_alloc.used_frames (Env.kernel t.env node).Kernel.frames

let read_user t ~proc ~node ~vaddr ~width =
  match Process.mm proc node with
  | None -> None
  | Some mm -> (
      let io =
        {
          Page_table.phys = t.env.Env.phys;
          charge_read = ignore;
          charge_write = ignore;
          alloc_table = (fun () -> invalid_arg "Machine.read_user: walk must not allocate");
        }
      in
      match Page_table.walk mm.Process.pgtable io ~vaddr with
      | None -> None
      | Some (frame, _) ->
          let paddr = (frame lsl Addr.page_shift) + Addr.page_offset vaddr in
          Some (Phys_mem.read t.env.Env.phys paddr ~width))

let read_user_f64 t ~proc ~node ~vaddr =
  Option.map Int64.float_of_bits (read_user t ~proc ~node ~vaddr ~width:8)

let spawn_thread t proc ~at_point ~node =
  ignore (Os.ensure_mm t.os ~env:t.env ~proc ~node);
  let image = Process.image proc node in
  let cpu = Interp.create ?tc:t.tc image in
  ignore (Process.fresh_tid proc);
  let tid = fresh_tid t in
  Interp.set_pc cpu (Machine_code.find_migrate_pc image at_point + 1);
  Interp.set_reg cpu 0 (Int64.of_int tid);
  let thread = Thread.create ~tid ~origin:proc.Process.origin ~cpu in
  thread.Thread.node <- node;
  t.all_threads <- thread :: t.all_threads;
  thread
