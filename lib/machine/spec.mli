(** Workload specification: a Mir program plus its memory image and
    migration plan. This is what benchmarks hand to {!Machine.load}. *)

type init =
  | Zeroed
  | F64s of float array
  | I64s of int64 array
  | I32s of int32 array

type segment = {
  base : int; (* page-aligned virtual address *)
  len : int; (* bytes *)
  writable : bool;
  eager : bool; (* mapped + initialised at load (origin); else demand-faulted *)
  init : init;
}

type t = {
  name : string;
  description : string;
  mir : Stramash_isa.Mir.program;
  segments : segment list;
  (* At Migrate_point [id], move the thread to this node (no-op if already
     there). Points absent from the list are ignored. *)
  migration_targets : (int * Stramash_sim.Node_id.t) list;
}

val segment : ?writable:bool -> ?eager:bool -> ?init:init -> base:int -> len:int -> unit -> segment
val stack_base : int
val stack_len : int
val heap_base : int
(** Conventional layout constants shared by the bundled workloads. *)

val target_for : t -> int -> Stramash_sim.Node_id.t option
