module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Tlb = Stramash_kernel.Tlb
module Popcorn_os = Stramash_popcorn.Popcorn_os
module Dsm = Stramash_popcorn.Dsm
module Msg_layer = Stramash_popcorn.Msg_layer
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault

type t = Vanilla | Popcorn of Popcorn_os.t | Stramash of Stramash_os.t

let name = function
  | Vanilla -> "vanilla"
  | Popcorn p -> (
      match Msg_layer.transport (Popcorn_os.msg p) with
      | Msg_layer.Shm -> "popcorn-shm"
      | Msg_layer.Tcp -> "popcorn-tcp")
  | Stramash _ -> "stramash"

let supports_migration = function Vanilla -> false | Popcorn _ | Stramash _ -> true

let make_mm ~env ~node =
  let kernel = Env.kernel env node in
  let io = Env.pt_io env ~actor:node ~owner:node in
  {
    Process.vmas = Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap);
    pgtable = Page_table.create ~isa:node io;
    ptl_addr = Kheap.alloc_line kernel.Kernel.kheap;
  }

let ensure_mm t ~env ~proc ~node =
  match t with
  | Vanilla -> (
      match Process.mm proc node with
      | Some mm -> mm
      | None ->
          let mm = make_mm ~env ~node in
          Process.add_mm proc node mm;
          mm)
  | Popcorn p -> Dsm.ensure_mm (Popcorn_os.dsm p) ~proc ~node
  | Stramash s -> Stramash_fault.ensure_mm (Stramash_os.faults s) ~proc ~node

(* Vanilla: a classic local fault — find the VMA, allocate a frame from the
   local kernel, map it. *)
let vanilla_fault ~env ~proc ~node ~vaddr =
  let mm = Process.mm_exn proc node in
  let charge v = Env.charge_load env node ~paddr:v.Vma.struct_addr in
  match Vma.find ~visit:charge mm.Process.vmas ~vaddr with
  | None ->
      Error
        (Stramash_fault_inject.Fault.Segfault
           { pid = proc.Process.pid; vaddr; node = Node_id.to_string node })
  | Some vma -> (
      let kernel = Env.kernel env node in
      match Stramash_kernel.Frame_alloc.alloc kernel.Kernel.frames with
      | None -> Error (Stramash_fault_inject.Fault.Out_of_memory { node = Node_id.to_string node })
      | Some frame ->
          Phys_mem.zero_page env.Env.phys frame;
          let io = Env.pt_io env ~actor:node ~owner:node in
          Page_table.map mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
            ~frame:(frame lsr Addr.page_shift)
            { Pte.default_flags with writable = vma.Vma.writable };
          Tlb.flush_page (Env.tlb env node) ~vpage:(Addr.page_of vaddr);
          Ok ())

let handle_fault t ~env ~proc ~node ~vaddr ~write =
  match t with
  | Vanilla -> vanilla_fault ~env ~proc ~node ~vaddr
  | Popcorn p -> Popcorn_os.handle_fault p ~proc ~node ~vaddr ~write
  | Stramash s -> Stramash_os.handle_fault s ~proc ~node ~vaddr ~write

let migrate t ~proc ~thread ~dst ~point =
  match t with
  | Vanilla -> invalid_arg "Vanilla OS cannot migrate threads"
  | Popcorn p -> Popcorn_os.migrate p ~proc ~thread ~dst ~point
  | Stramash s -> Stramash_os.migrate s ~proc ~thread ~dst ~point

let futex_wait t ~env ~proc ~thread ~uaddr ~expected =
  ignore env;
  match t with
  | Vanilla -> invalid_arg "Vanilla OS futexes are exercised via Popcorn/Stramash"
  | Popcorn p -> Popcorn_os.futex_wait p ~proc ~thread ~uaddr ~expected
  | Stramash s -> Stramash_os.futex_wait s ~proc ~thread ~uaddr ~expected

let futex_wake t ~env ~proc ~thread ~threads ~uaddr ~nwake =
  ignore env;
  match t with
  | Vanilla -> invalid_arg "Vanilla OS futexes are exercised via Popcorn/Stramash"
  | Popcorn p -> Popcorn_os.futex_wake p ~proc ~thread ~threads ~uaddr ~nwake
  | Stramash s -> Stramash_os.futex_wake s ~proc ~thread ~threads ~uaddr ~nwake

(* Vanilla teardown: unmap + free everything through the single kernel. *)
let vanilla_exit ~env ~proc =
  let node = proc.Process.origin in
  match Process.mm proc node with
  | None -> ()
  | Some mm ->
      let io = Env.pt_io env ~actor:node ~owner:node in
      let kernel = Env.kernel env node in
      Vma.iter mm.Process.vmas ~f:(fun vma ->
          let vaddr = ref vma.Vma.v_start in
          while !vaddr < vma.Vma.v_end do
            (match Page_table.walk mm.Process.pgtable io ~vaddr:!vaddr with
            | Some (frame, _) ->
                ignore (Page_table.unmap mm.Process.pgtable io ~vaddr:!vaddr);
                Tlb.flush_page (Env.tlb env node) ~vpage:(Addr.page_of !vaddr);
                Stramash_kernel.Frame_alloc.free kernel.Kernel.frames (frame lsl Addr.page_shift)
            | None -> ());
            vaddr := !vaddr + Addr.page_size
          done)

let exit_process t ~env ~proc =
  match t with
  | Vanilla -> vanilla_exit ~env ~proc
  | Popcorn p -> Popcorn_os.exit_process p ~proc
  | Stramash s -> Stramash_os.exit_process s ~proc

let message_count = function
  | Vanilla -> 0
  | Popcorn p -> Msg_layer.message_count (Popcorn_os.msg p)
  | Stramash s -> Msg_layer.message_count (Stramash_os.msg s)

let message_counts = function
  | Vanilla -> []
  | Popcorn p -> Msg_layer.counts (Popcorn_os.msg p)
  | Stramash s -> Msg_layer.counts (Stramash_os.msg s)

let replicated_pages = function
  | Vanilla -> 0
  | Popcorn p -> Dsm.replicated_pages (Popcorn_os.dsm p)
  | Stramash s -> Stramash_fault.fallback_pages (Stramash_os.faults s)

let seed_resident_page t ~proc ~vaddr ~frame =
  match t with
  | Vanilla | Stramash _ -> ()
  | Popcorn p ->
      Dsm.seed_owner (Popcorn_os.dsm p) ~pid:proc.Process.pid ~origin:proc.Process.origin ~vaddr
        ~frame

let reset_counters = function
  | Vanilla -> ()
  | Popcorn p -> Dsm.reset_counters (Popcorn_os.dsm p)
  | Stramash s ->
      Stramash_fault.reset_counters (Stramash_os.faults s);
      Msg_layer.reset_counts (Stramash_os.msg s)

(* Crash-stop node failures are a Stramash-personality feature: the other
   personalities have no checkpoint/degraded-mode machinery, so a chaos
   schedule under them is a configuration error, surfaced loudly. *)

let supports_chaos = function Vanilla | Popcorn _ -> false | Stramash _ -> true

let require_stramash op = function
  | Vanilla | Popcorn _ ->
      invalid_arg (Printf.sprintf "Os.%s: node failures require the Stramash personality" op)
  | Stramash s -> s

let heartbeat = function
  | Vanilla | Popcorn _ -> None
  | Stramash s -> Stramash_os.heartbeat s

let heartbeat_tick t ~src ~now =
  match t with
  | Vanilla | Popcorn _ -> ()
  | Stramash s -> Stramash_os.heartbeat_tick s ~src ~now

let on_node_death t ~procs ~threads ~node ~now =
  Stramash_os.on_node_death (require_stramash "on_node_death" t) ~procs ~threads ~node ~now

let on_peer_detected t ~node ~now =
  Stramash_os.on_peer_detected (require_stramash "on_peer_detected" t) ~node ~now

let on_node_restart t ~procs ~node ~now =
  Stramash_os.on_node_restart (require_stramash "on_node_restart" t) ~procs ~node ~now
