(** Adaptive page-placement experiments: the NPB crossover table
    (policy speedups normalised to Popcorn-SHM) and the seeded verdict
    campaign behind the `place` CLI subcommand (determinism replay,
    Paranoid cross-check, kernel invariant audit, teardown sweep). *)

val attach :
  ?epoch:int ->
  policy:Stramash_placement.Policy.t ->
  Stramash_machine.Machine.t ->
  Stramash_placement.Engine.t
(** Create an engine on the machine's Stramash personality and attach it
    (must precede the first [load]). Raises [Invalid_argument] on any
    other personality. *)

val run_policy :
  ?seed:int64 ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?epoch:int ->
  policy:Stramash_placement.Policy.t ->
  Stramash_machine.Spec.t ->
  Stramash_machine.Machine.t
  * Stramash_placement.Engine.t
  * Stramash_kernel.Process.t
  * Stramash_machine.Runner.result
(** One seeded Stramash run under [policy]; the caller owns the
    process's teardown ([Machine.exit_process]). *)

val run_shm :
  ?seed:int64 ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  Stramash_machine.Spec.t ->
  Stramash_machine.Runner.result
(** The Popcorn-SHM reference run the crossover (and the bench harness)
    normalises against. *)

val full_spec_of_bench : string -> Stramash_machine.Spec.t option
(** Full-size NPB specs (as in Figs. 9-10); the small campaign specs
    live in {!Fault_experiments.spec_of_bench}. *)

val crossover : Format.formatter -> unit
(** The adaptive-vs-static table over is/cg/mg/ft. *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?policy:Stramash_placement.Policy.t ->
  ?epoch:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?on_metrics:(Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  Chaos_experiments.verdict
(** Seeded verdict run (defaults: Adaptive on cg). [Clean] requires a
    clean invariant audit and teardown, a byte-identical same-seed
    replay, and Paranoid-engine agreement on the fingerprint (wall,
    instructions, migrations, placement counters). [on_metrics]
    receives the placement counter snapshot plus the wall. *)

val placement : Format.formatter -> unit
(** Experiments-registry entry: [crossover] plus one Adaptive cg
    [campaign]. *)
