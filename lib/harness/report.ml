type t = {
  title : string;
  note : string;
  columns : string list;
  mutable body : string list list; (* reversed *)
}

let create ~title ~note ~columns = { title; note; columns; body = [] }
let add_row t row = t.body <- row :: t.body
let rows t = List.rev t.body

let cell_f v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let cell_pct v = Printf.sprintf "%.2f%%" (100.0 *. v)
let cell_x v = Printf.sprintf "%.2fx" v

let bar v ~max ~width =
  let filled =
    if max <= 0.0 then 0
    else int_of_float (Float.round (float_of_int width *. Float.min 1.0 (v /. max)))
  in
  String.concat "" (List.init width (fun i -> if i < filled then "#" else "."))

let print fmt t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i s = s ^ String.make (max 0 (widths.(i) - String.length s)) ' ' in
  let line ch = String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w ch) widths)) in
  Format.fprintf fmt "@.### %s@." t.title;
  if t.note <> "" then Format.fprintf fmt "(%s)@." t.note;
  Format.fprintf fmt "%s@." (String.concat " | " (List.mapi pad t.columns));
  Format.fprintf fmt "%s@." (line '-');
  List.iter
    (fun row -> Format.fprintf fmt "%s@." (String.concat " | " (List.mapi pad row)))
    (rows t)
