(** Open-loop serving campaign: the Stramash serving scenario measured
    with per-request tail-latency SLOs under every composition PRs 4–9
    added — chaos kill/restart, gray slow-down windows, corruption
    scrubbing, and the adaptive placement engine — each reported as a
    p99 delta against the fault-free Stramash baseline. Output is a pure
    function of (seed, keys, theta, rate, requests, payload, cache mode,
    composition toggles). *)

type verdict = Chaos_experiments.verdict =
  | Clean
      (** Every cell completed, the Stramash baseline (and placement
          cell, when enabled) met the SLO, and both the baseline and the
          chaos-composed cell replayed byte-identically from the same
          seed. *)
  | Violations  (** Campaign ran but an SLO gate or a replay comparison failed. *)
  | Unrecovered  (** A typed fault escaped recovery inside a cell. *)
  | Unknown_bench  (** Unusable arguments — the campaign never ran. *)

val verdict_to_string : verdict -> string

val exit_code : verdict -> int
(** Shared CLI contract: [Clean] → 0, [Violations]/[Unrecovered] → 1,
    [Unknown_bench] → 2. *)

val chaos_inject :
  seed:int64 -> span:int -> Stramash_fault_inject.Plan.config
(** The chaos composition's kill/restart schedule: one downtime window
    per island at seeded jitter around 1/3 and 2/3 of the expected run
    span, both with restarts (serve rejects restart-less kills). *)

val gray_inject :
  seed:int64 -> span:int -> factor:float -> Stramash_fault_inject.Plan.config
(** One slow-down window on the serving island covering the middle third
    of the expected span. *)

val scrub_inject : Stramash_fault_inject.Plan.config
(** Stale-PTE corruption on the remote-walker install path plus the
    background scrubber — the corruption composition. *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?keys:int ->
  ?theta:float ->
  ?rate:float ->
  ?requests:int ->
  ?payload:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?placement:bool ->
  ?chaos:bool ->
  ?gray:bool ->
  ?scrub:bool ->
  ?factor:float ->
  ?on_metrics:(label:string -> Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  verdict
(** Run the cell matrix — popcorn-shm and stramash baselines, then the
    enabled compositions (placement / chaos / gray / scrub, all on by
    default) — printing each cell's per-op latency table, SLO verdict
    and p99 delta vs the Stramash baseline, then replay the baseline and
    the chaos cell from the same seed and compare byte-for-byte. Ends
    with a ["campaign verdict: ..."] line for CI grep. [on_metrics]
    receives each cell's [serve.*] registry, labelled by cell name. *)

val soak :
  Format.formatter ->
  ?seed:int64 ->
  ?keys:int ->
  ?rate:float ->
  ?requests:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  cells:int ->
  domains:int ->
  unit ->
  verdict * (int * int64 * verdict) list
(** Run [cells] independent campaigns at derived seeds (seed + cell)
    across [domains] host domains via {!Stramash_sim.Domain_pool}; cell
    output renders into private buffers emitted in cell order, so the
    soak is byte-identical whatever [domains] is. The caller must not
    have a tracer installed when [domains > 1]. *)

val serve : Format.formatter -> unit
(** The ["serve"] experiments-registry entry: one reduced-size campaign. *)
