(** Simulator-validation experiments (paper §9.1): IPI latency
    characterisation (Figs. 5-6), icount/cycle-estimate validation
    (Fig. 7), cache-model cross-validation against the independent
    Ruby-style reference (Fig. 8), and the Table-2 latency configuration. *)

val fig5_6 : Format.formatter -> unit
val fig7 : Format.formatter -> unit
val fig8 : Format.formatter -> unit
val table2 : Format.formatter -> unit

val fig7_errors : unit -> (string * float) list
(** [(label, relative error)] pairs, for the test suite's <13% check. *)

val fig8_gaps : unit -> (string * float) list
(** [(level label, |hit-rate gap|)] pairs, for the <5% check. *)
