(* Chaos campaign: crash-stop node failures under a live NPB workload.

   The campaign first runs the workload fault-free to fingerprint it
   (wall cycles + the NPB checksum word), then replays it under a seeded
   kill/restart schedule spread across that baseline wall, auditing the
   kernel invariants after every recovery and comparing the surviving
   result's checksum against the no-fault fingerprint. Output is a pure
   function of (seed, bench, kills, downtime, cache mode): the schedule's
   jitter comes from an Rng split off the seed, so two runs with the same
   arguments are byte-identical. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Cache_sim = Stramash_cache.Cache_sim
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Spec = Stramash_machine.Spec
module Process = Stramash_kernel.Process
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Audit = Stramash_fault_inject.Audit
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Checkpoint = Stramash_core.Checkpoint
module W = Stramash_workloads
module Placement_engine = Stramash_placement.Engine

type verdict = Clean | Violations | Unrecovered | Unknown_bench

let verdict_to_string = function
  | Clean -> "CLEAN"
  | Violations -> "VIOLATIONS"
  | Unrecovered -> "UNRECOVERED"
  | Unknown_bench -> "UNKNOWN-BENCH"

(* The normalised CLI contract shared with `faults`: 0 = campaign ran and
   every fault recovered; 1 = invariant violation or unrecovered failure;
   2 = unusable arguments. *)
let exit_code = function
  | Clean -> 0
  | Violations | Unrecovered -> 1
  | Unknown_bench -> 2

let default_downtime = Cycles.of_us 40.0

(* Optionally run the campaign with a page-placement engine attached —
   the placement acceptance gate reruns the kill/restart soak with the
   adaptive policy live, so degraded collapses and restart reconciles
   get audited too. *)
let attach_placement ?policy machine =
  match policy with
  | None -> ()
  | Some policy -> (
      match Machine.os machine with
      | Os.Stramash os -> Machine.attach_placement machine (Placement_engine.create ~policy os)
      | _ -> ())

(* Read the NPB checksum word through whichever kernel still maps it —
   this is the workload fingerprint that must survive the chaos. *)
let checksum machine ~proc =
  List.find_map
    (fun node ->
      Machine.read_user machine ~proc ~node ~vaddr:W.Npb_common.checksum_vaddr ~width:8)
    Node_id.all

(* First cycle at which the baseline run lands the thread on a node other
   than its origin — the moment that node's page table is coldest, and so
   the worst possible time for the origin to die. *)
let far_anchor ~(spec : Spec.t) ~origin (result : Runner.result) =
  List.fold_left
    (fun acc (id, cyc) ->
      match Spec.target_for spec id with
      | Some node when not (Node_id.equal node origin) -> (
          match acc with Some c when c <= cyc -> acc | _ -> Some cyc)
      | _ -> acc)
    None result.Runner.phase_marks

(* Alternating-node kills with seeded jitter; restarts come [downtime]
   later, clamped so the two nodes are never down at once. When the
   baseline exposes a far-node landing, the first kill takes the origin
   down just after it — the survivor must then resolve its cold-page
   faults through the degraded message walk instead of the fused path;
   the remaining kills spread over the rest of the run. *)
let schedule ~seed ~wall ~kills ~downtime ~origin ~anchor =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x5C4A05C4A05L) in
  match anchor with
  | Some anchor when kills >= 1 && anchor < wall ->
      let spacing = max 4 ((wall - anchor) / kills) in
      let downtime = max 1 (min downtime (spacing / 2)) in
      ( List.init kills (fun i ->
            if i = 0 then
              {
                Plan.node = origin;
                kill_at = max 1 (anchor + Rng.int_in rng 500 2000);
                restart_after = Some downtime;
              }
            else
              let node = if i mod 2 = 1 then Node_id.other origin else origin in
              let jitter = Rng.int_in rng (-(spacing / 8)) (spacing / 8) in
              {
                Plan.node;
                kill_at = anchor + (spacing * i) + jitter;
                restart_after = Some downtime;
              }),
        downtime )
  | _ ->
      let gap = max 2 (wall / (kills + 1)) in
      let downtime = max 1 (min downtime (gap / 2)) in
      ( List.init kills (fun i ->
            let node = if i mod 2 = 0 then origin else Node_id.other origin in
            let jitter = Rng.int_in rng (-(gap / 8)) (gap / 8) in
            {
              Plan.node;
              kill_at = max 1 ((gap * (i + 1)) + jitter);
              restart_after = Some downtime;
            }),
        downtime )

let campaign fmt ?(seed = 0xC4A05L) ?(bench = "is") ?(kills = 3) ?(downtime = default_downtime)
    ?(cache_mode = Cache_sim.Fast) ?placement
    ?(on_metrics = fun (_ : Metrics.registry) -> ()) () =
  match Fault_experiments.spec_of_bench bench with
  | None ->
      Format.fprintf fmt "unknown benchmark %s (chaos campaign runs %s)@." bench
        (String.concat " | " Fault_experiments.benches);
      Unknown_bench
  | Some spec ->
      (* --- fault-free baseline: the fingerprint the survivors must match *)
      let baseline =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            cache_mode;
          }
      in
      attach_placement ?policy:placement baseline;
      let bproc, bthread = Machine.load baseline spec in
      let bresult = Runner.run baseline bproc bthread spec in
      let bchecksum = checksum baseline ~proc:bproc in
      let origin = bproc.Process.origin in
      let anchor = far_anchor ~spec ~origin bresult in
      Machine.exit_process baseline bproc;
      let events, downtime =
        schedule ~seed ~wall:bresult.Runner.wall_cycles ~kills ~downtime ~origin ~anchor
      in
      Format.fprintf fmt "chaos campaign: bench=%s seed=%Ld kills=%d downtime=%d cycles@." bench
        seed (List.length events) downtime;
      Format.fprintf fmt "baseline: wall=%d cycles, checksum=%s@." bresult.Runner.wall_cycles
        (match bchecksum with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>");
      List.iter
        (fun (ev : Plan.node_event) ->
          Format.fprintf fmt "  schedule: kill %s at %d, restart +%d@."
            (Node_id.to_string ev.Plan.node) ev.Plan.kill_at
            (match ev.Plan.restart_after with Some d -> d | None -> -1))
        events;
      (* --- chaos run *)
      let config = { Plan.default with Plan.node_events = events } in
      let machine =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            cache_mode;
            inject = Some config;
          }
      in
      attach_placement ?policy:placement machine;
      let proc, thread = Machine.load machine spec in
      let env = Machine.env machine in
      let recoveries = ref 0 in
      let dirty_audits = ref 0 in
      let audit_now label =
        let extra, held, ledger =
          match Machine.os machine with
          | Os.Stramash os ->
              let faults = Stramash_os.faults os in
              ( [ ("ptl-quiescent", Stramash_fault.ptls_quiescent faults) ],
                List.map
                  (fun (f : Checkpoint.futex_image) ->
                    (f.Checkpoint.f_uaddr, f.Checkpoint.f_tid))
                  (Stramash_fault.held_waiters faults),
                Global_alloc.ledger (Stramash_os.global_alloc os) )
          | _ -> ([], [], [])
        in
        let report =
          Audit.run ~env ~procs:[ proc ] ~threads:(Machine.threads machine) ~held ~ledger
            ~extra ()
        in
        if Audit.is_clean report then
          Format.fprintf fmt "audit[%s]: clean (%d checks)@." label report.Audit.checks
        else begin
          incr dirty_audits;
          Format.fprintf fmt "audit[%s]: %a" label Audit.pp report
        end
      in
      let on_recovery node =
        incr recoveries;
        audit_now (Printf.sprintf "recovery-%d:%s" !recoveries (Node_id.to_string node))
      in
      let run () =
        let result = Runner.run ~on_recovery machine proc thread spec in
        let chk = checksum machine ~proc in
        audit_now "final";
        let mapped = Audit.mapped_frames ~env ~proc in
        Machine.exit_process machine proc;
        let teardown = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
        if not (Audit.is_clean teardown) then begin
          incr dirty_audits;
          Format.fprintf fmt "audit[teardown]: %a" Audit.pp teardown
        end
        else
          Format.fprintf fmt "audit[teardown]: clean (%d frames tracked)@." (List.length mapped);
        (result, chk)
      in
      let publish_metrics () =
        match Machine.inject_plan machine with
        | Some plan -> on_metrics (Plan.metrics plan)
        | None -> ()
      in
      (match run () with
      | exception Fault.Error e ->
          Format.fprintf fmt "unrecovered failure: %s@." (Fault.to_string e);
          publish_metrics ();
          Format.fprintf fmt "campaign verdict: %s@." (verdict_to_string Unrecovered);
          Unrecovered
      | result, chk ->
          Format.fprintf fmt
            "chaos run: wall=%d cycles, %d instructions, %d migrations, %d messages@."
            result.Runner.wall_cycles result.Runner.instructions result.Runner.migrations
            result.Runner.messages;
          List.iter
            (fun node ->
              Format.fprintf fmt "  %s downtime: %d cycles@." (Node_id.to_string node)
                result.Runner.ext.Runner.node_downtime.(Node_id.index node))
            Node_id.all;
          (match Machine.inject_plan machine with
          | Some plan -> Plan.report fmt plan
          | None -> ());
          let fingerprint_ok = chk = bchecksum && chk <> None in
          Format.fprintf fmt "survivor checksum: %s (%s baseline)@."
            (match chk with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>")
            (if fingerprint_ok then "matches" else "DIFFERS from");
          let metrics_ok =
            match Machine.inject_plan machine with
            | Some plan ->
                Metrics.get (Plan.metrics plan) "chaos.downtime_cycles" > 0
                && Metrics.get (Plan.metrics plan) "chaos.degraded_cycles" > 0
            | None -> false
          in
          if not metrics_ok then
            Format.fprintf fmt "warning: downtime/degraded counters did not advance@.";
          publish_metrics ();
          let verdict =
            if !recoveries < List.length events then Unrecovered
            else if !dirty_audits = 0 && fingerprint_ok then Clean
            else Violations
          in
          Format.fprintf fmt "campaign verdict: %s (%d recoveries, %d dirty audits)@."
            (verdict_to_string verdict) !recoveries !dirty_audits;
          verdict)

(* --- soak: K campaign cells over D host domains ------------------------

   Each cell is a full campaign at a derived seed (seed + cell index)
   rendered into its own buffer, so cells share no mutable state and the
   printed output is a pure function of the arguments: cells run via
   {!Stramash_sim.Domain_pool} on [domains] host domains, but buffers are
   emitted in cell order whatever the host interleaving — a 1-domain and
   an N-domain soak of the same arguments are byte-identical. Tracing
   must stay uninstalled during a multi-domain soak (the tracer is
   process-global); the CLI enforces that. *)

let soak fmt ?(seed = 0xC4A05L) ?(bench = "is") ?(kills = 3) ?(downtime = default_downtime)
    ?(cache_mode = Cache_sim.Fast) ?placement ~cells ~domains () =
  let cell i () =
    let buf = Buffer.create 4096 in
    let bfmt = Format.formatter_of_buffer buf in
    let seed_i = Int64.add seed (Int64.of_int i) in
    let verdict = campaign bfmt ~seed:seed_i ~bench ~kills ~downtime ~cache_mode ?placement () in
    Format.pp_print_flush bfmt ();
    (seed_i, verdict, Buffer.contents buf)
  in
  (* The header names no host facts (domain count included): the printed
     soak is byte-identical however the cells were spread. *)
  Format.fprintf fmt "chaos soak: bench=%s cells=%d base seed=%Ld@." bench cells seed;
  let results = Stramash_sim.Domain_pool.map ~domains (Array.init cells cell) in
  Array.iteri
    (fun i (seed_i, verdict, output) ->
      Format.fprintf fmt "@.--- cell %d (seed %Ld) ---@.%s" i seed_i output;
      ignore verdict)
    results;
  let worst =
    Array.fold_left
      (fun acc (_, v, _) -> if exit_code v > exit_code acc then v else acc)
      Clean results
  in
  Format.fprintf fmt "@.soak verdict: %s (%d cells)@." (verdict_to_string worst) cells;
  (worst, Array.to_list results |> List.mapi (fun i (s, v, _) -> (i, s, v)))

(* Experiments-registry entry: one soak with the default schedule. *)
let chaos fmt = ignore (campaign fmt ())
