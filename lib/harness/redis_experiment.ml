module Machine = Stramash_machine.Machine
module Redis = Stramash_workloads.Redis

let speedups ?(requests = 10_000) () =
  let run os = Redis.run ~os ~requests () in
  let tcp = run Machine.Popcorn_tcp in
  let shm = run Machine.Popcorn_shm in
  let str = run Machine.Stramash_kernel_os in
  List.map
    (fun (t : Redis.result) ->
      let find rs = (List.find (fun (r : Redis.result) -> r.Redis.op = t.Redis.op) rs).Redis.cycles_per_request in
      ( Redis.op_name t.Redis.op,
        t.Redis.cycles_per_request /. find shm,
        t.Redis.cycles_per_request /. find str ))
    tcp

let fig14 fmt =
  let r =
    Report.create ~title:"Fig. 14: Redis-like server speedup over Popcorn-TCP"
      ~note:"10K requests, 1024B payload; migrated server, socket owned by the origin kernel; \
             paper: SHM 4-10x, Stramash up to 12x (indicative / functional validation)"
      ~columns:[ "op"; "POPCORN-SHM"; "STRAMASH"; "" ]
  in
  List.iter
    (fun (op, shm, str) ->
      Report.add_row r
        [ op; Report.cell_x shm; Report.cell_x str; Report.bar str ~max:14.0 ~width:28 ])
    (speedups ());
  Report.print fmt r
