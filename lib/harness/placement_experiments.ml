(* Adaptive page-placement experiments: the CG crossover table and the
   verdict campaign behind the `place` CLI subcommand.

   The crossover experiment reruns the NPB quartet under the three
   placement policies on the Stramash personality and normalises each
   wall against a Popcorn-SHM run of the same spec — the paper's CG case
   is the motivating 0.85x deficit that Adaptive must close. The
   campaign is the correctness side: a seeded Adaptive run must produce
   byte-identical results when repeated, survive the Paranoid
   cross-checking engine at the same wall, and leave the kernel
   invariant audit and teardown sweep clean. *)

module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Cache_sim = Stramash_cache.Cache_sim
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Process = Stramash_kernel.Process
module Audit = Stramash_fault_inject.Audit
module Checkpoint = Stramash_core.Checkpoint
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Engine = Stramash_placement.Engine
module Policy = Stramash_placement.Policy
module W = Stramash_workloads

let default_seed = 0x91ACEL

(* Full-size NPB specs (as in Figs. 9-10): the CG crossover only shows at
   class size — the small fault-campaign specs amortise too few remote
   misses for SHM's replicate-always to win. The verdict campaign keeps
   the small specs so CI stays quick. *)
let full_spec_of_bench = function
  | "is" -> Some (W.Npb_is.spec ())
  | "cg" -> Some (W.Npb_cg.spec ())
  | "mg" -> Some (W.Npb_mg.spec ())
  | "ft" -> Some (W.Npb_ft.spec ())
  | _ -> None

let attach ?epoch ~policy machine =
  match Machine.os machine with
  | Os.Stramash os ->
      let engine = Engine.create ?epoch ~policy os in
      Machine.attach_placement machine engine;
      engine
  | _ -> invalid_arg "placement: the engine requires the Stramash personality"

(* One seeded Stramash run under [policy]; the engine is attached before
   load so the write hook covers the whole lifetime. *)
let run_policy ?(seed = default_seed) ?(cache_mode = Cache_sim.Fast) ?epoch ~policy spec =
  let machine =
    Machine.create
      { Machine.default_config with Machine.os = Machine.Stramash_kernel_os; seed; cache_mode }
  in
  let engine = attach ?epoch ~policy machine in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  (machine, engine, proc, result)

(* The replicate-always reference the crossover normalises against. *)
let run_shm ?(seed = default_seed) ?(cache_mode = Cache_sim.Fast) spec =
  let machine =
    Machine.create
      { Machine.default_config with Machine.os = Machine.Popcorn_shm; seed; cache_mode }
  in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  Machine.exit_process machine proc;
  result

let policies = [ Policy.Static_stramash; Policy.Adaptive; Policy.Static_shm ]

type cell = { wall : int; counters : (string * int) list }

let counter counters name = match List.assoc_opt name counters with Some v -> v | None -> 0

let crossover fmt =
  let r =
    Report.create ~title:"Adaptive page placement: NPB wall time vs Popcorn-SHM"
      ~note:
        "speedup = SHM wall / config wall (higher is better); static-stramash is the fused \
         kernel's always-remote path — the paper's CG crossover where SHM's replicate-then-read \
         wins by ~1.18x; adaptive must close it without losing IS/FT"
      ~columns:
        [ "bench"; "shm wall (ms)"; "static-stramash"; "adaptive"; "static-shm"; "adaptive acts" ]
  in
  List.iter
    (fun bench ->
      match full_spec_of_bench bench with
      | None -> ()
      | Some spec ->
          let shm = run_shm spec in
          let cells =
            List.map
              (fun policy ->
                let machine, engine, proc, result = run_policy ~policy spec in
                let counters = Engine.counters engine in
                Machine.exit_process machine proc;
                (policy, { wall = result.Runner.wall_cycles; counters }))
              policies
          in
          let speedup policy =
            let c = List.assoc policy cells in
            Report.cell_x (float_of_int shm.Runner.wall_cycles /. float_of_int c.wall)
          in
          let a = List.assoc Policy.Adaptive cells in
          Report.add_row r
            [
              bench;
              Report.cell_f (Cycles.to_ms shm.Runner.wall_cycles);
              speedup Policy.Static_stramash;
              speedup Policy.Adaptive;
              speedup Policy.Static_shm;
              Printf.sprintf "%dR/%dC/%dM"
                (counter a.counters "placement.replications")
                (counter a.counters "placement.collapses")
                (counter a.counters "placement.migrations");
            ])
    Fault_experiments.benches;
  Report.print fmt r

(* Kernel invariant audit with the Stramash-specific extras, same shape
   as the chaos campaign's. *)
let audit_now fmt machine ~proc ~dirty label =
  let env = Machine.env machine in
  let extra, held, ledger =
    match Machine.os machine with
    | Os.Stramash os ->
        let faults = Stramash_os.faults os in
        ( [ ("ptl-quiescent", Stramash_fault.ptls_quiescent faults) ],
          List.map
            (fun (f : Checkpoint.futex_image) -> (f.Checkpoint.f_uaddr, f.Checkpoint.f_tid))
            (Stramash_fault.held_waiters faults),
          Global_alloc.ledger (Stramash_os.global_alloc os) )
    | _ -> ([], [], [])
  in
  let report =
    Audit.run ~env ~procs:[ proc ] ~threads:(Machine.threads machine) ~held ~ledger ~extra ()
  in
  if Audit.is_clean report then
    Format.fprintf fmt "audit[%s]: clean (%d checks)@." label report.Audit.checks
  else begin
    incr dirty;
    Format.fprintf fmt "audit[%s]: %a" label Audit.pp report
  end

(* Fingerprint of a run for the determinism and Paranoid cross-checks:
   everything the placement engine could perturb. *)
let fingerprint (result : Runner.result) counters =
  (result.Runner.wall_cycles, result.Runner.instructions, result.Runner.migrations, counters)

let campaign fmt ?(seed = default_seed) ?(bench = "cg") ?(policy = Policy.Adaptive) ?epoch
    ?(cache_mode = Cache_sim.Fast) ?(on_metrics = fun (_ : Metrics.registry) -> ()) () =
  match Fault_experiments.spec_of_bench bench with
  | None ->
      Format.fprintf fmt "unknown benchmark %s (placement campaign runs %s)@." bench
        (String.concat " | " Fault_experiments.benches);
      Chaos_experiments.Unknown_bench
  | Some spec ->
      Format.fprintf fmt "placement campaign: bench=%s policy=%s seed=%Ld epoch=%s@." bench
        (Policy.to_string policy) seed
        (match epoch with Some e -> string_of_int e | None -> "default");
      let dirty = ref 0 in
      let run cache_mode =
        let machine, engine, proc, result = run_policy ~seed ~cache_mode ?epoch ~policy spec in
        let counters = Engine.counters engine in
        (machine, proc, result, counters)
      in
      (match run cache_mode with
      | exception Cache_sim.Divergence msg ->
          incr dirty;
          Format.fprintf fmt "paranoid divergence: %s@." msg;
          Format.fprintf fmt "campaign verdict: %s@."
            (Chaos_experiments.verdict_to_string Chaos_experiments.Violations);
          on_metrics (Metrics.registry ());
          Chaos_experiments.Violations
      | machine, proc, result, counters ->
          Format.fprintf fmt "run: wall=%d cycles, %d instructions, %d migrations@."
            result.Runner.wall_cycles result.Runner.instructions result.Runner.migrations;
          List.iter (fun (k, v) -> Format.fprintf fmt "  %s = %d@." k v) counters;
          audit_now fmt machine ~proc ~dirty "final";
          let env = Machine.env machine in
          let mapped = Audit.mapped_frames ~env ~proc in
          Machine.exit_process machine proc;
          let teardown = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
          if Audit.is_clean teardown then
            Format.fprintf fmt "audit[teardown]: clean (%d frames tracked)@."
              (List.length mapped)
          else begin
            incr dirty;
            Format.fprintf fmt "audit[teardown]: %a" Audit.pp teardown
          end;
          (* Same seed, same arguments: the decision stream must replay
             byte-identically. *)
          let machine2, proc2, result2, counters2 = run cache_mode in
          Machine.exit_process machine2 proc2;
          let deterministic = fingerprint result counters = fingerprint result2 counters2 in
          Format.fprintf fmt "determinism: %s@."
            (if deterministic then "replay identical" else "REPLAY DIVERGED");
          if not deterministic then incr dirty;
          (* The Paranoid engine runs fast path and reference side by side
             and raises on any divergence; its wall must equal the Fast
             run's, so placement decisions are engine-independent. *)
          let paranoid_ok =
            if cache_mode = Cache_sim.Paranoid then true
            else
              match run Cache_sim.Paranoid with
              | exception Cache_sim.Divergence msg ->
                  Format.fprintf fmt "paranoid divergence: %s@." msg;
                  false
              | machine3, proc3, result3, counters3 ->
                  audit_now fmt machine3 ~proc:proc3 ~dirty "paranoid";
                  Machine.exit_process machine3 proc3;
                  fingerprint result counters = fingerprint result3 counters3
          in
          Format.fprintf fmt "paranoid cross-check: %s@."
            (if paranoid_ok then "agrees with fast path" else "DISAGREES");
          if not paranoid_ok then incr dirty;
          let registry = Metrics.registry () in
          List.iter (fun (k, v) -> Metrics.set registry k v) counters;
          Metrics.set registry "placement.wall_cycles" result.Runner.wall_cycles;
          on_metrics registry;
          let verdict =
            if !dirty = 0 then Chaos_experiments.Clean else Chaos_experiments.Violations
          in
          Format.fprintf fmt "campaign verdict: %s (%d dirty checks)@."
            (Chaos_experiments.verdict_to_string verdict) !dirty;
          verdict)

(* Experiments-registry entry: crossover table plus one Adaptive CG
   verdict soak. *)
let placement fmt =
  crossover fmt;
  ignore (campaign fmt ())
