(* Gray-failure campaign: slow-but-alive nodes under a live NPB workload.

   Unlike the chaos campaign (crash-stop kills), nothing here ever dies:
   the origin node enters a seeded slow-down window (service-time
   inflation plus a PTL lock-holder stall), bracketed by a correlated
   link-flap burst and low-rate duplication/reordering. The campaign runs
   the same schedule twice — breaker-off (health scoring disabled) and
   breaker-on — and renders per-operation latency percentiles for both,
   so the circuit breaker's value shows up as a strictly lower p99 on the
   fault path. Output is a pure function of (seed, bench, factor, cache
   mode): schedule jitter comes from an Rng split off the seed, and each
   run's fault plan is deterministic, so two invocations with the same
   arguments are byte-identical. *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Cache_sim = Stramash_cache.Cache_sim
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Process = Stramash_kernel.Process
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Audit = Stramash_fault_inject.Audit
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Checkpoint = Stramash_core.Checkpoint

type verdict = Chaos_experiments.verdict =
  | Clean
  | Violations
  | Unrecovered
  | Unknown_bench

let verdict_to_string = Chaos_experiments.verdict_to_string
let exit_code = Chaos_experiments.exit_code
let default_slow_factor = 3.0

(* The gray schedule, anchored like the chaos kill schedule: the slow
   window opens just after the baseline first lands the thread on the
   far node, when the origin is hottest as a remote-walk server. A short
   flap burst leads into the window (the classic gray-failure prodrome:
   the link degrades before the node does), and a PTL stall window
   co-occurs with the slow-down. *)
let schedule ~seed ~wall ~origin ~anchor ~factor =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x64A7FA115EEDL) in
  let start =
    match anchor with
    | Some a when a < wall -> a + Rng.int_in rng 200 1200
    | _ -> (wall / 8) + Rng.int_in rng 0 1000
  in
  let start = max 1 start in
  let len = max (Cycles.of_us 20.0) ((wall - start) * 3 / 5) in
  let flap_len = max (Cycles.of_us 2.0) (min (len / 8) (Cycles.of_us 30.0)) in
  let slow = [ { Plan.g_node = origin; g_start = start; g_len = len; g_factor = factor } ] in
  let stalls =
    [ { Plan.st_start = start; st_len = len; st_stall_cycles = Cycles.of_us 25.0 } ]
  in
  let flaps =
    [
      {
        Plan.fl_start = max 1 (start - flap_len);
        fl_len = flap_len;
        fl_drop_rate = 0.3;
        fl_delay_cycles = Cycles.of_us 3.0;
      };
    ]
  in
  (slow, flaps, stalls, start, len)

let gray_config ~slow ~flaps ~stalls ~breaker =
  {
    Plan.default with
    Plan.gray_slow = slow;
    gray_flaps = flaps;
    gray_ptl_stalls = stalls;
    msg_dup_rate = 0.02;
    msg_reorder_rate = 0.05;
    msg_reorder_cycles = Cycles.of_us 1.0;
    health_enabled = breaker;
    (* Probes are full-price fused faults while the window lasts, so pace
       them well below 1% of the fault population or they drag the
       breaker-on tail back up to the stalled fused cost (the campaign
       windows run a few to ~15M cycles; 10ms = 21M cycles of pacing
       keeps in-window probes out of the p99). *)
    breaker_probe_interval = Cycles.of_us 10_000.0;
  }

(* The config shape the CLI validates before committing to a run: the
   campaign's constant knobs plus a placeholder window carrying the
   user's factor, so a bad --factor fails fast with a message. *)
let probe_config ~factor =
  gray_config
    ~slow:[ { Plan.g_node = Node_id.X86; g_start = 1; g_len = 1; g_factor = factor } ]
    ~flaps:[] ~stalls:[] ~breaker:true

type run_outcome = {
  r_wall : int;
  r_checksum : int64 option;
  r_dirty : int;
  r_ops : (string * Metrics.Histogram.t) list;
  r_registry : Metrics.registry option;
  r_error : string option;
}

(* One instrumented run under [config]: audits at the end and at
   teardown, per-op histograms and the plan registry captured before the
   machine is dropped. *)
let run_one fmt ~label ~seed ~cache_mode ~spec ~config =
  let machine =
    Machine.create
      {
        Machine.default_config with
        Machine.os = Machine.Stramash_kernel_os;
        seed;
        cache_mode;
        inject = Some config;
      }
  in
  let proc, thread = Machine.load machine spec in
  let env = Machine.env machine in
  let dirty = ref 0 in
  let audit_now alabel =
    let extra, held, ledger =
      match Machine.os machine with
      | Os.Stramash os ->
          let faults = Stramash_os.faults os in
          ( [ ("ptl-quiescent", Stramash_fault.ptls_quiescent faults) ],
            List.map
              (fun (f : Checkpoint.futex_image) -> (f.Checkpoint.f_uaddr, f.Checkpoint.f_tid))
              (Stramash_fault.held_waiters faults),
            Global_alloc.ledger (Stramash_os.global_alloc os) )
      | _ -> ([], [], [])
    in
    let report =
      Audit.run ~env ~procs:[ proc ] ~threads:(Machine.threads machine) ~held ~ledger ~extra ()
    in
    if Audit.is_clean report then
      Format.fprintf fmt "audit[%s:%s]: clean (%d checks)@." label alabel report.Audit.checks
    else begin
      incr dirty;
      Format.fprintf fmt "audit[%s:%s]: %a" label alabel Audit.pp report
    end
  in
  let plan_data () =
    match Machine.inject_plan machine with
    | Some plan -> (Plan.op_histograms plan, Some (Plan.metrics plan), Some plan)
    | None -> ([], None, None)
  in
  match
    let result = Runner.run machine proc thread spec in
    let chk = Chaos_experiments.checksum machine ~proc in
    audit_now "final";
    let mapped = Audit.mapped_frames ~env ~proc in
    Machine.exit_process machine proc;
    let teardown = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
    if not (Audit.is_clean teardown) then begin
      incr dirty;
      Format.fprintf fmt "audit[%s:teardown]: %a" label Audit.pp teardown
    end
    else
      Format.fprintf fmt "audit[%s:teardown]: clean (%d frames tracked)@." label
        (List.length mapped);
    (result, chk)
  with
  | exception Fault.Error e ->
      let ops, registry, _ = plan_data () in
      Format.fprintf fmt "%s: unrecovered failure: %s@." label (Fault.to_string e);
      {
        r_wall = 0;
        r_checksum = None;
        r_dirty = !dirty;
        r_ops = ops;
        r_registry = registry;
        r_error = Some (Fault.to_string e);
      }
  | result, chk ->
      let ops, registry, plan = plan_data () in
      Format.fprintf fmt "%s: wall=%d cycles, %d instructions, %d migrations, %d messages@."
        label result.Runner.wall_cycles result.Runner.instructions result.Runner.migrations
        result.Runner.messages;
      (match plan with Some plan -> Plan.report fmt plan | None -> ());
      {
        r_wall = result.Runner.wall_cycles;
        r_checksum = chk;
        r_dirty = !dirty;
        r_ops = ops;
        r_registry = registry;
        r_error = None;
      }

let gray_get run name = match run.r_registry with Some reg -> Metrics.get reg name | None -> 0

let op_hist run op = List.assoc_opt op run.r_ops

let p99_of run op =
  match op_hist run op with
  | Some h when Metrics.Histogram.count h > 0 -> Some (Metrics.Histogram.p99 h)
  | _ -> None

let pp_op_row fmt name off on =
  let cell = function
    | Some h when Metrics.Histogram.count h > 0 ->
        Printf.sprintf "n=%-6d p50=%-8.0f p95=%-8.0f p99=%-8.0f" (Metrics.Histogram.count h)
          (Metrics.Histogram.p50 h) (Metrics.Histogram.p95 h) (Metrics.Histogram.p99 h)
    | _ -> "n=0"
  in
  Format.fprintf fmt "  %-12s off: %-44s on: %s@." name (cell off) (cell on)

let campaign fmt ?(seed = 0x64A7L) ?(bench = "is") ?(factor = default_slow_factor)
    ?(cache_mode = Cache_sim.Fast) ?(on_metrics = fun ~label:_ (_ : Metrics.registry) -> ()) ()
    =
  match Fault_experiments.spec_of_bench bench with
  | None ->
      Format.fprintf fmt "unknown benchmark %s (gray campaign runs %s)@." bench
        (String.concat " | " Fault_experiments.benches);
      Unknown_bench
  | Some spec ->
      (* --- fault-free baseline: wall + checksum fingerprint + anchor *)
      let baseline =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            cache_mode;
          }
      in
      let bproc, bthread = Machine.load baseline spec in
      let bresult = Runner.run baseline bproc bthread spec in
      let bchecksum = Chaos_experiments.checksum baseline ~proc:bproc in
      let origin = bproc.Process.origin in
      let anchor = Chaos_experiments.far_anchor ~spec ~origin bresult in
      Machine.exit_process baseline bproc;
      let slow, flaps, stalls, start, len =
        schedule ~seed ~wall:bresult.Runner.wall_cycles ~origin ~anchor ~factor
      in
      Format.fprintf fmt "gray campaign: bench=%s seed=%Ld factor=%.1f@." bench seed factor;
      Format.fprintf fmt "baseline: wall=%d cycles, checksum=%s@." bresult.Runner.wall_cycles
        (match bchecksum with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>");
      Format.fprintf fmt
        "  schedule: slow %s [%d, %d) x%.1f; ptl stall +%d cycles; flap burst before@."
        (Node_id.to_string origin) start (start + len) factor (Cycles.of_us 25.0);
      (* --- same schedule, breaker off then on (machine seed identical,
         so the workload side of both runs draws the same streams) *)
      let off =
        run_one fmt ~label:"breaker-off" ~seed ~cache_mode ~spec
          ~config:(gray_config ~slow ~flaps ~stalls ~breaker:false)
      in
      let on =
        run_one fmt ~label:"breaker-on" ~seed ~cache_mode ~spec
          ~config:(gray_config ~slow ~flaps ~stalls ~breaker:true)
      in
      (match off.r_registry with Some reg -> on_metrics ~label:"gray_off" reg | None -> ());
      (match on.r_registry with Some reg -> on_metrics ~label:"gray_on" reg | None -> ());
      Format.fprintf fmt "per-op latency (cycles), breaker-off vs breaker-on:@.";
      List.iter (fun op -> pp_op_row fmt op (op_hist off op) (op_hist on op)) Plan.op_names;
      let trips = gray_get on "gray.breaker_trips" in
      let fallbacks = gray_get on "gray.breaker_fallbacks" in
      Format.fprintf fmt
        "breaker-on: %d trips, %d diverted faults, %d readmissions; breaker-off: %d trips@."
        trips fallbacks
        (gray_get on "gray.breaker_readmissions")
        (gray_get off "gray.breaker_trips");
      let p99_verdict =
        match (p99_of off "fault", p99_of on "fault") with
        | Some p_off, Some p_on ->
            Format.fprintf fmt "fault p99: off=%.0f on=%.0f (%s)@." p_off p_on
              (if p_on < p_off then "breaker wins" else "breaker LOSES");
            p_on < p_off
        | _ ->
            Format.fprintf fmt "fault p99: no samples in one of the runs@.";
            false
      in
      let fingerprint_ok run = run.r_checksum = bchecksum && run.r_checksum <> None in
      List.iter
        (fun (label, run) ->
          Format.fprintf fmt "%s checksum: %s (%s baseline)@." label
            (match run.r_checksum with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>")
            (if fingerprint_ok run then "matches" else "DIFFERS from"))
        [ ("breaker-off", off); ("breaker-on", on) ];
      let verdict =
        if off.r_error <> None || on.r_error <> None then Unrecovered
        else if
          off.r_dirty = 0 && on.r_dirty = 0 && fingerprint_ok off && fingerprint_ok on
          && trips >= 1 && fallbacks >= 1 && p99_verdict
        then Clean
        else Violations
      in
      Format.fprintf fmt "campaign verdict: %s (%d+%d dirty audits, %d trips)@."
        (verdict_to_string verdict) off.r_dirty on.r_dirty trips;
      verdict

(* Experiments-registry entry: one A/B soak with the default schedule. *)
let gray fmt = ignore (campaign fmt ())
