(** Node-failure chaos campaign: crash-stop kills and restarts injected
    into a live NPB run, with invariant audits after every recovery and a
    survivor-fingerprint check against a fault-free baseline. Output is a
    pure function of (seed, bench, kills, downtime, cache mode). *)

type verdict =
  | Clean  (** Every kill recovered, all audits clean, checksum matches. *)
  | Violations  (** Campaign ran but an audit or the fingerprint failed. *)
  | Unrecovered  (** A typed fault escaped recovery (e.g. [Node_dead]). *)
  | Unknown_bench  (** Unusable arguments — the campaign never ran. *)

val verdict_to_string : verdict -> string

val exit_code : verdict -> int
(** Normalised CLI contract shared with [faults]: [Clean] → 0,
    [Violations]/[Unrecovered] → 1, [Unknown_bench] → 2. *)

val default_downtime : int
(** Cycles a killed node stays down before its scheduled restart
    (clamped against the kill gap so events on a node never overlap). *)

val checksum :
  Stramash_machine.Machine.t -> proc:Stramash_kernel.Process.t -> int64 option
(** The NPB checksum word read through whichever kernel still maps it —
    the workload fingerprint campaigns compare against their baseline. *)

val far_anchor :
  spec:Stramash_machine.Spec.t ->
  origin:Stramash_sim.Node_id.t ->
  Stramash_machine.Runner.result ->
  int option
(** First cycle at which a baseline run lands the thread on a node other
    than its origin — the anchor both the chaos and gray schedules build
    around. *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?kills:int ->
  ?downtime:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?placement:Stramash_placement.Policy.t ->
  ?on_metrics:(Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  verdict
(** Fingerprint the bench fault-free, then replay it under [kills]
    alternating-node kill/restart cycles spread over the baseline wall
    with seeded jitter. [placement] attaches a page-placement engine
    with that policy to both the baseline and the chaos machine, so
    degraded replica collapses and restart-time reconciles run under
    the same audits. Prints the schedule, per-recovery audits, the
    fault plan's chaos counters, per-node downtime, and a final
    ["campaign verdict: ..."] line for CI grep. [on_metrics] receives
    the chaos run's fault-plan registry once the run settles (the CLI
    folds it into [--metrics-json] snapshots). *)

val soak :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?kills:int ->
  ?downtime:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?placement:Stramash_placement.Policy.t ->
  cells:int ->
  domains:int ->
  unit ->
  verdict * (int * int64 * verdict) list
(** Run [cells] independent campaigns at derived seeds
    ([seed + cell index]) across [domains] host domains via
    {!Stramash_sim.Domain_pool}. Each cell renders into a private buffer
    emitted in cell order, so the printed output — and the returned
    [(cell, seed, verdict)] list — is byte-identical whatever [domains]
    is; the overall verdict is the worst across cells. The caller must
    not have a tracer installed when [domains > 1] (the tracer is
    process-global; the CLI rejects that combination). *)

val chaos : Format.formatter -> unit
(** The ["chaos"] experiment: one soak with the default schedule. *)
