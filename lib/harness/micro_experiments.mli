(** Microbenchmark experiments: Fig. 11 (memory-access cost), Fig. 12
    (DSM vs hardware coherence at cacheline granularity), Fig. 13 (futex),
    Table 4 (global allocator hotplug overheads). *)

val fig11 : Format.formatter -> unit
val fig12 : Format.formatter -> unit
val fig13 : Format.formatter -> unit
val table4 : Format.formatter -> unit

val fig12_ratios : ?pages:int -> lines:int list -> unit -> (int * float) list
(** [(lines, dsm/hw cost ratio)]; monotone decreasing per the paper. *)

val fig13_walls :
  loops:int -> (string * int) list
(** Wall cycles per configuration for one futex loop count. *)
