(* Scrub campaign: silent data corruption injected into a live NPB run,
   detected end to end, and repaired from placement replicas.

   The campaign first runs the workload corruption-free with the adaptive
   placement engine attached to fingerprint it (wall + NPB checksum) and
   find the first far-node landing, then replays it under a seeded
   corruption schedule: bit flips against replicated page pairs spread
   over the run, low-rate CRC-detectable message corruption/truncation,
   stale-PTE installs on the remote-walker path, and — when kills are
   scheduled — a torn checkpoint at every node death. Detection is the
   background scrubber plus the per-message CRC framing and the
   verify-after-install read-back; repair is re-fetch from the clean twin
   (replica or owner), retransmission, reinstall, or the checkpoint
   shadow fallback. The verdict demands every injected corruption
   detected, none unrepaired, at least 90% healed without falling back
   to the checkpoint path, and clean audits including the fingerprint
   proof that memory matches its seals after the shutdown sweep. Output
   is a pure function of (seed, bench, knobs, cache mode). *)

module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Metrics = Stramash_sim.Metrics
module Cache_sim = Stramash_cache.Cache_sim
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Process = Stramash_kernel.Process
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Audit = Stramash_fault_inject.Audit
module Integrity = Stramash_fault_inject.Integrity
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Global_alloc = Stramash_core.Global_alloc
module Checkpoint = Stramash_core.Checkpoint
module Env = Stramash_kernel.Env
module Placement_engine = Stramash_placement.Engine
module Policy = Stramash_placement.Policy

type verdict = Chaos_experiments.verdict =
  | Clean
  | Violations
  | Unrecovered
  | Unknown_bench

let verdict_to_string = Chaos_experiments.verdict_to_string
let exit_code = Chaos_experiments.exit_code
let default_flips = 6
let default_msg_rate = 0.0005
let default_pte_rate = 0.002

(* Flips need replica pairs to land on, and pairs need the placement
   engine replicating remote-read pages. Static-shm replicates every
   cross-node read (adaptive only promotes read-hot pages, which leaves
   is/mg/ft with an empty roster), so every machine in this campaign
   runs with the shm policy attached. *)
let attach machine =
  match Machine.os machine with
  | Os.Stramash os ->
      Machine.attach_placement machine (Placement_engine.create ~policy:Policy.Static_shm os)
  | _ -> ()

(* Bit-flip schedule: spread over [start, wall) with seeded jitter,
   alternating the preferred owner node, 1-2 bits per strike. The start
   anchors just after the first far-node landing — the earliest moment
   replica pairs can exist; events that come due before a pair exists
   stay queued in the injector and land at the next eligible tick. *)
let schedule ~seed ~wall ~anchor ~flips =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x5DC0FFEE5DCL) in
  let start =
    match anchor with
    | Some a when a < wall -> a + Rng.int_in rng 200 1200
    | _ -> (wall / 8) + Rng.int_in rng 0 1000
  in
  let start = max 1 start in
  let span = max flips (wall - start) in
  List.init flips (fun i ->
      {
        Plan.bf_at = start + (span * i / max 1 flips) + Rng.int_in rng 0 (max 1 (span / (4 * max 1 flips)));
        bf_node = i mod 2;
        bf_bits = 1 + Rng.int rng 2;
      })

(* Kill schedule for the soak composition: corruption and crash-stop
   chaos in one plan, every death's checkpoint torn so the v2 header
   rejects it and restart proves the shadow fallback. *)
let kill_schedule ~seed ~wall ~origin ~anchor ~kills =
  if kills <= 0 then []
  else
    let rng = Rng.create ~seed:(Int64.logxor seed 0x5C12B0BB5L) in
    let first = match anchor with Some a when a < wall -> a | _ -> wall / 4 in
    let gap = max 4 ((wall - first) / max 1 kills) in
    let downtime = max 1 (min Chaos_experiments.default_downtime (gap / 2)) in
    List.init kills (fun i ->
        let node = if i mod 2 = 0 then origin else Node_id.other origin in
        {
          Plan.node;
          kill_at = max 1 (first + (gap * i) + Rng.int_in rng 500 2000);
          restart_after = Some downtime;
        })

let scrub_config ~flips ~msg_rate ~pte_rate ~events =
  {
    Plan.default with
    Plan.corrupt_flips = flips;
    corrupt_msg_rate = msg_rate;
    corrupt_msg_truncate_rate = msg_rate /. 2.0;
    corrupt_pte_rate = pte_rate;
    corrupt_ckpt_rate = (if events = [] then 0.0 else 1.0);
    scrub_enabled = true;
    scrub_interval_cycles = Cycles.of_us 10.0;
    scrub_pages_per_epoch = 32;
    node_events = events;
  }

(* The config shape the CLI validates before committing to a run: the
   user's knobs in place, a placeholder flip carrying nothing exotic. *)
let probe_config ~flips ~msg_rate ~pte_rate =
  scrub_config
    ~flips:(List.init (max 1 flips) (fun i -> { Plan.bf_at = 1 + i; bf_node = 0; bf_bits = 1 }))
    ~msg_rate ~pte_rate ~events:[]

let campaign fmt ?(seed = 0x5DCL) ?(bench = "is") ?(flips = default_flips)
    ?(msg_rate = default_msg_rate) ?(pte_rate = default_pte_rate) ?(kills = 0)
    ?(cache_mode = Cache_sim.Fast)
    ?(on_metrics = fun ~label:_ (_ : Metrics.registry) -> ()) () =
  match Fault_experiments.spec_of_bench bench with
  | None ->
      Format.fprintf fmt "unknown benchmark %s (scrub campaign runs %s)@." bench
        (String.concat " | " Fault_experiments.benches);
      Unknown_bench
  | Some spec ->
      (* --- corruption-free baseline: fingerprint + schedule anchor *)
      let baseline =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            cache_mode;
          }
      in
      attach baseline;
      let bproc, bthread = Machine.load baseline spec in
      let bresult = Runner.run baseline bproc bthread spec in
      let bchecksum = Chaos_experiments.checksum baseline ~proc:bproc in
      let origin = bproc.Process.origin in
      let anchor = Chaos_experiments.far_anchor ~spec ~origin bresult in
      Machine.exit_process baseline bproc;
      let wall = bresult.Runner.wall_cycles in
      let flip_events = schedule ~seed ~wall ~anchor ~flips in
      let kill_events = kill_schedule ~seed ~wall ~origin ~anchor ~kills in
      let config =
        scrub_config ~flips:flip_events ~msg_rate ~pte_rate ~events:kill_events
      in
      Format.fprintf fmt
        "scrub campaign: bench=%s seed=%Ld flips=%d msg-rate=%.4f pte-rate=%.4f kills=%d@."
        bench seed flips msg_rate pte_rate (List.length kill_events);
      Format.fprintf fmt "baseline: wall=%d cycles, checksum=%s@." wall
        (match bchecksum with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>");
      List.iter
        (fun (bf : Plan.bit_flip) ->
          Format.fprintf fmt "  schedule: flip %d bit%s near node %d at %d@." bf.Plan.bf_bits
            (if bf.Plan.bf_bits = 1 then "" else "s")
            bf.Plan.bf_node bf.Plan.bf_at)
        flip_events;
      List.iter
        (fun (ev : Plan.node_event) ->
          Format.fprintf fmt "  schedule: kill %s at %d, restart +%d (checkpoint torn)@."
            (Node_id.to_string ev.Plan.node) ev.Plan.kill_at
            (match ev.Plan.restart_after with Some d -> d | None -> -1))
        kill_events;
      (* --- instrumented run *)
      let machine =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            cache_mode;
            inject = Some config;
          }
      in
      attach machine;
      let proc, thread = Machine.load machine spec in
      let env = Machine.env machine in
      let recoveries = ref 0 in
      let dirty_audits = ref 0 in
      let integrity_store () =
        match Machine.inject_plan machine with Some plan -> Plan.integrity plan | None -> None
      in
      let audit_now ?(fingerprints = false) label =
        let extra, held, ledger =
          match Machine.os machine with
          | Os.Stramash os ->
              let faults = Stramash_os.faults os in
              ( [ ("ptl-quiescent", Stramash_fault.ptls_quiescent faults) ],
                List.map
                  (fun (f : Checkpoint.futex_image) ->
                    (f.Checkpoint.f_uaddr, f.Checkpoint.f_tid))
                  (Stramash_fault.held_waiters faults),
                Global_alloc.ledger (Stramash_os.global_alloc os) )
          | _ -> ([], [], [])
        in
        (* the fingerprint proof runs only after the shutdown sweep —
           mid-run a flip may legitimately still be latent *)
        let extra =
          if fingerprints then
            match integrity_store () with
            | Some st ->
                ("integrity-fingerprints", Integrity.audit_clean st env.Env.phys) :: extra
            | None -> extra
          else extra
        in
        let report =
          Audit.run ~env ~procs:[ proc ] ~threads:(Machine.threads machine) ~held ~ledger
            ~extra ()
        in
        if Audit.is_clean report then
          Format.fprintf fmt "audit[%s]: clean (%d checks)@." label report.Audit.checks
        else begin
          incr dirty_audits;
          Format.fprintf fmt "audit[%s]: %a" label Audit.pp report
        end
      in
      let on_recovery node =
        incr recoveries;
        audit_now (Printf.sprintf "recovery-%d:%s" !recoveries (Node_id.to_string node))
      in
      let run () =
        let result = Runner.run ~on_recovery machine proc thread spec in
        (* shutdown sweep: every still-tracked frame verified, so nothing
           injected can be latent when the final audit proves memory *)
        (match integrity_store () with
        | Some st ->
            let s = Integrity.sweep_all st env.Env.phys ~now:result.Runner.wall_cycles in
            Format.fprintf fmt
              "shutdown sweep: %d pages verified, %d repaired, %d unrepaired@."
              s.Integrity.ts_scanned
              (List.length s.Integrity.ts_repairs)
              s.Integrity.ts_unrepaired
        | None -> ());
        let chk = Chaos_experiments.checksum machine ~proc in
        audit_now ~fingerprints:true "final";
        let mapped = Audit.mapped_frames ~env ~proc in
        Machine.exit_process machine proc;
        let teardown = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
        if not (Audit.is_clean teardown) then begin
          incr dirty_audits;
          Format.fprintf fmt "audit[teardown]: %a" Audit.pp teardown
        end
        else
          Format.fprintf fmt "audit[teardown]: clean (%d frames tracked)@."
            (List.length mapped);
        (result, chk)
      in
      let publish () =
        match Machine.inject_plan machine with
        | Some plan -> on_metrics ~label:"scrub" (Plan.metrics plan)
        | None -> ()
      in
      (match run () with
      | exception Fault.Error e ->
          Format.fprintf fmt "unrecovered failure: %s@." (Fault.to_string e);
          publish ();
          Format.fprintf fmt "campaign verdict: %s@." (verdict_to_string Unrecovered);
          Unrecovered
      | result, chk ->
          Format.fprintf fmt
            "scrub run: wall=%d cycles, %d instructions, %d migrations, %d messages@."
            result.Runner.wall_cycles result.Runner.instructions result.Runner.migrations
            result.Runner.messages;
          let plan = Option.get (Machine.inject_plan machine) in
          Plan.report fmt plan;
          let injected = Plan.corruption_injected plan in
          let detected = Plan.corruption_detected plan in
          let repaired = Plan.corruption_repaired plan in
          let fallbacks = Plan.corruption_fallbacks plan in
          let unrepaired = Plan.corruption_unrepaired plan in
          let reg = Plan.metrics plan in
          let outstanding =
            match integrity_store () with Some st -> Integrity.flips_outstanding st | None -> 0
          in
          let exposure =
            match integrity_store () with
            | Some st -> Integrity.max_exposure_cycles st
            | None -> 0
          in
          Format.fprintf fmt
            "corruption: injected=%d detected=%d repaired=%d fallbacks=%d unrepaired=%d \
             never-landed=%d@."
            injected detected repaired fallbacks unrepaired outstanding;
          Format.fprintf fmt
            "exposure: max=%d cycles, total detection latency=%d cycles, %d pages scanned \
             in %d sweeps@."
            exposure
            (Metrics.get reg "corruption.detection_latency_cycles")
            (Metrics.get reg "scrub.pages_scanned")
            (Metrics.get reg "scrub.epochs");
          let fingerprint_ok = chk = bchecksum && chk <> None in
          Format.fprintf fmt "survivor checksum: %s (%s baseline)@."
            (match chk with Some c -> Printf.sprintf "0x%Lx" c | None -> "<unmapped>")
            (if fingerprint_ok then "matches" else "DIFFERS from");
          publish ();
          (* All injected corruption detected; everything healed without
             loss; of the corruptions a replica could heal (everything
             except torn checkpoints, whose only repair *is* the shadow
             fallback), at least 90% avoided the fallback; the audits
             (fingerprint proof included) stayed clean. The NPB checksum
             is reported above but not gated: a read landing inside a
             detection window may legitimately observe the corrupt value
             — that exposure is what the campaign measures. *)
          let verdict =
            if !recoveries < List.length kill_events then Unrecovered
            else if
              !dirty_audits = 0 && injected > 0 && detected = injected && unrepaired = 0
              && repaired + fallbacks = detected
              && 10 * repaired >= 9 * (detected - fallbacks)
            then Clean
            else Violations
          in
          Format.fprintf fmt "campaign verdict: %s (%d dirty audits, %d/%d detected)@."
            (verdict_to_string verdict) !dirty_audits detected injected;
          verdict)

(* --- soak: corruption + kill/restart cells over host domains ----------

   The PR-8 composition: each cell is a full scrub campaign with a
   kill/restart schedule folded into the same plan, at a derived seed,
   rendered into a private buffer and emitted in cell order — the
   printed soak is byte-identical whatever [domains] is. *)

let soak fmt ?(seed = 0x5DCL) ?(bench = "is") ?(flips = default_flips)
    ?(msg_rate = default_msg_rate) ?(pte_rate = default_pte_rate) ?(kills = 1)
    ?(cache_mode = Cache_sim.Fast) ~cells ~domains () =
  let cell i () =
    let buf = Buffer.create 4096 in
    let bfmt = Format.formatter_of_buffer buf in
    let seed_i = Int64.add seed (Int64.of_int i) in
    let verdict =
      campaign bfmt ~seed:seed_i ~bench ~flips ~msg_rate ~pte_rate ~kills ~cache_mode ()
    in
    Format.pp_print_flush bfmt ();
    (seed_i, verdict, Buffer.contents buf)
  in
  Format.fprintf fmt "scrub soak: bench=%s cells=%d base seed=%Ld kills/cell=%d@." bench cells
    seed kills;
  let results = Stramash_sim.Domain_pool.map ~domains (Array.init cells cell) in
  Array.iteri
    (fun i (seed_i, verdict, output) ->
      Format.fprintf fmt "@.--- cell %d (seed %Ld) ---@.%s" i seed_i output;
      ignore verdict)
    results;
  let worst =
    Array.fold_left
      (fun acc (_, v, _) -> if exit_code v > exit_code acc then v else acc)
      Clean results
  in
  Format.fprintf fmt "@.soak verdict: %s (%d cells)@." (verdict_to_string worst) cells;
  (worst, Array.to_list results |> List.mapi (fun i (s, v, _) -> (i, s, v)))

(* Experiments-registry entry: one campaign with the default schedule. *)
let scrub fmt = ignore (campaign fmt ())
