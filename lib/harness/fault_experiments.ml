(* Fault-injection campaign: run a workload on the fused kernel with an
   armed fault plan, then audit kernel state.

   Everything printed is a pure function of (seed, bench, plan config):
   the plan draws from private streams split off a seed derived from the
   machine seed, so two runs with the same arguments are byte-identical
   — the property the determinism tests pin down. *)

module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module Plan = Stramash_fault_inject.Plan
module Audit = Stramash_fault_inject.Audit
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module W = Stramash_workloads

let plan_config ?(drop_rate = 0.05) ?(ipi_loss = 0.02) ?(walk_fail = 0.02)
    ?(ptl_timeout = 0.01) ?(alloc_fail = 0.005) () =
  {
    Plan.default with
    Plan.msg_drop_rate = drop_rate;
    msg_delay_rate = drop_rate /. 2.0;
    ipi_loss_rate = ipi_loss;
    ipi_jitter_rate = ipi_loss;
    walk_fail_rate = walk_fail;
    ptl_timeout_rate = ptl_timeout;
    alloc_fail_rate = alloc_fail;
  }

(* Small problem sizes: the campaign's point is fault-path coverage, not
   steady-state performance, and the tests run it twice back to back.
   The set itself comes from the shared NPB table. *)
let benches = W.Npb_suite.fig9_names

let spec_of_bench bench = List.assoc_opt bench (W.Npb_suite.fig9_set ~small:true)

let campaign fmt ?(seed = 0xC0FFEEL) ?(bench = "is") ?(config = plan_config ())
    ?(on_metrics = fun (_ : Stramash_sim.Metrics.registry) -> ()) () =
  match spec_of_bench bench with
  | None ->
      Format.fprintf fmt "unknown benchmark %s (faults campaign runs is | cg | mg | ft)@." bench;
      false
  | Some spec ->
      let machine =
        Machine.create
          {
            Machine.default_config with
            Machine.os = Machine.Stramash_kernel_os;
            seed;
            inject = Some config;
          }
      in
      let proc, thread = Machine.load machine spec in
      let result = Runner.run machine proc thread spec in
      Format.fprintf fmt "faults campaign: bench=%s seed=%Ld@." bench seed;
      Format.fprintf fmt
        "run: wall=%d cycles, %d instructions, %d migrations, %d messages, %d fallback pages@."
        result.Runner.wall_cycles result.Runner.instructions result.Runner.migrations
        result.Runner.messages result.Runner.replicated_pages;
      (match Machine.inject_plan machine with
      | Some plan ->
          Plan.report fmt plan;
          on_metrics (Plan.metrics plan)
      | None -> ());
      let env = Machine.env machine in
      let extra =
        match Machine.os machine with
        | Os.Stramash os ->
            [ ("ptl-quiescent", Stramash_fault.ptls_quiescent (Stramash_os.faults os)) ]
        | _ -> []
      in
      let audit = Audit.run ~env ~procs:[ proc ] ~extra () in
      Format.fprintf fmt "post-run audit: %a@." Audit.pp audit;
      let mapped = Audit.mapped_frames ~env ~proc in
      Machine.exit_process machine proc;
      let teardown = Audit.check_teardown ~env ~procs:[ proc ] ~mapped in
      Format.fprintf fmt "teardown audit (%d frames tracked): %a@." (List.length mapped)
        Audit.pp teardown;
      let clean = Audit.is_clean audit && Audit.is_clean teardown in
      Format.fprintf fmt "campaign verdict: %s@." (if clean then "CLEAN" else "VIOLATIONS");
      clean

(* Experiments-registry entry: one moderate-intensity campaign plus a
   no-fault control, both audited. *)
let faults fmt =
  ignore (campaign fmt ~seed:0xFA017L ());
  Format.fprintf fmt "@.";
  ignore (campaign fmt ~seed:0xFA017L ~config:Plan.default ())
