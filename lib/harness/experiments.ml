type t = { id : string; title : string; run : Format.formatter -> unit }

let all =
  [
    { id = "fig5-6"; title = "IPI latency characterisation"; run = Validation.fig5_6 };
    { id = "fig7"; title = "icount/cycle-estimate validation"; run = Validation.fig7 };
    { id = "fig8"; title = "cache plugin vs Ruby reference"; run = Validation.fig8 };
    { id = "table2"; title = "memory-operation latency configuration"; run = Validation.table2 };
    { id = "fig9"; title = "NPB cross-ISA migration"; run = Npb_experiments.fig9 };
    { id = "table3"; title = "messages & replicated pages"; run = Npb_experiments.table3 };
    { id = "fig10"; title = "cache-size sensitivity (IS vs CG)"; run = Npb_experiments.fig10 };
    { id = "fig9x"; title = "NPB extension kernels (EP/LU/SP)"; run = Npb_experiments.fig9_extended };
    { id = "fig9b"; title = "NPB overhead breakdown (INST/mem/MSG)"; run = Npb_experiments.fig9_breakdown };
    { id = "fig11"; title = "memory-access microbenchmark"; run = Micro_experiments.fig11 };
    { id = "fig12"; title = "DSM vs HW coherence granularity"; run = Micro_experiments.fig12 };
    { id = "fig13"; title = "futex microbenchmark"; run = Micro_experiments.fig13 };
    { id = "table4"; title = "global allocator hotplug overheads"; run = Micro_experiments.table4 };
    { id = "fig14"; title = "Redis-like network-serving application"; run = Redis_experiment.fig14 };
    { id = "ablation-cxl"; title = "ablation: CXL snoop-cost sensitivity"; run = Ablation.cxl_sweep };
    { id = "ablation-notify"; title = "ablation: IPI vs polling notification"; run = Ablation.notify_mode };
    { id = "ablation-fallback"; title = "ablation: fused fault-path breakdown"; run = Ablation.fallback_stats };
    { id = "ablation-packing"; title = "ablation: secure data packing"; run = Ablation.data_packing };
    { id = "faults"; title = "fault-injection campaign & kernel audit"; run = Fault_experiments.faults };
    { id = "chaos"; title = "node-failure chaos campaign (kill/restart soak)"; run = Chaos_experiments.chaos };
    { id = "placement"; title = "adaptive page placement (crossover + verdict soak)"; run = Placement_experiments.placement };
    { id = "gray"; title = "gray-failure campaign (breaker-on/off A/B soak)"; run = Gray_experiments.gray };
    { id = "scrub"; title = "silent-data-corruption campaign (inject/detect/repair)"; run = Integrity_experiments.scrub };
    { id = "serve"; title = "open-loop serving campaign (Zipfian tail-latency SLOs)"; run = Serve_experiments.serve };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

let run_all fmt =
  List.iter
    (fun e ->
      Format.fprintf fmt "@.=============== %s: %s ===============@." e.id e.title;
      let t0 = Sys.time () in
      e.run fmt;
      Format.fprintf fmt "[%s completed in %.1fs host time]@." e.id (Sys.time () -. t0))
    all
