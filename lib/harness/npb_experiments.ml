module Layout = Stramash_mem.Layout
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Spec = Stramash_machine.Spec
module W = Stramash_workloads

type run_summary = {
  bench : string;
  config : string;
  wall : int;
  messages : int;
  replicated : int;
}

(* The bench set lives in the shared NPB table ({!W.Npb_suite}), which
   bench --perf, the CLI and CI key on as well. *)
let benchmarks ~small = W.Npb_suite.fig9_set ~small

(* The paper's Fig. 9 configurations: Vanilla; Popcorn-TCP (memory-model
   independent); Popcorn-SHM and Stramash on each of the three hardware
   models. *)
let configurations =
  [
    ("vanilla", Machine.Vanilla, Layout.Shared);
    ("popcorn-tcp", Machine.Popcorn_tcp, Layout.Shared);
    ("shm-separated", Machine.Popcorn_shm, Layout.Separated);
    ("shm-shared", Machine.Popcorn_shm, Layout.Shared);
    ("shm-fullyshared", Machine.Popcorn_shm, Layout.Fully_shared);
    ("stramash-separated", Machine.Stramash_kernel_os, Layout.Separated);
    ("stramash-shared", Machine.Stramash_kernel_os, Layout.Shared);
    ("stramash-fullyshared", Machine.Stramash_kernel_os, Layout.Fully_shared);
  ]

let run_one ?l3_size ~os ~hw_model spec =
  let machine = Machine.create { Machine.default_config with os; hw_model; l3_size } in
  let proc, thread = Machine.load machine spec in
  Runner.run machine proc thread spec

let fig9_data ?(small = false) () =
  List.concat_map
    (fun (bench, spec) ->
      List.map
        (fun (config, os, hw_model) ->
          let r = run_one ~os ~hw_model spec in
          {
            bench;
            config;
            wall = r.Runner.wall_cycles;
            messages = r.Runner.messages;
            replicated = r.Runner.replicated_pages;
          })
        configurations)
    (benchmarks ~small)

(* Fig. 9 and Table 3 share one (expensive) sweep. *)
let full_data = lazy (fig9_data ())

let fig9 fmt =
  let data = Lazy.force full_data in
  let r =
    Report.create ~title:"Fig. 9: NPB cross-ISA migration, runtime normalised to Vanilla"
      ~note:"lower is better; paper: Stramash up to ~2.1x faster than Popcorn-SHM (IS), ~2.6x \
             vs TCP; Fully Shared Stramash closest to Vanilla"
      ~columns:[ "bench"; "config"; "norm. runtime"; "wall (ms)"; "" ]
  in
  List.iter
    (fun (bench, _) ->
      let rows = List.filter (fun s -> s.bench = bench) data in
      let vanilla =
        match List.find_opt (fun s -> s.config = "vanilla") rows with
        | Some v -> float_of_int v.wall
        | None -> 1.0
      in
      List.iter
        (fun s ->
          let norm = float_of_int s.wall /. vanilla in
          Report.add_row r
            [
              bench;
              s.config;
              Report.cell_f norm;
              Report.cell_f (Stramash_sim.Cycles.to_ms s.wall);
              Report.bar norm ~max:8.0 ~width:32;
            ])
        rows)
    (benchmarks ~small:false);
  Report.print fmt r

let table3 fmt =
  let data = Lazy.force full_data in
  let r =
    Report.create
      ~title:"Table 3: message count & replicated pages during runtime migration"
      ~note:"Popcorn-SHM vs Stramash on the Shared model; paper: >99% reductions except FT pages"
      ~columns:
        [ "bench"; "msgs popcorn"; "msgs stramash"; "reduced"; "pages popcorn"; "pages stramash"; "reduced" ]
  in
  List.iter
    (fun (bench, _) ->
      let find config = List.find (fun s -> s.bench = bench && s.config = config) data in
      let p = find "shm-shared" and s = find "stramash-shared" in
      let reduction a b = if a = 0 then 0.0 else 1.0 -. (float_of_int b /. float_of_int a) in
      Report.add_row r
        [
          bench;
          string_of_int p.messages;
          string_of_int s.messages;
          Report.cell_pct (reduction p.messages s.messages);
          string_of_int p.replicated;
          string_of_int s.replicated;
          Report.cell_pct (reduction p.replicated s.replicated);
        ])
    (benchmarks ~small:false);
  Report.print fmt r

(* Extension kernels (the paper's §8.3 runs NPB "amongst others"): the
   compute-bound EP, wavefront LU-like, and line-solver SP-like. *)
let extension_benchmarks () =
  [
    ("ep", W.Npb_ep.spec ());
    ("lu", W.Npb_lu.spec ());
    ("sp", W.Npb_sp.spec ());
  ]

let fig9_extended fmt =
  let r =
    Report.create ~title:"Fig. 9 (extended): EP / LU-like / SP-like kernels"
      ~note:"beyond the paper's plotted set; EP is compute-bound, so OS design barely matters"
      ~columns:[ "bench"; "config"; "norm. runtime"; "wall (ms)" ]
  in
  List.iter
    (fun (bench, spec) ->
      let vanilla = ref 1.0 in
      List.iter
        (fun (config, os, hw_model) ->
          let res = run_one ~os ~hw_model spec in
          if config = "vanilla" then vanilla := float_of_int res.Runner.wall_cycles;
          Report.add_row r
            [
              bench;
              config;
              Report.cell_f (float_of_int res.Runner.wall_cycles /. !vanilla);
              Report.cell_f (Stramash_sim.Cycles.to_ms res.Runner.wall_cycles);
            ])
        [
          ("vanilla", Machine.Vanilla, Layout.Shared);
          ("popcorn-tcp", Machine.Popcorn_tcp, Layout.Shared);
          ("shm-shared", Machine.Popcorn_shm, Layout.Shared);
          ("stramash-shared", Machine.Stramash_kernel_os, Layout.Shared);
        ])
    (extension_benchmarks ());
  Report.print fmt r

let fig9_breakdown fmt =
  let r =
    Report.create ~title:"Fig. 9 breakdown: INST vs memory overhead vs MSG/OS (Shared model)"
      ~note:"the paper's \"performance improvement breakdown\" (\u{00a7}9.2.1): messaging is not \
             the dominant SHM cost; memory behaviour is"
      ~columns:[ "bench"; "config"; "wall (ms)"; "INST"; "mem stalls"; "MSG/OS rest" ]
  in
  List.iter
    (fun (bench, spec) ->
      List.iter
        (fun (config, os) ->
          let res = run_one ~os ~hw_model:Layout.Shared spec in
          let wall = res.Runner.wall_cycles in
          (* Sum per-node components; the MSG/OS bucket is everything the
             meters absorbed that was neither a user instruction nor a
             user memory stall (kernel walks, DSM copies, ring transfers,
             IPIs, handler work). *)
          let total arr = Array.fold_left ( + ) 0 arr in
          let inst = total res.Runner.node_icounts in
          let stalls = total res.Runner.node_user_stalls in
          let busy =
            List.fold_left
              (fun acc node -> acc + Runner.node_busy res node)
              0 Stramash_sim.Node_id.all
          in
          let rest = max 0 (busy - inst - stalls) in
          let pct v = Report.cell_pct (float_of_int v /. float_of_int (max busy 1)) in
          ignore wall;
          Report.add_row r
            [
              bench;
              config;
              Report.cell_f (Stramash_sim.Cycles.to_ms res.Runner.wall_cycles);
              pct inst;
              pct stalls;
              pct rest;
            ])
        [ ("shm-shared", Machine.Popcorn_shm); ("stramash-shared", Machine.Stramash_kernel_os) ])
    (benchmarks ~small:false);
  Report.print fmt r

let fig10 fmt =
  let l3_small = None (* scaled 4MB default *) in
  let l3_big = Some (Stramash_mem.Addr.mib 2) (* scaled 32MB *) in
  let r =
    Report.create ~title:"Fig. 10: IS vs CG under different L3 sizes"
      ~note:"paper: bigger L3 closes CG's Stramash gap (34% -> <1%) and shrinks the IS win \
             (2.1x -> 1.6x); labels use paper-equivalent sizes (16x scale)"
      ~columns:[ "bench"; "L3"; "config"; "wall (ms)"; "stramash vs shm" ]
  in
  let benches =
    [ ("is", W.Npb_is.spec ()); ("cg", W.Npb_cg.spec ()) ]
  in
  List.iter
    (fun (bench, spec) ->
      List.iter
        (fun (l3_label, l3_size) ->
          let shm = run_one ?l3_size ~os:Machine.Popcorn_shm ~hw_model:Layout.Shared spec in
          let str = run_one ?l3_size ~os:Machine.Stramash_kernel_os ~hw_model:Layout.Shared spec in
          let ratio = float_of_int shm.Runner.wall_cycles /. float_of_int str.Runner.wall_cycles in
          Report.add_row r
            [
              bench;
              l3_label;
              "shm-shared";
              Report.cell_f (Stramash_sim.Cycles.to_ms shm.Runner.wall_cycles);
              "";
            ];
          Report.add_row r
            [
              bench;
              l3_label;
              "stramash-shared";
              Report.cell_f (Stramash_sim.Cycles.to_ms str.Runner.wall_cycles);
              Report.cell_x ratio;
            ])
        [ ("4MB", l3_small); ("32MB", l3_big) ])
    benches;
  Report.print fmt r
