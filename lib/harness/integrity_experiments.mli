(** Scrub campaign: seeded silent-data-corruption injection (page bit
    flips, message corruption/truncation, stale PTE installs, torn
    checkpoints), end-to-end detection (background scrubber, per-message
    CRC framing, verify-after-install, versioned checkpoint decode), and
    replica-backed repair, run against a live NPB workload with the
    adaptive placement engine attached. Output is a pure function of
    (seed, bench, knobs, cache mode). *)

type verdict = Chaos_experiments.verdict =
  | Clean
      (** Every injected corruption detected, nothing unrepaired, at
          least 90% healed without the checkpoint fallback, all audits
          (including the post-sweep fingerprint proof) clean, and every
          scheduled kill recovered. *)
  | Violations  (** Campaign ran but a detection, repair or audit gate failed. *)
  | Unrecovered  (** A typed fault escaped recovery, or a kill never recovered. *)
  | Unknown_bench  (** Unusable arguments — the campaign never ran. *)

val verdict_to_string : verdict -> string

val exit_code : verdict -> int
(** Shared CLI contract: [Clean] → 0, [Violations]/[Unrecovered] → 1,
    [Unknown_bench] → 2. *)

val default_flips : int
val default_msg_rate : float
val default_pte_rate : float

val probe_config :
  flips:int -> msg_rate:float -> pte_rate:float -> Stramash_fault_inject.Plan.config
(** The campaign's config shape with placeholder flip events carrying the
    user's knobs — what the CLI feeds {!Plan.validate} before committing
    to the run. *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?flips:int ->
  ?msg_rate:float ->
  ?pte_rate:float ->
  ?kills:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?on_metrics:(label:string -> Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  verdict
(** Fingerprint the bench corruption-free, then replay it under a seeded
    corruption schedule anchored to the first far-node landing, with the
    scrubber armed. [kills] > 0 folds a kill/restart schedule into the
    same plan with every death's checkpoint torn, proving the v2 header
    rejection and the shadow fallback. Prints the schedule, audits, the
    fault-plan report, detection/repair/exposure counters, and a final
    ["campaign verdict: ..."] line for CI grep. [on_metrics] receives the
    run's registry (label ["scrub"]) for [--metrics-json]. *)

val soak :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?flips:int ->
  ?msg_rate:float ->
  ?pte_rate:float ->
  ?kills:int ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  cells:int ->
  domains:int ->
  unit ->
  verdict * (int * int64 * verdict) list
(** K campaign cells (corruption + kill/restart in one plan; [kills]
    defaults to 1 per cell) at derived seeds over D host domains via
    {!Stramash_sim.Domain_pool}, each rendered into a private buffer and
    emitted in cell order — byte-identical for any [domains]. Returns the
    worst verdict and the per-cell (index, seed, verdict) list. *)

val scrub : Format.formatter -> unit
(** The ["scrub"] experiment: one campaign with the default schedule. *)
