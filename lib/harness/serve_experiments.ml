module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Rng = Stramash_sim.Rng
module Metrics = Stramash_sim.Metrics
module Histogram = Stramash_sim.Metrics.Histogram
module Cache_sim = Stramash_cache.Cache_sim
module Machine = Stramash_machine.Machine
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Serve = Stramash_serve.Serve
module Slo = Stramash_serve.Slo

type verdict = Chaos_experiments.verdict = Clean | Violations | Unrecovered | Unknown_bench

let verdict_to_string = Chaos_experiments.verdict_to_string
let exit_code = Chaos_experiments.exit_code

(* Expected wall span of an open-loop run: the arrival schedule's mean
   covers it regardless of service times (the last arrival lands near
   requests * mean-gap; service only adds the final drain). Both fault
   schedules anchor on it. *)
let expected_span ~rate ~requests =
  int_of_float (float_of_int requests *. (Cycles.frequency_ghz *. 1e9 /. rate))

let chaos_inject ~seed ~span =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x5EC4A05DEAD5EEDL) in
  let third = max 2 (span / 3) in
  let jitter () = Rng.int rng (max 1 (span / 20)) in
  (* 1% of the span per island: long enough that the stalled cohort and
     the post-restart queue drain show up at p99, not just at max. *)
  let down = max (Cycles.of_us 150.0) (span / 100) in
  {
    Plan.default with
    node_events =
      [
        { Plan.node = Node_id.Arm; kill_at = third + jitter (); restart_after = Some down };
        { Plan.node = Node_id.X86; kill_at = (2 * third) + jitter (); restart_after = Some down };
      ];
  }

let gray_inject ~seed ~span ~factor =
  let rng = Rng.create ~seed:(Int64.logxor seed 0x64A7_5EEDL) in
  let third = max 2 (span / 3) in
  let jitter = Rng.int rng (max 1 (span / 20)) in
  {
    Plan.default with
    gray_slow = [ { Plan.g_node = Node_id.Arm; g_start = third + jitter; g_len = third; g_factor = factor } ];
  }

let scrub_inject = { Plan.default with corrupt_pte_rate = 0.05; scrub_enabled = true }

let p99_us h = Slo.cycles_to_us (Histogram.p99 h)

(* One cell rendered into its own buffer: the replay check compares this
   string byte-for-byte, so everything a cell prints must be a pure
   function of its config. *)
let run_cell ~label cfg =
  let buf = Buffer.create 4096 in
  let b = Format.formatter_of_buffer buf in
  let outcome = Serve.run cfg in
  Format.fprintf b "--- cell %s ---@." label;
  Serve.pp_outcome b outcome;
  List.iter
    (fun key ->
      match List.assoc_opt key outcome.Serve.o_counters with
      | Some v when v > 0 -> Format.fprintf b "  %s = %d@." key v
      | _ -> ())
    [
      "serve.queue_wait_cycles";
      "serve.idle_cycles";
      "serve.downtime_stall_cycles";
      "serve.stalled_requests";
      "serve.quanta";
    ];
  List.iter (fun (k, v) -> if v > 0 then Format.fprintf b "  %s = %d@." k v) outcome.Serve.o_placement;
  (match outcome.Serve.o_plan with
  | None -> ()
  | Some plan ->
      List.iter
        (fun (k, v) ->
          let relevant prefix = String.length k >= String.length prefix
                                && String.sub k 0 (String.length prefix) = prefix in
          if v > 0 && (relevant "gray." || relevant "corruption." || relevant "chaos.") then
            Format.fprintf b "  plan: %s = %d@." k v)
        (Metrics.to_assoc (Plan.metrics plan)));
  Format.pp_print_flush b ();
  (outcome, Buffer.contents buf)

let campaign fmt ?(seed = 0x5E12E5L) ?(keys = 1 lsl 20) ?(theta = 0.99) ?(rate = 20_000.0)
    ?(requests = 20_000) ?(payload = 1024) ?(cache_mode = Cache_sim.Fast) ?(placement = true)
    ?(chaos = true) ?(gray = true) ?(scrub = true) ?(factor = 3.0)
    ?(on_metrics = fun ~label:_ (_ : Metrics.registry) -> ()) () =
  let base =
    { Serve.default with keys; theta; rate; requests; payload; seed; cache_mode }
  in
  match Serve.validate base with
  | Error msg ->
      Format.fprintf fmt "serve campaign: invalid config: %s@." msg;
      Format.fprintf fmt "campaign verdict: %s@." (verdict_to_string Unknown_bench);
      Unknown_bench
  | Ok () -> (
      let span = expected_span ~rate ~requests in
      Format.fprintf fmt
        "open-loop serving campaign: keys=%d theta=%.2f rate=%.0f req/s requests=%d payload=%d B \
         seed=%Ld@."
        keys theta rate requests payload seed;
      Format.fprintf fmt
        "arrivals are stamped by the interarrival schedule (expected span %a): queueing delay is \
         in every sample, coordinated omission is impossible by construction@." Cycles.pp span;
      let cells =
        [ ("popcorn-shm", { base with Serve.os = Machine.Popcorn_shm }); ("stramash", base) ]
        @ (if placement then [ ("stramash+placement", { base with Serve.placement = true }) ] else [])
        @ (if chaos then
             [ ("stramash+chaos", { base with Serve.inject = Some (chaos_inject ~seed ~span) }) ]
           else [])
        @ (if gray then
             [ ("stramash+gray", { base with Serve.inject = Some (gray_inject ~seed ~span ~factor) }) ]
           else [])
        @ if scrub then [ ("stramash+scrub", { base with Serve.inject = Some scrub_inject }) ] else []
      in
      try
        let results = List.map (fun (label, cfg) -> (label, cfg, run_cell ~label cfg)) cells in
        let outcome_of l =
          let _, _, (o, _) = List.find (fun (label, _, _) -> label = l) results in
          o
        in
        let baseline = outcome_of "stramash" in
        List.iter
          (fun (label, _, (outcome, text)) ->
            Format.fprintf fmt "@.%s" text;
            if label <> "stramash" then
              Format.fprintf fmt "  p99 delta vs stramash baseline: %+.1fus@."
                (p99_us outcome.Serve.o_all -. p99_us baseline.Serve.o_all);
            on_metrics ~label (Serve.registry_of outcome))
          results;
        (* Same-seed replay: the baseline and the chaos-composed cell must
           reproduce their rendered reports byte-for-byte. *)
        let replay label =
          let _, cfg, (_, first) = List.find (fun (l, _, _) -> l = label) results in
          let _, again = run_cell ~label cfg in
          let ok = String.equal first again in
          Format.fprintf fmt "replay %s: %s@." label
            (if ok then "byte-identical" else "MISMATCH");
          ok
        in
        Format.fprintf fmt "@.";
        let replays_ok =
          List.for_all replay ([ "stramash" ] @ if chaos then [ "stramash+chaos" ] else [])
        in
        (* SLO gates apply to the fault-free Stramash cells; composed
           cells report their (expected) degradation instead of gating. *)
        let slo_ok =
          baseline.Serve.o_slo.Slo.pass
          && ((not placement) || (outcome_of "stramash+placement").Serve.o_slo.Slo.pass)
        in
        let verdict = if replays_ok && slo_ok then Clean else Violations in
        Format.fprintf fmt "campaign verdict: %s (slo %s, replays %s)@." (verdict_to_string verdict)
          (if slo_ok then "pass" else "fail")
          (if replays_ok then "identical" else "diverged");
        verdict
      with Fault.Error e ->
        Format.fprintf fmt "unrecovered fault: %a@." Fault.pp e;
        Format.fprintf fmt "campaign verdict: %s@." (verdict_to_string Unrecovered);
        Unrecovered)

let soak fmt ?(seed = 0x5E12E5L) ?(keys = 1 lsl 20) ?(rate = 20_000.0) ?(requests = 20_000)
    ?(cache_mode = Cache_sim.Fast) ~cells ~domains () =
  let cell i () =
    let buf = Buffer.create 4096 in
    let bfmt = Format.formatter_of_buffer buf in
    let seed_i = Int64.add seed (Int64.of_int i) in
    let verdict = campaign bfmt ~seed:seed_i ~keys ~rate ~requests ~cache_mode () in
    Format.pp_print_flush bfmt ();
    (seed_i, verdict, Buffer.contents buf)
  in
  Format.fprintf fmt "serve soak: cells=%d base seed=%Ld@." cells seed;
  let results = Stramash_sim.Domain_pool.map ~domains (Array.init cells cell) in
  Array.iteri
    (fun i (seed_i, verdict, output) ->
      Format.fprintf fmt "@.--- cell %d (seed %Ld) ---@.%s" i seed_i output;
      ignore verdict)
    results;
  let worst =
    Array.fold_left (fun acc (_, v, _) -> if exit_code v > exit_code acc then v else acc) Clean results
  in
  Format.fprintf fmt "@.soak verdict: %s (%d cells)@." (verdict_to_string worst) cells;
  (worst, Array.to_list results |> List.mapi (fun i (s, v, _) -> (i, s, v)))

(* Experiments-registry entry: one reduced-size campaign (the full-size
   matrix is the CLI's and CI's job). *)
let serve fmt = ignore (campaign fmt ~keys:65_536 ~requests:6_000 ())
