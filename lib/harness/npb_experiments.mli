(** NPB cross-ISA migration experiments: Fig. 9 (normalised runtimes per OS
    and hardware model), Table 3 (messages and replicated pages), Fig. 10
    (L3-size sensitivity for IS vs CG). *)

val fig9 : Format.formatter -> unit
val table3 : Format.formatter -> unit
val fig10 : Format.formatter -> unit

val fig9_extended : Format.formatter -> unit
(** The same sweep over the extension kernels the paper does not plot
    (EP, LU-like, SP-like) — "amongst others" in §8.3. *)

val fig9_breakdown : Format.formatter -> unit
(** The §9.2.1 overhead breakdown: INST (instructions at CPI 1), user
    memory stalls (Local/Remote), and the MSG/OS remainder, per benchmark
    for Popcorn-SHM vs Stramash on the Shared model. *)

type run_summary = {
  bench : string;
  config : string;
  wall : int;
  messages : int;
  replicated : int;
}

val fig9_data : ?small:bool -> unit -> run_summary list
(** All Fig. 9 runs; [small] uses reduced classes (used by tests). *)

val benchmarks : small:bool -> (string * Stramash_machine.Spec.t) list
(** The NPB specs the sweep runs ([small] = reduced classes) — shared with
    the fast-path equivalence tests and the perf-bench harness. *)
