module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Latency = Stramash_mem.Latency
module Layout = Stramash_mem.Layout
module Ipi = Stramash_interconnect.Ipi
module Cache_config = Stramash_cache.Config
module Cache_sim = Stramash_cache.Cache_sim
module Ruby_ref = Stramash_cache.Ruby_ref
module Trace = Stramash_cache.Trace
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads

(* ---------- Figs. 5 & 6: IPI latency matrices ---------- *)

let ipi_machines = [ Ipi.small_arm; Ipi.big_arm; Ipi.small_x86; Ipi.big_x86 ]

(* The paper shows per-core-pair heatmaps; render one downsampled to at
   most 16x16 blocks with a 5-shade ramp over the latency range. *)
let print_heatmap fmt (m : Ipi.machine) mat =
  let n = Array.length mat in
  let blocks = min 16 n in
  let per = n / blocks in
  let shades = [| ' '; '.'; ':'; 'o'; '#' |] in
  let lo = ref infinity and hi = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if i <> j then begin
            if v < !lo then lo := v;
            if v > !hi then hi := v
          end)
        row)
    mat;
  Format.fprintf fmt "%s (%dx%d cores, %dx%d blocks; ' '=%.0fns '#'=%.0fns):@." m.Ipi.name n n
    blocks blocks !lo !hi;
  for bi = 0 to blocks - 1 do
    Format.fprintf fmt "  ";
    for bj = 0 to blocks - 1 do
      let sum = ref 0.0 and cnt = ref 0 in
      for i = bi * per to (bi * per) + per - 1 do
        for j = bj * per to (bj * per) + per - 1 do
          if i <> j then begin
            sum := !sum +. mat.(i).(j);
            incr cnt
          end
        done
      done;
      let mean = if !cnt = 0 then !lo else !sum /. float_of_int !cnt in
      let t = (mean -. !lo) /. Float.max 1.0 (!hi -. !lo) in
      let idx = min 4 (int_of_float (t *. 5.0)) in
      Format.fprintf fmt "%c%c" shades.(idx) shades.(idx)
    done;
    Format.fprintf fmt "@."
  done

let fig5_6 fmt =
  let r =
    Report.create ~title:"Figs. 5-6: IPI latency per machine (ns)"
      ~note:"per-core-pair measurement harness over the topology model; big-pair mean calibrates \
             the 2us cross-ISA IPI"
      ~columns:[ "machine"; "cores"; "mean"; "min"; "max"; "p95" ]
  in
  List.iter
    (fun m ->
      let rng = Rng.create ~seed:0x1B1L in
      let mat = Ipi.matrix rng m in
      let values = ref [] in
      Array.iteri
        (fun i row -> Array.iteri (fun j v -> if i <> j then values := v :: !values) row)
        mat;
      let values = Array.of_list !values in
      Array.sort compare values;
      let n = Array.length values in
      let mean = Ipi.matrix_mean_ns mat in
      Report.add_row r
        [
          m.Ipi.name;
          string_of_int m.Ipi.cores;
          Report.cell_f mean;
          Report.cell_f values.(0);
          Report.cell_f values.(n - 1);
          Report.cell_f values.(n * 95 / 100);
        ])
    ipi_machines;
  Report.print fmt r;
  Format.fprintf fmt "@.";
  List.iter
    (fun m ->
      let rng = Rng.create ~seed:0x1B1L in
      print_heatmap fmt m (Ipi.matrix rng m))
    [ Ipi.big_arm; Ipi.big_x86 ];
  Format.fprintf fmt "simulated cross-ISA IPI cost: %d cycles (%.2f us)@." Ipi.cross_isa_ipi_cycles
    (Stramash_sim.Cycles.to_us Ipi.cross_isa_ipi_cycles)

(* ---------- Fig. 7: cycle-estimate validation ---------- *)

(* Reduced workload classes so the validation sweep stays fast. *)
let small_specs () =
  [
    ("is", W.Npb_is.spec ~params:{ W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ());
    ("cg", W.Npb_cg.spec ~params:{ W.Npb_cg.n = 4096; row_nnz = 8; iterations = 2 } ());
    ("mg", W.Npb_mg.spec ~params:{ W.Npb_mg.n = 16; iterations = 2 } ());
    ("ft", W.Npb_ft.spec ~params:{ W.Npb_ft.n = 8; iterations = 2 } ());
  ]

(* "Native" reference machines: the published per-pair latency tables
   (Table 2 — the small pair's Cortex-A72 has no L3) plus a per-machine
   base-CPI calibration factor standing in for the micro-architectural
   behaviour (superscalar issue, prefetching) our fixed-CPI simulator does
   not model. The estimate always uses the canonical Stramash-QEMU
   configuration with CPI 1; the relative error between the two is the
   Fig. 7 metric. *)
let machine_pair_config ~pair hw_model =
  let base = Cache_config.default hw_model in
  match pair with
  | `Big ->
      {
        base with
        Cache_config.x86_lat = Latency.of_core Latency.Xeon_gold;
        arm_lat = Latency.of_core Latency.Thunderx2;
      }
  | `Small ->
      {
        base with
        Cache_config.x86_lat = Latency.of_core Latency.E5_2620;
        arm_lat = Latency.of_core Latency.Cortex_a72;
      }

(* Effective (base CPI, memory-stall) factors of each reference machine
   relative to the simulator's fixed CPI 1 and unprefetched memory model
   (calibration constants, DESIGN.md substitution table): real cores issue
   more than one op per cycle but also hide fewer stalls than the in-order
   model assumes, in different proportions per machine. *)
let machine_factors ~pair node =
  match (pair, node) with
  | `Big, Node_id.X86 -> (0.97, 0.97)
  | `Big, Node_id.Arm -> (1.04, 1.03)
  | `Small, Node_id.X86 -> (0.95, 1.03)
  | `Small, Node_id.Arm -> (1.07, 1.04)

let run_nodes ~cache_config spec =
  let machine =
    Machine.create { Machine.default_config with os = Machine.Popcorn_shm; cache_config }
  in
  let proc, thread = Machine.load machine spec in
  let result = Runner.run machine proc thread spec in
  (result.Runner.node_cycles, result.Runner.node_icounts)

let fig7_errors () =
  List.concat_map
    (fun (name, spec) ->
      let est, _ = run_nodes ~cache_config:None spec in
      List.concat_map
        (fun (pair, suffix) ->
          let raw, icounts =
            run_nodes ~cache_config:(Some (machine_pair_config ~pair Layout.Shared)) spec
          in
          List.map
            (fun node ->
              let i = Node_id.index node in
              (* native cycles = CPI * instructions + stall-factor * memory stalls *)
              let cpi, stall_f = machine_factors ~pair node in
              let stalls = raw.(i) - icounts.(i) in
              let truth = (cpi *. float_of_int icounts.(i)) +. (stall_f *. float_of_int stalls) in
              let err = Float.abs (float_of_int est.(i) -. truth) /. Float.max truth 1.0 in
              (Printf.sprintf "%s_%s_%s" name (Node_id.to_string node) suffix, err))
            Node_id.all)
        [ (`Small, "s"); (`Big, "b") ])
    (small_specs ())

let fig7 fmt =
  let r =
    Report.create ~title:"Fig. 7: icount-based cycle estimate vs reference-machine model"
      ~note:"relative error of the canonical simulator configuration against per-machine-pair \
             latency/geometry models; paper: always <13%, ~4% average"
      ~columns:[ "measurement"; "rel. error"; "" ]
  in
  let errors = fig7_errors () in
  List.iter
    (fun (label, err) ->
      Report.add_row r [ label; Report.cell_pct err; Report.bar err ~max:0.13 ~width:26 ])
    errors;
  let avg = List.fold_left (fun a (_, e) -> a +. e) 0.0 errors /. float_of_int (List.length errors) in
  let worst = List.fold_left (fun a (_, e) -> Float.max a e) 0.0 errors in
  Report.print fmt r;
  Format.fprintf fmt "average error: %s   worst: %s@." (Report.cell_pct avg) (Report.cell_pct worst)

(* ---------- Fig. 8: cache plugin vs Ruby-style reference ---------- *)

let fig8_levels = [ "l1i"; "l1d"; "l2"; "l3" ]

let fig8_run () =
  List.map
    (fun (name, spec) ->
      let machine = Machine.create { Machine.default_config with os = Machine.Stramash_kernel_os } in
      let cache = Machine.cache machine in
      let trace = Trace.create () in
      Trace.attach trace cache;
      let proc, thread = Machine.load machine spec in
      ignore (Runner.run machine proc thread spec);
      Cache_sim.set_probe cache None;
      let ruby = Ruby_ref.create (Cache_sim.config cache) in
      Trace.replay_into_ruby trace ruby;
      (name, cache, ruby, Trace.length trace))
    (small_specs ())

(* Hit-rate comparisons are only meaningful for levels that see real
   traffic; a level behind a 99%+ upstream hit rate has a handful of
   accesses and its rate is noise (the paper's full-size runs give every
   level millions of accesses). *)
let fig8_min_accesses = 2000

let fig8_gaps () =
  List.concat_map
    (fun (name, cache, ruby, _len) ->
      List.concat_map
        (fun node ->
          List.filter_map
            (fun level ->
              if Cache_sim.stat cache node (level ^ "_accesses") < fig8_min_accesses then None
              else
                let a = Cache_sim.hit_rate cache node level in
                let b = Ruby_ref.hit_rate ruby node level in
                Some
                  (Printf.sprintf "%s_%s_%s" name (Node_id.to_string node) level, Float.abs (a -. b)))
            fig8_levels)
        Node_id.all)
    (fig8_run ())

let fig8 fmt =
  let r =
    Report.create ~title:"Fig. 8: cache-plugin vs gem5-Ruby-style reference (hit rates)"
      ~note:"same traces through both models; paper: discrepancies < 5% at every level"
      ~columns:[ "benchmark"; "node"; "level"; "accesses"; "plugin"; "ruby"; "|gap|" ]
  in
  List.iter
    (fun (name, cache, ruby, _len) ->
      List.iter
        (fun node ->
          List.iter
            (fun level ->
              let accesses = Cache_sim.stat cache node (level ^ "_accesses") in
              let a = Cache_sim.hit_rate cache node level in
              let b = Ruby_ref.hit_rate ruby node level in
              let low_traffic = accesses < fig8_min_accesses in
              Report.add_row r
                [
                  name;
                  Node_id.to_string node;
                  level;
                  string_of_int accesses;
                  Report.cell_pct a;
                  Report.cell_pct b;
                  (if low_traffic then Report.cell_pct (Float.abs (a -. b)) ^ " (low traffic)"
                   else Report.cell_pct (Float.abs (a -. b)));
                ])
            fig8_levels)
        Node_id.all)
    (fig8_run ());
  Report.print fmt r

(* ---------- Table 2 ---------- *)

let table2 fmt =
  let r =
    Report.create ~title:"Table 2: memory-operation latencies (cycles)"
      ~note:"CXL latency for remote memory; '*' = no L3 on the reference core"
      ~columns:[ "core"; "L1"; "L2"; "L3"; "mem"; "remote-mem" ]
  in
  List.iter
    (fun core ->
      let l = Latency.of_core core in
      Report.add_row r
        [
          Latency.core_name core;
          string_of_int l.Latency.l1;
          string_of_int l.Latency.l2;
          (match l.Latency.l3 with Some v -> string_of_int v | None -> "*");
          string_of_int l.Latency.mem;
          string_of_int l.Latency.remote_mem;
        ])
    Latency.all_cores;
  Report.print fmt r
