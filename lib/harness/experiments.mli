(** Registry of every table/figure experiment (the DESIGN.md per-experiment
    index, executable). *)

type t = { id : string; title : string; run : Format.formatter -> unit }

val all : t list
val find : string -> t option
val ids : unit -> string list
val run_all : Format.formatter -> unit
