module Trace = Stramash_obs.Trace
module Causal = Stramash_obs.Causal
module Node_id = Stramash_sim.Node_id

let attribution_report tracer =
  let report =
    Report.create ~title:"Cycle attribution (subsystem x operation)"
      ~note:"total = inclusive simulated cycles; self = total minus nested spans"
      ~columns:[ "subsys"; "op"; "count"; "total"; "self"; "max"; "x86"; "arm" ]
  in
  List.iter
    (fun (r : Trace.row) ->
      Report.add_row report
        [
          r.Trace.subsys;
          r.Trace.op;
          string_of_int r.Trace.count;
          string_of_int r.Trace.total_cycles;
          string_of_int r.Trace.self_cycles;
          string_of_int r.Trace.max_cycles;
          string_of_int r.Trace.node_cycles.(0);
          string_of_int r.Trace.node_cycles.(1);
        ])
    (Trace.attribution tracer);
  report

let blame_report ?(top = 0) rows =
  let rows = if top > 0 then List.filteri (fun i _ -> i < top) rows else rows in
  let report =
    Report.create ~title:"Critical-path blame (subsystem x operation)"
      ~note:"cycles each hop contributes to the end-to-end latency of its causal flow"
      ~columns:[ "subsys"; "op"; "hops"; "cycles"; "x86"; "arm" ]
  in
  List.iter
    (fun (r : Causal.blame_row) ->
      Report.add_row report
        [
          r.Causal.b_subsys;
          r.Causal.b_op;
          string_of_int r.Causal.b_hops;
          string_of_int r.Causal.b_cycles;
          string_of_int r.Causal.b_node.(0);
          string_of_int r.Causal.b_node.(1);
        ])
    rows;
  report

let print_blocked_rows fmt rows =
  if rows <> [] then begin
    Format.fprintf fmt "blocked-on-remote cycles:";
    List.iteri
      (fun idx node ->
        let total = List.fold_left (fun acc (_, row) -> acc + row.(idx)) 0 rows in
        Format.fprintf fmt " %s=%d" (Node_id.to_string node) total)
      Node_id.all;
    Format.fprintf fmt " (%s)@."
      (String.concat ", "
         (List.map
            (fun (subsys, row) ->
              Printf.sprintf "%s %d" subsys (Array.fold_left ( + ) 0 row))
            rows))
  end

let print ?(fastpath = []) fmt tracer =
  Report.print fmt (attribution_report tracer);
  Format.fprintf fmt "events: %d recorded, %d dropped; top-span cycles:%s@."
    (Trace.recorded tracer) (Trace.dropped tracer)
    (String.concat ""
       (List.map
          (fun node ->
            Printf.sprintf " %s=%d" (Node_id.to_string node) (Trace.node_span_cycles tracer node))
          Node_id.all));
  (match Trace.dropped_by_subsystem tracer with
  | [] -> ()
  | drops ->
      Format.fprintf fmt "ring drops by subsystem:%s@."
        (String.concat "" (List.map (fun (s, n) -> Printf.sprintf " %s=%d" s n) drops)));
  print_blocked_rows fmt (Trace.blocked_rows tracer);
  if fastpath <> [] then begin
    let value name = try List.assoc name fastpath with Not_found -> 0 in
    let hits =
      List.fold_left (fun acc (n, v) -> if Filename.check_suffix n "l0_hits" then acc + v else acc)
        0 fastpath
    in
    let total =
      List.fold_left
        (fun acc (n, v) ->
          if Filename.check_suffix n "l0_hits" || Filename.check_suffix n "l0_misses" then acc + v
          else acc)
        0 fastpath
    in
    Format.fprintf fmt "fast-path L0:%s; %.1f%% of user accesses answered without the MESI machine@."
      (String.concat ""
         (List.map
            (fun node ->
              let n = Node_id.to_string node in
              Printf.sprintf " %s=%d/%d" n
                (value (n ^ ".l0_hits"))
                (value (n ^ ".l0_hits") + value (n ^ ".l0_misses")))
            Node_id.all))
      (if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total)
  end
