module Trace = Stramash_obs.Trace
module Node_id = Stramash_sim.Node_id

let attribution_report tracer =
  let report =
    Report.create ~title:"Cycle attribution (subsystem x operation)"
      ~note:"total = inclusive simulated cycles; self = total minus nested spans"
      ~columns:[ "subsys"; "op"; "count"; "total"; "self"; "max"; "x86"; "arm" ]
  in
  List.iter
    (fun (r : Trace.row) ->
      Report.add_row report
        [
          r.Trace.subsys;
          r.Trace.op;
          string_of_int r.Trace.count;
          string_of_int r.Trace.total_cycles;
          string_of_int r.Trace.self_cycles;
          string_of_int r.Trace.max_cycles;
          string_of_int r.Trace.node_cycles.(0);
          string_of_int r.Trace.node_cycles.(1);
        ])
    (Trace.attribution tracer);
  report

let print fmt tracer =
  Report.print fmt (attribution_report tracer);
  Format.fprintf fmt "events: %d recorded, %d dropped; top-span cycles:%s@."
    (Trace.recorded tracer) (Trace.dropped tracer)
    (String.concat ""
       (List.map
          (fun node ->
            Printf.sprintf " %s=%d" (Node_id.to_string node) (Trace.node_span_cycles tracer node))
          Node_id.all))
