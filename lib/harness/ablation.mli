(** Ablation experiments for the design choices DESIGN.md calls out:
    CXL snoop-overhead sensitivity, messaging notification mode (IPI vs
    polling), the Stramash origin-fallback path, and the secure
    data-packing window. These go beyond the paper's figures and probe
    why the headline results look the way they do. *)

val cxl_sweep : Format.formatter -> unit
(** IS under Stramash with the CXL snoop costs zeroed / default / tripled. *)

val notify_mode : Format.formatter -> unit
(** Popcorn-SHM with IPI vs polling notification (paper §6.2). *)

val fallback_stats : Format.formatter -> unit
(** Remote-walk / shared-mapping / fallback counters per NPB benchmark:
    how often the fused fast path vs the origin fallback fires. *)

val data_packing : Format.formatter -> unit
(** Pack the kernel's shared structures and measure the window footprint
    plus the MPU check behaviour. *)
