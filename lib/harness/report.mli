(** ASCII table/series rendering for the experiment harness: every table
    and figure of the paper is regenerated as one of these. *)

type t

val create : title:string -> note:string -> columns:string list -> t
val add_row : t -> string list -> unit
val rows : t -> string list list
val print : Format.formatter -> t -> unit

val cell_f : float -> string
(** Compact float formatting for table cells. *)

val cell_pct : float -> string
(** [0.1234] renders as ["12.34%"]. *)

val cell_x : float -> string
(** Speedup factor, e.g. ["2.10x"]. *)

val bar : float -> max:float -> width:int -> string
(** A unicode bar proportional to value/max, for figure-like output. *)
