module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Cycles = Stramash_sim.Cycles
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Cache_config = Stramash_cache.Config
module Cxl = Stramash_cache.Cxl
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Tlb = Stramash_kernel.Tlb
module Msg_layer = Stramash_popcorn.Msg_layer
module Stramash_os = Stramash_core.Stramash_os
module Stramash_fault = Stramash_core.Stramash_fault
module Stramash_ptl = Stramash_core.Stramash_ptl
module Data_packing = Stramash_core.Data_packing
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module Os = Stramash_machine.Os
module W = Stramash_workloads

let is_spec () = W.Npb_is.spec ~params:{ W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ()

let run ?cache_config ?(msg_notify = Msg_layer.Ipi) ~os spec =
  let machine =
    Machine.create { Machine.default_config with os; cache_config; msg_notify }
  in
  let proc, thread = Machine.load machine spec in
  (machine, Runner.run machine proc thread spec)

(* ---------- CXL snoop-cost sensitivity ---------- *)

let cxl_sweep fmt =
  let r =
    Report.create ~title:"Ablation: CXL snoop-overhead sensitivity (IS, Stramash, Shared)"
      ~note:"the fused kernel's coherence traffic is priced by the CXL model; zeroing it bounds \
             how much of Stramash's remaining cost is snoop overhead"
      ~columns:[ "snoop costs"; "wall (ms)"; "vs default" ]
  in
  let base = Cache_config.default Layout.Shared in
  let configs =
    [
      ("zero", { base with Cache_config.cxl = Cxl.zero });
      ("default", base);
      ( "3x",
        {
          base with
          Cache_config.cxl =
            {
              Cxl.snoop_data = 3 * Cxl.default.Cxl.snoop_data;
              snoop_invalidate = 3 * Cxl.default.Cxl.snoop_invalidate;
              back_invalidate = 3 * Cxl.default.Cxl.back_invalidate;
              atomic_extra = Cxl.default.Cxl.atomic_extra;
            };
        } );
    ]
  in
  let default_wall = ref 0 in
  List.iter
    (fun (label, cache_config) ->
      let _, result = run ~cache_config ~os:Machine.Stramash_kernel_os (is_spec ()) in
      if label = "default" then default_wall := result.Runner.wall_cycles;
      Report.add_row r
        [
          label;
          Report.cell_f (Cycles.to_ms result.Runner.wall_cycles);
          (if !default_wall = 0 then "-"
           else Report.cell_x (float_of_int result.Runner.wall_cycles /. float_of_int !default_wall));
        ])
    configs;
  Report.print fmt r

(* ---------- IPI vs polling notification ---------- *)

let notify_mode fmt =
  let r =
    Report.create ~title:"Ablation: SHM messaging notification (Popcorn, IS)"
      ~note:"polling trades the 2us IPI for a short poll delay plus receiver busy-work (§6.2)"
      ~columns:[ "notification"; "wall (ms)"; "messages" ]
  in
  List.iter
    (fun (label, msg_notify) ->
      let _, result = run ~msg_notify ~os:Machine.Popcorn_shm (is_spec ()) in
      Report.add_row r
        [
          label;
          Report.cell_f (Cycles.to_ms result.Runner.wall_cycles);
          string_of_int result.Runner.messages;
        ])
    [ ("IPI (2us)", Msg_layer.Ipi); ("polling", Msg_layer.Polling) ];
  Report.print fmt r

(* ---------- fused fast-path vs origin fallback ---------- *)

let fallback_stats fmt =
  let r =
    Report.create ~title:"Ablation: Stramash fault-path breakdown"
      ~note:"remote walks resolve either to a shared-frame mapping (fast path) or fall back to \
             the origin kernel when upper page-table levels are missing (§9.2.3)"
      ~columns:[ "bench"; "remote walks"; "shared mappings"; "fallback pages"; "PTL acq (remote)" ]
  in
  List.iter
    (fun (name, spec) ->
      let machine, _result = run ~os:Machine.Stramash_kernel_os spec in
      match Machine.os machine with
      | Os.Stramash s ->
          let faults = Stramash_os.faults s in
          let ptl_remote =
            (* aggregated over processes; one process per run here *)
            Stramash_fault.remote_walks faults
          in
          ignore ptl_remote;
          Report.add_row r
            [
              name;
              string_of_int (Stramash_fault.remote_walks faults);
              string_of_int (Stramash_fault.shared_mappings faults);
              string_of_int (Stramash_fault.fallback_pages faults);
              "-";
            ]
      | Os.Vanilla | Os.Popcorn _ -> assert false)
    [
      ("is", is_spec ());
      ("cg", W.Npb_cg.spec ~params:{ W.Npb_cg.n = 4096; row_nnz = 8; iterations = 3 } ());
      ("ft", W.Npb_ft.spec ~params:{ W.Npb_ft.n = 8; iterations = 3 } ());
    ];
  Report.print fmt r

(* ---------- secure data packing ---------- *)

let data_packing fmt =
  let cache = Stramash_cache.Cache_sim.create (Cache_config.default Layout.Shared) in
  let phys = Phys_mem.create () in
  let env =
    {
      Env.cache;
      phys;
      kernels = [| Kernel.boot ~node:Node_id.X86 ~phys; Kernel.boot ~node:Node_id.Arm ~phys |];
      meters = [| Meter.create (); Meter.create () |];
      tlbs = [| Tlb.create (); Tlb.create () |];
      hw_model = Layout.Shared;
      liveness = Stramash_sim.Liveness.create ();
    }
  in
  let packer = Data_packing.create env ~owner:Node_id.X86 ~window_bytes:(16 * Addr.page_size) in
  (* simulate packing a process's shareable kernel objects: VMA structs,
     the PTL word, futex buckets *)
  let kernel = Env.kernel env Node_id.X86 in
  let scattered =
    List.init 48 (fun i ->
        let a = Kheap.alloc_line kernel.Kernel.kheap in
        Phys_mem.write_u64 phys a (Int64.of_int (i * 1000));
        a)
  in
  let packed =
    List.filter_map
      (fun src ->
        match Data_packing.pack packer ~src ~bytes:64 with Ok a -> Some a | Error _ -> None)
      scattered
  in
  let allowed = List.for_all (fun a -> Data_packing.remote_access_allowed packer ~paddr:a) packed in
  let denied =
    List.for_all
      (fun src ->
        Data_packing.check_remote_access packer ~actor:Node_id.Arm ~paddr:src
        = Error `Protection_violation)
      scattered
  in
  let r =
    Report.create ~title:"Ablation: secure kernel-data packing (§5)"
      ~note:"shared structures packed into one contiguous window; everything else is denied to \
             the remote kernel by the MPU-style check"
      ~columns:[ "metric"; "value" ]
  in
  Report.add_row r [ "objects packed"; string_of_int (Data_packing.objects_packed packer) ];
  Report.add_row r [ "window footprint"; Printf.sprintf "%d bytes" (Data_packing.packed_bytes packer) ];
  Report.add_row r
    [ "window region"; Format.asprintf "%a" Layout.pp_region (Data_packing.window packer) ];
  Report.add_row r [ "packed addresses remotely accessible"; string_of_bool allowed ];
  Report.add_row r [ "unpacked originals denied"; string_of_bool denied ];
  Report.add_row r [ "violations recorded"; string_of_int (Data_packing.violations packer) ];
  Report.print fmt r
