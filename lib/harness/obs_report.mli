(** Render a tracer's cycle-attribution table through {!Report} — the
    Fig. 9/10-style "where did the cycles go" breakdown. *)

val attribution_report : Stramash_obs.Trace.t -> Report.t

val blame_report : ?top:int -> Stramash_obs.Causal.blame_row list -> Report.t
(** Critical-path blame table; [top] keeps only the first N rows
    (0 = all). *)

val print_blocked_rows : Format.formatter -> (string * int array) list -> unit
(** One summary line of blocked-on-remote cycles (per node, with the
    per-subsystem split); silent on []. *)

val print : ?fastpath:(string * int) list -> Format.formatter -> Stramash_obs.Trace.t -> unit
(** The attribution table plus the recorded/dropped and per-node
    top-span-cycle summary line, per-subsystem ring-drop counts when any,
    and the blocked-on-remote summary when any. [fastpath] (labelled L0
    counters, e.g. from {!Stramash_machine.Runner.fastpath_counters})
    appends a fast-path hit-rate summary when non-empty. *)
