(** Render a tracer's cycle-attribution table through {!Report} — the
    Fig. 9/10-style "where did the cycles go" breakdown. *)

val attribution_report : Stramash_obs.Trace.t -> Report.t

val print : ?fastpath:(string * int) list -> Format.formatter -> Stramash_obs.Trace.t -> unit
(** The attribution table plus the recorded/dropped and per-node
    top-span-cycle summary line. [fastpath] (labelled L0 counters, e.g.
    from {!Stramash_machine.Runner.fastpath_counters}) appends a fast-path
    hit-rate summary when non-empty. *)
