module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module Cycles = Stramash_sim.Cycles
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Frame_alloc = Stramash_kernel.Frame_alloc
module Hotplug = Stramash_kernel.Hotplug
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads
module Mem = W.Micro_memaccess
module Gran = W.Micro_granularity
module Fut = W.Micro_futex

let measured_span result =
  Runner.phase_span result ~start:Mem.measure_start ~stop:Mem.measure_stop

let run_measured ~os ~hw_model spec =
  let machine = Machine.create { Machine.default_config with os; hw_model } in
  let proc, thread = Machine.load machine spec in
  measured_span (Runner.run machine proc thread spec)

(* ---------- Fig. 11 ---------- *)

let fig11 fmt =
  let r =
    Report.create ~title:"Fig. 11: memory access analysis (10MB sequential, scaled)"
      ~note:"RaO = remote accesses origin's memory, OaR = origin accesses remote's, NC = \
             warmed; paper: Stramash up to 2.5x (Shared) / 4.5x (Fully Shared) over SHM, but \
             SHM wins warmed re-reads (no cold remote misses after replication)"
      ~columns:[ "variant"; "config"; "measured (ms)"; "vs Vanilla" ]
  in
  let vanilla =
    run_measured ~os:Machine.Stramash_kernel_os ~hw_model:Layout.Shared (Mem.spec Mem.Vanilla)
  in
  let configs =
    [
      ("shm (all models)", Machine.Popcorn_shm, Layout.Shared);
      ("stramash-separated", Machine.Stramash_kernel_os, Layout.Separated);
      ("stramash-shared", Machine.Stramash_kernel_os, Layout.Shared);
      ("stramash-fullyshared", Machine.Stramash_kernel_os, Layout.Fully_shared);
    ]
  in
  Report.add_row r
    [ "vanilla*"; "(Shared model)"; Report.cell_f (Cycles.to_ms vanilla); Report.cell_x 1.0 ];
  List.iter
    (fun variant ->
      List.iter
        (fun (label, os, hw_model) ->
          let span = run_measured ~os ~hw_model (Mem.spec variant) in
          Report.add_row r
            [
              Mem.variant_name variant;
              label;
              Report.cell_f (Cycles.to_ms span);
              Report.cell_x (float_of_int span /. float_of_int vanilla);
            ])
        configs)
    [
      Mem.Remote_access_origin;
      Mem.Remote_access_origin_warm;
      Mem.Origin_access_remote;
      Mem.Origin_access_remote_warm;
      Mem.Remote_random;
    ];
  Report.print fmt r

(* ---------- Fig. 12 ---------- *)

let fig12_ratios ?pages ~lines () =
  List.map
    (fun l ->
      let spec = Gran.spec ?pages ~lines:l () in
      let dsm = run_measured ~os:Machine.Popcorn_shm ~hw_model:Layout.Shared spec in
      let hw = run_measured ~os:Machine.Stramash_kernel_os ~hw_model:Layout.Shared spec in
      (l, float_of_int dsm /. float_of_int hw))
    lines

let fig12 fmt =
  let lines = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let r =
    Report.create ~title:"Fig. 12: page access at cacheline granularity (DSM vs HW coherence)"
      ~note:"paper: >300x DSM overhead at 1 cacheline, ~2x at a full page (64 lines)"
      ~columns:[ "cachelines"; "bytes"; "DSM (ms)"; "HW coherence (ms)"; "DSM/HW" ]
  in
  List.iter
    (fun l ->
      let spec = Gran.spec ~lines:l () in
      let dsm = run_measured ~os:Machine.Popcorn_shm ~hw_model:Layout.Shared spec in
      let hw = run_measured ~os:Machine.Stramash_kernel_os ~hw_model:Layout.Shared spec in
      Report.add_row r
        [
          string_of_int l;
          string_of_int (l * 64);
          Report.cell_f (Cycles.to_ms dsm);
          Report.cell_f (Cycles.to_ms hw);
          Report.cell_x (float_of_int dsm /. float_of_int hw);
        ])
    lines;
  Report.print fmt r

(* ---------- Fig. 13 ---------- *)

let futex_configs =
  [
    ("popcorn-shm (origin-managed)", Machine.Popcorn_shm);
    ("stramash regular (no futex opt)", Machine.Stramash_no_futex_opt);
    ("stramash futex-optimized", Machine.Stramash_kernel_os);
  ]

let fig13_walls ~loops =
  List.map
    (fun (label, os) ->
      let spec = Fut.spec ~loops in
      let machine = Machine.create { Machine.default_config with os; hw_model = Layout.Shared } in
      let proc, locker = Machine.load machine spec in
      let unlocker = Machine.spawn_thread machine proc ~at_point:Fut.unlocker_entry ~node:Node_id.Arm in
      let result = Runner.run_threads machine proc [ locker; unlocker ] spec in
      (label, result.Runner.wall_cycles))
    futex_configs

let fig13 fmt =
  let r =
    Report.create ~title:"Fig. 13: futex lock/unlock ping-pong"
      ~note:"origin locks, remote unlocks; paper: the optimised path needs one cross-ISA IPI \
             per wake instead of a full message protocol"
      ~columns:[ "loops"; "config"; "wall (ms)" ]
  in
  List.iter
    (fun loops ->
      List.iter
        (fun (label, wall) ->
          Report.add_row r [ string_of_int loops; label; Report.cell_f (Cycles.to_ms wall) ])
        (fig13_walls ~loops))
    [ 250; 500; 1000; 2000 ];
  Report.print fmt r

(* ---------- Table 4 ---------- *)

let table4 fmt =
  let r =
    Report.create ~title:"Table 4: global allocator offline/online overheads"
      ~note:"average time to offline/online a memory slice; page isolation dominates"
      ~columns:[ "pages"; "x86 offline"; "x86 online"; "arm offline"; "arm online" ]
  in
  let rng = Rng.create ~seed:0x7AB4L in
  List.iter
    (fun exp ->
      let pages = 1 lsl exp in
      let measure isa =
        (* Place the slice in the pool and run the real hotplug path. *)
        let frames = Frame_alloc.create ~name:"table4" in
        let region = { Layout.lo = Layout.pool.Layout.lo; hi = Layout.pool.Layout.lo + (pages * Addr.page_size) } in
        let on = Hotplug.online frames region ~isa ~rng in
        let off =
          match Hotplug.offline frames region ~isa ~rng with
          | Ok res -> res
          | Error (`Pages_in_use _) -> assert false
        in
        (Cycles.to_ms off.Hotplug.cycles, Cycles.to_ms on.Hotplug.cycles)
      in
      let x86_off, x86_on = measure Node_id.X86 in
      let arm_off, arm_on = measure Node_id.Arm in
      Report.add_row r
        [
          Printf.sprintf "2^%d" exp;
          Printf.sprintf "%.1fms" x86_off;
          Printf.sprintf "%.1fms" x86_on;
          Printf.sprintf "%.1fms" arm_off;
          Printf.sprintf "%.1fms" arm_on;
        ])
    [ 15; 16; 17; 18; 19; 20 ];
  Report.print fmt r
