(** Gray-failure campaign: seeded slow-down windows, link flaps and PTL
    stalls injected into a live NPB run, executed twice — circuit breaker
    off, then on — with per-operation latency percentiles comparing the
    two. Output is a pure function of (seed, bench, factor, cache mode). *)

type verdict = Chaos_experiments.verdict =
  | Clean
      (** Both runs audited clean, checksums match the fault-free
          baseline, the breaker tripped and diverted at least one fault,
          and breaker-on p99 fault latency is strictly below breaker-off. *)
  | Violations  (** Campaign ran but an audit, fingerprint or the p99 gate failed. *)
  | Unrecovered  (** A typed fault escaped recovery in either run. *)
  | Unknown_bench  (** Unusable arguments — the campaign never ran. *)

val verdict_to_string : verdict -> string

val exit_code : verdict -> int
(** Shared CLI contract: [Clean] → 0, [Violations]/[Unrecovered] → 1,
    [Unknown_bench] → 2. *)

val default_slow_factor : float

val probe_config : factor:float -> Stramash_fault_inject.Plan.config
(** The campaign's config shape with a placeholder one-cycle window
    carrying [factor] — what the CLI feeds {!Plan.validate} before
    committing to the (possibly minutes-long) run. *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?factor:float ->
  ?cache_mode:Stramash_cache.Cache_sim.mode ->
  ?on_metrics:(label:string -> Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  verdict
(** Fingerprint the bench fault-free, then replay it twice under the
    same seeded gray schedule (slow window on the origin anchored to the
    first far-node landing, an overlapping PTL stall window, a link-flap
    burst leading in, low-rate duplication/reordering): once with health
    scoring disabled and once with the circuit breaker armed. Prints both
    runs' audits and fault-plan reports, a per-op p50/p95/p99 comparison
    table, and a final ["campaign verdict: ..."] line for CI grep.
    [on_metrics] receives each run's fault-plan registry (labels
    ["gray_off"] and ["gray_on"]) so the CLI can fold both into
    [--metrics-json] snapshots. *)

val gray : Format.formatter -> unit
(** The ["gray"] experiment: one A/B soak with the default schedule. *)
