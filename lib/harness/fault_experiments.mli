(** Fault-injection campaign: a fused-kernel run under an armed
    {!Stramash_fault_inject.Plan}, followed by the kernel-state audit and
    the §6.4 teardown check. Output is a pure function of
    (seed, bench, config) — same arguments, byte-identical text. *)

val benches : string list
(** Benchmarks the fault/chaos campaigns accept (small problem sizes). *)

val spec_of_bench : string -> Stramash_machine.Spec.t option
(** Campaign-sized spec for a {!benches} entry; [None] otherwise. *)

val plan_config :
  ?drop_rate:float ->
  ?ipi_loss:float ->
  ?walk_fail:float ->
  ?ptl_timeout:float ->
  ?alloc_fail:float ->
  unit ->
  Stramash_fault_inject.Plan.config
(** Moderate-intensity defaults (5% message drops, 2% IPI loss / walk
    faults, 1% PTL timeouts, 0.5% allocation denials). *)

val campaign :
  Format.formatter ->
  ?seed:int64 ->
  ?bench:string ->
  ?config:Stramash_fault_inject.Plan.config ->
  ?on_metrics:(Stramash_sim.Metrics.registry -> unit) ->
  unit ->
  bool
(** Run the campaign; print run stats, the plan's injection counters and
    recovery-latency histogram, and both audits. Returns [true] iff both
    audits are clean. [on_metrics] receives the armed plan's registry
    (the CLI folds it into [--metrics-json] snapshots). *)

val faults : Format.formatter -> unit
(** The ["faults"] experiment: an injected campaign plus a no-fault
    control on the same seed. *)
