(** Fig. 14: Redis-like network-serving application, per-op speedup over
    the Popcorn-TCP messaging layer (functional validation, as in the
    paper). *)

val fig14 : Format.formatter -> unit

val speedups : ?requests:int -> unit -> (string * float * float) list
(** [(op, shm_speedup, stramash_speedup)] over Popcorn-TCP. *)
