(** The serving workload's shape: request mix, keyspace layout, and the
    store-process spec the machine loads.

    The keyspace is a real process data segment — [keys] fixed 64-byte
    slots, eagerly zero-mapped at the origin (x86) — so every value
    access from the serving (Arm) island goes through the kernel's own
    translation and fault paths: DSM page replication under Popcorn,
    remote walks / fused faults under Stramash, and placement sampling
    when an engine is attached. *)

type op = Get | Set | Mset | Scan

val all_ops : op list
val op_name : op -> string

val redis_op : op -> Stramash_workloads.Redis.op
(** The Redis cost-model op each serve op reuses ([Scan] borrows [Get]'s
    parse/index/socket shape; its value phase reads {!scan_len} slots). *)

type mix = { get : int; set : int; mset : int; scan : int }
(** Relative integer weights; requests draw ops in proportion. *)

val default_mix : mix
(** 70 / 20 / 5 / 5 — a read-heavy cache-style mix. *)

val validate_mix : mix -> (unit, string) result
(** Weights must be non-negative and sum to a positive total. *)

val pick : mix -> Stramash_sim.Rng.t -> op

val slot_bytes : int
(** Bytes per key slot (64 — one cache line). *)

val mset_keys : int
(** Keys written by one [Mset] (10, matching the Redis batched op). *)

val scan_len : int
(** Consecutive slots read by one [Scan] (16). *)

val keyspace_base : int
(** Virtual base of the keyspace segment ([Spec.heap_base]). *)

val vaddr_of_key : int -> int

val store_spec : keys:int -> Stramash_machine.Spec.t
(** The store process: a trivial program (never executed — the serving
    loop drives memory directly) plus one eager zeroed writable segment
    of [keys * slot_bytes] bytes at {!keyspace_base}.
    @raise Invalid_argument if [keys <= 0]. *)
