module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Metrics = Stramash_sim.Metrics
module Histogram = Stramash_sim.Metrics.Histogram
module Cycles = Stramash_sim.Cycles
module Rng = Stramash_sim.Rng
module Zipf = Stramash_sim.Zipf
module Addr = Stramash_mem.Addr
module Cache_sim = Stramash_cache.Cache_sim
module Cache_config = Stramash_cache.Config
module Env = Stramash_kernel.Env
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Tlb = Stramash_kernel.Tlb
module Pte = Stramash_kernel.Pte
module Machine = Stramash_machine.Machine
module Os = Stramash_machine.Os
module Runner = Stramash_machine.Runner
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Redis = Stramash_workloads.Redis
module Engine = Stramash_placement.Engine
module Policy = Stramash_placement.Policy
module Trace = Stramash_obs.Trace

type config = {
  os : Machine.os_choice;
  keys : int;
  theta : float;
  rate : float;
  requests : int;
  payload : int;
  mix : Workload.mix;
  seed : int64;
  placement : bool;
  inject : Plan.config option;
  quantum : int;
  cache_mode : Cache_sim.mode;
  slo : Slo.thresholds;
}

let default =
  {
    os = Machine.Stramash_kernel_os;
    keys = 1 lsl 20;
    theta = 0.99;
    rate = 20_000.0;
    requests = 20_000;
    payload = 1024;
    mix = Workload.default_mix;
    seed = 0x5E12E5L;
    placement = false;
    inject = None;
    quantum = Cycles.of_us 20.0;
    cache_mode = Cache_sim.Fast;
    slo = Slo.default;
  }

let is_stramash = function
  | Machine.Stramash_kernel_os | Machine.Stramash_no_futex_opt -> true
  | Machine.Vanilla | Machine.Popcorn_shm | Machine.Popcorn_tcp -> false

let validate cfg =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (cfg.os <> Machine.Vanilla) "Vanilla cannot host the migrated server" in
  let* () = check (cfg.keys > 0) "keys must be positive" in
  let* () = check (cfg.theta > 0.0) "theta must be > 0" in
  let* () = check (cfg.rate > 0.0) "rate must be > 0 requests/s" in
  let* () = check (cfg.requests > 0) "requests must be positive" in
  let* () = check (cfg.payload > 0) "payload must be positive" in
  let* () = check (cfg.quantum > 0) "quantum must be positive" in
  let* () = Workload.validate_mix cfg.mix in
  let* () = Slo.validate cfg.slo in
  let* () =
    check ((not cfg.placement) || is_stramash cfg.os) "placement requires the Stramash personality"
  in
  match cfg.inject with
  | None -> Ok ()
  | Some plan ->
      let* () = Plan.validate plan in
      let* () =
        check
          (plan.Plan.node_events = [] || is_stramash cfg.os)
          "a chaos schedule requires the Stramash personality"
      in
      check
        (List.for_all (fun e -> e.Plan.restart_after <> None) plan.Plan.node_events)
        "serve requires every node_event to carry restart_after (a dead server never drains its \
         queue)"

type outcome = {
  o_os : string;
  o_rows : (string * Histogram.t) list;
  o_all : Histogram.t;
  o_slo : Slo.report;
  o_wall : int;
  o_counters : (string * int) list;
  o_placement : (string * int) list;
  o_plan : Plan.t option;
}

(* Latency histograms: 0..2ms in 2048 uniform buckets (about 1 us per
   bucket); everything slower lands in the overflow bucket and the
   percentile clamp keeps tail estimates at the observed maximum. *)
let hist () = Histogram.create ~buckets:2048 ~lo:0.0 ~hi:(float_of_int (Cycles.of_us 2000.0))

let run cfg =
  (match validate cfg with Ok () -> () | Error msg -> invalid_arg ("Serve.run: " ^ msg));
  let machine =
    Machine.create
      {
        Machine.default_config with
        os = cfg.os;
        seed = cfg.seed;
        inject = cfg.inject;
        cache_mode = cfg.cache_mode;
      }
  in
  if cfg.placement then (
    match Machine.os machine with
    | Os.Stramash s -> Machine.attach_placement machine (Engine.create ~policy:Policy.Adaptive s)
    | Os.Vanilla | Os.Popcorn _ -> assert false (* validate rejected it *));
  let proc, _main_thread = Machine.load machine (Workload.store_spec ~keys:cfg.keys) in
  let server = Redis.make_server machine in
  let env = Machine.env machine in
  let node = Redis.node_of server in
  let meter = Env.meter env node in
  Trace.set_clock (fun n -> Meter.get (Env.meter env n));
  (* -- the runner's user-access recipe, on the serving node ------------- *)
  let cache = env.Env.cache in
  let tlb = Env.tlb env node in
  let asid = proc.Process.pid in
  let mm = Os.ensure_mm (Machine.os machine) ~env ~proc ~node in
  let io = Env.pt_io env ~actor:node ~owner:node in
  let sample =
    match Machine.placement machine with
    | None -> fun ~vaddr:_ ~write:_ _ -> ()
    | Some engine ->
        fun ~vaddr ~write lat -> Engine.sample engine ~pid:asid ~node ~vaddr ~write ~latency:lat
  in
  let rec translate_slow vaddr ~write ~retries =
    match Page_table.walk mm.Process.pgtable io ~vaddr with
    | Some (frame, flags) when (not write) || flags.Pte.writable ->
        Tlb.insert tlb ~asid ~vpage:(Addr.page_of vaddr) { Tlb.frame; writable = flags.Pte.writable };
        frame
    | _ ->
        if retries >= 4 then
          failwith
            (Printf.sprintf "serve: fault loop at 0x%x (%s, write=%b)" vaddr
               (Node_id.to_string node) write);
        (match Os.handle_fault (Machine.os machine) ~env ~proc ~node ~vaddr ~write with
        | Ok () -> ()
        | Error e -> raise (Fault.Error e));
        let frame = Tlb.translate tlb ~asid ~vpage:(Addr.page_of vaddr) ~write in
        if frame >= 0 then frame else translate_slow vaddr ~write ~retries:(retries + 1)
  in
  let data_paddr vaddr ~write =
    let frame = Tlb.translate tlb ~asid ~vpage:(Addr.page_of vaddr) ~write in
    let frame = if frame >= 0 then frame else translate_slow vaddr ~write ~retries:0 in
    (frame lsl Addr.page_shift) + (vaddr land (Addr.page_size - 1))
  in
  (* Charged like [Env.charge_bytes_*]: full access latency per line, so
     the keyspace phase prices like the Redis model's private dataset —
     except the line may fault, replicate, or be sampled by placement. *)
  let access_span ~vaddr ~write ~len =
    let kind = if write then Cache_sim.Store else Cache_sim.Load in
    let v = ref vaddr in
    for _ = 1 to Addr.lines_spanned vaddr ~len do
      let paddr = data_paddr !v ~write in
      let lat = Cache_sim.access cache ~node kind ~paddr in
      Meter.add meter lat;
      sample ~vaddr:!v ~write lat;
      v := Addr.line_base !v + Addr.line_size
    done
  in
  (* -- seeded request streams ------------------------------------------ *)
  let root = Rng.create ~seed:cfg.seed in
  let arr_rng = Rng.split root in
  let mix_rng = Rng.split root in
  let key_rng = Rng.split root in
  let zipf = Zipf.create ~n:cfg.keys ~theta:cfg.theta in
  let mean_gap = Cycles.frequency_ghz *. 1e9 /. cfg.rate in
  let next_gap () =
    let u = Rng.float arr_rng 1.0 in
    max 1 (int_of_float (-.mean_gap *. log1p (-.u)))
  in
  (* -- compositions ----------------------------------------------------- *)
  let plan = Machine.inject_plan machine in
  let downtime =
    match cfg.inject with
    | None -> []
    | Some c ->
        List.filter_map
          (fun e ->
            match e.Plan.restart_after with
            | Some d -> Some (e.Plan.kill_at, e.Plan.kill_at + d)
            | None -> None)
          c.Plan.node_events
        |> List.sort compare
  in
  (* Either island down stalls admission: the request path crosses both
     kernels (origin socket work, server processing) on every request.
     Crash-stop at serve level is an availability model — requests whose
     service would begin inside a window begin at its end instead. *)
  let rec past_downtime t =
    match List.find_opt (fun (s, e) -> t >= s && t < e) downtime with
    | Some (_, e) -> past_downtime e
    | None -> t
  in
  let reg = Metrics.registry () in
  let qcount = ref 0 in
  let next_q = ref cfg.quantum in
  let pace now =
    while !next_q <= now do
      Runner.quantum_boundary machine ~count:qcount ~now:!next_q;
      next_q := !next_q + cfg.quantum
    done
  in
  let rows = List.map (fun op -> (Workload.op_name op, hist ())) Workload.all_ops in
  let all = hist () in
  let arrival = ref 0 in
  for _ = 1 to cfg.requests do
    arrival := !arrival + next_gap ();
    let op = Workload.pick cfg.mix mix_rng in
    Metrics.incr reg ("serve.op." ^ Workload.op_name op);
    (* Admission: catch the quantum clock up, then start at whichever is
       latest of the server clock, the arrival stamp, and the end of any
       downtime window covering that instant. *)
    let start0 = max (Meter.get meter) !arrival in
    let start1 = past_downtime start0 in
    if start1 > start0 then begin
      Metrics.incr reg "serve.stalled_requests";
      Metrics.add reg "serve.downtime_stall_cycles" (start1 - start0)
    end;
    pace start1;
    let start = max (Meter.get meter) start1 in
    if Meter.get meter < start then begin
      Metrics.add reg "serve.idle_cycles" (start - Meter.get meter);
      Meter.set meter start
    end;
    if start > !arrival then Metrics.add reg "serve.queue_wait_cycles" (start - !arrival);
    (* Service: the Redis cost model with the value phase routed at the
       keyspace through the kernel paths above. *)
    let pending = ref [] in
    let draw_keys n = List.init n (fun _ -> Zipf.sample zipf key_rng) in
    let scan_start k = min k (max 0 (cfg.keys - Workload.scan_len)) in
    (match op with
    | Workload.Mset -> pending := draw_keys Workload.mset_keys
    | Workload.Get | Workload.Set -> pending := draw_keys 1
    | Workload.Scan -> pending := [ scan_start (Zipf.sample zipf key_rng) ]);
    let value ~write =
      match !pending with
      | [] -> ()
      | k :: rest ->
          pending := rest;
          let len =
            match op with
            | Workload.Scan -> Workload.slot_bytes * min Workload.scan_len (cfg.keys - k)
            | Workload.Get | Workload.Set | Workload.Mset -> Workload.slot_bytes
          in
          access_span ~vaddr:(Workload.vaddr_of_key k) ~write ~len
    in
    let sp = Trace.span ~node ~subsys:"serve" ~op:(Workload.op_name op) ~flow_root:true () in
    let rop = Workload.redis_op op in
    Redis.deliver_to_server server ~bytes:(Redis.request_bytes rop ~payload:cfg.payload);
    let p0 = Meter.get meter in
    Redis.process_op ~value server rop ~payload:cfg.payload;
    (match plan with
    | Some p when Plan.gray_armed p ->
        let d = Meter.get meter - p0 in
        Meter.add meter (Plan.inflate p ~node ~now:p0 ~cycles:d)
    | _ -> ());
    Redis.reply_from_server server ~bytes:(Redis.reply_bytes rop);
    let latency = Meter.get meter - !arrival in
    if sp != Trace.null then
      Trace.close sp
        ~tags:[ ("arrival", string_of_int !arrival); ("latency_cycles", string_of_int latency) ]
    else Trace.close sp;
    let l = float_of_int latency in
    Histogram.record (List.assoc (Workload.op_name op) rows) l;
    Histogram.record all l
  done;
  pace (Meter.get meter);
  Metrics.add reg "serve.requests" cfg.requests;
  Metrics.add reg "serve.completed" (Histogram.count all);
  Metrics.add reg "serve.quanta" !qcount;
  Metrics.set reg "serve.wall_cycles" (Meter.get meter);
  let placement_counters =
    match Machine.placement machine with Some e -> Engine.counters e | None -> []
  in
  let wall = Meter.get meter in
  Machine.exit_process machine proc;
  {
    o_os = Os.name (Machine.os machine);
    o_rows = rows;
    o_all = all;
    o_slo = Slo.evaluate cfg.slo all;
    o_wall = wall;
    o_counters = Metrics.to_assoc reg;
    o_placement = placement_counters;
    o_plan = plan;
  }

let registry_of o =
  let r = Metrics.registry () in
  List.iter (fun (k, v) -> Metrics.set r k v) o.o_counters;
  r

let pp_row fmt name h =
  let us p = Slo.cycles_to_us (Histogram.percentile h p) in
  Format.fprintf fmt "  %-6s %8d %9.1f %9.1f %9.1f %9.1f %9.1f@." name (Histogram.count h)
    (us 0.50) (us 0.95) (us 0.99)
    (Slo.cycles_to_us (Histogram.mean h))
    (Slo.cycles_to_us (Histogram.max_value h))

let pp_outcome fmt o =
  Format.fprintf fmt "  %-6s %8s %9s %9s %9s %9s %9s@." "op" "n" "p50(us)" "p95(us)" "p99(us)"
    "mean" "max";
  List.iter (fun (name, h) -> pp_row fmt name h) o.o_rows;
  pp_row fmt "all" o.o_all;
  Slo.pp_report fmt o.o_slo
