(** Tail-latency service-level objectives for the serving campaign.

    Thresholds are in microseconds of simulated time against the
    aggregate per-request latency distribution (arrival-to-completion,
    queueing included — the open-loop harness makes queueing delay part
    of every sample by construction). *)

type thresholds = { p50_us : float; p95_us : float; p99_us : float }

val default : thresholds
(** The acceptance gate CI holds the Stramash baseline to. *)

val validate : thresholds -> (unit, string) result
(** Positive and monotone non-decreasing across the three percentiles. *)

val cycles_to_us : float -> float
(** Simulated-cycle count to microseconds at the canonical clock. *)

type check = { metric : string; limit_us : float; actual_us : float; ok : bool }

type report = { checks : check list; samples : int; pass : bool }
(** [pass] requires every percentile under its limit {e and} at least one
    recorded sample — an empty histogram is a failed run, not a vacuous
    pass. *)

val evaluate : thresholds -> Stramash_sim.Metrics.Histogram.t -> report

val pp_report : Format.formatter -> report -> unit
(** One deterministic line per check plus the verdict, e.g.
    [slo p99 <= 250.0us: 87.3us ok]. *)
