module Rng = Stramash_sim.Rng
module Spec = Stramash_machine.Spec
module Redis = Stramash_workloads.Redis

type op = Get | Set | Mset | Scan

let all_ops = [ Get; Set; Mset; Scan ]
let op_name = function Get -> "get" | Set -> "set" | Mset -> "mset" | Scan -> "scan"

let redis_op = function
  | Get -> Redis.Get
  | Set -> Redis.Set
  | Mset -> Redis.Mset
  | Scan -> Redis.Get

type mix = { get : int; set : int; mset : int; scan : int }

let default_mix = { get = 70; set = 20; mset = 5; scan = 5 }

let validate_mix m =
  if m.get < 0 || m.set < 0 || m.mset < 0 || m.scan < 0 then
    Error "mix weights must be non-negative"
  else if m.get + m.set + m.mset + m.scan <= 0 then Error "mix weights must sum to a positive total"
  else Ok ()

let pick m rng =
  let total = m.get + m.set + m.mset + m.scan in
  let d = Rng.int rng total in
  if d < m.get then Get
  else if d < m.get + m.set then Set
  else if d < m.get + m.set + m.mset then Mset
  else Scan

let slot_bytes = 64
let mset_keys = 10
let scan_len = 16
let keyspace_base = Spec.heap_base
let vaddr_of_key k = keyspace_base + (k * slot_bytes)

(* The program is a placeholder: [Machine.load] needs a Mir image to
   lower for both ISAs, but the serving loop never runs a thread — it
   drives translation and cache traffic directly, as the kernel would
   for a request-processing server. *)
let store_spec ~keys =
  if keys <= 0 then invalid_arg "Workload.store_spec: keys must be positive";
  let mir =
    let module B = Stramash_isa.Builder in
    let b = B.create () in
    ignore (B.immi b 0);
    B.finish b
  in
  {
    Spec.name = "serve-store";
    description = Printf.sprintf "open-loop serving keyspace: %d x %d B slots" keys slot_bytes;
    mir;
    segments =
      [ Spec.segment ~writable:true ~eager:true ~init:Spec.Zeroed ~base:keyspace_base
          ~len:(keys * slot_bytes) () ];
    migration_targets = [];
  }
