(** Open-loop request-serving driver.

    One run builds a machine, loads a million-key store process, stands
    up the Redis-model server on the Arm island, and plays [requests]
    requests whose arrival times come from a seeded exponential
    interarrival schedule — stamped onto the simulated clock up front,
    {e not} after the previous reply. A request that finds the server
    busy waits; its recorded latency is completion minus {e arrival}, so
    queueing delay is part of every sample and coordinated omission is
    impossible by construction.

    Key popularity is Zipfian ({!Stramash_sim.Zipf}) over the keyspace;
    value accesses translate through the kernel's own TLB / page-table /
    fault paths on the serving node (DSM replication under Popcorn,
    remote walks and fused faults under Stramash, placement sampling
    when the engine is attached), exactly as the runner's memory
    pipeline does. Between requests the driver paces scheduling-quantum
    boundaries through {!Stramash_machine.Runner.quantum_boundary}, so
    placement epoch ticks, the integrity scrubber and Paranoid audits
    all run under open-loop load.

    Compositions from the fault plan: a chaos kill/restart schedule
    stalls admission for the downtime of either island (the server's
    request path touches both kernels every request); gray slow-down
    windows inflate the server-local processing segment (the message
    layer inflates its own sites, so nothing is double-counted);
    corruption rates and the scrubber ride the shared plan machinery.

    Every request opens a flow-root {!Stramash_obs.Trace} span, so traced
    runs attribute tail exemplars to requests in the obs blame tables. *)

type config = {
  os : Stramash_machine.Machine.os_choice;
  keys : int;
  theta : float;  (** Zipfian exponent; > 0 *)
  rate : float;  (** open-loop arrival rate, requests per second *)
  requests : int;
  payload : int;  (** value bytes per request (the Redis model's payload) *)
  mix : Workload.mix;
  seed : int64;
  placement : bool;  (** attach the adaptive placement engine (Stramash only) *)
  inject : Stramash_fault_inject.Plan.config option;
  quantum : int;  (** cycles per scheduling quantum *)
  cache_mode : Stramash_cache.Cache_sim.mode;
  slo : Slo.thresholds;
}

val default : config
(** Stramash, 2^20 keys, theta 0.99, 20k req/s, 20k requests, 1 KiB
    payload, the default mix, no faults, placement off. *)

val validate : config -> (unit, string) result
(** Structural validation, called by the CLI before building a machine:
    positive keys/rate/requests/payload/quantum/theta, a usable mix and
    SLO, no Vanilla personality, placement only under Stramash, and —
    when a plan is armed — [Plan.validate] plus serve-specific limits
    (every [node_event] must carry a restart). *)

type outcome = {
  o_os : string;  (** personality name, e.g. ["stramash"] *)
  o_rows : (string * Stramash_sim.Metrics.Histogram.t) list;
      (** per-op latency histograms, in {!Workload.all_ops} order *)
  o_all : Stramash_sim.Metrics.Histogram.t;  (** all ops pooled *)
  o_slo : Slo.report;  (** SLO verdict on the pooled distribution *)
  o_wall : int;  (** final serving-node clock, cycles *)
  o_counters : (string * int) list;  (** sorted [serve.*] counters *)
  o_placement : (string * int) list;  (** [placement.*] snapshot; [] if off *)
  o_plan : Stramash_fault_inject.Plan.t option;
      (** the armed fault plan (injection counters, gray/corruption
          telemetry) when [config.inject] was set *)
}

val run : config -> outcome
(** Deterministic: same config (seed included) → identical outcome.
    @raise Invalid_argument when {!validate} rejects the config; a typed
    fault that escapes recovery propagates as
    [Stramash_fault_inject.Fault.Error]. *)

val registry_of : outcome -> Stramash_sim.Metrics.registry
(** The [serve.*] counters as a registry (CLI metrics snapshots). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Deterministic report: per-op latency table (n / p50 / p95 / p99 /
    mean / max in microseconds), the pooled row, and the SLO verdict. *)
