module Cycles = Stramash_sim.Cycles
module Histogram = Stramash_sim.Metrics.Histogram

type thresholds = { p50_us : float; p95_us : float; p99_us : float }

let default = { p50_us = 40.0; p95_us = 120.0; p99_us = 250.0 }

let validate t =
  if t.p50_us <= 0.0 || t.p95_us <= 0.0 || t.p99_us <= 0.0 then
    Error "SLO thresholds must be positive"
  else if t.p50_us > t.p95_us || t.p95_us > t.p99_us then
    Error "SLO thresholds must be monotone: p50 <= p95 <= p99"
  else Ok ()

type check = { metric : string; limit_us : float; actual_us : float; ok : bool }
type report = { checks : check list; samples : int; pass : bool }

let cycles_to_us c = c /. (Cycles.frequency_ghz *. 1000.0)

let evaluate t hist =
  let samples = Histogram.count hist in
  let check metric limit_us p =
    let actual_us = cycles_to_us (Histogram.percentile hist p) in
    { metric; limit_us; actual_us; ok = actual_us <= limit_us }
  in
  let checks =
    [ check "p50" t.p50_us 0.50; check "p95" t.p95_us 0.95; check "p99" t.p99_us 0.99 ]
  in
  { checks; samples; pass = samples > 0 && List.for_all (fun c -> c.ok) checks }

let pp_report fmt r =
  List.iter
    (fun c ->
      Format.fprintf fmt "  slo %s <= %.1fus: %.1fus %s@." c.metric c.limit_us c.actual_us
        (if c.ok then "ok" else "VIOLATION"))
    r.checks;
  if r.samples = 0 then Format.fprintf fmt "  slo: no samples recorded@.";
  Format.fprintf fmt "  slo verdict: %s@." (if r.pass then "pass" else "FAIL")
