(** Machine-readable metrics snapshot: an ordered set of named JSON
    sections combining counter registries, latency histograms, and the
    tracer's cycle-attribution table into one file, written next to the
    existing [BENCH_*.json] outputs by [--metrics-json]. *)

module Metrics = Stramash_sim.Metrics

type t

val create : unit -> t

val add_json : t -> string -> Json.t -> unit
val add_counters : t -> string -> (string * int) list -> unit
val add_registry : t -> string -> Metrics.registry -> unit

val add_histogram : t -> string -> Metrics.Histogram.t -> unit
(** Serialises count/mean/min/max/p50/p95/p99 plus per-bucket counts. *)

val add_trace : t -> Trace.t -> unit
(** Adds the tracer's attribution table as a ["trace"] section. *)

val add_causal : t -> Trace.t -> unit
(** Adds the causal sections: ["blocked_on_remote"] (per-node cycles
    serialized behind remote replies, by subsystem) and ["critical_path"]
    (flow counts plus the per-(subsystem, op) critical-path blame table
    assembled from the tracer's surviving events). *)

val sections : t -> (string * Json.t) list
(** In insertion order. *)

val to_json : t -> Json.t
val to_string : t -> string

val of_json : Json.t -> (t, string) result
(** Rebuild a snapshot from parsed JSON (round-trip inverse of
    {!to_json}). *)

val section : t -> string -> Json.t option

val counters : t -> string -> (string * int) list
(** Integer fields of a counters-style section; [[]] when absent. *)
