module Node_id = Stramash_sim.Node_id

let nnodes = List.length Node_id.all

(* Open span: lives on the per-node stack between [span] and [close].
   [sp_live = false] marks the shared dummy returned when tracing is off,
   which makes [close] on it free. *)
type span = {
  sp_node : Node_id.t;
  sp_subsys : string;
  sp_op : string;
  sp_start : int;
  sp_depth : int;
  sp_flow : int; (* causal flow id; 0 = not part of any flow *)
  mutable sp_children : int; (* cycles already attributed to sub-spans *)
  mutable sp_tags : (string * string) list;
  sp_live : bool;
}

let null =
  {
    sp_node = Node_id.X86;
    sp_subsys = "";
    sp_op = "";
    sp_start = 0;
    sp_depth = 0;
    sp_flow = 0;
    sp_children = 0;
    sp_tags = [];
    sp_live = false;
  }

(* Closed record in the ring buffer. [ev_dur = -1] marks a point event. *)
type event = {
  ev_ts : int;
  ev_dur : int;
  ev_node : int;
  ev_subsys : string;
  ev_op : string;
  ev_depth : int;
  ev_flow : int;
  ev_tags : (string * string) list;
}

let dummy_event =
  {
    ev_ts = 0;
    ev_dur = -1;
    ev_node = 0;
    ev_subsys = "";
    ev_op = "";
    ev_depth = 0;
    ev_flow = 0;
    ev_tags = [];
  }

type cell = {
  mutable c_count : int;
  mutable c_total : int;
  mutable c_self : int;
  mutable c_max : int;
  c_node : int array; (* inclusive cycles per node *)
}

type t = {
  capacity : int;
  ring : event array;
  mutable total_recorded : int;
  filter : string list; (* [] = record everything *)
  mutable clock : (Node_id.t -> int) option;
  stacks : span list array; (* per node, innermost first *)
  mutable ctx : span list; (* global open-span context, innermost first *)
  agg : (string * string, cell) Hashtbl.t;
  top_cycles : int array; (* depth-0 span cycles per node *)
  flow_seq : int array; (* per node: next flow sequence number *)
  flow_overrides : int list array; (* per node: responder-side inherited flows *)
  blocked : (string, int array) Hashtbl.t; (* subsys -> per-node blocked-on-remote cycles *)
  drops : (string, int) Hashtbl.t; (* subsys -> events lost to ring overflow *)
}

let create ?(capacity = 65536) ?(filter = []) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity dummy_event;
    total_recorded = 0;
    filter;
    clock = None;
    stacks = Array.make nnodes [];
    ctx = [];
    agg = Hashtbl.create 64;
    top_cycles = Array.make nnodes 0;
    flow_seq = Array.make nnodes 0;
    flow_overrides = Array.make nnodes [];
    blocked = Hashtbl.create 16;
    drops = Hashtbl.create 16;
  }

(* ---------- global tracer ---------- *)

let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let current_tracer () = !current
let enabled () = !current != None

let set_clock f = match !current with Some t -> t.clock <- Some f | None -> ()

(* ---------- recording ---------- *)

let now t node =
  match t.clock with
  | Some f -> f node
  | None -> ( match t.stacks.(Node_id.index node) with s :: _ -> s.sp_start | [] -> 0)

let pass_filter t subsys =
  match t.filter with [] -> true | filter -> List.mem subsys filter

let record t ev =
  let slot = t.total_recorded mod t.capacity in
  (* The slot being overwritten held a live event: account the loss to its
     subsystem so a truncated causal DAG is flagged, not silently short. *)
  if t.total_recorded >= t.capacity then begin
    let old = t.ring.(slot) in
    let n = match Hashtbl.find_opt t.drops old.ev_subsys with Some n -> n | None -> 0 in
    Hashtbl.replace t.drops old.ev_subsys (n + 1)
  end;
  t.ring.(slot) <- ev;
  t.total_recorded <- t.total_recorded + 1

let cell t key =
  match Hashtbl.find_opt t.agg key with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_total = 0; c_self = 0; c_max = 0; c_node = Array.make nnodes 0 } in
      Hashtbl.add t.agg key c;
      c

(* ---------- causal flows ---------- *)

(* Flow ids are minted per node from a sequence counter: id = seq * nnodes
   + node_index + 1, so they are nonzero, unique across nodes, and — the
   run being deterministic under a fixed seed — identical between
   same-seed replays. *)
let mint_flow t idx =
  let seq = t.flow_seq.(idx) in
  t.flow_seq.(idx) <- seq + 1;
  (seq * nnodes) + idx + 1

let fresh_flow ~node =
  match !current with None -> 0 | Some t -> mint_flow t (Node_id.index node)

(* Resolution order: a responder-side override (requester's flow pushed by
   [with_flow]) wins; else the enclosing span's flow; else a fresh id when
   the site is a designated flow root; else 0 (not part of any flow). *)
let resolve_flow t idx ~flow_root =
  match t.flow_overrides.(idx) with
  | f :: _ -> f
  | [] -> (
      match t.stacks.(idx) with
      | p :: _ when p.sp_flow <> 0 -> p.sp_flow
      | _ -> if flow_root then mint_flow t idx else 0)

let with_flow ~node ~flow f =
  match !current with
  | None -> f ()
  | Some _ when flow = 0 -> f ()
  | Some t ->
      let idx = Node_id.index node in
      t.flow_overrides.(idx) <- flow :: t.flow_overrides.(idx);
      let pop () =
        match t.flow_overrides.(idx) with
        | _ :: rest -> t.flow_overrides.(idx) <- rest
        | [] -> ()
      in
      (match f () with
      | result ->
          pop ();
          result
      | exception e ->
          pop ();
          raise e)

let current_flow () =
  match !current with
  | None -> 0
  | Some t -> ( match t.ctx with s :: _ -> s.sp_flow | [] -> 0)

let span ?at ?(tags = []) ?(flow_root = false) ~node ~subsys ~op () =
  match !current with
  | None -> null
  | Some t ->
      if not (pass_filter t subsys) then null
      else begin
        let ts = match at with Some v -> v | None -> now t node in
        let idx = Node_id.index node in
        let depth = match t.stacks.(idx) with s :: _ -> s.sp_depth + 1 | [] -> 0 in
        let flow = resolve_flow t idx ~flow_root in
        let sp =
          {
            sp_node = node;
            sp_subsys = subsys;
            sp_op = op;
            sp_start = ts;
            sp_depth = depth;
            sp_flow = flow;
            sp_children = 0;
            sp_tags = tags;
            sp_live = true;
          }
        in
        t.stacks.(idx) <- sp :: t.stacks.(idx);
        t.ctx <- sp :: t.ctx;
        sp
      end

let flow_of sp = if sp.sp_live then sp.sp_flow else 0

let add_tag sp key value = if sp.sp_live then sp.sp_tags <- sp.sp_tags @ [ (key, value) ]

let close ?at ?(tags = []) sp =
  if sp.sp_live then
    match !current with
    | None -> ()
    | Some t ->
        let idx = Node_id.index sp.sp_node in
        let ts_end = match at with Some v -> v | None -> now t sp.sp_node in
        let dur = if ts_end > sp.sp_start then ts_end - sp.sp_start else 0 in
        t.stacks.(idx) <- List.filter (fun s -> s != sp) t.stacks.(idx);
        t.ctx <- List.filter (fun s -> s != sp) t.ctx;
        (match t.stacks.(idx) with
        | parent :: _ -> parent.sp_children <- parent.sp_children + dur
        | [] -> t.top_cycles.(idx) <- t.top_cycles.(idx) + dur);
        let self = if dur > sp.sp_children then dur - sp.sp_children else 0 in
        let c = cell t (sp.sp_subsys, sp.sp_op) in
        c.c_count <- c.c_count + 1;
        c.c_total <- c.c_total + dur;
        c.c_self <- c.c_self + self;
        if dur > c.c_max then c.c_max <- dur;
        c.c_node.(idx) <- c.c_node.(idx) + dur;
        record t
          {
            ev_ts = sp.sp_start;
            ev_dur = dur;
            ev_node = idx;
            ev_subsys = sp.sp_subsys;
            ev_op = sp.sp_op;
            ev_depth = sp.sp_depth;
            ev_flow = sp.sp_flow;
            ev_tags = sp.sp_tags @ tags;
          }

let instant ?at ?node ?flow ?(tags = []) ~subsys ~op () =
  match !current with
  | None -> ()
  | Some t ->
      if pass_filter t subsys then begin
        let node =
          match node with
          | Some n -> n
          | None -> ( match t.ctx with s :: _ -> s.sp_node | [] -> Node_id.X86)
        in
        let ts = match at with Some v -> v | None -> now t node in
        let idx = Node_id.index node in
        let depth = match t.stacks.(idx) with s :: _ -> s.sp_depth + 1 | [] -> 0 in
        let flow =
          match flow with
          | Some f -> f
          | None -> (
              match t.flow_overrides.(idx) with
              | f :: _ -> f
              | [] -> ( match t.stacks.(idx) with s :: _ -> s.sp_flow | [] -> 0))
        in
        let c = cell t (subsys, op) in
        c.c_count <- c.c_count + 1;
        record t
          {
            ev_ts = ts;
            ev_dur = -1;
            ev_node = idx;
            ev_subsys = subsys;
            ev_op = op;
            ev_depth = depth;
            ev_flow = flow;
            ev_tags = tags;
          }
      end

let with_span ?at ?tags ?flow_root ~node ~subsys ~op f =
  let sp = span ?at ?tags ?flow_root ~node ~subsys ~op () in
  match f () with
  | result ->
      close sp;
      result
  | exception e ->
      close sp;
      raise e

(* ---------- blocked-on-remote accounting ---------- *)

let add_blocked ~node ~subsys cycles =
  match !current with
  | None -> ()
  | Some t ->
      if cycles > 0 && pass_filter t subsys then begin
        let row =
          match Hashtbl.find_opt t.blocked subsys with
          | Some row -> row
          | None ->
              let row = Array.make nnodes 0 in
              Hashtbl.add t.blocked subsys row;
              row
        in
        let idx = Node_id.index node in
        row.(idx) <- row.(idx) + cycles
      end

let blocked_rows t =
  Hashtbl.fold (fun subsys row acc -> (subsys, Array.copy row) :: acc) t.blocked []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let node_blocked_cycles t node =
  let idx = Node_id.index node in
  Hashtbl.fold (fun _ row acc -> acc + row.(idx)) t.blocked 0

(* ---------- inspection ---------- *)

let recorded t = t.total_recorded
let dropped t = if t.total_recorded > t.capacity then t.total_recorded - t.capacity else 0
let capacity t = t.capacity
let open_spans t = List.length t.ctx
let node_span_cycles t node = t.top_cycles.(Node_id.index node)

let dropped_by_subsystem t =
  Hashtbl.fold (fun subsys n acc -> (subsys, n) :: acc) t.drops []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let events t =
  let n = min t.total_recorded t.capacity in
  let start = t.total_recorded - n in
  List.init n (fun i -> t.ring.((start + i) mod t.capacity))

type row = {
  subsys : string;
  op : string;
  count : int;
  total_cycles : int;
  self_cycles : int;
  max_cycles : int;
  node_cycles : int array;
}

let attribution t =
  Hashtbl.fold
    (fun (subsys, op) c acc ->
      {
        subsys;
        op;
        count = c.c_count;
        total_cycles = c.c_total;
        self_cycles = c.c_self;
        max_cycles = c.c_max;
        node_cycles = Array.copy c.c_node;
      }
      :: acc)
    t.agg []
  |> List.sort (fun a b ->
         match compare b.total_cycles a.total_cycles with
         | 0 -> compare (a.subsys, a.op) (b.subsys, b.op)
         | n -> n)

let subsystems t =
  Hashtbl.fold (fun (subsys, _) _ acc -> subsys :: acc) t.agg []
  |> List.sort_uniq String.compare

(* One subsystem's operation counts, sorted by op name — the shape the
   placement engine folds into metrics snapshots without dragging the
   full attribution row type along. *)
let op_counts t ~subsys =
  Hashtbl.fold
    (fun (s, op) c acc -> if String.equal s subsys then (op, c.c_count) :: acc else acc)
    t.agg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- sinks ---------- *)

let tags_json tags = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) tags)

let node_name idx = Node_id.to_string (Node_id.of_index idx)

(* Chrome trace-event format (chrome://tracing, Perfetto). Spans are "X"
   complete events; point events are "i" instants. The ts/dur clock is
   simulated cycles, not wall microseconds. A nonzero causal flow id rides
   in args.flow, so the offline assembler can rebuild flows from the
   exported file. *)
let chrome_json t =
  let meta =
    List.map
      (fun node ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int (Node_id.index node));
            ("args", Json.Obj [ ("name", Json.String (Node_id.to_string node)) ]);
          ])
      Node_id.all
  in
  let args_json e =
    let tags = List.map (fun (k, v) -> (k, Json.String v)) e.ev_tags in
    let tags = if e.ev_flow = 0 then tags else ("flow", Json.Int e.ev_flow) :: tags in
    (* Depth disambiguates equal-extent nested spans when a trace file is
       re-assembled offline (the causal module sorts on it last). *)
    Json.Obj (if e.ev_dur >= 0 then ("depth", Json.Int e.ev_depth) :: tags else tags)
  in
  let ev_json e =
    let base =
      [
        ("name", Json.String (e.ev_subsys ^ "." ^ e.ev_op));
        ("cat", Json.String e.ev_subsys);
        ("pid", Json.Int 0);
        ("tid", Json.Int e.ev_node);
        ("ts", Json.Int e.ev_ts);
      ]
    in
    if e.ev_dur >= 0 then
      Json.Obj
        (base @ [ ("ph", Json.String "X"); ("dur", Json.Int e.ev_dur); ("args", args_json e) ])
    else
      Json.Obj
        (base @ [ ("ph", Json.String "i"); ("s", Json.String "t"); ("args", args_json e) ])
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("clockDomain", Json.String "simulated-cycles");
            ("droppedEvents", Json.Int (dropped t));
            ( "droppedBySubsystem",
              Json.Obj
                (List.map (fun (s, n) -> (s, Json.Int n)) (dropped_by_subsystem t)) );
          ] );
      ("traceEvents", Json.List (meta @ List.map ev_json (events t)));
    ]

let chrome_string t = Json.to_string (chrome_json t)

let event_json e =
  Json.Obj
    [
      ("ts", Json.Int e.ev_ts);
      ("dur", Json.Int e.ev_dur);
      ("node", Json.String (node_name e.ev_node));
      ("subsys", Json.String e.ev_subsys);
      ("op", Json.String e.ev_op);
      ("depth", Json.Int e.ev_depth);
      ("flow", Json.Int e.ev_flow);
      ("tags", tags_json e.ev_tags);
    ]

let jsonl_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let blocked_json t =
  Json.Obj
    (List.map
       (fun node ->
         let idx = Node_id.index node in
         ( Node_id.to_string node,
           Json.Obj
             (("total", Json.Int (node_blocked_cycles t node))
             :: List.filter_map
                  (fun (subsys, row) ->
                    if row.(idx) > 0 then Some (subsys, Json.Int row.(idx)) else None)
                  (blocked_rows t)) ))
       Node_id.all)

let attribution_json t =
  let rows =
    List.map
      (fun r ->
        Json.Obj
          [
            ("subsys", Json.String r.subsys);
            ("op", Json.String r.op);
            ("count", Json.Int r.count);
            ("total_cycles", Json.Int r.total_cycles);
            ("self_cycles", Json.Int r.self_cycles);
            ("max_cycles", Json.Int r.max_cycles);
            ("x86_cycles", Json.Int r.node_cycles.(0));
            ("arm_cycles", Json.Int r.node_cycles.(1));
          ])
      (attribution t)
  in
  Json.Obj
    [
      ("events_recorded", Json.Int (recorded t));
      ("events_dropped", Json.Int (dropped t));
      ( "dropped_by_subsystem",
        Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) (dropped_by_subsystem t)) );
      ( "node_span_cycles",
        Json.Obj
          (List.map
             (fun node -> (Node_id.to_string node, Json.Int (node_span_cycles t node)))
             Node_id.all) );
      ("blocked_on_remote", blocked_json t);
      ("attribution", Json.List rows);
    ]
