(** Causal-flow assembly over traced events: per-flow DAGs, critical-path
    extraction, blame aggregation, tail-exemplar retention, and a
    folded-stack flamegraph export.

    Spans tagged with the same nonzero flow id (see {!Trace}) are grouped
    into one {!flow}; the earliest/widest span is the flow root, and only
    events contained in the root's interval participate (cross-node events
    are synthesized by the instrumentation in requester cycles exactly so
    they anchor — a responder-clock event cannot be placed on the
    requester timeline and is dropped). The critical path tiles the root
    interval: gaps between child spans are the parent's own time, so hop
    cycles always sum to the flow's end-to-end duration. All outputs are
    deterministically ordered: same trace ⇒ byte-identical reports. *)

module Node_id = Stramash_sim.Node_id

type hop = {
  h_node : int;  (** node index the cycles were spent on *)
  h_subsys : string;
  h_op : string;
  h_cycles : int;
}

type flow = {
  f_id : int;
  f_node : int;  (** requester (root) node index *)
  f_start : int;  (** root start cycle *)
  f_cycles : int;  (** end-to-end duration *)
  f_root_subsys : string;
  f_root_op : string;
  f_path : hop list;  (** critical path; cycles sum to [f_cycles] *)
  f_spans : int;  (** span events assembled into the flow *)
}

val flows_of_events : Trace.event list -> flow list
(** Assemble flows from span events (point events and flow id 0 are
    ignored), sorted by flow id. *)

val cross_node_flows : flow list -> flow list
(** Flows whose critical path visits a node other than the requester. *)

val blocked_of_flows : flow list -> (string * int array) list
(** Blocked-on-remote recovered from flows alone (for offline trace
    files): per root subsystem, critical-path cycles each requester node
    spent off-node, sorted by subsystem. *)

type blame_row = {
  b_subsys : string;
  b_op : string;
  b_hops : int;
  b_cycles : int;
  b_node : int array;  (** critical-path cycles per node index *)
}

val blame : flow list -> blame_row list
(** Critical-path cycles aggregated per (subsystem, op), sorted by
    descending cycles then name. *)

val hop_json : hop -> Json.t
val flow_json : flow -> Json.t
val blame_json : blame_row list -> Json.t

(** Bounded retention of complete traces for tail flows only: every
    offered flow's scalar duration is kept, but full traces survive only
    in a top-K pool, so long campaigns stay bounded. *)
module Reservoir : sig
  type t

  val create : ?percentile:float -> ?max_keep:int -> unit -> t
  (** Defaults: [percentile = 0.99], [max_keep = 8].
      @raise Invalid_argument
        unless [0 < percentile < 1] and [max_keep > 0]. *)

  val offer : t -> flow -> unit
  val count : t -> int

  val finalize : t -> int * flow list
  (** [(threshold, exemplars)]: the duration at the configured percentile
      rank over everything offered, and the retained flows at or above it
      (cycles descending, at most [max_keep]). [(0, [])] when empty. *)
end

val folded : Trace.event list -> string
(** Folded-stack flamegraph lines
    (["node;subsys.op;...;subsys.op cycles\n"], self time per stack),
    aggregated and sorted — feed to [flamegraph.pl] or speedscope. *)

val events_of_string : string -> (Trace.event list, string) result
(** Recover events from either sink format: a Chrome trace-event file
    ([--trace]) or JSONL lines. Depth and tags are not recovered; node
    names map back to indices. *)
