module Metrics = Stramash_sim.Metrics

type t = { mutable sections : (string * Json.t) list (* reverse order *) }

let create () = { sections = [] }

let add_json t name json = t.sections <- (name, json) :: t.sections

let add_counters t name pairs =
  add_json t name (Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) pairs))

let add_registry t name reg = add_counters t name (Metrics.to_assoc reg)

let add_histogram t name h =
  let buckets =
    Metrics.Histogram.bucket_counts h |> Array.to_list
    |> List.map (fun (lower, count) ->
           Json.Obj [ ("lower", Json.Float lower); ("count", Json.Int count) ])
  in
  add_json t name
    (Json.Obj
       [
         ("count", Json.Int (Metrics.Histogram.count h));
         ("mean", Json.Float (Metrics.Histogram.mean h));
         ("min", Json.Float (Metrics.Histogram.min_value h));
         ("max", Json.Float (Metrics.Histogram.max_value h));
         ("p50", Json.Float (Metrics.Histogram.p50 h));
         ("p95", Json.Float (Metrics.Histogram.p95 h));
         ("p99", Json.Float (Metrics.Histogram.p99 h));
         ("buckets", Json.List buckets);
       ])

let add_trace t tracer = add_json t "trace" (Trace.attribution_json tracer)

let add_causal t tracer =
  add_json t "blocked_on_remote" (Trace.blocked_json tracer);
  let flows = Causal.flows_of_events (Trace.events tracer) in
  let cross = Causal.cross_node_flows flows in
  add_json t "critical_path"
    (Json.Obj
       [
         ("flows", Json.Int (List.length flows));
         ("cross_node_flows", Json.Int (List.length cross));
         ("blame", Causal.blame_json (Causal.blame flows));
       ])

let sections t = List.rev t.sections

let to_json t = Json.Obj (sections t)

let to_string t = Json.to_string (to_json t)

let of_json json =
  match Json.get_obj json with
  | Some fields -> Ok { sections = List.rev fields }
  | None -> Error "snapshot: expected a JSON object"

let section t name = List.assoc_opt name (sections t)

let counters t name =
  match section t name with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> match Json.get_int v with Some n -> Some (k, n) | None -> None)
        fields
  | _ -> []
