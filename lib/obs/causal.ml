module Node_id = Stramash_sim.Node_id

let nnodes = List.length Node_id.all

(* One step of a critical path: [h_cycles] of the end-to-end latency spent
   in (node, subsys, op). Self time of a span and the spans it delegates
   to appear as distinct hops. *)
type hop = { h_node : int; h_subsys : string; h_op : string; h_cycles : int }

(* One assembled flow: the root span of a top-level kernel operation plus
   its extracted critical path. [f_path] hop cycles sum to [f_cycles]
   exactly (the decomposition below tiles the root interval). *)
type flow = {
  f_id : int;
  f_node : int; (* root (requester) node index *)
  f_start : int; (* root start, requester cycles *)
  f_cycles : int; (* end-to-end root duration *)
  f_root_subsys : string;
  f_root_op : string;
  f_path : hop list;
  f_spans : int; (* span events assembled into the flow *)
}

(* ---------- containment forest ---------- *)

type tree = { t_ev : Trace.event; mutable t_kids : tree list (* reverse order *) }

let ev_end (e : Trace.event) = e.ev_ts + e.ev_dur

let contains (outer : Trace.event) (inner : Trace.event) =
  outer.ev_ts <= inner.ev_ts && ev_end inner <= ev_end outer

(* Build a containment forest from span events sharing one clock domain.
   Sorted by (start asc, duration desc), a stack sweep recovers nesting:
   each event's parent is the innermost open interval containing it. The
   sort is stable, so ties resolve by ring (close) order — deterministic
   under a fixed seed. *)
let forest evs =
  let evs =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) ->
        match compare a.ev_ts b.ev_ts with
        | 0 -> (
            (* Equal extents nest by recorded depth (outermost first);
               remaining ties fall back to ring order via stability. *)
            match compare b.ev_dur a.ev_dur with
            | 0 -> compare a.ev_depth b.ev_depth
            | n -> n)
        | n -> n)
      evs
  in
  let roots = ref [] in
  let stack = ref [] in
  List.iter
    (fun ev ->
      let t = { t_ev = ev; t_kids = [] } in
      let rec pop () =
        match !stack with
        | top :: rest when not (contains top.t_ev ev) ->
            stack := rest;
            pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | top :: _ -> top.t_kids <- t :: top.t_kids
      | [] -> roots := t :: !roots);
      stack := t :: !stack)
    evs;
  List.rev !roots

(* ---------- critical path ---------- *)

(* Decompose a root interval: gaps between child intervals are self time
   of the root; each child contributes its own decomposition. A cursor
   sweep keeps the result an exact tiling — children already covered by
   the cursor (overlaps never arise from our span synthesis, but offline
   input is untrusted) are skipped, so hop cycles always sum to the root
   duration. *)
let rec decompose t =
  let ev = t.t_ev in
  let self cycles =
    { h_node = ev.ev_node; h_subsys = ev.ev_subsys; h_op = ev.ev_op; h_cycles = cycles }
  in
  let kids =
    List.rev t.t_kids
    |> List.stable_sort (fun a b -> compare a.t_ev.ev_ts b.t_ev.ev_ts)
  in
  let cursor = ref ev.ev_ts in
  let hops = ref [] in
  List.iter
    (fun kid ->
      if kid.t_ev.ev_ts >= !cursor && kid.t_ev.ev_dur > 0 then begin
        if kid.t_ev.ev_ts > !cursor then hops := self (kid.t_ev.ev_ts - !cursor) :: !hops;
        hops := List.rev_append (decompose kid) !hops;
        cursor := ev_end kid.t_ev
      end)
    kids;
  if ev_end ev > !cursor then hops := self (ev_end ev - !cursor) :: !hops;
  (* Merge adjacent hops with the same attribution so tilings synthesized
     around zero-cycle sub-spans don't fragment the path. *)
  List.fold_left
    (fun acc h ->
      match acc with
      | prev :: rest
        when prev.h_node = h.h_node
             && String.equal prev.h_subsys h.h_subsys
             && String.equal prev.h_op h.h_op ->
          { prev with h_cycles = prev.h_cycles + h.h_cycles } :: rest
      | _ -> h :: acc)
    []
    (List.rev !hops)
  |> List.rev

let rec tree_size t = List.fold_left (fun n k -> n + tree_size k) 1 t.t_kids

(* ---------- flow assembly ---------- *)

(* Group span events by flow id, pick the root (earliest start, widest on
   ties — the flow-root span opened on the requester), drop events not
   contained in the root interval (cross-node events stamped in a foreign
   clock can't be placed on the requester timeline; synthesized responder
   hops are emitted in requester cycles precisely so they anchor), and
   extract the critical path from the containment tree. *)
let flows_of_events events =
  let by_flow : (int, Trace.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.ev_flow <> 0 && e.ev_dur >= 0 then
        Hashtbl.replace by_flow e.ev_flow
          (e :: (match Hashtbl.find_opt by_flow e.ev_flow with Some l -> l | None -> [])))
    events;
  Hashtbl.fold (fun id evs acc -> (id, List.rev evs) :: acc) by_flow []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filter_map (fun (id, evs) ->
         let root =
           List.fold_left
             (fun best (e : Trace.event) ->
               match best with
               | None -> Some e
               | Some b ->
                   if
                     e.ev_ts < b.ev_ts
                     || (e.ev_ts = b.ev_ts && e.ev_dur > b.ev_dur)
                   then Some e
                   else best)
             None evs
         in
         match root with
         | None -> None
         | Some root when root.ev_dur <= 0 -> None
         | Some root ->
             let anchored = List.filter (fun e -> contains root e) evs in
             let tree =
               match forest anchored with
               | [ t ] -> t
               | ts -> (
                   (* Defensive: several equal-extent roots collapse to the
                      first; an empty forest is impossible (root anchors). *)
                   match ts with t :: _ -> t | [] -> assert false)
             in
             Some
               {
                 f_id = id;
                 f_node = root.ev_node;
                 f_start = root.ev_ts;
                 f_cycles = root.ev_dur;
                 f_root_subsys = root.ev_subsys;
                 f_root_op = root.ev_op;
                 f_path = decompose tree;
                 f_spans = tree_size tree;
               })

(* ---------- blame aggregation ---------- *)

type blame_row = {
  b_subsys : string;
  b_op : string;
  b_hops : int;
  b_cycles : int;
  b_node : int array; (* critical-path cycles per node index *)
}

let blame flows =
  let tbl : (string * string, blame_row) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun f ->
      List.iter
        (fun h ->
          let key = (h.h_subsys, h.h_op) in
          let row =
            match Hashtbl.find_opt tbl key with
            | Some r -> r
            | None ->
                let r =
                  {
                    b_subsys = h.h_subsys;
                    b_op = h.h_op;
                    b_hops = 0;
                    b_cycles = 0;
                    b_node = Array.make nnodes 0;
                  }
                in
                Hashtbl.add tbl key r;
                r
          in
          let row = { row with b_hops = row.b_hops + 1; b_cycles = row.b_cycles + h.h_cycles } in
          if h.h_node >= 0 && h.h_node < nnodes then
            row.b_node.(h.h_node) <- row.b_node.(h.h_node) + h.h_cycles;
          Hashtbl.replace tbl key row)
        f.f_path)
    flows;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.b_cycles a.b_cycles with
         | 0 -> compare (a.b_subsys, a.b_op) (b.b_subsys, b.b_op)
         | n -> n)

(* Blocked-on-remote recovered from assembled flows alone (offline trace
   files carry no live blocked table): critical-path cycles spent off the
   requester node, accounted to the requester and the flow's root
   subsystem. *)
let blocked_of_flows flows =
  let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let remote =
        List.fold_left
          (fun acc h -> if h.h_node <> f.f_node then acc + h.h_cycles else acc)
          0 f.f_path
      in
      if remote > 0 && f.f_node >= 0 && f.f_node < nnodes then begin
        let row =
          match Hashtbl.find_opt tbl f.f_root_subsys with
          | Some row -> row
          | None ->
              let row = Array.make nnodes 0 in
              Hashtbl.add tbl f.f_root_subsys row;
              row
        in
        row.(f.f_node) <- row.(f.f_node) + remote
      end)
    flows;
  Hashtbl.fold (fun subsys row acc -> (subsys, row) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let cross_node_flows flows =
  List.filter
    (fun f -> List.exists (fun h -> h.h_node <> f.f_node) f.f_path)
    flows

(* ---------- JSON ---------- *)

let node_name idx =
  if idx >= 0 && idx < nnodes then Node_id.to_string (Node_id.of_index idx)
  else string_of_int idx

let hop_json h =
  Json.Obj
    [
      ("node", Json.String (node_name h.h_node));
      ("subsys", Json.String h.h_subsys);
      ("op", Json.String h.h_op);
      ("cycles", Json.Int h.h_cycles);
    ]

let flow_json f =
  Json.Obj
    [
      ("flow", Json.Int f.f_id);
      ("node", Json.String (node_name f.f_node));
      ("root", Json.String (f.f_root_subsys ^ "." ^ f.f_root_op));
      ("start", Json.Int f.f_start);
      ("cycles", Json.Int f.f_cycles);
      ("spans", Json.Int f.f_spans);
      ("path", Json.List (List.map hop_json f.f_path));
    ]

let blame_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("subsys", Json.String r.b_subsys);
             ("op", Json.String r.b_op);
             ("hops", Json.Int r.b_hops);
             ("cycles", Json.Int r.b_cycles);
             ("x86_cycles", Json.Int r.b_node.(0));
             ("arm_cycles", Json.Int r.b_node.(1));
           ])
       rows)

(* ---------- tail-exemplar reservoir ---------- *)

module Reservoir = struct
  type nonrec t = {
    percentile : float;
    max_keep : int;
    mutable durations : int list; (* every offered flow's cycles *)
    mutable count : int;
    mutable pool : flow list; (* top [max_keep] by cycles, desc *)
  }

  let create ?(percentile = 0.99) ?(max_keep = 8) () =
    if not (percentile > 0.0 && percentile < 1.0) then
      invalid_arg "Reservoir.create: percentile must be in (0,1)";
    if max_keep <= 0 then invalid_arg "Reservoir.create: max_keep must be positive";
    { percentile; max_keep; durations = []; count = 0; pool = [] }

  (* Insert keeping descending cycles; earlier arrivals win ties so the
     kept set is independent of how the pool is later truncated. *)
  let rec insert f = function
    | [] -> [ f ]
    | g :: rest when g.f_cycles >= f.f_cycles -> g :: insert f rest
    | rest -> f :: rest

  let offer t f =
    t.count <- t.count + 1;
    t.durations <- f.f_cycles :: t.durations;
    t.pool <- insert f t.pool;
    if List.length t.pool > t.max_keep then
      t.pool <- List.filteri (fun i _ -> i < t.max_keep) t.pool

  let count t = t.count

  (* Threshold = smallest duration at or above the percentile rank over
     everything offered; exemplars = retained flows at or above it. The
     full-duration list is scalars only, so long campaigns stay bounded:
     complete traces exist only for the [max_keep] pool. *)
  let finalize t =
    if t.count = 0 then (0, [])
    else begin
      let sorted = List.sort compare t.durations in
      let n = List.length sorted in
      let rank = int_of_float (ceil (t.percentile *. float_of_int n)) - 1 in
      let rank = max 0 (min (n - 1) rank) in
      let threshold = List.nth sorted rank in
      (threshold, List.filter (fun f -> f.f_cycles >= threshold) t.pool)
    end
end

(* ---------- folded-stack flamegraph export ---------- *)

(* One line per distinct stack: "node;subsys.op;...;subsys.op self_cycles".
   Stacks come from per-node containment forests (each node is one clock
   domain, so containment is well-defined); self cycles are the span's
   duration minus the children tiled under it. Lines are aggregated and
   sorted, so same trace ⇒ byte-identical output. *)
let folded events =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add stack cycles =
    if cycles > 0 then
      let n = match Hashtbl.find_opt tbl stack with Some n -> n | None -> 0 in
      Hashtbl.replace tbl stack (n + cycles)
  in
  let rec walk prefix t =
    let ev = t.t_ev in
    let stack = prefix ^ ";" ^ ev.ev_subsys ^ "." ^ ev.ev_op in
    let covered =
      List.fold_left (fun acc k -> acc + max 0 k.t_ev.ev_dur) 0 t.t_kids
    in
    add stack (ev.ev_dur - covered);
    List.iter (walk stack) (List.rev t.t_kids)
  in
  List.iteri
    (fun idx _node ->
      let evs =
        List.filter (fun (e : Trace.event) -> e.ev_node = idx && e.ev_dur >= 0) events
      in
      List.iter (walk (node_name idx)) (forest evs))
    Node_id.all;
  Hashtbl.fold (fun stack cycles acc -> (stack, cycles) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (stack, cycles) -> Printf.sprintf "%s %d\n" stack cycles)
  |> String.concat ""

(* ---------- offline event recovery ---------- *)

let node_index_of_name s =
  let rec go idx = function
    | [] -> None
    | n :: rest -> if String.equal (Node_id.to_string n) s then Some idx else go (idx + 1) rest
  in
  go 0 Node_id.all

let event_of_jsonl_obj json =
  let open Json in
  let int k = Option.bind (member k json) get_int in
  let str k = Option.bind (member k json) get_string in
  match (int "ts", int "dur", str "node", str "subsys", str "op") with
  | Some ts, Some dur, Some node, Some subsys, Some op ->
      let node_idx = match node_index_of_name node with Some i -> i | None -> -1 in
      Some
        {
          Trace.ev_ts = ts;
          ev_dur = dur;
          ev_node = node_idx;
          ev_subsys = subsys;
          ev_op = op;
          ev_depth = (match int "depth" with Some d -> d | None -> 0);
          ev_flow = (match int "flow" with Some f -> f | None -> 0);
          ev_tags = [];
        }
  | _ -> None

let events_of_chrome json =
  match Option.bind (Json.member "traceEvents" json) Json.get_list with
  | None -> Error "chrome trace: missing traceEvents list"
  | Some evs ->
      Ok
        (List.filter_map
           (fun ev ->
             let int k = Option.bind (Json.member k ev) Json.get_int in
             let str k = Option.bind (Json.member k ev) Json.get_string in
             match str "ph" with
             | Some ("X" | "i") -> (
                 match (str "cat", str "name", int "tid", int "ts") with
                 | Some cat, Some name, Some tid, Some ts ->
                     let prefix = cat ^ "." in
                     let op =
                       let pl = String.length prefix in
                       if
                         String.length name > pl
                         && String.equal (String.sub name 0 pl) prefix
                       then String.sub name pl (String.length name - pl)
                       else name
                     in
                     let arg k =
                       match Option.bind (Json.member "args" ev) (Json.member k) with
                       | Some j -> ( match Json.get_int j with Some f -> f | None -> 0)
                       | None -> 0
                     in
                     Some
                       {
                         Trace.ev_ts = ts;
                         ev_dur = (match int "dur" with Some d -> d | None -> -1);
                         ev_node = tid;
                         ev_subsys = cat;
                         ev_op = op;
                         ev_depth = arg "depth";
                         ev_flow = arg "flow";
                         ev_tags = [];
                       }
                 | _ -> None)
             | _ -> None)
           evs)

(* Accepts either sink format: a Chrome trace-event file (one JSON object
   with [traceEvents]) or JSONL (one event object per line). *)
let events_of_string contents =
  let trimmed = String.trim contents in
  if trimmed = "" then Error "empty trace"
  else if trimmed.[0] = '{' && not (String.contains trimmed '\n') then
    match Json.parse trimmed with
    | Error e -> Error e
    | Ok json -> (
        match events_of_chrome json with
        | Ok evs -> Ok evs
        | Error _ -> (
            (* A single-line JSONL file is also one object: fall through. *)
            match event_of_jsonl_obj json with
            | Some ev -> Ok [ ev ]
            | None -> Error "unrecognized trace object"))
  else if trimmed.[0] = '{' && String.length trimmed > 1 then
    (* Multi-line: Chrome export is one compact line in our sink, but be
       liberal — try whole-string JSON first, then line-by-line JSONL. *)
    match Json.parse trimmed with
    | Ok json -> events_of_chrome json
    | Error _ ->
        let lines = String.split_on_char '\n' trimmed in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              let line = String.trim line in
              if line = "" then go acc rest
              else (
                match Json.parse line with
                | Error e -> Error (Printf.sprintf "bad JSONL line: %s" e)
                | Ok json -> (
                    match event_of_jsonl_obj json with
                    | Some ev -> go (ev :: acc) rest
                    | None -> Error "JSONL line is not a trace event"))
        in
        go [] lines
  else Error "unrecognized trace format"
