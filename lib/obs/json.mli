(** Minimal dependency-free JSON: enough to emit Chrome trace-event files
    and metrics snapshots, and to parse them back for round-trip tests.
    Renders compactly (no whitespace). [Int] and [Float] round-trip
    distinguishably: floats always carry a decimal point or exponent
    (integral floats render as e.g. ["2.0"]), so [parse (to_string v)]
    reconstructs the same constructors. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, deterministic rendering (object fields keep their order). *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value; rejects trailing garbage and
    containers nested deeper than 512 levels. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on any other constructor. *)

val get_int : t -> int option
val get_string : t -> string option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
