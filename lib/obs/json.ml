type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- rendering ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then begin
        (* Round-trippable and always a valid JSON number (never "inf").
           Integral values get an explicit ".0" so they re-parse as Float,
           not Int — [parse] distinguishes the constructors by lexeme. *)
        let s = Printf.sprintf "%.12g" f in
        Buffer.add_string buf s;
        if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
          Buffer.add_string buf ".0"
      end
      else Buffer.add_string buf "0.0"
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          render buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  render buf t;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code = try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape" in
            (* Encode the code point as UTF-8 (surrogate pairs untreated:
               the tracer never emits them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

(* Containers deeper than this are rejected rather than risking a stack
   overflow in the recursive descent — no artifact we emit nests anywhere
   near it, so hitting the limit means hostile or corrupt input. *)
let max_depth = 512

let rec parse_value ?(depth = 0) c =
  if depth > max_depth then fail c "nesting too deep";
  let parse_value c = parse_value ~depth:(depth + 1) c in
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ]"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected , or }"
        in
        Obj (fields [])
      end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int n -> Some n | Float f -> Some (int_of_float f) | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj l -> Some l | _ -> None
