(** Cycle-timestamped span tracing with cross-ISA cycle attribution.

    The clock domain is **simulated cycles** (per-node [Meter] values), not
    wall time. A single global tracer can be installed; when none is
    installed every entry point reduces to one [ref] dereference and
    allocates nothing, so instrumented hot paths are free in normal runs.

    Spans nest per node: [span] pushes onto the node's open-span stack and
    [close] pops it, attributing the duration to the parent's child-time so
    the aggregator can report both inclusive and self cycles. Closed spans
    and point events land in a bounded ring buffer (oldest overwritten,
    drops counted); attribution is folded incrementally at close time, so a
    ring overflow never corrupts the cycle-attribution table. *)

module Node_id = Stramash_sim.Node_id

type t
(** A tracer: ring buffer + open-span stacks + attribution table. *)

type span
(** An open span handle. The handle returned while tracing is disabled (or
    filtered out) is inert: [close]/[add_tag] on it do nothing. *)

val null : span
(** The shared inert handle. Call sites that open a span conditionally use
    it as the disabled arm, and can test [sp != Trace.null] (physical
    inequality) to skip building close-time tag lists. *)

type event = {
  ev_ts : int;  (** start cycle *)
  ev_dur : int;  (** duration in cycles; [-1] for point events *)
  ev_node : int;  (** node index (see {!Node_id.index}) *)
  ev_subsys : string;
  ev_op : string;
  ev_depth : int;  (** nesting depth at record time; 0 = top level *)
  ev_tags : (string * string) list;
}

val create : ?capacity:int -> ?filter:string list -> unit -> t
(** [create ()] makes a tracer with a 65536-event ring. [filter] restricts
    recording to the named subsystems ([[]] records everything).
    @raise Invalid_argument if [capacity <= 0]. *)

(** {1 Global tracer} *)

val install : t -> unit
val uninstall : unit -> unit
val current_tracer : unit -> t option

val enabled : unit -> bool
(** The single guard instrumented call sites use before building tag
    lists: one dereference, no allocation. *)

val set_clock : (Node_id.t -> int) -> unit
(** Install a cycle-clock (typically [fun n -> Meter.get (Env.meter env n)])
    on the current tracer, used when a site records without an explicit
    [?at]. No-op when no tracer is installed. *)

(** {1 Recording} *)

val span :
  ?at:int ->
  ?tags:(string * string) list ->
  node:Node_id.t ->
  subsys:string ->
  op:string ->
  unit ->
  span
(** Open a span at cycle [at] (default: the installed clock, else the
    enclosing span's start). Returns an inert handle when disabled. *)

val close : ?at:int -> ?tags:(string * string) list -> span -> unit
(** Close a span at cycle [at] (same default as {!span}); records the event
    and folds it into the attribution table. Extra [tags] are appended. *)

val add_tag : span -> string -> string -> unit

val instant :
  ?at:int ->
  ?node:Node_id.t ->
  ?tags:(string * string) list ->
  subsys:string ->
  op:string ->
  unit ->
  unit
(** Record a point event. When [node] is omitted it defaults to the node of
    the innermost open span (any node), letting layers with no node handle
    — fault injection, IPI backend, page-table IO — land their events
    inside the span they perturbed. *)

val with_span :
  ?at:int ->
  ?tags:(string * string) list ->
  node:Node_id.t ->
  subsys:string ->
  op:string ->
  (unit -> 'a) ->
  'a
(** [with_span ~node ~subsys ~op f] wraps [f] in a span, closing it on
    normal return and on exception. *)

(** {1 Inspection} *)

val recorded : t -> int
(** Total events ever recorded (including any since overwritten). *)

val dropped : t -> int
(** Events lost to ring overflow: [max 0 (recorded - capacity)]. *)

val capacity : t -> int
val open_spans : t -> int

val node_span_cycles : t -> Node_id.t -> int
(** Cycles covered by depth-0 spans on the node — comparable to the node's
    final [Meter] reading when the runner wraps execution in a top span. *)

val events : t -> event list
(** Surviving ring contents, oldest first. *)

type row = {
  subsys : string;
  op : string;
  count : int;
  total_cycles : int;  (** inclusive *)
  self_cycles : int;  (** inclusive minus child-span cycles *)
  max_cycles : int;
  node_cycles : int array;  (** inclusive cycles per node index *)
}

val attribution : t -> row list
(** Per-(subsystem x operation) table, sorted by descending total then
    name. Point events contribute counts only. *)

val subsystems : t -> string list
(** Distinct subsystems observed, sorted. *)

val op_counts : t -> subsys:string -> (string * int) list
(** Event counts for one subsystem's operations, sorted by op name —
    spans and point events alike. *)

(** {1 Sinks} *)

val chrome_json : t -> Json.t
(** Chrome trace-event format (load in Perfetto or chrome://tracing):
    spans as "X" complete events, point events as "i" instants, one thread
    per node, [ts]/[dur] in simulated cycles. *)

val chrome_string : t -> string

val jsonl_string : t -> string
(** One JSON object per line per surviving event, oldest first. *)

val attribution_json : t -> Json.t
(** The attribution table plus recorded/dropped counters and per-node
    top-span cycles, as JSON. *)
