(** Cycle-timestamped span tracing with cross-ISA cycle attribution.

    The clock domain is **simulated cycles** (per-node [Meter] values), not
    wall time. A single global tracer can be installed; when none is
    installed every entry point reduces to one [ref] dereference and
    allocates nothing, so instrumented hot paths are free in normal runs.

    Spans nest per node: [span] pushes onto the node's open-span stack and
    [close] pops it, attributing the duration to the parent's child-time so
    the aggregator can report both inclusive and self cycles. Closed spans
    and point events land in a bounded ring buffer (oldest overwritten,
    drops counted per subsystem); attribution is folded incrementally at
    close time, so a ring overflow never corrupts the cycle-attribution
    table.

    {2 Causal flows}

    Every span and event carries a {e flow id} (0 = none) tying together
    the cross-node causal chain of one top-level kernel operation. A span
    opened with [~flow_root:true] mints a fresh id when no enclosing flow
    exists, and nested spans inherit it. To stitch the responder side of a
    cross-node operation into the requester's flow, the requester-side
    layer wraps the responder-side recording in {!with_flow}; spans and
    instants recorded inside then carry the requester's id even though
    they sit on the other node's stack. Ids are minted deterministically
    from (node, per-node sequence), so a fixed seed replays to identical
    flow ids. *)

module Node_id = Stramash_sim.Node_id

type t
(** A tracer: ring buffer + open-span stacks + attribution table. *)

type span
(** An open span handle. The handle returned while tracing is disabled (or
    filtered out) is inert: [close]/[add_tag] on it do nothing. *)

val null : span
(** The shared inert handle. Call sites that open a span conditionally use
    it as the disabled arm, and can test [sp != Trace.null] (physical
    inequality) to skip building close-time tag lists. *)

type event = {
  ev_ts : int;  (** start cycle *)
  ev_dur : int;  (** duration in cycles; [-1] for point events *)
  ev_node : int;  (** node index (see {!Node_id.index}) *)
  ev_subsys : string;
  ev_op : string;
  ev_depth : int;  (** nesting depth at record time; 0 = top level *)
  ev_flow : int;  (** causal flow id; 0 = not part of any flow *)
  ev_tags : (string * string) list;
}

val create : ?capacity:int -> ?filter:string list -> unit -> t
(** [create ()] makes a tracer with a 65536-event ring. [filter] restricts
    recording to the named subsystems ([[]] records everything).
    @raise Invalid_argument if [capacity <= 0]. *)

(** {1 Global tracer} *)

val install : t -> unit
val uninstall : unit -> unit
val current_tracer : unit -> t option

val enabled : unit -> bool
(** The single guard instrumented call sites use before building tag
    lists: one dereference, no allocation. *)

val set_clock : (Node_id.t -> int) -> unit
(** Install a cycle-clock (typically [fun n -> Meter.get (Env.meter env n)])
    on the current tracer, used when a site records without an explicit
    [?at]. No-op when no tracer is installed. *)

(** {1 Recording} *)

val span :
  ?at:int ->
  ?tags:(string * string) list ->
  ?flow_root:bool ->
  node:Node_id.t ->
  subsys:string ->
  op:string ->
  unit ->
  span
(** Open a span at cycle [at] (default: the installed clock, else the
    enclosing span's start). With [~flow_root:true] the span mints a fresh
    flow id when neither a {!with_flow} override nor an enclosing flow is
    active. Returns an inert handle when disabled. *)

val close : ?at:int -> ?tags:(string * string) list -> span -> unit
(** Close a span at cycle [at] (same default as {!span}); records the event
    and folds it into the attribution table. Extra [tags] are appended. *)

val add_tag : span -> string -> string -> unit

val flow_of : span -> int
(** The flow id carried by an open span (0 for the inert handle). Used by
    cross-node layers to hand the requester's flow to {!with_flow}. *)

val instant :
  ?at:int ->
  ?node:Node_id.t ->
  ?flow:int ->
  ?tags:(string * string) list ->
  subsys:string ->
  op:string ->
  unit ->
  unit
(** Record a point event. When [node] is omitted it defaults to the node of
    the innermost open span (any node), letting layers with no node handle
    — fault injection, IPI backend, page-table IO — land their events
    inside the span they perturbed. When [flow] is omitted it inherits
    from the node's {!with_flow} override or innermost open span. *)

val with_span :
  ?at:int ->
  ?tags:(string * string) list ->
  ?flow_root:bool ->
  node:Node_id.t ->
  subsys:string ->
  op:string ->
  (unit -> 'a) ->
  'a
(** [with_span ~node ~subsys ~op f] wraps [f] in a span, closing it on
    normal return and on exception. *)

(** {1 Causal flows} *)

val fresh_flow : node:Node_id.t -> int
(** Mint a flow id on [node] without opening a span — for point events that
    are flow roots of their own (heartbeats, placement actions). Returns 0
    when no tracer is installed. *)

val with_flow : node:Node_id.t -> flow:int -> (unit -> 'a) -> 'a
(** [with_flow ~node ~flow f] runs [f] with [flow] pushed as the flow
    override for [node]: spans and instants recorded on that node inside
    [f] carry [flow] instead of minting or inheriting their own. A [flow]
    of 0 (or no tracer) makes this a plain call. *)

val current_flow : unit -> int
(** Flow id of the innermost open span on any node, else 0. *)

val add_blocked : node:Node_id.t -> subsys:string -> int -> unit
(** Account [cycles] of [node] being serialized behind a remote reply, on
    behalf of [subsys]. Non-positive amounts and uninstalled tracers are
    no-ops; the subsystem filter applies. *)

(** {1 Inspection} *)

val recorded : t -> int
(** Total events ever recorded (including any since overwritten). *)

val dropped : t -> int
(** Events lost to ring overflow: [max 0 (recorded - capacity)]. *)

val dropped_by_subsystem : t -> (string * int) list
(** Ring-overflow losses broken down by the overwritten event's subsystem,
    sorted by name. Sums to {!dropped}. *)

val capacity : t -> int
val open_spans : t -> int

val node_span_cycles : t -> Node_id.t -> int
(** Cycles covered by depth-0 spans on the node — comparable to the node's
    final [Meter] reading when the runner wraps execution in a top span. *)

val blocked_rows : t -> (string * int array) list
(** Blocked-on-remote cycles per subsystem (per-node arrays), sorted by
    subsystem name. *)

val node_blocked_cycles : t -> Node_id.t -> int
(** Total cycles [node] spent blocked on remote replies, all subsystems. *)

val events : t -> event list
(** Surviving ring contents, oldest first. *)

type row = {
  subsys : string;
  op : string;
  count : int;
  total_cycles : int;  (** inclusive *)
  self_cycles : int;  (** inclusive minus child-span cycles *)
  max_cycles : int;
  node_cycles : int array;  (** inclusive cycles per node index *)
}

val attribution : t -> row list
(** Per-(subsystem x operation) table, sorted by descending total then
    name. Point events contribute counts only. *)

val subsystems : t -> string list
(** Distinct subsystems observed, sorted. *)

val op_counts : t -> subsys:string -> (string * int) list
(** Event counts for one subsystem's operations, sorted by op name —
    spans and point events alike. *)

(** {1 Sinks} *)

val chrome_json : t -> Json.t
(** Chrome trace-event format (load in Perfetto or chrome://tracing):
    spans as "X" complete events, point events as "i" instants, one thread
    per node, [ts]/[dur] in simulated cycles. Nonzero flow ids ride in
    [args.flow]. *)

val chrome_string : t -> string

val jsonl_string : t -> string
(** One JSON object per line per surviving event, oldest first. *)

val blocked_json : t -> Json.t
(** Per-node blocked-on-remote cycles with per-subsystem breakdown. *)

val attribution_json : t -> Json.t
(** The attribution table plus recorded/dropped counters (aggregate and
    per-subsystem), per-node top-span cycles, and the blocked-on-remote
    account, as JSON. *)
