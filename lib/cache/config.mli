(** Cache hierarchy configuration.

    The paper simulates 32 KB L1s, a private L2 and a 4 MB (or 32 MB for
    Fig. 10) L3 per QEMU instance. Our workloads are scaled down by 16x to
    keep interpreter-driven simulation fast, so the default geometry is
    scaled by the same factor and the harness reports both the scaled value
    and the paper-equivalent label (DESIGN.md §8). *)

type geometry = { size : int; ways : int }
(** Total bytes and associativity; 64 B lines throughout. *)

val sets : geometry -> int

type t = {
  l1i : geometry;
  l1d : geometry;
  l2 : geometry;
  l3 : geometry;
  shared_l3 : bool; (* Fully-shared hardware model: one L3 for both nodes *)
  hw_model : Stramash_mem.Layout.hw_model;
  x86_lat : Stramash_mem.Latency.t;
  arm_lat : Stramash_mem.Latency.t;
  cxl : Cxl.t;
}

val default : Stramash_mem.Layout.hw_model -> t
(** Scaled default: 8 KB L1s, 64 KB L2, 256 KB L3 (paper-equivalent 4 MB);
    [shared_l3] set for [Fully_shared]. *)

val with_l3_size : t -> int -> t
(** Fig. 10's cache-size sweep: replace the L3 capacity. *)

val latencies : t -> Stramash_sim.Node_id.t -> Stramash_mem.Latency.t

val l3_paper_label : t -> string
(** Paper-equivalent L3 label for reports ("4MB" for the scaled 256 KB). *)
