module Node_id = Stramash_sim.Node_id

type entry = { node : Node_id.t; kind : Cache_sim.kind; paddr : int }

(* Entries are packed into two int arrays (node+kind tag, paddr) to keep
   multi-million-access traces cheap. *)
type t = {
  mutable tags : int array;
  mutable addrs : int array;
  mutable len : int;
}

let create () = { tags = Array.make 4096 0; addrs = Array.make 4096 0; len = 0 }

let kind_to_int = function Cache_sim.Ifetch -> 0 | Cache_sim.Load -> 1 | Cache_sim.Store -> 2
let kind_of_int = function 0 -> Cache_sim.Ifetch | 1 -> Cache_sim.Load | _ -> Cache_sim.Store

let record t node kind paddr =
  if t.len = Array.length t.tags then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    t.tags <- grow t.tags;
    t.addrs <- grow t.addrs
  end;
  t.tags.(t.len) <- (Node_id.index node lsl 2) lor kind_to_int kind;
  t.addrs.(t.len) <- paddr;
  t.len <- t.len + 1

let length t = t.len

let entry t i =
  let tag = t.tags.(i) in
  { node = Node_id.of_index (tag lsr 2); kind = kind_of_int (tag land 3); paddr = t.addrs.(i) }

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (entry t i)
  done

let attach t cache = Cache_sim.add_probe cache (record t)

let replay_into_ruby t ruby =
  iter t ~f:(fun e -> Ruby_ref.access ruby ~node:e.node e.kind ~paddr:e.paddr)
