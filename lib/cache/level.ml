type t = {
  sets : int;
  ways : int;
  tags : int array; (* -1 = invalid; indexed set*ways + way *)
  stamp : int array; (* LRU timestamps *)
  mutable tick : int;
  mutable occupied : int;
}

let create (g : Config.geometry) =
  let sets = Config.sets g in
  {
    sets;
    ways = g.ways;
    tags = Array.make (sets * g.ways) (-1);
    stamp = Array.make (sets * g.ways) 0;
    tick = 0;
    occupied = 0;
  }

let set_of t line = line land (t.sets - 1)

let find t line =
  let base = set_of t line * t.ways in
  let rec scan w =
    if w >= t.ways then -1
    else if t.tags.(base + w) = line then base + w
    else scan (w + 1)
  in
  scan 0

let touch t idx =
  t.tick <- t.tick + 1;
  t.stamp.(idx) <- t.tick

let probe t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    touch t idx;
    true
  end
  else false

let contains t ~line = find t line >= 0

let insert t ~line =
  assert (find t line < 0);
  let base = set_of t line * t.ways in
  (* Prefer an invalid way; otherwise evict the least recently used. *)
  let victim = ref base in
  let found_invalid = ref false in
  for w = 0 to t.ways - 1 do
    let idx = base + w in
    if (not !found_invalid) && t.tags.(idx) = -1 then begin
      victim := idx;
      found_invalid := true
    end
    else if (not !found_invalid) && t.stamp.(idx) < t.stamp.(!victim) then victim := idx
  done;
  let evicted = if !found_invalid then None else Some t.tags.(!victim) in
  if !found_invalid then t.occupied <- t.occupied + 1;
  t.tags.(!victim) <- line;
  touch t !victim;
  evicted

let invalidate t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    t.tags.(idx) <- -1;
    t.stamp.(idx) <- 0;
    t.occupied <- t.occupied - 1;
    true
  end
  else false

let capacity_lines t = t.sets * t.ways
let occupied t = t.occupied
