type t = {
  sets : int;
  ways : int;
  tags : int array; (* -1 = invalid; indexed set*ways + way *)
  stamp : int array; (* LRU timestamps *)
  tick : int ref;
  mutable occupied : int;
}

(* A raw window onto the tag/LRU state, so the Fast engine can replicate a
   hit's exact observable effects (tag compare + tick advance + stamp
   write) without a function call per access. Mutations other than
   [stamp.(i) <- incr tick] are reserved to this module. *)
type view = { v_tags : int array; v_stamp : int array; v_tick : int ref }

let create (g : Config.geometry) =
  let sets = Config.sets g in
  {
    sets;
    ways = g.ways;
    tags = Array.make (sets * g.ways) (-1);
    stamp = Array.make (sets * g.ways) 0;
    tick = ref 0;
    occupied = 0;
  }

let view t = { v_tags = t.tags; v_stamp = t.stamp; v_tick = t.tick }

let set_of t line = line land (t.sets - 1)

(* [base + w < sets * ways] for every scanned way, so the unsafe reads are
   in bounds by construction. *)
let find t line =
  let base = set_of t line * t.ways in
  let tags = t.tags in
  let ways = t.ways in
  let rec scan w =
    if w >= ways then -1
    else if Array.unsafe_get tags (base + w) = line then base + w
    else scan (w + 1)
  in
  scan 0

let touch t idx =
  t.tick := !(t.tick) + 1;
  t.stamp.(idx) <- !(t.tick)

let probe t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    touch t idx;
    true
  end
  else false

(* Fast-path support: [probe_way] is [probe] that also reports where the
   line sits, so the L0 filter can re-touch the same way later without a
   scan. Tags are unique within a set (insert asserts absence), so the
   reported index is the one [find] would return. *)
let probe_way t ~line =
  let idx = find t line in
  if idx >= 0 then touch t idx;
  idx

let tag_at t idx = t.tags.(idx)

let touch_way t idx = touch t idx

let contains t ~line = find t line >= 0

let insert t ~line =
  assert (find t line < 0);
  let base = set_of t line * t.ways in
  (* Prefer an invalid way; otherwise evict the least recently used. *)
  let victim = ref base in
  let found_invalid = ref false in
  for w = 0 to t.ways - 1 do
    let idx = base + w in
    if (not !found_invalid) && t.tags.(idx) = -1 then begin
      victim := idx;
      found_invalid := true
    end
    else if (not !found_invalid) && t.stamp.(idx) < t.stamp.(!victim) then victim := idx
  done;
  let evicted = if !found_invalid then None else Some t.tags.(!victim) in
  if !found_invalid then t.occupied <- t.occupied + 1;
  t.tags.(!victim) <- line;
  touch t !victim;
  evicted

let invalidate t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    t.tags.(idx) <- -1;
    t.stamp.(idx) <- 0;
    t.occupied <- t.occupied - 1;
    true
  end
  else false

let capacity_lines t = t.sets * t.ways
let occupied t = t.occupied
