type t = {
  sets : int;
  ways : int;
  tags : int array; (* -1 = invalid; indexed set*ways + way *)
  stamp : int array; (* LRU timestamps *)
  tick : int ref;
  mutable occupied : int;
}

(* A raw window onto the tag/LRU state, so the Fast engine can replicate a
   hit's exact observable effects (tag compare + tick advance + stamp
   write) without a function call per access. Mutations other than
   [stamp.(i) <- incr tick] are reserved to this module. *)
type view = { v_tags : int array; v_stamp : int array; v_tick : int ref }

let create (g : Config.geometry) =
  let sets = Config.sets g in
  {
    sets;
    ways = g.ways;
    tags = Array.make (sets * g.ways) (-1);
    stamp = Array.make (sets * g.ways) 0;
    tick = ref 0;
    occupied = 0;
  }

let view t = { v_tags = t.tags; v_stamp = t.stamp; v_tick = t.tick }

let set_of t line = line land (t.sets - 1)

(* [base + w < sets * ways] for every scanned way, so the unsafe reads are
   in bounds by construction. *)
let find t line =
  let base = set_of t line * t.ways in
  let tags = t.tags in
  let ways = t.ways in
  let rec scan w =
    if w >= ways then -1
    else if Array.unsafe_get tags (base + w) = line then base + w
    else scan (w + 1)
  in
  scan 0

(* [idx] always comes from [find]/[insert], which stay within
   [sets * ways], so the unsafe write is in bounds by construction. *)
let touch t idx =
  let tk = !(t.tick) + 1 in
  t.tick := tk;
  Array.unsafe_set t.stamp idx tk

let probe t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    touch t idx;
    true
  end
  else false

(* Fast-path support: [probe_way] is [probe] that also reports where the
   line sits, so the L0 filter can re-touch the same way later without a
   scan. Tags are unique within a set (insert asserts absence), so the
   reported index is the one [find] would return. *)
let probe_way t ~line =
  let idx = find t line in
  if idx >= 0 then touch t idx;
  idx

let tag_at t idx = t.tags.(idx)

let touch_way t idx = touch t idx

let contains t ~line = find t line >= 0

(* Allocation-free insert on the miss-fill hot path: returns the evicted
   line, or -1 when an invalid way absorbed the fill. The line must be
   absent (callers insert only after a failed probe); [insert] asserts
   that, [insert_evict] is the no-assert form the cache simulator's
   per-access path uses. Victim choice is identical to the historical
   loop: the first invalid way if any, else the least-recently-used way
   with the lowest index winning ties ([<] keeps the earlier victim). *)
let insert_evict t ~line =
  let base = set_of t line * t.ways in
  let tags = t.tags and stamp = t.stamp and ways = t.ways in
  (* Prefer an invalid way; otherwise evict the least recently used. *)
  let victim = ref base in
  let found_invalid = ref (Array.unsafe_get tags base = -1) in
  let w = ref 1 in
  while (not !found_invalid) && !w < ways do
    let idx = base + !w in
    if Array.unsafe_get tags idx = -1 then begin
      victim := idx;
      found_invalid := true
    end
    else if Array.unsafe_get stamp idx < Array.unsafe_get stamp !victim then victim := idx;
    incr w
  done;
  let evicted = if !found_invalid then -1 else Array.unsafe_get tags !victim in
  if !found_invalid then t.occupied <- t.occupied + 1;
  Array.unsafe_set tags !victim line;
  touch t !victim;
  evicted

let insert t ~line =
  assert (find t line < 0);
  match insert_evict t ~line with -1 -> None | evicted -> Some evicted

let invalidate t ~line =
  let idx = find t line in
  if idx >= 0 then begin
    t.tags.(idx) <- -1;
    t.stamp.(idx) <- 0;
    t.occupied <- t.occupied - 1;
    true
  end
  else false

let capacity_lines t = t.sets * t.ways
let occupied t = t.occupied
