type state = I | S | E | M

let to_char = function I -> 'I' | S -> 'S' | E -> 'E' | M -> 'M'

let equal a b =
  match (a, b) with
  | I, I | S, S | E, E | M, M -> true
  | (I | S | E | M), _ -> false

type snoop = No_snoop | Snoop_data | Snoop_invalidate

let on_read ~other =
  match other with
  | M -> (S, S, Snoop_data) (* remote dirty copy demoted; data forwarded *)
  | E -> (S, S, Snoop_data)
  | S -> (S, S, No_snoop)
  | I -> (E, I, No_snoop)

let on_write ~other =
  match other with
  | M | E | S -> (M, I, Snoop_invalidate)
  | I -> (M, I, No_snoop)

let on_upgrade ~other =
  match other with
  | S -> (M, I, Snoop_invalidate)
  | M | E ->
      (* Cannot happen in a consistent directory (we hold S, so the other
         node cannot hold E/M); treated as an invalidating upgrade. *)
      (M, I, Snoop_invalidate)
  | I -> (M, I, No_snoop)
