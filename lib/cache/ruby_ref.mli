(** Independent reference cache model, standing in for gem5's Ruby "MESI
    Three Level" protocol (paper §9.1.3 / Fig. 8).

    Deliberately implemented differently from {!Cache_sim} — tree-PLRU
    replacement (as Ruby's caches use) instead of exact LRU, a strictly
    inclusive fill path, an owner-bitmask coherence filter instead of a
    MESI directory, and no timing — so that comparing per-level hit rates
    between the two models is a meaningful cross-validation, as the
    paper's comparison against gem5 is. *)

type t

val create : Config.t -> t

val access : t -> node:Stramash_sim.Node_id.t -> Cache_sim.kind -> paddr:int -> unit

val hit_rate : t -> Stramash_sim.Node_id.t -> string -> float
(** ["l1i" | "l1d" | "l2" | "l3"], as in {!Cache_sim.hit_rate}. *)

val stats : t -> Stramash_sim.Metrics.registry
