(** The Stramash-QEMU cache plugin, reimplemented: a 3-level inclusive MESI
    hierarchy per node, with CXL snoop overheads between the two nodes and
    local/remote memory fill latencies from Table 2.

    Every simulated memory access flows through {!access}, which returns the
    cycle cost to feed back into the requesting node's icount — the exact
    feedback loop of paper §7.3. Statistics mirror the artifact's output
    (L1/L2/L3 hits and accesses, local / remote / remote-shared memory
    hits, write-backs). *)

type t

type kind = Ifetch | Load | Store

type mode =
  | Fast  (** L0 line filter answers repeat L1 hits; bit- and cycle-identical to [Reference]. *)
  | Reference  (** The pre-fast-path simulator, for baselines and cross-checks. *)
  | Paranoid
      (** The L0 filter predicts, the reference path executes; any
          disagreement raises {!Divergence} at the first divergent access. *)

exception Divergence of string
(** Raised in [Paranoid] mode when the fast path would have produced a
    different latency than the reference path. *)

val create : Config.t -> t
val config : t -> Config.t

val set_mode : t -> mode -> unit
(** Default is [Fast]. Safe to flip mid-run: the L0 filter revalidates
    presence against the L1 tag store on every hit and its store-M bits
    are maintained in every mode, so no flush protocol is needed. *)

val mode : t -> mode

val access : t -> node:Stramash_sim.Node_id.t -> kind -> paddr:int -> int
(** Simulate one access to the line holding [paddr]; returns its latency
    in cycles. *)

val access_bytes : t -> node:Stramash_sim.Node_id.t -> kind -> paddr:int -> len:int -> int
(** Access every cache line spanned by [[paddr, paddr+len)]; the cost of a
    bulk copy such as a message payload or a page replication. *)

val latency_class :
  t -> node:Stramash_sim.Node_id.t -> int -> [ `Cache | `Local_mem | `Remote_mem ]
(** Classify an observed access latency against the node's Table-2
    thresholds: below DRAM latency it hit in some cache, at or above the
    remote-memory latency it crossed the interconnect. Used by the
    placement sampler to count remote misses without probing the tag
    stores a second time. *)

val atomic_rmw : t -> node:Stramash_sim.Node_id.t -> paddr:int -> int
(** An atomic read-modify-write (CAS / LSE, §6.5): a store-class access
    plus the configured atomic overhead. *)

val stats : t -> Stramash_sim.Metrics.registry
val stat : t -> Stramash_sim.Node_id.t -> string -> int
(** Per-node counter, e.g. [stat t X86 "l1d_hits"]. *)

val hit_rate : t -> Stramash_sim.Node_id.t -> string -> float
(** [hit_rate t node "l1d"] from the hit/access counters; 0 if unused. *)

(** {2 Fused-path raw window}

    [fast_path] hands the runner the exact arrays the Fast engine's own
    L0 hit path reads, so the whole per-instruction chain (TLB probe,
    L0/L1 replay, meter charge, physical access) can be fused into one
    closure with no cross-module calls. The contract mirrors
    {!Level.view}: all fields alias live storage; the only permitted
    mutations are the ones {!access} itself would have performed for the
    same L0 hit — the counter increments on [fp_stats] and the LRU touch
    on the matching {!Level.view} — and only after {e every} hit
    condition has been re-proved against the live arrays. Any condition
    failing means no mutation at all and a fall back to {!access}. *)

type node_stats = {
  mutable l1i_hits : int;
  mutable l1i_accesses : int;
  mutable l1d_hits : int;
  mutable l1d_accesses : int;
  mutable l2_hits : int;
  mutable l2_accesses : int;
  mutable l3_hits : int;
  mutable l3_accesses : int;
  mutable local_mem_hits : int;
  mutable remote_mem_hits : int;
  mutable remote_shared_mem_hits : int;
  mutable writebacks : int;
  mutable back_invalidations : int;
  mutable snoop_data : int;
  mutable snoop_invalidates : int;
  mutable mem_accesses : int;
  mutable l0_hits : int;
  mutable l0_misses : int;
}
(** One node's counters (the record behind {!stat}). Exposed concretely
    only for the fused path; an L0 ifetch hit bumps [l0_hits],
    [l1i_accesses], [mem_accesses], [l1i_hits]; a data hit bumps
    [l0_hits], [l1d_accesses], [mem_accesses], [l1d_hits]. Nothing else
    may be touched from outside this module. *)

type fast_path = {
  fp_stats : node_stats;
  fp_lat_l1 : int;  (** the latency an L0 hit returns *)
  fp_slot_mask : int;  (** L0 slot = line land [fp_slot_mask] *)
  fp_i_lines : int array;  (** ifetch-port L0: cached lines, -1 empty *)
  fp_i_ways : int array;  (** ifetch-port L0: way into the L1I tag store *)
  fp_i_v : Level.view;  (** L1I tag/LRU window (hit proof + LRU touch) *)
  fp_d_lines : int array;
  fp_d_ways : int array;
  fp_d_store_m : bool array;  (** data-port L0: directory state known M *)
  fp_d_v : Level.view;
}

val fast_path : t -> node:Stramash_sim.Node_id.t -> fast_path option
(** [Some] only while the fast engine is authoritative for every access:
    mode is [Fast] and no probes are registered. Callers must re-request
    it at least every scheduling quantum so mode flips and probe
    registrations take effect. *)

val fastpath_stats : t -> (string * int) list
(** Per-node L0 fast-path hit/miss counters (["x86.l0_hits"], ...). Kept
    out of {!stats} so model-metric registries stay bit-identical between
    [Fast] and [Reference] runs. *)

val l0_hit_rate : t -> Stramash_sim.Node_id.t -> float
(** Fraction of accesses answered by the L0 line filter; 0 if unused. *)

val add_probe : t -> (Stramash_sim.Node_id.t -> kind -> int -> unit) -> unit
(** Append an observation hook fired on every {!access}; hooks chain in
    registration order so the Fig. 8 trace recorder and the obs layer can
    observe the same run. *)

val set_probe : t -> (Stramash_sim.Node_id.t -> kind -> int -> unit) option -> unit
(** [set_probe t None] removes every probe; [set_probe t (Some f)] resets
    the chain to [f] alone (the historical single-observer behaviour). *)

val add_writeback_hook : t -> (Stramash_sim.Node_id.t -> line:int -> unit) -> unit
(** Append a hook fired whenever a dirty line is written back from a
    node's coherence point. Popcorn's DSM registers here: a write-back to
    a replicated page triggers the software consistency policy (paper
    §9.2.2). Hooks must not recurse into the cache simulator. *)

val set_writeback_hook : t -> (Stramash_sim.Node_id.t -> line:int -> unit) option -> unit
(** Clear ([None]) or reset ([Some f]) the write-back hook chain, as with
    {!set_probe}. *)

val reset_stats : t -> unit

val check_consistency : t -> (unit, string) result
(** Validate the model's structural invariants: the hierarchy is inclusive
    (L1 contents are in L2, L2's in the private L3), the directory agrees
    with presence at each node's coherence point, and no line is writable
    ([E]/[M]) on both nodes at once. Used by the property tests. *)
