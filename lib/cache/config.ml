module Addr = Stramash_mem.Addr
module Latency = Stramash_mem.Latency
module Layout = Stramash_mem.Layout

type geometry = { size : int; ways : int }

let sets g =
  let s = g.size / (Addr.line_size * g.ways) in
  assert (s > 0 && s land (s - 1) = 0);
  s

type t = {
  l1i : geometry;
  l1d : geometry;
  l2 : geometry;
  l3 : geometry;
  shared_l3 : bool;
  hw_model : Layout.hw_model;
  x86_lat : Latency.t;
  arm_lat : Latency.t;
  cxl : Cxl.t;
}

let scale_factor = 16

let default hw_model =
  {
    l1i = { size = Addr.kib 8; ways = 4 };
    l1d = { size = Addr.kib 8; ways = 4 };
    l2 = { size = Addr.kib 64; ways = 8 };
    l3 = { size = Addr.kib 256; ways = 16 };
    shared_l3 = (hw_model = Layout.Fully_shared);
    hw_model;
    x86_lat = Latency.default_for_node Stramash_sim.Node_id.X86;
    arm_lat = Latency.default_for_node Stramash_sim.Node_id.Arm;
    cxl = Cxl.default;
  }

let with_l3_size t size = { t with l3 = { t.l3 with size } }

let latencies t = function
  | Stramash_sim.Node_id.X86 -> t.x86_lat
  | Stramash_sim.Node_id.Arm -> t.arm_lat

let l3_paper_label t =
  let paper_bytes = t.l3.size * scale_factor in
  if paper_bytes >= Addr.mib 1 then Printf.sprintf "%dMB" (paper_bytes / Addr.mib 1)
  else Printf.sprintf "%dKB" (paper_bytes / Addr.kib 1)
