module Node_id = Stramash_sim.Node_id

(* Two 2-bit states packed per line: bits [1:0] = node 0, bits [3:2] = node 1.
   Stored in an open-addressing table (linear probing, power-of-two
   capacity) rather than a [Hashtbl]: the directory is probed on every
   store upgrade and every fill, and the flat table answers without
   hashing calls or option allocation. A packed value of 0 (= I on both
   nodes) means "absent"; such entries keep their key as a tombstone and
   are dropped at the next resize. *)
type t = {
  mutable keys : int array; (* -1 = slot never used; line numbers are >= 0 *)
  mutable vals : int array; (* packed states; 0 = absent *)
  mutable mask : int;
  mutable live : int; (* slots with vals <> 0 *)
  mutable used : int; (* slots with keys <> -1, including tombstones *)
}

let initial_capacity = 4096

let create () : t =
  {
    keys = Array.make initial_capacity (-1);
    vals = Array.make initial_capacity 0;
    mask = initial_capacity - 1;
    live = 0;
    used = 0;
  }

(* Line numbers come in dense sequential runs, which linear probing
   tolerates only under a mixing hash — masking the line directly turns
   two aliasing runs into one long probe chain. Fibonacci-style
   multiplicative mixing spreads runs uniformly. The scan terminates
   because the load factor is kept below 3/4. *)
let hash line mask =
  let h = line * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land mask

let slot_of t line =
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i =
    let s = i land mask in
    let k = Array.unsafe_get keys s in
    if k = line || k = -1 then s else probe (i + 1)
  in
  probe (hash line mask)

let rec grow t =
  let cap = (t.mask + 1) * 2 in
  let keys = t.keys and vals = t.vals in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.used <- 0;
  t.live <- 0;
  Array.iteri
    (fun i line -> if line >= 0 && vals.(i) <> 0 then set_packed t line vals.(i))
    keys

and set_packed t line packed =
  let s = slot_of t line in
  if t.keys.(s) = -1 then begin
    t.keys.(s) <- line;
    t.used <- t.used + 1
  end;
  if t.vals.(s) = 0 && packed <> 0 then t.live <- t.live + 1
  else if t.vals.(s) <> 0 && packed = 0 then t.live <- t.live - 1;
  t.vals.(s) <- packed;
  if t.used * 4 > (t.mask + 1) * 3 then grow t

let encode = function Mesi.I -> 0 | Mesi.S -> 1 | Mesi.E -> 2 | Mesi.M -> 3
let decode = function 0 -> Mesi.I | 1 -> Mesi.S | 2 -> Mesi.E | _ -> Mesi.M

let get t node ~line =
  let s = slot_of t line in
  if Array.unsafe_get t.keys s = line then
    decode (Array.unsafe_get t.vals s lsr (2 * Node_id.index node) land 3)
  else Mesi.I

let set t node ~line state =
  let shift = 2 * Node_id.index node in
  let s = slot_of t line in
  let packed = if t.keys.(s) = line then t.vals.(s) else 0 in
  let packed = packed land lnot (3 lsl shift) lor (encode state lsl shift) in
  set_packed t line packed

let holds t node ~line =
  let s = slot_of t line in
  Array.unsafe_get t.keys s = line
  && Array.unsafe_get t.vals s lsr (2 * Node_id.index node) land 3 <> 0

let tracked_lines t = t.live

let iter_lines t ~f =
  Array.iteri (fun i line -> if line >= 0 && t.vals.(i) <> 0 then f line) t.keys
