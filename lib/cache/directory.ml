module Node_id = Stramash_sim.Node_id

(* Two 2-bit states packed per line: bits [1:0] = node 0, bits [3:2] = node 1. *)
type t = (int, int) Hashtbl.t

let create () : t = Hashtbl.create 4096

let encode = function Mesi.I -> 0 | Mesi.S -> 1 | Mesi.E -> 2 | Mesi.M -> 3
let decode = function 0 -> Mesi.I | 1 -> Mesi.S | 2 -> Mesi.E | _ -> Mesi.M

let get t node ~line =
  match Hashtbl.find_opt t line with
  | None -> Mesi.I
  | Some packed -> decode ((packed lsr (2 * Node_id.index node)) land 3)

let set t node ~line state =
  let shift = 2 * Node_id.index node in
  let packed = match Hashtbl.find_opt t line with None -> 0 | Some p -> p in
  let packed = packed land lnot (3 lsl shift) lor (encode state lsl shift) in
  if packed = 0 then Hashtbl.remove t line else Hashtbl.replace t line packed

let holds t node ~line = not (Mesi.equal (get t node ~line) Mesi.I)

let tracked_lines t = Hashtbl.length t

let iter_lines (t : t) ~f = Hashtbl.iter (fun line _ -> f line) t
