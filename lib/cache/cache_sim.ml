module Node_id = Stramash_sim.Node_id
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Latency = Stramash_mem.Latency

type kind = Ifetch | Load | Store

type mode = Fast | Reference | Paranoid

exception Divergence of string

(* Mutable per-node counters: this module sits on the simulator's hottest
   path (one call per simulated instruction), so counters are plain record
   fields rather than string-keyed metrics. *)
type node_stats = {
  mutable l1i_hits : int;
  mutable l1i_accesses : int;
  mutable l1d_hits : int;
  mutable l1d_accesses : int;
  mutable l2_hits : int;
  mutable l2_accesses : int;
  mutable l3_hits : int;
  mutable l3_accesses : int;
  mutable local_mem_hits : int;
  mutable remote_mem_hits : int;
  mutable remote_shared_mem_hits : int;
  mutable writebacks : int;
  mutable back_invalidations : int;
  mutable snoop_data : int;
  mutable snoop_invalidates : int;
  mutable mem_accesses : int;
  (* Host-side fast-path observability; deliberately NOT part of the model
     counters in [stat_names], so [stats] registries stay bit-identical
     between Fast and Reference runs. *)
  mutable l0_hits : int;
  mutable l0_misses : int;
}

let fresh_stats () =
  {
    l1i_hits = 0;
    l1i_accesses = 0;
    l1d_hits = 0;
    l1d_accesses = 0;
    l2_hits = 0;
    l2_accesses = 0;
    l3_hits = 0;
    l3_accesses = 0;
    local_mem_hits = 0;
    remote_mem_hits = 0;
    remote_shared_mem_hits = 0;
    writebacks = 0;
    back_invalidations = 0;
    snoop_data = 0;
    snoop_invalidates = 0;
    mem_accesses = 0;
    l0_hits = 0;
    l0_misses = 0;
  }

let zero_stats s =
  s.l1i_hits <- 0;
  s.l1i_accesses <- 0;
  s.l1d_hits <- 0;
  s.l1d_accesses <- 0;
  s.l2_hits <- 0;
  s.l2_accesses <- 0;
  s.l3_hits <- 0;
  s.l3_accesses <- 0;
  s.local_mem_hits <- 0;
  s.remote_mem_hits <- 0;
  s.remote_shared_mem_hits <- 0;
  s.writebacks <- 0;
  s.back_invalidations <- 0;
  s.snoop_data <- 0;
  s.snoop_invalidates <- 0;
  s.mem_accesses <- 0;
  s.l0_hits <- 0;
  s.l0_misses <- 0

let stat_value s = function
  | "l1i_hits" -> s.l1i_hits
  | "l1i_accesses" -> s.l1i_accesses
  | "l1d_hits" -> s.l1d_hits
  | "l1d_accesses" -> s.l1d_accesses
  | "l2_hits" -> s.l2_hits
  | "l2_accesses" -> s.l2_accesses
  | "l3_hits" -> s.l3_hits
  | "l3_accesses" -> s.l3_accesses
  | "local_mem_hits" -> s.local_mem_hits
  | "remote_mem_hits" -> s.remote_mem_hits
  | "remote_shared_mem_hits" -> s.remote_shared_mem_hits
  | "writebacks" -> s.writebacks
  | "back_invalidations" -> s.back_invalidations
  | "snoop_data" -> s.snoop_data
  | "snoop_invalidates" -> s.snoop_invalidates
  | "mem_accesses" -> s.mem_accesses
  | "l0_hits" -> s.l0_hits
  | "l0_misses" -> s.l0_misses
  | name -> invalid_arg ("Cache_sim.stat: unknown counter " ^ name)

let stat_names =
  [
    "l1i_hits"; "l1i_accesses"; "l1d_hits"; "l1d_accesses"; "l2_hits"; "l2_accesses";
    "l3_hits"; "l3_accesses"; "local_mem_hits"; "remote_mem_hits"; "remote_shared_mem_hits";
    "writebacks"; "back_invalidations"; "snoop_data"; "snoop_invalidates"; "mem_accesses";
  ]

type node_caches = {
  l1i : Level.t;
  l1d : Level.t;
  l2 : Level.t;
  l3 : Level.t option;
  (* Aliased windows onto the L1 tag/LRU arrays, so the Fast engine's hit
     path runs call-free (see [access]). *)
  l1i_v : Level.view;
  l1d_v : Level.view;
}

(* L0 line filter: a direct-mapped array of recently L1-hit lines, one per
   port (instruction / data). A slot answers a repeat access without
   re-entering the MESI machinery when it can prove the answer is the one
   the reference path would produce:

     - presence is revalidated against the L1 tag store itself
       ([Level.tag_at] at the cached way), so an eviction or snoop
       invalidation can never leave a stale load/ifetch entry — no hook
       traffic is needed for the load side;
     - [store_m] additionally records that this node's directory state for
       the line is M (a store therefore pays no upgrade and mutates no
       coherence state); it is cleared by [dir_set] the moment any
       coherence transition moves the line out of M, which is the
       invalidation contract the rest of this module upholds.

   An L0 hit replicates the reference path's observable effects exactly:
   the same stat increments and the same LRU touch (same way, same tick
   advance), and returns the same L1 latency.

   Sizing: the filter is purely host-side (slot count changes only which
   accesses take the fast path, never any simulated state), so it is
   sized to make conflict misses negligible — the backing L1s hold at
   most a few hundred lines, and 8192 direct-mapped slots leave the
   collision probability between live lines in the noise while the
   arrays still fit comfortably in the host's caches. *)
let l0_slots = 8192

type l0_filter = {
  l0_lines : int array; (* -1 empty *)
  l0_ways : int array; (* index into the backing Level's tag store *)
  l0_store_m : bool array; (* directory state for this node known to be M *)
}

type node_l0 = { l0i : l0_filter; l0d : l0_filter }

let fresh_filter () =
  {
    l0_lines = Array.make l0_slots (-1);
    l0_ways = Array.make l0_slots 0;
    l0_store_m = Array.make l0_slots false;
  }

let fresh_l0 () = { l0i = fresh_filter (); l0d = fresh_filter () }

type t = {
  cfg : Config.t;
  nodes : node_caches array;
  nstats : node_stats array;
  l0s : node_l0 array;
  mutable mode : mode;
  lat_l1 : int array; (* per node index; avoids a Config lookup per hit *)
  shared_l3 : Level.t option;
  dir : Directory.t;
  mutable probes : (Node_id.t -> kind -> int -> unit) list;
  mutable writeback_hooks : (Node_id.t -> line:int -> unit) list;
}

let create cfg =
  let make_node () =
    let l1i = Level.create cfg.Config.l1i in
    let l1d = Level.create cfg.Config.l1d in
    {
      l1i;
      l1d;
      l2 = Level.create cfg.Config.l2;
      l3 = (if cfg.Config.shared_l3 then None else Some (Level.create cfg.Config.l3));
      l1i_v = Level.view l1i;
      l1d_v = Level.view l1d;
    }
  in
  let lat_l1 = Array.make (List.length Node_id.all) 0 in
  List.iter
    (fun node -> lat_l1.(Node_id.index node) <- (Config.latencies cfg node).Latency.l1)
    Node_id.all;
  {
    cfg;
    nodes = [| make_node (); make_node () |];
    nstats = [| fresh_stats (); fresh_stats () |];
    l0s = [| fresh_l0 (); fresh_l0 () |];
    mode = Fast;
    lat_l1;
    shared_l3 = (if cfg.Config.shared_l3 then Some (Level.create cfg.Config.l3) else None);
    dir = Directory.create ();
    probes = [];
    writeback_hooks = [];
  }

let set_mode t mode = t.mode <- mode
let mode t = t.mode

let config t = t.cfg

(* Classify an access latency the way the placement sampler needs it:
   anything at or above the node's DRAM latency missed every cache level,
   and at or above the remote-memory latency it crossed the interconnect.
   Latencies are per-node (Table 2), so the thresholds must be too. *)
let latency_class t ~node cycles =
  let lat = Config.latencies t.cfg node in
  if cycles >= lat.Latency.remote_mem then `Remote_mem
  else if cycles >= lat.Latency.mem then `Local_mem
  else `Cache

let stats t =
  let reg = Metrics.registry () in
  List.iter
    (fun node ->
      let s = t.nstats.(Node_id.index node) in
      List.iter
        (fun name -> Metrics.set reg (Node_id.to_string node ^ "." ^ name) (stat_value s name))
        stat_names)
    Node_id.all;
  reg

let stat t node name = stat_value t.nstats.(Node_id.index node) name

let hit_rate t node level =
  let hits = stat t node (level ^ "_hits") in
  let accesses = stat t node (level ^ "_accesses") in
  if accesses = 0 then 0.0 else float_of_int hits /. float_of_int accesses

(* Observers chain: callers register independently (Cache.Trace, DSM, the
   obs layer) and all fire in registration order. [set_* None] clears
   every observer; [set_* (Some f)] resets the chain to just [f] — the
   historical single-slot behaviour, kept for existing call sites. *)
let add_probe t f = t.probes <- t.probes @ [ f ]

let set_probe t probe =
  t.probes <- (match probe with None -> [] | Some f -> [ f ])

let add_writeback_hook t f = t.writeback_hooks <- t.writeback_hooks @ [ f ]

let set_writeback_hook t hook =
  t.writeback_hooks <- (match hook with None -> [] | Some f -> [ f ])

let reset_stats t = Array.iter zero_stats t.nstats

let fire_writeback t node ~line = List.iter (fun f -> f node ~line) t.writeback_hooks

let caches t node = t.nodes.(Node_id.index node)
let nstat t node = t.nstats.(Node_id.index node)
let l0_of t node = t.l0s.(Node_id.index node)

(* The one choke point for store-side L0 invalidation: every directory
   write in this module goes through here, so a transition out of M can
   never leave a stale [l0_store_m] bit. Runs in every mode — keeping the
   filters coherent even while the fast path is disabled means the mode
   can be flipped mid-run without a flush protocol. *)
let dir_set t node ~line state =
  if not (Mesi.equal state Mesi.M) then begin
    let f = (l0_of t node).l0d in
    let s = line land (l0_slots - 1) in
    if f.l0_lines.(s) = line then f.l0_store_m.(s) <- false
  end;
  Directory.set t.dir node ~line state

(* Drop a line from every private level of [node], maintaining the
   directory; returns whether the line was dirty (M). *)
let invalidate_private t node ~line =
  let c = caches t node in
  ignore (Level.invalidate c.l1i ~line);
  ignore (Level.invalidate c.l1d ~line);
  ignore (Level.invalidate c.l2 ~line);
  (match c.l3 with Some l3 -> ignore (Level.invalidate l3 ~line) | None -> ());
  let was_m = Mesi.equal (Directory.get t.dir node ~line) Mesi.M in
  dir_set t node ~line Mesi.I;
  was_m

(* Eviction from a node's coherence point (private L3, or L2 when the L3 is
   shared): back-invalidate upper levels, record write-backs. *)
let evict_from_coherence_point t node ~line =
  let c = caches t node in
  ignore (Level.invalidate c.l1i ~line);
  ignore (Level.invalidate c.l1d ~line);
  (match c.l3 with Some _ -> ignore (Level.invalidate c.l2 ~line) | None -> ());
  let s = nstat t node in
  if Mesi.equal (Directory.get t.dir node ~line) Mesi.M then begin
    s.writebacks <- s.writebacks + 1;
    fire_writeback t node ~line
  end;
  dir_set t node ~line Mesi.I

(* Eviction from the shared L3 invalidates both nodes' private copies
   (Back-Invalidate Snoop in CXL terms). *)
let evict_from_shared_l3 t ~line =
  List.iter
    (fun node ->
      if Directory.holds t.dir node ~line then begin
        let s = nstat t node in
        if invalidate_private t node ~line then begin
          s.writebacks <- s.writebacks + 1;
          fire_writeback t node ~line
        end;
        s.back_invalidations <- s.back_invalidations + 1
      end)
    Node_id.all

let insert_with_eviction t node level ~line ~coherence_point =
  match Level.insert_evict level ~line with
  | -1 -> ()
  | evicted ->
      if coherence_point then evict_from_coherence_point t node ~line:evicted
      else begin
        (* Inclusive hierarchy: dropping from L2 drops from the L1s too. *)
        let c = caches t node in
        ignore (Level.invalidate c.l1i ~line:evicted);
        ignore (Level.invalidate c.l1d ~line:evicted)
      end

let insert_shared_l3 t level ~line =
  match Level.insert_evict level ~line with
  | -1 -> ()
  | evicted -> evict_from_shared_l3 t ~line:evicted

(* Classify the memory behind [paddr] for [node] and count the fill. *)
let memory_fill_latency t node paddr =
  let lat = Config.latencies t.cfg node in
  let s = nstat t node in
  match Layout.locality t.cfg.Config.hw_model ~node paddr with
  | Layout.Local ->
      s.local_mem_hits <- s.local_mem_hits + 1;
      lat.Latency.mem
  | Layout.Remote ->
      if Layout.in_message_ring paddr then
        s.remote_shared_mem_hits <- s.remote_shared_mem_hits + 1
      else s.remote_mem_hits <- s.remote_mem_hits + 1;
      lat.Latency.remote_mem

let snoop_cost t node = function
  | Mesi.No_snoop -> 0
  | Mesi.Snoop_data ->
      let s = nstat t node in
      s.snoop_data <- s.snoop_data + 1;
      t.cfg.Config.cxl.Cxl.snoop_data
  | Mesi.Snoop_invalidate ->
      let s = nstat t node in
      s.snoop_invalidates <- s.snoop_invalidates + 1;
      t.cfg.Config.cxl.Cxl.snoop_invalidate

(* A store that hits a line this node already holds: M pays nothing, E
   upgrades silently, S runs the invalidating-upgrade transaction. A
   top-level function (not a closure) so the hot path allocates nothing. *)
let store_upgrade_cost t ~node ~other ~line =
  match Directory.get t.dir node ~line with
  | Mesi.M -> 0
  | Mesi.E ->
      dir_set t node ~line Mesi.M;
      0
  | Mesi.S ->
      let mine, theirs, snoop = Mesi.on_upgrade ~other:(Directory.get t.dir other ~line) in
      let cost = snoop_cost t node snoop in
      if Directory.holds t.dir other ~line then ignore (invalidate_private t other ~line);
      dir_set t node ~line mine;
      dir_set t other ~line theirs;
      cost
  | Mesi.I ->
      (* Hierarchy says present but directory says absent: impossible by
         construction (inclusive hierarchy + directory updated on every
         fill/eviction). *)
      assert false

let upgrade_cost t ~node ~other ~line kind =
  match kind with Ifetch | Load -> 0 | Store -> store_upgrade_cost t ~node ~other ~line

(* L0 lookup: the slot index when the filter can prove the reference
   answer (line L1-resident at the cached way; for stores, state still M),
   else -1. Pure — commits nothing, so Paranoid mode can use it as a
   prediction to check against the reference path. *)
let l0_probe t ~node kind ~line =
  let n = l0_of t node in
  let c = caches t node in
  let f, lvl = match kind with Ifetch -> (n.l0i, c.l1i) | Load | Store -> (n.l0d, c.l1d) in
  let s = line land (l0_slots - 1) in
  if
    f.l0_lines.(s) = line
    && Level.tag_at lvl f.l0_ways.(s) = line
    && match kind with Store -> f.l0_store_m.(s) | Ifetch | Load -> true
  then s
  else -1

(* Record an L1 hit in the filter. A store hit always leaves this node's
   state at M (M stays, E and S upgrade), so later stores to the line may
   skip the directory probe until [dir_set] sees the line leave M. *)
let l0_fill t ~node kind ~line ~way =
  let n = l0_of t node in
  let f = match kind with Ifetch -> n.l0i | Load | Store -> n.l0d in
  let s = line land (l0_slots - 1) in
  if f.l0_lines.(s) <> line then begin
    f.l0_lines.(s) <- line;
    f.l0_store_m.(s) <- false
  end;
  f.l0_ways.(s) <- way;
  match kind with Store -> f.l0_store_m.(s) <- true | Ifetch | Load -> ()

(* The reference path: the full 3-level MESI walk. [populate] feeds L1
   hits back into the L0 filter (disabled in Reference mode so that mode
   is exactly the pre-fast-path simulator). *)
let access_slow t ~node kind ~line ~paddr ~populate =
  let c = caches t node in
  let s = nstat t node in
  let other = Node_id.other node in
  let lat = Config.latencies t.cfg node in
  let l1 = match kind with Ifetch -> c.l1i | Load | Store -> c.l1d in
  (match kind with
  | Ifetch ->
      s.l1i_accesses <- s.l1i_accesses + 1;
      s.mem_accesses <- s.mem_accesses + 1
  | Load | Store ->
      s.l1d_accesses <- s.l1d_accesses + 1;
      s.mem_accesses <- s.mem_accesses + 1);
  let l1_way = Level.probe_way l1 ~line in
  if l1_way >= 0 then begin
    (match kind with
    | Ifetch -> s.l1i_hits <- s.l1i_hits + 1;
    | Load | Store -> s.l1d_hits <- s.l1d_hits + 1);
    let cost = lat.Latency.l1 + upgrade_cost t ~node ~other ~line kind in
    if populate then l0_fill t ~node kind ~line ~way:l1_way;
    cost
  end
  else begin
    s.l2_accesses <- s.l2_accesses + 1;
    if Level.probe c.l2 ~line then begin
      s.l2_hits <- s.l2_hits + 1;
      insert_with_eviction t node l1 ~line ~coherence_point:false;
      lat.Latency.l2 + upgrade_cost t ~node ~other ~line kind
    end
    else begin
      let l3_latency = match lat.Latency.l3 with Some v -> v | None -> lat.Latency.l2 in
      let hit_l3 =
        match (c.l3, t.shared_l3) with
        | Some l3, _ ->
            s.l3_accesses <- s.l3_accesses + 1;
            Level.probe l3 ~line
        | None, Some shared ->
            s.l3_accesses <- s.l3_accesses + 1;
            Level.probe shared ~line
        | None, None -> false
      in
      if hit_l3 then begin
        s.l3_hits <- s.l3_hits + 1;
        if t.shared_l3 <> None && not (Directory.holds t.dir node ~line) then begin
          (* First private fill from the shared L3: run the coherence
             transaction against the other node's private copies. *)
          let mine, theirs, snoop =
            match kind with
            | Ifetch | Load -> Mesi.on_read ~other:(Directory.get t.dir other ~line)
            | Store -> Mesi.on_write ~other:(Directory.get t.dir other ~line)
          in
          let snoop_c = snoop_cost t node snoop in
          (match snoop with
          | Mesi.Snoop_invalidate ->
              if Directory.holds t.dir other ~line then
                ignore (invalidate_private t other ~line)
          | Mesi.Snoop_data | Mesi.No_snoop -> ());
          dir_set t other ~line theirs;
          dir_set t node ~line mine;
          insert_with_eviction t node c.l2 ~line ~coherence_point:true;
          insert_with_eviction t node l1 ~line ~coherence_point:false;
          l3_latency + snoop_c
        end
        else begin
          let l2_is_coherence_point = c.l3 = None in
          insert_with_eviction t node c.l2 ~line ~coherence_point:l2_is_coherence_point;
          insert_with_eviction t node l1 ~line ~coherence_point:false;
          l3_latency + upgrade_cost t ~node ~other ~line kind
        end
      end
      else begin
        (* Full miss: coherence transaction + memory fill. *)
        let other_state = Directory.get t.dir other ~line in
        let mine, theirs, snoop =
          match kind with
          | Ifetch | Load -> Mesi.on_read ~other:other_state
          | Store -> Mesi.on_write ~other:other_state
        in
        let snoop_c = snoop_cost t node snoop in
        (match snoop with
        | Mesi.Snoop_invalidate ->
            if Directory.holds t.dir other ~line then
              ignore (invalidate_private t other ~line)
        | Mesi.Snoop_data | Mesi.No_snoop -> ());
        dir_set t other ~line theirs;
        let mem_lat = memory_fill_latency t node paddr in
        (match (c.l3, t.shared_l3) with
        | Some l3, _ -> insert_with_eviction t node l3 ~line ~coherence_point:true
        | None, Some shared -> insert_shared_l3 t shared ~line
        | None, None -> ());
        let l2_is_coherence_point = c.l3 = None in
        insert_with_eviction t node c.l2 ~line ~coherence_point:l2_is_coherence_point;
        insert_with_eviction t node l1 ~line ~coherence_point:false;
        dir_set t node ~line mine;
        mem_lat + snoop_c
      end
    end
  end

let kind_name = function Ifetch -> "ifetch" | Load -> "load" | Store -> "store"

let access t ~node kind ~paddr =
  (match t.probes with
  | [] -> ()
  | probes -> List.iter (fun f -> f node kind paddr) probes);
  let line = Addr.line_of paddr in
  match t.mode with
  | Reference -> access_slow t ~node kind ~line ~paddr ~populate:false
  | Fast ->
      (* The flattened form of [l0_probe] + a commit: an L0 hit applies the
         observable effects the reference path would have had for this L1
         hit — the same counter increments and the same LRU touch (same
         way, same tick advance) — and returns the same L1 latency. The
         unsafe array operations are in bounds by construction: [slot] is
         masked to the filter size, and every stored way index was a valid
         index into the (fixed-size) L1 tag store when recorded. *)
      let idx = Node_id.index node in
      let n = Array.unsafe_get t.l0s idx in
      let s = Array.unsafe_get t.nstats idx in
      let slot = line land (l0_slots - 1) in
      (match kind with
      | Ifetch ->
          let f = n.l0i in
          let way = Array.unsafe_get f.l0_ways slot in
          let v = (Array.unsafe_get t.nodes idx).l1i_v in
          if
            Array.unsafe_get f.l0_lines slot = line
            && Array.unsafe_get v.Level.v_tags way = line
          then begin
            s.l0_hits <- s.l0_hits + 1;
            s.l1i_accesses <- s.l1i_accesses + 1;
            s.mem_accesses <- s.mem_accesses + 1;
            s.l1i_hits <- s.l1i_hits + 1;
            let tk = v.Level.v_tick in
            tk := !tk + 1;
            Array.unsafe_set v.Level.v_stamp way !tk;
            Array.unsafe_get t.lat_l1 idx
          end
          else begin
            s.l0_misses <- s.l0_misses + 1;
            access_slow t ~node kind ~line ~paddr ~populate:true
          end
      | Load ->
          let f = n.l0d in
          let way = Array.unsafe_get f.l0_ways slot in
          let v = (Array.unsafe_get t.nodes idx).l1d_v in
          if
            Array.unsafe_get f.l0_lines slot = line
            && Array.unsafe_get v.Level.v_tags way = line
          then begin
            s.l0_hits <- s.l0_hits + 1;
            s.l1d_accesses <- s.l1d_accesses + 1;
            s.mem_accesses <- s.mem_accesses + 1;
            s.l1d_hits <- s.l1d_hits + 1;
            let tk = v.Level.v_tick in
            tk := !tk + 1;
            Array.unsafe_set v.Level.v_stamp way !tk;
            Array.unsafe_get t.lat_l1 idx
          end
          else begin
            s.l0_misses <- s.l0_misses + 1;
            access_slow t ~node kind ~line ~paddr ~populate:true
          end
      | Store ->
          (* As [Load], plus the store-M bit: state M means a store pays no
             upgrade and mutates no coherence state. *)
          let f = n.l0d in
          let way = Array.unsafe_get f.l0_ways slot in
          let v = (Array.unsafe_get t.nodes idx).l1d_v in
          if
            Array.unsafe_get f.l0_lines slot = line
            && Array.unsafe_get f.l0_store_m slot
            && Array.unsafe_get v.Level.v_tags way = line
          then begin
            s.l0_hits <- s.l0_hits + 1;
            s.l1d_accesses <- s.l1d_accesses + 1;
            s.mem_accesses <- s.mem_accesses + 1;
            s.l1d_hits <- s.l1d_hits + 1;
            let tk = v.Level.v_tick in
            tk := !tk + 1;
            Array.unsafe_set v.Level.v_stamp way !tk;
            Array.unsafe_get t.lat_l1 idx
          end
          else begin
            s.l0_misses <- s.l0_misses + 1;
            access_slow t ~node kind ~line ~paddr ~populate:true
          end)
  | Paranoid ->
      (* Cross-check: the L0 filter predicts, the reference path executes
         (so all model state evolves exactly as Reference mode), and any
         disagreement aborts the run at the first divergent access. *)
      let slot = l0_probe t ~node kind ~line in
      let s = nstat t node in
      if slot >= 0 then s.l0_hits <- s.l0_hits + 1 else s.l0_misses <- s.l0_misses + 1;
      let predicted =
        if slot < 0 then -1 else (Config.latencies t.cfg node).Latency.l1
      in
      let actual = access_slow t ~node kind ~line ~paddr ~populate:true in
      if predicted >= 0 && predicted <> actual then
        raise
          (Divergence
             (Printf.sprintf
                "L0 fast path diverges at paddr 0x%x (%s %s): predicted %d cycles, reference %d"
                paddr (Node_id.to_string node) (kind_name kind) predicted actual));
      actual

(* Raw window for the runner's fused memio fast path: the L0 filters, the
   L1 tag/LRU views and the per-node counter record, bundled per node.
   Only available when the fast engine is authoritative (mode = Fast) and
   no probes are registered — a probe must observe every access, which
   only [access] guarantees. Re-requested at every scheduling quantum (the
   runner rebuilds its memio then), so a mid-run [set_mode] or [add_probe]
   takes effect at the next quantum boundary at the latest; within a
   quantum the interpreter runs uninterrupted, so no observer can tell. *)
type fast_path = {
  fp_stats : node_stats;
  fp_lat_l1 : int;
  fp_slot_mask : int;
  fp_i_lines : int array;
  fp_i_ways : int array;
  fp_i_v : Level.view;
  fp_d_lines : int array;
  fp_d_ways : int array;
  fp_d_store_m : bool array;
  fp_d_v : Level.view;
}

let fast_path t ~node =
  match t.mode with
  | Fast when t.probes = [] ->
      let idx = Node_id.index node in
      let n = t.l0s.(idx) in
      let c = t.nodes.(idx) in
      Some
        {
          fp_stats = t.nstats.(idx);
          fp_lat_l1 = t.lat_l1.(idx);
          fp_slot_mask = l0_slots - 1;
          fp_i_lines = n.l0i.l0_lines;
          fp_i_ways = n.l0i.l0_ways;
          fp_i_v = c.l1i_v;
          fp_d_lines = n.l0d.l0_lines;
          fp_d_ways = n.l0d.l0_ways;
          fp_d_store_m = n.l0d.l0_store_m;
          fp_d_v = c.l1d_v;
        }
  | _ -> None

let fastpath_stats t =
  List.concat_map
    (fun node ->
      let s = nstat t node in
      let name c = Node_id.to_string node ^ "." ^ c in
      [ (name "l0_hits", s.l0_hits); (name "l0_misses", s.l0_misses) ])
    Node_id.all

let l0_hit_rate t node =
  let s = nstat t node in
  let total = s.l0_hits + s.l0_misses in
  if total = 0 then 0.0 else float_of_int s.l0_hits /. float_of_int total

(* Structural invariants; see the .mli. Iterates every resident line, so
   intended for tests, not hot paths. *)
let check_consistency t =
  let exception Bad of string in
  let fail fmt_str = Printf.ksprintf (fun s -> raise (Bad s)) fmt_str in
  try
    Directory.iter_lines t.dir ~f:(fun line ->
        List.iter
          (fun node ->
            let c = caches t node in
            let coherence_contains =
              match c.l3 with
              | Some l3 -> Level.contains l3 ~line
              | None -> Level.contains c.l2 ~line
            in
            let state = Directory.get t.dir node ~line in
            (match (state, coherence_contains) with
            | (Mesi.S | Mesi.E | Mesi.M), false ->
                fail "line 0x%x in directory (%c) but absent from %s hierarchy" line
                  (Mesi.to_char state) (Node_id.to_string node)
            | (Mesi.I | Mesi.S | Mesi.E | Mesi.M), _ -> ());
            (* Inclusion: an L1-resident line must be L2-resident, and an
               L2-resident line must sit at the private L3 if one exists. *)
            if
              (Level.contains c.l1i ~line || Level.contains c.l1d ~line)
              && not (Level.contains c.l2 ~line)
            then fail "L1 line 0x%x not in %s L2 (inclusion)" line (Node_id.to_string node);
            (match c.l3 with
            | Some l3 ->
                if Level.contains c.l2 ~line && not (Level.contains l3 ~line) then
                  fail "L2 line 0x%x not in %s L3 (inclusion)" line (Node_id.to_string node)
            | None -> ());
            (* A resident line must be known to the directory. *)
            if Level.contains c.l2 ~line && Mesi.equal state Mesi.I then
              fail "line 0x%x resident at %s but directory says I" line (Node_id.to_string node))
          Node_id.all;
        let writable node =
          match Directory.get t.dir node ~line with
          | Mesi.E | Mesi.M -> true
          | Mesi.S | Mesi.I -> false
        in
        if writable Node_id.X86 && writable Node_id.Arm then
          fail "line 0x%x writable on both nodes" line);
    Ok ()
  with Bad s -> Error s

let access_bytes t ~node kind ~paddr ~len =
  let first = Addr.line_base paddr in
  let lines = Addr.lines_spanned paddr ~len in
  let total = ref 0 in
  for i = 0 to lines - 1 do
    total := !total + access t ~node kind ~paddr:(first + (i * Addr.line_size))
  done;
  !total

let atomic_rmw t ~node ~paddr =
  access t ~node Store ~paddr + t.cfg.Config.cxl.Cxl.atomic_extra
