module Node_id = Stramash_sim.Node_id
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Latency = Stramash_mem.Latency

type kind = Ifetch | Load | Store

(* Mutable per-node counters: this module sits on the simulator's hottest
   path (one call per simulated instruction), so counters are plain record
   fields rather than string-keyed metrics. *)
type node_stats = {
  mutable l1i_hits : int;
  mutable l1i_accesses : int;
  mutable l1d_hits : int;
  mutable l1d_accesses : int;
  mutable l2_hits : int;
  mutable l2_accesses : int;
  mutable l3_hits : int;
  mutable l3_accesses : int;
  mutable local_mem_hits : int;
  mutable remote_mem_hits : int;
  mutable remote_shared_mem_hits : int;
  mutable writebacks : int;
  mutable back_invalidations : int;
  mutable snoop_data : int;
  mutable snoop_invalidates : int;
  mutable mem_accesses : int;
}

let fresh_stats () =
  {
    l1i_hits = 0;
    l1i_accesses = 0;
    l1d_hits = 0;
    l1d_accesses = 0;
    l2_hits = 0;
    l2_accesses = 0;
    l3_hits = 0;
    l3_accesses = 0;
    local_mem_hits = 0;
    remote_mem_hits = 0;
    remote_shared_mem_hits = 0;
    writebacks = 0;
    back_invalidations = 0;
    snoop_data = 0;
    snoop_invalidates = 0;
    mem_accesses = 0;
  }

let zero_stats s =
  s.l1i_hits <- 0;
  s.l1i_accesses <- 0;
  s.l1d_hits <- 0;
  s.l1d_accesses <- 0;
  s.l2_hits <- 0;
  s.l2_accesses <- 0;
  s.l3_hits <- 0;
  s.l3_accesses <- 0;
  s.local_mem_hits <- 0;
  s.remote_mem_hits <- 0;
  s.remote_shared_mem_hits <- 0;
  s.writebacks <- 0;
  s.back_invalidations <- 0;
  s.snoop_data <- 0;
  s.snoop_invalidates <- 0;
  s.mem_accesses <- 0

let stat_value s = function
  | "l1i_hits" -> s.l1i_hits
  | "l1i_accesses" -> s.l1i_accesses
  | "l1d_hits" -> s.l1d_hits
  | "l1d_accesses" -> s.l1d_accesses
  | "l2_hits" -> s.l2_hits
  | "l2_accesses" -> s.l2_accesses
  | "l3_hits" -> s.l3_hits
  | "l3_accesses" -> s.l3_accesses
  | "local_mem_hits" -> s.local_mem_hits
  | "remote_mem_hits" -> s.remote_mem_hits
  | "remote_shared_mem_hits" -> s.remote_shared_mem_hits
  | "writebacks" -> s.writebacks
  | "back_invalidations" -> s.back_invalidations
  | "snoop_data" -> s.snoop_data
  | "snoop_invalidates" -> s.snoop_invalidates
  | "mem_accesses" -> s.mem_accesses
  | name -> invalid_arg ("Cache_sim.stat: unknown counter " ^ name)

let stat_names =
  [
    "l1i_hits"; "l1i_accesses"; "l1d_hits"; "l1d_accesses"; "l2_hits"; "l2_accesses";
    "l3_hits"; "l3_accesses"; "local_mem_hits"; "remote_mem_hits"; "remote_shared_mem_hits";
    "writebacks"; "back_invalidations"; "snoop_data"; "snoop_invalidates"; "mem_accesses";
  ]

type node_caches = { l1i : Level.t; l1d : Level.t; l2 : Level.t; l3 : Level.t option }

type t = {
  cfg : Config.t;
  nodes : node_caches array;
  nstats : node_stats array;
  shared_l3 : Level.t option;
  dir : Directory.t;
  mutable probes : (Node_id.t -> kind -> int -> unit) list;
  mutable writeback_hooks : (Node_id.t -> line:int -> unit) list;
}

let create cfg =
  let make_node () =
    {
      l1i = Level.create cfg.Config.l1i;
      l1d = Level.create cfg.Config.l1d;
      l2 = Level.create cfg.Config.l2;
      l3 = (if cfg.Config.shared_l3 then None else Some (Level.create cfg.Config.l3));
    }
  in
  {
    cfg;
    nodes = [| make_node (); make_node () |];
    nstats = [| fresh_stats (); fresh_stats () |];
    shared_l3 = (if cfg.Config.shared_l3 then Some (Level.create cfg.Config.l3) else None);
    dir = Directory.create ();
    probes = [];
    writeback_hooks = [];
  }

let config t = t.cfg

let stats t =
  let reg = Metrics.registry () in
  List.iter
    (fun node ->
      let s = t.nstats.(Node_id.index node) in
      List.iter
        (fun name -> Metrics.set reg (Node_id.to_string node ^ "." ^ name) (stat_value s name))
        stat_names)
    Node_id.all;
  reg

let stat t node name = stat_value t.nstats.(Node_id.index node) name

let hit_rate t node level =
  let hits = stat t node (level ^ "_hits") in
  let accesses = stat t node (level ^ "_accesses") in
  if accesses = 0 then 0.0 else float_of_int hits /. float_of_int accesses

(* Observers chain: callers register independently (Cache.Trace, DSM, the
   obs layer) and all fire in registration order. [set_* None] clears
   every observer; [set_* (Some f)] resets the chain to just [f] — the
   historical single-slot behaviour, kept for existing call sites. *)
let add_probe t f = t.probes <- t.probes @ [ f ]

let set_probe t probe =
  t.probes <- (match probe with None -> [] | Some f -> [ f ])

let add_writeback_hook t f = t.writeback_hooks <- t.writeback_hooks @ [ f ]

let set_writeback_hook t hook =
  t.writeback_hooks <- (match hook with None -> [] | Some f -> [ f ])

let reset_stats t = Array.iter zero_stats t.nstats

let fire_writeback t node ~line = List.iter (fun f -> f node ~line) t.writeback_hooks

let caches t node = t.nodes.(Node_id.index node)
let nstat t node = t.nstats.(Node_id.index node)

(* Drop a line from every private level of [node], maintaining the
   directory; returns whether the line was dirty (M). *)
let invalidate_private t node ~line =
  let c = caches t node in
  ignore (Level.invalidate c.l1i ~line);
  ignore (Level.invalidate c.l1d ~line);
  ignore (Level.invalidate c.l2 ~line);
  (match c.l3 with Some l3 -> ignore (Level.invalidate l3 ~line) | None -> ());
  let was_m = Mesi.equal (Directory.get t.dir node ~line) Mesi.M in
  Directory.set t.dir node ~line Mesi.I;
  was_m

(* Eviction from a node's coherence point (private L3, or L2 when the L3 is
   shared): back-invalidate upper levels, record write-backs. *)
let evict_from_coherence_point t node ~line =
  let c = caches t node in
  ignore (Level.invalidate c.l1i ~line);
  ignore (Level.invalidate c.l1d ~line);
  (match c.l3 with Some _ -> ignore (Level.invalidate c.l2 ~line) | None -> ());
  let s = nstat t node in
  if Mesi.equal (Directory.get t.dir node ~line) Mesi.M then begin
    s.writebacks <- s.writebacks + 1;
    fire_writeback t node ~line
  end;
  Directory.set t.dir node ~line Mesi.I

(* Eviction from the shared L3 invalidates both nodes' private copies
   (Back-Invalidate Snoop in CXL terms). *)
let evict_from_shared_l3 t ~line =
  List.iter
    (fun node ->
      if Directory.holds t.dir node ~line then begin
        let s = nstat t node in
        if invalidate_private t node ~line then begin
          s.writebacks <- s.writebacks + 1;
          fire_writeback t node ~line
        end;
        s.back_invalidations <- s.back_invalidations + 1
      end)
    Node_id.all

let insert_with_eviction t node level ~line ~coherence_point =
  match Level.insert level ~line with
  | None -> ()
  | Some evicted ->
      if coherence_point then evict_from_coherence_point t node ~line:evicted
      else begin
        (* Inclusive hierarchy: dropping from L2 drops from the L1s too. *)
        let c = caches t node in
        ignore (Level.invalidate c.l1i ~line:evicted);
        ignore (Level.invalidate c.l1d ~line:evicted)
      end

let insert_shared_l3 t level ~line =
  match Level.insert level ~line with
  | None -> ()
  | Some evicted -> evict_from_shared_l3 t ~line:evicted

(* Classify the memory behind [paddr] for [node] and count the fill. *)
let memory_fill_latency t node paddr =
  let lat = Config.latencies t.cfg node in
  let s = nstat t node in
  match Layout.locality t.cfg.Config.hw_model ~node paddr with
  | Layout.Local ->
      s.local_mem_hits <- s.local_mem_hits + 1;
      lat.Latency.mem
  | Layout.Remote ->
      if Layout.in_message_ring paddr then
        s.remote_shared_mem_hits <- s.remote_shared_mem_hits + 1
      else s.remote_mem_hits <- s.remote_mem_hits + 1;
      lat.Latency.remote_mem

let snoop_cost t node = function
  | Mesi.No_snoop -> 0
  | Mesi.Snoop_data ->
      let s = nstat t node in
      s.snoop_data <- s.snoop_data + 1;
      t.cfg.Config.cxl.Cxl.snoop_data
  | Mesi.Snoop_invalidate ->
      let s = nstat t node in
      s.snoop_invalidates <- s.snoop_invalidates + 1;
      t.cfg.Config.cxl.Cxl.snoop_invalidate

let access t ~node kind ~paddr =
  (match t.probes with
  | [] -> ()
  | probes -> List.iter (fun f -> f node kind paddr) probes);
  let line = Addr.line_of paddr in
  let c = caches t node in
  let s = nstat t node in
  let other = Node_id.other node in
  let lat = Config.latencies t.cfg node in
  let l1 = match kind with Ifetch -> c.l1i | Load | Store -> c.l1d in
  (match kind with
  | Ifetch ->
      s.l1i_accesses <- s.l1i_accesses + 1;
      s.mem_accesses <- s.mem_accesses + 1
  | Load | Store ->
      s.l1d_accesses <- s.l1d_accesses + 1;
      s.mem_accesses <- s.mem_accesses + 1);
  (* A store that hits a Shared line needs an invalidating upgrade. *)
  let upgrade_cost () =
    match kind with
    | Ifetch | Load -> 0
    | Store -> (
        match Directory.get t.dir node ~line with
        | Mesi.M -> 0
        | Mesi.E ->
            Directory.set t.dir node ~line Mesi.M;
            0
        | Mesi.S ->
            let mine, theirs, snoop =
              Mesi.on_upgrade ~other:(Directory.get t.dir other ~line)
            in
            let cost = snoop_cost t node snoop in
            if Directory.holds t.dir other ~line then ignore (invalidate_private t other ~line);
            Directory.set t.dir node ~line mine;
            Directory.set t.dir other ~line theirs;
            cost
        | Mesi.I ->
            (* Hierarchy says present but directory says absent: impossible
               by construction (inclusive hierarchy + directory updated on
               every fill/eviction). *)
            assert false)
  in
  if Level.probe l1 ~line then begin
    (match kind with
    | Ifetch -> s.l1i_hits <- s.l1i_hits + 1
    | Load | Store -> s.l1d_hits <- s.l1d_hits + 1);
    lat.Latency.l1 + upgrade_cost ()
  end
  else begin
    s.l2_accesses <- s.l2_accesses + 1;
    if Level.probe c.l2 ~line then begin
      s.l2_hits <- s.l2_hits + 1;
      insert_with_eviction t node l1 ~line ~coherence_point:false;
      lat.Latency.l2 + upgrade_cost ()
    end
    else begin
      let l3_latency = match lat.Latency.l3 with Some v -> v | None -> lat.Latency.l2 in
      let hit_l3 =
        match (c.l3, t.shared_l3) with
        | Some l3, _ ->
            s.l3_accesses <- s.l3_accesses + 1;
            Level.probe l3 ~line
        | None, Some shared ->
            s.l3_accesses <- s.l3_accesses + 1;
            Level.probe shared ~line
        | None, None -> false
      in
      if hit_l3 then begin
        s.l3_hits <- s.l3_hits + 1;
        if t.shared_l3 <> None && not (Directory.holds t.dir node ~line) then begin
          (* First private fill from the shared L3: run the coherence
             transaction against the other node's private copies. *)
          let mine, theirs, snoop =
            match kind with
            | Ifetch | Load -> Mesi.on_read ~other:(Directory.get t.dir other ~line)
            | Store -> Mesi.on_write ~other:(Directory.get t.dir other ~line)
          in
          let snoop_c = snoop_cost t node snoop in
          (match snoop with
          | Mesi.Snoop_invalidate ->
              if Directory.holds t.dir other ~line then
                ignore (invalidate_private t other ~line)
          | Mesi.Snoop_data | Mesi.No_snoop -> ());
          Directory.set t.dir other ~line theirs;
          Directory.set t.dir node ~line mine;
          insert_with_eviction t node c.l2 ~line ~coherence_point:true;
          insert_with_eviction t node l1 ~line ~coherence_point:false;
          l3_latency + snoop_c
        end
        else begin
          let l2_is_coherence_point = c.l3 = None in
          insert_with_eviction t node c.l2 ~line ~coherence_point:l2_is_coherence_point;
          insert_with_eviction t node l1 ~line ~coherence_point:false;
          l3_latency + upgrade_cost ()
        end
      end
      else begin
        (* Full miss: coherence transaction + memory fill. *)
        let other_state = Directory.get t.dir other ~line in
        let mine, theirs, snoop =
          match kind with
          | Ifetch | Load -> Mesi.on_read ~other:other_state
          | Store -> Mesi.on_write ~other:other_state
        in
        let snoop_c = snoop_cost t node snoop in
        (match snoop with
        | Mesi.Snoop_invalidate ->
            if Directory.holds t.dir other ~line then
              ignore (invalidate_private t other ~line)
        | Mesi.Snoop_data | Mesi.No_snoop -> ());
        Directory.set t.dir other ~line theirs;
        let mem_lat = memory_fill_latency t node paddr in
        (match (c.l3, t.shared_l3) with
        | Some l3, _ -> insert_with_eviction t node l3 ~line ~coherence_point:true
        | None, Some shared -> insert_shared_l3 t shared ~line
        | None, None -> ());
        let l2_is_coherence_point = c.l3 = None in
        insert_with_eviction t node c.l2 ~line ~coherence_point:l2_is_coherence_point;
        insert_with_eviction t node l1 ~line ~coherence_point:false;
        Directory.set t.dir node ~line mine;
        mem_lat + snoop_c
      end
    end
  end

(* Structural invariants; see the .mli. Iterates every resident line, so
   intended for tests, not hot paths. *)
let check_consistency t =
  let exception Bad of string in
  let fail fmt_str = Printf.ksprintf (fun s -> raise (Bad s)) fmt_str in
  try
    Directory.iter_lines t.dir ~f:(fun line ->
        List.iter
          (fun node ->
            let c = caches t node in
            let coherence_contains =
              match c.l3 with
              | Some l3 -> Level.contains l3 ~line
              | None -> Level.contains c.l2 ~line
            in
            let state = Directory.get t.dir node ~line in
            (match (state, coherence_contains) with
            | (Mesi.S | Mesi.E | Mesi.M), false ->
                fail "line 0x%x in directory (%c) but absent from %s hierarchy" line
                  (Mesi.to_char state) (Node_id.to_string node)
            | (Mesi.I | Mesi.S | Mesi.E | Mesi.M), _ -> ());
            (* Inclusion: an L1-resident line must be L2-resident, and an
               L2-resident line must sit at the private L3 if one exists. *)
            if
              (Level.contains c.l1i ~line || Level.contains c.l1d ~line)
              && not (Level.contains c.l2 ~line)
            then fail "L1 line 0x%x not in %s L2 (inclusion)" line (Node_id.to_string node);
            (match c.l3 with
            | Some l3 ->
                if Level.contains c.l2 ~line && not (Level.contains l3 ~line) then
                  fail "L2 line 0x%x not in %s L3 (inclusion)" line (Node_id.to_string node)
            | None -> ());
            (* A resident line must be known to the directory. *)
            if Level.contains c.l2 ~line && Mesi.equal state Mesi.I then
              fail "line 0x%x resident at %s but directory says I" line (Node_id.to_string node))
          Node_id.all;
        let writable node =
          match Directory.get t.dir node ~line with
          | Mesi.E | Mesi.M -> true
          | Mesi.S | Mesi.I -> false
        in
        if writable Node_id.X86 && writable Node_id.Arm then
          fail "line 0x%x writable on both nodes" line);
    Ok ()
  with Bad s -> Error s

let access_bytes t ~node kind ~paddr ~len =
  let first = Addr.line_base paddr in
  let lines = Addr.lines_spanned paddr ~len in
  let total = ref 0 in
  for i = 0 to lines - 1 do
    total := !total + access t ~node kind ~paddr:(first + (i * Addr.line_size))
  done;
  !total

let atomic_rmw t ~node ~paddr =
  access t ~node Store ~paddr + t.cfg.Config.cxl.Cxl.atomic_extra
