module Node_id = Stramash_sim.Node_id
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr

(* A tree-PLRU set-associative array — the pseudo-LRU replacement Ruby's
   cache models use, deliberately distinct from Level.t's exact LRU so the
   two models are genuinely independent implementations of the same
   protocol. The per-set bit tree has [ways - 1] internal nodes; accesses
   flip the bits on their path to point away, victims follow the bits. *)
module Plru_array = struct
  type t = { sets : int; ways : int; tags : int array; bits : bool array }

  let create (g : Config.geometry) =
    let sets = Config.sets g in
    assert (g.ways land (g.ways - 1) = 0);
    {
      sets;
      ways = g.ways;
      tags = Array.make (sets * g.ways) (-1);
      bits = Array.make (sets * g.ways) false (* ways-1 used per set *);
    }

  let find t line =
    let base = line land (t.sets - 1) * t.ways in
    let rec scan w =
      if w >= t.ways then -1 else if t.tags.(base + w) = line then base + w else scan (w + 1)
    in
    scan 0

  (* Flip the tree bits so that [way] becomes the protected (most recently
     used) leaf of its set. *)
  let touch t set way =
    let bbase = set * t.ways in
    let rec go node lo hi =
      if hi - lo > 1 then begin
        let mid = (lo + hi) / 2 in
        if way < mid then begin
          t.bits.(bbase + node) <- true (* true = victim on the right *);
          go ((2 * node) + 1) lo mid
        end
        else begin
          t.bits.(bbase + node) <- false;
          go ((2 * node) + 2) mid hi
        end
      end
    in
    go 0 0 t.ways

  let victim_way t set =
    let bbase = set * t.ways in
    let rec go node lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.bits.(bbase + node) then go ((2 * node) + 2) mid hi
        else go ((2 * node) + 1) lo mid
      end
    in
    go 0 0 t.ways

  let contains t line =
    let idx = find t line in
    if idx >= 0 then begin
      let set = line land (t.sets - 1) in
      touch t set (idx - (set * t.ways));
      true
    end
    else false

  let insert t line =
    let set = line land (t.sets - 1) in
    let base = set * t.ways in
    let rec empty w =
      if w >= t.ways then -1 else if t.tags.(base + w) = -1 then w else empty (w + 1)
    in
    let w = match empty 0 with -1 -> victim_way t set | w -> w in
    let evicted = t.tags.(base + w) in
    t.tags.(base + w) <- line;
    touch t set w;
    if evicted = -1 then None else Some evicted

  let invalidate t line =
    let idx = find t line in
    if idx >= 0 then t.tags.(idx) <- -1
end

module Fifo_array = Plru_array

type node_side = { l1i : Fifo_array.t; l1d : Fifo_array.t; l2 : Fifo_array.t; l3 : Fifo_array.t }

type t = { cfg : Config.t; sides : node_side array; owner : (int, int) Hashtbl.t; stats : Metrics.registry }
(* [owner] maps a line to a bitmask of nodes holding it, with bit 2 set when
   some node holds it writable; enough state for hit-rate equivalence. *)

let create cfg =
  let side () =
    {
      l1i = Fifo_array.create cfg.Config.l1i;
      l1d = Fifo_array.create cfg.Config.l1d;
      l2 = Fifo_array.create cfg.Config.l2;
      l3 = Fifo_array.create cfg.Config.l3;
    }
  in
  { cfg; sides = [| side (); side () |]; owner = Hashtbl.create 4096; stats = Metrics.registry () }

let stats t = t.stats
let key node name = Node_id.to_string node ^ "." ^ name
let bump t node name = Metrics.incr t.stats (key node name)

let hit_rate t node level =
  let hits = Metrics.get t.stats (key node (level ^ "_hits")) in
  let accesses = Metrics.get t.stats (key node (level ^ "_accesses")) in
  if accesses = 0 then 0.0 else float_of_int hits /. float_of_int accesses

let drop_node t node line =
  let s = t.sides.(Node_id.index node) in
  Fifo_array.invalidate s.l1i line;
  Fifo_array.invalidate s.l1d line;
  Fifo_array.invalidate s.l2 line;
  Fifo_array.invalidate s.l3 line;
  let mask = match Hashtbl.find_opt t.owner line with Some m -> m | None -> 0 in
  let mask = mask land lnot (1 lsl Node_id.index node) in
  if mask land 3 = 0 then Hashtbl.remove t.owner line else Hashtbl.replace t.owner line (mask land 3)

(* Strictly inclusive: inserting at an upper level never bypasses lower
   ones, and an L3 eviction recalls the line from L2/L1. *)
let fill t node line =
  let s = t.sides.(Node_id.index node) in
  (match Fifo_array.insert s.l3 line with
  | Some evicted ->
      Fifo_array.invalidate s.l2 evicted;
      Fifo_array.invalidate s.l1i evicted;
      Fifo_array.invalidate s.l1d evicted;
      let mask = match Hashtbl.find_opt t.owner evicted with Some m -> m | None -> 0 in
      let mask = mask land lnot (1 lsl Node_id.index node) in
      if mask land 3 = 0 then Hashtbl.remove t.owner evicted else Hashtbl.replace t.owner evicted mask
  | None -> ());
  (match Fifo_array.insert s.l2 line with
  | Some evicted ->
      Fifo_array.invalidate s.l1i evicted;
      Fifo_array.invalidate s.l1d evicted
  | None -> ())

let fill_l1 t node kind line =
  let s = t.sides.(Node_id.index node) in
  let l1 = match kind with Cache_sim.Ifetch -> s.l1i | Cache_sim.Load | Cache_sim.Store -> s.l1d in
  ignore (Fifo_array.insert l1 line)

let access t ~node kind ~paddr =
  let line = Addr.line_of paddr in
  let s = t.sides.(Node_id.index node) in
  let l1, l1name =
    match kind with
    | Cache_sim.Ifetch -> (s.l1i, "l1i")
    | Cache_sim.Load | Cache_sim.Store -> (s.l1d, "l1d")
  in
  (* Writes by the other node invalidate our copies before our next access
     sees them; model this eagerly on each write. *)
  (match kind with
  | Cache_sim.Store ->
      let other = Node_id.other node in
      let omask = match Hashtbl.find_opt t.owner line with Some m -> m | None -> 0 in
      if omask land (1 lsl Node_id.index other) <> 0 then drop_node t other line
  | Cache_sim.Ifetch | Cache_sim.Load -> ());
  bump t node (l1name ^ "_accesses");
  if Fifo_array.contains l1 line then bump t node (l1name ^ "_hits")
  else begin
    bump t node "l2_accesses";
    if Fifo_array.contains s.l2 line then begin
      bump t node "l2_hits";
      fill_l1 t node kind line
    end
    else begin
      bump t node "l3_accesses";
      if Fifo_array.contains s.l3 line then begin
        bump t node "l3_hits";
        (match Fifo_array.insert s.l2 line with
        | Some evicted ->
            Fifo_array.invalidate s.l1i evicted;
            Fifo_array.invalidate s.l1d evicted
        | None -> ());
        fill_l1 t node kind line
      end
      else begin
        fill t node line;
        fill_l1 t node kind line
      end
    end
  end;
  let mask = match Hashtbl.find_opt t.owner line with Some m -> m | None -> 0 in
  Hashtbl.replace t.owner line (mask lor (1 lsl Node_id.index node))
