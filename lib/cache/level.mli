(** One set-associative cache level with LRU replacement.

    Lines are identified by their line number (physical address lsr 6);
    tags store the full line number, which wastes no simulated state and
    keeps lookups trivially correct. *)

type t

type view = private { v_tags : int array; v_stamp : int array; v_tick : int ref }
(** Raw window onto the live tag store and LRU clock, for the Fast engine's
    flattened hit path. Readers may compare [v_tags.(i)]; the only
    permitted mutation is the exact LRU touch
    [incr v_tick; v_stamp.(i) <- !v_tick] on a verified hit — anything
    else belongs in this module. *)

val create : Config.geometry -> t

val view : t -> view
(** The level's live arrays; aliases, never copies. *)

val probe : t -> line:int -> bool
(** Lookup; on hit, refreshes the line's LRU position. *)

val probe_way : t -> line:int -> int
(** [probe] that returns the hit's index into the tag store (for later
    {!touch_way} / {!tag_at} revalidation by the L0 line filter), or -1 on
    a miss. Touches LRU exactly as {!probe} does on a hit. *)

val tag_at : t -> int -> int
(** Tag currently stored at an index returned by {!probe_way}; -1 when
    the way is invalid. The L0 filter compares this against its cached
    line to detect eviction/invalidation without any hook traffic. *)

val touch_way : t -> int -> unit
(** Refresh LRU at a known index — must only be used when [tag_at] equals
    the line being accessed, in which case it is exactly the touch that
    {!probe} would have performed. *)

val contains : t -> line:int -> bool
(** Lookup without touching replacement state. *)

val insert : t -> line:int -> int option
(** Insert a line (must not already be present); returns the evicted line,
    if the chosen way held one. *)

val insert_evict : t -> line:int -> int
(** Allocation-free [insert] for the per-access fill path: returns the
    evicted line, or -1 when an invalid way absorbed the fill. Identical
    victim choice and LRU effects; skips [insert]'s absence assertion, so
    callers must only fill after a failed probe. *)

val invalidate : t -> line:int -> bool
(** Drop a line; returns whether it was present. *)

val capacity_lines : t -> int
val occupied : t -> int
