(** One set-associative cache level with LRU replacement.

    Lines are identified by their line number (physical address lsr 6);
    tags store the full line number, which wastes no simulated state and
    keeps lookups trivially correct. *)

type t

val create : Config.geometry -> t

val probe : t -> line:int -> bool
(** Lookup; on hit, refreshes the line's LRU position. *)

val contains : t -> line:int -> bool
(** Lookup without touching replacement state. *)

val insert : t -> line:int -> int option
(** Insert a line (must not already be present); returns the evicted line,
    if the chosen way held one. *)

val invalidate : t -> line:int -> bool
(** Drop a line; returns whether it was present. *)

val capacity_lines : t -> int
val occupied : t -> int
