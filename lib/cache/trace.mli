(** Memory-access traces: recorded from {!Cache_sim} via its probe hook and
    replayed into the {!Ruby_ref} reference model for the Fig. 8 validation
    (both models must see the identical access stream). *)

type entry = { node : Stramash_sim.Node_id.t; kind : Cache_sim.kind; paddr : int }
type t

val create : unit -> t
val record : t -> Stramash_sim.Node_id.t -> Cache_sim.kind -> int -> unit
val length : t -> int
val iter : t -> f:(entry -> unit) -> unit

val attach : t -> Cache_sim.t -> unit
(** Install this trace as the cache simulator's probe. *)

val replay_into_ruby : t -> Ruby_ref.t -> unit
