type t = {
  snoop_data : int;
  snoop_invalidate : int;
  back_invalidate : int;
  atomic_extra : int;
}

(* Round-trip snoop on a CXL link is of the same order as a remote memory
   access minus the DRAM access itself; we use ~80ns (168 cycles) for data
   snoops and slightly less for pure invalidations, in line with the
   CXL-latency discussion the paper cites (Sharma, IEEE Micro 2023). *)
let default =
  { snoop_data = 170; snoop_invalidate = 130; back_invalidate = 130; atomic_extra = 20 }

let zero = { snoop_data = 0; snoop_invalidate = 0; back_invalidate = 0; atomic_extra = 0 }
