(** MESI coherence states and the two-node transition rules used by both
    cache models (pure functions; the stateful directory lives in
    {!Directory}). *)

type state = I | S | E | M

val to_char : state -> char
val equal : state -> state -> bool

type snoop = No_snoop | Snoop_data | Snoop_invalidate
(** Coherence action a requester must perform against the other node,
    per the paper's CXL model (§7.3). *)

val on_read : other:state -> state * state * snoop
(** [on_read ~other] is [(requester', other', snoop)] for a read miss /
    fill at the requester when the other node's state is [other]. *)

val on_write : other:state -> state * state * snoop
(** Same for a write (read-for-ownership). *)

val on_upgrade : other:state -> state * state * snoop
(** A write that hits a line the requester holds in [S]. *)
