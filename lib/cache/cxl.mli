(** CXL coherence-traffic overheads (paper §7.3, "CXL Access Overhead
    Feedback"), in cycles.

    The paper models the extra delay of SNOOP messages and responses used by
    CXL 3.0 to keep replicas coherent across hosts: Snoop Invalidate (a
    writer forces other holders to drop the line), Snoop Data (a reader
    demotes a remote Exclusive/Modified copy to Shared), and Back-Invalidate
    Snoop (inclusion-driven invalidation from the pool device). *)

type t = {
  snoop_data : int;
  snoop_invalidate : int;
  back_invalidate : int;
  atomic_extra : int; (* extra cost of an atomic read-modify-write *)
}

val default : t
val zero : t
(** No coherence overhead; used in ablations. *)
