(** Cross-node coherence directory.

    Tracks, per cache line, the MESI state each node's private hierarchy
    holds the line in. This is the simulator's stand-in for the CXL 3.0
    inter-host MESI protocol state (paper §3, §7.3). *)

type t

val create : unit -> t
val get : t -> Stramash_sim.Node_id.t -> line:int -> Mesi.state
val set : t -> Stramash_sim.Node_id.t -> line:int -> Mesi.state -> unit
val holds : t -> Stramash_sim.Node_id.t -> line:int -> bool
(** State is not [I]. *)

val tracked_lines : t -> int

val iter_lines : t -> f:(int -> unit) -> unit
(** Visit every line with a non-[I] state on some node. *)
