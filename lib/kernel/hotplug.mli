(** Memory hotplug: offlining/onlining memory slices (paper §6.3, Table 4).

    Stramash-Linux's global allocator is built on a modified hotplug path:
    hot-remove evacuates a block and isolates its pages rather than
    unplugging. Offline/online walk every page of the slice (isolation,
    struct-page init); the per-page and fixed costs are calibrated to the
    paper's Table 4 measurements, with the x86 kernel's offline path
    notably more expensive per page than Arm's. *)

type op_result = { cycles : int; pages : int }

val offline :
  Frame_alloc.t ->
  Stramash_mem.Layout.region ->
  isa:Stramash_sim.Node_id.t ->
  rng:Stramash_sim.Rng.t ->
  (op_result, [ `Pages_in_use of int ]) result
(** Evacuation is the caller's job (the global allocator evicts first);
    offlining a slice with live pages fails. *)

val online :
  Frame_alloc.t ->
  Stramash_mem.Layout.region ->
  isa:Stramash_sim.Node_id.t ->
  rng:Stramash_sim.Rng.t ->
  op_result

val offline_cost_model : isa:Stramash_sim.Node_id.t -> pages:int -> float
(** Deterministic mean cost in milliseconds (Table 4 calibration). *)

val online_cost_model : isa:Stramash_sim.Node_id.t -> pages:int -> float
