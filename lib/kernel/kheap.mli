(** Kernel-heap address assignment.

    Kernel objects that other kernels may touch remotely (VMA structs,
    lock words, futex buckets, message headers) are given real physical
    addresses inside the owning kernel's memory, so that remote accessor
    functions incur honest cache/memory costs. A bump allocator over
    frames from the kernel's frame allocator is all that is needed — these
    objects are never freed individually in our runs. *)

type t

val create : alloc_frame:(unit -> int) -> t
val alloc : t -> bytes:int -> int
(** Line-aligned when [bytes >= 64]; 8-byte aligned otherwise. *)

val alloc_line : t -> int
(** A dedicated cache line (lock words, counters). *)

val bytes_used : t -> int
