type mm = { vmas : Vma.set; pgtable : Page_table.t; ptl_addr : int }

type t = {
  pid : int;
  origin : Stramash_sim.Node_id.t;
  mir : Stramash_isa.Mir.program;
  images : (Stramash_sim.Node_id.t * Stramash_isa.Machine.program) list;
  mutable mms : (Stramash_sim.Node_id.t * mm) list;
  mutable next_tid : int;
}

let create ~pid ~origin ~mir ~images = { pid; origin; mir; images; mms = []; next_tid = 0 }

let image t node = List.assoc node t.images
let mm t node = List.assoc_opt node t.mms

let mm_exn t node =
  match mm t node with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "process %d has no mm on %s" t.pid (Stramash_sim.Node_id.to_string node))

let add_mm t node m =
  assert (mm t node = None);
  t.mms <- (node, m) :: t.mms

let remove_mm t node = t.mms <- List.remove_assoc node t.mms

let set_mm t node m = t.mms <- (node, m) :: List.remove_assoc node t.mms

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid
