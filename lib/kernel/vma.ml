module Addr = Stramash_mem.Addr

type kind = Code | Data | Heap | Stack | Anon

type t = {
  v_start : int;
  v_end : int;
  kind : kind;
  writable : bool;
  struct_addr : int;
}

let kind_to_string = function
  | Code -> "code"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"
  | Anon -> "anon"

let contains t vaddr = vaddr >= t.v_start && vaddr < t.v_end
let pages t = (t.v_end - t.v_start + Addr.page_size - 1) / Addr.page_size

type set = { tree : t Rbtree.t; alloc_struct : unit -> int; lock_addr : int }

let create_set ~alloc_struct = { tree = Rbtree.create (); alloc_struct; lock_addr = alloc_struct () }

let lock_addr set = set.lock_addr

let overlaps set ~start ~end_ =
  (* A neighbour starting before [end_] whose end exceeds [start]. *)
  match Rbtree.find_floor set.tree ~key:(end_ - 1) with
  | Some (_, vma) when vma.v_end > start -> true
  | Some _ | None -> false

let add set ~start ~end_ kind ~writable =
  if start >= end_ then invalid_arg "Vma.add: empty range";
  if overlaps set ~start ~end_ then invalid_arg "Vma.add: overlapping VMA";
  let vma = { v_start = start; v_end = end_; kind; writable; struct_addr = set.alloc_struct () } in
  Rbtree.insert set.tree ~key:start vma;
  vma

let remove set ~start = Rbtree.remove set.tree ~key:start

let find ?visit set ~vaddr =
  match Rbtree.find_floor ?visit set.tree ~key:vaddr with
  | Some (_, vma) when contains vma vaddr -> Some vma
  | Some _ | None -> None

let iter set ~f = Rbtree.iter set.tree ~f:(fun _ vma -> f vma)
let count set = Rbtree.size set.tree
