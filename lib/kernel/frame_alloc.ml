module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout

type region_state = {
  region : Layout.region;
  mutable cursor : int; (* next never-allocated paddr *)
  mutable live : bool; (* false once removed *)
  mutable allocated : int; (* frames currently out *)
}

type t = {
  name : string;
  mutable regions : region_state list;
  recycled : int Stack.t; (* freed frames awaiting reuse *)
  allocated_set : (int, unit) Hashtbl.t;
}

let create ~name = { name; regions = []; recycled = Stack.create (); allocated_set = Hashtbl.create 1024 }

let frames_in r = Layout.region_size r / Addr.page_size

let add_region t region =
  assert (Addr.is_page_aligned region.Layout.lo && Addr.is_page_aligned region.Layout.hi);
  t.regions <- t.regions @ [ { region; cursor = region.Layout.lo; live = true; allocated = 0 } ]

let state_of t paddr =
  List.find_opt (fun rs -> rs.live && Layout.region_contains rs.region paddr) t.regions

let remove_region t region =
  match
    List.find_opt (fun rs -> rs.live && rs.region.Layout.lo = region.Layout.lo && rs.region.Layout.hi = region.Layout.hi) t.regions
  with
  | None -> invalid_arg (t.name ^ ": remove_region: unknown region")
  | Some rs ->
      if rs.allocated > 0 then Error (`Pages_in_use rs.allocated)
      else begin
        rs.live <- false;
        (* Recycled frames from this region are skipped lazily in alloc. *)
        Ok ()
      end

let rec alloc t =
  match Stack.pop_opt t.recycled with
  | Some paddr -> (
      match state_of t paddr with
      | None -> alloc t (* region since removed *)
      | Some rs ->
          rs.allocated <- rs.allocated + 1;
          Hashtbl.replace t.allocated_set paddr ();
          Some paddr)
  | None ->
      let rec scan = function
        | [] -> None
        | rs :: rest ->
            if rs.live && rs.cursor < rs.region.Layout.hi then begin
              let paddr = rs.cursor in
              rs.cursor <- rs.cursor + Addr.page_size;
              rs.allocated <- rs.allocated + 1;
              Hashtbl.replace t.allocated_set paddr ();
              Some paddr
            end
            else scan rest
      in
      scan t.regions

let alloc_exn t =
  match alloc t with
  | Some paddr -> paddr
  | None -> failwith (t.name ^ ": out of physical frames")

let free t paddr =
  if not (Hashtbl.mem t.allocated_set paddr) then
    invalid_arg (Printf.sprintf "%s: free of unallocated frame 0x%x" t.name paddr);
  Hashtbl.remove t.allocated_set paddr;
  (match state_of t paddr with
  | Some rs -> rs.allocated <- rs.allocated - 1
  | None -> () (* region was force-removed; frame just disappears *));
  Stack.push paddr t.recycled

let is_allocated t paddr = Hashtbl.mem t.allocated_set paddr
let owns_address t paddr = state_of t paddr <> None

let total_frames t =
  List.fold_left (fun acc rs -> if rs.live then acc + frames_in rs.region else acc) 0 t.regions

let used_frames t = Hashtbl.length t.allocated_set
let free_frames t = total_frames t - used_frames t

let pressure t =
  let total = total_frames t in
  if total = 0 then 1.0 else float_of_int (used_frames t) /. float_of_int total
