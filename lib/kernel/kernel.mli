(** A kernel instance: the per-node monolithic kernel state.

    Booting follows the paper's §6.1: the instance discovers everything
    but initialises only its own private memory; pool memory arrives later
    through the global allocator. *)

type t = {
  node : Stramash_sim.Node_id.t;
  frames : Frame_alloc.t;
  kheap : Kheap.t;
  futexes : Futex.t;
  ns : Namespace.set;
  phys : Stramash_mem.Phys_mem.t;
  stats : Stramash_sim.Metrics.registry;
}

val boot : node:Stramash_sim.Node_id.t -> phys:Stramash_mem.Phys_mem.t -> t
(** Initialise a kernel owning its private boot region (Fig. 4). *)

val alloc_table_page : t -> int
(** A zeroed frame for a page-table page. *)

val alloc_frame_exn : t -> int
val owns : t -> int -> bool
(** Whether a physical address lies in memory this kernel allocates from. *)
