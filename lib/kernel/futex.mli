(** Kernel futex subsystem (paper §6.5).

    A futex is a 32-bit word in user memory; the kernel keeps hash buckets
    of waiter queues keyed by the futex address. Each bucket struct has a
    kernel-heap physical address so both the origin-managed protocol
    (Popcorn) and direct remote list access (Stramash) charge honest
    memory costs when touching it. Blocking/waking policy lives in the OS
    personality; this module is the shared bucket mechanism. *)

type t

val create : alloc_struct:(unit -> int) -> t

val bucket_addr : t -> uaddr:int -> int
(** Physical address of the bucket struct for a futex (created on first
    use). *)

val enqueue_waiter : t -> uaddr:int -> tid:int -> unit
val dequeue_waiter : t -> uaddr:int -> int option
(** FIFO wake order. *)

val remove_waiter : t -> uaddr:int -> tid:int -> bool
val waiter_count : t -> uaddr:int -> int
val buckets : t -> int

val snapshot : t -> (int * int list) list
(** All non-empty buckets as [(uaddr, waiters)] sorted by address, waiters
    in FIFO order — the deterministic view checkpoints and audits consume. *)

val drain : t -> uaddr:int -> int list
(** Remove and return every waiter queued on [uaddr], FIFO order. *)

val clear : t -> unit
(** Empty every waiter queue (bucket structs and their kernel-heap
    addresses are kept: they are identity, not state). *)

val iter_waiters : t -> f:(uaddr:int -> tid:int -> unit) -> unit
