module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Trace = Stramash_obs.Trace

type t = { isa : Node_id.t; root : int; mutable table_pages : int }

type io = {
  phys : Phys_mem.t;
  charge_read : int -> unit;
  charge_write : int -> unit;
  alloc_table : unit -> int;
}

let levels = 5
let index_bits = 9
let entries = 1 lsl index_bits

let create ~isa io =
  let root = io.alloc_table () in
  { isa; root; table_pages = 1 }

let isa t = t.isa
let root t = t.root

(* Level [levels-1] is the root, level 0 holds leaf PTEs. *)
let index_at ~level vaddr = (vaddr lsr (Addr.page_shift + (index_bits * level))) land (entries - 1)

let entry_addr table_paddr idx = table_paddr + (idx * 8)

let read_entry io paddr =
  io.charge_read paddr;
  Phys_mem.read_u64 io.phys paddr

let write_entry io paddr v =
  io.charge_write paddr;
  Phys_mem.write_u64 io.phys paddr v

(* Directory entries use the same per-ISA encoding as leaves. *)
let decode_dir t v = Option.map fst (Pte.decode ~isa:t.isa v)

(* Descend to the table that holds the leaf entry. [alloc] controls whether
   missing directories are created. Returns the leaf table's paddr. *)
let rec descend t io ~level ~table ~vaddr ~alloc =
  if level = 0 then Some table
  else begin
    let slot = entry_addr table (index_at ~level vaddr) in
    let raw = read_entry io slot in
    match decode_dir t raw with
    | Some frame -> descend t io ~level:(level - 1) ~table:(frame lsl Addr.page_shift) ~vaddr ~alloc
    | None ->
        if not alloc then None
        else begin
          (* Directory allocation is rare enough to record every time. No
             meter in scope: the event inherits the node and clock of the
             innermost open span (the fault handler driving us). *)
          if Trace.enabled () then
            Trace.instant ~subsys:"page_table" ~op:"alloc_table"
              ~tags:[ ("level", string_of_int level) ]
              ();
          let fresh = io.alloc_table () in
          t.table_pages <- t.table_pages + 1;
          let entry =
            Pte.encode ~isa:t.isa ~frame:(fresh lsr Addr.page_shift) Pte.default_flags
          in
          write_entry io slot entry;
          descend t io ~level:(level - 1) ~table:fresh ~vaddr ~alloc
        end
  end

let leaf_entry_paddr t io ~vaddr =
  match descend t io ~level:(levels - 1) ~table:t.root ~vaddr ~alloc:false with
  | None -> None
  | Some table -> Some (entry_addr table (index_at ~level:0 vaddr))

let walk_raw t io ~vaddr =
  match leaf_entry_paddr t io ~vaddr with
  | None -> None
  | Some slot ->
      let raw = read_entry io slot in
      if Pte.decode ~isa:t.isa raw = None then None else Some raw

let walk t io ~vaddr =
  let result =
    match leaf_entry_paddr t io ~vaddr with
    | None -> None
    | Some slot -> Pte.decode ~isa:t.isa (read_entry io slot)
  in
  (* Only non-present walks are recorded: hit-path walks run once per
     memory access and would flood the event ring with noise. The misses
     are the ones that turn into faults and cross-ISA traffic. *)
  if result = None && Trace.enabled () then
    Trace.instant ~subsys:"page_table" ~op:"walk_miss" ();
  result

let upper_levels_present t io ~vaddr =
  descend t io ~level:(levels - 1) ~table:t.root ~vaddr ~alloc:false <> None

let map t io ~vaddr ~frame flags =
  match descend t io ~level:(levels - 1) ~table:t.root ~vaddr ~alloc:true with
  | None -> assert false
  | Some table ->
      let slot = entry_addr table (index_at ~level:0 vaddr) in
      write_entry io slot (Pte.encode ~isa:t.isa ~frame flags)

let set_leaf_if_upper_present t io ~vaddr ~frame flags =
  match descend t io ~level:(levels - 1) ~table:t.root ~vaddr ~alloc:false with
  | None -> false
  | Some table ->
      let slot = entry_addr table (index_at ~level:0 vaddr) in
      write_entry io slot (Pte.encode ~isa:t.isa ~frame flags);
      true

let update_flags t io ~vaddr flags =
  match leaf_entry_paddr t io ~vaddr with
  | None -> false
  | Some slot -> (
      match Pte.decode ~isa:t.isa (read_entry io slot) with
      | None -> false
      | Some (frame, _) ->
          write_entry io slot (Pte.encode ~isa:t.isa ~frame flags);
          true)

let unmap t io ~vaddr =
  match leaf_entry_paddr t io ~vaddr with
  | None -> false
  | Some slot ->
      let present = Pte.decode ~isa:t.isa (read_entry io slot) <> None in
      if present then write_entry io slot Pte.not_present;
      present

let table_pages t = t.table_pages

(* Full-tree traversal in ascending vaddr order. Directory entries share
   the leaf encoding, so at levels > 0 a present entry's frame is the next
   table down; at level 0 it is the mapped leaf. Used by checkpointing —
   unlike range walks it needs no VMA metadata, which is exactly what a
   crash may have taken down. *)
let iter_leaves t io ~f =
  let rec go ~level ~table ~va_base =
    for idx = 0 to entries - 1 do
      match Pte.decode ~isa:t.isa (read_entry io (entry_addr table idx)) with
      | None -> ()
      | Some (frame, flags) ->
          let va = va_base lor (idx lsl (Addr.page_shift + (index_bits * level))) in
          if level = 0 then f ~vaddr:va ~frame ~flags
          else go ~level:(level - 1) ~table:(frame lsl Addr.page_shift) ~va_base:va
    done
  in
  go ~level:(levels - 1) ~table:t.root ~va_base:0
