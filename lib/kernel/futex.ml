module Trace = Stramash_obs.Trace

type bucket = { addr : int; waiters : int Queue.t }

type t = { table : (int, bucket) Hashtbl.t; alloc_struct : unit -> int }

let create ~alloc_struct = { table = Hashtbl.create 64; alloc_struct }

let bucket t uaddr =
  match Hashtbl.find_opt t.table uaddr with
  | Some b -> b
  | None ->
      let b = { addr = t.alloc_struct (); waiters = Queue.create () } in
      Hashtbl.add t.table uaddr b;
      b

let bucket_addr t ~uaddr = (bucket t uaddr).addr

let enqueue_waiter t ~uaddr ~tid =
  Trace.instant ~subsys:"futex" ~op:"enqueue" ();
  Queue.push tid (bucket t uaddr).waiters

let dequeue_waiter t ~uaddr =
  let b = bucket t uaddr in
  let r = Queue.take_opt b.waiters in
  if r <> None then Trace.instant ~subsys:"futex" ~op:"dequeue" ();
  r

let remove_waiter t ~uaddr ~tid =
  let b = bucket t uaddr in
  let kept = Queue.create () in
  let removed = ref false in
  Queue.iter (fun w -> if w = tid && not !removed then removed := true else Queue.push w kept) b.waiters;
  Queue.clear b.waiters;
  Queue.transfer kept b.waiters;
  !removed

let waiter_count t ~uaddr = Queue.length (bucket t uaddr).waiters
let buckets t = Hashtbl.length t.table

(* Deterministic order for checkpointing and audits: buckets sorted by
   futex address, waiters in FIFO order. *)
let snapshot t =
  Hashtbl.fold (fun uaddr b acc -> (uaddr, List.of_seq (Queue.to_seq b.waiters)) :: acc)
    t.table []
  |> List.filter (fun (_, ws) -> ws <> [])
  |> List.sort compare

let drain t ~uaddr =
  let b = bucket t uaddr in
  let ws = List.of_seq (Queue.to_seq b.waiters) in
  Queue.clear b.waiters;
  ws

let clear t =
  Hashtbl.iter (fun _ b -> Queue.clear b.waiters) t.table

let iter_waiters t ~f =
  List.iter (fun (uaddr, ws) -> List.iter (fun tid -> f ~uaddr ~tid) ws) (snapshot t)
