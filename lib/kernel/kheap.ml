module Addr = Stramash_mem.Addr

type t = {
  alloc_frame : unit -> int;
  mutable page : int; (* current bump page paddr, -1 if none *)
  mutable offset : int;
  mutable used : int;
}

let create ~alloc_frame = { alloc_frame; page = -1; offset = Addr.page_size; used = 0 }

let alloc t ~bytes =
  assert (bytes > 0 && bytes <= Addr.page_size);
  let alignment = if bytes >= Addr.line_size then Addr.line_size else 8 in
  let aligned = Addr.align_up t.offset ~alignment in
  if t.page < 0 || aligned + bytes > Addr.page_size then begin
    t.page <- t.alloc_frame ();
    t.offset <- 0
  end;
  let off = Addr.align_up t.offset ~alignment in
  t.offset <- off + bytes;
  t.used <- t.used + bytes;
  t.page + off

let alloc_line t = alloc t ~bytes:Addr.line_size

let bytes_used t = t.used
