module Node_id = Stramash_sim.Node_id
module Cycles = Stramash_sim.Cycles
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout

type op_result = { cycles : int; pages : int }

(* Affine fits to Table 4 endpoints (2^15 and 2^20 pages), in ns/page and
   ms fixed. The x86 offline path is the slow one, dominated by page
   isolation; Arm's is ~4x cheaper per page. *)
let offline_params = function
  | Node_id.X86 -> (230.0, 4.96) (* per-page ns, fixed ms *)
  | Node_id.Arm -> (58.7, 2.88)

let online_params = function
  | Node_id.X86 -> (61.3, 3.79)
  | Node_id.Arm -> (73.9, 3.38)

let model (per_page_ns, fixed_ms) ~pages =
  fixed_ms +. (per_page_ns *. float_of_int pages /. 1.0e6)

let offline_cost_model ~isa ~pages = model (offline_params isa) ~pages
let online_cost_model ~isa ~pages = model (online_params isa) ~pages

let jittered rng ms = Float.max 0.1 (Rng.gaussian rng ~mean:ms ~sigma:(ms *. 0.04))

let offline frames region ~isa ~rng =
  match Frame_alloc.remove_region frames region with
  | Error _ as e -> e
  | Ok () ->
      let pages = Layout.region_size region / Addr.page_size in
      let ms = jittered rng (offline_cost_model ~isa ~pages) in
      Ok { cycles = Cycles.of_ns (ms *. 1.0e6); pages }

let online frames region ~isa ~rng =
  Frame_alloc.add_region frames region;
  let pages = Layout.region_size region / Addr.page_size in
  let ms = jittered rng (online_cost_model ~isa ~pages) in
  { cycles = Cycles.of_ns (ms *. 1.0e6); pages }
