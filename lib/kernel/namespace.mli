(** Namespaces (paper §6.6, "Fused Namespace").

    Stramash-Linux gives a migrating application the same mount, PID, net,
    UTS, user and cgroup namespaces on every kernel instance, plus a
    unified CPU list with topology. We model a namespace set as named
    identifiers; fusing makes two kernels' sets share identifiers, so a
    migrated process observes an identical environment. *)

type kind = Mount | Pid | Net | Uts | User | Cgroup

val all_kinds : kind list
val kind_to_string : kind -> string

type set

val fresh_set : unit -> set
(** Independent namespace identifiers (the separated / multiple-kernel
    default: a remote kernel has its own). *)

val fuse : set -> set
(** A set sharing the argument's identifiers (fused-kernel behaviour). *)

val id : set -> kind -> int
val same_view : set -> set -> bool
(** All six namespaces agree. *)

type cpu_info = { node : Stramash_sim.Node_id.t; core : int }

val fused_cpu_list : cores_per_node:int -> cpu_info list
(** The unified CPU list with topology visible on every kernel instance. *)
