(** Per-node TLB: direct-mapped translation cache over virtual page
    numbers, tagged with an address-space id (ASID = pid) so concurrent
    processes with overlapping virtual layouts do not alias. A hit costs
    nothing extra (folded into the access); a miss triggers a charged
    software walk in the node layer. Must be flushed on unmap and
    protection change. *)

type entry = { frame : int; writable : bool }
type t

val create : ?entries:int -> unit -> t
(** Default 64 entries. *)

val lookup : t -> asid:int -> vpage:int -> entry option
val insert : t -> asid:int -> vpage:int -> entry -> unit

val flush_page : t -> vpage:int -> unit
(** Drop any entry for this virtual page, regardless of ASID (a
    conservative shootdown). *)

val flush_all : t -> unit
val hits : t -> int
val misses : t -> int
