(** Per-node TLB: direct-mapped translation cache over virtual page
    numbers, tagged with an address-space id (ASID = pid) so concurrent
    processes with overlapping virtual layouts do not alias. A hit costs
    nothing extra (folded into the access); a miss triggers a charged
    software walk in the node layer. Must be flushed on unmap and
    protection change. *)

type entry = { frame : int; writable : bool }
type t

type view = private {
  tv_vpages : int array;
  tv_asids : int array;
  tv_entries : entry array;
  tv_mask : int;
  tv_hits : int ref;
}
(** Raw window over the direct-mapped arrays for the runner's fused
    memio fast path, in the style of {!Level.view}: the arrays alias the
    live TLB storage. The only mutation permitted through a view is
    [incr tv_hits] after a probe that {!translate} itself would have
    counted as a usable hit — i.e. [tv_vpages.(vpage land tv_mask) =
    vpage && tv_asids.(slot) = asid] and, for writes, the entry is
    writable. Anything short of a full hit must fall back to
    {!translate} (which also does the miss accounting). *)

val create : ?entries:int -> unit -> t
(** Default 64 entries. *)

val view : t -> view

val lookup : t -> asid:int -> vpage:int -> entry option
val insert : t -> asid:int -> vpage:int -> entry -> unit

val miss : int
(** -1: slot does not hold (asid, vpage); the miss was counted. *)

val not_writable : int
(** -2: entry present but read-only while [write] was requested; a hit was
    counted, exactly as {!lookup} followed by a writability check would. *)

val translate : t -> asid:int -> vpage:int -> write:bool -> int
(** Allocation-free fused fast path for the per-instruction translation:
    one direct-mapped probe with the permission check folded in. Returns
    the frame ([>= 0]), {!miss}, or {!not_writable}. Hit/miss counters
    advance identically to {!lookup} composed with the caller's
    writability match, which is what keeps fast-path runs bit-identical
    to the reference path. *)

val flush_page : t -> vpage:int -> unit
(** Drop any entry for this virtual page, regardless of ASID (a
    conservative shootdown). *)

val shootdown : t -> vpage:int -> unit
(** A remotely-requested {!flush_page}: same invalidation, but counted in
    {!shootdowns} so cross-ISA invalidation traffic stays visible apart
    from the owner kernel's own flushes. *)

val flush_all : t -> unit
val hits : t -> int
val misses : t -> int

val shootdowns : t -> int
(** Number of {!shootdown} rounds this TLB has absorbed. *)
