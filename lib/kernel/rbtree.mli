(** Red-black tree with integer keys.

    Linux keeps VMA lists in an rb-tree (the paper notes Stramash-Linux
    still uses the RB-tree, not a maple tree, §6.4); we do the same. Lookup
    entry points accept a [visit] callback fired once per node touched on
    the search path — the remote VMA walker uses it to charge one simulated
    memory access per traversed [struct vm_area_struct]. *)

type 'v t

val create : unit -> 'v t
val size : 'v t -> int
val is_empty : 'v t -> bool

val insert : 'v t -> key:int -> 'v -> unit
(** Replaces the value if the key is present. *)

val remove : 'v t -> key:int -> bool
val find : ?visit:('v -> unit) -> 'v t -> key:int -> 'v option

val find_floor : ?visit:('v -> unit) -> 'v t -> key:int -> (int * 'v) option
(** Greatest binding with key <= the argument. *)

val min_binding : 'v t -> (int * 'v) option
val max_binding : 'v t -> (int * 'v) option
val iter : 'v t -> f:(int -> 'v -> unit) -> unit
(** In key order. *)

val to_list : 'v t -> (int * 'v) list

val check_invariants : 'v t -> (unit, string) result
(** Validates binary-search ordering, red-red absence and black-height
    uniformity; used by the property tests. *)
