(* Classic red-black tree with parent pointers (CLRS-style), using an
   explicit nil sentinel so deletion fixup stays readable. *)

type color = Red | Black

type 'v node = {
  mutable key : int;
  mutable value : 'v;
  mutable color : color;
  mutable left : 'v node;
  mutable right : 'v node;
  mutable parent : 'v node;
}

type 'v t = { mutable root : 'v node; nil : 'v node; mutable size : int }

let make_nil () =
  let rec nil = { key = 0; value = Obj.magic 0; color = Black; left = nil; right = nil; parent = nil } in
  nil

let create () =
  let nil = make_nil () in
  { root = nil; nil; size = 0 }

let size t = t.size
let is_empty t = t.size = 0

let left_rotate t x =
  let y = x.right in
  x.right <- y.left;
  if y.left != t.nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y

let right_rotate t x =
  let y = x.left in
  x.left <- y.right;
  if y.right != t.nil then y.right.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.right then x.parent.right <- y
  else x.parent.left <- y;
  y.right <- x;
  x.parent <- y

let rec insert_fixup t z =
  if z.parent.color = Red then begin
    if z.parent == z.parent.parent.left then begin
      let uncle = z.parent.parent.right in
      if uncle.color = Red then begin
        z.parent.color <- Black;
        uncle.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        (* If z is a right child, rotate its parent so the final
           right-rotation around the grandparent restores balance. *)
        let z =
          if z == z.parent.right then begin
            let p = z.parent in
            left_rotate t p;
            p
          end
          else z
        in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        right_rotate t z.parent.parent
      end
    end
    else begin
      let uncle = z.parent.parent.left in
      if uncle.color = Red then begin
        z.parent.color <- Black;
        uncle.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        let z =
          if z == z.parent.left then begin
            let p = z.parent in
            right_rotate t p;
            p
          end
          else z
        in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        left_rotate t z.parent.parent
      end
    end
  end

let insert t ~key value =
  let y = ref t.nil and x = ref t.root in
  let replaced = ref false in
  while !x != t.nil && not !replaced do
    y := !x;
    if key = !x.key then begin
      !x.value <- value;
      replaced := true
    end
    else if key < !x.key then x := !x.left
    else x := !x.right
  done;
  if not !replaced then begin
    let z =
      { key; value; color = Red; left = t.nil; right = t.nil; parent = !y }
    in
    if !y == t.nil then t.root <- z
    else if key < !y.key then !y.left <- z
    else !y.right <- z;
    insert_fixup t z;
    t.root.color <- Black;
    t.size <- t.size + 1
  end

let find_node t key =
  let rec go n = if n == t.nil then t.nil else if key = n.key then n else if key < n.key then go n.left else go n.right in
  go t.root

let find ?visit t ~key =
  let rec go n =
    if n == t.nil then None
    else begin
      (match visit with Some f -> f n.value | None -> ());
      if key = n.key then Some n.value else if key < n.key then go n.left else go n.right
    end
  in
  go t.root

let find_floor ?visit t ~key =
  let rec go n best =
    if n == t.nil then best
    else begin
      (match visit with Some f -> f n.value | None -> ());
      if key = n.key then Some (n.key, n.value)
      else if key < n.key then go n.left best
      else go n.right (Some (n.key, n.value))
    end
  in
  go t.root None

let min_node t n =
  let rec go n = if n.left == t.nil then n else go n.left in
  if n == t.nil then t.nil else go n

let max_node t n =
  let rec go n = if n.right == t.nil then n else go n.right in
  if n == t.nil then t.nil else go n

let min_binding t =
  let n = min_node t t.root in
  if n == t.nil then None else Some (n.key, n.value)

let max_binding t =
  let n = max_node t t.root in
  if n == t.nil then None else Some (n.key, n.value)

let transplant t u v =
  if u.parent == t.nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let rec delete_fixup t x =
  if x != t.root && x.color = Black then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        left_rotate t x.parent;
        w := x.parent.right
      end;
      if !w.left.color = Black && !w.right.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.right.color = Black then begin
          !w.left.color <- Black;
          !w.color <- Red;
          right_rotate t !w;
          w := x.parent.right
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.right.color <- Black;
        left_rotate t x.parent
      end
    end
    else begin
      let w = ref x.parent.left in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        right_rotate t x.parent;
        w := x.parent.left
      end;
      if !w.right.color = Black && !w.left.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.left.color = Black then begin
          !w.right.color <- Black;
          !w.color <- Red;
          left_rotate t !w;
          w := x.parent.left
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.left.color <- Black;
        right_rotate t x.parent
      end
    end
  end
  else x.color <- Black

let remove t ~key =
  let z = find_node t key in
  if z == t.nil then false
  else begin
    let y = ref z in
    let y_original_color = ref !y.color in
    let x = ref t.nil in
    if z.left == t.nil then begin
      x := z.right;
      transplant t z z.right
    end
    else if z.right == t.nil then begin
      x := z.left;
      transplant t z z.left
    end
    else begin
      let succ = min_node t z.right in
      y := succ;
      y_original_color := succ.color;
      x := succ.right;
      if succ.parent == z then !x.parent <- succ
      else begin
        transplant t succ succ.right;
        succ.right <- z.right;
        succ.right.parent <- succ
      end;
      transplant t z succ;
      succ.left <- z.left;
      succ.left.parent <- succ;
      succ.color <- z.color
    end;
    if !y_original_color = Black then delete_fixup t !x;
    (* Scrub the sentinel's parent link left by fixup paths. *)
    t.nil.parent <- t.nil;
    t.nil.left <- t.nil;
    t.nil.right <- t.nil;
    t.nil.color <- Black;
    t.size <- t.size - 1;
    true
  end

let iter t ~f =
  let rec go n =
    if n != t.nil then begin
      go n.left;
      f n.key n.value;
      go n.right
    end
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let check_invariants t =
  let exception Bad of string in
  let rec check n lo hi =
    if n == t.nil then 1
    else begin
      (match lo with Some l when n.key <= l -> raise (Bad "ordering violated") | _ -> ());
      (match hi with Some h when n.key >= h -> raise (Bad "ordering violated") | _ -> ());
      if n.color = Red && (n.left.color = Red || n.right.color = Red) then
        raise (Bad "red node with red child");
      let bl = check n.left lo (Some n.key) in
      let br = check n.right (Some n.key) hi in
      if bl <> br then raise (Bad "black-height mismatch");
      bl + (if n.color = Black then 1 else 0)
    end
  in
  try
    if t.root != t.nil && t.root.color = Red then Error "red root"
    else begin
      ignore (check t.root None None);
      (* size agrees *)
      let n = ref 0 in
      iter t ~f:(fun _ _ -> incr n);
      if !n <> t.size then Error "size mismatch" else Ok ()
    end
  with Bad msg -> Error msg
