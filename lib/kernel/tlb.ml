type entry = { frame : int; writable : bool }

type t = {
  size : int;
  vpages : int array; (* -1 invalid *)
  asids : int array;
  entries : entry array;
  hits : int ref; (* refs, not mutable fields: the view aliases them *)
  misses : int ref;
  mutable shootdowns : int;
}

type view = {
  tv_vpages : int array;
  tv_asids : int array;
  tv_entries : entry array;
  tv_mask : int;
  tv_hits : int ref;
}

let none = { frame = 0; writable = false }

let create ?(entries = 64) () =
  assert (entries > 0 && entries land (entries - 1) = 0);
  {
    size = entries;
    vpages = Array.make entries (-1);
    asids = Array.make entries (-1);
    entries = Array.make entries none;
    hits = ref 0;
    misses = ref 0;
    shootdowns = 0;
  }

let view t =
  {
    tv_vpages = t.vpages;
    tv_asids = t.asids;
    tv_entries = t.entries;
    tv_mask = t.size - 1;
    tv_hits = t.hits;
  }

let slot t vpage = vpage land (t.size - 1)

let lookup t ~asid ~vpage =
  let s = slot t vpage in
  if t.vpages.(s) = vpage && t.asids.(s) = asid then begin
    incr t.hits;
    Some t.entries.(s)
  end
  else begin
    incr t.misses;
    None
  end

(* Fused translation fast path. The fused cache collapses onto the TLB's
   own flat arrays: an entry is only usable when the TLB itself would hit
   (otherwise hit/miss counts and charged walks would diverge from the
   reference path), and a direct-mapped TLB holds at most one live entry
   per slot — so a separate memo array can never hold more live state than
   the TLB storage itself. [translate] is that collapse: one slot probe,
   the permission check fused in, no [option] allocation, and hit/miss
   accounting identical to composing {!lookup} with the caller's
   writability match.

   Returns the frame (>= 0) on a usable hit; [miss] (-1) when the slot
   does not hold (asid, vpage) — a miss is counted and the caller walks
   and {!insert}s; [not_writable] (-2) when the entry is present but
   read-only and [write] is set — a HIT is counted (the reference path's
   {!lookup} counted one before rejecting the entry) and the caller must
   proceed straight to the walk without re-probing. *)
let miss = -1
let not_writable = -2

let translate t ~asid ~vpage ~write =
  (* [s] is masked to the (power-of-two) table size, so the unsafe reads
     are in bounds by construction. *)
  let s = vpage land (t.size - 1) in
  if Array.unsafe_get t.vpages s = vpage && Array.unsafe_get t.asids s = asid then begin
    incr t.hits;
    let e = Array.unsafe_get t.entries s in
    if write && not e.writable then not_writable else e.frame
  end
  else begin
    incr t.misses;
    miss
  end

let insert t ~asid ~vpage entry =
  let s = slot t vpage in
  t.vpages.(s) <- vpage;
  t.asids.(s) <- asid;
  t.entries.(s) <- entry

let flush_page t ~vpage =
  let s = slot t vpage in
  if t.vpages.(s) = vpage then begin
    t.vpages.(s) <- -1;
    t.asids.(s) <- -1
  end

let flush_all t =
  Array.fill t.vpages 0 t.size (-1);
  Array.fill t.asids 0 t.size (-1)

(* A shootdown is a remotely-requested [flush_page]: same invalidation,
   but counted separately so cross-ISA invalidation traffic (the cost the
   placement engine charges an IPI round for) is visible on its own. *)
let shootdown t ~vpage =
  t.shootdowns <- t.shootdowns + 1;
  flush_page t ~vpage

let hits t = !(t.hits)
let misses t = !(t.misses)
let shootdowns t = t.shootdowns
