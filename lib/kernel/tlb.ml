type entry = { frame : int; writable : bool }

type t = {
  size : int;
  vpages : int array; (* -1 invalid *)
  asids : int array;
  entries : entry array;
  mutable hits : int;
  mutable misses : int;
}

let none = { frame = 0; writable = false }

let create ?(entries = 64) () =
  assert (entries > 0 && entries land (entries - 1) = 0);
  {
    size = entries;
    vpages = Array.make entries (-1);
    asids = Array.make entries (-1);
    entries = Array.make entries none;
    hits = 0;
    misses = 0;
  }

let slot t vpage = vpage land (t.size - 1)

let lookup t ~asid ~vpage =
  let s = slot t vpage in
  if t.vpages.(s) = vpage && t.asids.(s) = asid then begin
    t.hits <- t.hits + 1;
    Some t.entries.(s)
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let insert t ~asid ~vpage entry =
  let s = slot t vpage in
  t.vpages.(s) <- vpage;
  t.asids.(s) <- asid;
  t.entries.(s) <- entry

let flush_page t ~vpage =
  let s = slot t vpage in
  if t.vpages.(s) = vpage then begin
    t.vpages.(s) <- -1;
    t.asids.(s) <- -1
  end

let flush_all t =
  Array.fill t.vpages 0 t.size (-1);
  Array.fill t.asids 0 t.size (-1)

let hits t = t.hits
let misses t = t.misses
