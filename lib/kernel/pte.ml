module Node_id = Stramash_sim.Node_id

type flags = {
  present : bool;
  writable : bool;
  user : bool;
  accessed : bool;
  dirty : bool;
  remote_owned : bool;
}

let default_flags =
  { present = true; writable = true; user = true; accessed = false; dirty = false; remote_owned = false }

let bit n = Int64.shift_left 1L n
let test v n = Int64.logand v (bit n) <> 0L
let put v n cond = if cond then Int64.logor v (bit n) else v

(* x86ish: P=0, RW=1, US=2, A=5, D=6, remote(SW)=9; frame at bits 12..51. *)
(* armish: VALID=0, AF=10, nUSER(AP1 inverted)=6, RDONLY(AP2)=7, DBM/dirty=55,
   remote(SW)=58; frame at bits 12..47. Note the inverted write sense. *)

let frame_mask_x86 = 0x000F_FFFF_FFFF_F000L
let frame_mask_arm = 0x0000_FFFF_FFFF_F000L

let encode ~isa ~frame flags =
  let base = Int64.shift_left (Int64.of_int frame) 12 in
  match isa with
  | Node_id.X86 ->
      let v = Int64.logand base frame_mask_x86 in
      let v = put v 0 flags.present in
      let v = put v 1 flags.writable in
      let v = put v 2 flags.user in
      let v = put v 5 flags.accessed in
      let v = put v 6 flags.dirty in
      put v 9 flags.remote_owned
  | Node_id.Arm ->
      let v = Int64.logand base frame_mask_arm in
      let v = put v 0 flags.present in
      let v = put v 7 (not flags.writable) in
      let v = put v 6 (not flags.user) in
      let v = put v 10 flags.accessed in
      let v = put v 55 flags.dirty in
      put v 58 flags.remote_owned

let decode ~isa v =
  match isa with
  | Node_id.X86 ->
      if not (test v 0) then None
      else
        let frame = Int64.to_int (Int64.shift_right_logical (Int64.logand v frame_mask_x86) 12) in
        Some
          ( frame,
            {
              present = true;
              writable = test v 1;
              user = test v 2;
              accessed = test v 5;
              dirty = test v 6;
              remote_owned = test v 9;
            } )
  | Node_id.Arm ->
      if not (test v 0) then None
      else
        let frame = Int64.to_int (Int64.shift_right_logical (Int64.logand v frame_mask_arm) 12) in
        Some
          ( frame,
            {
              present = true;
              writable = not (test v 7);
              user = not (test v 6);
              accessed = test v 10;
              dirty = test v 55;
              remote_owned = test v 58;
            } )

let not_present = 0L

let frame_of_exn ~isa v =
  match decode ~isa v with
  | Some (frame, _) -> frame
  | None -> invalid_arg "Pte.frame_of_exn: entry not present"
