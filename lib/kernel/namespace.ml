type kind = Mount | Pid | Net | Uts | User | Cgroup

let all_kinds = [ Mount; Pid; Net; Uts; User; Cgroup ]

let kind_to_string = function
  | Mount -> "mount"
  | Pid -> "pid"
  | Net -> "net"
  | Uts -> "uts"
  | User -> "user"
  | Cgroup -> "cgroup"

type set = { ids : (kind * int) list }

(* Process-global id source, atomic because independent machines may boot
   kernels concurrently on different host domains (Sim.Domain_pool). Ids
   are only ever compared for equality within one machine — absolute
   values never appear in results — so cross-domain allocation order does
   not affect any observable output. *)
let counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add counter 1 + 1

let fresh_set () = { ids = List.map (fun k -> (k, fresh_id ())) all_kinds }

let fuse t = { ids = t.ids }

let id t kind = List.assoc kind t.ids

let same_view a b = List.for_all (fun k -> id a k = id b k) all_kinds

type cpu_info = { node : Stramash_sim.Node_id.t; core : int }

let fused_cpu_list ~cores_per_node =
  List.concat_map
    (fun node -> List.init cores_per_node (fun core -> { node; core }))
    Stramash_sim.Node_id.all
