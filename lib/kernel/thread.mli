(** Kernel threads of a migratable user process.

    A thread carries one live CPU context ({!Stramash_isa.Interp.t}) for
    the ISA of the node it currently runs on; migration replaces it via
    {!Stramash_isa.Migrate_state.transform}. *)

type state =
  | Ready
  | Blocked_futex of int (* uaddr it waits on *)
  | Finished

type t = {
  tid : int;
  origin : Stramash_sim.Node_id.t;
  mutable node : Stramash_sim.Node_id.t;
  mutable cpu : Stramash_isa.Interp.t;
  mutable state : state;
  mutable migrations : int;
}

val create : tid:int -> origin:Stramash_sim.Node_id.t -> cpu:Stramash_isa.Interp.t -> t
val is_runnable : t -> bool
val pp_state : Format.formatter -> state -> unit
