(** The shared simulation environment handed to OS personalities.

    One cache simulator and physical memory span both nodes; kernels,
    cycle meters and TLBs are per node. OS code charges all of its memory
    traffic through [cache] against the meter of the node doing the work,
    which is how fused-kernel remote accesses and multiple-kernel message
    handling acquire honest costs. *)

type t = {
  cache : Stramash_cache.Cache_sim.t;
  phys : Stramash_mem.Phys_mem.t;
  kernels : Kernel.t array; (* indexed by Node_id.index *)
  meters : Stramash_sim.Meter.t array;
  tlbs : Tlb.t array;
  hw_model : Stramash_mem.Layout.hw_model;
  liveness : Stramash_sim.Liveness.t;
      (** ground-truth crash-stop state + fencing epochs (all-alive in
          runs without a chaos schedule) *)
}

val kernel : t -> Stramash_sim.Node_id.t -> Kernel.t
val node_alive : t -> Stramash_sim.Node_id.t -> bool
val node_epoch : t -> Stramash_sim.Node_id.t -> int
val meter : t -> Stramash_sim.Node_id.t -> Stramash_sim.Meter.t
val tlb : t -> Stramash_sim.Node_id.t -> Tlb.t

val charge_load : t -> Stramash_sim.Node_id.t -> paddr:int -> unit
(** One cache-simulated load by [node], billed to its meter. *)

val charge_store : t -> Stramash_sim.Node_id.t -> paddr:int -> unit
val charge_atomic : t -> Stramash_sim.Node_id.t -> paddr:int -> unit
val charge_bytes_load : t -> Stramash_sim.Node_id.t -> paddr:int -> len:int -> unit
val charge_bytes_store : t -> Stramash_sim.Node_id.t -> paddr:int -> len:int -> unit

val pt_io : t -> actor:Stramash_sim.Node_id.t -> owner:Stramash_sim.Node_id.t -> Page_table.io
(** Page-table access descriptor: table pages are allocated from the
    [owner] kernel; entry reads/writes are performed (and billed) by
    [actor] — for a remote software walk the two differ. *)
