type state = Ready | Blocked_futex of int | Finished

type t = {
  tid : int;
  origin : Stramash_sim.Node_id.t;
  mutable node : Stramash_sim.Node_id.t;
  mutable cpu : Stramash_isa.Interp.t;
  mutable state : state;
  mutable migrations : int;
}

let create ~tid ~origin ~cpu = { tid; origin; node = origin; cpu; state = Ready; migrations = 0 }

let is_runnable t = match t.state with Ready -> true | Blocked_futex _ | Finished -> false

let pp_state fmt = function
  | Ready -> Format.pp_print_string fmt "ready"
  | Blocked_futex uaddr -> Format.fprintf fmt "blocked(futex@0x%x)" uaddr
  | Finished -> Format.pp_print_string fmt "finished"
