(** Page-table entry encodings — deliberately different per ISA.

    A fused-kernel OS cannot share page tables as-is because the formats
    are architecture-dependent (paper §5, §6.4); accessor functions (the
    "remote CPU driver") must encode/decode the *other* kernel's format.
    Our two formats differ in flag positions and, pointedly, in the sense
    of the write-permission bit (armish uses a read-only bit, as AArch64's
    AP[2] does, while x86ish uses a writable bit). *)

type flags = {
  present : bool;
  writable : bool;
  user : bool;
  accessed : bool;
  dirty : bool;
  remote_owned : bool; (* Stramash: set on PTEs installed by the other kernel *)
}

val default_flags : flags
(** present, writable, user; all status bits clear. *)

val encode : isa:Stramash_sim.Node_id.t -> frame:int -> flags -> int64
(** [frame] is a physical page number. *)

val decode : isa:Stramash_sim.Node_id.t -> int64 -> (int * flags) option
(** [None] when the entry is not present. *)

val not_present : int64
(** The all-zeroes entry, not present under both encodings. *)

val frame_of_exn : isa:Stramash_sim.Node_id.t -> int64 -> int
