(** Virtual memory areas and the per-address-space VMA set.

    Each VMA struct is assigned a kernel-heap physical address so remote
    VMA walks (paper §6.4, "Software Remote VMA Walker") can be charged one
    memory access per visited node, and the set carries a lock word for the
    VMA lock the walker must take. *)

type kind = Code | Data | Heap | Stack | Anon

type t = {
  v_start : int;
  v_end : int; (* exclusive *)
  kind : kind;
  writable : bool;
  struct_addr : int; (* paddr of this struct in the owning kernel's heap *)
}

val kind_to_string : kind -> string
val contains : t -> int -> bool
val pages : t -> int

type set

val create_set : alloc_struct:(unit -> int) -> set
(** [alloc_struct] yields kernel-heap addresses (one per VMA and one for
    the set's lock word). *)

val lock_addr : set -> int

val add : set -> start:int -> end_:int -> kind -> writable:bool -> t
(** Raises [Invalid_argument] on overlap with an existing VMA. *)

val remove : set -> start:int -> bool

val find : ?visit:(t -> unit) -> set -> vaddr:int -> t option
(** The VMA containing [vaddr]; [visit] fires per rb-tree node touched. *)

val iter : set -> f:(t -> unit) -> unit
val count : set -> int
