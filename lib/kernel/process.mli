(** User processes spanning kernel instances.

    A process has one Mir source program, one compiled image per ISA, and
    one memory descriptor ([mm]) per kernel instance it has run on: VMAs
    plus a page table in that kernel's PTE format, a page-table lock word
    (the cross-ISA Stramash-PTL) and the VMA lock word. Under Popcorn the
    two mms are kept consistent by messages and page replication; under
    Stramash both page tables reference the same frames (paper §6.4). *)

type mm = {
  vmas : Vma.set;
  pgtable : Page_table.t;
  ptl_addr : int; (* page-table lock word, owner kernel's heap *)
}

type t = {
  pid : int;
  origin : Stramash_sim.Node_id.t;
  mir : Stramash_isa.Mir.program;
  images : (Stramash_sim.Node_id.t * Stramash_isa.Machine.program) list;
  mutable mms : (Stramash_sim.Node_id.t * mm) list;
  mutable next_tid : int;
}

val create :
  pid:int ->
  origin:Stramash_sim.Node_id.t ->
  mir:Stramash_isa.Mir.program ->
  images:(Stramash_sim.Node_id.t * Stramash_isa.Machine.program) list ->
  t

val image : t -> Stramash_sim.Node_id.t -> Stramash_isa.Machine.program
val mm : t -> Stramash_sim.Node_id.t -> mm option
val mm_exn : t -> Stramash_sim.Node_id.t -> mm
val add_mm : t -> Stramash_sim.Node_id.t -> mm -> unit

val remove_mm : t -> Stramash_sim.Node_id.t -> unit
(** Forget the node's memory descriptor (crash teardown); a no-op if the
    process never ran there. *)

val set_mm : t -> Stramash_sim.Node_id.t -> mm -> unit
(** Install a rebuilt descriptor, replacing any existing one (restore). *)

val fresh_tid : t -> int
