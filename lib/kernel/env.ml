module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Cache_sim = Stramash_cache.Cache_sim

type t = {
  cache : Cache_sim.t;
  phys : Stramash_mem.Phys_mem.t;
  kernels : Kernel.t array;
  meters : Meter.t array;
  tlbs : Tlb.t array;
  hw_model : Stramash_mem.Layout.hw_model;
  liveness : Stramash_sim.Liveness.t;
}

let kernel t node = t.kernels.(Node_id.index node)
let node_alive t node = Stramash_sim.Liveness.is_alive t.liveness node
let node_epoch t node = Stramash_sim.Liveness.epoch t.liveness node
let meter t node = t.meters.(Node_id.index node)
let tlb t node = t.tlbs.(Node_id.index node)

let charge_load t node ~paddr =
  Meter.add (meter t node) (Cache_sim.access t.cache ~node Cache_sim.Load ~paddr)

let charge_store t node ~paddr =
  Meter.add (meter t node) (Cache_sim.access t.cache ~node Cache_sim.Store ~paddr)

let charge_atomic t node ~paddr =
  Meter.add (meter t node) (Cache_sim.atomic_rmw t.cache ~node ~paddr)

let charge_bytes_load t node ~paddr ~len =
  Meter.add (meter t node) (Cache_sim.access_bytes t.cache ~node Cache_sim.Load ~paddr ~len)

let charge_bytes_store t node ~paddr ~len =
  Meter.add (meter t node) (Cache_sim.access_bytes t.cache ~node Cache_sim.Store ~paddr ~len)

let pt_io t ~actor ~owner =
  {
    Page_table.phys = t.phys;
    charge_read = (fun paddr -> charge_load t actor ~paddr);
    charge_write = (fun paddr -> charge_store t actor ~paddr);
    alloc_table = (fun () -> Kernel.alloc_table_page (kernel t owner));
  }
