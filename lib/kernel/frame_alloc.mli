(** Per-kernel physical frame allocator.

    Frames come from the regions a kernel instance currently owns: its boot
    memory plus any blocks later granted by the global allocator (paper
    §6.3). Regions can be retracted again (memory hot-remove) provided
    their frames are free — the hotplug module drives evacuation first. *)

type t

val create : name:string -> t
val add_region : t -> Stramash_mem.Layout.region -> unit

val remove_region : t -> Stramash_mem.Layout.region -> (unit, [ `Pages_in_use of int ]) result
(** Fails if any frame in the region is currently allocated. *)

val alloc : t -> int option
(** A free page-aligned physical address, or [None] when exhausted. *)

val alloc_exn : t -> int
val free : t -> int -> unit
(** Raises [Invalid_argument] on double free or foreign addresses. *)

val is_allocated : t -> int -> bool

(** [owns_address t a] is whether [a] lies in a live region of this
    allocator. *)
val owns_address : t -> int -> bool
val free_frames : t -> int
val total_frames : t -> int
val used_frames : t -> int

val pressure : t -> float
(** used / total; drives the 70 % threshold of the global allocator. *)
