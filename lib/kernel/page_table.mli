(** Multi-level page tables stored in simulated physical memory.

    Both kernels use 5-level tables (paper §6.4), 9 bits of index per
    level over 4 KiB pages. Table pages are real frames; every entry read
    or write during a walk goes through the caller-supplied {!io} charges,
    so local walks, *remote* software walks (Stramash's cross-ISA walker)
    and page-fault handling all incur honest memory-system cost. *)

type t

type io = {
  phys : Stramash_mem.Phys_mem.t;
  charge_read : int -> unit; (* paddr of the entry being read *)
  charge_write : int -> unit;
  alloc_table : unit -> int; (* fresh zeroed table page, returns paddr *)
}

val levels : int (* 5 *)

val create : isa:Stramash_sim.Node_id.t -> io -> t
(** Allocates the root table page. *)

val isa : t -> Stramash_sim.Node_id.t
val root : t -> int

val walk : t -> io -> vaddr:int -> (int * Pte.flags) option
(** Full software walk; charges one entry read per level traversed.
    Returns the decoded leaf (frame, flags) if present. *)

val walk_raw : t -> io -> vaddr:int -> int64 option
(** Leaf PTE raw bits (present entries only). *)

val upper_levels_present : t -> io -> vaddr:int -> bool
(** True when every directory level above the leaf exists — the condition
    under which Stramash allows a remote kernel to install a PTE directly
    (§9.2.3: missing upper levels fall back to the origin kernel). *)

val map : t -> io -> vaddr:int -> frame:int -> Pte.flags -> unit
(** Install a leaf mapping, allocating intermediate tables as needed. *)

val set_leaf_if_upper_present : t -> io -> vaddr:int -> frame:int -> Pte.flags -> bool
(** Install a leaf without allocating directories; false if impossible. *)

val update_flags : t -> io -> vaddr:int -> Pte.flags -> bool
(** Rewrite the leaf PTE's flags (same frame); false if unmapped. *)

val unmap : t -> io -> vaddr:int -> bool
(** Clear the leaf entry; directory pages are not reclaimed (as in
    Linux's common case). *)

val leaf_entry_paddr : t -> io -> vaddr:int -> int option
(** Physical address of the leaf PTE slot, if the directories exist —
    what a remote walker reads/CASes. *)

val table_pages : t -> int
(** Number of table pages allocated (root included). *)

val iter_leaves : t -> io -> f:(vaddr:int -> frame:int -> flags:Pte.flags -> unit) -> unit
(** Visit every present leaf mapping in ascending [vaddr] order by
    traversing the whole tree (no VMA metadata required); entry reads are
    charged through [io]. This is the checkpoint serialisation walk. *)
