module Node_id = Stramash_sim.Node_id
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem

type t = {
  node : Node_id.t;
  frames : Frame_alloc.t;
  kheap : Kheap.t;
  futexes : Futex.t;
  ns : Namespace.set;
  phys : Phys_mem.t;
  stats : Stramash_sim.Metrics.registry;
}

let boot ~node ~phys =
  let frames = Frame_alloc.create ~name:(Node_id.to_string node) in
  Frame_alloc.add_region frames (Layout.private_region node);
  let kheap = Kheap.create ~alloc_frame:(fun () -> Frame_alloc.alloc_exn frames) in
  let futexes = Futex.create ~alloc_struct:(fun () -> Kheap.alloc_line kheap) in
  {
    node;
    frames;
    kheap;
    futexes;
    ns = Namespace.fresh_set ();
    phys;
    stats = Stramash_sim.Metrics.registry ();
  }

let alloc_table_page t =
  let paddr = Frame_alloc.alloc_exn t.frames in
  Phys_mem.zero_page t.phys paddr;
  paddr

let alloc_frame_exn t = Frame_alloc.alloc_exn t.frames

let owns t paddr = Frame_alloc.owns_address t.frames paddr
