(** Imperative construction of {!Mir.program}s.

    Two styles coexist: expression helpers ([add], [imm], [load], ...)
    allocate a fresh destination register and return it; in-place helpers
    ([add_to], [set], ...) write to an existing register, which loop bodies
    need. [for_up] builds the canonical counted loop. *)

type t

val create : unit -> t
val fresh : t -> Mir.reg
val label : t -> Mir.label
val place : t -> Mir.label -> unit
val emit : t -> Mir.instr -> unit

(* Expression style. *)
val imm : t -> int64 -> Mir.reg
val immi : t -> int -> Mir.reg
val fimm : t -> float -> Mir.reg
val mov : t -> Mir.reg -> Mir.reg
val bin : t -> Mir.binop -> Mir.reg -> Mir.reg -> Mir.reg
val bini : t -> Mir.binop -> Mir.reg -> int -> Mir.reg
val add : t -> Mir.reg -> Mir.reg -> Mir.reg
val addi : t -> Mir.reg -> int -> Mir.reg
val sub : t -> Mir.reg -> Mir.reg -> Mir.reg
val mul : t -> Mir.reg -> Mir.reg -> Mir.reg
val muli : t -> Mir.reg -> int -> Mir.reg
val shli : t -> Mir.reg -> int -> Mir.reg
val shri : t -> Mir.reg -> int -> Mir.reg
val andi : t -> Mir.reg -> int -> Mir.reg
val remi : t -> Mir.reg -> int -> Mir.reg
val fadd : t -> Mir.reg -> Mir.reg -> Mir.reg
val fsub : t -> Mir.reg -> Mir.reg -> Mir.reg
val fmul : t -> Mir.reg -> Mir.reg -> Mir.reg
val fdiv : t -> Mir.reg -> Mir.reg -> Mir.reg
val f_of_int : t -> Mir.reg -> Mir.reg
val load : t -> Mir.width -> Mir.addr -> Mir.reg

(* In-place style. *)
val set : t -> Mir.reg -> Mir.reg -> unit
val seti : t -> Mir.reg -> int -> unit
val bin_to : t -> Mir.binop -> Mir.reg -> Mir.reg -> Mir.reg -> unit
val add_to : t -> Mir.reg -> Mir.reg -> Mir.reg -> unit
val addi_to : t -> Mir.reg -> Mir.reg -> int -> unit
val fadd_to : t -> Mir.reg -> Mir.reg -> Mir.reg -> unit
val fmul_to : t -> Mir.reg -> Mir.reg -> Mir.reg -> unit
val load_to : t -> Mir.width -> Mir.reg -> Mir.addr -> unit
val store : t -> Mir.width -> Mir.reg -> Mir.addr -> unit

(* Control flow. *)
val jump : t -> Mir.label -> unit
val branch : t -> Mir.cond -> Mir.reg -> Mir.reg -> Mir.label -> unit
val branchi : t -> Mir.cond -> Mir.reg -> int -> Mir.label -> unit
(** Compares against an immediate by materialising it. *)

val for_up : t -> lo:int -> hi:Mir.reg -> (Mir.reg -> unit) -> unit
(** [for_up b ~lo ~hi body] iterates a fresh counter from [lo] (inclusive)
    to the value of [hi] (exclusive), running [body counter] each time. *)

val for_up_const : t -> lo:int -> hi:int -> (Mir.reg -> unit) -> unit

(** [for_range] is a counted loop with runtime bounds: from (inclusive) to
    to_ (exclusive). The counter is a fresh register; the bound registers
    are read once per iteration and must not be clobbered by the body. *)
val for_range : t -> from:Mir.reg -> to_:Mir.reg -> (Mir.reg -> unit) -> unit
val migrate_point : t -> int -> unit
val futex_wait : t -> uaddr:Mir.reg -> expected:Mir.reg -> unit
val futex_wake : t -> uaddr:Mir.reg -> nwake:int -> unit
val halt : t -> unit

val finish : t -> Mir.program
(** Appends a trailing [Halt] if the last instruction is not one, and
    validates the program (raises [Invalid_argument] on malformed code). *)
