type t = {
  mutable code : Mir.instr list; (* reversed *)
  mutable len : int;
  mutable nregs : int;
  mutable nlabels : int;
}

let create () = { code = []; len = 0; nregs = 0; nlabels = 0 }

let fresh t =
  let r = t.nregs in
  t.nregs <- t.nregs + 1;
  r

let label t =
  let l = t.nlabels in
  t.nlabels <- t.nlabels + 1;
  l

let emit t i =
  t.code <- i :: t.code;
  t.len <- t.len + 1

let place t l = emit t (Mir.Label l)

let imm t v =
  let r = fresh t in
  emit t (Mir.Const (r, v));
  r

let immi t v = imm t (Int64.of_int v)

let fimm t v =
  let r = fresh t in
  emit t (Mir.Fconst (r, v));
  r

let mov t s =
  let r = fresh t in
  emit t (Mir.Mov (r, s));
  r

let bin t op a b =
  let r = fresh t in
  emit t (Mir.Bin (op, r, a, b));
  r

let bini t op a v =
  let r = fresh t in
  emit t (Mir.Bini (op, r, a, Int64.of_int v));
  r

let add t a b = bin t Mir.Add a b
let addi t a v = bini t Mir.Add a v
let sub t a b = bin t Mir.Sub a b
let mul t a b = bin t Mir.Mul a b
let muli t a v = bini t Mir.Mul a v
let shli t a v = bini t Mir.Shl a v
let shri t a v = bini t Mir.Shr a v
let andi t a v = bini t Mir.And a v
let remi t a v = bini t Mir.Rem a v

let fbin t op a b =
  let r = fresh t in
  emit t (Mir.Fbin (op, r, a, b));
  r

let fadd t a b = fbin t Mir.Fadd a b
let fsub t a b = fbin t Mir.Fsub a b
let fmul t a b = fbin t Mir.Fmul a b
let fdiv t a b = fbin t Mir.Fdiv a b

let f_of_int t s =
  let r = fresh t in
  emit t (Mir.F_of_int (r, s));
  r

let load t w a =
  let r = fresh t in
  emit t (Mir.Load (w, r, a));
  r

let set t d s = emit t (Mir.Mov (d, s))
let seti t d v = emit t (Mir.Const (d, Int64.of_int v))
let bin_to t op d a b = emit t (Mir.Bin (op, d, a, b))
let add_to t d a b = emit t (Mir.Bin (Mir.Add, d, a, b))
let addi_to t d a v = emit t (Mir.Bini (Mir.Add, d, a, Int64.of_int v))
let fadd_to t d a b = emit t (Mir.Fbin (Mir.Fadd, d, a, b))
let fmul_to t d a b = emit t (Mir.Fbin (Mir.Fmul, d, a, b))
let load_to t w d a = emit t (Mir.Load (w, d, a))
let store t w s a = emit t (Mir.Store (w, s, a))

let jump t l = emit t (Mir.Jump l)
let branch t c a b l = emit t (Mir.Branch (c, a, b, l))

let branchi t c a v l =
  let r = immi t v in
  branch t c a r l

let for_up t ~lo ~hi body =
  let counter = fresh t in
  seti t counter lo;
  let top = label t in
  let exit = label t in
  place t top;
  branch t Mir.Ge counter hi exit;
  body counter;
  addi_to t counter counter 1;
  jump t top;
  place t exit

let for_up_const t ~lo ~hi body =
  let bound = immi t hi in
  for_up t ~lo ~hi:bound body

let for_range t ~from ~to_ body =
  let counter = mov t from in
  let top = label t in
  let exit = label t in
  place t top;
  branch t Mir.Ge counter to_ exit;
  body counter;
  addi_to t counter counter 1;
  jump t top;
  place t exit

let migrate_point t id = emit t (Mir.Migrate_point id)
let futex_wait t ~uaddr ~expected = emit t (Mir.Syscall (Mir.Futex_wait { uaddr; expected }))
let futex_wake t ~uaddr ~nwake = emit t (Mir.Syscall (Mir.Futex_wake { uaddr; nwake }))
let halt t = emit t (Mir.Halt)

let finish t =
  (match t.code with
  | Mir.Halt :: _ -> ()
  | _ -> emit t Mir.Halt);
  let code = Array.of_list (List.rev t.code) in
  let program = { Mir.code; nregs = max t.nregs 1; nlabels = max t.nlabels 1 } in
  match Mir.validate program with
  | Ok () -> program
  | Error msg -> invalid_arg ("Builder.finish: " ^ msg)
