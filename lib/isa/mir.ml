type reg = int

type width = W8 | W16 | W32 | W64

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

let binop_commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Rem | Shl | Shr -> false

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

let eval_cond cond a b =
  let c = Int64.compare a b in
  match cond with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

type label = int

type addr = { base : reg; index : reg option; scale : int; disp : int }

let based base = { base; index = None; scale = 1; disp = 0 }
let based_disp base disp = { base; index = None; scale = 1; disp }
let indexed base index ~scale = { base; index = Some index; scale; disp = 0 }
let indexed_disp base index ~scale ~disp = { base; index = Some index; scale; disp }

type syscall =
  | Futex_wait of { uaddr : reg; expected : reg }
  | Futex_wake of { uaddr : reg; nwake : int }

type instr =
  | Const of reg * int64
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg
  | Bini of binop * reg * reg * int64
  | Fbin of fbinop * reg * reg * reg
  | Fconst of reg * float
  | F_of_int of reg * reg
  | Int_of_f of reg * reg
  | Load of width * reg * addr
  | Store of width * reg * addr
  | Jump of label
  | Branch of cond * reg * reg * label
  | Label of label
  | Syscall of syscall
  | Migrate_point of int
  | Halt

type program = { code : instr array; nregs : int; nlabels : int }

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let fbinop_name = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cond_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_addr fmt a =
  match a.index with
  | None -> Format.fprintf fmt "[r%d%+d]" a.base a.disp
  | Some i -> Format.fprintf fmt "[r%d+r%d*%d%+d]" a.base i a.scale a.disp

let width_name = function W8 -> "8" | W16 -> "16" | W32 -> "32" | W64 -> "64"

let pp_instr fmt = function
  | Const (r, v) -> Format.fprintf fmt "r%d <- %Ld" r v
  | Mov (d, s) -> Format.fprintf fmt "r%d <- r%d" d s
  | Bin (op, d, a, b) -> Format.fprintf fmt "r%d <- %s r%d, r%d" d (binop_name op) a b
  | Bini (op, d, a, v) -> Format.fprintf fmt "r%d <- %s r%d, %Ld" d (binop_name op) a v
  | Fbin (op, d, a, b) -> Format.fprintf fmt "r%d <- %s r%d, r%d" d (fbinop_name op) a b
  | Fconst (r, v) -> Format.fprintf fmt "r%d <- %g" r v
  | F_of_int (d, s) -> Format.fprintf fmt "r%d <- float(r%d)" d s
  | Int_of_f (d, s) -> Format.fprintf fmt "r%d <- int(r%d)" d s
  | Load (w, d, a) -> Format.fprintf fmt "r%d <- load%s %a" d (width_name w) pp_addr a
  | Store (w, s, a) -> Format.fprintf fmt "store%s r%d, %a" (width_name w) s pp_addr a
  | Jump l -> Format.fprintf fmt "jump L%d" l
  | Branch (c, a, b, l) -> Format.fprintf fmt "br.%s r%d, r%d -> L%d" (cond_name c) a b l
  | Label l -> Format.fprintf fmt "L%d:" l
  | Syscall (Futex_wait { uaddr; expected }) ->
      Format.fprintf fmt "futex_wait [r%d] == r%d" uaddr expected
  | Syscall (Futex_wake { uaddr; nwake }) -> Format.fprintf fmt "futex_wake [r%d] n=%d" uaddr nwake
  | Migrate_point id -> Format.fprintf fmt "migrate_point %d" id
  | Halt -> Format.fprintf fmt "halt"

let validate p =
  let fail fmt_str = Printf.ksprintf (fun s -> Error s) fmt_str in
  let check_reg r = r >= 0 && r < p.nregs in
  let check_label l = l >= 0 && l < p.nlabels in
  let defined = Array.make (max p.nlabels 1) 0 in
  Array.iter (function Label l when l >= 0 && l < p.nlabels -> defined.(l) <- defined.(l) + 1 | _ -> ()) p.code;
  let exception Bad of string in
  let bad fmt_str = Printf.ksprintf (fun s -> raise (Bad s)) fmt_str in
  let reg r = if not (check_reg r) then bad "register r%d out of range" r in
  let addr a =
    reg a.base;
    (match a.index with Some i -> reg i | None -> ());
    if a.scale <= 0 then bad "non-positive scale %d" a.scale
  in
  let lbl l =
    if not (check_label l) then bad "label L%d out of range" l
    else if defined.(l) <> 1 then bad "label L%d defined %d times" l defined.(l)
  in
  try
    Array.iter
      (function
        | Const (r, _) | Fconst (r, _) -> reg r
        | Mov (d, s) | F_of_int (d, s) | Int_of_f (d, s) ->
            reg d;
            reg s
        | Bin (_, d, a, b) | Fbin (_, d, a, b) ->
            reg d;
            reg a;
            reg b
        | Bini (_, d, a, _) ->
            reg d;
            reg a
        | Load (_, d, a) ->
            reg d;
            addr a
        | Store (_, s, a) ->
            reg s;
            addr a
        | Jump l -> lbl l
        | Branch (_, a, b, l) ->
            reg a;
            reg b;
            lbl l
        | Label l -> if not (check_label l) then bad "label L%d out of range" l
        | Syscall (Futex_wait { uaddr; expected }) ->
            reg uaddr;
            reg expected
        | Syscall (Futex_wake { uaddr; _ }) -> reg uaddr
        | Migrate_point _ | Halt -> ())
      p.code;
    Ok ()
  with Bad s -> fail "%s" s
