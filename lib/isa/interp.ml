type memio = {
  load : int -> int -> int64;
  store : int -> int -> int64 -> unit;
  fetch : int -> unit;
}

type t = {
  prog : Machine.program;
  register_file : int64 array;
  mutable pc : int;
  mutable icount : int;
  mutable halted : bool;
}

type outcome = Out_of_fuel | Halted | Migrate of int | Syscall of Mir.syscall

exception Trap of string

(* Every register index is validated here, once, so the dispatch loop can
   use unsafe array accesses on the register file. *)
let validate_registers (prog : Machine.program) =
  let n = prog.Machine.nregs in
  let ok r = r >= 0 && r < n in
  let okm (m : Machine.mem) =
    ok m.Machine.mbase
    && match m.Machine.mindex with None -> true | Some i -> ok i
  in
  let valid = function
    | Machine.MImm (r, _) -> ok r
    | Machine.MMovR (d, s)
    | Machine.MAlu2 (_, d, s)
    | Machine.MFAlu2 (_, d, s)
    | Machine.MCvtIF (d, s)
    | Machine.MCvtFI (d, s) -> ok d && ok s
    | Machine.MAlu3 (_, d, a, b) | Machine.MFAlu3 (_, d, a, b) -> ok d && ok a && ok b
    | Machine.MAluI (_, d, _) -> ok d
    | Machine.MAlu3I (_, d, a, _) -> ok d && ok a
    | Machine.MLoad (_, d, m) | Machine.MAluMem (_, d, m) | Machine.MFAluMem (_, d, m) ->
        ok d && okm m
    | Machine.MStore (_, s, m) -> ok s && okm m
    | Machine.MBr (_, a, b, _) -> ok a && ok b
    | Machine.MJmp _ | Machine.MSyscall _ | Machine.MMigrate _ | Machine.MHalt -> true
  in
  Array.iteri
    (fun i op ->
      if not (valid op) then
        invalid_arg
          (Printf.sprintf "Interp.create: op %d references a register outside nregs=%d" i n))
    prog.Machine.ops

let create prog =
  validate_registers prog;
  {
    prog;
    register_file = Array.make prog.Machine.nregs 0L;
    pc = 0;
    icount = 0;
    halted = false;
  }

let program t = t.prog
let pc t = t.pc
let set_pc t pc = t.pc <- pc
let icount t = t.icount
let reg t r = t.register_file.(r)
let set_reg t r v = t.register_file.(r) <- v
let regs t = t.register_file
let halted t = t.halted

let eval_binop op a b =
  match op with
  | Mir.Add -> Int64.add a b
  | Mir.Sub -> Int64.sub a b
  | Mir.Mul -> Int64.mul a b
  | Mir.Div -> if b = 0L then raise (Trap "division by zero") else Int64.div a b
  | Mir.Rem -> if b = 0L then raise (Trap "remainder by zero") else Int64.rem a b
  | Mir.And -> Int64.logand a b
  | Mir.Or -> Int64.logor a b
  | Mir.Xor -> Int64.logxor a b
  | Mir.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Mir.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let eval_fbinop op a b =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let r =
    match op with
    | Mir.Fadd -> x +. y
    | Mir.Fsub -> x -. y
    | Mir.Fmul -> x *. y
    | Mir.Fdiv -> x /. y
  in
  Int64.bits_of_float r

(* Register indices were validated at [create]; unsafe accesses here are in
   bounds by construction. *)
let effective_address regs (m : Machine.mem) =
  let base = Int64.to_int (Array.unsafe_get regs m.Machine.mbase) in
  let idx =
    match m.Machine.mindex with
    | None -> 0
    | Some i -> Int64.to_int (Array.unsafe_get regs i) * m.Machine.mscale
  in
  base + idx + m.Machine.mdisp

let run t memio ~fuel =
  if t.halted then Halted
  else begin
    let ops = t.prog.Machine.ops in
    let code_off = t.prog.Machine.code_off in
    let regs = t.register_file in
    let nops = Array.length ops in
    let code_base = Codegen.code_base in
    let remaining = ref fuel in
    let result = ref Out_of_fuel in
    let running = ref true in
    (* [pc] and [icount] live in locals for the duration of the loop and are
       flushed on every exit path. Nothing observes them mid-run: the memio
       closures never read interpreter state, and external readers
       ([Runner.account], the schedulers) only run between [run] calls. *)
    let pcr = ref t.pc in
    let ic = ref t.icount in
    let flush () =
      t.pc <- !pcr;
      t.icount <- !ic
    in
    (try
       while !running && !remaining > 0 do
         let pc = !pcr in
         if pc < 0 || pc >= nops then raise (Trap "pc out of text segment");
         memio.fetch (code_base + Array.unsafe_get code_off pc);
         ic := !ic + 1;
         decr remaining;
         pcr := pc + 1;
         (* [pc < nops] was just checked, so ops/code_off reads are in
            bounds; register indices were validated at [create]. *)
         match Array.unsafe_get ops pc with
         | Machine.MImm (r, v) -> Array.unsafe_set regs r v
         | Machine.MMovR (d, s) -> Array.unsafe_set regs d (Array.unsafe_get regs s)
         | Machine.MAlu3 (op, d, a, b) ->
             Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
         | Machine.MAlu2 (op, d, s) ->
             Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
         | Machine.MAluI (op, d, v) ->
             Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) v)
         | Machine.MAlu3I (op, d, a, v) ->
             Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs a) v)
         | Machine.MLoad (w, d, m) ->
             let va = effective_address regs m in
             Array.unsafe_set regs d (memio.load (Mir.bytes_of_width w) va)
         | Machine.MStore (w, s, m) ->
             let va = effective_address regs m in
             memio.store (Mir.bytes_of_width w) va (Array.unsafe_get regs s)
         | Machine.MAluMem (op, d, m) ->
             let va = effective_address regs m in
             Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) (memio.load 8 va))
         | Machine.MFAluMem (op, d, m) ->
             let va = effective_address regs m in
             Array.unsafe_set regs d (eval_fbinop op (Array.unsafe_get regs d) (memio.load 8 va))
         | Machine.MFAlu3 (op, d, a, b) ->
             Array.unsafe_set regs d
               (eval_fbinop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
         | Machine.MFAlu2 (op, d, s) ->
             Array.unsafe_set regs d (eval_fbinop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
         | Machine.MCvtIF (d, s) ->
             Array.unsafe_set regs d (Int64.bits_of_float (Int64.to_float (Array.unsafe_get regs s)))
         | Machine.MCvtFI (d, s) ->
             Array.unsafe_set regs d (Int64.of_float (Int64.float_of_bits (Array.unsafe_get regs s)))
         | Machine.MJmp target -> pcr := target
         | Machine.MBr (c, a, b, target) ->
             if Mir.eval_cond c (Array.unsafe_get regs a) (Array.unsafe_get regs b) then
               pcr := target
         | Machine.MSyscall s ->
             result := Syscall s;
             running := false
         | Machine.MMigrate id ->
             result := Migrate id;
             running := false
         | Machine.MHalt ->
             t.halted <- true;
             result := Halted;
             running := false
       done
     with e ->
       flush ();
       raise e);
    flush ();
    !result
  end
