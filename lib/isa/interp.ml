type memio = {
  load : int -> int -> int64;
  store : int -> int -> int64 -> unit;
  fetch : int -> unit;
}

(* ---------- superblock trace cache ----------------------------------------

   Hot straight-line Mir regions are pre-decoded into flat slot arrays and
   replayed without the per-instruction bounds/guard checks of the generic
   dispatch loop. The design constraints, in order:

   - Exactness. A trace replays the same architectural effects in the
     same order as the generic loop: one [memio.fetch] per instruction at
     the same text vaddr, the same loads/stores, the same icount and fuel
     accounting. pc/icount/fuel are maintained per step, so an exception
     raised anywhere mid-trace (a trap, an unrecoverable fault from
     memio) observes exactly the state the generic loop would have had.
     The trace cache is host-side machinery only: nothing simulated can
     distinguish a traced run from an untraced one.

   - Guard hoisting. A trace is entered only when the remaining fuel
     covers its full length and its leader pc was bounds-checked by the
     dispatch loop, so the per-step bounds and fuel-exhaustion guards
     are checked once per trace, not once per instruction.

   - Side exits. A taken branch mid-trace exits back to the generic
     dispatch path (after recording the target as a potential leader);
     an untaken branch falls through inside the trace. The terminal
     instruction may be an unconditional jump; a back-jump to the
     trace's own leader re-enters without another table lookup.

   - Invalidation. Traces are dropped (and counted) on migration (a
     fresh interpreter on the destination ISA), on checkpoint restore
     and crash-stop fault injection on the executing node (the runner
     calls {!invalidate_traces}), and on any exceptional exit from
     {!run} — decoded slots are static today, so this is hygiene, but
     it is the contract that keeps the cache safe against any future
     event that can change control flow or code mappings. *)

type tc_stats = {
  mutable tc_built : int; (* traces constructed *)
  mutable tc_entered : int; (* trace executions, loop-back re-entries included *)
  mutable tc_instrs : int; (* instructions retired inside traces *)
  mutable tc_side_exits : int; (* taken branches that left a trace early *)
  mutable tc_flushes : int; (* traces dropped by invalidation *)
}

(* Shared by every interpreter of one machine (threads, both nodes, and
   across migrations), so the counters describe the whole run. Machines
   never share a [tc], which keeps independent machines on separate host
   domains race-free. *)
type tc = { threshold : int; max_trace : int; stats : tc_stats }

let make_tc ?(threshold = 32) ?(max_trace = 256) () =
  if threshold < 1 then invalid_arg "Interp.make_tc: threshold must be >= 1";
  if max_trace < 1 then invalid_arg "Interp.make_tc: max_trace must be >= 1";
  {
    threshold;
    max_trace;
    stats = { tc_built = 0; tc_entered = 0; tc_instrs = 0; tc_side_exits = 0; tc_flushes = 0 };
  }

let tc_counters tc =
  [
    ("tc.built", tc.stats.tc_built);
    ("tc.entered", tc.stats.tc_entered);
    ("tc.instrs", tc.stats.tc_instrs);
    ("tc.side_exits", tc.stats.tc_side_exits);
    ("tc.flushes", tc.stats.tc_flushes);
  ]

(* Pre-decoded trace slot: the opcode with its operands resolved at build
   time — load/store widths already in bytes, so no per-step width
   decode, and no cross-module helper calls on the replay path. *)
type slot =
  | SImm of int * int64
  | SMovR of int * int
  | SAlu3 of Mir.binop * int * int * int
  | SAlu2 of Mir.binop * int * int
  | SAluI of Mir.binop * int * int64
  | SAlu3I of Mir.binop * int * int * int64
  | SLoad of int * int * Machine.mem (* bytes, dst, address *)
  | SStore of int * int * Machine.mem (* bytes, src, address *)
  | SAluMem of Mir.binop * int * Machine.mem
  | SFAluMem of Mir.fbinop * int * Machine.mem
  | SFAlu3 of Mir.fbinop * int * int * int
  | SFAlu2 of Mir.fbinop * int * int
  | SCvtIF of int * int
  | SCvtFI of int * int
  | SJmp of int (* terminal only *)
  | SBr of Mir.cond * int * int * int (* side exit when taken *)

type trace = {
  t_leader : int;
  t_len : int;
  t_slots : slot array;
  t_vaddrs : int array; (* code_base + code_off.(pc), precomputed *)
  t_loopback : bool; (* terminal slot jumps back to t_leader *)
}

type t = {
  prog : Machine.program;
  register_file : int64 array;
  mutable pc : int;
  mutable icount : int;
  mutable halted : bool;
  tc : tc option;
  leader_counts : int array; (* per pc; [||] when tracing is off *)
  traces : trace option array; (* per leader pc; [||] when tracing is off *)
}

type outcome = Out_of_fuel | Halted | Migrate of int | Syscall of Mir.syscall

exception Trap of string

(* Every register index is validated here, once, so the dispatch loop can
   use unsafe array accesses on the register file. *)
let validate_registers (prog : Machine.program) =
  let n = prog.Machine.nregs in
  let ok r = r >= 0 && r < n in
  let okm (m : Machine.mem) =
    ok m.Machine.mbase
    && match m.Machine.mindex with None -> true | Some i -> ok i
  in
  let valid = function
    | Machine.MImm (r, _) -> ok r
    | Machine.MMovR (d, s)
    | Machine.MAlu2 (_, d, s)
    | Machine.MFAlu2 (_, d, s)
    | Machine.MCvtIF (d, s)
    | Machine.MCvtFI (d, s) -> ok d && ok s
    | Machine.MAlu3 (_, d, a, b) | Machine.MFAlu3 (_, d, a, b) -> ok d && ok a && ok b
    | Machine.MAluI (_, d, _) -> ok d
    | Machine.MAlu3I (_, d, a, _) -> ok d && ok a
    | Machine.MLoad (_, d, m) | Machine.MAluMem (_, d, m) | Machine.MFAluMem (_, d, m) ->
        ok d && okm m
    | Machine.MStore (_, s, m) -> ok s && okm m
    | Machine.MBr (_, a, b, _) -> ok a && ok b
    | Machine.MJmp _ | Machine.MSyscall _ | Machine.MMigrate _ | Machine.MHalt -> true
  in
  Array.iteri
    (fun i op ->
      if not (valid op) then
        invalid_arg
          (Printf.sprintf "Interp.create: op %d references a register outside nregs=%d" i n))
    prog.Machine.ops

let create ?tc prog =
  validate_registers prog;
  let nops = Array.length prog.Machine.ops in
  {
    prog;
    register_file = Array.make prog.Machine.nregs 0L;
    pc = 0;
    icount = 0;
    halted = false;
    tc;
    leader_counts = (match tc with Some _ -> Array.make nops 0 | None -> [||]);
    traces = (match tc with Some _ -> Array.make nops None | None -> [||]);
  }

let program t = t.prog
let pc t = t.pc
let set_pc t pc = t.pc <- pc
let icount t = t.icount
let reg t r = t.register_file.(r)
let set_reg t r v = t.register_file.(r) <- v
let regs t = t.register_file
let halted t = t.halted
let tc t = t.tc

let trace_count t =
  Array.fold_left (fun acc tr -> match tr with Some _ -> acc + 1 | None -> acc) 0 t.traces

let invalidate_traces t =
  match t.tc with
  | None -> ()
  | Some tc ->
      let dropped = ref 0 in
      Array.iteri
        (fun i tr ->
          match tr with
          | Some _ ->
              incr dropped;
              t.traces.(i) <- None
          | None -> ())
        t.traces;
      Array.fill t.leader_counts 0 (Array.length t.leader_counts) 0;
      tc.stats.tc_flushes <- tc.stats.tc_flushes + !dropped

let eval_binop op a b =
  match op with
  | Mir.Add -> Int64.add a b
  | Mir.Sub -> Int64.sub a b
  | Mir.Mul -> Int64.mul a b
  | Mir.Div -> if b = 0L then raise (Trap "division by zero") else Int64.div a b
  | Mir.Rem -> if b = 0L then raise (Trap "remainder by zero") else Int64.rem a b
  | Mir.And -> Int64.logand a b
  | Mir.Or -> Int64.logor a b
  | Mir.Xor -> Int64.logxor a b
  | Mir.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Mir.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let eval_fbinop op a b =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let r =
    match op with
    | Mir.Fadd -> x +. y
    | Mir.Fsub -> x -. y
    | Mir.Fmul -> x *. y
    | Mir.Fdiv -> x /. y
  in
  Int64.bits_of_float r

(* Local mirror of [Mir.eval_cond] (identical semantics): the dispatch
   loop and the trace replayer take a branch per loop iteration, so the
   comparison must not be a cross-module call (no flambda, so those never
   inline). *)
let eval_cond cond a b =
  let c = Int64.compare a b in
  match cond with
  | Mir.Eq -> c = 0
  | Mir.Ne -> c <> 0
  | Mir.Lt -> c < 0
  | Mir.Le -> c <= 0
  | Mir.Gt -> c > 0
  | Mir.Ge -> c >= 0

(* Local mirror of [Mir.bytes_of_width], for the same reason. *)
let bytes_of_width = function Mir.W8 -> 1 | Mir.W16 -> 2 | Mir.W32 -> 4 | Mir.W64 -> 8

(* Register indices were validated at [create]; unsafe accesses here are in
   bounds by construction. *)
let effective_address regs (m : Machine.mem) =
  let base = Int64.to_int (Array.unsafe_get regs m.Machine.mbase) in
  let idx =
    match m.Machine.mindex with
    | None -> 0
    | Some i -> Int64.to_int (Array.unsafe_get regs i) * m.Machine.mscale
  in
  base + idx + m.Machine.mdisp

(* Build a superblock starting at [leader]: the longest straight-line run
   of pre-decodable ops, ending early at (and including) an unconditional
   jump, and excluding syscall/migrate/halt terminators — the generic
   loop handles those. Branches stay inside the trace as side exits. *)
let build_trace t tc ~leader =
  let ops = t.prog.Machine.ops in
  let code_off = t.prog.Machine.code_off in
  let nops = Array.length ops in
  let code_base = Codegen.code_base in
  let rec scan pc acc n =
    if pc >= nops || n >= tc.max_trace then List.rev acc
    else
      match ops.(pc) with
      | Machine.MSyscall _ | Machine.MMigrate _ | Machine.MHalt -> List.rev acc
      | Machine.MImm (r, v) -> scan (pc + 1) (SImm (r, v) :: acc) (n + 1)
      | Machine.MMovR (d, s) -> scan (pc + 1) (SMovR (d, s) :: acc) (n + 1)
      | Machine.MAlu3 (op, d, a, b) -> scan (pc + 1) (SAlu3 (op, d, a, b) :: acc) (n + 1)
      | Machine.MAlu2 (op, d, s) -> scan (pc + 1) (SAlu2 (op, d, s) :: acc) (n + 1)
      | Machine.MAluI (op, d, v) -> scan (pc + 1) (SAluI (op, d, v) :: acc) (n + 1)
      | Machine.MAlu3I (op, d, a, v) -> scan (pc + 1) (SAlu3I (op, d, a, v) :: acc) (n + 1)
      | Machine.MLoad (w, d, m) -> scan (pc + 1) (SLoad (bytes_of_width w, d, m) :: acc) (n + 1)
      | Machine.MStore (w, s, m) ->
          scan (pc + 1) (SStore (bytes_of_width w, s, m) :: acc) (n + 1)
      | Machine.MAluMem (op, d, m) -> scan (pc + 1) (SAluMem (op, d, m) :: acc) (n + 1)
      | Machine.MFAluMem (op, d, m) -> scan (pc + 1) (SFAluMem (op, d, m) :: acc) (n + 1)
      | Machine.MFAlu3 (op, d, a, b) -> scan (pc + 1) (SFAlu3 (op, d, a, b) :: acc) (n + 1)
      | Machine.MFAlu2 (op, d, s) -> scan (pc + 1) (SFAlu2 (op, d, s) :: acc) (n + 1)
      | Machine.MCvtIF (d, s) -> scan (pc + 1) (SCvtIF (d, s) :: acc) (n + 1)
      | Machine.MCvtFI (d, s) -> scan (pc + 1) (SCvtFI (d, s) :: acc) (n + 1)
      | Machine.MJmp target -> List.rev (SJmp target :: acc)
      | Machine.MBr (c, a, b, target) -> scan (pc + 1) (SBr (c, a, b, target) :: acc) (n + 1)
  in
  match scan leader [] 0 with
  | [] -> () (* the leader itself is a terminator the trace cannot hold *)
  | slots ->
      let t_slots = Array.of_list slots in
      let t_len = Array.length t_slots in
      let t_vaddrs =
        Array.init t_len (fun j -> code_base + Array.unsafe_get code_off (leader + j))
      in
      let t_loopback =
        match t_slots.(t_len - 1) with SJmp target -> target = leader | _ -> false
      in
      t.traces.(leader) <- Some { t_leader = leader; t_len; t_slots; t_vaddrs; t_loopback };
      tc.stats.tc_built <- tc.stats.tc_built + 1

(* Control-transfer target bookkeeping: bump the leader counter and build
   the trace the moment the threshold is crossed. Host-side heuristic
   state only — nothing simulated depends on it. *)
let note_leader t target =
  match t.tc with
  | None -> ()
  | Some tc ->
      if target >= 0 && target < Array.length t.leader_counts then begin
        match t.traces.(target) with
        | Some _ -> ()
        | None ->
            let c = t.leader_counts.(target) + 1 in
            t.leader_counts.(target) <- c;
            if c = tc.threshold then build_trace t tc ~leader:target
      end

let run t memio ~fuel =
  if t.halted then Halted
  else begin
    let ops = t.prog.Machine.ops in
    let code_off = t.prog.Machine.code_off in
    let regs = t.register_file in
    let nops = Array.length ops in
    let code_base = Codegen.code_base in
    (* Hoist the memio closures out of their record: one field load here
       instead of one per simulated instruction. *)
    let fetch = memio.fetch in
    let load = memio.load in
    let store = memio.store in
    let remaining = ref fuel in
    let result = ref Out_of_fuel in
    let running = ref true in
    (* [pc] and [icount] live in locals for the duration of the loop and are
       flushed on every exit path. Nothing observes them mid-run: the memio
       closures never read interpreter state, and external readers
       ([Runner.account], the schedulers) only run between [run] calls. *)
    let pcr = ref t.pc in
    let ic = ref t.icount in
    let flush () =
      t.pc <- !pcr;
      t.icount <- !ic
    in
    let traces = t.traces in
    let tc_on = t.tc <> None in
    let tc_stats =
      match t.tc with
      | Some tc -> tc.stats
      | None ->
          { tc_built = 0; tc_entered = 0; tc_instrs = 0; tc_side_exits = 0; tc_flushes = 0 }
    in
    (* Replay a trace whose entry guards already passed: leader bounds
       checked by the dispatch loop, [!remaining >= t_len] checked at
       entry (and again before each loop-back), so the per-step guards
       reduce to the slot walk itself. pc/icount/fuel advance per step
       exactly as the generic loop's, which is what makes a mid-trace
       exception (trap, unrecoverable fault) land with identical state. *)
    let exec_trace tr =
      let stats = tc_stats in
      let slots = tr.t_slots in
      let vaddrs = tr.t_vaddrs in
      let len = tr.t_len in
      let leader = tr.t_leader in
      let again = ref true in
      while !again do
        again := false;
        stats.tc_entered <- stats.tc_entered + 1;
        let i = ref 0 in
        let exited = ref false in
        while (not !exited) && !i < len do
          let j = !i in
          fetch (Array.unsafe_get vaddrs j);
          ic := !ic + 1;
          decr remaining;
          pcr := leader + j + 1;
          (match Array.unsafe_get slots j with
          | SImm (r, v) -> Array.unsafe_set regs r v
          | SMovR (d, s) -> Array.unsafe_set regs d (Array.unsafe_get regs s)
          | SAlu3 (op, d, a, b) ->
              Array.unsafe_set regs d
                (eval_binop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
          | SAlu2 (op, d, s) ->
              Array.unsafe_set regs d
                (eval_binop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
          | SAluI (op, d, v) ->
              Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) v)
          | SAlu3I (op, d, a, v) ->
              Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs a) v)
          | SLoad (bytes, d, m) ->
              let va = effective_address regs m in
              Array.unsafe_set regs d (load bytes va)
          | SStore (bytes, s, m) ->
              let va = effective_address regs m in
              store bytes va (Array.unsafe_get regs s)
          | SAluMem (op, d, m) ->
              let va = effective_address regs m in
              Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) (load 8 va))
          | SFAluMem (op, d, m) ->
              let va = effective_address regs m in
              Array.unsafe_set regs d (eval_fbinop op (Array.unsafe_get regs d) (load 8 va))
          | SFAlu3 (op, d, a, b) ->
              Array.unsafe_set regs d
                (eval_fbinop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
          | SFAlu2 (op, d, s) ->
              Array.unsafe_set regs d
                (eval_fbinop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
          | SCvtIF (d, s) ->
              Array.unsafe_set regs d
                (Int64.bits_of_float (Int64.to_float (Array.unsafe_get regs s)))
          | SCvtFI (d, s) ->
              Array.unsafe_set regs d
                (Int64.of_float (Int64.float_of_bits (Array.unsafe_get regs s)))
          | SJmp target ->
              (* Terminal slot by construction (j = len - 1). *)
              pcr := target;
              if target <> leader then note_leader t target
          | SBr (c, a, b, target) ->
              if eval_cond c (Array.unsafe_get regs a) (Array.unsafe_get regs b) then begin
                pcr := target;
                exited := true;
                stats.tc_side_exits <- stats.tc_side_exits + 1;
                note_leader t target
              end);
          incr i
        done;
        stats.tc_instrs <- stats.tc_instrs + !i;
        if (not !exited) && tr.t_loopback && !remaining >= len then again := true
      done
    in
    (try
       while !running && !remaining > 0 do
         let pc = !pcr in
         if pc < 0 || pc >= nops then raise (Trap "pc out of text segment");
         match (if tc_on then Array.unsafe_get traces pc else None) with
         | Some tr when !remaining >= tr.t_len -> exec_trace tr
         | _ -> (
             fetch (code_base + Array.unsafe_get code_off pc);
             ic := !ic + 1;
             decr remaining;
             pcr := pc + 1;
             (* [pc < nops] was just checked, so ops/code_off reads are in
                bounds; register indices were validated at [create]. *)
             match Array.unsafe_get ops pc with
             | Machine.MImm (r, v) -> Array.unsafe_set regs r v
             | Machine.MMovR (d, s) -> Array.unsafe_set regs d (Array.unsafe_get regs s)
             | Machine.MAlu3 (op, d, a, b) ->
                 Array.unsafe_set regs d
                   (eval_binop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
             | Machine.MAlu2 (op, d, s) ->
                 Array.unsafe_set regs d
                   (eval_binop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
             | Machine.MAluI (op, d, v) ->
                 Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) v)
             | Machine.MAlu3I (op, d, a, v) ->
                 Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs a) v)
             | Machine.MLoad (w, d, m) ->
                 let va = effective_address regs m in
                 Array.unsafe_set regs d (load (bytes_of_width w) va)
             | Machine.MStore (w, s, m) ->
                 let va = effective_address regs m in
                 store (bytes_of_width w) va (Array.unsafe_get regs s)
             | Machine.MAluMem (op, d, m) ->
                 let va = effective_address regs m in
                 Array.unsafe_set regs d (eval_binop op (Array.unsafe_get regs d) (load 8 va))
             | Machine.MFAluMem (op, d, m) ->
                 let va = effective_address regs m in
                 Array.unsafe_set regs d (eval_fbinop op (Array.unsafe_get regs d) (load 8 va))
             | Machine.MFAlu3 (op, d, a, b) ->
                 Array.unsafe_set regs d
                   (eval_fbinop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
             | Machine.MFAlu2 (op, d, s) ->
                 Array.unsafe_set regs d
                   (eval_fbinop op (Array.unsafe_get regs d) (Array.unsafe_get regs s))
             | Machine.MCvtIF (d, s) ->
                 Array.unsafe_set regs d
                   (Int64.bits_of_float (Int64.to_float (Array.unsafe_get regs s)))
             | Machine.MCvtFI (d, s) ->
                 Array.unsafe_set regs d
                   (Int64.of_float (Int64.float_of_bits (Array.unsafe_get regs s)))
             | Machine.MJmp target ->
                 pcr := target;
                 note_leader t target
             | Machine.MBr (c, a, b, target) ->
                 if eval_cond c (Array.unsafe_get regs a) (Array.unsafe_get regs b) then begin
                   pcr := target;
                   note_leader t target
                 end
             | Machine.MSyscall s ->
                 result := Syscall s;
                 running := false
             | Machine.MMigrate id ->
                 result := Migrate id;
                 running := false
             | Machine.MHalt ->
                 t.halted <- true;
                 result := Halted;
                 running := false)
       done
     with e ->
       flush ();
       (* An exceptional exit voids the control-flow assumptions the
          traces were built under; drop them (counted as flushes). *)
       invalidate_traces t;
       raise e);
    flush ();
    !result
  end
