type memio = {
  load : int -> int -> int64;
  store : int -> int -> int64 -> unit;
  fetch : int -> unit;
}

type t = {
  prog : Machine.program;
  register_file : int64 array;
  mutable pc : int;
  mutable icount : int;
  mutable halted : bool;
}

type outcome = Out_of_fuel | Halted | Migrate of int | Syscall of Mir.syscall

exception Trap of string

let create prog =
  {
    prog;
    register_file = Array.make prog.Machine.nregs 0L;
    pc = 0;
    icount = 0;
    halted = false;
  }

let program t = t.prog
let pc t = t.pc
let set_pc t pc = t.pc <- pc
let icount t = t.icount
let reg t r = t.register_file.(r)
let set_reg t r v = t.register_file.(r) <- v
let regs t = t.register_file
let halted t = t.halted

let eval_binop op a b =
  match op with
  | Mir.Add -> Int64.add a b
  | Mir.Sub -> Int64.sub a b
  | Mir.Mul -> Int64.mul a b
  | Mir.Div -> if b = 0L then raise (Trap "division by zero") else Int64.div a b
  | Mir.Rem -> if b = 0L then raise (Trap "remainder by zero") else Int64.rem a b
  | Mir.And -> Int64.logand a b
  | Mir.Or -> Int64.logor a b
  | Mir.Xor -> Int64.logxor a b
  | Mir.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Mir.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let eval_fbinop op a b =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let r =
    match op with
    | Mir.Fadd -> x +. y
    | Mir.Fsub -> x -. y
    | Mir.Fmul -> x *. y
    | Mir.Fdiv -> x /. y
  in
  Int64.bits_of_float r

let effective_address regs (m : Machine.mem) =
  let base = Int64.to_int regs.(m.Machine.mbase) in
  let idx =
    match m.Machine.mindex with
    | None -> 0
    | Some i -> Int64.to_int regs.(i) * m.Machine.mscale
  in
  base + idx + m.Machine.mdisp

let run t memio ~fuel =
  if t.halted then Halted
  else begin
    let ops = t.prog.Machine.ops in
    let code_off = t.prog.Machine.code_off in
    let regs = t.register_file in
    let nops = Array.length ops in
    let remaining = ref fuel in
    let result = ref Out_of_fuel in
    let running = ref true in
    while !running && !remaining > 0 do
      if t.pc < 0 || t.pc >= nops then raise (Trap "pc out of text segment");
      let pc = t.pc in
      memio.fetch (Codegen.code_base + code_off.(pc));
      t.icount <- t.icount + 1;
      decr remaining;
      t.pc <- pc + 1;
      (match ops.(pc) with
      | Machine.MImm (r, v) -> regs.(r) <- v
      | Machine.MMovR (d, s) -> regs.(d) <- regs.(s)
      | Machine.MAlu3 (op, d, a, b) -> regs.(d) <- eval_binop op regs.(a) regs.(b)
      | Machine.MAlu2 (op, d, s) -> regs.(d) <- eval_binop op regs.(d) regs.(s)
      | Machine.MAluI (op, d, v) -> regs.(d) <- eval_binop op regs.(d) v
      | Machine.MAlu3I (op, d, a, v) -> regs.(d) <- eval_binop op regs.(a) v
      | Machine.MLoad (w, d, m) ->
          let va = effective_address regs m in
          regs.(d) <- memio.load (Mir.bytes_of_width w) va
      | Machine.MStore (w, s, m) ->
          let va = effective_address regs m in
          memio.store (Mir.bytes_of_width w) va regs.(s)
      | Machine.MAluMem (op, d, m) ->
          let va = effective_address regs m in
          regs.(d) <- eval_binop op regs.(d) (memio.load 8 va)
      | Machine.MFAluMem (op, d, m) ->
          let va = effective_address regs m in
          regs.(d) <- eval_fbinop op regs.(d) (memio.load 8 va)
      | Machine.MFAlu3 (op, d, a, b) -> regs.(d) <- eval_fbinop op regs.(a) regs.(b)
      | Machine.MFAlu2 (op, d, s) -> regs.(d) <- eval_fbinop op regs.(d) regs.(s)
      | Machine.MCvtIF (d, s) -> regs.(d) <- Int64.bits_of_float (Int64.to_float regs.(s))
      | Machine.MCvtFI (d, s) -> regs.(d) <- Int64.of_float (Int64.float_of_bits regs.(s))
      | Machine.MJmp target -> t.pc <- target
      | Machine.MBr (c, a, b, target) ->
          if Mir.eval_cond c regs.(a) regs.(b) then t.pc <- target
      | Machine.MSyscall s ->
          result := Syscall s;
          running := false
      | Machine.MMigrate id ->
          result := Migrate id;
          running := false
      | Machine.MHalt ->
          t.halted <- true;
          result := Halted;
          running := false)
    done;
    !result
  end
