(** Cross-ISA execution-state transformation — the runtime half of the
    Popcorn compiler toolchain (paper §5 "Applications' Compiler and
    Linker").

    Migration is only legal at migration points ({!Mir.Migrate_point}),
    which are compiled into both ISA binaries; at such a point the live
    architectural state is exactly the Mir virtual registers (codegen
    scratch registers are never live across a Mir instruction), so
    transformation copies the common register file and maps the program
    counter through the per-ISA migration-point tables. *)

val transform : src:Interp.t -> point:int -> dst_prog:Machine.program -> Interp.t
(** Build a destination-ISA CPU state resuming just after migration point
    [point]. Raises [Not_found] if [dst_prog] lacks the point. *)

val transform_cost_instructions : int
(** Modelled cost (in instructions, charged by the migration service) of
    rewriting the register/stack state, standing in for the Popcorn
    runtime's state-transformation pass. *)
