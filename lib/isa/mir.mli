(** Mir — the machine-independent mini-IR.

    Workloads are written once in Mir and lowered by {!Codegen} to the two
    toy ISAs ([x86ish], [armish]), giving genuinely different instruction
    streams for the same program — the property the paper's heterogeneous-
    ISA execution and icount validation (Fig. 7) depend on. This plays the
    role of the Popcorn compiler toolchain in our reproduction.

    Mir is deliberately small: integer and IEEE-double arithmetic over an
    unbounded virtual register file, loads/stores with a full addressing
    mode, conditional branches to labels, a futex syscall pair, and
    migration points (the cross-ISA equivalence points at which threads may
    migrate). *)

type reg = int

type width = W8 | W16 | W32 | W64

val bytes_of_width : width -> int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

val binop_commutative : binop -> bool

type fbinop = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

val eval_cond : cond -> int64 -> int64 -> bool
(** Signed comparison semantics. *)

type label = int

type addr = { base : reg; index : reg option; scale : int; disp : int }

val based : reg -> addr
val based_disp : reg -> int -> addr
val indexed : reg -> reg -> scale:int -> addr
val indexed_disp : reg -> reg -> scale:int -> disp:int -> addr

type syscall =
  | Futex_wait of { uaddr : reg; expected : reg }
  | Futex_wake of { uaddr : reg; nwake : int }

type instr =
  | Const of reg * int64
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg (* dst, a, b *)
  | Bini of binop * reg * reg * int64
  | Fbin of fbinop * reg * reg * reg
  | Fconst of reg * float
  | F_of_int of reg * reg
  | Int_of_f of reg * reg
  | Load of width * reg * addr
  | Store of width * reg * addr (* value, address *)
  | Jump of label
  | Branch of cond * reg * reg * label
  | Label of label
  | Syscall of syscall
  | Migrate_point of int
  | Halt

type program = { code : instr array; nregs : int; nlabels : int }

val pp_instr : Format.formatter -> instr -> unit
val validate : program -> (unit, string) result
(** Structural checks: register/label ranges, labels defined exactly once,
    positive scales. *)
