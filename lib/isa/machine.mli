(** Machine-level programs: the common executable representation the two
    code generators target.

    Each [mop] is exactly one architectural instruction of the toy ISA;
    codegen decides how many of them a Mir instruction needs (this is where
    per-ISA icount differences come from). [code_off] assigns every op a
    byte offset in the text segment, with x86ish variable-length encodings
    and fixed 4-byte armish ones, so instruction fetch exercises the I-cache
    realistically. *)

type mem = { mbase : Mir.reg; mindex : Mir.reg option; mscale : int; mdisp : int }

type mop =
  | MImm of Mir.reg * int64 (* load immediate *)
  | MMovR of Mir.reg * Mir.reg
  | MAlu3 of Mir.binop * Mir.reg * Mir.reg * Mir.reg (* armish: d <- a op b *)
  | MAlu2 of Mir.binop * Mir.reg * Mir.reg (* x86ish: d <- d op s *)
  | MAluI of Mir.binop * Mir.reg * int64 (* d <- d op imm *)
  | MAlu3I of Mir.binop * Mir.reg * Mir.reg * int64 (* armish: d <- a op imm *)
  | MLoad of Mir.width * Mir.reg * mem
  | MStore of Mir.width * Mir.reg * mem
  | MAluMem of Mir.binop * Mir.reg * mem (* x86ish: d <- d op [mem] *)
  | MFAluMem of Mir.fbinop * Mir.reg * mem
  | MFAlu3 of Mir.fbinop * Mir.reg * Mir.reg * Mir.reg
  | MFAlu2 of Mir.fbinop * Mir.reg * Mir.reg
  | MCvtIF of Mir.reg * Mir.reg (* int -> double *)
  | MCvtFI of Mir.reg * Mir.reg
  | MJmp of int (* target op index *)
  | MBr of Mir.cond * Mir.reg * Mir.reg * int
  | MSyscall of Mir.syscall
  | MMigrate of int
  | MHalt

type program = {
  isa : Stramash_sim.Node_id.t;
  ops : mop array;
  code_off : int array; (* byte offset of each op in the text segment *)
  code_bytes : int;
  migrate_pcs : (int * int) list; (* migration-point id -> op index *)
  nregs : int; (* including codegen scratch registers *)
}

val op_bytes : Stramash_sim.Node_id.t -> mop -> int
(** Encoded size of one instruction on the given ISA. *)

val find_migrate_pc : program -> int -> int
(** Op index of a migration point; raises [Not_found]. *)

val pp_mop : Format.formatter -> mop -> unit

val pp_program : Format.formatter -> program -> unit
(** Disassembly listing: op index, text-segment byte offset, rendered
    instruction; migration points are annotated. *)
