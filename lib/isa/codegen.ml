module Node_id = Stramash_sim.Node_id

let code_base = 0x400000

(* Growable op buffer with label back-patching. *)
type buf = {
  mutable ops : Machine.mop array;
  mutable len : int;
  label_pos : int array; (* label -> op index, -1 until placed *)
  mutable patches : (int * Mir.label) list; (* op index to patch, label *)
  mutable migrate_pcs : (int * int) list;
}

let buf_create nlabels =
  {
    ops = Array.make 256 Machine.MHalt;
    len = 0;
    label_pos = Array.make (max nlabels 1) (-1);
    patches = [];
    migrate_pcs = [];
  }

let push b op =
  if b.len = Array.length b.ops then begin
    let bigger = Array.make (2 * b.len) Machine.MHalt in
    Array.blit b.ops 0 bigger 0 b.len;
    b.ops <- bigger
  end;
  b.ops.(b.len) <- op;
  b.len <- b.len + 1

let emit_jump b l =
  b.patches <- (b.len, l) :: b.patches;
  push b (Machine.MJmp (-1))

let emit_branch b c r1 r2 l =
  b.patches <- (b.len, l) :: b.patches;
  push b (Machine.MBr (c, r1, r2, -1))

let resolve b =
  List.iter
    (fun (idx, l) ->
      let target = b.label_pos.(l) in
      assert (target >= 0);
      match b.ops.(idx) with
      | Machine.MJmp _ -> b.ops.(idx) <- Machine.MJmp target
      | Machine.MBr (c, a, r, _) -> b.ops.(idx) <- Machine.MBr (c, a, r, target)
      | _ -> assert false)
    b.patches

(* armish immediates: how many movz/movk steps a 64-bit value needs. *)
let arm_imm_chunks v =
  if v = 0L then 1
  else begin
    let n = ref 0 in
    for i = 0 to 3 do
      if Int64.logand (Int64.shift_right_logical v (16 * i)) 0xFFFFL <> 0L then incr n
    done;
    max !n 1
  end

(* Emit an armish immediate load: one movz plus movk's, materialised as
   partial values so intermediate architectural state is honest. *)
let arm_load_imm b r v =
  let chunks = arm_imm_chunks v in
  if chunks = 1 then push b (Machine.MImm (r, v))
  else begin
    let acc = ref 0L in
    let emitted = ref 0 in
    for i = 0 to 3 do
      let chunk = Int64.logand (Int64.shift_right_logical v (16 * i)) 0xFFFFL in
      if chunk <> 0L then begin
        acc := Int64.logor !acc (Int64.shift_left chunk (16 * i));
        incr emitted;
        push b (Machine.MImm (r, !acc))
      end
    done;
    assert (!emitted = chunks)
  end

let fits_arm_alu_imm v = v >= 0L && v < 4096L
let fits_arm_disp d = d > -4096 && d < 4096

(* ---------- armish lowering ---------- *)

let lower_armish (p : Mir.program) =
  let b = buf_create p.Mir.nlabels in
  (* Two scratch registers for address/immediate materialisation. *)
  let scratch0 = p.Mir.nregs in
  let scratch1 = p.Mir.nregs + 1 in
  let nregs = p.Mir.nregs + 2 in
  let mem_operand (a : Mir.addr) width =
    let wbytes = Mir.bytes_of_width width in
    match a.Mir.index with
    | None when fits_arm_disp a.Mir.disp ->
        { Machine.mbase = a.Mir.base; mindex = None; mscale = 1; mdisp = a.Mir.disp }
    | None ->
        (* Displacement out of range: materialise it and add. *)
        arm_load_imm b scratch0 (Int64.of_int a.Mir.disp);
        push b (Machine.MAlu3 (Mir.Add, scratch0, a.Mir.base, scratch0));
        { Machine.mbase = scratch0; mindex = None; mscale = 1; mdisp = 0 }
    | Some i when a.Mir.disp = 0 && (a.Mir.scale = 1 || a.Mir.scale = wbytes) ->
        (* Register-offset addressing (optionally scaled by the width). *)
        { Machine.mbase = a.Mir.base; mindex = Some i; mscale = a.Mir.scale; mdisp = 0 }
    | Some i ->
        (* General case: scratch0 = base + index * scale, then base+disp. *)
        let scale_pow2 = a.Mir.scale land (a.Mir.scale - 1) = 0 in
        (if scale_pow2 then begin
           if a.Mir.scale = 1 then push b (Machine.MAlu3 (Mir.Add, scratch0, a.Mir.base, i))
           else begin
             let log2 = int_of_float (Float.round (Float.log2 (float_of_int a.Mir.scale))) in
             push b (Machine.MAlu3I (Mir.Shl, scratch0, i, Int64.of_int log2));
             push b (Machine.MAlu3 (Mir.Add, scratch0, a.Mir.base, scratch0))
           end
         end
         else begin
           arm_load_imm b scratch1 (Int64.of_int a.Mir.scale);
           push b (Machine.MAlu3 (Mir.Mul, scratch0, i, scratch1));
           push b (Machine.MAlu3 (Mir.Add, scratch0, a.Mir.base, scratch0))
         end);
        if fits_arm_disp a.Mir.disp then
          { Machine.mbase = scratch0; mindex = None; mscale = 1; mdisp = a.Mir.disp }
        else begin
          arm_load_imm b scratch1 (Int64.of_int a.Mir.disp);
          push b (Machine.MAlu3 (Mir.Add, scratch0, scratch0, scratch1));
          { Machine.mbase = scratch0; mindex = None; mscale = 1; mdisp = 0 }
        end
  in
  Array.iter
    (fun instr ->
      match instr with
      | Mir.Const (r, v) -> arm_load_imm b r v
      | Mir.Fconst (r, v) -> arm_load_imm b r (Int64.bits_of_float v)
      | Mir.Mov (d, s) -> push b (Machine.MMovR (d, s))
      | Mir.Bin (op, d, a, b') -> push b (Machine.MAlu3 (op, d, a, b'))
      | Mir.Bini (op, d, a, v) ->
          if fits_arm_alu_imm v then push b (Machine.MAlu3I (op, d, a, v))
          else begin
            arm_load_imm b scratch0 v;
            push b (Machine.MAlu3 (op, d, a, scratch0))
          end
      | Mir.Fbin (op, d, a, b') -> push b (Machine.MFAlu3 (op, d, a, b'))
      | Mir.F_of_int (d, s) -> push b (Machine.MCvtIF (d, s))
      | Mir.Int_of_f (d, s) -> push b (Machine.MCvtFI (d, s))
      | Mir.Load (w, d, a) ->
          let m = mem_operand a w in
          push b (Machine.MLoad (w, d, m))
      | Mir.Store (w, s, a) ->
          let m = mem_operand a w in
          push b (Machine.MStore (w, s, m))
      | Mir.Jump l -> emit_jump b l
      | Mir.Branch (c, r1, r2, l) -> emit_branch b c r1 r2 l
      | Mir.Label l -> b.label_pos.(l) <- b.len
      | Mir.Syscall s -> push b (Machine.MSyscall s)
      | Mir.Migrate_point id ->
          b.migrate_pcs <- (id, b.len) :: b.migrate_pcs;
          push b (Machine.MMigrate id)
      | Mir.Halt -> push b Machine.MHalt)
    p.Mir.code;
  (b, nregs)

(* ---------- x86ish lowering ---------- *)

(* Load-op fusion: a W64 [Load (t, m)] immediately followed by the only
   read of [t] as the second source of an ALU op folds into a
   memory-operand instruction, as an x86 instruction selector would do.
   [read_sites] finds registers read at exactly one instruction. *)
let single_read_site (p : Mir.program) =
  let nregs = p.Mir.nregs in
  let site = Array.make nregs (-1) in
  let multi = Array.make nregs false in
  let note i r = if site.(r) = -1 then site.(r) <- i else if site.(r) <> i then multi.(r) <- true in
  let note_addr i (a : Mir.addr) =
    note i a.Mir.base;
    match a.Mir.index with Some r -> note i r | None -> ()
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Mir.Const _ | Mir.Fconst _ | Mir.Label _ | Mir.Jump _ | Mir.Migrate_point _ | Mir.Halt -> ()
      | Mir.Mov (_, s) | Mir.F_of_int (_, s) | Mir.Int_of_f (_, s) -> note i s
      | Mir.Bin (_, _, a, b) | Mir.Fbin (_, _, a, b) ->
          note i a;
          note i b
      | Mir.Bini (_, _, a, _) -> note i a
      | Mir.Load (_, _, addr) -> note_addr i addr
      | Mir.Store (_, s, addr) ->
          note i s;
          note_addr i addr
      | Mir.Branch (_, a, b, _) ->
          note i a;
          note i b
      | Mir.Syscall (Mir.Futex_wait { uaddr; expected }) ->
          note i uaddr;
          note i expected
      | Mir.Syscall (Mir.Futex_wake { uaddr; _ }) -> note i uaddr)
    p.Mir.code;
  fun r i -> (not multi.(r)) && site.(r) = i

let lower_x86ish (p : Mir.program) =
  let b = buf_create p.Mir.nlabels in
  let scratch0 = p.Mir.nregs in
  let nregs = p.Mir.nregs + 1 in
  let only_read_at = single_read_site p in
  let mem_operand (a : Mir.addr) =
    match a.Mir.index with
    | Some _ when not (List.mem a.Mir.scale [ 1; 2; 4; 8 ]) ->
        (* x86 SIB scales are 1/2/4/8 only; precompute the index. *)
        let i = Option.get a.Mir.index in
        push b (Machine.MMovR (scratch0, i));
        push b (Machine.MAluI (Mir.Mul, scratch0, Int64.of_int a.Mir.scale));
        { Machine.mbase = a.Mir.base; mindex = Some scratch0; mscale = 1; mdisp = a.Mir.disp }
    | _ ->
        { Machine.mbase = a.Mir.base; mindex = a.Mir.index; mscale = a.Mir.scale; mdisp = a.Mir.disp }
  in
  let two_address d a src_emit =
    (* d <- a op b on a two-address machine. *)
    if d = a then src_emit d
    else begin
      push b (Machine.MMovR (d, a));
      src_emit d
    end
  in
  let lower_one instr =
    match instr with
    | Mir.Const (r, v) -> push b (Machine.MImm (r, v))
    | Mir.Fconst (r, v) -> push b (Machine.MImm (r, Int64.bits_of_float v))
    | Mir.Mov (d, s) -> push b (Machine.MMovR (d, s))
    | Mir.Bin (op, d, a, b') ->
        if d = a then push b (Machine.MAlu2 (op, d, b'))
        else if d = b' && Mir.binop_commutative op then push b (Machine.MAlu2 (op, d, a))
        else if d = b' then begin
          (* d aliases the second source of a non-commutative op: save it. *)
          push b (Machine.MMovR (scratch0, b'));
          push b (Machine.MMovR (d, a));
          push b (Machine.MAlu2 (op, d, scratch0))
        end
        else two_address d a (fun d -> push b (Machine.MAlu2 (op, d, b')))
    | Mir.Bini (op, d, a, v) ->
        if d = a then push b (Machine.MAluI (op, d, v))
        else begin
          push b (Machine.MMovR (d, a));
          push b (Machine.MAluI (op, d, v))
        end
    | Mir.Fbin (op, d, a, b') ->
        if d = a then push b (Machine.MFAlu2 (op, d, b'))
        else if d = b' && (op = Mir.Fadd || op = Mir.Fmul) then push b (Machine.MFAlu2 (op, d, a))
        else if d = b' then begin
          push b (Machine.MMovR (scratch0, b'));
          push b (Machine.MMovR (d, a));
          push b (Machine.MFAlu2 (op, d, scratch0))
        end
        else begin
          push b (Machine.MMovR (d, a));
          push b (Machine.MFAlu2 (op, d, b'))
        end
    | Mir.F_of_int (d, s) -> push b (Machine.MCvtIF (d, s))
    | Mir.Int_of_f (d, s) -> push b (Machine.MCvtFI (d, s))
    | Mir.Load (w, d, a) ->
        let m = mem_operand a in
        push b (Machine.MLoad (w, d, m))
    | Mir.Store (w, s, a) ->
        let m = mem_operand a in
        push b (Machine.MStore (w, s, m))
    | Mir.Jump l -> emit_jump b l
    | Mir.Branch (c, r1, r2, l) -> emit_branch b c r1 r2 l
    | Mir.Label l -> b.label_pos.(l) <- b.len
    | Mir.Syscall s -> push b (Machine.MSyscall s)
    | Mir.Migrate_point id ->
        b.migrate_pcs <- (id, b.len) :: b.migrate_pcs;
        push b (Machine.MMigrate id)
    | Mir.Halt -> push b Machine.MHalt
  in
  (* Fusion guard: the moved [mov d, a] must not clobber the address
     registers of the fused memory operand. *)
  let safe_dest ~d ~a (addr : Mir.addr) =
    d = a || (d <> addr.Mir.base && Some d <> addr.Mir.index)
  in
  let code = p.Mir.code in
  let n = Array.length code in
  let i = ref 0 in
  while !i < n do
    let fused =
      match code.(!i) with
      | Mir.Load (Mir.W64, t, addr) when !i + 1 < n -> (
          match code.(!i + 1) with
          | Mir.Bin (op, d, a, b') when b' = t && a <> t && d <> t && only_read_at t (!i + 1)
                                        && safe_dest ~d ~a addr ->
              two_address d a (fun d -> push b (Machine.MAluMem (op, d, mem_operand addr)));
              true
          | Mir.Bin (op, d, a, b')
            when a = t && b' <> t && d <> t && Mir.binop_commutative op
                 && only_read_at t (!i + 1)
                 && safe_dest ~d ~a:b' addr ->
              two_address d b' (fun d -> push b (Machine.MAluMem (op, d, mem_operand addr)));
              true
          | Mir.Fbin (op, d, a, b') when b' = t && a <> t && d <> t && only_read_at t (!i + 1)
                                         && safe_dest ~d ~a addr ->
              two_address d a (fun d -> push b (Machine.MFAluMem (op, d, mem_operand addr)));
              true
          | Mir.Fbin (op, d, a, b')
            when a = t && b' <> t && d <> t
                 && (op = Mir.Fadd || op = Mir.Fmul)
                 && only_read_at t (!i + 1)
                 && safe_dest ~d ~a:b' addr ->
              two_address d b' (fun d -> push b (Machine.MFAluMem (op, d, mem_operand addr)));
              true
          | _ -> false)
      | _ -> false
    in
    if fused then i := !i + 2
    else begin
      lower_one code.(!i);
      incr i
    end
  done;
  (b, nregs)

let lower ~isa (p : Mir.program) =
  (match Mir.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Codegen.lower: " ^ msg));
  let b, nregs =
    match isa with Node_id.Arm -> lower_armish p | Node_id.X86 -> lower_x86ish p
  in
  resolve b;
  let ops = Array.sub b.ops 0 b.len in
  let code_off = Array.make b.len 0 in
  let off = ref 0 in
  Array.iteri
    (fun i op ->
      code_off.(i) <- !off;
      off := !off + Machine.op_bytes isa op)
    ops;
  {
    Machine.isa;
    ops;
    code_off;
    code_bytes = !off;
    migrate_pcs = List.rev b.migrate_pcs;
    nregs;
  }
