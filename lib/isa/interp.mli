(** Interpreter for machine programs — the CPU-emulation half of
    Stramash-QEMU.

    The interpreter is purely architectural: it executes instructions and
    counts them (icount, §7.3). All memory traffic goes through the
    {!memio} callbacks supplied by the node, which perform address
    translation and cache simulation and account the resulting latency;
    instruction fetches are reported per instruction with their text-segment
    virtual address so the I-cache is exercised.

    {2 Superblock trace cache}

    When created with a {!tc} handle, the interpreter detects hot
    straight-line Mir regions (execution-count threshold per control
    transfer target), pre-decodes them into flat slot arrays with
    operands resolved, and replays them with the per-instruction
    bounds/fuel guards hoisted to trace entry. Taken branches are side
    exits back to the generic dispatch path; a terminal back-jump
    re-enters the trace without another table lookup. The cache is
    host-side machinery only: a traced run performs exactly the same
    [memio] calls, icount and fuel accounting as an untraced one, and
    mid-trace exceptions observe the same interpreter state the generic
    loop would have had. Traces are invalidated on migration, on
    checkpoint restore or fault injection on the executing node (the
    runner calls {!invalidate_traces}), and on any exceptional exit from
    {!run}. *)

type memio = {
  load : int -> int -> int64; (* load width_bytes vaddr, zero-extended *)
  store : int -> int -> int64 -> unit; (* store width_bytes vaddr value *)
  fetch : int -> unit; (* instruction fetch at code vaddr *)
}

type t

type outcome =
  | Out_of_fuel (* fuel exhausted; call {!run} again *)
  | Halted
  | Migrate of int (* reached migration point [id] *)
  | Syscall of Mir.syscall (* kernel must handle, then re-run *)

exception Trap of string
(** Division by zero or a jump out of the text segment. *)

type tc
(** Trace-cache configuration and counters, shared by every interpreter
    of one machine (all threads, both nodes, across migrations) so the
    counters describe the whole run. Never share a [tc] between machines
    that may run on different host domains. *)

val make_tc : ?threshold:int -> ?max_trace:int -> unit -> tc
(** [threshold] (default 32) is the execution count a control-transfer
    target must reach before a trace is built at it; [max_trace]
    (default 256) bounds trace length in instructions. *)

val tc_counters : tc -> (string * int) list
(** Host-side observability: [tc.built], [tc.entered], [tc.instrs],
    [tc.side_exits], [tc.flushes]. Deliberately not part of the model
    metrics, so registries stay bit-identical with the cache off. *)

val create : ?tc:tc -> Machine.program -> t
(** Without [?tc] the interpreter runs the plain dispatch loop (trace
    cache off). *)

val tc : t -> tc option
(** The handle this interpreter was created with — migration state
    transfer propagates it to the destination interpreter. *)

val invalidate_traces : t -> unit
(** Drop every built trace and reset leader counts, bumping the
    [tc.flushes] counter per dropped trace. Called by the runner on
    checkpoint restore and crash-stop injection against the executing
    node; a no-op when tracing is off. *)

val trace_count : t -> int
(** Built traces currently live (test observability). *)

val program : t -> Machine.program
val pc : t -> int
val set_pc : t -> int -> unit
val icount : t -> int
val reg : t -> Mir.reg -> int64
val set_reg : t -> Mir.reg -> int64 -> unit
val regs : t -> int64 array
(** The live register file (shared, not a copy). *)

val run : t -> memio -> fuel:int -> outcome
(** Execute at most [fuel] instructions. *)

val halted : t -> bool
