(** Interpreter for machine programs — the CPU-emulation half of
    Stramash-QEMU.

    The interpreter is purely architectural: it executes instructions and
    counts them (icount, §7.3). All memory traffic goes through the
    {!memio} callbacks supplied by the node, which perform address
    translation and cache simulation and account the resulting latency;
    instruction fetches are reported per instruction with their text-segment
    virtual address so the I-cache is exercised. *)

type memio = {
  load : int -> int -> int64; (* load width_bytes vaddr, zero-extended *)
  store : int -> int -> int64 -> unit; (* store width_bytes vaddr value *)
  fetch : int -> unit; (* instruction fetch at code vaddr *)
}

type t

type outcome =
  | Out_of_fuel (* fuel exhausted; call {!run} again *)
  | Halted
  | Migrate of int (* reached migration point [id] *)
  | Syscall of Mir.syscall (* kernel must handle, then re-run *)

exception Trap of string
(** Division by zero or a jump out of the text segment. *)

val create : Machine.program -> t
val program : t -> Machine.program
val pc : t -> int
val set_pc : t -> int -> unit
val icount : t -> int
val reg : t -> Mir.reg -> int64
val set_reg : t -> Mir.reg -> int64 -> unit
val regs : t -> int64 array
(** The live register file (shared, not a copy). *)

val run : t -> memio -> fuel:int -> outcome
(** Execute at most [fuel] instructions. *)

val halted : t -> bool
