module Node_id = Stramash_sim.Node_id

type mem = { mbase : Mir.reg; mindex : Mir.reg option; mscale : int; mdisp : int }

type mop =
  | MImm of Mir.reg * int64
  | MMovR of Mir.reg * Mir.reg
  | MAlu3 of Mir.binop * Mir.reg * Mir.reg * Mir.reg
  | MAlu2 of Mir.binop * Mir.reg * Mir.reg
  | MAluI of Mir.binop * Mir.reg * int64
  | MAlu3I of Mir.binop * Mir.reg * Mir.reg * int64
  | MLoad of Mir.width * Mir.reg * mem
  | MStore of Mir.width * Mir.reg * mem
  | MAluMem of Mir.binop * Mir.reg * mem
  | MFAluMem of Mir.fbinop * Mir.reg * mem
  | MFAlu3 of Mir.fbinop * Mir.reg * Mir.reg * Mir.reg
  | MFAlu2 of Mir.fbinop * Mir.reg * Mir.reg
  | MCvtIF of Mir.reg * Mir.reg
  | MCvtFI of Mir.reg * Mir.reg
  | MJmp of int
  | MBr of Mir.cond * Mir.reg * Mir.reg * int
  | MSyscall of Mir.syscall
  | MMigrate of int
  | MHalt

type program = {
  isa : Node_id.t;
  ops : mop array;
  code_off : int array;
  code_bytes : int;
  migrate_pcs : (int * int) list;
  nregs : int;
}

(* Rough x86-64 encoding lengths; armish (like AArch64) is uniformly 4. *)
let op_bytes isa op =
  match isa with
  | Node_id.Arm -> 4
  | Node_id.X86 -> (
      match op with
      | MImm _ -> 10 (* movabs *)
      | MMovR _ -> 3
      | MAlu2 _ -> 3
      | MAluI _ -> 4
      | MAlu3 _ | MAlu3I _ -> 4 (* not emitted by the x86ish codegen *)
      | MLoad _ | MStore _ -> 5
      | MAluMem _ -> 6
      | MFAluMem _ -> 7
      | MFAlu3 _ -> 5
      | MFAlu2 _ -> 4
      | MCvtIF _ | MCvtFI _ -> 4
      | MJmp _ -> 5
      | MBr _ -> 6 (* cmp+jcc fused pair, counted as one op *)
      | MSyscall _ -> 2
      | MMigrate _ -> 2
      | MHalt -> 1)

let find_migrate_pc p id = List.assoc id p.migrate_pcs

let pp_mem fmt m =
  match m.mindex with
  | None -> Format.fprintf fmt "[r%d%+d]" m.mbase m.mdisp
  | Some i -> Format.fprintf fmt "[r%d+r%d*%d%+d]" m.mbase i m.mscale m.mdisp

let pp_mop fmt = function
  | MImm (r, v) -> Format.fprintf fmt "imm r%d, %Ld" r v
  | MMovR (d, s) -> Format.fprintf fmt "mov r%d, r%d" d s
  | MAlu3 (_, d, a, b) -> Format.fprintf fmt "alu3 r%d, r%d, r%d" d a b
  | MAlu2 (_, d, s) -> Format.fprintf fmt "alu2 r%d, r%d" d s
  | MAluI (_, d, v) -> Format.fprintf fmt "alui r%d, %Ld" d v
  | MAlu3I (_, d, a, v) -> Format.fprintf fmt "alu3i r%d, r%d, %Ld" d a v
  | MLoad (_, d, m) -> Format.fprintf fmt "load r%d, %a" d pp_mem m
  | MStore (_, s, m) -> Format.fprintf fmt "store r%d, %a" s pp_mem m
  | MAluMem (_, d, m) -> Format.fprintf fmt "alumem r%d, %a" d pp_mem m
  | MFAluMem (_, d, m) -> Format.fprintf fmt "falumem r%d, %a" d pp_mem m
  | MFAlu3 (_, d, a, b) -> Format.fprintf fmt "falu3 r%d, r%d, r%d" d a b
  | MFAlu2 (_, d, s) -> Format.fprintf fmt "falu2 r%d, r%d" d s
  | MCvtIF (d, s) -> Format.fprintf fmt "cvtif r%d, r%d" d s
  | MCvtFI (d, s) -> Format.fprintf fmt "cvtfi r%d, r%d" d s
  | MJmp target -> Format.fprintf fmt "jmp %d" target
  | MBr (_, a, b, target) -> Format.fprintf fmt "br r%d, r%d, %d" a b target
  | MSyscall _ -> Format.fprintf fmt "syscall"
  | MMigrate id -> Format.fprintf fmt "migrate %d" id
  | MHalt -> Format.fprintf fmt "halt"

let pp_program fmt p =
  Format.fprintf fmt "; %s image: %d instructions, %d text bytes, %d registers@."
    (Node_id.to_string p.isa) (Array.length p.ops) p.code_bytes p.nregs;
  Array.iteri
    (fun i op ->
      let annot =
        match List.find_opt (fun (_, pc) -> pc = i) p.migrate_pcs with
        | Some (id, _) -> Printf.sprintf "    ; migration point %d" id
        | None -> ""
      in
      Format.fprintf fmt "%6d  +0x%-5x %a%s@." i p.code_off.(i) pp_mop op annot)
    p.ops
