(** Lowering Mir to the two toy ISAs.

    [x86ish] is CISC-flavoured: two-address ALU ops (a three-address Mir op
    whose destination differs from both sources costs an extra [mov]), any
    64-bit immediate in one instruction, and full base+index*scale+disp
    addressing.

    [armish] is RISC-flavoured: three-address ALU ops, immediates built
    from 16-bit chunks (movz/movk style), ALU immediates limited to 12
    bits, and addressing limited to base+disp (|disp| < 4096) or
    base+index (scale 1 or the access width); anything richer is computed
    into scratch registers with extra instructions.

    These asymmetries make the two instruction streams differ in count and
    mix for the same Mir program, which is what the paper's per-ISA icount
    behaviour (Fig. 7) relies on. *)

val lower : isa:Stramash_sim.Node_id.t -> Mir.program -> Machine.program
(** Raises [Invalid_argument] if the program fails {!Mir.validate}. *)

val code_base : int
(** Virtual address of the text segment in every process image. *)
