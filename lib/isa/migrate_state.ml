module Trace = Stramash_obs.Trace

let transform ~src ~point ~dst_prog =
  (* Migration abandons the source interpreter: its superblock traces are
     invalidated (counted as flushes) and the shared trace-cache handle
     travels to the destination, which warms up fresh traces for the
     destination ISA's encoding. *)
  Interp.invalidate_traces src;
  let dst = Interp.create ?tc:(Interp.tc src) dst_prog in
  let src_regs = Interp.regs src in
  let dst_regs = Interp.regs dst in
  let n = min (Array.length src_regs) (Array.length dst_regs) in
  Array.blit src_regs 0 dst_regs 0 n;
  Interp.set_pc dst (Machine.find_migrate_pc dst_prog point + 1);
  if Trace.enabled () then
    Trace.instant ~subsys:"migrate" ~op:"transform"
      ~tags:[ ("point", string_of_int point); ("regs", string_of_int n) ]
      ();
  dst

(* Popcorn's state transformation rewrites the stack frame by frame; our
   threads carry only registers, so we charge a fixed modelled cost of the
   same order as the paper's toolchain reports for small frames. *)
let transform_cost_instructions = 2_000
