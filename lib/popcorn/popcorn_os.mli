(** The Popcorn-Linux personality: a shared-nothing multiple-kernel OS.

    Kernel instances coordinate exclusively through the messaging layer —
    page faults, VMA faults, futex operations and thread migration are all
    request/response protocols against the origin kernel, and user memory
    is kept consistent by DSM page replication ({!Dsm}). This is the
    paper's baseline (§2, §8.2). *)

type t

val create :
  Stramash_kernel.Env.t ->
  Msg_layer.kind ->
  ?notify:Msg_layer.notify_mode ->
  ?tcp:Stramash_interconnect.Tcp_link.t ->
  ?inject:Stramash_fault_inject.Plan.t ->
  unit ->
  t

val env : t -> Stramash_kernel.Env.t
val dsm : t -> Dsm.t
val msg : t -> Msg_layer.t

val handle_fault :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  (unit, Stramash_fault_inject.Fault.error) result

val migrate :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  dst:Stramash_sim.Node_id.t ->
  point:int ->
  unit
(** Message-based thread migration carrying the architectural state,
    followed by the state transformation on the destination. *)

val futex_wait :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  uaddr:int ->
  expected:int64 ->
  [ `Block | `Proceed ]
(** Origin-managed: a remote waiter messages the origin kernel, which
    checks the futex word and queues the waiter (paper §6.5). *)

val futex_wake :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  threads:Stramash_kernel.Thread.t list ->
  uaddr:int ->
  nwake:int ->
  int list
(** Returns the tids woken. Wakes of threads blocked on another kernel
    instance cost an extra one-way message from the origin. *)

val user_frame :
  t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> vaddr:int -> int
(** Resolve (faulting in if needed) the frame backing [vaddr] for reads at
    [node]; used by the futex word check. *)

val exit_process : t -> proc:Stramash_kernel.Process.t -> unit
(** Tear down a process's DSM state and free every kernel's replicas. *)
