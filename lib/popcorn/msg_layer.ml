module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Metrics = Stramash_sim.Metrics
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Env = Stramash_kernel.Env
module Ring_buffer = Stramash_interconnect.Ring_buffer
module Tcp_link = Stramash_interconnect.Tcp_link
module Ipi = Stramash_interconnect.Ipi
module Plan = Stramash_fault_inject.Plan
module Fault = Stramash_fault_inject.Fault
module Integrity = Stramash_fault_inject.Integrity
module Liveness = Stramash_sim.Liveness
module Heartbeat = Stramash_interconnect.Heartbeat
module Trace = Stramash_obs.Trace

type kind = Shm | Tcp

type notify_mode = Ipi | Polling

type t = {
  kind : kind;
  env : Env.t;
  rings : unit Ring_buffer.t array; (* index = sender Node_id.index *)
  tcp : Tcp_link.t;
  staging : int array; (* per-node staging buffer paddr for TCP serialisation *)
  notify_kind : notify_mode;
  inject : Plan.t option;
  heartbeat : Heartbeat.t option;
  counts : Metrics.registry;
  mutable total : int;
}

(* Mean delay until a polling receiver notices a new message, and the
   busy-work it burns per message while spinning on the ring head. *)
let poll_notice_cycles = 400
let poll_busy_cycles = 300

let create kind env ?(ring_slots = 512) ?(slot_bytes = 256) ?(notify = Ipi) ?tcp ?inject
    ?heartbeat () =
  let ring sender_index =
    let sender = Node_id.of_index sender_index in
    (* Each direction gets half of a dedicated slice of the ring area. *)
    let base = Layout.message_ring.Layout.lo + (sender_index * Addr.mib 32) in
    Ring_buffer.create ~cache:env.Env.cache ~base ~slots:ring_slots ~slot_bytes ~sender
  in
  let staging =
    Array.map
      (fun kernel -> Stramash_kernel.Kheap.alloc kernel.Stramash_kernel.Kernel.kheap ~bytes:Addr.page_size)
      env.Env.kernels
  in
  {
    kind;
    env;
    rings = [| ring 0; ring 1 |];
    tcp = (match tcp with Some l -> l | None -> Tcp_link.create ());
    staging;
    notify_kind = notify;
    inject;
    heartbeat;
    counts = Metrics.registry ();
    total = 0;
  }

let transport t = t.kind
let notify_mode t = t.notify_kind
let heartbeat t = t.heartbeat

(* Heartbeats ride the message layer but are deliberately kept out of the
   RPC counters: they are liveness chatter, not workload traffic, and
   their rate (one per scheduling quantum) would drown the message-count
   results the experiments compare. *)
let heartbeat_tick t ~src ~now =
  match t.heartbeat with
  | None -> ()
  | Some hb ->
      if Trace.enabled () then
        Trace.instant ~at:now ~node:src
          ~flow:(Trace.fresh_flow ~node:src)
          ~subsys:"heartbeat" ~op:"beat" ();
      Heartbeat.beat hb ~node:src ~now;
      Metrics.incr t.counts "heartbeat"

let shm_notify_latency t ~dst =
  match t.notify_kind with
  | Ipi ->
      let d =
        Ipi.cross_isa_delivery ?inject:t.inject ~peer:dst
          ~now:(Meter.get (Env.meter t.env dst)) ()
      in
      (* A lost IPI is noticed by the receiver's backstop poll; it burns
         spin work while the sender waits out the detection timeout. *)
      if d.Ipi.lost then Meter.add (Env.meter t.env dst) poll_busy_cycles;
      d.Ipi.cycles
  | Polling ->
      (* the receiver pays its spin work; the sender only waits for the
         next poll to come around *)
      Meter.add (Env.meter t.env dst) poll_busy_cycles;
      poll_notice_cycles

let count t label =
  Metrics.incr t.counts label;
  t.total <- t.total + 1

(* Move one message from [src] to [dst]; returns the extra latency the
   sender observes before the handler can start (notification). Send-side
   work is charged to [src]'s meter, receive-side to [dst]'s. *)
let convey t ~src ~bytes =
  let dst = Node_id.other src in
  match t.kind with
  | Shm ->
      let ring = t.rings.(Node_id.index src) in
      (* RPCs are synchronous, so the ring never actually fills; drain
         defensively if it somehow did. *)
      (match Ring_buffer.send ring ~payload_bytes:bytes () with
      | Ok cost -> Meter.add (Env.meter t.env src) cost
      | Error `Full ->
          while Ring_buffer.length ring > 0 do
            ignore (Ring_buffer.recv ring)
          done;
          (match Ring_buffer.send ring ~payload_bytes:bytes () with
          | Ok cost -> Meter.add (Env.meter t.env src) cost
          | Error `Full -> invalid_arg "Msg_layer: message larger than ring"));
      let recv_cost = match Ring_buffer.recv ring with Some (c, ()) -> c | None -> 0 in
      Meter.add (Env.meter t.env dst) recv_cost;
      shm_notify_latency t ~dst
  | Tcp ->
      (* Serialise into the staging page (bounced through the cache),
         then pay the wire latency; receiver deserialises. *)
      let src_buf = t.staging.(Node_id.index src) in
      let dst_buf = t.staging.(Node_id.index dst) in
      let chunk = min bytes Addr.page_size in
      Env.charge_bytes_store t.env src ~paddr:src_buf ~len:chunk;
      Env.charge_bytes_load t.env dst ~paddr:dst_buf ~len:chunk;
      Tcp_link.one_way_cycles t.tcp ~payload_bytes:bytes

(* Like [convey], but under a fault plan each attempt may be dropped or —
   when a corruption schedule is armed — arrive with a damaged or
   truncated payload that the receiver's CRC32 framing check rejects: the
   sender burns the detection timeout plus exponential backoff, retries up
   to the plan's cap, and finally escalates to the reliable (always
   delivered) slow path so forward progress is guaranteed. Returns the
   latency the sender observes before the handler can start. *)
let deliver_untraced ?(label = "msg") t ~src ~bytes =
  match t.inject with
  | None -> convey t ~src ~bytes
  | Some plan ->
      let dst = Node_id.other src in
      (* Per-message CRC framing: the sender seals every attempt, the
         receiver verifies every arrival. Charged only when corruption is
         armed, so unarmed plans stay bit-identical to the pre-framing
         model. *)
      let crc_cost =
        if Plan.corruption_armed plan then Integrity.msg_crc_cycles ~bytes else 0
      in
      (* Deliver with gray effects on top of the base notify latency: a
         slow-window on the receiver inflates the sender-observed RTT,
         duplicates cost the receiver a discard, reordering adds queue
         delay. The completed RTT (or the drop) feeds the peer's health
         score, and backoff is health-adaptive and jittered. *)
      let finish burned extra =
        if burned > 0 then Plan.record_recovery plan ~cycles:burned;
        let now = Meter.get (Env.meter t.env src) in
        let base = convey t ~src ~bytes in
        let inflated = Plan.inflate plan ~node:dst ~now ~cycles:(base + extra) in
        let reorder = Plan.msg_reorder_extra plan in
        if Plan.msg_duplicated plan then
          (* receiver dequeues and discards the duplicate *)
          Meter.add (Env.meter t.env dst) poll_busy_cycles;
        let total = base + extra + inflated + reorder in
        Plan.observe_msg_rtt plan ~peer:dst ~cycles:total ~nominal:base ~now;
        total
      in
      (* Retransmit-with-backoff shared by drops and CRC rejections; the
         escalated reliable path re-frames the payload and always
         delivers clean, so a corrupt stream can delay but never wedge. *)
      let backoff_then ~attempt ~burned ~now retry =
        Plan.observe_failure plan ~peer:dst ~now;
        let pay = Plan.msg_backoff_for plan ~peer:dst ~attempt in
        Meter.add (Env.meter t.env src) pay;
        let burned = burned + pay in
        if Plan.msg_attempts_exhausted plan ~attempt:(attempt + 1) then begin
          Plan.note_msg_escalation plan;
          Plan.record_recovery plan ~cycles:burned;
          if crc_cost > 0 then begin
            Meter.add (Env.meter t.env src) crc_cost;
            Meter.add (Env.meter t.env dst) crc_cost
          end;
          finish 0 0
        end
        else begin
          Plan.note_msg_retry plan;
          retry (attempt + 1) burned
        end
      in
      let rec attempt_loop attempt burned =
        let now = Meter.get (Env.meter t.env src) in
        match Plan.msg_attempt_at plan ~now with
        | `Deliver extra -> (
            if crc_cost > 0 then Meter.add (Env.meter t.env src) crc_cost;
            match Plan.msg_corrupt_verdict plan with
            | `Clean ->
                if crc_cost > 0 then Meter.add (Env.meter t.env dst) crc_cost;
                finish burned extra
            | `Corrupt | `Truncated ->
                (* The damaged attempt still crosses the wire; the
                   receiver's framing check rejects it and the payload is
                   discarded before any handler sees it. *)
                ignore (convey t ~src ~bytes);
                if crc_cost > 0 then Meter.add (Env.meter t.env dst) crc_cost;
                Plan.note_msg_corruption_detected plan;
                if Trace.enabled () then
                  Trace.instant ~subsys:"msg" ~op:"crc_reject"
                    ~tags:
                      [
                        ( "error",
                          Fault.to_string
                            (Fault.Corrupt_message { label; attempts = attempt + 1 }) );
                      ]
                    ();
                backoff_then ~attempt ~burned ~now attempt_loop)
        | `Drop -> backoff_then ~attempt ~burned ~now attempt_loop
      in
      attempt_loop 0 0

let deliver ?label t ~src ~bytes =
  if not (Trace.enabled ()) then deliver_untraced ?label t ~src ~bytes
  else begin
    let meter = Env.meter t.env src in
    let sp =
      Trace.span ~at:(Meter.get meter)
        ~tags:[ ("bytes", string_of_int bytes) ]
        ~node:src ~subsys:"msg" ~op:"send" ()
    in
    let latency = deliver_untraced ?label t ~src ~bytes in
    Trace.close ~at:(Meter.get meter) sp;
    Trace.instant ~node:(Node_id.other src) ~subsys:"msg" ~op:"deliver" ();
    latency
  end

(* A message aimed at a crash-stopped peer is a dead letter: nothing
   dequeues it and no handler will ever run. Rather than silently dropping
   (or timing out through the injection path, which models *transient*
   loss), the send fails fast with a typed error so callers choose their
   degraded path explicitly. *)
let dead_letter t ~dst ~label ~op =
  (match t.inject with Some plan -> Plan.note_dead_node_message plan | None -> ());
  if Trace.enabled () then
    Trace.instant ~subsys:"msg" ~op:"dead_letter"
      ~tags:[ ("label", label); ("dst", Node_id.to_string dst) ]
      ();
  Error (Fault.Node_dead { node = Node_id.to_string dst; op })

(* Record a span with explicit endpoints on [node] carrying [flow]: the
   responder-side hops of an RPC, synthesized in the *requester's* clock
   so the flow's critical path lives in one clock domain and its hops
   tile the end-to-end interval exactly. *)
let synth_hop ~node ~flow ~subsys ~op ts te =
  if te > ts then
    Trace.with_flow ~node ~flow (fun () ->
        Trace.close ~at:te (Trace.span ~at:ts ~node ~subsys ~op ()))

let do_rpc t ~src ~label ~req_bytes ~resp_bytes ~handler =
  let dst = Node_id.other src in
  let src_meter = Env.meter t.env src in
  let dst_meter = Env.meter t.env dst in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get src_meter)
        ~tags:[ ("label", label) ]
        ~flow_root:true ~node:src ~subsys:"msg" ~op:"rpc" ()
    else Trace.null
  in
  let flow = Trace.flow_of sp in
  count t label;
  let rpc_start = Meter.get src_meter in
  let notify_latency = deliver ~label t ~src ~bytes:req_bytes in
  let send_end = Meter.get src_meter in
  Meter.add src_meter notify_latency;
  let t1 = Meter.get src_meter in
  if sp != Trace.null then synth_hop ~node:dst ~flow ~subsys:"interconnect" ~op:"request" send_end t1;
  (* Peer handles the request; the requester blocks for that long. The
     responder's own spans record in its clock under the requester's flow. *)
  let handler_cycles =
    Meter.delta dst_meter (fun () -> Trace.with_flow ~node:dst ~flow handler)
  in
  Meter.add src_meter handler_cycles;
  let t2 = Meter.get src_meter in
  if sp != Trace.null then synth_hop ~node:dst ~flow ~subsys:"msg" ~op:"serve" t1 t2;
  (* Response. *)
  count t (label ^ "_reply");
  let reply_notify = ref 0 in
  let reply_latency =
    Meter.delta dst_meter (fun () ->
        Trace.with_flow ~node:dst ~flow (fun () ->
            reply_notify := deliver ~label:(label ^ "_reply") t ~src:dst ~bytes:resp_bytes))
  in
  Meter.add src_meter reply_latency;
  Meter.add src_meter !reply_notify;
  let t3 = Meter.get src_meter in
  (match t.inject with
  | Some plan -> Plan.record_op plan ~op:"msg_rpc" ~cycles:(t3 - rpc_start)
  | None -> ());
  if sp != Trace.null then begin
    synth_hop ~node:src ~flow ~subsys:"interconnect" ~op:"reply" t2 t3;
    (* Everything after the request left the sender is serialized behind
       the remote side: notification, remote handling, and the reply. *)
    Trace.add_blocked ~node:src ~subsys:"msg" (t3 - send_end);
    Trace.close ~at:t3 sp
  end

let rpc_checked t ~src ~label ~req_bytes ~resp_bytes ~handler =
  let dst = Node_id.other src in
  if not (Liveness.is_alive t.env.Env.liveness dst) then dead_letter t ~dst ~label ~op:"rpc"
  else Ok (do_rpc t ~src ~label ~req_bytes ~resp_bytes ~handler)

let rpc t ~src ~label ~req_bytes ~resp_bytes ~handler =
  Fault.get_exn (rpc_checked t ~src ~label ~req_bytes ~resp_bytes ~handler)

let do_notify t ~src ~label ~bytes ~handler =
  let dst = Node_id.other src in
  let src_meter = Env.meter t.env src in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get src_meter)
        ~tags:[ ("label", label) ]
        ~flow_root:true ~node:src ~subsys:"msg" ~op:"notify" ()
    else Trace.null
  in
  let flow = Trace.flow_of sp in
  count t label;
  let lat = deliver ~label t ~src ~bytes in
  ignore lat;
  (* The peer processes the message on its own time, under the sender's
     flow so its spans still stitch to the notification. *)
  ignore
    (Meter.delta (Env.meter t.env dst) (fun () -> Trace.with_flow ~node:dst ~flow handler));
  if sp != Trace.null then Trace.close ~at:(Meter.get src_meter) sp

let notify_checked t ~src ~label ~bytes ~handler =
  let dst = Node_id.other src in
  if not (Liveness.is_alive t.env.Env.liveness dst) then dead_letter t ~dst ~label ~op:"notify"
  else Ok (do_notify t ~src ~label ~bytes ~handler)

let notify t ~src ~label ~bytes ~handler =
  Fault.get_exn (notify_checked t ~src ~label ~bytes ~handler)

let record_async t ~label = count t label

let message_count t = t.total
let count_for t label = Metrics.get t.counts label
let counts t = List.map (fun name -> (name, Metrics.get t.counts name)) (Metrics.names t.counts)

let reset_counts t =
  Metrics.reset t.counts;
  t.total <- 0
