(** Popcorn's inter-kernel messaging layer (paper §6.2, §8.2).

    Two flavours, matching the paper's baselines:

    - {b SHM}: ring buffers in the 128 MB shared message area, one ring per
      direction; enqueue/dequeue costs come from the cache simulator (and
      thus depend on the hardware memory model), plus a cross-ISA IPI
      (2 us) per message for notification.
    - {b TCP}: a network link adding ~75 us per message round trip,
      independent of the memory model, plus serialisation staging costs.

    RPCs are synchronous: the requester's meter absorbs its own send/receive
    work, the notification latencies, and the (separately metered) time the
    peer spends in the handler — the paper's request/response protocol cost
    structure. *)

type kind = Shm | Tcp

type notify_mode = Ipi | Polling
(** How a receiver learns of a new SHM message: a cross-ISA IPI (2 us,
    the default) or a polling loop (§6.2 supports both). Polling trades
    notification latency (~one poll period) for receiver busy-work. *)

type t

val create :
  kind ->
  Stramash_kernel.Env.t ->
  ?ring_slots:int ->
  ?slot_bytes:int ->
  ?notify:notify_mode ->
  ?tcp:Stramash_interconnect.Tcp_link.t ->
  ?inject:Stramash_fault_inject.Plan.t ->
  ?heartbeat:Stramash_interconnect.Heartbeat.t ->
  unit ->
  t
(** [inject] arms the fault plan: message attempts may then be dropped or
    delayed, with sender-side retry, exponential backoff and a final
    escalation to a reliable slow path (delivery is always eventual).
    [heartbeat] attaches the crash-stop watchdog; live nodes then publish
    beats through {!heartbeat_tick}. *)

val transport : t -> kind
val notify_mode : t -> notify_mode

val heartbeat : t -> Stramash_interconnect.Heartbeat.t option

val heartbeat_tick : t -> src:Stramash_sim.Node_id.t -> now:int -> unit
(** Publish a beat from [src] at wall cycle [now]; a no-op without an
    attached watchdog. Heartbeats are counted separately and excluded from
    {!message_count}. *)

val rpc :
  t ->
  src:Stramash_sim.Node_id.t ->
  label:string ->
  req_bytes:int ->
  resp_bytes:int ->
  handler:(unit -> unit) ->
  unit
(** [handler] runs the peer-side work and must charge the peer's meter
    itself (typically via {!Stramash_kernel.Env} helpers).
    @raise Stramash_fault_inject.Fault.Error
      with [Node_dead] if the peer has crash-stopped; callers that can
      degrade should use {!rpc_checked} instead. *)

val rpc_checked :
  t ->
  src:Stramash_sim.Node_id.t ->
  label:string ->
  req_bytes:int ->
  resp_bytes:int ->
  handler:(unit -> unit) ->
  (unit, Stramash_fault_inject.Fault.error) result
(** Like {!rpc}, but an RPC aimed at a crash-stopped peer fails fast with
    [Error (Node_dead _)] — a dead letter, distinct from the transient
    drop/retry faults the injection plan models — so the caller can take
    its degraded path explicitly. *)

val notify :
  t -> src:Stramash_sim.Node_id.t -> label:string -> bytes:int -> handler:(unit -> unit) -> unit
(** One-way message (e.g. a remote wake): requester does not wait for the
    handler's duration, only pays the send.
    @raise Stramash_fault_inject.Fault.Error
      with [Node_dead] if the peer has crash-stopped. *)

val notify_checked :
  t ->
  src:Stramash_sim.Node_id.t ->
  label:string ->
  bytes:int ->
  handler:(unit -> unit) ->
  (unit, Stramash_fault_inject.Fault.error) result

val record_async : t -> label:string -> unit
(** Count a message that is modelled by a fixed cost elsewhere (e.g. the
    batched DSM write-back updates); no transfer is simulated here. *)

val message_count : t -> int
val count_for : t -> string -> int
val counts : t -> (string * int) list
val reset_counts : t -> unit
