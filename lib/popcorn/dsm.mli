(** Popcorn's software distributed shared memory: page replication with a
    single-writer / multiple-reader protocol (paper §6.4, §9.2.3).

    Anonymous pages are allocated by the origin kernel; a remote fault
    costs at least two message rounds (allocation, then replication). Read
    faults replicate the page into node-local memory read-only; write
    faults transfer ownership and invalidate other copies; writes to a
    local read-only replica upgrade via an invalidation round. Replicated
    pages and messages are counted, feeding Table 3. *)

type t

val create : Stramash_kernel.Env.t -> Msg_layer.t -> t
val msg_layer : t -> Msg_layer.t

val handle_fault :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  (unit, Stramash_fault_inject.Fault.error) result
(** Resolve a user page fault at [node]. Charges all protocol costs.
    [Error (Segfault _)] on a genuine segfault (no VMA). *)

val ensure_mm : t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> Stramash_kernel.Process.mm
(** Create the per-node memory descriptor on first use (migration). *)

val replicated_pages : t -> int

val wb_updates : t -> int
(** Write-backs of dirty lines in replicated pages that triggered the
    consistency policy (paper §9.2.2). *)

val reset_counters : t -> unit

val seed_owner :
  t -> pid:int -> origin:Stramash_sim.Node_id.t -> vaddr:int -> frame:int -> unit
(** Register a page mapped at the origin during process load as
    origin-owned, so later remote faults fetch it rather than
    re-allocating. *)

val frame_for_read : t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> vaddr:int -> int option
(** The frame [node] would read through its own page table, if mapped
    (diagnostic/test helper; charges nothing). *)

val exit_process : t -> proc:Stramash_kernel.Process.t -> unit
(** Tear down the process: every kernel instance unmaps and frees its own
    copies/replicas (each page has a single allocating kernel in the
    replication protocol), with the unmap traffic charged. *)

val check_invariants : t -> proc:Stramash_kernel.Process.t -> (unit, string) result
(** Single-writer / multiple-reader protocol invariants: never two owners
    of a page, never an owner coexisting with a read replica, and a
    node's page table maps a page writable only if that node owns it. *)
