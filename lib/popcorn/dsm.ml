module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Tlb = Stramash_kernel.Tlb
module Fault = Stramash_fault_inject.Fault
module Trace = Stramash_obs.Trace
module Meter = Stramash_sim.Meter

(* Per-node view of one user page. *)
type pstate = Absent | Read_copy of int | Owner of int (* frame paddr *)

type page = { mutable st : pstate array }

type t = {
  env : Env.t;
  msg : Msg_layer.t;
  pages : (int * int, page) Hashtbl.t; (* (pid, vpage) -> states *)
  (* Frames that ever took part in a replication: a dirty write-back to
     one of them triggers the consistency policy (paper §9.2.2). *)
  tracked_frames : (int, unit) Hashtbl.t;
  mutable replicated : int;
  mutable wb_updates : int;
}

(* Batched/piggybacked line update: ring-enqueue work without an IPI. *)
let wb_update_cost = 250

let create env msg =
  let t =
    {
      env;
      msg;
      pages = Hashtbl.create 4096;
      tracked_frames = Hashtbl.create 4096;
      replicated = 0;
      wb_updates = 0;
    }
  in
  let hook node ~line =
    let frame_number = line lsr (Addr.page_shift - Addr.line_shift) in
    if Hashtbl.mem t.tracked_frames frame_number then begin
      t.wb_updates <- t.wb_updates + 1;
      Stramash_sim.Meter.add (Env.meter t.env node) wb_update_cost;
      Msg_layer.record_async t.msg ~label:"dsm_wb_update";
      Trace.instant ~node ~subsys:"dsm" ~op:"wb_update" ()
    end
  in
  Stramash_cache.Cache_sim.add_writeback_hook env.Env.cache hook;
  t
let msg_layer t = t.msg
let replicated_pages t = t.replicated

let wb_updates t = t.wb_updates

let reset_counters t =
  t.replicated <- 0;
  t.wb_updates <- 0;
  Msg_layer.reset_counts t.msg

let page t ~pid ~vpage =
  match Hashtbl.find_opt t.pages (pid, vpage) with
  | Some p -> p
  | None ->
      let p = { st = [| Absent; Absent |] } in
      Hashtbl.add t.pages (pid, vpage) p;
      p

let state p node = p.st.(Node_id.index node)
let set_state p node s = p.st.(Node_id.index node) <- s

let ensure_mm t ~proc ~node =
  match Process.mm proc node with
  | Some mm -> mm
  | None ->
      let kernel = Env.kernel t.env node in
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let mm =
        {
          Process.vmas = Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap);
          pgtable = Page_table.create ~isa:node io;
          ptl_addr = Kheap.alloc_line kernel.Kernel.kheap;
        }
      in
      Process.add_mm proc node mm;
      mm

(* Find the VMA covering [vaddr] in [node]'s descriptor, fetching a replica
   from the origin over the messaging layer if needed (Popcorn's remote VMA
   fault, §6.4). *)
let vma_for t ~proc ~node ~vaddr =
  let mm = ensure_mm t ~proc ~node in
  let charge v = Env.charge_load t.env node ~paddr:v.Vma.struct_addr in
  match Vma.find ~visit:charge mm.Process.vmas ~vaddr with
  | Some vma -> Some vma
  | None ->
      let origin = proc.Process.origin in
      if Node_id.equal node origin then None
      else begin
        let found = ref None in
        Msg_layer.rpc t.msg ~src:node ~label:"vma_req" ~req_bytes:64 ~resp_bytes:96
          ~handler:(fun () ->
            let omm = Process.mm_exn proc origin in
            let charge_o v = Env.charge_load t.env origin ~paddr:v.Vma.struct_addr in
            Env.charge_atomic t.env origin ~paddr:(Vma.lock_addr omm.Process.vmas);
            found := Vma.find ~visit:charge_o omm.Process.vmas ~vaddr);
        match !found with
        | None -> None
        | Some ovma ->
            let vma =
              Vma.add mm.Process.vmas ~start:ovma.Vma.v_start ~end_:ovma.Vma.v_end ovma.Vma.kind
                ~writable:ovma.Vma.writable
            in
            Env.charge_store t.env node ~paddr:vma.Vma.struct_addr;
            Some vma
      end

let map_into t ~node ~(mm : Process.mm) ~vaddr ~frame ~writable =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  let flags = { Pte.default_flags with writable } in
  Page_table.map mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
    ~frame:(frame lsr Addr.page_shift) flags;
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

let downgrade_to_ro t ~node ~(mm : Process.mm) ~vaddr =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  ignore
    (Page_table.update_flags mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
       { Pte.default_flags with writable = false });
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

let unmap_from t ~node ~(mm : Process.mm) ~vaddr =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  ignore (Page_table.unmap mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr));
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

let alloc_zeroed t ~node =
  let kernel = Env.kernel t.env node in
  let frame = Kernel.alloc_frame_exn kernel in
  Phys_mem.zero_page t.env.Env.phys frame;
  frame

let free_frame t ~node frame =
  Stramash_kernel.Frame_alloc.free (Env.kernel t.env node).Kernel.frames frame

(* Copy one page's content across the messaging layer: the holder streams
   it out (loads at the holder), the requester writes its fresh local copy
   (stores at the requester). The message payload itself is billed by the
   messaging layer. *)
let replicate_page t ~from_node ~from_frame ~to_node =
  let to_frame = alloc_zeroed t ~node:to_node in
  Env.charge_bytes_load t.env from_node ~paddr:from_frame ~len:Addr.page_size;
  Phys_mem.copy_page t.env.Env.phys ~src:from_frame ~dst:to_frame;
  Env.charge_bytes_store t.env to_node ~paddr:to_frame ~len:Addr.page_size;
  t.replicated <- t.replicated + 1;
  Hashtbl.replace t.tracked_frames (from_frame lsr Addr.page_shift) ();
  Hashtbl.replace t.tracked_frames (to_frame lsr Addr.page_shift) ();
  Trace.instant ~node:to_node ~subsys:"dsm" ~op:"fetch" ();
  to_frame

(* The origin allocates an anonymous page on behalf of a remote requester
   (message round 1 of 2, §6.4 "Stramash Page Fault Handler" contrast). *)
let origin_alloc t ~proc ~vaddr =
  let origin = proc.Process.origin in
  let p = page t ~pid:proc.Process.pid ~vpage:(Addr.page_of vaddr) in
  let frame = alloc_zeroed t ~node:origin in
  let omm = Process.mm_exn proc origin in
  map_into t ~node:origin ~mm:omm ~vaddr ~frame ~writable:true;
  set_state p origin (Owner frame)

let handle_fault_untraced t ~proc ~node ~vaddr ~write =
  let origin = proc.Process.origin in
  let other = Node_id.other node in
  let pid = proc.Process.pid in
  let vpage = Addr.page_of vaddr in
  match vma_for t ~proc ~node ~vaddr with
  | None -> Error (Fault.Segfault { pid; vaddr; node = Node_id.to_string node })
  | Some vma ->
      let mm = Process.mm_exn proc node in
      let p = page t ~pid ~vpage in
      let writable_vma = vma.Vma.writable in
      if not write then begin
        match state p node with
        | Owner frame -> map_into t ~node ~mm ~vaddr ~frame ~writable:writable_vma
        | Read_copy frame -> map_into t ~node ~mm ~vaddr ~frame ~writable:false
        | Absent -> (
            match state p other with
            | Owner oframe | Read_copy oframe ->
                (* Fetch a read-only replica from the current holder. *)
                let frame = ref 0 in
                Msg_layer.rpc t.msg ~src:node ~label:"page_fetch" ~req_bytes:64
                  ~resp_bytes:Addr.page_size ~handler:(fun () ->
                    (match state p other with
                    | Owner f ->
                        let omm = Process.mm_exn proc other in
                        downgrade_to_ro t ~node:other ~mm:omm ~vaddr;
                        set_state p other (Read_copy f)
                    | Read_copy _ | Absent -> ());
                    frame := replicate_page t ~from_node:other ~from_frame:oframe ~to_node:node);
                map_into t ~node ~mm ~vaddr ~frame:!frame ~writable:false;
                set_state p node (Read_copy !frame)
            | Absent ->
                if Node_id.equal node origin then begin
                  let frame = alloc_zeroed t ~node in
                  map_into t ~node ~mm ~vaddr ~frame ~writable:writable_vma;
                  set_state p node (Owner frame)
                end
                else begin
                  (* Round 1: origin allocates. Round 2: replicate. *)
                  Msg_layer.rpc t.msg ~src:node ~label:"page_alloc" ~req_bytes:64 ~resp_bytes:64
                    ~handler:(fun () -> origin_alloc t ~proc ~vaddr);
                  let oframe =
                    match state p origin with
                    | Owner f | Read_copy f -> f
                    | Absent -> assert false
                  in
                  let frame = ref 0 in
                  Msg_layer.rpc t.msg ~src:node ~label:"page_fetch" ~req_bytes:64
                    ~resp_bytes:Addr.page_size ~handler:(fun () ->
                      let omm = Process.mm_exn proc origin in
                      downgrade_to_ro t ~node:origin ~mm:omm ~vaddr;
                      set_state p origin (Read_copy oframe);
                      frame := replicate_page t ~from_node:origin ~from_frame:oframe ~to_node:node);
                  map_into t ~node ~mm ~vaddr ~frame:!frame ~writable:false;
                  set_state p node (Read_copy !frame)
                end)
      end
      else begin
        (* Write fault. *)
        match state p node with
        | Owner frame -> map_into t ~node ~mm ~vaddr ~frame ~writable:true
        | Read_copy frame ->
            (* Upgrade: invalidate the other copy, keep ours writable. *)
            (match state p other with
            | Owner oframe | Read_copy oframe ->
                Msg_layer.rpc t.msg ~src:node ~label:"invalidate" ~req_bytes:64 ~resp_bytes:64
                  ~handler:(fun () ->
                    let omm = Process.mm_exn proc other in
                    unmap_from t ~node:other ~mm:omm ~vaddr;
                    free_frame t ~node:other oframe;
                    set_state p other Absent;
                    Trace.instant ~node:other ~subsys:"dsm" ~op:"invalidate" ())
            | Absent -> ());
            map_into t ~node ~mm ~vaddr ~frame ~writable:true;
            set_state p node (Owner frame)
        | Absent -> (
            match state p other with
            | Owner oframe | Read_copy oframe ->
                (* Ownership transfer with content; the previous holder's
                   local copy is recycled by its kernel. *)
                let frame = ref 0 in
                Msg_layer.rpc t.msg ~src:node ~label:"page_fetch_own" ~req_bytes:64
                  ~resp_bytes:Addr.page_size ~handler:(fun () ->
                    let omm = Process.mm_exn proc other in
                    unmap_from t ~node:other ~mm:omm ~vaddr;
                    frame := replicate_page t ~from_node:other ~from_frame:oframe ~to_node:node;
                    free_frame t ~node:other oframe;
                    set_state p other Absent);
                map_into t ~node ~mm ~vaddr ~frame:!frame ~writable:true;
                set_state p node (Owner !frame)
            | Absent ->
                if Node_id.equal node origin then begin
                  let frame = alloc_zeroed t ~node in
                  map_into t ~node ~mm ~vaddr ~frame ~writable:true;
                  set_state p node (Owner frame)
                end
                else begin
                  Msg_layer.rpc t.msg ~src:node ~label:"page_alloc" ~req_bytes:64 ~resp_bytes:64
                    ~handler:(fun () -> origin_alloc t ~proc ~vaddr);
                  let oframe =
                    match state p origin with Owner f | Read_copy f -> f | Absent -> assert false
                  in
                  let frame = ref 0 in
                  Msg_layer.rpc t.msg ~src:node ~label:"page_fetch_own" ~req_bytes:64
                    ~resp_bytes:Addr.page_size ~handler:(fun () ->
                      let omm = Process.mm_exn proc origin in
                      unmap_from t ~node:origin ~mm:omm ~vaddr;
                      frame := replicate_page t ~from_node:origin ~from_frame:oframe ~to_node:node;
                      free_frame t ~node:origin oframe;
                      set_state p origin Absent);
                  map_into t ~node ~mm ~vaddr ~frame:!frame ~writable:true;
                  set_state p node (Owner !frame)
                end)
      end;
      Ok ()

let handle_fault t ~proc ~node ~vaddr ~write =
  if not (Trace.enabled ()) then handle_fault_untraced t ~proc ~node ~vaddr ~write
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter)
        ~tags:[ ("write", string_of_bool write) ]
        ~flow_root:true ~node ~subsys:"dsm" ~op:"fault" ()
    in
    let result = handle_fault_untraced t ~proc ~node ~vaddr ~write in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

let seed_owner t ~pid ~origin ~vaddr ~frame =
  let p = page t ~pid ~vpage:(Addr.page_of vaddr) in
  set_state p origin (Owner frame)

let frame_for_read t ~proc ~node ~vaddr =
  ignore proc;
  match Hashtbl.find_opt t.pages (proc.Process.pid, Addr.page_of vaddr) with
  | None -> None
  | Some p -> (
      match state p node with Owner f | Read_copy f -> Some f | Absent -> None)

let check_invariants t ~proc =
  let pid = proc.Process.pid in
  let silent_io =
    {
      Page_table.phys = t.env.Env.phys;
      charge_read = ignore;
      charge_write = ignore;
      alloc_table = (fun () -> assert false);
    }
  in
  let exception Bad of string in
  let fail fmt_str = Printf.ksprintf (fun s -> raise (Bad s)) fmt_str in
  try
    Hashtbl.iter
      (fun (p, vpage) page ->
        if p = pid then begin
          let states = List.map (fun node -> (node, state page node)) Node_id.all in
          let owners = List.filter (fun (_, s) -> match s with Owner _ -> true | _ -> false) states in
          let readers =
            List.filter (fun (_, s) -> match s with Read_copy _ -> true | _ -> false) states
          in
          if List.length owners > 1 then fail "page 0x%x has two owners" vpage;
          if owners <> [] && readers <> [] then
            fail "page 0x%x has an owner and a read replica simultaneously" vpage;
          List.iter
            (fun (node, s) ->
              match (s, Process.mm proc node) with
              | (Owner f | Read_copy f), Some mm -> (
                  match
                    Page_table.walk mm.Process.pgtable silent_io ~vaddr:(vpage lsl Addr.page_shift)
                  with
                  | Some (frame, flags) ->
                      if frame <> f lsr Addr.page_shift then
                        fail "page 0x%x: PT frame disagrees with DSM state on %s" vpage
                          (Node_id.to_string node);
                      if flags.Pte.writable && not (match s with Owner _ -> true | _ -> false)
                      then
                        fail "page 0x%x writable at %s without ownership" vpage
                          (Node_id.to_string node)
                  | None -> () (* a state can outlive its mapping (pre-map fault) *))
              | (Owner _ | Read_copy _), None ->
                  fail "page 0x%x held by %s which has no mm" vpage (Node_id.to_string node)
              | Absent, _ -> ())
            states
        end)
      t.pages;
    Ok ()
  with Bad s -> Error s

let exit_process t ~proc =
  let pid = proc.Process.pid in
  let doomed = ref [] in
  Hashtbl.iter
    (fun (p, vpage) page -> if p = pid then doomed := (vpage, page) :: !doomed)
    t.pages;
  List.iter
    (fun (vpage, page) ->
      List.iter
        (fun node ->
          match state page node with
          | Absent -> ()
          | Owner frame | Read_copy frame ->
              (match Process.mm proc node with
              | Some mm -> unmap_from t ~node ~mm ~vaddr:(vpage lsl Addr.page_shift)
              | None -> ());
              let kernel = Env.kernel t.env node in
              Stramash_kernel.Frame_alloc.free kernel.Kernel.frames frame;
              set_state page node Absent)
        Stramash_sim.Node_id.all;
      Hashtbl.remove t.pages (pid, vpage))
    !doomed
