module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Futex = Stramash_kernel.Futex
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Migrate_state = Stramash_isa.Migrate_state
module Interp = Stramash_isa.Interp

type t = { env : Env.t; dsm : Dsm.t }

let create env kind ?notify ?tcp ?inject () =
  let msg = Msg_layer.create kind env ?notify ?tcp ?inject () in
  { env; dsm = Dsm.create env msg }

let env t = t.env
let dsm t = t.dsm
let msg t = Dsm.msg_layer t.dsm

let handle_fault t ~proc ~node ~vaddr ~write = Dsm.handle_fault t.dsm ~proc ~node ~vaddr ~write

(* Thread state is serialised into the migration message (register file +
   kernel context, ~2 KB as in Popcorn's pcn_kmsg sizing for task state);
   the destination runs the state transformation. *)
let migrate t ~proc ~thread ~dst ~point =
  let src = thread.Thread.node in
  if Node_id.equal src dst then invalid_arg "Popcorn_os.migrate: already on destination";
  let module Trace = Stramash_obs.Trace in
  let src_meter = Env.meter t.env src in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get src_meter)
        ~tags:[ ("dst", Node_id.to_string dst) ]
        ~flow_root:true ~node:src ~subsys:"migrate" ~op:"transfer" ()
    else Trace.null
  in
  Msg_layer.rpc (msg t) ~src ~label:"migrate" ~req_bytes:2048 ~resp_bytes:128
    ~handler:(fun () ->
      ignore (Dsm.ensure_mm t.dsm ~proc ~node:dst);
      Meter.add (Env.meter t.env dst) Migrate_state.transform_cost_instructions);
  if sp != Trace.null then Trace.close ~at:(Meter.get src_meter) sp;
  thread.Thread.cpu <-
    Migrate_state.transform ~src:thread.Thread.cpu ~point ~dst_prog:(Process.image proc dst);
  thread.Thread.node <- dst;
  thread.Thread.migrations <- thread.Thread.migrations + 1

let exit_process t ~proc = Dsm.exit_process t.dsm ~proc

let user_frame t ~proc ~node ~vaddr =
  match Dsm.frame_for_read t.dsm ~proc ~node ~vaddr with
  | Some frame -> frame
  | None -> (
      (match Dsm.handle_fault t.dsm ~proc ~node ~vaddr ~write:false with
      | Ok () -> ()
      | Error e -> raise (Stramash_fault_inject.Fault.Error e));
      match Dsm.frame_for_read t.dsm ~proc ~node ~vaddr with
      | Some frame -> frame
      | None ->
          invalid_arg
            (Printf.sprintf "Popcorn_os.user_frame: fault left 0x%x unmapped" vaddr))

(* Check the futex word and queue the caller, at the origin kernel. *)
let wait_at_origin t ~proc ~tid ~uaddr ~expected =
  let origin = proc.Process.origin in
  let kernel = Env.kernel t.env origin in
  let bucket = Futex.bucket_addr kernel.Kernel.futexes ~uaddr in
  Env.charge_atomic t.env origin ~paddr:bucket;
  let frame = user_frame t ~proc ~node:origin ~vaddr:uaddr in
  let word_paddr = frame + Addr.page_offset uaddr in
  Env.charge_load t.env origin ~paddr:word_paddr;
  let value = Phys_mem.read t.env.Env.phys word_paddr ~width:4 in
  if Int64.logand value 0xFFFFFFFFL = Int64.logand expected 0xFFFFFFFFL then begin
    Futex.enqueue_waiter kernel.Kernel.futexes ~uaddr ~tid;
    Env.charge_store t.env origin ~paddr:bucket;
    `Block
  end
  else `Proceed

let futex_wait t ~proc ~thread ~uaddr ~expected =
  let origin = proc.Process.origin in
  let node = thread.Thread.node in
  if Node_id.equal node origin then
    wait_at_origin t ~proc ~tid:thread.Thread.tid ~uaddr ~expected
  else begin
    let decision = ref `Proceed in
    Msg_layer.rpc (msg t) ~src:node ~label:"futex_wait" ~req_bytes:96 ~resp_bytes:64
      ~handler:(fun () ->
        decision := wait_at_origin t ~proc ~tid:thread.Thread.tid ~uaddr ~expected);
    !decision
  end

let wake_at_origin t ~proc ~threads ~uaddr ~nwake =
  let origin = proc.Process.origin in
  let kernel = Env.kernel t.env origin in
  let bucket = Futex.bucket_addr kernel.Kernel.futexes ~uaddr in
  Env.charge_atomic t.env origin ~paddr:bucket;
  let rec collect n acc =
    if n = 0 then List.rev acc
    else
      match Futex.dequeue_waiter kernel.Kernel.futexes ~uaddr with
      | None -> List.rev acc
      | Some tid -> collect (n - 1) (tid :: acc)
  in
  let woken = collect nwake [] in
  (* Waking a thread parked on another kernel instance requires a one-way
     message from the origin. *)
  List.iter
    (fun tid ->
      match List.find_opt (fun th -> th.Thread.tid = tid) threads with
      | Some th when not (Node_id.equal th.Thread.node origin) ->
          Msg_layer.notify (msg t) ~src:origin ~label:"futex_wake_remote" ~bytes:64
            ~handler:(fun () ->
              Env.charge_load t.env th.Thread.node
                ~paddr:(Futex.bucket_addr kernel.Kernel.futexes ~uaddr))
      | Some _ | None -> ())
    woken;
  woken

let futex_wake t ~proc ~thread ~threads ~uaddr ~nwake =
  let origin = proc.Process.origin in
  let node = thread.Thread.node in
  if Node_id.equal node origin then wake_at_origin t ~proc ~threads ~uaddr ~nwake
  else begin
    let woken = ref [] in
    Msg_layer.rpc (msg t) ~src:node ~label:"futex_wake" ~req_bytes:96 ~resp_bytes:64
      ~handler:(fun () -> woken := wake_at_origin t ~proc ~threads ~uaddr ~nwake);
    !woken
  end
