type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  (* Direct-mapped page-pointer cache in front of the hashtable. Backing
     pages are created on first touch and never removed, so a cached
     pointer can never go stale — frame reuse after free/realloc lands on
     the same Bytes object. [self_check] asserts exactly that. *)
  cache_frames : int array; (* -1 empty *)
  cache_pages : Bytes.t array;
}

type view = {
  pv_frames : int array;
  pv_pages : Bytes.t array;
  pv_mask : int;
}

let cache_slots = 512
let absent = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 4096;
    cache_frames = Array.make cache_slots (-1);
    cache_pages = Array.make cache_slots absent;
  }

(* Slow path: materialise (or find) the backing page and fill the cache
   slot. Kept out of [page_for] so the hot path stays small. *)
let page_for_slow t frame slot =
  let page =
    match Hashtbl.find_opt t.pages frame with
    | Some p -> p
    | None ->
        let p = Bytes.make Addr.page_size '\000' in
        Hashtbl.add t.pages frame p;
        p
  in
  t.cache_frames.(slot) <- frame;
  t.cache_pages.(slot) <- page;
  page

let page_for t frame =
  let slot = frame land (cache_slots - 1) in
  if t.cache_frames.(slot) = frame then t.cache_pages.(slot)
  else page_for_slow t frame slot

let view t = { pv_frames = t.cache_frames; pv_pages = t.cache_pages; pv_mask = cache_slots - 1 }

(* Accesses are assumed not to straddle a page boundary; all simulator
   clients issue naturally aligned accesses. The checks live on the
   generic (width-dispatching) path only; the width-specialised u64/u8
   entry points below rely on [Bytes]' own bounds check, which rejects a
   page-straddling offset for free. *)
let check_width a width =
  if not (width = 1 || width = 2 || width = 4 || width = 8) then
    invalid_arg (Printf.sprintf "Phys_mem: width %d not in {1,2,4,8}" width);
  if Addr.page_offset a + width > Addr.page_size then
    invalid_arg (Printf.sprintf "Phys_mem: access at 0x%x/%d straddles a page" a width)

let read t a ~width =
  check_width a width;
  let page = page_for t (Addr.page_of a) in
  let off = Addr.page_offset a in
  match width with
  | 1 -> Int64.of_int (Char.code (Bytes.get page off))
  | 2 -> Int64.of_int (Bytes.get_uint16_le page off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le page off)) 0xFFFFFFFFL
  | _ -> Bytes.get_int64_le page off

let write t a ~width v =
  check_width a width;
  let page = page_for t (Addr.page_of a) in
  let off = Addr.page_offset a in
  match width with
  | 1 -> Bytes.set page off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le page off (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le page off (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le page off v

(* Width-specialised paths: no width dispatch, no explicit straddle check
   (Bytes bounds-checks the 8-byte window against the 4 KiB page). These
   carry the interpreter's dominant access width and the page-table
   walker's entry reads. *)
let read_u8 t a = Char.code (Bytes.get (page_for t (Addr.page_of a)) (Addr.page_offset a))
let write_u8 t a v = Bytes.set (page_for t (Addr.page_of a)) (Addr.page_offset a) (Char.chr (v land 0xFF))
let read_u64 t a = Bytes.get_int64_le (page_for t (Addr.page_of a)) (Addr.page_offset a)
let write_u64 t a v = Bytes.set_int64_le (page_for t (Addr.page_of a)) (Addr.page_offset a) v

let read_f64 t a = Int64.float_of_bits (read_u64 t a)
let write_f64 t a v = write_u64 t a (Int64.bits_of_float v)

let copy_page t ~src ~dst =
  if not (Addr.is_page_aligned src && Addr.is_page_aligned dst) then
    invalid_arg "Phys_mem.copy_page: unaligned page address";
  let sp = page_for t (Addr.page_of src) in
  let dp = page_for t (Addr.page_of dst) in
  Bytes.blit sp 0 dp 0 Addr.page_size

let zero_page t a =
  if not (Addr.is_page_aligned a) then invalid_arg "Phys_mem.zero_page: unaligned page address";
  let p = page_for t (Addr.page_of a) in
  Bytes.fill p 0 Addr.page_size '\000'

let host_write_u64 = write_u64
let host_write_f64 = write_f64

let touched_pages t = Hashtbl.length t.pages

let self_check t =
  let bad = ref None in
  Array.iteri
    (fun slot frame ->
      if frame >= 0 && !bad = None then
        match Hashtbl.find_opt t.pages frame with
        | Some p when p == t.cache_pages.(slot) -> ()
        | Some _ -> bad := Some (Printf.sprintf "frame %d: cached pointer differs from store" frame)
        | None -> bad := Some (Printf.sprintf "frame %d cached but absent from store" frame))
    t.cache_frames;
  match !bad with None -> Ok () | Some msg -> Error ("Phys_mem page-pointer cache: " ^ msg)
