type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  (* One-entry lookup cache: sequential access patterns dominate. *)
  mutable last_frame : int;
  mutable last_page : Bytes.t;
}

let absent = Bytes.create 0

let create () = { pages = Hashtbl.create 4096; last_frame = -1; last_page = absent }

let page_for t frame =
  if frame = t.last_frame then t.last_page
  else begin
    let page =
      match Hashtbl.find_opt t.pages frame with
      | Some p -> p
      | None ->
          let p = Bytes.make Addr.page_size '\000' in
          Hashtbl.add t.pages frame p;
          p
    in
    t.last_frame <- frame;
    t.last_page <- page;
    page
  end

(* Accesses are assumed not to straddle a page boundary; all simulator
   clients issue naturally aligned accesses. *)
let check_width a width =
  assert (width = 1 || width = 2 || width = 4 || width = 8);
  assert (Addr.page_offset a + width <= Addr.page_size)

let read t a ~width =
  check_width a width;
  let page = page_for t (Addr.page_of a) in
  let off = Addr.page_offset a in
  match width with
  | 1 -> Int64.of_int (Char.code (Bytes.get page off))
  | 2 -> Int64.of_int (Bytes.get_uint16_le page off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le page off)) 0xFFFFFFFFL
  | _ -> Bytes.get_int64_le page off

let write t a ~width v =
  check_width a width;
  let page = page_for t (Addr.page_of a) in
  let off = Addr.page_offset a in
  match width with
  | 1 -> Bytes.set page off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le page off (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le page off (Int64.to_int32 v)
  | _ -> Bytes.set_int64_le page off v

let read_u8 t a = Int64.to_int (read t a ~width:1)
let write_u8 t a v = write t a ~width:1 (Int64.of_int v)
let read_u64 t a = read t a ~width:8
let write_u64 t a v = write t a ~width:8 v

let read_f64 t a = Int64.float_of_bits (read_u64 t a)
let write_f64 t a v = write_u64 t a (Int64.bits_of_float v)

let copy_page t ~src ~dst =
  assert (Addr.is_page_aligned src && Addr.is_page_aligned dst);
  let sp = page_for t (Addr.page_of src) in
  let dp = page_for t (Addr.page_of dst) in
  Bytes.blit sp 0 dp 0 Addr.page_size

let zero_page t a =
  assert (Addr.is_page_aligned a);
  let p = page_for t (Addr.page_of a) in
  Bytes.fill p 0 Addr.page_size '\000'

let host_write_u64 = write_u64
let host_write_f64 = write_f64

let touched_pages t = Hashtbl.length t.pages
