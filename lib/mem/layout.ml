module Node_id = Stramash_sim.Node_id

type hw_model = Separated | Shared | Fully_shared

let hw_model_to_string = function
  | Separated -> "Separated"
  | Shared -> "Shared"
  | Fully_shared -> "Fully Shared"

let pp_hw_model fmt m = Format.pp_print_string fmt (hw_model_to_string m)
let all_hw_models = [ Separated; Shared; Fully_shared ]

type region = { lo : Addr.paddr; hi : Addr.paddr }

let region_size r = r.hi - r.lo
let region_contains r a = a >= r.lo && a < r.hi

let pp_region fmt r = Format.fprintf fmt "[%a, %a)" Addr.pp_hex r.lo Addr.pp_hex r.hi

let gib_f f = int_of_float (f *. float_of_int (Addr.gib 1))

let x86_private = { lo = 0; hi = gib_f 1.5 }
let arm_private = { lo = gib_f 1.5; hi = Addr.gib 3 }

let private_region = function
  | Node_id.X86 -> x86_private
  | Node_id.Arm -> arm_private

let message_ring = { lo = Addr.gib 4; hi = Addr.gib 4 + Addr.mib 128 }
let pool = { lo = message_ring.hi; hi = Addr.gib 8 }

let pool_half = function
  | Node_id.X86 -> { lo = Addr.gib 4; hi = Addr.gib 6 }
  | Node_id.Arm -> { lo = Addr.gib 6; hi = Addr.gib 8 }

type locality = Local | Remote

let upper = { lo = Addr.gib 4; hi = Addr.gib 8 }

let locality model ~node a =
  match model with
  | Fully_shared -> Local
  | Separated ->
      if region_contains (private_region node) a then Local
      else if region_contains (pool_half node) a then Local
      else Remote
  | Shared ->
      if region_contains (private_region node) a then Local
      else if region_contains upper a then Remote
      else Remote

let in_message_ring a = region_contains message_ring a

(* Home node of a physical address: the kernel whose memory controller the
   line lives behind. Private boot ranges belong to their owner; under the
   Separated model each node also homes its half of the upper 4-8G range.
   The message ring and the MMIO hole have no single home. *)
let home_node a =
  if region_contains x86_private a then Some Node_id.X86
  else if region_contains arm_private a then Some Node_id.Arm
  else if in_message_ring a then None
  else if region_contains (pool_half Node_id.X86) a then Some Node_id.X86
  else if region_contains (pool_half Node_id.Arm) a then Some Node_id.Arm
  else None

let total_memory = Addr.gib 8
