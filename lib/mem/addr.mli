(** Address arithmetic shared by the whole simulator.

    Physical and virtual addresses are plain [int]s (63-bit native ints
    comfortably cover the 8 GB simulated physical space and 48-bit virtual
    space). Pages are 4 KiB, cache lines 64 B, as in the paper. *)

type paddr = int
type vaddr = int

val page_size : int (* 4096 *)
val page_shift : int (* 12 *)
val line_size : int (* 64 *)
val line_shift : int (* 6 *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val page_of : int -> int
(** Frame / virtual-page number of an address. *)

val page_base : int -> int
val page_offset : int -> int
val line_of : int -> int
val line_base : int -> int
val is_page_aligned : int -> bool
val align_up : int -> alignment:int -> int
val align_down : int -> alignment:int -> int

val lines_spanned : int -> len:int -> int
(** Number of distinct cache lines touched by [len] bytes at an address. *)

val pages_spanned : int -> len:int -> int

val pp_hex : Format.formatter -> int -> unit
(** Hexadecimal rendering, e.g. [0x1_0000_0000]. *)
