type core = Cortex_a72 | Thunderx2 | E5_2620 | Xeon_gold

type t = { l1 : int; l2 : int; l3 : int option; mem : int; remote_mem : int }

(* Paper Table 2 (CXL latency for remote memory, after Sharma 2023). *)
let of_core = function
  | Cortex_a72 -> { l1 = 4; l2 = 9; l3 = None; mem = 300; remote_mem = 780 }
  | Thunderx2 -> { l1 = 4; l2 = 9; l3 = Some 30; mem = 300; remote_mem = 620 }
  | E5_2620 -> { l1 = 4; l2 = 12; l3 = Some 38; mem = 300; remote_mem = 640 }
  | Xeon_gold -> { l1 = 4; l2 = 14; l3 = Some 50; mem = 300; remote_mem = 640 }

let core_name = function
  | Cortex_a72 -> "Cortex-A72"
  | Thunderx2 -> "ThunderX2"
  | E5_2620 -> "E5-2620"
  | Xeon_gold -> "Xeon Gold"

let all_cores = [ Cortex_a72; Thunderx2; E5_2620; Xeon_gold ]

let default_for_node = function
  | Stramash_sim.Node_id.X86 -> of_core Xeon_gold
  | Stramash_sim.Node_id.Arm -> of_core Thunderx2

let l3_exn t =
  match t.l3 with
  | Some c -> c
  | None -> invalid_arg "Latency.l3_exn: core has no L3"
