(** Physical memory layout and hardware models (paper Fig. 3, Fig. 4, §8.1).

    The simulated platform has 8 GB of physical memory:

    - x86 private boot memory: [0, 1.5G)
    - Arm private boot memory: [1.5G, 3G)
    - hole / MMIO:             [3G, 4G)
    - message-ring area:       [4G, 4G+128M)   (§8.2: 128 MB messaging layer)
    - global pool:             [4G+128M, 8G)

    Locality of an address depends on the hardware model (Fig. 3):

    - {b Separated}: each node also owns half of the 4-8G range as local
      memory (x86: [4G,6G), Arm: [6G,8G)); everything else is remote,
      reached over the simulated coherent interconnect.
    - {b Shared}: the whole [4G,8G) range is a CXL-attached pool, remote
      for both nodes; private ranges are local only to their owner.
    - {b Fully shared}: a single memory, local to everyone. *)

type hw_model = Separated | Shared | Fully_shared

val hw_model_to_string : hw_model -> string
val pp_hw_model : Format.formatter -> hw_model -> unit
val all_hw_models : hw_model list

type region = { lo : Addr.paddr; hi : Addr.paddr }
(** Half-open interval [lo, hi). *)

val region_size : region -> int
val region_contains : region -> Addr.paddr -> bool
val pp_region : Format.formatter -> region -> unit

val x86_private : region
val arm_private : region
val private_region : Stramash_sim.Node_id.t -> region
val message_ring : region
val pool : region
(** Allocatable global pool (excludes the message ring carve-out). *)

val pool_half : Stramash_sim.Node_id.t -> region
(** The half of the 4-8G range that is local to a node under {b Separated}. *)

type locality = Local | Remote

val locality : hw_model -> node:Stramash_sim.Node_id.t -> Addr.paddr -> locality
val in_message_ring : Addr.paddr -> bool

val home_node : Addr.paddr -> Stramash_sim.Node_id.t option
(** Kernel whose memory controller homes the address: private boot ranges
    belong to their owner, the upper 4-8G pool is split per
    {!pool_half}; [None] for the message ring and the MMIO hole. *)

val total_memory : int
(** 8 GB, as configured in the paper's experiments (§9.2). *)
