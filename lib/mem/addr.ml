type paddr = int
type vaddr = int

let page_shift = 12
let page_size = 1 lsl page_shift
let line_shift = 6
let line_size = 1 lsl line_shift

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let page_of a = a lsr page_shift
let page_base a = a land lnot (page_size - 1)
let page_offset a = a land (page_size - 1)
let line_of a = a lsr line_shift
let line_base a = a land lnot (line_size - 1)
let is_page_aligned a = a land (page_size - 1) = 0

let align_up a ~alignment =
  assert (alignment > 0 && alignment land (alignment - 1) = 0);
  (a + alignment - 1) land lnot (alignment - 1)

let align_down a ~alignment =
  assert (alignment > 0 && alignment land (alignment - 1) = 0);
  a land lnot (alignment - 1)

let lines_spanned a ~len =
  if len <= 0 then 0 else line_of (a + len - 1) - line_of a + 1

let pages_spanned a ~len =
  if len <= 0 then 0 else page_of (a + len - 1) - page_of a + 1

let pp_hex fmt a = Format.fprintf fmt "0x%x" a
