(** Memory-operation latencies (paper Table 2), in cycles.

    Each simulated node is parameterised by a reference core whose published
    cache/memory latencies drive the cache-plugin timing feedback. The
    paper's cross-ISA experiments use the Xeon Gold / ThunderX2 pair; the
    validation experiments also use the Cortex-A72 / E5-2620 (small) pair. *)

type core = Cortex_a72 | Thunderx2 | E5_2620 | Xeon_gold

type t = {
  l1 : int;
  l2 : int;
  l3 : int option; (* the Cortex-A72 reference has no L3 ("*" in Table 2) *)
  mem : int;
  remote_mem : int;
}

val of_core : core -> t
val core_name : core -> string
val all_cores : core list

val default_for_node : Stramash_sim.Node_id.t -> t
(** Big-pair defaults: x86 = Xeon Gold, Arm = ThunderX2 (§8.1). *)

val l3_exn : t -> int
(** L3 latency; raises [Invalid_argument] for cores without an L3. *)
