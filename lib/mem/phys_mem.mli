(** Simulated physical memory: a sparse byte store over the 8 GB space.

    Backing pages materialise on first touch, so the full Fig.-4 layout can
    be addressed without reserving host memory. All multi-byte accesses are
    little-endian (both target ISAs are little-endian in the paper's
    prototype).

    This module is purely functional storage: it charges no simulated time.
    Timing comes from the cache simulator, which is consulted separately by
    whoever performs the access. [host_*] entry points exist for loading
    program images and initial data, mirroring how a real system's contents
    appear before measurement starts. *)

type t

type view = private {
  pv_frames : int array; (* -1 = empty slot *)
  pv_pages : Bytes.t array;
  pv_mask : int;
}
(** Raw window over the direct-mapped page-pointer cache for the
    runner's fused memio fast path. The arrays alias live storage; a
    probe ([pv_frames.(frame land pv_mask) = frame]) that hits may read
    or write the aliased page directly — pages are never removed, so the
    pointer cannot be stale. A probe that misses must fall back to the
    ordinary accessors (which materialise the page and fill the slot);
    the view itself must never be mutated. *)

val create : unit -> t

val view : t -> view

val read : t -> Addr.paddr -> width:int -> int64
(** [read t a ~width] with [width] in {1,2,4,8} bytes. Unwritten memory
    reads as zero. *)

val write : t -> Addr.paddr -> width:int -> int64 -> unit

val page_for : t -> int -> Bytes.t
(** Backing page for page-number [frame], materialised on first touch;
    fills the page-pointer-cache slot. The fused fast path calls this
    when its inline {!view} probe misses; no simulated cost. *)

val read_u8 : t -> Addr.paddr -> int
val write_u8 : t -> Addr.paddr -> int -> unit

val read_u64 : t -> Addr.paddr -> int64
val write_u64 : t -> Addr.paddr -> int64 -> unit
(** Width-specialised fast paths: one direct-mapped page-pointer probe and
    a bounds-checked [Bytes] access, no width dispatch. Semantically
    identical to [read]/[write] at the same width. *)

val read_f64 : t -> Addr.paddr -> float
val write_f64 : t -> Addr.paddr -> float -> unit

val copy_page : t -> src:Addr.paddr -> dst:Addr.paddr -> unit
(** Copy one 4 KiB page; both addresses must be page-aligned. *)

val zero_page : t -> Addr.paddr -> unit

val host_write_u64 : t -> Addr.paddr -> int64 -> unit
val host_write_f64 : t -> Addr.paddr -> float -> unit
(** Aliases of [write*] kept distinct in the API so call sites make clear
    no simulated cost is intended. *)

val touched_pages : t -> int
(** Number of materialised backing pages (footprint diagnostics). *)

val self_check : t -> (unit, string) result
(** Validate the page-pointer cache against the backing store: every
    cached slot must alias the stored page ([==]). Pages are never removed
    once materialised, so this can only fail if that invariant is broken;
    run by the [--paranoid] harness at quantum boundaries. *)
