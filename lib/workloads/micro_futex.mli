(** Futex microbenchmark (paper §9.2.6, Fig. 13).

    The origin thread repeatedly takes a futex-backed lock; a remote
    thread repeatedly releases it, each loop performing one addition. The
    origin-managed protocol (regular) pays message rounds per operation;
    Stramash's optimisation reduces a cross-kernel wake to direct queue
    access plus one IPI.

    Usage: [Machine.load] the spec (main thread = locker at x86), then
    [Machine.spawn_thread ~at_point:unlocker_entry ~node:Arm], and drive
    both with [Runner.run_threads]. *)

type params = { loops : int }

val unlocker_entry : int
val spec : loops:int -> Stramash_machine.Spec.t
