module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Node_id = Stramash_sim.Node_id
module Spec = Stramash_machine.Spec

type variant =
  | Vanilla
  | Remote_access_origin
  | Remote_access_origin_warm
  | Origin_access_remote
  | Origin_access_remote_warm
  | Remote_random

let all_variants =
  [
    Vanilla;
    Remote_access_origin;
    Remote_access_origin_warm;
    Origin_access_remote;
    Origin_access_remote_warm;
    Remote_random;
  ]

let variant_name = function
  | Vanilla -> "vanilla"
  | Remote_access_origin -> "RaO"
  | Remote_access_origin_warm -> "RaO-NC"
  | Origin_access_remote -> "OaR"
  | Origin_access_remote_warm -> "OaR-NC"
  | Remote_random -> "RaO-rand"

let measure_start = 10
let measure_stop = 11

type params = { bytes : int }

let default = { bytes = 640 * 1024 } (* paper's 10 MB at the 16x scale *)

let data_base = Spec.heap_base

let emit_read_pass b ~elems ~base_r =
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed base_r i ~scale:8) in
      B.add_to b acc acc v);
  acc

let emit_write_pass b ~elems ~base_r =
  B.for_up_const b ~lo:0 ~hi:elems (fun i ->
      B.store b Mir.W64 i (Mir.indexed base_r i ~scale:8))

(* One load per element in LCG-permuted order; [elems] must be a power of
   two so the mask keeps indices in range. *)
let emit_random_read_pass b ~elems ~base_r =
  assert (elems land (elems - 1) = 0);
  let acc = B.immi b 0 in
  let state = B.immi b 12345 in
  let mul = B.imm b 6364136223846793005L in
  let inc = B.imm b 1442695040888963407L in
  B.for_up_const b ~lo:0 ~hi:elems (fun _i ->
      let s1 = B.mul b state mul in
      let s2 = B.add b s1 inc in
      B.set b state s2;
      let idx = B.shri b state 24 in
      let idx = B.andi b idx (elems - 1) in
      let v = B.load b Mir.W64 (Mir.indexed base_r idx ~scale:8) in
      B.add_to b acc acc v);
  acc

let program ~variant ~elems =
  let b = B.create () in
  let base_r = B.immi b data_base in
  let finish_with acc =
    let chk = B.immi b Npb_common.checksum_vaddr in
    B.store b Mir.W64 acc (Mir.based chk);
    B.finish b
  in
  match variant with
  | Vanilla ->
      B.migrate_point b measure_start;
      let acc = emit_read_pass b ~elems ~base_r in
      B.migrate_point b measure_stop;
      finish_with acc
  | Remote_access_origin | Remote_access_origin_warm ->
      B.migrate_point b 0 (* -> Arm *);
      if variant = Remote_access_origin_warm then ignore (emit_read_pass b ~elems ~base_r);
      B.migrate_point b measure_start;
      let acc = emit_read_pass b ~elems ~base_r in
      B.migrate_point b measure_stop;
      B.migrate_point b 1 (* -> back *);
      finish_with acc
  | Origin_access_remote | Origin_access_remote_warm ->
      (* First touch happens on the Arm side: the remote kernel allocates. *)
      B.migrate_point b 0;
      emit_write_pass b ~elems ~base_r;
      B.migrate_point b 1 (* back to x86 *);
      if variant = Origin_access_remote_warm then ignore (emit_read_pass b ~elems ~base_r);
      B.migrate_point b measure_start;
      let acc = emit_read_pass b ~elems ~base_r in
      B.migrate_point b measure_stop;
      finish_with acc
  | Remote_random ->
      let rec pow2 v = if 2 * v <= elems then pow2 (2 * v) else v in
      let elems = pow2 1 in
      B.migrate_point b 0;
      B.migrate_point b measure_start;
      let acc = emit_random_read_pass b ~elems ~base_r in
      B.migrate_point b measure_stop;
      B.migrate_point b 1;
      finish_with acc

let spec ?(params = default) variant =
  let elems = params.bytes / 8 in
  let eager =
    match variant with
    | Origin_access_remote | Origin_access_remote_warm -> false
    | Vanilla | Remote_access_origin | Remote_access_origin_warm | Remote_random -> true
  in
  let init =
    if eager then Spec.I64s (Array.init elems (fun i -> Int64.of_int (i * 3))) else Spec.Zeroed
  in
  {
    Spec.name = "memaccess-" ^ variant_name variant;
    description = "sequential access microbenchmark (Fig. 11)";
    mir = program ~variant ~elems;
    segments =
      [ Spec.segment ~base:data_base ~len:params.bytes ~eager ~init (); Npb_common.checksum_segment ];
    migration_targets = [ (0, Node_id.Arm); (1, Node_id.X86) ];
  }
