(** NPB FT (3-D FFT): per-dimension radix-2 FFT passes (decimation in
    frequency, results in bit-scrambled order) separated by coordinate
    rotations into iteration-fresh scratch arrays.

    FT is the workload where fresh memory is repeatedly first-touched on
    the remote side, producing the paper's residual Stramash messaging
    and replication (Table 3's FT row: the fallback to the origin kernel
    when upper page-table levels are missing, §9.2.3). *)

type params = { n : int (* edge, power of two *); iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> float
