(** NPB EP (Embarrassingly Parallel): pseudo-random number generation with
    almost no memory traffic — the compute-bound contrast workload. Used
    by the ablation benches to show that fused-kernel benefits vanish when
    the OS is not on the critical path. *)

type params = { samples : int; iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> int64
