module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { nkeys : int; max_key : int; iterations : int }

let default = { nkeys = 65536; max_key = 2048; iterations = 4 }

let keys_base = Spec.heap_base
let counts_base p = keys_base + (8 * p.nkeys) + 0x10000 (* page-separated *)
let out_base p = counts_base p + (8 * p.max_key) + 0x10000

let keys p = Npb_common.random_keys ~seed:0x15AEE7L ~n:p.nkeys ~max_key:p.max_key

(* Each ranking iteration: zero the histogram, count keys, prefix-sum into
   start offsets, then scatter keys into the output array. Counting and
   scattering are store-heavy — IS's signature. *)
let program p =
  let b = B.create () in
  let keys_r = B.immi b keys_base in
  let counts_r = B.immi b (counts_base p) in
  let out_r = B.immi b (out_base p) in
  let verify_acc = B.immi b 0 in
  for iter = 0 to p.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        (* zero counts *)
        let z = B.immi b 0 in
        B.for_up_const b ~lo:0 ~hi:p.max_key (fun k ->
            B.store b Mir.W64 z (Mir.indexed counts_r k ~scale:8));
        (* count occurrences *)
        B.for_up_const b ~lo:0 ~hi:p.nkeys (fun i ->
            let key = B.load b Mir.W64 (Mir.indexed keys_r i ~scale:8) in
            let c = B.load b Mir.W64 (Mir.indexed counts_r key ~scale:8) in
            let c1 = B.addi b c 1 in
            B.store b Mir.W64 c1 (Mir.indexed counts_r key ~scale:8));
        (* exclusive prefix sum *)
        let acc = B.immi b 0 in
        B.for_up_const b ~lo:0 ~hi:p.max_key (fun k ->
            let c = B.load b Mir.W64 (Mir.indexed counts_r k ~scale:8) in
            B.store b Mir.W64 acc (Mir.indexed counts_r k ~scale:8);
            B.add_to b acc acc c);
        (* scatter *)
        B.for_up_const b ~lo:0 ~hi:p.nkeys (fun i ->
            let key = B.load b Mir.W64 (Mir.indexed keys_r i ~scale:8) in
            let pos = B.load b Mir.W64 (Mir.indexed counts_r key ~scale:8) in
            B.store b Mir.W64 key (Mir.indexed out_r pos ~scale:8);
            let pos1 = B.addi b pos 1 in
            B.store b Mir.W64 pos1 (Mir.indexed counts_r key ~scale:8)));
    (* Partial verification and key-array update back at the origin, as
       NPB IS does between rank() calls: sample the rank output once per
       page, and rewrite the key array (value-preserving, one store per
       cache line). Under Popcorn the writes ping-pong page ownership and
       force re-replication every iteration; under Stramash they are plain
       cache-coherence invalidations — which also keep the remote L3 miss
       rate high regardless of its size (the paper's Fig. 10 analysis). *)
    B.for_up_const b ~lo:0 ~hi:(p.nkeys / 512) (fun pg ->
        let idx = B.shli b pg 9 in
        let v = B.load b Mir.W64 (Mir.indexed out_r idx ~scale:8) in
        B.add_to b verify_acc verify_acc v);
    B.for_up_const b ~lo:0 ~hi:(p.nkeys / 8) (fun ln ->
        let idx = B.shli b ln 3 in
        let k = B.load b Mir.W64 (Mir.indexed keys_r idx ~scale:8) in
        B.store b Mir.W64 k (Mir.indexed keys_r idx ~scale:8))
  done;
  (* Checksum at the origin: sum of out[i] * (i mod 8 + 1). *)
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:p.nkeys (fun i ->
      let v = B.load b Mir.W64 (Mir.indexed out_r i ~scale:8) in
      let w = B.andi b i 7 in
      let w1 = B.addi b w 1 in
      let wv = B.mul b v w1 in
      B.add_to b acc acc wv);
  B.add_to b acc acc verify_acc;
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let expected_checksum p =
  let sorted = Array.map Int64.to_int (keys p) in
  Array.sort compare sorted;
  let acc = ref 0L in
  Array.iteri
    (fun i v ->
      let w = Int64.of_int ((i land 7) + 1) in
      acc := Int64.add !acc (Int64.mul (Int64.of_int v) w))
    sorted;
  (* partial-verification sums: one sample per page per iteration *)
  for _iter = 1 to p.iterations do
    for pg = 0 to (p.nkeys / 512) - 1 do
      acc := Int64.add !acc (Int64.of_int sorted.(pg * 512))
    done
  done;
  !acc

let spec ?(params = default) () =
  let p = params in
  {
    Spec.name = "is";
    description =
      Printf.sprintf "NPB IS-like integer bucket sort (n=%d, buckets=%d, %d iterations)"
        p.nkeys p.max_key p.iterations;
    mir = program p;
    segments =
      [
        Spec.segment ~base:keys_base ~len:(8 * p.nkeys) ~init:(Spec.I64s (keys p)) ();
        (* histogram and output are demand-faulted where first touched *)
        Spec.segment ~base:(counts_base p) ~len:(8 * p.max_key) ~eager:false ();
        Spec.segment ~base:(out_base p) ~len:(8 * p.nkeys) ~eager:false ();
        Npb_common.checksum_segment;
      ];
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
