(** Cacheline-granularity microbenchmark (paper §9.2.5, Fig. 12).

    The remote node touches [lines] cache lines (64 B each) in every page
    of an origin-owned buffer. Software DSM must replicate the entire
    4 KB page however little of it is read; hardware coherence moves only
    the touched lines. Sweeping [lines] from 1 to 64 reproduces the
    >300x-to-2x collapse of DSM's overhead. *)

type params = { pages : int; lines : int }

val default_pages : int
val measure_start : int
val measure_stop : int
val spec : ?pages:int -> lines:int -> unit -> Stramash_machine.Spec.t
