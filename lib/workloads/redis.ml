module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Msg_layer = Stramash_popcorn.Msg_layer
module Popcorn_os = Stramash_popcorn.Popcorn_os
module Stramash_os = Stramash_core.Stramash_os
module Ipi = Stramash_interconnect.Ipi
module Machine = Stramash_machine.Machine
module Os = Stramash_machine.Os

type op = Get | Set | Lpush | Rpush | Lpop | Rpop | Sadd | Mset

let all_ops = [ Get; Set; Lpush; Rpush; Lpop; Rpop; Sadd; Mset ]

let op_name = function
  | Get -> "get"
  | Set -> "set"
  | Lpush -> "lpush"
  | Rpush -> "rpush"
  | Lpop -> "lpop"
  | Rpop -> "rpop"
  | Sadd -> "sadd"
  | Mset -> "mset"

type result = { op : op; cycles_per_request : float }

type server = {
  env : Env.t;
  os : Os.t;
  server_node : Node_id.t;
  socket_buf : int; (* origin-kernel page: NIC landing buffer *)
  local_buf : int; (* server-local staging page *)
  dataset : int array; (* server-local value pages *)
  rng : Rng.t;
}

let parse_cycles = 400
let dataset_pages = 512 (* 2 MB of values on the server side *)

let make_server machine =
  (match Machine.os machine with
  | Os.Vanilla -> invalid_arg "Redis.run: Vanilla cannot host a migrated server"
  | Os.Popcorn _ | Os.Stramash _ -> ());
  let env = Machine.env machine in
  let origin = Node_id.X86 and server_node = Node_id.Arm in
  let socket_buf = Kernel.alloc_frame_exn (Env.kernel env origin) in
  let local_buf = Kernel.alloc_frame_exn (Env.kernel env server_node) in
  let dataset =
    Array.init dataset_pages (fun _ -> Kernel.alloc_frame_exn (Env.kernel env server_node))
  in
  { env; os = Machine.os machine; server_node; socket_buf; local_buf; dataset; rng = Rng.create ~seed:0x4ED15L }

let node_of t = t.server_node
let value_addr t = t.dataset.(Rng.int t.rng dataset_pages)

(* Move [bytes] of socket data to/from the migrated server. *)
let deliver_to_server t ~bytes =
  let origin = Node_id.X86 in
  (* NIC DMA into the origin's socket buffer (charged to the origin: its
     kernel runs the interrupt/softirq path). *)
  Env.charge_bytes_store t.env origin ~paddr:t.socket_buf ~len:bytes;
  match t.os with
  | Os.Popcorn p ->
      (* read(2) forwarded to the origin; payload crosses the msg layer *)
      Msg_layer.rpc (Popcorn_os.msg p) ~src:t.server_node ~label:"sock_read" ~req_bytes:64
        ~resp_bytes:bytes ~handler:(fun () ->
          Env.charge_bytes_load t.env origin ~paddr:t.socket_buf ~len:bytes);
      Env.charge_bytes_store t.env t.server_node ~paddr:t.local_buf ~len:bytes
  | Os.Stramash _ ->
      (* The origin kernel still runs the rx stack (softirq, skb work); the
         server then reads the buffer directly over coherent shared memory
         after an IPI. *)
      Env.charge_bytes_load t.env origin ~paddr:t.socket_buf ~len:(min bytes 256);
      Meter.add (Env.meter t.env t.server_node) Ipi.cross_isa_ipi_cycles;
      Env.charge_bytes_load t.env t.server_node ~paddr:t.socket_buf ~len:bytes
  | Os.Vanilla -> invalid_arg "Redis.run: Vanilla cannot host a migrated server"

let reply_from_server t ~bytes =
  let origin = Node_id.X86 in
  match t.os with
  | Os.Popcorn p ->
      Env.charge_bytes_load t.env t.server_node ~paddr:t.local_buf ~len:bytes;
      Msg_layer.rpc (Popcorn_os.msg p) ~src:t.server_node ~label:"sock_write" ~req_bytes:bytes
        ~resp_bytes:64 ~handler:(fun () ->
          Env.charge_bytes_store t.env origin ~paddr:t.socket_buf ~len:bytes)
  | Os.Stramash _ ->
      (* Write the tx buffer in place, IPI the origin, and wait for its tx
         path to pick the packet up before the next request is served. *)
      Env.charge_bytes_store t.env t.server_node ~paddr:t.socket_buf ~len:bytes;
      Meter.add (Env.meter t.env t.server_node) Ipi.cross_isa_ipi_cycles;
      let tx = Stramash_sim.Meter.delta (Env.meter t.env origin) (fun () ->
          Env.charge_bytes_load t.env origin ~paddr:t.socket_buf ~len:bytes)
      in
      Meter.add (Env.meter t.env t.server_node) tx
  | Os.Vanilla -> assert false

(* The value phase defaults to the server's private dataset pages; a
   caller-supplied [?value] callback replaces it (the serve subsystem
   routes it at a process keyspace through the kernel fault path) while
   the parse and index-probe costs stay the server's own. The callback
   is invoked exactly once per [read_value]/[write_value] the default
   path would perform — ten times for [Mset], once otherwise. *)
let process_op ?value t op ~payload =
  let node = t.server_node in
  let meter = Env.meter t.env node in
  Meter.add meter parse_cycles;
  let read_value () =
    match value with
    | Some f -> f ~write:false
    | None -> Env.charge_bytes_load t.env node ~paddr:(value_addr t) ~len:payload
  in
  let write_value () =
    match value with
    | Some f -> f ~write:true
    | None -> Env.charge_bytes_store t.env node ~paddr:(value_addr t) ~len:payload
  in
  let probe_index n =
    for _ = 1 to n do
      Env.charge_load t.env node ~paddr:(value_addr t)
    done
  in
  match op with
  | Get ->
      probe_index 2;
      read_value ()
  | Set ->
      probe_index 2;
      write_value ()
  | Lpush | Rpush ->
      probe_index 1;
      write_value ();
      (* list node header + head/tail pointer update *)
      Env.charge_store t.env node ~paddr:(value_addr t);
      Env.charge_store t.env node ~paddr:(value_addr t)
  | Lpop | Rpop ->
      probe_index 1;
      read_value ();
      Env.charge_store t.env node ~paddr:(value_addr t)
  | Sadd ->
      probe_index 4;
      write_value ()
  | Mset ->
      for _ = 1 to 10 do
        probe_index 1;
        write_value ()
      done

let reply_bytes op = match op with Get | Lpop | Rpop -> 1024 | Set | Lpush | Rpush | Sadd | Mset -> 64

let request_bytes op ~payload = match op with Get | Lpop | Rpop -> 128 | Mset -> 10 * payload | Set | Lpush | Rpush | Sadd -> payload

let serve_one ?value t op ~payload =
  if payload <= 0 then invalid_arg "Redis.serve_one: payload must be positive";
  deliver_to_server t ~bytes:(request_bytes op ~payload);
  process_op ?value t op ~payload;
  reply_from_server t ~bytes:(reply_bytes op)

let run ~os ?(requests = 10_000) ?(payload = 1024) () =
  if requests <= 0 then invalid_arg "Redis.run: requests must be positive";
  if payload <= 0 then invalid_arg "Redis.run: payload must be positive";
  let machine = Machine.create { Machine.default_config with os; hw_model = Stramash_mem.Layout.Shared } in
  let server = make_server machine in
  List.map
    (fun op ->
      let meter = Env.meter server.env server.server_node in
      let before = Meter.get meter in
      for _ = 1 to requests do
        serve_one server op ~payload
      done;
      let total = Meter.get meter - before in
      { op; cycles_per_request = float_of_int total /. float_of_int requests })
    all_ops
