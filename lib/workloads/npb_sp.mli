(** NPB SP-like kernel: ADI with scalar tridiagonal (Thomas) line solves
    along x (unit stride) and y (stride n) — division-heavy forward
    elimination followed by a descending back-substitution, a memory/FP
    mix none of the other kernels exercise. *)

type params = { n : int; iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> float
