module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { samples : int; iterations : int }

let default = { samples = 200_000; iterations = 2 }

let hist_base = Spec.heap_base
let hist_buckets = 64

(* A 64-bit LCG evaluated in registers; only the small histogram touches
   memory. *)
let lcg_mul = 6364136223846793005L
let lcg_inc = 1442695040888963407L

let program p =
  let b = B.create () in
  let hist_r = B.immi b hist_base in
  let x = B.imm b 0x9E3779B97F4A7C15L in
  for iter = 0 to p.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        B.for_up_const b ~lo:0 ~hi:p.samples (fun _i ->
            let m = B.imm b lcg_mul in
            let c = B.imm b lcg_inc in
            let x1 = B.mul b x m in
            let x2 = B.add b x1 c in
            B.set b x x2;
            let bucket = B.shri b x 58 in
            let cnt = B.load b Mir.W64 (Mir.indexed hist_r bucket ~scale:8) in
            let cnt1 = B.addi b cnt 1 in
            B.store b Mir.W64 cnt1 (Mir.indexed hist_r bucket ~scale:8)))
  done;
  let acc = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:hist_buckets (fun k ->
      let c = B.load b Mir.W64 (Mir.indexed hist_r k ~scale:8) in
      let kc = B.mul b c (B.addi b k 3) in
      B.add_to b acc acc kc);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let expected_checksum p =
  let hist = Array.make hist_buckets 0 in
  let x = ref 0x9E3779B97F4A7C15L in
  for _iter = 0 to p.iterations - 1 do
    for _i = 0 to p.samples - 1 do
      x := Int64.add (Int64.mul !x lcg_mul) lcg_inc;
      let bucket = Int64.to_int (Int64.shift_right_logical !x 58) in
      hist.(bucket) <- hist.(bucket) + 1
    done
  done;
  let acc = ref 0L in
  Array.iteri (fun k c -> acc := Int64.add !acc (Int64.of_int (c * (k + 3)))) hist;
  !acc

let spec ?(params = default) () =
  let p = params in
  {
    Spec.name = "ep";
    description =
      Printf.sprintf "NPB EP-like register-resident random sampling (%d samples x%d)" p.samples
        p.iterations;
    mir = program p;
    segments =
      [ Spec.segment ~base:hist_base ~len:(8 * hist_buckets) ~eager:false (); Npb_common.checksum_segment ];
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
