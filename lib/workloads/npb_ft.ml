module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { n : int; iterations : int }

let default = { n = 16; iterations = 3 }

let points p = p.n * p.n * p.n
let array_bytes p = 16 * points p (* interleaved complex *)

let u_base = Spec.heap_base
let w_base p = u_base + array_bytes p + 0x10000
let fac_base p = w_base p + 0x10000 (* the twiddle table needs only n/2 lines *)

(* Per-iteration scratch arrays. Each lives in its own 2MB-aligned virtual
   region (one leaf page table per region), is demand-faulted, and under
   cross-ISA migration is first-touched on the remote node — so the origin
   kernel's page table lacks the upper levels and the remote fault takes
   the origin-fallback path (§9.2.3). This is FT's signature behaviour and
   the source of its residual Table-3 messages/pages. *)
let scratch_base _p ~iter ~half = 0x2000_0000 + (((2 * iter) + half) * 0x200000)

let u_init p = Npb_common.random_f64s ~seed:0xF7L ~n:(2 * points p)
let fac_init p = Npb_common.random_f64s ~seed:0xFAC70AL ~n:(points p)

let twiddles p =
  Array.concat
    (List.init (p.n / 2) (fun k ->
         let angle = -2.0 *. Float.pi *. float_of_int k /. float_of_int p.n in
         [| cos angle; sin angle |]))

(* In-place DIF radix-2 FFT of every contiguous [n]-point line of the
   array at [arr_r]; twiddle index step doubles as the span halves. *)
let emit_fft_lines b ~p ~arr_r ~w_r =
  let n = p.n in
  B.for_up_const b ~lo:0 ~hi:(n * n) (fun line ->
      let lbase = B.muli b line n in
      let span = B.immi b (n / 2) in
      let kstep = B.immi b 1 in
      let top = B.label b in
      let exit = B.label b in
      B.place b top;
      B.branchi b Mir.Lt span 1 exit;
      (* for start in 0..n step 2*span *)
      let start = B.immi b 0 in
      let step = B.shli b span 1 in
      let stop = B.immi b n in
      let stop_lbl = B.label b in
      let stop_top = B.label b in
      B.seti b start 0;
      B.place b stop_top;
      B.branch b Mir.Ge start stop stop_lbl;
      (let zero = B.immi b 0 in
       B.for_range b ~from:zero ~to_:span (fun j ->
           let i1 = B.add b lbase start in
           B.add_to b i1 i1 j;
           let i2 = B.add b i1 span in
           let a1 = B.shli b i1 4 in
           let a1 = B.add b a1 arr_r in
           let a2 = B.shli b i2 4 in
           let a2 = B.add b a2 arr_r in
           let are = B.load b Mir.W64 (Mir.based a1) in
           let aim = B.load b Mir.W64 (Mir.based_disp a1 8) in
           let bre = B.load b Mir.W64 (Mir.based a2) in
           let bim = B.load b Mir.W64 (Mir.based_disp a2 8) in
           let sre = B.fadd b are bre in
           let sim = B.fadd b aim bim in
           B.store b Mir.W64 sre (Mir.based a1);
           B.store b Mir.W64 sim (Mir.based_disp a1 8);
           let tre = B.fsub b are bre in
           let tim = B.fsub b aim bim in
           let k = B.mul b j kstep in
           let wa = B.shli b k 4 in
           let wa = B.add b wa w_r in
           let c = B.load b Mir.W64 (Mir.based wa) in
           let d = B.load b Mir.W64 (Mir.based_disp wa 8) in
           let m1 = B.fmul b tre c in
           let m2 = B.fmul b tim d in
           let ore = B.fsub b m1 m2 in
           let m3 = B.fmul b tre d in
           let m4 = B.fmul b tim c in
           let oim = B.fadd b m3 m4 in
           B.store b Mir.W64 ore (Mir.based a2);
           B.store b Mir.W64 oim (Mir.based_disp a2 8)));
      B.add_to b start start step;
      B.jump b stop_top;
      B.place b stop_lbl;
      (* span /= 2; kstep *= 2 *)
      B.bin_to b Mir.Shr span span (B.immi b 1);
      B.bin_to b Mir.Shl kstep kstep (B.immi b 1);
      B.jump b top;
      B.place b exit)

(* Coordinate rotation (z,y,x) -> x*n^2 + z*n + y, moving the next
   dimension into the contiguous position. *)
let emit_rotate b ~p ~src_r ~dst_r =
  let n = p.n in
  let log_n =
    let rec go k acc = if 1 lsl acc = k then acc else go k (acc + 1) in
    go n 0
  in
  let mask = n - 1 in
  B.for_up_const b ~lo:0 ~hi:(points p) (fun i ->
      let x = B.andi b i mask in
      let y = B.shri b i log_n in
      let y = B.andi b y mask in
      let z = B.shri b i (2 * log_n) in
      let j = B.shli b x log_n in
      B.add_to b j j z;
      let j2 = B.shli b j log_n in
      B.add_to b j2 j2 y;
      let sa = B.shli b i 4 in
      let sa = B.add b sa src_r in
      let da = B.shli b j2 4 in
      let da = B.add b da dst_r in
      let re = B.load b Mir.W64 (Mir.based sa) in
      let im = B.load b Mir.W64 (Mir.based_disp sa 8) in
      B.store b Mir.W64 re (Mir.based da);
      B.store b Mir.W64 im (Mir.based_disp da 8))

let program p =
  let b = B.create () in
  let u_r = B.immi b u_base in
  let w_r = B.immi b (w_base p) in
  let fac_r = B.immi b (fac_base p) in
  for iter = 0 to p.iterations - 1 do
    let s1_r = B.immi b (scratch_base p ~iter ~half:0) in
    let s2_r = B.immi b (scratch_base p ~iter ~half:1) in
    Npb_common.with_round b ~round:iter (fun () ->
        emit_fft_lines b ~p ~arr_r:u_r ~w_r;
        emit_rotate b ~p ~src_r:u_r ~dst_r:s1_r;
        emit_fft_lines b ~p ~arr_r:s1_r ~w_r;
        emit_rotate b ~p ~src_r:s1_r ~dst_r:s2_r;
        emit_fft_lines b ~p ~arr_r:s2_r ~w_r;
        (* evolve: u = s2 * fac (real factor), closing the iteration *)
        B.for_up_const b ~lo:0 ~hi:(points p) (fun i ->
            let sa = B.shli b i 4 in
            let sa = B.add b sa s2_r in
            let fa = B.shli b i 3 in
            let fa = B.add b fa fac_r in
            let ua = B.shli b i 4 in
            let ua = B.add b ua u_r in
            let re = B.load b Mir.W64 (Mir.based sa) in
            let im = B.load b Mir.W64 (Mir.based_disp sa 8) in
            let f = B.load b Mir.W64 (Mir.based fa) in
            let re = B.fmul b re f in
            let im = B.fmul b im f in
            B.store b Mir.W64 re (Mir.based ua);
            B.store b Mir.W64 im (Mir.based_disp ua 8)))
  done;
  (* checksum: strided sum of real parts *)
  let acc = B.fimm b 0.0 in
  B.for_up_const b ~lo:0 ~hi:(points p / 16) (fun i ->
      let idx = B.muli b i 16 in
      let a = B.shli b idx 4 in
      let a = B.add b a u_r in
      let v = B.load b Mir.W64 (Mir.based a) in
      B.fadd_to b acc acc v);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let expected_checksum p =
  let n = p.n in
  let npts = points p in
  let re = Array.make npts 0.0 and im = Array.make npts 0.0 in
  let ui = u_init p in
  for i = 0 to npts - 1 do
    re.(i) <- ui.(2 * i);
    im.(i) <- ui.((2 * i) + 1)
  done;
  let w = twiddles p in
  let fac = fac_init p in
  let fft_lines re im =
    for line = 0 to (n * n) - 1 do
      let lbase = line * n in
      let span = ref (n / 2) and kstep = ref 1 in
      while !span >= 1 do
        let start = ref 0 in
        while !start < n do
          for j = 0 to !span - 1 do
            let i1 = lbase + !start + j in
            let i2 = i1 + !span in
            let are = re.(i1) and aim = im.(i1) in
            let bre = re.(i2) and bim = im.(i2) in
            re.(i1) <- are +. bre;
            im.(i1) <- aim +. bim;
            let tre = are -. bre and tim = aim -. bim in
            let k = j * !kstep in
            let c = w.(2 * k) and d = w.((2 * k) + 1) in
            re.(i2) <- (tre *. c) -. (tim *. d);
            im.(i2) <- (tre *. d) +. (tim *. c)
          done;
          start := !start + (2 * !span)
        done;
        span := !span / 2;
        kstep := !kstep * 2
      done
    done
  in
  let log_n =
    let rec go acc = if 1 lsl acc = n then acc else go (acc + 1) in
    go 0
  in
  let mask = n - 1 in
  let rotate src_re src_im dst_re dst_im =
    for i = 0 to npts - 1 do
      let x = i land mask in
      let y = (i lsr log_n) land mask in
      let z = i lsr (2 * log_n) in
      let j = ((((x lsl log_n) + z) lsl log_n) + y) in
      dst_re.(j) <- src_re.(i);
      dst_im.(j) <- src_im.(i)
    done
  in
  let s1re = Array.make npts 0.0 and s1im = Array.make npts 0.0 in
  let s2re = Array.make npts 0.0 and s2im = Array.make npts 0.0 in
  for _iter = 0 to p.iterations - 1 do
    fft_lines re im;
    rotate re im s1re s1im;
    fft_lines s1re s1im;
    rotate s1re s1im s2re s2im;
    fft_lines s2re s2im;
    for i = 0 to npts - 1 do
      re.(i) <- s2re.(i) *. fac.(i);
      im.(i) <- s2im.(i) *. fac.(i)
    done
  done;
  let acc = ref 0.0 in
  for i = 0 to (npts / 16) - 1 do
    acc := !acc +. re.(i * 16)
  done;
  !acc

let spec ?(params = default) () =
  let p = params in
  let scratch_segments =
    List.concat
      (List.init p.iterations (fun iter ->
           [
             Spec.segment ~base:(scratch_base p ~iter ~half:0) ~len:(array_bytes p) ~eager:false ();
             Spec.segment ~base:(scratch_base p ~iter ~half:1) ~len:(array_bytes p) ~eager:false ();
           ]))
  in
  {
    Spec.name = "ft";
    description =
      Printf.sprintf "NPB FT-like 3-D FFT (grid %d^3, %d iterations, fresh scratch per iteration)"
        p.n p.iterations;
    mir = program p;
    segments =
      [
        Spec.segment ~base:u_base ~len:(array_bytes p) ~init:(Spec.F64s (u_init p)) ();
        Spec.segment ~base:(w_base p) ~len:(16 * (p.n / 2)) ~init:(Spec.F64s (twiddles p)) ();
        Spec.segment ~base:(fac_base p) ~len:(8 * points p) ~init:(Spec.F64s (fac_init p)) ();
        Npb_common.checksum_segment;
      ]
      @ scratch_segments;
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
