module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { n : int; iterations : int }

let default = { n = 32; iterations = 3 }

let cells p = p.n * p.n * p.n
let coarse_cells p = cells p / 8

let u_base = Spec.heap_base
let v_base p = u_base + (8 * cells p) + 0x10000
let r_base p = v_base p + (8 * cells p) + 0x10000
let uc_base p = r_base p + (8 * cells p) + 0x10000

let v_init p = Npb_common.random_f64s ~seed:0x36L ~n:(cells p)

(* Stencil weights of the simplified operator. *)
let w_center = 0.5
let w_neigh = 1.0 /. 12.0

(* One V-cycle: residual on the fine grid, restriction to the coarse grid,
   two Jacobi sweeps there, prolongation back, one fine smoothing pass. *)
let program p =
  let n = p.n in
  let n2 = n * n in
  let b = B.create () in
  let u_r = B.immi b u_base in
  let v_r = B.immi b (v_base p) in
  let r_r = B.immi b (r_base p) in
  let uc_r = B.immi b (uc_base p) in
  let wc = B.fimm b w_center in
  let wn = B.fimm b w_neigh in
  let interior body =
    (* iterate z,y,x over [1, n-1) *)
    B.for_up_const b ~lo:1 ~hi:(n - 1) (fun z ->
        B.for_up_const b ~lo:1 ~hi:(n - 1) (fun y ->
            let zy = B.mul b z (B.immi b n) in
            let zy = B.add b zy y in
            let row = B.mul b zy (B.immi b n) in
            B.for_up_const b ~lo:1 ~hi:(n - 1) (fun x ->
                let idx = B.add b row x in
                body idx)))
  in
  let stencil ~src idx =
    (* weighted 7-point: wc*src[idx] + wn*sum(neighbours) *)
    let a = B.shli b idx 3 in
    let a = B.add b a src in
    let c = B.load b Mir.W64 (Mir.based a) in
    let acc = B.fmul b c wc in
    let add_neigh disp =
      let v = B.load b Mir.W64 (Mir.based_disp a disp) in
      let v = B.fmul b v wn in
      B.fadd_to b acc acc v
    in
    add_neigh 8;
    add_neigh (-8);
    add_neigh (8 * n);
    add_neigh (-8 * n);
    add_neigh (8 * n2);
    add_neigh (-8 * n2);
    acc
  in
  for iter = 0 to p.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        (* r = v - A u *)
        interior (fun idx ->
            let au = stencil ~src:u_r idx in
            let av = B.load b Mir.W64 (Mir.indexed v_r idx ~scale:8) in
            let res = B.fsub b av au in
            B.store b Mir.W64 res (Mir.indexed r_r idx ~scale:8));
        (* restrict r -> coarse (sample every other point) *)
        let nc = n / 2 in
        B.for_up_const b ~lo:0 ~hi:nc (fun zc ->
            B.for_up_const b ~lo:0 ~hi:nc (fun yc ->
                B.for_up_const b ~lo:0 ~hi:nc (fun xc ->
                    let z2 = B.shli b zc 1 in
                    let y2 = B.shli b yc 1 in
                    let x2 = B.shli b xc 1 in
                    let fi = B.mul b z2 (B.immi b n) in
                    let fi = B.add b fi y2 in
                    let fi = B.mul b fi (B.immi b n) in
                    let fi = B.add b fi x2 in
                    let v = B.load b Mir.W64 (Mir.indexed r_r fi ~scale:8) in
                    let ci = B.mul b zc (B.immi b nc) in
                    let ci = B.add b ci yc in
                    let ci = B.mul b ci (B.immi b nc) in
                    let ci = B.add b ci xc in
                    B.store b Mir.W64 v (Mir.indexed uc_r ci ~scale:8))));
        (* two damped point-Jacobi sweeps on the coarse grid (in place) *)
        let quarter = B.fimm b 0.25 in
        for _sweep = 0 to 1 do
          B.for_up_const b ~lo:1 ~hi:(nc - 1) (fun zc ->
              B.for_up_const b ~lo:1 ~hi:(nc - 1) (fun yc ->
                  B.for_up_const b ~lo:1 ~hi:(nc - 1) (fun xc ->
                      let ci = B.mul b zc (B.immi b nc) in
                      let ci = B.add b ci yc in
                      let ci = B.mul b ci (B.immi b nc) in
                      let ci = B.add b ci xc in
                      let a = B.shli b ci 3 in
                      let a = B.add b a uc_r in
                      let c = B.load b Mir.W64 (Mir.based a) in
                      let e = B.load b Mir.W64 (Mir.based_disp a 8) in
                      let w = B.load b Mir.W64 (Mir.based_disp a (-8)) in
                      let s1 = B.fadd b e w in
                      let s2 = B.fadd b c s1 in
                      let nv = B.fmul b s2 quarter in
                      B.store b Mir.W64 nv (Mir.based a))))
        done;
        (* prolongate + correct: u[fine] += coarse sample *)
        B.for_up_const b ~lo:0 ~hi:nc (fun zc ->
            B.for_up_const b ~lo:0 ~hi:nc (fun yc ->
                B.for_up_const b ~lo:0 ~hi:nc (fun xc ->
                    let ci = B.mul b zc (B.immi b nc) in
                    let ci = B.add b ci yc in
                    let ci = B.mul b ci (B.immi b nc) in
                    let ci = B.add b ci xc in
                    let cv = B.load b Mir.W64 (Mir.indexed uc_r ci ~scale:8) in
                    let z2 = B.shli b zc 1 in
                    let y2 = B.shli b yc 1 in
                    let x2 = B.shli b xc 1 in
                    let fi = B.mul b z2 (B.immi b n) in
                    let fi = B.add b fi y2 in
                    let fi = B.mul b fi (B.immi b n) in
                    let fi = B.add b fi x2 in
                    let uv = B.load b Mir.W64 (Mir.indexed u_r fi ~scale:8) in
                    let nv = B.fadd b uv cv in
                    B.store b Mir.W64 nv (Mir.indexed u_r fi ~scale:8))));
        (* one fine smoothing pass: u = u + 0.1*(v - A u) *)
        let tenth = B.fimm b 0.1 in
        interior (fun idx ->
            let au = stencil ~src:u_r idx in
            let av = B.load b Mir.W64 (Mir.indexed v_r idx ~scale:8) in
            let res = B.fsub b av au in
            let corr = B.fmul b res tenth in
            let uv = B.load b Mir.W64 (Mir.indexed u_r idx ~scale:8) in
            let nv = B.fadd b uv corr in
            B.store b Mir.W64 nv (Mir.indexed u_r idx ~scale:8)))
  done;
  (* checksum: sum of u over a diagonal stripe *)
  let acc = B.fimm b 0.0 in
  B.for_up_const b ~lo:0 ~hi:(cells p / 64) (fun i ->
      let idx = B.muli b i 64 in
      let v = B.load b Mir.W64 (Mir.indexed u_r idx ~scale:8) in
      B.fadd_to b acc acc v);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let expected_checksum p =
  let n = p.n in
  let n2 = n * n in
  let nc = n / 2 in
  let u = Array.make (cells p) 0.0 in
  let v = v_init p in
  let r = Array.make (cells p) 0.0 in
  let uc = Array.make (coarse_cells p) 0.0 in
  let fidx z y x = ((z * n) + y) * n + x in
  let cidx z y x = ((z * nc) + y) * nc + x in
  let stencil src idx =
    (w_center *. src.(idx))
    +. (w_neigh *. src.(idx + 1))
    +. (w_neigh *. src.(idx - 1))
    +. (w_neigh *. src.(idx + n))
    +. (w_neigh *. src.(idx - n))
    +. (w_neigh *. src.(idx + n2))
    +. (w_neigh *. src.(idx - n2))
  in
  for _iter = 0 to p.iterations - 1 do
    for z = 1 to n - 2 do
      for y = 1 to n - 2 do
        for x = 1 to n - 2 do
          let idx = fidx z y x in
          r.(idx) <- v.(idx) -. stencil u idx
        done
      done
    done;
    for zc = 0 to nc - 1 do
      for yc = 0 to nc - 1 do
        for xc = 0 to nc - 1 do
          uc.(cidx zc yc xc) <- r.(fidx (2 * zc) (2 * yc) (2 * xc))
        done
      done
    done;
    for _sweep = 0 to 1 do
      for zc = 1 to nc - 2 do
        for yc = 1 to nc - 2 do
          for xc = 1 to nc - 2 do
            let ci = cidx zc yc xc in
            uc.(ci) <- (uc.(ci) +. (uc.(ci + 1) +. uc.(ci - 1))) *. 0.25
          done
        done
      done
    done;
    for zc = 0 to nc - 1 do
      for yc = 0 to nc - 1 do
        for xc = 0 to nc - 1 do
          let fi = fidx (2 * zc) (2 * yc) (2 * xc) in
          u.(fi) <- u.(fi) +. uc.(cidx zc yc xc)
        done
      done
    done;
    for z = 1 to n - 2 do
      for y = 1 to n - 2 do
        for x = 1 to n - 2 do
          let idx = fidx z y x in
          u.(idx) <- u.(idx) +. (0.1 *. (v.(idx) -. stencil u idx))
        done
      done
    done
  done;
  let acc = ref 0.0 in
  for i = 0 to (cells p / 64) - 1 do
    acc := !acc +. u.(i * 64)
  done;
  !acc

let spec ?(params = default) () =
  let p = params in
  {
    Spec.name = "mg";
    description =
      Printf.sprintf "NPB MG-like 3-D multigrid V-cycle (grid %d^3, %d iterations)" p.n
        p.iterations;
    mir = program p;
    segments =
      [
        Spec.segment ~base:u_base ~len:(8 * cells p) ();
        Spec.segment ~base:(v_base p) ~len:(8 * cells p) ~init:(Spec.F64s (v_init p)) ();
        Spec.segment ~base:(r_base p) ~len:(8 * cells p) ~eager:false ();
        Spec.segment ~base:(uc_base p) ~len:(8 * coarse_cells p) ~eager:false ();
        Npb_common.checksum_segment;
      ];
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
