module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Node_id = Stramash_sim.Node_id
module Spec = Stramash_machine.Spec

type params = { pages : int; lines : int }

let default_pages = 128
let measure_start = 10
let measure_stop = 11

let data_base = Spec.heap_base

let program ~pages ~lines =
  let b = B.create () in
  let base_r = B.immi b data_base in
  let acc = B.immi b 0 in
  B.migrate_point b 0 (* -> Arm *);
  B.migrate_point b measure_start;
  B.for_up_const b ~lo:0 ~hi:pages (fun page ->
      let page_addr = B.shli b page 12 in
      let page_addr = B.add b page_addr base_r in
      B.for_up_const b ~lo:0 ~hi:lines (fun line ->
          let a = B.shli b line 6 in
          let a = B.add b a page_addr in
          let v = B.load b Mir.W64 (Mir.based a) in
          B.add_to b acc acc v));
  B.migrate_point b measure_stop;
  B.migrate_point b 1 (* -> back *);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let spec ?(pages = default_pages) ~lines () =
  assert (lines >= 1 && lines <= 64);
  let bytes = pages * 4096 in
  {
    Spec.name = Printf.sprintf "granularity-%dL" lines;
    description = "per-cacheline remote access vs page-granularity DSM (Fig. 12)";
    mir = program ~pages ~lines;
    segments =
      [
        Spec.segment ~base:data_base ~len:bytes
          ~init:(Spec.I64s (Array.init (bytes / 8) Int64.of_int))
          ();
        Npb_common.checksum_segment;
      ];
    migration_targets = [ (0, Node_id.Arm); (1, Node_id.X86) ];
  }
