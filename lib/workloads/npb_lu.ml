module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { n : int; iterations : int }

let default = { n = 24; iterations = 3 }

let cells p = p.n * p.n * p.n
let align_page a = (a + 4095) land lnot 4095
let u_base = Spec.heap_base
let v_base p = align_page (u_base + (8 * cells p) + 0x10000)

let v_init p = Npb_common.random_f64s ~seed:0x1BL ~n:(cells p)
let omega = 0.3
let coeff = 0.2

(* One SSOR iteration: a lower (ascending) sweep consuming freshly-updated
   west/south/down neighbours, then an upper (descending) sweep consuming
   fresh east/north/up neighbours. *)
let program p =
  let n = p.n in
  let n2 = n * n in
  let b = B.create () in
  let u_r = B.immi b u_base in
  let v_r = B.immi b (v_base p) in
  let om = B.fimm b omega in
  let cf = B.fimm b coeff in
  let interior body =
    B.for_up_const b ~lo:1 ~hi:(n - 1) (fun z ->
        B.for_up_const b ~lo:1 ~hi:(n - 1) (fun y ->
            B.for_up_const b ~lo:1 ~hi:(n - 1) (fun x -> body z y x)))
  in
  let cell_index z y x =
    let zy = B.mul b z (B.immi b n) in
    let zy = B.add b zy y in
    let idx = B.mul b zy (B.immi b n) in
    B.add b idx x
  in
  for iter = 0 to p.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        (* lower sweep, ascending *)
        interior (fun z y x ->
            let idx = cell_index z y x in
            let a = B.shli b idx 3 in
            let a = B.add b a u_r in
            let west = B.load b Mir.W64 (Mir.based_disp a (-8)) in
            let south = B.load b Mir.W64 (Mir.based_disp a (-8 * n)) in
            let down = B.load b Mir.W64 (Mir.based_disp a (-8 * n2)) in
            let vv = B.load b Mir.W64 (Mir.indexed v_r idx ~scale:8) in
            let s1 = B.fadd b west south in
            let s2 = B.fadd b s1 down in
            let s3 = B.fmul b s2 cf in
            let s4 = B.fadd b vv s3 in
            let nv = B.fmul b s4 om in
            B.store b Mir.W64 nv (Mir.based a));
        (* upper sweep, descending: iterate r and mirror the index *)
        interior (fun zr yr xr ->
            let nm1 = B.immi b (n - 1) in
            let z = B.sub b nm1 zr in
            let y = B.sub b nm1 yr in
            let x = B.sub b nm1 xr in
            let idx = cell_index z y x in
            let a = B.shli b idx 3 in
            let a = B.add b a u_r in
            let east = B.load b Mir.W64 (Mir.based_disp a 8) in
            let north = B.load b Mir.W64 (Mir.based_disp a (8 * n)) in
            let up = B.load b Mir.W64 (Mir.based_disp a (8 * n2)) in
            let self = B.load b Mir.W64 (Mir.based a) in
            let s1 = B.fadd b east north in
            let s2 = B.fadd b s1 up in
            let s3 = B.fmul b s2 cf in
            let s4 = B.fmul b s3 om in
            let nv = B.fadd b self s4 in
            B.store b Mir.W64 nv (Mir.based a)))
  done;
  let acc = B.fimm b 0.0 in
  B.for_up_const b ~lo:0 ~hi:(cells p / 32) (fun i ->
      let idx = B.muli b i 32 in
      let vv = B.load b Mir.W64 (Mir.indexed u_r idx ~scale:8) in
      B.fadd_to b acc acc vv);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let expected_checksum p =
  let n = p.n in
  let n2 = n * n in
  let u = Array.make (cells p) 0.0 in
  let v = v_init p in
  let fidx z y x = ((z * n) + y) * n + x in
  for _iter = 0 to p.iterations - 1 do
    for z = 1 to n - 2 do
      for y = 1 to n - 2 do
        for x = 1 to n - 2 do
          let idx = fidx z y x in
          u.(idx) <-
            (v.(idx) +. ((u.(idx - 1) +. u.(idx - n) +. u.(idx - n2)) *. coeff)) *. omega
        done
      done
    done;
    for zr = 1 to n - 2 do
      for yr = 1 to n - 2 do
        for xr = 1 to n - 2 do
          let z = n - 1 - zr and y = n - 1 - yr and x = n - 1 - xr in
          let idx = fidx z y x in
          u.(idx) <- u.(idx) +. ((u.(idx + 1) +. u.(idx + n) +. u.(idx + n2)) *. coeff *. omega)
        done
      done
    done
  done;
  let acc = ref 0.0 in
  for i = 0 to (cells p / 32) - 1 do
    acc := !acc +. u.(i * 32)
  done;
  !acc

let spec ?(params = default) () =
  let p = params in
  {
    Spec.name = "lu";
    description =
      Printf.sprintf "NPB LU-like SSOR wavefront sweeps (grid %d^3, %d iterations)" p.n
        p.iterations;
    mir = program p;
    segments =
      [
        Spec.segment ~base:u_base ~len:(8 * cells p) ();
        Spec.segment ~base:(v_base p) ~len:(8 * cells p) ~init:(Spec.F64s (v_init p)) ();
        Npb_common.checksum_segment;
      ];
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
