(** Shared scaffolding for the NPB-like workloads (paper §8.3).

    All kernels follow the paper's offloading pattern: each processing
    procedure is bracketed by a migration to the Arm island and a
    back-migration to the x86 origin (§9.2, "a migration and
    back-migration for each processing procedure"). Class sizes are scaled
    by 16x relative to the paper's runs, together with the cache geometry
    (DESIGN.md §8). *)

val round_trip_targets : rounds:int -> (int * Stramash_sim.Node_id.t) list
(** Migration plan: point [2k] moves to Arm, point [2k+1] back to x86,
    for [k < rounds]. *)

val with_round : Stramash_isa.Builder.t -> round:int -> (unit -> unit) -> unit
(** Emit [Migrate_point (2*round)]; body; [Migrate_point (2*round+1)]. *)

val checksum_base : int
(** Virtual address of the one-page result segment every kernel writes its
    final checksum to (used by tests for cross-OS result equality). *)

val checksum_segment : Stramash_machine.Spec.segment
val checksum_vaddr : int

val random_keys : seed:int64 -> n:int -> max_key:int -> int64 array
val random_f64s : seed:int64 -> n:int -> float array

val csr_matrix :
  seed:int64 ->
  n:int ->
  row_nnz:int ->
  int64 array * int64 array * float array
(** [(rowptr[n+1], colidx[nnz], vals[nnz])] for a random sparse matrix
    with exactly [row_nnz] entries per row (duplicates allowed). *)
