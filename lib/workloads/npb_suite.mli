(** The shared NPB workload table.

    The single source of truth for "which NPB-like kernels exist and
    which subsets do the harness, bench and CLI run" — bench [--perf] /
    [--domains], the harness's Fig. 9 sweeps, and the CLI's bench lookup
    all resolve names here, so adding a workload is a one-line change. *)

val spec_of_name : string -> Stramash_machine.Spec.t option
(** Full-size spec for a bench name; [None] for unknown names. *)

val all_names : string list
(** Every kernel the table knows ([is cg mg ft ep lu sp]). *)

val fig9_names : string list
(** The paper's plotted quartet ([is cg mg ft]) — also the campaign set. *)

val perf_names : string list
(** The perf-bench set: the quartet plus compute-bound [ep]. *)

val fig9_set : small:bool -> (string * Stramash_machine.Spec.t) list
(** The quartet with full-size or reduced (unit-test) parameters. *)

val perf_set : unit -> (string * Stramash_machine.Spec.t) list
(** Full-size specs for {!perf_names}. *)
