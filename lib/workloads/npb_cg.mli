(** NPB CG (Conjugate Gradient): sparse matrix-vector products — the
    paper's read-intensive benchmark (98.34% of memory instructions are
    loads, §9.2.1). Under the Shared/Separated models this is where
    Popcorn-SHM's replicate-then-read-locally strategy can beat Stramash's
    direct remote access at small L3 sizes (Fig. 10). *)

type params = { n : int; row_nnz : int; iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> float
