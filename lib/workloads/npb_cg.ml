module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { n : int; row_nnz : int; iterations : int }

let default = { n = 8192; row_nnz = 12; iterations = 10 }

let rowptr_base = Spec.heap_base
let colidx_base p = rowptr_base + (8 * (p.n + 1)) + 0x10000
let vals_base p = colidx_base p + (8 * p.n * p.row_nnz) + 0x10000
let p_base pr = vals_base pr + (8 * pr.n * pr.row_nnz) + 0x10000
let q_base pr = p_base pr + (8 * pr.n) + 0x10000

let align_page a = (a + 4095) land lnot 4095

let matrix p = Npb_common.csr_matrix ~seed:0xC6L ~n:p.n ~row_nnz:p.row_nnz
let p_init p = Npb_common.random_f64s ~seed:0xCAFEL ~n:p.n

(* Each iteration: q = A*p (the dominant, load-heavy phase), a dot product,
   and an axpy refreshing p — the CG skeleton without the scalar recurrences
   that contribute no memory traffic. *)
let program pr =
  let b = B.create () in
  let rowptr_r = B.immi b (align_page rowptr_base) in
  let colidx_r = B.immi b (align_page (colidx_base pr)) in
  let vals_r = B.immi b (align_page (vals_base pr)) in
  let p_r = B.immi b (align_page (p_base pr)) in
  let q_r = B.immi b (align_page (q_base pr)) in
  let dot = B.fimm b 0.0 in
  for iter = 0 to pr.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        (* q = A * p *)
        B.for_up_const b ~lo:0 ~hi:pr.n (fun row ->
            let lo = B.load b Mir.W64 (Mir.indexed rowptr_r row ~scale:8) in
            let hi = B.load b Mir.W64 (Mir.indexed_disp rowptr_r row ~scale:8 ~disp:8) in
            let sum = B.fimm b 0.0 in
            B.for_range b ~from:lo ~to_:hi (fun j ->
                let c = B.load b Mir.W64 (Mir.indexed colidx_r j ~scale:8) in
                let v = B.load b Mir.W64 (Mir.indexed vals_r j ~scale:8) in
                let pv = B.load b Mir.W64 (Mir.indexed p_r c ~scale:8) in
                let prod = B.fmul b v pv in
                B.fadd_to b sum sum prod);
            B.store b Mir.W64 sum (Mir.indexed q_r row ~scale:8));
        (* dot = p . q *)
        let d = B.fimm b 0.0 in
        B.for_up_const b ~lo:0 ~hi:pr.n (fun i ->
            let pv = B.load b Mir.W64 (Mir.indexed p_r i ~scale:8) in
            let qv = B.load b Mir.W64 (Mir.indexed q_r i ~scale:8) in
            let prod = B.fmul b pv qv in
            B.fadd_to b d d prod);
        B.fadd_to b dot dot d;
        (* p = 0.5*p + 0.001*q : keeps values bounded and deterministic *)
        let half = B.fimm b 0.5 in
        let eps = B.fimm b 0.001 in
        B.for_up_const b ~lo:0 ~hi:pr.n (fun i ->
            let pv = B.load b Mir.W64 (Mir.indexed p_r i ~scale:8) in
            let qv = B.load b Mir.W64 (Mir.indexed q_r i ~scale:8) in
            let a = B.fmul b pv half in
            let c = B.fmul b qv eps in
            let nv = B.fadd b a c in
            B.store b Mir.W64 nv (Mir.indexed p_r i ~scale:8)))
  done;
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 dot (Mir.based chk);
  B.finish b

let expected_checksum pr =
  let rowptr, colidx, vals = matrix pr in
  let p = p_init pr in
  let q = Array.make pr.n 0.0 in
  let dot = ref 0.0 in
  for _iter = 0 to pr.iterations - 1 do
    for row = 0 to pr.n - 1 do
      let lo = Int64.to_int rowptr.(row) and hi = Int64.to_int rowptr.(row + 1) in
      let sum = ref 0.0 in
      for j = lo to hi - 1 do
        sum := !sum +. (vals.(j) *. p.(Int64.to_int colidx.(j)))
      done;
      q.(row) <- !sum
    done;
    let d = ref 0.0 in
    for i = 0 to pr.n - 1 do
      d := !d +. (p.(i) *. q.(i))
    done;
    dot := !dot +. !d;
    for i = 0 to pr.n - 1 do
      p.(i) <- (0.5 *. p.(i)) +. (0.001 *. q.(i))
    done
  done;
  !dot

let spec ?(params = default) () =
  let pr = params in
  let rowptr, colidx, vals = matrix pr in
  {
    Spec.name = "cg";
    description =
      Printf.sprintf "NPB CG-like sparse CG skeleton (n=%d, nnz/row=%d, %d iterations)" pr.n
        pr.row_nnz pr.iterations;
    mir = program pr;
    segments =
      [
        Spec.segment ~base:(align_page rowptr_base) ~len:(8 * (pr.n + 1)) ~init:(Spec.I64s rowptr) ();
        Spec.segment ~base:(align_page (colidx_base pr)) ~len:(8 * pr.n * pr.row_nnz)
          ~init:(Spec.I64s colidx) ();
        Spec.segment ~base:(align_page (vals_base pr)) ~len:(8 * pr.n * pr.row_nnz)
          ~init:(Spec.F64s vals) ();
        Spec.segment ~base:(align_page (p_base pr)) ~len:(8 * pr.n) ~init:(Spec.F64s (p_init pr)) ();
        Spec.segment ~base:(align_page (q_base pr)) ~len:(8 * pr.n) ~eager:false ();
        Npb_common.checksum_segment;
      ];
    migration_targets = Npb_common.round_trip_targets ~rounds:pr.iterations;
  }
