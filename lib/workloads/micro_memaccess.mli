(** Memory-access microbenchmark (paper §9.2.4, Fig. 11).

    10 MB (scaled) of data is allocated by either the origin or the remote
    kernel, then read sequentially by one side or the other, cold or
    pre-warmed. Under Popcorn the first remote pass replicates pages via
    DSM; under Stramash reads go straight to (possibly remote) memory via
    hardware coherence. The measured window is delimited by phase marks
    {!measure_start}/{!measure_stop}. *)

type variant =
  | Vanilla (* origin reads its own memory *)
  | Remote_access_origin (* Arm reads x86-allocated memory, cold *)
  | Remote_access_origin_warm (* ... after a prior warming pass (NC) *)
  | Origin_access_remote (* x86 reads Arm-allocated memory, cold *)
  | Origin_access_remote_warm
  | Remote_random
      (* Arm reads x86 memory in pseudo-random order: the dispersed
         fine-grained pattern of the paper's §9.2.5 takeaway, worst for
         page-granularity replication *)

val all_variants : variant list
val variant_name : variant -> string
val measure_start : int
val measure_stop : int

type params = { bytes : int }

val default : params
val spec : ?params:params -> variant -> Stramash_machine.Spec.t
