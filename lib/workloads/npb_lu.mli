(** NPB LU-like kernel: SSOR over a 3-D grid — wavefront-dependent lower
    and upper sweeps (ascending and descending traversal of the same
    array), a different access pattern from MG's independent stencils:
    every cell read-modify-writes its predecessors' fresh values. *)

type params = { n : int; iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> float
