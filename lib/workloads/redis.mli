(** Redis-like network-serving application model (paper §9.2.8, Fig. 14).

    The server process has migrated to the Arm island while its socket
    remains owned by the origin (x86) kernel — the Popcorn limitation the
    paper works around by migrating during the time event. Every request
    therefore crosses kernels:

    - under Popcorn, socket reads/writes are forwarded over the messaging
      layer (TCP or SHM ring), payload included;
    - under Stramash, the server reads/writes the origin's socket buffers
      directly through coherent shared memory, with an IPI for
      notification.

    Operation costs (parse, data-structure work) are charged through the
    cache simulator against server-local memory. As in the paper, results
    are functional-validation-grade: normalised per-request processing
    times, not absolute throughput. *)

type op = Get | Set | Lpush | Rpush | Lpop | Rpop | Sadd | Mset

val all_ops : op list
val op_name : op -> string

type result = { op : op; cycles_per_request : float }

val run :
  os:Stramash_machine.Machine.os_choice ->
  ?requests:int ->
  ?payload:int ->
  unit ->
  result list
(** Defaults: 10 000 requests of 1024 B, as in the paper. [os] must not be
    [Vanilla]. *)
