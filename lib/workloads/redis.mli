(** Redis-like network-serving application model (paper §9.2.8, Fig. 14).

    The server process has migrated to the Arm island while its socket
    remains owned by the origin (x86) kernel — the Popcorn limitation the
    paper works around by migrating during the time event. Every request
    therefore crosses kernels:

    - under Popcorn, socket reads/writes are forwarded over the messaging
      layer (TCP or SHM ring), payload included;
    - under Stramash, the server reads/writes the origin's socket buffers
      directly through coherent shared memory, with an IPI for
      notification.

    Operation costs (parse, data-structure work) are charged through the
    cache simulator against server-local memory. As in the paper, results
    are functional-validation-grade: normalised per-request processing
    times, not absolute throughput.

    {2 Operation mix}

    Every request parses for {!parse_cycles}, probes the hash index (one
    charged load per probe), then runs its value phase:

    - [Get]: 2 index probes, read one [payload]-byte value; 128 B
      request, 1024 B reply.
    - [Set]: 2 probes, write one value; [payload]-byte request, 64 B ack.
    - [Lpush]/[Rpush]: 1 probe, write a value plus two pointer stores
      (list-node header and head/tail update).
    - [Lpop]/[Rpop]: 1 probe, read a value, one pointer store; 128 B
      request, 1024 B reply.
    - [Sadd]: 4 probes (set membership), write a value.
    - [Mset]: ten (probe, write) pairs — the batched op; the request
      carries all ten payloads, the reply is a 64 B ack. *)

type op = Get | Set | Lpush | Rpush | Lpop | Rpop | Sadd | Mset

val all_ops : op list
val op_name : op -> string

val parse_cycles : int
(** Fixed command-parse cost charged to the server per request. *)

type result = { op : op; cycles_per_request : float }

val run :
  os:Stramash_machine.Machine.os_choice ->
  ?requests:int ->
  ?payload:int ->
  unit ->
  result list
(** Defaults: 10 000 requests of 1024 B, as in the paper. [os] must not be
    [Vanilla].
    @raise Invalid_argument if [requests <= 0] or [payload <= 0]. *)

(** {2 Per-request access}

    The serve subsystem drives the same cost model one request at a time
    against a machine it owns, substituting its own keyspace for the
    value phase. *)

type server
(** A migrated server instance: origin (x86) socket buffer, Arm-side
    staging page and private value pages. *)

val make_server : Stramash_machine.Machine.t -> server
(** Allocate the server's kernel pages on [machine].
    @raise Invalid_argument on the Vanilla personality. *)

val node_of : server -> Stramash_sim.Node_id.t
(** The island the server runs on (Arm). *)

val request_bytes : op -> payload:int -> int
val reply_bytes : op -> int

val serve_one : ?value:(write:bool -> unit) -> server -> op -> payload:int -> unit
(** One full request: socket delivery, parse + index + value phases,
    reply — [deliver]/[process]/[reply] in order. When [value] is given
    it replaces each default private-dataset value access (called once
    per value read/write the op performs: ten times for [Mset], once
    otherwise, with [~write] telling the direction); parse and
    index-probe costs are unchanged.
    @raise Invalid_argument if [payload <= 0]. *)

val deliver_to_server : server -> bytes:int -> unit
(** Socket-to-server delivery alone (request ingress). *)

val process_op : ?value:(write:bool -> unit) -> server -> op -> payload:int -> unit
(** Parse + index + value phases alone — the segment of a request that
    runs entirely on the server node (the serve subsystem brackets it to
    apply gray slow-down inflation without double-counting the message
    layer's own). *)

val reply_from_server : server -> bytes:int -> unit
(** Server-to-socket reply alone (response egress). *)
