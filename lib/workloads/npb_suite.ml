(* The one NPB workload table.

   Every consumer of "the NPB set" — the bench harness's --perf and
   --domains sweeps, the harness experiments, the CLI's bench lookup, CI
   gates keyed on bench names — reads from here, so adding a workload is
   a one-line change in exactly one place. *)

let spec_of_name = function
  | "is" -> Some (Npb_is.spec ())
  | "cg" -> Some (Npb_cg.spec ())
  | "mg" -> Some (Npb_mg.spec ())
  | "ft" -> Some (Npb_ft.spec ())
  | "ep" -> Some (Npb_ep.spec ())
  | "lu" -> Some (Npb_lu.spec ())
  | "sp" -> Some (Npb_sp.spec ())
  | _ -> None

let all_names = [ "is"; "cg"; "mg"; "ft"; "ep"; "lu"; "sp" ]

(* The paper's plotted quartet (Fig. 9 / Table 3 / campaign benches). *)
let fig9_names = [ "is"; "cg"; "mg"; "ft" ]

(* The perf-bench set: the quartet plus compute-bound EP, whose near-zero
   memory traffic exposes pure interpreter dispatch cost. *)
let perf_names = fig9_names @ [ "ep" ]

let specs names = List.map (fun name -> (name, Option.get (spec_of_name name))) names

let fig9_small () =
  [
    ("is", Npb_is.spec ~params:{ Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ());
    ("cg", Npb_cg.spec ~params:{ Npb_cg.n = 4096; row_nnz = 8; iterations = 3 } ());
    ("mg", Npb_mg.spec ~params:{ Npb_mg.n = 16; iterations = 2 } ());
    ("ft", Npb_ft.spec ~params:{ Npb_ft.n = 8; iterations = 2 } ());
  ]

let fig9_set ~small = if small then fig9_small () else specs fig9_names
let perf_set () = specs perf_names
