(** NPB IS (Integer Sort): bucket/counting sort — the paper's
    write-intensive benchmark (it "modif[ies] the sequence of keys during
    the procedure stage", §9.2.1), which is where Stramash's advantage
    over Popcorn-SHM peaks (2.1x at the small L3, Fig. 9/10). *)

type params = { nkeys : int; max_key : int; iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t

val expected_checksum : params -> int64
(** Host-computed reference value of the checksum the Mir program stores
    at {!Npb_common.checksum_vaddr}. *)
