module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { loops : int }

let unlocker_entry = 101

let word_base = Spec.heap_base (* futex word W *)
let flag_off = 64 (* shutdown flag F, separate line, same page *)

let program ~loops =
  let b = B.create () in
  (* ---- T1: the locker, runs from the entry point on x86 ---- *)
  let w_r = B.immi b word_base in
  let f_r = B.immi b (word_base + flag_off) in
  let one = B.immi b 1 in
  let counter = B.immi b 0 in
  let zero_r = B.immi b 0 in
  B.for_up_const b ~lo:0 ~hi:loops (fun _i ->
      let again = B.label b in
      let acquired = B.label b in
      B.place b again;
      let v = B.load b Mir.W32 (Mir.based w_r) in
      B.branch b Mir.Eq v zero_r acquired;
      (* contended: sleep until the unlocker releases *)
      B.futex_wait b ~uaddr:w_r ~expected:one;
      B.jump b again;
      B.place b acquired;
      B.store b Mir.W32 one (Mir.based w_r);
      B.addi_to b counter counter 1);
  (* signal shutdown and release the lock one last time *)
  B.store b Mir.W32 one (Mir.based f_r);
  B.store b Mir.W32 zero_r (Mir.based w_r);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 counter (Mir.based chk);
  B.halt b;
  (* ---- T2: the unlocker, spawned at [unlocker_entry] on Arm ---- *)
  B.migrate_point b unlocker_entry;
  let w2 = B.immi b word_base in
  let f2 = B.immi b (word_base + flag_off) in
  let dummy = B.immi b 0 in
  let top = B.label b in
  let exit = B.label b in
  B.place b top;
  let f = B.load b Mir.W32 (Mir.based f2) in
  B.branchi b Mir.Ne f 0 exit;
  let z = B.immi b 0 in
  B.store b Mir.W32 z (Mir.based w2);
  B.futex_wake b ~uaddr:w2 ~nwake:1;
  B.addi_to b dummy dummy 1;
  B.jump b top;
  B.place b exit;
  B.halt b;
  B.finish b

let spec ~loops =
  {
    Spec.name = Printf.sprintf "futex-%d" loops;
    description = "cross-ISA futex lock/unlock ping-pong (Fig. 13)";
    mir = program ~loops;
    segments = [ Stramash_machine.Spec.segment ~base:word_base ~len:4096 (); Npb_common.checksum_segment ];
    migration_targets = [];
  }
