module Node_id = Stramash_sim.Node_id
module Rng = Stramash_sim.Rng
module B = Stramash_isa.Builder
module Spec = Stramash_machine.Spec

let round_trip_targets ~rounds =
  List.concat
    (List.init rounds (fun k -> [ (2 * k, Node_id.Arm); ((2 * k) + 1, Node_id.X86) ]))

let with_round b ~round body =
  B.migrate_point b (2 * round);
  body ();
  B.migrate_point b ((2 * round) + 1)

let checksum_base = 0x0F00_0000
let checksum_vaddr = checksum_base

let checksum_segment = Spec.segment ~base:checksum_base ~len:4096 ~eager:true ()

let random_keys ~seed ~n ~max_key =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Int64.of_int (Rng.int rng max_key))

let random_f64s ~seed ~n =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0)

let csr_matrix ~seed ~n ~row_nnz =
  let rng = Rng.create ~seed in
  let nnz = n * row_nnz in
  let rowptr = Array.init (n + 1) (fun i -> Int64.of_int (i * row_nnz)) in
  let colidx = Array.init nnz (fun _ -> Int64.of_int (Rng.int rng n)) in
  let vals = Array.init nnz (fun _ -> Rng.float rng 2.0 -. 1.0) in
  (rowptr, colidx, vals)
