(** NPB MG (MultiGrid): 3-D 7-point stencil V-cycles over a hierarchy of
    grids — mixed read/write with strided neighbour accesses whose
    displacements exceed the armish addressing range (extra address
    arithmetic on Arm, one-instruction addressing on x86ish). *)

type params = { n : int (* fine grid edge, power of two *); iterations : int }

val default : params
val spec : ?params:params -> unit -> Stramash_machine.Spec.t
val expected_checksum : params -> float
