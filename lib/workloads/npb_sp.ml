module B = Stramash_isa.Builder
module Mir = Stramash_isa.Mir
module Spec = Stramash_machine.Spec

type params = { n : int; iterations : int }

let default = { n = 24; iterations = 2 }

let cells p = p.n * p.n * p.n
let align_page a = (a + 4095) land lnot 4095
let u_base = Spec.heap_base
let cp_base p = align_page (u_base + (8 * cells p) + 0x10000) (* c' scratch, one line *)
let dp_base p = cp_base p + 0x10000 (* d' scratch, one line *)

let u_init p = Npb_common.random_f64s ~seed:0x59L ~n:(cells p)

(* Constant-coefficient tridiagonal system a*x[i-1] + b*x[i] + c*x[i+1] =
   d[i], solved by the Thomas algorithm per grid line. *)
let ca = 0.25
let cb = 1.5
let cc = 0.25

(* Emit one line solve: elements at u[line_base + k*stride], k in [0,n). *)
let emit_line_solve b ~n ~u_r ~cp_r ~dp_r ~line_base ~stride =
  let a_c = B.fimm b ca in
  let b_c = B.fimm b cb in
  let c_c = B.fimm b cc in
  let elem k =
    (* address of u[line_base + k*stride] *)
    let off = B.mul b k (B.immi b stride) in
    let idx = B.add b line_base off in
    let addr = B.shli b idx 3 in
    B.add b addr u_r
  in
  (* forward elimination *)
  let zero = B.immi b 0 in
  let a0 = elem zero in
  let d0 = B.load b Mir.W64 (Mir.based a0) in
  let cp0 = B.fdiv b c_c b_c in
  let dp0 = B.fdiv b d0 b_c in
  B.store b Mir.W64 cp0 (Mir.based cp_r);
  B.store b Mir.W64 dp0 (Mir.based dp_r);
  B.for_up_const b ~lo:1 ~hi:n (fun k ->
      let ak = elem k in
      let dk = B.load b Mir.W64 (Mir.based ak) in
      let km1 = B.addi b k (-1) in
      let cpm = B.load b Mir.W64 (Mir.indexed cp_r km1 ~scale:8) in
      let dpm = B.load b Mir.W64 (Mir.indexed dp_r km1 ~scale:8) in
      let t = B.fmul b a_c cpm in
      let denom = B.fsub b b_c t in
      let cpk = B.fdiv b c_c denom in
      let t2 = B.fmul b a_c dpm in
      let num = B.fsub b dk t2 in
      let dpk = B.fdiv b num denom in
      B.store b Mir.W64 cpk (Mir.indexed cp_r k ~scale:8);
      B.store b Mir.W64 dpk (Mir.indexed dp_r k ~scale:8));
  (* back substitution, writing the solution over u *)
  let last = B.immi b (n - 1) in
  let alast = elem last in
  let xlast = B.load b Mir.W64 (Mir.indexed dp_r last ~scale:8) in
  B.store b Mir.W64 xlast (Mir.based alast);
  B.for_up_const b ~lo:1 ~hi:n (fun kr ->
      let k = B.sub b last kr in
      let kp1 = B.addi b k 1 in
      let ak = elem k in
      let akp = elem kp1 in
      let xnext = B.load b Mir.W64 (Mir.based akp) in
      let cpk = B.load b Mir.W64 (Mir.indexed cp_r k ~scale:8) in
      let dpk = B.load b Mir.W64 (Mir.indexed dp_r k ~scale:8) in
      let t = B.fmul b cpk xnext in
      let xk = B.fsub b dpk t in
      B.store b Mir.W64 xk (Mir.based ak))

let program p =
  let n = p.n in
  let b = B.create () in
  let u_r = B.immi b u_base in
  let cp_r = B.immi b (cp_base p) in
  let dp_r = B.immi b (dp_base p) in
  for iter = 0 to p.iterations - 1 do
    Npb_common.with_round b ~round:iter (fun () ->
        (* x-direction solves: lines are contiguous *)
        B.for_up_const b ~lo:0 ~hi:(n * n) (fun line ->
            let line_base = B.mul b line (B.immi b n) in
            emit_line_solve b ~n ~u_r ~cp_r ~dp_r ~line_base ~stride:1);
        (* y-direction solves: stride n within each z-plane *)
        B.for_up_const b ~lo:0 ~hi:n (fun z ->
            B.for_up_const b ~lo:0 ~hi:n (fun x ->
                let zbase = B.mul b z (B.immi b (n * n)) in
                let line_base = B.add b zbase x in
                emit_line_solve b ~n ~u_r ~cp_r ~dp_r ~line_base ~stride:n)))
  done;
  let acc = B.fimm b 0.0 in
  B.for_up_const b ~lo:0 ~hi:(cells p / 32) (fun i ->
      let idx = B.muli b i 32 in
      let vv = B.load b Mir.W64 (Mir.indexed u_r idx ~scale:8) in
      B.fadd_to b acc acc vv);
  let chk = B.immi b Npb_common.checksum_vaddr in
  B.store b Mir.W64 acc (Mir.based chk);
  B.finish b

let solve_line u cp dp ~n ~base ~stride =
  let at k = base + (k * stride) in
  cp.(0) <- cc /. cb;
  dp.(0) <- u.(at 0) /. cb;
  for k = 1 to n - 1 do
    let denom = cb -. (ca *. cp.(k - 1)) in
    cp.(k) <- cc /. denom;
    dp.(k) <- (u.(at k) -. (ca *. dp.(k - 1))) /. denom
  done;
  u.(at (n - 1)) <- dp.(n - 1);
  for kr = 1 to n - 1 do
    let k = n - 1 - kr in
    u.(at k) <- dp.(k) -. (cp.(k) *. u.(at (k + 1)))
  done

let expected_checksum p =
  let n = p.n in
  let u = Array.copy (u_init p) in
  let cp = Array.make n 0.0 and dp = Array.make n 0.0 in
  for _iter = 0 to p.iterations - 1 do
    for line = 0 to (n * n) - 1 do
      solve_line u cp dp ~n ~base:(line * n) ~stride:1
    done;
    for z = 0 to n - 1 do
      for x = 0 to n - 1 do
        solve_line u cp dp ~n ~base:((z * n * n) + x) ~stride:n
      done
    done
  done;
  let acc = ref 0.0 in
  for i = 0 to (cells p / 32) - 1 do
    acc := !acc +. u.(i * 32)
  done;
  !acc

let spec ?(params = default) () =
  let p = params in
  {
    Spec.name = "sp";
    description =
      Printf.sprintf "NPB SP-like scalar ADI line solver (grid %d^3, %d iterations)" p.n
        p.iterations;
    mir = program p;
    segments =
      [
        Spec.segment ~base:u_base ~len:(8 * cells p) ~init:(Spec.F64s (u_init p)) ();
        Spec.segment ~base:(cp_base p) ~len:(8 * p.n) ~eager:false ();
        Spec.segment ~base:(dp_base p) ~len:(8 * p.n) ~eager:false ();
        Npb_common.checksum_segment;
      ];
    migration_targets = Npb_common.round_trip_targets ~rounds:p.iterations;
  }
