(** Stramash futex handling (paper §6.5): the remote kernel operates on the
    origin kernel's futex queues *directly* through coherent shared memory
    instead of messaging the origin; waking a thread parked on the other
    kernel costs exactly one cross-ISA IPI. *)

type t

val create : Stramash_kernel.Env.t -> Stramash_fault.t -> t

val wait :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  uaddr:int ->
  expected:int64 ->
  [ `Block | `Proceed ]

val wait_acting :
  t ->
  actor:Stramash_sim.Node_id.t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  uaddr:int ->
  expected:int64 ->
  [ `Block | `Proceed ]
(** Same check/enqueue, but performed by [actor] (the un-optimised,
    origin-managed protocol runs it at the origin on the waiter's
    behalf). *)

val wake :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  threads:Stramash_kernel.Thread.t list ->
  uaddr:int ->
  nwake:int ->
  int list
(** Returns woken tids; cross-node wakes charge one IPI to the waker. *)

val wake_acting :
  t ->
  actor:Stramash_sim.Node_id.t ->
  proc:Stramash_kernel.Process.t ->
  threads:Stramash_kernel.Thread.t list ->
  uaddr:int ->
  nwake:int ->
  int list

val ipis_sent : t -> int
