(** Fused namespaces (paper §6.6): make two kernel instances present the
    same mount/PID/net/UTS/user/cgroup namespaces and a unified CPU list,
    so a migrated application observes an identical environment. *)

val fuse_kernels : Stramash_kernel.Kernel.t -> Stramash_kernel.Kernel.t -> Stramash_kernel.Namespace.set
(** The shared namespace set both kernels expose after fusing (derived
    from the first kernel's set). *)

val same_environment : Stramash_kernel.Namespace.set -> Stramash_kernel.Namespace.set -> bool

val cpu_list : cores_per_node:int -> Stramash_kernel.Namespace.cpu_info list
