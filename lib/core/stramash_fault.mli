(** The Stramash page-fault handler (paper §6.4).

    The fused-kernel fast path: a faulting kernel walks the other kernel's
    VMA list and page table directly over coherent shared memory; if the
    page exists it maps the *same frame* into its own table (no copy, no
    message); if the page is fresh anonymous memory it allocates from its
    own local memory and installs the PTE in both tables under the
    cross-ISA page-table lock. Only when the origin table lacks upper
    directory levels does it fall back to a message so the origin kernel
    handles the fault — the residual replication of §9.2.3 / Table 3.

    Anomalies are typed, not fatal: a missing VMA is [Error (Segfault _)],
    exhaustion that even the global allocator cannot relieve is
    [Error (Out_of_memory _)], and injected transient walk failures or PTL
    timeouts degrade to the origin-fallback path instead of crashing. *)

type t

val create :
  ?inject:Stramash_fault_inject.Plan.t ->
  ?global_alloc:Global_alloc.t ->
  Stramash_kernel.Env.t ->
  Stramash_popcorn.Msg_layer.t ->
  t
(** [inject] arms fault injection on the walk / PTL / allocation paths;
    [global_alloc] enables the §6.3 hotplug path on frame exhaustion. *)

val inject : t -> Stramash_fault_inject.Plan.t option

val set_write_hook :
  t ->
  (proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> vaddr:int -> bool) ->
  unit
(** Hook consulted when a write faults on a page that is mapped but
    read-only — the placement engine registers its replica-collapse
    handler here (returning [true] when it upgraded the leaf). Without a
    hook such faults stay the raced/spurious no-ops they always were. *)

val ensure_mm :
  t -> proc:Stramash_kernel.Process.t -> node:Stramash_sim.Node_id.t -> Stramash_kernel.Process.mm

val handle_fault :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  (unit, Stramash_fault_inject.Fault.error) result
(** Resolve a user fault. [Error (Segfault _)] when no VMA governs
    [vaddr]; [Error (Out_of_memory _)] when allocation fails beyond
    recovery. Injected walk/lock faults are absorbed by retry and
    fallback, never surfaced. *)

val handle_fault_exn :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  unit
(** [handle_fault] for edges that cannot recover; raises
    {!Stramash_fault_inject.Fault.Error}. *)

val alloc_frame :
  t -> node:Stramash_sim.Node_id.t -> (int, Stramash_fault_inject.Fault.error) result
(** Frame allocation with the hotplug/global-allocator recovery path:
    exhaustion (real or injected) first pulls a pool block online
    (§6.3) and only then reports [Out_of_memory]. *)

val ptl_for : t -> proc:Stramash_kernel.Process.t -> Stramash_ptl.t
(** The cross-ISA page-table lock guarding the process's origin table. *)

val ptls_quiescent : t -> bool
(** No PTL is held — an invariant at every quiescent point, fed to the
    post-run audit. *)

val fallback_pages : t -> int
(** Pages that took the origin-fallback path (Table 3's residual
    "replicated pages" for Stramash). *)

val remote_walks : t -> int
val shared_mappings : t -> int
(** Frames mapped by both kernels without replication. *)

val exit_process : t -> proc:Stramash_kernel.Process.t -> unit
(** The §6.4 memory-recycling protocol: each kernel instance walks its own
    table over the process's address ranges, invalidates every PTE, and
    releases only the frames its own allocator owns — the origin never
    frees remote-owned pages, the remote kernel finalises its own. *)

val reset_counters : t -> unit

(** {2 Crash-stop node failures}

    A node dies crash-stop at a quantum boundary: its PTLs are broken
    (fenced by the liveness epoch), waiters owned by its threads park in a
    holding area, its derived kernel state is checkpointed and discarded,
    and its hotplug donations are swept. While it is down, faults on
    processes it originated degrade to message-walk cost against the
    checkpoint's VMA shadow; restart re-materialises everything and
    reconciles the survivor's deferred installs. *)

val chaos_armed : t -> bool
(** The fault plan schedules at least one node death. *)

val node_down : t -> Stramash_sim.Node_id.t -> bool
(** A downtime record exists for [node] (death processed, restart not). *)

val degraded_walks : t -> int
(** Faults served in degraded (message-walk) mode. *)

val gray_fallbacks : t -> int
(** Faults the circuit breaker diverted to the message-walk path while
    the origin was alive but unhealthy. *)

val on_node_death :
  t ->
  procs:Stramash_kernel.Process.t list ->
  threads:Stramash_kernel.Thread.t list ->
  node:Stramash_sim.Node_id.t ->
  now:int ->
  unit
(** Process a crash-stop at wall-cycle [now]. [Env.liveness] must already
    record the node as dead (the epoch bump fences its lock tokens). *)

val on_peer_detected : t -> node:Stramash_sim.Node_id.t -> now:int -> unit
(** The heartbeat watchdog declared [node] dead: record the detection
    (idempotent). *)

val on_node_restart :
  t -> procs:Stramash_kernel.Process.t list -> node:Stramash_sim.Node_id.t -> now:int -> unit
(** Restore [node] from its checkpoint at wall-cycle [now]. [Env.liveness]
    must already record it alive again. Raises [Invalid_argument] if the
    node is not down or the blob fails to decode. *)

val wake_held : t -> uaddr:int -> limit:int -> int list
(** Pop up to [limit] parked waiters on [uaddr] from downtime holding
    areas (FIFO); the popped tids are excluded from restart re-parking. *)

val held_waiters : t -> Checkpoint.futex_image list
(** All currently-parked waiters, for audits. *)
