(** Global physical-memory allocator over the shared pool (paper §6.3).

    Pool memory is split into fixed-size blocks (32 MB-4 GB in the paper;
    scaled here with everything else). Each kernel boots with a minimal
    set of blocks; when a kernel's memory pressure passes 70 % it requests
    another block, which is onlined into its frame allocator via the
    hotplug path. If no block is free, the allocator evicts one from the
    other kernel (offline there, online here) until pressures balance. *)

type t

val create :
  Stramash_kernel.Env.t ->
  ?block_size:int ->
  rng:Stramash_sim.Rng.t ->
  unit ->
  t
(** Default block size: 16 MB (paper-equivalent 256 MB at the 16x scale). *)

val block_size : t -> int
val free_blocks : t -> int
val blocks_owned : t -> Stramash_sim.Node_id.t -> int

val request_block : t -> Stramash_sim.Node_id.t -> (Stramash_mem.Layout.region, [ `Exhausted ]) result
(** Grant one block to [node], charging the hotplug online cost to its
    meter; evicts from the other kernel when the pool is empty and the
    other kernel holds a free-enough block. *)

val release_block : t -> Stramash_sim.Node_id.t -> Stramash_mem.Layout.region -> (unit, [ `Pages_in_use of int ]) result

val check_pressure : t -> Stramash_sim.Node_id.t -> bool
(** Apply the 70 % policy: request a block if this kernel's pressure
    exceeds the threshold. Returns whether a block was granted. *)

val pressure_threshold : float

(** {2 Crash-stop handling} *)

val on_node_death :
  t -> node:Stramash_sim.Node_id.t -> actor:Stramash_sim.Node_id.t -> int * int
(** Sweep the dead [node]'s donated blocks: fully-free blocks go back to
    the pool, blocks with pages still in use are marked orphaned (pinned
    until the owner restarts). The hotplug sweep cost is billed to the
    surviving [actor]. Returns [(reclaimed, orphaned)]. *)

val on_node_restart : t -> node:Stramash_sim.Node_id.t -> int
(** Re-adopt [node]'s orphaned blocks; returns how many. *)

val ledger : t -> (Stramash_sim.Node_id.t * Stramash_mem.Layout.region * bool) list
(** Deterministic [(owner, region, orphaned)] dump, sorted by region base
    — the view the audit's hotplug-consistency check consumes. *)
