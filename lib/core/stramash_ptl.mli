(** Cross-ISA page-table lock (paper §6.4, "Stramash-PTL").

    One lock word per process/kernel page table, living in the owning
    kernel's memory; either kernel may take it with a CAS over coherent
    shared memory, so a remote acquisition is an atomic access with remote
    latency — no messages. Our execution model serialises kernel entry
    points, so acquisitions never spin; the acquisition/release memory
    traffic is still charged, and contention statistics are tracked for
    the ablation benches. *)

type t

val create : Stramash_kernel.Env.t -> lock_addr:int -> t
val lock_addr : t -> int

val with_lock : t -> actor:Stramash_sim.Node_id.t -> (unit -> 'a) -> 'a
(** Charges the CAS (acquire) and store (release) at [lock_addr] to
    [actor]'s meter around the critical section. *)

val acquisitions : t -> int
val remote_acquisitions : t -> int
