(** Cross-ISA page-table lock (paper §6.4, "Stramash-PTL").

    One lock word per process/kernel page table, living in the owning
    kernel's memory; either kernel may take it with a CAS over coherent
    shared memory, so a remote acquisition is an atomic access with remote
    latency — no messages. Our execution model serialises kernel entry
    points, so acquisitions never spin; the acquisition/release memory
    traffic is still charged, and contention statistics are tracked for
    the ablation benches. *)

type t

type token = private { node : Stramash_sim.Node_id.t; epoch : int }
(** Fencing token: the holder's identity plus its liveness epoch at
    acquisition. Crashes and restarts both bump the epoch, so a pre-crash
    token can never validate against any later incarnation of its node. *)

val create : Stramash_kernel.Env.t -> lock_addr:int -> t
val lock_addr : t -> int

val is_held : t -> bool
(** True while some kernel is inside the critical section — must be false
    at quiescence (audited after every campaign run). *)

val holder : t -> Stramash_sim.Node_id.t option

val with_lock : t -> actor:Stramash_sim.Node_id.t -> (unit -> 'a) -> 'a
(** Charges the CAS (acquire) and store (release) at [lock_addr] to
    [actor]'s meter around the critical section. *)

val try_with_lock :
  t ->
  actor:Stramash_sim.Node_id.t ->
  ?inject:Stramash_fault_inject.Plan.t ->
  (unit -> 'a) ->
  ('a, Stramash_fault_inject.Fault.error) result
(** [with_lock] with injectable acquisition timeouts: each timed-out CAS
    charges the plan's backoff to [actor]; after the plan's attempt cap
    the result is [Error (Lock_timeout _)] and the critical section never
    runs. Without [inject] it always succeeds. *)

val acquisitions : t -> int
val remote_acquisitions : t -> int

(** {2 Explicit token protocol (crash-stop model)}

    The closure API above covers normal kernel entries, which are
    serialised and never span a crash. The explicit protocol exists for
    the failure model: ownership outlives the call that took it, so it
    must be re-validated — by epoch — whenever it is exercised. *)

val acquire :
  t -> actor:Stramash_sim.Node_id.t -> (token, Stramash_fault_inject.Fault.error) result
(** Take the free lock and mint a token under [actor]'s current epoch.
    [Error (Lock_timeout _)] if held; [Error (Node_dead _)] if [actor] is
    itself dead (a dead node executes nothing). *)

val reacquire : t -> token:token -> (unit, Stramash_fault_inject.Fault.error) result
(** Replay [token] to claim (or confirm) ownership — what a zombie restart
    attempts with its pre-crash token. The CAS is charged, then a token
    from a superseded incarnation is rejected with [Error (Stale_token _)]
    regardless of the lock's current state. *)

val release : t -> token:token -> (unit, Stramash_fault_inject.Fault.error) result
(** Release under [token]; [Error (Stale_token _)] if the epoch is stale
    or the lock is no longer held by exactly this token (e.g. it was
    broken while its holder was down). *)

val break_dead : t -> actor:Stramash_sim.Node_id.t -> bool
(** Force-release iff the current holder is dead (ground truth); the
    store is charged to the breaking survivor. Returns whether a break
    happened. *)

val breaks : t -> int
val stale_rejections : t -> int
