(** Cross-ISA page-table lock (paper §6.4, "Stramash-PTL").

    One lock word per process/kernel page table, living in the owning
    kernel's memory; either kernel may take it with a CAS over coherent
    shared memory, so a remote acquisition is an atomic access with remote
    latency — no messages. Our execution model serialises kernel entry
    points, so acquisitions never spin; the acquisition/release memory
    traffic is still charged, and contention statistics are tracked for
    the ablation benches. *)

type t

val create : Stramash_kernel.Env.t -> lock_addr:int -> t
val lock_addr : t -> int

val is_held : t -> bool
(** True while some kernel is inside the critical section — must be false
    at quiescence (audited after every campaign run). *)

val with_lock : t -> actor:Stramash_sim.Node_id.t -> (unit -> 'a) -> 'a
(** Charges the CAS (acquire) and store (release) at [lock_addr] to
    [actor]'s meter around the critical section. *)

val try_with_lock :
  t ->
  actor:Stramash_sim.Node_id.t ->
  ?inject:Stramash_fault_inject.Plan.t ->
  (unit -> 'a) ->
  ('a, Stramash_fault_inject.Fault.error) result
(** [with_lock] with injectable acquisition timeouts: each timed-out CAS
    charges the plan's backoff to [actor]; after the plan's attempt cap
    the result is [Error (Lock_timeout _)] and the critical section never
    runs. Without [inject] it always succeeds. *)

val acquisitions : t -> int
val remote_acquisitions : t -> int
