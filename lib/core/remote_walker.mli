(** Software remote page-table walker (paper §6.4).

    A kernel walks the *other* kernel's page table directly through the
    fused VAS: each level's entry read is a memory access by the walking
    node against table pages living in the owning kernel's memory (remote
    latency via the cache model), decoded with the owner's PTE format.
    This replaces Popcorn's long-latency message round trips. *)

val walk :
  Stramash_kernel.Env.t ->
  actor:Stramash_sim.Node_id.t ->
  owner_mm:Stramash_kernel.Process.mm ->
  vaddr:int ->
  (int * Stramash_kernel.Pte.flags) option
(** Decoded leaf (frame number, flags) of the owner's table, with every
    entry read charged to [actor]. *)

val walk_checked :
  Stramash_kernel.Env.t ->
  actor:Stramash_sim.Node_id.t ->
  owner_mm:Stramash_kernel.Process.mm ->
  vaddr:int ->
  ?inject:Stramash_fault_inject.Plan.t ->
  unit ->
  ((int * Stramash_kernel.Pte.flags) option, Stramash_fault_inject.Fault.error) result
(** [walk] with injectable transient read failures and bounded retry;
    [Error (Walk_failed _)] after the plan's attempt cap (the caller then
    falls back to the origin kernel). Without [inject], always [Ok]. *)

val upper_levels_present :
  Stramash_kernel.Env.t ->
  actor:Stramash_sim.Node_id.t ->
  owner_mm:Stramash_kernel.Process.mm ->
  vaddr:int ->
  bool

val install_leaf :
  Stramash_kernel.Env.t ->
  actor:Stramash_sim.Node_id.t ->
  owner_mm:Stramash_kernel.Process.mm ->
  vaddr:int ->
  frame:int ->
  remote_owned:bool ->
  ?inject:Stramash_fault_inject.Plan.t ->
  unit ->
  bool
(** Write a leaf PTE into the owner's table in the owner's format without
    allocating directories; false when an upper level is missing (the
    caller then falls back to the origin kernel, §9.2.3). With a
    corruption-armed [inject] plan the encode may publish a stale frame
    ({!Stramash_fault_inject.Plan.pte_corrupted}); the install then runs
    verify-after-install — a charged read-back of the leaf — and repairs
    any mismatch in place ({!Stramash_fault_inject.Plan.note_pte_repair}),
    so a corrupted install is never visible to the caller. *)

val find_vma :
  Stramash_kernel.Env.t ->
  actor:Stramash_sim.Node_id.t ->
  owner_mm:Stramash_kernel.Process.mm ->
  vaddr:int ->
  Stramash_kernel.Vma.t option
(** Remote VMA walk: takes the owner's VMA lock (remote CAS) and charges
    one load per rb-tree node visited. *)
