module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Frame_alloc = Stramash_kernel.Frame_alloc
module Hotplug = Stramash_kernel.Hotplug

(* A donated block is [orphaned] while its owner is crash-stopped with
   pages still in use: nobody can free those pages until the owner
   restarts (or the process exits via the survivors), so the block can be
   neither reclaimed nor evicted. The audit checks that every entry is
   either live-owned or orphaned-with-dead-owner. *)
type entry = { owner : Node_id.t; region : Layout.region; mutable orphaned : bool }

type t = {
  env : Env.t;
  block_size : int;
  rng : Rng.t;
  mutable free : Layout.region list;
  mutable owned : entry list;
}

let pressure_threshold = 0.70

let create env ?(block_size = Addr.mib 16) ~rng () =
  assert (block_size mod Addr.page_size = 0);
  let pool = Layout.pool in
  let rec split lo acc =
    if lo + block_size > pool.Layout.hi then List.rev acc
    else split (lo + block_size) ({ Layout.lo; hi = lo + block_size } :: acc)
  in
  { env; block_size; rng; free = split pool.Layout.lo []; owned = [] }

let block_size t = t.block_size
let free_blocks t = List.length t.free
let blocks_owned t node =
  List.length (List.filter (fun e -> Node_id.equal e.owner node) t.owned)

let ledger t =
  List.map (fun e -> (e.owner, e.region, e.orphaned)) t.owned
  |> List.sort (fun (_, (a : Layout.region), _) (_, b, _) -> compare a.Layout.lo b.Layout.lo)

let online_to t node region =
  let kernel = Env.kernel t.env node in
  let r = Hotplug.online kernel.Kernel.frames region ~isa:node ~rng:t.rng in
  Meter.add (Env.meter t.env node) r.Hotplug.cycles;
  t.owned <- { owner = node; region; orphaned = false } :: t.owned

(* Try to reclaim a fully-free block from the other kernel. Orphaned
   blocks are off-limits: their pages are pinned by a dead owner. *)
let evict_from_other t node =
  let other = Node_id.other node in
  let candidates =
    List.filter (fun e -> Node_id.equal e.owner other && not e.orphaned) t.owned
  in
  let kernel = Env.kernel t.env other in
  let rec try_blocks = function
    | [] -> None
    | { region; _ } :: rest -> (
        match Hotplug.offline kernel.Kernel.frames region ~isa:other ~rng:t.rng with
        | Ok r ->
            Meter.add (Env.meter t.env other) r.Hotplug.cycles;
            t.owned <- List.filter (fun e -> e.region <> region) t.owned;
            Some region
        | Error (`Pages_in_use _) -> try_blocks rest)
  in
  try_blocks candidates

let request_block t node =
  match t.free with
  | region :: rest ->
      t.free <- rest;
      online_to t node region;
      Ok region
  | [] -> (
      match evict_from_other t node with
      | Some region ->
          online_to t node region;
          Ok region
      | None -> Error `Exhausted)

let release_block t node region =
  let kernel = Env.kernel t.env node in
  match Hotplug.offline kernel.Kernel.frames region ~isa:node ~rng:t.rng with
  | Ok r ->
      Meter.add (Env.meter t.env node) r.Hotplug.cycles;
      t.owned <-
        List.filter (fun e -> not (Node_id.equal e.owner node && e.region = region)) t.owned;
      t.free <- region :: t.free;
      Ok ()
  | Error _ as e -> e

(* Crash-stop: the survivor [actor] sweeps the dead node's donations.
   Blocks with no pages in use are offlined back to the pool (reclaimed);
   blocks pinned by live allocations are marked orphaned. The sweep work
   is billed to the survivor doing it. *)
let on_node_death t ~node ~actor =
  let kernel = Env.kernel t.env node in
  let reclaimed = ref 0 and orphaned = ref 0 in
  let mine, others = List.partition (fun e -> Node_id.equal e.owner node) t.owned in
  let kept =
    List.filter
      (fun e ->
        match Hotplug.offline kernel.Kernel.frames e.region ~isa:node ~rng:t.rng with
        | Ok r ->
            Meter.add (Env.meter t.env actor) r.Hotplug.cycles;
            t.free <- e.region :: t.free;
            incr reclaimed;
            false
        | Error (`Pages_in_use _) ->
            e.orphaned <- true;
            incr orphaned;
            true)
      mine
  in
  t.owned <- kept @ others;
  (!reclaimed, !orphaned)

(* Restart: the node re-adopts its orphaned blocks (the pages never moved;
   only ownership was in limbo). *)
let on_node_restart t ~node =
  List.fold_left
    (fun n e ->
      if Node_id.equal e.owner node && e.orphaned then begin
        e.orphaned <- false;
        n + 1
      end
      else n)
    0 t.owned

let check_pressure t node =
  let kernel = Env.kernel t.env node in
  if Frame_alloc.pressure kernel.Kernel.frames > pressure_threshold then
    match request_block t node with Ok _ -> true | Error `Exhausted -> false
  else false
