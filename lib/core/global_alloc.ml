module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Frame_alloc = Stramash_kernel.Frame_alloc
module Hotplug = Stramash_kernel.Hotplug

type t = {
  env : Env.t;
  block_size : int;
  rng : Rng.t;
  mutable free : Layout.region list;
  mutable owned : (Node_id.t * Layout.region) list;
}

let pressure_threshold = 0.70

let create env ?(block_size = Addr.mib 16) ~rng () =
  assert (block_size mod Addr.page_size = 0);
  let pool = Layout.pool in
  let rec split lo acc =
    if lo + block_size > pool.Layout.hi then List.rev acc
    else split (lo + block_size) ({ Layout.lo; hi = lo + block_size } :: acc)
  in
  { env; block_size; rng; free = split pool.Layout.lo []; owned = [] }

let block_size t = t.block_size
let free_blocks t = List.length t.free
let blocks_owned t node = List.length (List.filter (fun (n, _) -> Node_id.equal n node) t.owned)

let online_to t node region =
  let kernel = Env.kernel t.env node in
  let r = Hotplug.online kernel.Kernel.frames region ~isa:node ~rng:t.rng in
  Meter.add (Env.meter t.env node) r.Hotplug.cycles;
  t.owned <- (node, region) :: t.owned

(* Try to reclaim a fully-free block from the other kernel. *)
let evict_from_other t node =
  let other = Node_id.other node in
  let candidates = List.filter (fun (n, _) -> Node_id.equal n other) t.owned in
  let kernel = Env.kernel t.env other in
  let rec try_blocks = function
    | [] -> None
    | (_, region) :: rest -> (
        match Hotplug.offline kernel.Kernel.frames region ~isa:other ~rng:t.rng with
        | Ok r ->
            Meter.add (Env.meter t.env other) r.Hotplug.cycles;
            t.owned <- List.filter (fun (_, reg) -> reg <> region) t.owned;
            Some region
        | Error (`Pages_in_use _) -> try_blocks rest)
  in
  try_blocks candidates

let request_block t node =
  match t.free with
  | region :: rest ->
      t.free <- rest;
      online_to t node region;
      Ok region
  | [] -> (
      match evict_from_other t node with
      | Some region ->
          online_to t node region;
          Ok region
      | None -> Error `Exhausted)

let release_block t node region =
  let kernel = Env.kernel t.env node in
  match Hotplug.offline kernel.Kernel.frames region ~isa:node ~rng:t.rng with
  | Ok r ->
      Meter.add (Env.meter t.env node) r.Hotplug.cycles;
      t.owned <- List.filter (fun (n, reg) -> not (Node_id.equal n node && reg = region)) t.owned;
      t.free <- region :: t.free;
      Ok ()
  | Error _ as e -> e

let check_pressure t node =
  let kernel = Env.kernel t.env node in
  if Frame_alloc.pressure kernel.Kernel.frames > pressure_threshold then
    match request_block t node with Ok _ -> true | Error `Exhausted -> false
  else false
