(** The Stramash fused-kernel personality (the paper's contribution).

    Shared-mostly coordination: page faults resolve by direct remote
    walks and shared-frame mappings, futexes by direct queue access plus a
    single IPI, namespaces are fused, and the global memory allocator
    moves blocks between kernels via hotplug. Messages survive only for
    the migration handshake and the missing-directory fallback. *)

type t

val create :
  ?futex_optimized:bool ->
  ?inject:Stramash_fault_inject.Plan.t ->
  Stramash_kernel.Env.t ->
  unit ->
  t
(** [futex_optimized] (default true) selects between direct remote futex
    access (§6.5) and the origin-managed message protocol — the Fig. 13
    ablation. [inject] arms the fault plan across the message layer, the
    remote walker, the PTL and the frame allocator. *)

val futex_optimized : t -> bool
val inject : t -> Stramash_fault_inject.Plan.t option

val env : t -> Stramash_kernel.Env.t
val faults : t -> Stramash_fault.t
val futexes : t -> Stramash_futex.t
val msg : t -> Stramash_popcorn.Msg_layer.t
val global_alloc : t -> Global_alloc.t

val handle_fault :
  t ->
  proc:Stramash_kernel.Process.t ->
  node:Stramash_sim.Node_id.t ->
  vaddr:int ->
  write:bool ->
  (unit, Stramash_fault_inject.Fault.error) result

val migrate :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  dst:Stramash_sim.Node_id.t ->
  point:int ->
  unit
(** Lightweight handshake (one request/response message pair) plus the
    state transformation; no page or VMA shipping. *)

val futex_wait :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  uaddr:int ->
  expected:int64 ->
  [ `Block | `Proceed ]

val futex_wake :
  t ->
  proc:Stramash_kernel.Process.t ->
  thread:Stramash_kernel.Thread.t ->
  threads:Stramash_kernel.Thread.t list ->
  uaddr:int ->
  nwake:int ->
  int list

val exit_process : t -> proc:Stramash_kernel.Process.t -> unit
(** §6.4 memory recycling (see {!Stramash_fault.exit_process}). *)

(** {2 Crash-stop node failures}

    Present only when the fault plan schedules node deaths; see
    {!Stramash_fault} for the semantics. The machine runner drives these
    at quantum boundaries. *)

val heartbeat : t -> Stramash_interconnect.Heartbeat.t option
val heartbeat_tick : t -> src:Stramash_sim.Node_id.t -> now:int -> unit
val node_down : t -> Stramash_sim.Node_id.t -> bool

val on_node_death :
  t ->
  procs:Stramash_kernel.Process.t list ->
  threads:Stramash_kernel.Thread.t list ->
  node:Stramash_sim.Node_id.t ->
  now:int ->
  unit

val on_peer_detected : t -> node:Stramash_sim.Node_id.t -> now:int -> unit

val on_node_restart :
  t -> procs:Stramash_kernel.Process.t list -> node:Stramash_sim.Node_id.t -> now:int -> unit
