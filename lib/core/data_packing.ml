module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel

type t = {
  env : Env.t;
  owner : Node_id.t;
  window : Layout.region;
  mutable bump : int;
  mutable objects : int;
  mutable violations : int;
}

let create env ~owner ~window_bytes =
  assert (window_bytes > 0 && window_bytes mod Addr.page_size = 0);
  let kernel = Env.kernel env owner in
  (* Grab contiguous frames for the window; the bump allocator in
     Frame_alloc hands out ascending addresses from the boot region. *)
  let first = Kernel.alloc_frame_exn kernel in
  let pages = window_bytes / Addr.page_size in
  let last = ref first in
  for _ = 2 to pages do
    let f = Kernel.alloc_frame_exn kernel in
    (* the kernel's private region is allocated sequentially at boot, so
       contiguity holds; verify rather than assume *)
    assert (f = !last + Addr.page_size);
    last := f
  done;
  {
    env;
    owner;
    window = { Layout.lo = first; hi = first + window_bytes };
    bump = first;
    objects = 0;
    violations = 0;
  }

let window t = t.window
let owner t = t.owner
let packed_bytes t = t.bump - t.window.Layout.lo
let objects_packed t = t.objects
let violations t = t.violations

let pack t ~src ~bytes =
  assert (bytes > 0);
  let aligned = Addr.align_up t.bump ~alignment:Addr.line_size in
  if aligned + bytes > t.window.Layout.hi then Error `Window_full
  else begin
    (* Move the data: the owner reads the old location and writes the
       packed one — "including moving pages to reorganize data" (§6). *)
    Env.charge_bytes_load t.env t.owner ~paddr:src ~len:bytes;
    Env.charge_bytes_store t.env t.owner ~paddr:aligned ~len:bytes;
    let words = (bytes + 7) / 8 in
    for w = 0 to words - 1 do
      let v = Phys_mem.read_u64 t.env.Env.phys (src + (8 * w)) in
      Phys_mem.write_u64 t.env.Env.phys (aligned + (8 * w)) v
    done;
    t.bump <- aligned + bytes;
    t.objects <- t.objects + 1;
    Ok aligned
  end

let remote_access_allowed t ~paddr =
  Layout.region_contains t.window paddr
  || not (Layout.region_contains (Layout.private_region t.owner) paddr)

let check_remote_access t ~actor ~paddr =
  if Node_id.equal actor t.owner then Ok ()
  else if remote_access_allowed t ~paddr then Ok ()
  else begin
    t.violations <- t.violations + 1;
    Error `Protection_violation
  end
