module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Rng = Stramash_sim.Rng
module Env = Stramash_kernel.Env
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Migrate_state = Stramash_isa.Migrate_state
module Msg_layer = Stramash_popcorn.Msg_layer

type t = {
  env : Env.t;
  msg : Msg_layer.t;
  faults : Stramash_fault.t;
  futexes : Stramash_futex.t;
  global_alloc : Global_alloc.t;
  futex_optimized : bool;
}

let create ?(futex_optimized = true) ?inject env () =
  let module Plan = Stramash_fault_inject.Plan in
  let heartbeat =
    (* Only chaos schedules attach the watchdog: plain runs carry no
       heartbeat traffic and stay bit-identical to pre-chaos builds. *)
    match inject with
    | Some plan when Plan.chaos_armed plan ->
        Some
          (Stramash_interconnect.Heartbeat.create
             ~readmit_beats:(Plan.heartbeat_readmit_beats plan)
             ~interval:(Plan.heartbeat_interval_cycles plan)
             ~miss_threshold:(Plan.heartbeat_miss_threshold plan)
             ())
    | _ -> None
  in
  let msg = Msg_layer.create Msg_layer.Shm env ?inject ?heartbeat () in
  let global_alloc = Global_alloc.create env ~rng:(Rng.create ~seed:0x57A3A54L) () in
  let faults = Stramash_fault.create ?inject ~global_alloc env msg in
  let futexes = Stramash_futex.create env faults in
  { env; msg; faults; futexes; global_alloc; futex_optimized }

let futex_optimized t = t.futex_optimized
let inject t = Stramash_fault.inject t.faults

let env t = t.env
let faults t = t.faults
let futexes t = t.futexes
let msg t = t.msg
let global_alloc t = t.global_alloc

let handle_fault t ~proc ~node ~vaddr ~write =
  Stramash_fault.handle_fault t.faults ~proc ~node ~vaddr ~write

(* Migration still uses one message round for the handshake (the thread's
   registers travel by reference through the fused VAS; only a descriptor
   is exchanged), then the destination performs state transformation. *)
let migrate t ~proc ~thread ~dst ~point =
  let src = thread.Thread.node in
  if Node_id.equal src dst then invalid_arg "Stramash_os.migrate: already on destination";
  let module Trace = Stramash_obs.Trace in
  let src_meter = Env.meter t.env src in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get src_meter)
        ~tags:[ ("dst", Node_id.to_string dst) ]
        ~flow_root:true ~node:src ~subsys:"migrate" ~op:"transfer" ()
    else Trace.null
  in
  Msg_layer.rpc t.msg ~src ~label:"migrate" ~req_bytes:256 ~resp_bytes:64 ~handler:(fun () ->
      ignore (Stramash_fault.ensure_mm t.faults ~proc ~node:dst);
      Meter.add (Env.meter t.env dst) Migrate_state.transform_cost_instructions);
  if sp != Trace.null then Trace.close ~at:(Meter.get src_meter) sp;
  thread.Thread.cpu <-
    Migrate_state.transform ~src:thread.Thread.cpu ~point ~dst_prog:(Process.image proc dst);
  thread.Thread.node <- dst;
  thread.Thread.migrations <- thread.Thread.migrations + 1

(* With the optimisation off, a non-origin caller falls back to the
   origin-managed message protocol (the Fig. 13 "regular" case): the op is
   requested over the messaging layer and executed by the origin kernel. *)
let futex_wait t ~proc ~thread ~uaddr ~expected =
  let node = thread.Thread.node in
  let origin = proc.Process.origin in
  if t.futex_optimized || Node_id.equal node origin then
    Stramash_futex.wait t.futexes ~proc ~thread ~uaddr ~expected
  else begin
    let decision = ref `Proceed in
    Msg_layer.rpc t.msg ~src:node ~label:"futex_wait" ~req_bytes:96 ~resp_bytes:64
      ~handler:(fun () ->
        decision :=
          Stramash_futex.wait_acting t.futexes ~actor:origin ~proc ~thread ~uaddr ~expected);
    !decision
  end

let exit_process t ~proc = Stramash_fault.exit_process t.faults ~proc

let futex_wake t ~proc ~thread ~threads ~uaddr ~nwake =
  let node = thread.Thread.node in
  let origin = proc.Process.origin in
  if t.futex_optimized || Node_id.equal node origin then
    Stramash_futex.wake t.futexes ~proc ~thread ~threads ~uaddr ~nwake
  else begin
    let woken = ref [] in
    Msg_layer.rpc t.msg ~src:node ~label:"futex_wake" ~req_bytes:96 ~resp_bytes:64
      ~handler:(fun () ->
        woken := Stramash_futex.wake_acting t.futexes ~actor:origin ~proc ~threads ~uaddr ~nwake);
    !woken
  end

(* --- crash-stop plumbing (driven by the machine runner) ----------------- *)

let heartbeat t = Msg_layer.heartbeat t.msg
let heartbeat_tick t ~src ~now = Msg_layer.heartbeat_tick t.msg ~src ~now
let node_down t node = Stramash_fault.node_down t.faults node

let on_node_death t ~procs ~threads ~node ~now =
  Stramash_fault.on_node_death t.faults ~procs ~threads ~node ~now

let on_peer_detected t ~node ~now = Stramash_fault.on_peer_detected t.faults ~node ~now

let on_node_restart t ~procs ~node ~now =
  Stramash_fault.on_node_restart t.faults ~procs ~node ~now
