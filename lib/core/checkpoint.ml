module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Integrity = Stramash_fault_inject.Integrity
module Trace = Stramash_obs.Trace

type pte_image = { p_vaddr : int; p_frame : int; p_writable : bool; p_remote_owned : bool }
type vma_image = { v_start : int; v_end : int; v_kind : Vma.kind; v_writable : bool }
type proc_image = { pid : int; vmas : vma_image list; ptes : pte_image list }
type futex_image = { f_home : Node_id.t; f_uaddr : int; f_tid : int }

type image = { node : Node_id.t; procs : proc_image list; futexes : futex_image list }

(* The checkpoint walk is the simulator's shadow of state that, on real
   hardware, would be captured by the firmware/hypervisor layer at the
   crash boundary — it is not work the (already dead) node can be charged
   for, so reads are silent. Restore, by contrast, is real work billed to
   the restarting node. *)
let silent_io env ~node =
  {
    Page_table.phys = env.Env.phys;
    charge_read = ignore;
    charge_write = ignore;
    alloc_table = (fun () -> Kernel.alloc_table_page (Env.kernel env node));
  }

let capture env ~node ~procs ~futexes =
  let procs =
    List.sort (fun a b -> compare a.Process.pid b.Process.pid) procs
    |> List.filter_map (fun proc ->
           match Process.mm proc node with
           | None -> None
           | Some mm ->
               let vmas = ref [] in
               Vma.iter mm.Process.vmas ~f:(fun v ->
                   vmas :=
                     {
                       v_start = v.Vma.v_start;
                       v_end = v.Vma.v_end;
                       v_kind = v.Vma.kind;
                       v_writable = v.Vma.writable;
                     }
                     :: !vmas);
               let ptes = ref [] in
               Page_table.iter_leaves mm.Process.pgtable (silent_io env ~node)
                 ~f:(fun ~vaddr ~frame ~flags ->
                   ptes :=
                     {
                       p_vaddr = vaddr;
                       p_frame = frame;
                       p_writable = flags.Pte.writable;
                       p_remote_owned = flags.Pte.remote_owned;
                     }
                     :: !ptes);
               Some
                 { pid = proc.Process.pid; vmas = List.rev !vmas; ptes = List.rev !ptes })
  in
  { node; procs; futexes }

(* --- serialisation ------------------------------------------------------ *)

let kind_of_string = function
  | "code" -> Vma.Code
  | "data" -> Vma.Data
  | "heap" -> Vma.Heap
  | "stack" -> Vma.Stack
  | "anon" -> Vma.Anon
  | s -> invalid_arg ("Checkpoint: unknown VMA kind " ^ s)

(* v2 framing: the first line is [magic ^ " v2 <body-bytes> <crc32-hex>"]
   and everything after the newline is the body the header vouches for.
   Length catches torn writes (the common crash-boundary corruption);
   the CRC catches everything else. The body grammar is unchanged from
   v1, so the parser below only moved. *)
let magic = "stramash-checkpoint"

let encode image =
  let buf = Buffer.create 4096 in
  let bool b = if b then 1 else 0 in
  Buffer.add_string buf (Printf.sprintf "node %s\n" (Node_id.to_string image.node));
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "proc %d\n" p.pid);
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "vma 0x%x 0x%x %s %d\n" v.v_start v.v_end
               (Vma.kind_to_string v.v_kind) (bool v.v_writable)))
        p.vmas;
      List.iter
        (fun pte ->
          Buffer.add_string buf
            (Printf.sprintf "pte 0x%x 0x%x %d %d\n" pte.p_vaddr pte.p_frame
               (bool pte.p_writable) (bool pte.p_remote_owned)))
        p.ptes)
    image.procs;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "futex %s 0x%x %d\n" (Node_id.to_string f.f_home) f.f_uaddr f.f_tid))
    image.futexes;
  Buffer.add_string buf "end\n";
  let body = Buffer.contents buf in
  Printf.sprintf "%s v2 %d %08x\n%s" magic (String.length body)
    (Integrity.crc32_string body)
    body

type decode_error =
  | Bad_magic
  | Unsupported_version of string
  | Truncated of { expected : int; got : int }
  | Checksum_mismatch of { expected : int; got : int }
  | Malformed of string

let decode_error_to_string = function
  | Bad_magic -> "bad magic (not a stramash checkpoint)"
  | Unsupported_version v -> Printf.sprintf "unsupported checkpoint version %S" v
  | Truncated { expected; got } ->
      Printf.sprintf "truncated blob: header promises %d body bytes, found %d" expected got
  | Checksum_mismatch { expected; got } ->
      Printf.sprintf "checksum mismatch: header 0x%08x, body 0x%08x" expected got
  | Malformed msg -> "malformed body: " ^ msg

let node_of_string s =
  match List.find_opt (fun n -> Node_id.to_string n = s) Node_id.all with
  | Some n -> n
  | None -> invalid_arg ("unknown node " ^ s)

exception Fail of decode_error

let decode_body body =
  let lines = String.split_on_char '\n' body in
  let node = ref None in
  let procs = ref [] in
  let cur = ref None in
  let futexes = ref [] in
  let finished = ref false in
  let flush_cur () =
    match !cur with
    | None -> ()
    | Some p ->
        procs := { p with vmas = List.rev p.vmas; ptes = List.rev p.ptes } :: !procs;
        cur := None
  in
  try
    List.iteri
      (fun i line ->
        (* line 1 of the blob is the header, so body line [i] is i+2 *)
        let fail msg = raise (Fail (Malformed (Printf.sprintf "line %d: %s" (i + 2) msg))) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] -> ()
        | [ "node"; name ] -> node := Some (node_of_string name)
        | [ "proc"; pid ] ->
            flush_cur ();
            cur := Some { pid = int_of_string pid; vmas = []; ptes = [] }
        | [ "vma"; s; e; kind; w ] -> (
            match !cur with
            | None -> fail "vma outside proc"
            | Some p ->
                cur :=
                  Some
                    {
                      p with
                      vmas =
                        {
                          v_start = int_of_string s;
                          v_end = int_of_string e;
                          v_kind = kind_of_string kind;
                          v_writable = w = "1";
                        }
                        :: p.vmas;
                    })
        | [ "pte"; va; fr; w; ro ] -> (
            match !cur with
            | None -> fail "pte outside proc"
            | Some p ->
                cur :=
                  Some
                    {
                      p with
                      ptes =
                        {
                          p_vaddr = int_of_string va;
                          p_frame = int_of_string fr;
                          p_writable = w = "1";
                          p_remote_owned = ro = "1";
                        }
                        :: p.ptes;
                    })
        | [ "futex"; home; uaddr; tid ] ->
            futexes :=
              {
                f_home = node_of_string home;
                f_uaddr = int_of_string uaddr;
                f_tid = int_of_string tid;
              }
              :: !futexes
        | [ "end" ] ->
            flush_cur ();
            finished := true
        | _ -> fail "unrecognised record")
      lines;
    if not !finished then raise (Fail (Malformed "no end record"));
    match !node with
    | None -> Error (Malformed "blob names no node")
    | Some node ->
        Ok { node; procs = List.rev !procs; futexes = List.rev !futexes }
  with
  | Fail e -> Error e
  | Invalid_argument msg | Failure msg -> Error (Malformed msg)

let decode blob =
  let header, body =
    match String.index_opt blob '\n' with
    | Some i -> (String.sub blob 0 i, String.sub blob (i + 1) (String.length blob - i - 1))
    | None -> (blob, "")
  in
  match String.split_on_char ' ' header with
  | [ m; "v2"; len; crc ] when m = magic -> (
      match (int_of_string_opt len, int_of_string_opt ("0x" ^ crc)) with
      | Some len, Some expected when len >= 0 ->
          let got = String.length body in
          if got < len then Error (Truncated { expected = len; got })
          else
            (* tolerate trailing garbage past the promised length: the
               header only vouches for the first [len] body bytes *)
            let body = String.sub body 0 len in
            let actual = Integrity.crc32_string body in
            if actual <> expected then
              Error (Checksum_mismatch { expected; got = actual })
            else decode_body body
      | _ -> Error Bad_magic)
  | m :: v :: _ when m = magic -> Error (Unsupported_version v)
  | [ m ] when m = magic -> Error (Unsupported_version "<missing>")
  | _ -> Error Bad_magic

(* --- crash teardown ----------------------------------------------------- *)

(* Model the loss of the dead node's derived kernel state: zero each page
   table's root (the whole tree becomes unreachable, so a restore that
   cheated by re-reading old memory would walk nothing) and drop the mm.
   Frames and kernel-heap lines are deliberately NOT freed: the allocator
   bitmaps live in coherent shared memory and survive as the machine's
   memory inventory; directory pages are never reclaimed in this model
   (matching [Page_table.unmap]'s Linux-like behaviour). *)
let discard env ~node ~procs =
  List.iter
    (fun proc ->
      match Process.mm proc node with
      | None -> ()
      | Some mm ->
          Phys_mem.zero_page env.Env.phys (Page_table.root mm.Process.pgtable);
          Process.remove_mm proc node)
    procs

(* --- restore ------------------------------------------------------------ *)

type restore_stats = { restored_procs : int; restored_vmas : int; restored_pages : int }

let restore env ~procs image =
  let node = image.node in
  let kernel = Env.kernel env node in
  let io = Env.pt_io env ~actor:node ~owner:node in
  let stats = ref { restored_procs = 0; restored_vmas = 0; restored_pages = 0 } in
  List.iter
    (fun (p : proc_image) ->
      match List.find_opt (fun pr -> pr.Process.pid = p.pid) procs with
      | None -> () (* the process exited while the node was down *)
      | Some proc ->
          let vmas =
            Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap)
          in
          List.iter
            (fun v ->
              ignore (Vma.add vmas ~start:v.v_start ~end_:v.v_end v.v_kind ~writable:v.v_writable);
              stats := { !stats with restored_vmas = !stats.restored_vmas + 1 })
            p.vmas;
          let pgtable = Page_table.create ~isa:node io in
          List.iter
            (fun pte ->
              Page_table.map pgtable io ~vaddr:pte.p_vaddr ~frame:pte.p_frame
                {
                  Pte.default_flags with
                  writable = pte.p_writable;
                  remote_owned = pte.p_remote_owned;
                };
              stats := { !stats with restored_pages = !stats.restored_pages + 1 })
            p.ptes;
          Process.set_mm proc node
            { Process.vmas; pgtable; ptl_addr = Kheap.alloc_line kernel.Kernel.kheap };
          stats := { !stats with restored_procs = !stats.restored_procs + 1 })
    image.procs;
  if Trace.enabled () then
    Trace.instant ~node ~subsys:"checkpoint" ~op:"restore"
      ~tags:
        [
          ("procs", string_of_int !stats.restored_procs);
          ("pages", string_of_int !stats.restored_pages);
        ]
      ();
  !stats
