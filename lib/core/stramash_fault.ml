module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Tlb = Stramash_kernel.Tlb
module Msg_layer = Stramash_popcorn.Msg_layer

type t = {
  env : Env.t;
  msg : Msg_layer.t;
  ptls : (int, Stramash_ptl.t) Hashtbl.t; (* pid -> origin-table lock *)
  mutable fallback_pages : int;
  mutable remote_walks : int;
  mutable shared_mappings : int;
}

let create env msg =
  { env; msg; ptls = Hashtbl.create 16; fallback_pages = 0; remote_walks = 0; shared_mappings = 0 }

let fallback_pages t = t.fallback_pages
let remote_walks t = t.remote_walks
let shared_mappings t = t.shared_mappings

let reset_counters t =
  t.fallback_pages <- 0;
  t.remote_walks <- 0;
  t.shared_mappings <- 0

let ensure_mm t ~proc ~node =
  match Process.mm proc node with
  | Some mm -> mm
  | None ->
      let kernel = Env.kernel t.env node in
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let mm =
        {
          Process.vmas = Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap);
          pgtable = Page_table.create ~isa:node io;
          ptl_addr = Kheap.alloc_line kernel.Kernel.kheap;
        }
      in
      Process.add_mm proc node mm;
      mm

let ptl_for t ~proc =
  match Hashtbl.find_opt t.ptls proc.Process.pid with
  | Some ptl -> ptl
  | None ->
      let omm = Process.mm_exn proc proc.Process.origin in
      let ptl = Stramash_ptl.create t.env ~lock_addr:omm.Process.ptl_addr in
      Hashtbl.add t.ptls proc.Process.pid ptl;
      ptl

let map_local t ~node ~(mm : Process.mm) ~vaddr ~frame ~writable =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  Page_table.map mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
    ~frame:(frame lsr Addr.page_shift) { Pte.default_flags with writable };
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

let alloc_zeroed t ~node =
  let kernel = Env.kernel t.env node in
  let frame = Kernel.alloc_frame_exn kernel in
  Phys_mem.zero_page t.env.Env.phys frame;
  frame

(* Find the governing VMA: locally at the origin, or by the remote VMA
   walker on the origin's list (no replication of VMA structs). *)
let vma_for t ~proc ~node ~vaddr =
  let origin = proc.Process.origin in
  if Node_id.equal node origin then begin
    let mm = Process.mm_exn proc origin in
    let charge v = Env.charge_load t.env node ~paddr:v.Vma.struct_addr in
    Vma.find ~visit:charge mm.Process.vmas ~vaddr
  end
  else begin
    let omm = Process.mm_exn proc origin in
    Remote_walker.find_vma t.env ~actor:node ~owner_mm:omm ~vaddr
  end

(* §6.4 teardown: every kernel invalidates its own PTEs over the process's
   VMA ranges (held by the origin) and frees exactly the frames it
   allocated — determined by allocator ownership, which the remote-owned
   PTE flag mirrors on the origin side. *)
let exit_process t ~proc =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let ranges = ref [] in
  Vma.iter omm.Process.vmas ~f:(fun vma -> ranges := (vma.Vma.v_start, vma.Vma.v_end) :: !ranges);
  List.iter
    (fun (node, mm) ->
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let kernel = Env.kernel t.env node in
      List.iter
        (fun (v_start, v_end) ->
          let vaddr = ref v_start in
          while !vaddr < v_end do
            (match Page_table.walk mm.Process.pgtable io ~vaddr:!vaddr with
            | Some (frame, _flags) ->
                ignore (Page_table.unmap mm.Process.pgtable io ~vaddr:!vaddr);
                Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of !vaddr);
                let paddr = frame lsl Addr.page_shift in
                if
                  Stramash_kernel.Frame_alloc.owns_address kernel.Kernel.frames paddr
                  && Stramash_kernel.Frame_alloc.is_allocated kernel.Kernel.frames paddr
                then Stramash_kernel.Frame_alloc.free kernel.Kernel.frames paddr
            | None -> ());
            vaddr := !vaddr + Addr.page_size
          done)
        !ranges)
    proc.Process.mms

let handle_fault t ~proc ~node ~vaddr ~write =
  ignore write;
  let origin = proc.Process.origin in
  let mm = ensure_mm t ~proc ~node in
  match vma_for t ~proc ~node ~vaddr with
  | None ->
      failwith
        (Printf.sprintf "stramash: segfault pid=%d vaddr=0x%x on %s" proc.Process.pid vaddr
           (Node_id.to_string node))
  | Some vma -> (
      let writable = vma.Vma.writable in
      let local_io = Env.pt_io t.env ~actor:node ~owner:node in
      match Page_table.walk mm.Process.pgtable local_io ~vaddr with
      | Some _ -> () (* raced/spurious: already mapped *)
      | None ->
          if Node_id.equal node origin then begin
            (* Check whether the remote kernel installed the page in our
               table's absence — possible only via the fallback path, which
               fills the origin table; otherwise it's a fresh anon page. *)
            let frame = alloc_zeroed t ~node in
            map_local t ~node ~mm ~vaddr ~frame ~writable
          end
          else begin
            let omm = Process.mm_exn proc origin in
            let ptl = ptl_for t ~proc in
            Stramash_ptl.with_lock ptl ~actor:node (fun () ->
                t.remote_walks <- t.remote_walks + 1;
                match Remote_walker.walk t.env ~actor:node ~owner_mm:omm ~vaddr with
                | Some (frame, _flags) ->
                    (* The page exists at the origin: map the same frame;
                       coherent shared memory does the rest. *)
                    map_local t ~node ~mm ~vaddr ~frame:(frame lsl Addr.page_shift) ~writable;
                    t.shared_mappings <- t.shared_mappings + 1
                | None ->
                    if Remote_walker.upper_levels_present t.env ~actor:node ~owner_mm:omm ~vaddr
                    then begin
                      (* Fast path: allocate node-locally, install the PTE
                         in both tables (origin's in origin format, marked
                         remote-owned so the origin never frees it). *)
                      let frame = alloc_zeroed t ~node in
                      map_local t ~node ~mm ~vaddr ~frame ~writable;
                      let ok =
                        Remote_walker.install_leaf t.env ~actor:node ~owner_mm:omm
                          ~vaddr:(Addr.page_base vaddr) ~frame:(frame lsr Addr.page_shift)
                          ~remote_owned:true
                      in
                      assert ok;
                      t.shared_mappings <- t.shared_mappings + 1
                    end
                    else begin
                      (* Upper directory missing in the origin table: the
                         origin kernel handles the fault (§9.2.3). *)
                      let oframe = ref 0 in
                      Msg_layer.rpc t.msg ~src:node ~label:"dir_fallback" ~req_bytes:64
                        ~resp_bytes:64 ~handler:(fun () ->
                          let frame = alloc_zeroed t ~node:origin in
                          let oio = Env.pt_io t.env ~actor:origin ~owner:origin in
                          Page_table.map omm.Process.pgtable oio ~vaddr:(Addr.page_base vaddr)
                            ~frame:(frame lsr Addr.page_shift)
                            { Pte.default_flags with writable };
                          oframe := frame);
                      map_local t ~node ~mm ~vaddr ~frame:!oframe ~writable;
                      t.fallback_pages <- t.fallback_pages + 1
                    end)
          end)
