module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Frame_alloc = Stramash_kernel.Frame_alloc
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Tlb = Stramash_kernel.Tlb
module Msg_layer = Stramash_popcorn.Msg_layer
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Futex = Stramash_kernel.Futex
module Thread = Stramash_kernel.Thread
module Trace = Stramash_obs.Trace
module Meter = Stramash_sim.Meter

(* Everything a survivor needs while a peer is down. The VMA shadow is
   decoded out of the checkpoint at death so degraded faults can resolve
   permissions without the (gone) origin VMA tree; pending mappings are
   survivor-local installs replayed into the restored origin table. *)
type downtime = {
  dt_node : Node_id.t;
  dt_died_at : int;
  dt_detect_at : int;
  dt_blob : string;
  dt_vmas : (int * (int * int * Vma.kind * bool) list) list;
      (* pid -> (start, end, kind, writable) *)
  dt_ptes : (int * int, int * bool) Hashtbl.t;
      (* (pid, page vaddr) -> (frame, writable): the dead table's leaves.
         A degraded fault on one of these re-maps the surviving frame —
         the data outlived the crash; only the mapping died. *)
  mutable dt_detected : bool;
  mutable dt_holding : Checkpoint.futex_image list; (* drained dead-node waiters *)
  mutable dt_woken : int list; (* tids woken out of holding during the downtime *)
  mutable dt_pending : (int * int * int * bool) list; (* pid, vaddr, frame, writable *)
}

type t = {
  env : Env.t;
  msg : Msg_layer.t;
  inject : Plan.t option;
  global_alloc : Global_alloc.t option;
  ptls : (int, Stramash_ptl.t) Hashtbl.t; (* pid -> origin-table lock *)
  downs : downtime option array; (* indexed by Node_id.index *)
  mutable fallback_pages : int;
  mutable remote_walks : int;
  mutable shared_mappings : int;
  mutable degraded_walks : int;
  mutable gray_fallbacks : int;
  mutable write_hook : (proc:Process.t -> node:Node_id.t -> vaddr:int -> bool) option;
      (* Consulted when a write faults on a page that is mapped but
         read-only: the placement engine collapses its replica there and
         returns true (the retry then sees a writable leaf). Without a
         hook — or when it declines — the fault is treated as the
         raced/spurious case it always was. *)
}

let create ?inject ?global_alloc env msg =
  {
    env;
    msg;
    inject;
    global_alloc;
    ptls = Hashtbl.create 16;
    downs = Array.make (List.length Node_id.all) None;
    fallback_pages = 0;
    remote_walks = 0;
    shared_mappings = 0;
    degraded_walks = 0;
    gray_fallbacks = 0;
    write_hook = None;
  }

let inject t = t.inject
let set_write_hook t f = t.write_hook <- Some f

(* A mapped-but-read-only leaf hit by a write: give the placement engine
   (if any) the chance to collapse a replica; otherwise it is the
   raced/spurious fault it always was and the retry proceeds. *)
let write_protect_fault t ~proc ~node ~vaddr ~write ~(flags : Pte.flags) =
  if write && not flags.Pte.writable then
    match t.write_hook with
    | Some hook -> ignore (hook ~proc ~node ~vaddr : bool)
    | None -> ()
let fallback_pages t = t.fallback_pages
let remote_walks t = t.remote_walks
let shared_mappings t = t.shared_mappings
let degraded_walks t = t.degraded_walks
let gray_fallbacks t = t.gray_fallbacks
let chaos_armed t = match t.inject with Some p -> Plan.chaos_armed p | None -> false
let plan_note t f = match t.inject with Some p -> f p | None -> ()
let downtime_of t node = t.downs.(Node_id.index node)
let node_down t node = downtime_of t node <> None

let reset_counters t =
  t.fallback_pages <- 0;
  t.remote_walks <- 0;
  t.shared_mappings <- 0

let ensure_mm t ~proc ~node =
  match Process.mm proc node with
  | Some mm -> mm
  | None ->
      let kernel = Env.kernel t.env node in
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let mm =
        {
          Process.vmas = Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap);
          pgtable = Page_table.create ~isa:node io;
          ptl_addr = Kheap.alloc_line kernel.Kernel.kheap;
        }
      in
      Process.add_mm proc node mm;
      mm

let ptl_for t ~proc =
  match Hashtbl.find_opt t.ptls proc.Process.pid with
  | Some ptl -> ptl
  | None ->
      let omm = Process.mm_exn proc proc.Process.origin in
      let ptl = Stramash_ptl.create t.env ~lock_addr:omm.Process.ptl_addr in
      Hashtbl.add t.ptls proc.Process.pid ptl;
      ptl

let ptls_quiescent t =
  Hashtbl.fold (fun _ ptl acc -> acc && not (Stramash_ptl.is_held ptl)) t.ptls true

let map_local t ~node ~(mm : Process.mm) ~vaddr ~frame ~writable =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  Page_table.map mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
    ~frame:(frame lsr Addr.page_shift) { Pte.default_flags with writable };
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

(* Allocate a frame at [node], riding the global-allocator / hotplug path
   (§6.3) on exhaustion — whether the exhaustion is real or injected by
   the fault plan. Only when no block can be onlined either is the typed
   OOM surfaced to the caller. *)
let alloc_frame t ~node =
  let kernel = Env.kernel t.env node in
  let frames = kernel.Kernel.frames in
  let denied = match t.inject with Some plan -> Plan.alloc_denied plan | None -> false in
  let direct = if denied then None else Frame_alloc.alloc frames in
  match direct with
  | Some frame -> Ok frame
  | None -> (
      let oom () = Error (Fault.Out_of_memory { node = Node_id.to_string node }) in
      match t.global_alloc with
      | None -> oom ()
      | Some ga ->
          let granted =
            Global_alloc.check_pressure ga node
            ||
            match Global_alloc.request_block ga node with
            | Ok _ -> true
            | Error `Exhausted -> false
          in
          if granted then begin
            match t.inject with
            | Some plan -> Plan.note_hotplug_recovery plan
            | None -> ()
          end;
          (match Frame_alloc.alloc frames with Some f -> Ok f | None -> oom ()))

let alloc_zeroed t ~node =
  match alloc_frame t ~node with
  | Ok frame ->
      Phys_mem.zero_page t.env.Env.phys frame;
      Ok frame
  | Error _ as e -> e

(* Find the governing VMA: locally at the origin, or by the remote VMA
   walker on the origin's list (no replication of VMA structs). *)
let vma_for t ~proc ~node ~vaddr =
  let origin = proc.Process.origin in
  if Node_id.equal node origin then begin
    let mm = Process.mm_exn proc origin in
    let charge v = Env.charge_load t.env node ~paddr:v.Vma.struct_addr in
    Vma.find ~visit:charge mm.Process.vmas ~vaddr
  end
  else begin
    let omm = Process.mm_exn proc origin in
    Remote_walker.find_vma t.env ~actor:node ~owner_mm:omm ~vaddr
  end

(* §6.4 teardown: every kernel invalidates its own PTEs over the process's
   VMA ranges (held by the origin) and frees exactly the frames it
   allocated — determined by allocator ownership, which the remote-owned
   PTE flag mirrors on the origin side. *)
let exit_process t ~proc =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let ranges = ref [] in
  Vma.iter omm.Process.vmas ~f:(fun vma -> ranges := (vma.Vma.v_start, vma.Vma.v_end) :: !ranges);
  List.iter
    (fun (node, mm) ->
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let kernel = Env.kernel t.env node in
      List.iter
        (fun (v_start, v_end) ->
          let vaddr = ref v_start in
          while !vaddr < v_end do
            (match Page_table.walk mm.Process.pgtable io ~vaddr:!vaddr with
            | Some (frame, _flags) ->
                ignore (Page_table.unmap mm.Process.pgtable io ~vaddr:!vaddr);
                Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of !vaddr);
                let paddr = frame lsl Addr.page_shift in
                if
                  Frame_alloc.owns_address kernel.Kernel.frames paddr
                  && Frame_alloc.is_allocated kernel.Kernel.frames paddr
                then Frame_alloc.free kernel.Kernel.frames paddr
            | None -> ());
            vaddr := !vaddr + Addr.page_size
          done)
        !ranges)
    proc.Process.mms

(* Upper directory missing in the origin table (or a fault forced us off
   the fast path): the origin kernel handles the fault over a message
   round (§9.2.3), allocating and mapping at the origin; the requester
   then maps the same frame locally. *)
let origin_fallback_untraced t ~proc ~node ~(mm : Process.mm) ~vaddr ~writable =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let result = ref (Error (Fault.Out_of_memory { node = Node_id.to_string origin })) in
  Msg_layer.rpc t.msg ~src:node ~label:"dir_fallback" ~req_bytes:64 ~resp_bytes:64
    ~handler:(fun () ->
      match alloc_zeroed t ~node:origin with
      | Error _ as e -> result := e
      | Ok frame ->
          let oio = Env.pt_io t.env ~actor:origin ~owner:origin in
          Page_table.map omm.Process.pgtable oio ~vaddr:(Addr.page_base vaddr)
            ~frame:(frame lsr Addr.page_shift)
            { Pte.default_flags with writable };
          result := Ok frame);
  match !result with
  | Error _ as e -> e
  | Ok frame ->
      map_local t ~node ~mm ~vaddr ~frame ~writable;
      t.fallback_pages <- t.fallback_pages + 1;
      Ok ()

let origin_fallback t ~proc ~node ~mm ~vaddr ~writable =
  if not (Trace.enabled ()) then origin_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node ~subsys:"stramash_fault" ~op:"origin_fallback" ()
    in
    let result = origin_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

(* Circuit-breaker diversion: the peer's health score tripped, so skip
   the fused shared-memory path (remote walk under the origin PTL)
   entirely and let the origin serve the fault over one message round —
   the same Popcorn-style message-walk shape as the crash-stop degraded
   mode, but against a live (merely slow) origin. The origin walks its
   own table; an existing page is shared as-is, a missing one is
   allocated and mapped origin-side, all without touching the PTL (kernel
   entries are serialised origin-side, as in [origin_fallback]). *)
let gray_fallback_untraced t ~proc ~node ~(mm : Process.mm) ~vaddr ~writable =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let result = ref (Error (Fault.Out_of_memory { node = Node_id.to_string origin })) in
  Msg_layer.rpc t.msg ~src:node ~label:"gray_walk" ~req_bytes:64 ~resp_bytes:64
    ~handler:(fun () ->
      let oio = Env.pt_io t.env ~actor:origin ~owner:origin in
      match Page_table.walk omm.Process.pgtable oio ~vaddr with
      | Some (frame, _flags) -> result := Ok (frame lsl Addr.page_shift)
      | None -> (
          match alloc_zeroed t ~node:origin with
          | Error _ as e -> result := e
          | Ok frame ->
              Page_table.map omm.Process.pgtable oio ~vaddr:(Addr.page_base vaddr)
                ~frame:(frame lsr Addr.page_shift)
                { Pte.default_flags with writable };
              result := Ok frame));
  match !result with
  | Error _ as e -> e
  | Ok frame ->
      map_local t ~node ~mm ~vaddr ~frame ~writable;
      t.gray_fallbacks <- t.gray_fallbacks + 1;
      plan_note t Plan.note_breaker_fallback;
      Ok ()

let gray_fallback t ~proc ~node ~mm ~vaddr ~writable =
  if not (Trace.enabled ()) then gray_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node ~subsys:"stramash_fault" ~op:"gray_fallback" ()
    in
    let result = gray_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

(* A fault (transient walk failure, PTL timeout) pushed the fast path off
   the road: degrade to the origin-fallback protocol instead of crashing. *)
let escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable =
  (match t.inject with Some plan -> Plan.note_fallback_escalation plan | None -> ());
  origin_fallback t ~proc ~node ~mm ~vaddr ~writable

let remote_fault_untraced t ~proc ~node ~(mm : Process.mm) ~vaddr ~writable =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let ptl = ptl_for t ~proc in
  let locked =
    Stramash_ptl.try_with_lock ptl ~actor:node ?inject:t.inject (fun () ->
        t.remote_walks <- t.remote_walks + 1;
        match
          Remote_walker.walk_checked t.env ~actor:node ~owner_mm:omm ~vaddr ?inject:t.inject ()
        with
        | Error _ as e -> e
        | Ok (Some (frame, _flags)) ->
            (* The page exists at the origin: map the same frame; coherent
               shared memory does the rest. *)
            map_local t ~node ~mm ~vaddr ~frame:(frame lsl Addr.page_shift) ~writable;
            t.shared_mappings <- t.shared_mappings + 1;
            Ok `Done
        | Ok None ->
            if Remote_walker.upper_levels_present t.env ~actor:node ~owner_mm:omm ~vaddr then begin
              (* Fast path: allocate node-locally, install the PTE in both
                 tables (origin's in origin format, marked remote-owned so
                 the origin never frees it). Install into the origin table
                 first: if it refuses, return the frame and fall back
                 rather than leaving a half-done mapping. *)
              match alloc_zeroed t ~node with
              | Error _ as e -> e
              | Ok frame ->
                  let installed =
                    Remote_walker.install_leaf t.env ~actor:node ~owner_mm:omm
                      ~vaddr:(Addr.page_base vaddr) ~frame:(frame lsr Addr.page_shift)
                      ~remote_owned:true ?inject:t.inject ()
                  in
                  if installed then begin
                    map_local t ~node ~mm ~vaddr ~frame ~writable;
                    t.shared_mappings <- t.shared_mappings + 1;
                    Ok `Done
                  end
                  else begin
                    Frame_alloc.free (Env.kernel t.env node).Kernel.frames frame;
                    Ok `Need_fallback
                  end
            end
            else Ok `Need_fallback)
  in
  match locked with
  | Ok (Ok `Done) -> Ok ()
  | Ok (Ok `Need_fallback) -> origin_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Ok (Error (Fault.Walk_failed _)) -> escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Ok (Error _ as e) -> e
  | Error (Fault.Lock_timeout _) -> escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Error _ as e -> e

let remote_fault t ~proc ~node ~mm ~vaddr ~writable =
  if not (Trace.enabled ()) then remote_fault_untraced t ~proc ~node ~mm ~vaddr ~writable
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node ~subsys:"stramash_fault" ~op:"remote_fault" ()
    in
    let result = remote_fault_untraced t ~proc ~node ~mm ~vaddr ~writable in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

(* Popcorn-style degraded mode (the fused fast path's fallback while a
   peer is crash-stopped): the origin kernel is gone, so the survivor can
   touch neither its VMA tree nor its page table. Permissions come from
   the checkpoint's VMA shadow; the walk itself is modelled as the message
   round the origin would have served, at a fixed penalty. The page is
   mapped survivor-locally only — the origin-table install is deferred to
   [on_node_restart]'s reconcile pass. *)
let degraded_fault t dt ~proc ~node ~vaddr ~write =
  let meter = Env.meter t.env node in
  (* The survivor only learns of the death when the watchdog fires: a
     fault landing inside the detection window stalls until then. *)
  if Meter.get meter < dt.dt_detect_at then begin
    let stall = dt.dt_detect_at - Meter.get meter in
    Meter.add meter stall;
    plan_note t (fun p -> Plan.add_degraded_cycles p ~cycles:stall)
  end;
  let ranges = Option.value ~default:[] (List.assoc_opt proc.Process.pid dt.dt_vmas) in
  match List.find_opt (fun (s, e, _, _) -> s <= vaddr && vaddr < e) ranges with
  | None ->
      Error
        (Fault.Segfault { pid = proc.Process.pid; vaddr; node = Node_id.to_string node })
  | Some (_, _, _, writable) -> (
      let mm = ensure_mm t ~proc ~node in
      let local_io = Env.pt_io t.env ~actor:node ~owner:node in
      match Page_table.walk mm.Process.pgtable local_io ~vaddr with
      | Some (_, flags) ->
          write_protect_fault t ~proc ~node ~vaddr ~write ~flags;
          Ok ()
      | None -> (
          let penalty =
            match t.inject with
            | Some p -> Plan.degraded_walk_penalty_cycles p
            | None -> 0
          in
          Meter.add meter penalty;
          Msg_layer.record_async t.msg ~label:"degraded_walk";
          t.degraded_walks <- t.degraded_walks + 1;
          plan_note t Plan.note_degraded_walk;
          plan_note t (fun p -> Plan.add_degraded_cycles p ~cycles:penalty);
          match Hashtbl.find_opt dt.dt_ptes (proc.Process.pid, Addr.page_base vaddr) with
          | Some (frame, _) ->
              (* The page existed in the dead table: its frame survived the
                 crash (memory inventory), only the mapping was lost. *)
              map_local t ~node ~mm ~vaddr ~frame:(frame lsl Addr.page_shift) ~writable;
              Ok ()
          | None -> (
              match alloc_zeroed t ~node with
              | Error _ as e -> e
              | Ok frame ->
                  map_local t ~node ~mm ~vaddr ~frame ~writable;
                  dt.dt_pending <-
                    (proc.Process.pid, Addr.page_base vaddr, frame lsr Addr.page_shift, writable)
                    :: dt.dt_pending;
                  Ok ())))

let handle_fault_fused t ~proc ~node ~vaddr ~write =
  let origin = proc.Process.origin in
  let mm = ensure_mm t ~proc ~node in
  match vma_for t ~proc ~node ~vaddr with
  | None ->
      Error
        (Fault.Segfault { pid = proc.Process.pid; vaddr; node = Node_id.to_string node })
  | Some vma -> (
      let writable = vma.Vma.writable in
      let local_io = Env.pt_io t.env ~actor:node ~owner:node in
      match Page_table.walk mm.Process.pgtable local_io ~vaddr with
      | Some (_, flags) ->
          (* Raced/spurious for a writable leaf; for a read-only leaf a
             write here is a replica collapse request. *)
          write_protect_fault t ~proc ~node ~vaddr ~write ~flags;
          Ok ()
      | None ->
          if Node_id.equal node origin then begin
            (* Fresh anon page at the origin. *)
            match alloc_zeroed t ~node with
            | Error _ as e -> e
            | Ok frame ->
                map_local t ~node ~mm ~vaddr ~frame ~writable;
                Ok ()
          end
          else begin
            (* Per-peer circuit breaker: a tripped origin is served over
               the message-walk fallback instead of the fused path, with
               paced probes re-exercising the fused path so hysteresis
               can re-admit a recovered peer. *)
            match t.inject with
            | None -> remote_fault t ~proc ~node ~mm ~vaddr ~writable
            | Some plan -> (
                let now = Meter.get (Env.meter t.env node) in
                match Plan.breaker_route plan ~peer:origin ~now with
                | `Fused -> remote_fault t ~proc ~node ~mm ~vaddr ~writable
                | `Divert -> gray_fallback t ~proc ~node ~mm ~vaddr ~writable
                | `Probe ->
                    let result = remote_fault t ~proc ~node ~mm ~vaddr ~writable in
                    Plan.breaker_probe_done plan ~peer:origin
                      ~now:(Meter.get (Env.meter t.env node));
                    result)
          end)

let handle_fault_untraced t ~proc ~node ~vaddr ~write =
  let origin = proc.Process.origin in
  match downtime_of t origin with
  | Some dt when not (Node_id.equal node origin) ->
      degraded_fault t dt ~proc ~node ~vaddr ~write
  | _ -> handle_fault_fused t ~proc ~node ~vaddr ~write

(* Remote (non-origin) faults are the operations the gray campaign's
   latency verdict compares breaker-on vs breaker-off, so their end-to-end
   service time feeds the plan's "fault" histogram. *)
let handle_fault_measured t ~proc ~node ~vaddr ~write =
  match t.inject with
  | Some plan when not (Node_id.equal node proc.Process.origin) ->
      let meter = Env.meter t.env node in
      let t0 = Meter.get meter in
      let result = handle_fault_untraced t ~proc ~node ~vaddr ~write in
      Plan.record_op plan ~op:"fault" ~cycles:(Meter.get meter - t0);
      result
  | _ -> handle_fault_untraced t ~proc ~node ~vaddr ~write

let handle_fault t ~proc ~node ~vaddr ~write =
  if not (Trace.enabled ()) then handle_fault_measured t ~proc ~node ~vaddr ~write
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter)
        ~tags:[ ("origin", string_of_bool (Node_id.equal node proc.Process.origin)) ]
        ~flow_root:true ~node ~subsys:"stramash_fault" ~op:"fault" ()
    in
    let result = handle_fault_measured t ~proc ~node ~vaddr ~write in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

let handle_fault_exn t ~proc ~node ~vaddr ~write =
  Fault.get_exn (handle_fault t ~proc ~node ~vaddr ~write)

(* --- crash-stop: death, detection, restart ------------------------------ *)

let detection_latency t =
  match t.inject with
  | Some p -> Plan.heartbeat_interval_cycles p * Plan.heartbeat_miss_threshold p
  | None -> 0

(* Crash a node at a quantum boundary (kernel entries are serialised, so
   every structure is quiescent). Order matters: break the dead node's
   PTLs (bumped liveness epoch fences its tokens), sweep both kernels'
   futex buckets (dead-thread waiters park in the holding area, live
   waiters queued in the dead kernel requeue into the survivor), capture
   and encode the checkpoint, then discard the derived state and sweep the
   hotplug ledger. [Env.liveness] must already record the node as dead. *)
let on_node_death t ~procs ~threads ~node ~now =
  if Env.node_alive t.env node then invalid_arg "on_node_death: node is still alive";
  let survivor = Node_id.other node in
  Hashtbl.fold (fun pid ptl acc -> (pid, ptl) :: acc) t.ptls []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.iter (fun (_, ptl) ->
         if Stramash_ptl.break_dead ptl ~actor:survivor then plan_note t Plan.note_lock_break);
  let node_of tid =
    match List.find_opt (fun (th : Thread.t) -> th.Thread.tid = tid) threads with
    | Some th -> th.Thread.node
    | None -> invalid_arg (Printf.sprintf "on_node_death: unknown waiter tid %d" tid)
  in
  let holding = ref [] in
  List.iter
    (fun knode ->
      let futexes = (Env.kernel t.env knode).Kernel.futexes in
      List.iter
        (fun (uaddr, _) ->
          List.iter
            (fun tid ->
              if Node_id.equal (node_of tid) node then begin
                holding :=
                  { Checkpoint.f_home = knode; f_uaddr = uaddr; f_tid = tid } :: !holding;
                plan_note t Plan.note_waiter_parked
              end
              else if Node_id.equal knode node then begin
                let sfutexes = (Env.kernel t.env survivor).Kernel.futexes in
                Env.charge_atomic t.env survivor
                  ~paddr:(Futex.bucket_addr sfutexes ~uaddr);
                Futex.enqueue_waiter sfutexes ~uaddr ~tid;
                plan_note t Plan.note_waiter_requeued
              end
              else Futex.enqueue_waiter futexes ~uaddr ~tid)
            (Futex.drain futexes ~uaddr))
        (Futex.snapshot futexes))
    Node_id.all;
  let holding = List.rev !holding in
  let image = Checkpoint.capture t.env ~node ~procs ~futexes:holding in
  let blob = Checkpoint.encode image in
  plan_note t (fun p -> Plan.note_checkpoint p ~bytes:(String.length blob));
  (* Injected tear: keep only a seeded fraction of the blob, modelling a
     write cut off mid-image at the crash boundary. The v2 header makes
     restart detect it and take the shadow fallback. *)
  let blob =
    match t.inject with
    | None -> blob
    | Some p -> (
        match Plan.ckpt_torn_fraction p with
        | None -> blob
        | Some frac ->
            let keep =
              min (String.length blob - 1)
                (max 1 (int_of_float (frac *. float_of_int (String.length blob))))
            in
            if Trace.enabled () then
              Trace.instant ~node ~subsys:"fault" ~op:"ckpt_tear"
                ~tags:
                  [
                    ("kept_bytes", string_of_int keep);
                    ("full_bytes", string_of_int (String.length blob));
                  ]
                ();
            String.sub blob 0 keep)
  in
  (* Shadow every captured proc, not only the ones whose origin is the
     dying node: degraded faults consult the shadow for origin procs
     alone, but the torn-checkpoint fallback rebuilds the whole image
     from it, and the capture includes migrated-in mms too. *)
  let shadow =
    List.map
      (fun (p : Checkpoint.proc_image) ->
        ( p.Checkpoint.pid,
          List.map
            (fun (v : Checkpoint.vma_image) ->
              (v.Checkpoint.v_start, v.Checkpoint.v_end, v.Checkpoint.v_kind,
               v.Checkpoint.v_writable))
            p.Checkpoint.vmas ))
      image.Checkpoint.procs
  in
  let pte_shadow = Hashtbl.create 256 in
  List.iter
    (fun (p : Checkpoint.proc_image) ->
      List.iter
        (fun (pte : Checkpoint.pte_image) ->
          Hashtbl.replace pte_shadow
            (p.Checkpoint.pid, pte.Checkpoint.p_vaddr)
            (pte.Checkpoint.p_frame, pte.Checkpoint.p_writable))
        p.Checkpoint.ptes)
    image.Checkpoint.procs;
  Checkpoint.discard t.env ~node ~procs;
  List.iter
    (fun pr ->
      if Node_id.equal pr.Process.origin node then Hashtbl.remove t.ptls pr.Process.pid)
    procs;
  (match t.global_alloc with
  | None -> ()
  | Some ga ->
      let reclaimed, orphaned = Global_alloc.on_node_death ga ~node ~actor:survivor in
      plan_note t (fun p -> Plan.note_blocks_reclaimed p reclaimed);
      plan_note t (fun p -> Plan.note_blocks_orphaned p orphaned));
  t.downs.(Node_id.index node) <-
    Some
      {
        dt_node = node;
        dt_died_at = now;
        dt_detect_at = now + detection_latency t;
        dt_blob = blob;
        dt_vmas = shadow;
        dt_ptes = pte_shadow;
        dt_detected = false;
        dt_holding = holding;
        dt_woken = [];
        dt_pending = [];
      };
  plan_note t (fun p -> Plan.note_node_death p node);
  if Trace.enabled () then
    Trace.instant ~node ~subsys:"chaos" ~op:"node_death"
      ~tags:
        [
          ("at", string_of_int now);
          ("checkpoint_bytes", string_of_int (String.length blob));
          ("parked_waiters", string_of_int (List.length holding));
        ]
      ()

let on_peer_detected t ~node ~now =
  match downtime_of t node with
  | None -> ()
  | Some dt ->
      if not dt.dt_detected then begin
        dt.dt_detected <- true;
        plan_note t (fun p -> Plan.note_watchdog_detection p node);
        if Trace.enabled () then
          Trace.instant ~node ~subsys:"chaos" ~op:"watchdog_detect"
            ~tags:[ ("at", string_of_int now) ]
            ()
      end

(* Restart: decode the blob, re-materialise page tables and VMA trees,
   replay the survivor's deferred installs into the restored origin table
   (remote-owned iff the frame came from the survivor's allocator), and
   re-park checkpointed waiters minus any woken during the downtime.
   [Env.liveness] must already record the node as alive again — its epoch
   bump is what keeps pre-crash lock tokens fenced out. *)
let on_node_restart t ~procs ~node ~now =
  if not (Env.node_alive t.env node) then invalid_arg "on_node_restart: node is still dead";
  match downtime_of t node with
  | None -> invalid_arg "on_node_restart: node is not down"
  | Some dt ->
      t.downs.(Node_id.index node) <- None;
      let image =
        match Checkpoint.decode dt.dt_blob with
        | Ok image -> image
        | Error err ->
            (* The checkpoint failed its integrity check (torn or
               bit-rotted while the node was down). Fall back to the
               survivor-held shadows: the VMA ranges and PTE leaves that
               degraded faults have been resolving against all along,
               plus the drained waiter list. Remote-owned bits are
               recomputed from frame-allocator ownership, the same rule
               the deferred-install replay uses below. *)
            plan_note t Plan.note_ckpt_detected;
            let kernel = Env.kernel t.env node in
            let procs_img =
              List.map
                (fun (pid, vmas) ->
                  let vmas =
                    List.map
                      (fun (s, e, k, w) ->
                        { Checkpoint.v_start = s; v_end = e; v_kind = k; v_writable = w })
                      vmas
                  in
                  let ptes =
                    Hashtbl.fold
                      (fun (p, va) (fr, w) acc -> if p = pid then (va, fr, w) :: acc else acc)
                      dt.dt_ptes []
                    |> List.sort compare
                    |> List.map (fun (va, fr, w) ->
                           {
                             Checkpoint.p_vaddr = va;
                             p_frame = fr;
                             p_writable = w;
                             p_remote_owned =
                               not
                                 (Frame_alloc.owns_address kernel.Kernel.frames
                                    (fr lsl Addr.page_shift));
                           })
                  in
                  { Checkpoint.pid; vmas; ptes })
                dt.dt_vmas
            in
            plan_note t Plan.note_ckpt_fallback;
            if Trace.enabled () then
              Trace.instant ~node ~subsys:"chaos" ~op:"ckpt_fallback"
                ~tags:[ ("error", Checkpoint.decode_error_to_string err) ]
                ();
            { Checkpoint.node; procs = procs_img; futexes = dt.dt_holding }
      in
      let stats = Checkpoint.restore t.env ~procs image in
      plan_note t (fun p -> Plan.note_restore p ~pages:stats.Checkpoint.restored_pages);
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let kernel = Env.kernel t.env node in
      List.iter
        (fun (pid, vaddr, frame, writable) ->
          match List.find_opt (fun pr -> pr.Process.pid = pid) procs with
          | None -> () (* exited during the downtime *)
          | Some proc -> (
              match Process.mm proc node with
              | None -> ()
              | Some omm ->
                  let remote_owned =
                    not
                      (Frame_alloc.owns_address kernel.Kernel.frames
                         (frame lsl Addr.page_shift))
                  in
                  if Page_table.walk omm.Process.pgtable io ~vaddr = None then
                    Page_table.map omm.Process.pgtable io ~vaddr ~frame
                      { Pte.default_flags with writable; remote_owned }))
        (List.rev dt.dt_pending);
      List.iter
        (fun (f : Checkpoint.futex_image) ->
          if not (List.mem f.Checkpoint.f_tid dt.dt_woken) then begin
            let futexes = (Env.kernel t.env f.Checkpoint.f_home).Kernel.futexes in
            Env.charge_atomic t.env node
              ~paddr:(Futex.bucket_addr futexes ~uaddr:f.Checkpoint.f_uaddr);
            Futex.enqueue_waiter futexes ~uaddr:f.Checkpoint.f_uaddr ~tid:f.Checkpoint.f_tid
          end)
        image.Checkpoint.futexes;
      plan_note t (fun p -> Plan.note_node_restart p node);
      plan_note t (fun p -> Plan.add_downtime_cycles p ~cycles:(now - dt.dt_died_at));
      if Trace.enabled () then
        Trace.instant ~node ~subsys:"chaos" ~op:"node_restart"
          ~tags:
            [
              ("at", string_of_int now);
              ("downtime", string_of_int (now - dt.dt_died_at));
              ("restored_pages", string_of_int stats.Checkpoint.restored_pages);
            ]
          ()

(* Waiters parked in a downtime holding area are logically wakeable: a
   survivor's FUTEX_WAKE pops them (FIFO) and the woken tid is recorded so
   the restart does not re-park it. *)
let wake_held t ~uaddr ~limit =
  let woken = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some dt ->
          let rec go acc = function
            | [] -> List.rev acc
            | (f : Checkpoint.futex_image) :: rest ->
                if f.Checkpoint.f_uaddr = uaddr && List.length !woken < limit then begin
                  woken := f.Checkpoint.f_tid :: !woken;
                  dt.dt_woken <- f.Checkpoint.f_tid :: dt.dt_woken;
                  go acc rest
                end
                else go (f :: acc) rest
          in
          dt.dt_holding <- go [] dt.dt_holding)
    t.downs;
  List.rev !woken

let held_waiters t =
  Array.to_list t.downs
  |> List.concat_map (function None -> [] | Some dt -> dt.dt_holding)
