module Node_id = Stramash_sim.Node_id
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Kheap = Stramash_kernel.Kheap
module Frame_alloc = Stramash_kernel.Frame_alloc
module Vma = Stramash_kernel.Vma
module Pte = Stramash_kernel.Pte
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Tlb = Stramash_kernel.Tlb
module Msg_layer = Stramash_popcorn.Msg_layer
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Trace = Stramash_obs.Trace
module Meter = Stramash_sim.Meter

type t = {
  env : Env.t;
  msg : Msg_layer.t;
  inject : Plan.t option;
  global_alloc : Global_alloc.t option;
  ptls : (int, Stramash_ptl.t) Hashtbl.t; (* pid -> origin-table lock *)
  mutable fallback_pages : int;
  mutable remote_walks : int;
  mutable shared_mappings : int;
}

let create ?inject ?global_alloc env msg =
  {
    env;
    msg;
    inject;
    global_alloc;
    ptls = Hashtbl.create 16;
    fallback_pages = 0;
    remote_walks = 0;
    shared_mappings = 0;
  }

let inject t = t.inject
let fallback_pages t = t.fallback_pages
let remote_walks t = t.remote_walks
let shared_mappings t = t.shared_mappings

let reset_counters t =
  t.fallback_pages <- 0;
  t.remote_walks <- 0;
  t.shared_mappings <- 0

let ensure_mm t ~proc ~node =
  match Process.mm proc node with
  | Some mm -> mm
  | None ->
      let kernel = Env.kernel t.env node in
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let mm =
        {
          Process.vmas = Vma.create_set ~alloc_struct:(fun () -> Kheap.alloc_line kernel.Kernel.kheap);
          pgtable = Page_table.create ~isa:node io;
          ptl_addr = Kheap.alloc_line kernel.Kernel.kheap;
        }
      in
      Process.add_mm proc node mm;
      mm

let ptl_for t ~proc =
  match Hashtbl.find_opt t.ptls proc.Process.pid with
  | Some ptl -> ptl
  | None ->
      let omm = Process.mm_exn proc proc.Process.origin in
      let ptl = Stramash_ptl.create t.env ~lock_addr:omm.Process.ptl_addr in
      Hashtbl.add t.ptls proc.Process.pid ptl;
      ptl

let ptls_quiescent t =
  Hashtbl.fold (fun _ ptl acc -> acc && not (Stramash_ptl.is_held ptl)) t.ptls true

let map_local t ~node ~(mm : Process.mm) ~vaddr ~frame ~writable =
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  Page_table.map mm.Process.pgtable io ~vaddr:(Addr.page_base vaddr)
    ~frame:(frame lsr Addr.page_shift) { Pte.default_flags with writable };
  Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of vaddr)

(* Allocate a frame at [node], riding the global-allocator / hotplug path
   (§6.3) on exhaustion — whether the exhaustion is real or injected by
   the fault plan. Only when no block can be onlined either is the typed
   OOM surfaced to the caller. *)
let alloc_frame t ~node =
  let kernel = Env.kernel t.env node in
  let frames = kernel.Kernel.frames in
  let denied = match t.inject with Some plan -> Plan.alloc_denied plan | None -> false in
  let direct = if denied then None else Frame_alloc.alloc frames in
  match direct with
  | Some frame -> Ok frame
  | None -> (
      let oom () = Error (Fault.Out_of_memory { node = Node_id.to_string node }) in
      match t.global_alloc with
      | None -> oom ()
      | Some ga ->
          let granted =
            Global_alloc.check_pressure ga node
            ||
            match Global_alloc.request_block ga node with
            | Ok _ -> true
            | Error `Exhausted -> false
          in
          if granted then begin
            match t.inject with
            | Some plan -> Plan.note_hotplug_recovery plan
            | None -> ()
          end;
          (match Frame_alloc.alloc frames with Some f -> Ok f | None -> oom ()))

let alloc_zeroed t ~node =
  match alloc_frame t ~node with
  | Ok frame ->
      Phys_mem.zero_page t.env.Env.phys frame;
      Ok frame
  | Error _ as e -> e

(* Find the governing VMA: locally at the origin, or by the remote VMA
   walker on the origin's list (no replication of VMA structs). *)
let vma_for t ~proc ~node ~vaddr =
  let origin = proc.Process.origin in
  if Node_id.equal node origin then begin
    let mm = Process.mm_exn proc origin in
    let charge v = Env.charge_load t.env node ~paddr:v.Vma.struct_addr in
    Vma.find ~visit:charge mm.Process.vmas ~vaddr
  end
  else begin
    let omm = Process.mm_exn proc origin in
    Remote_walker.find_vma t.env ~actor:node ~owner_mm:omm ~vaddr
  end

(* §6.4 teardown: every kernel invalidates its own PTEs over the process's
   VMA ranges (held by the origin) and frees exactly the frames it
   allocated — determined by allocator ownership, which the remote-owned
   PTE flag mirrors on the origin side. *)
let exit_process t ~proc =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let ranges = ref [] in
  Vma.iter omm.Process.vmas ~f:(fun vma -> ranges := (vma.Vma.v_start, vma.Vma.v_end) :: !ranges);
  List.iter
    (fun (node, mm) ->
      let io = Env.pt_io t.env ~actor:node ~owner:node in
      let kernel = Env.kernel t.env node in
      List.iter
        (fun (v_start, v_end) ->
          let vaddr = ref v_start in
          while !vaddr < v_end do
            (match Page_table.walk mm.Process.pgtable io ~vaddr:!vaddr with
            | Some (frame, _flags) ->
                ignore (Page_table.unmap mm.Process.pgtable io ~vaddr:!vaddr);
                Tlb.flush_page (Env.tlb t.env node) ~vpage:(Addr.page_of !vaddr);
                let paddr = frame lsl Addr.page_shift in
                if
                  Frame_alloc.owns_address kernel.Kernel.frames paddr
                  && Frame_alloc.is_allocated kernel.Kernel.frames paddr
                then Frame_alloc.free kernel.Kernel.frames paddr
            | None -> ());
            vaddr := !vaddr + Addr.page_size
          done)
        !ranges)
    proc.Process.mms

(* Upper directory missing in the origin table (or a fault forced us off
   the fast path): the origin kernel handles the fault over a message
   round (§9.2.3), allocating and mapping at the origin; the requester
   then maps the same frame locally. *)
let origin_fallback_untraced t ~proc ~node ~(mm : Process.mm) ~vaddr ~writable =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let result = ref (Error (Fault.Out_of_memory { node = Node_id.to_string origin })) in
  Msg_layer.rpc t.msg ~src:node ~label:"dir_fallback" ~req_bytes:64 ~resp_bytes:64
    ~handler:(fun () ->
      match alloc_zeroed t ~node:origin with
      | Error _ as e -> result := e
      | Ok frame ->
          let oio = Env.pt_io t.env ~actor:origin ~owner:origin in
          Page_table.map omm.Process.pgtable oio ~vaddr:(Addr.page_base vaddr)
            ~frame:(frame lsr Addr.page_shift)
            { Pte.default_flags with writable };
          result := Ok frame);
  match !result with
  | Error _ as e -> e
  | Ok frame ->
      map_local t ~node ~mm ~vaddr ~frame ~writable;
      t.fallback_pages <- t.fallback_pages + 1;
      Ok ()

let origin_fallback t ~proc ~node ~mm ~vaddr ~writable =
  if not (Trace.enabled ()) then origin_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node ~subsys:"stramash_fault" ~op:"origin_fallback" ()
    in
    let result = origin_fallback_untraced t ~proc ~node ~mm ~vaddr ~writable in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

(* A fault (transient walk failure, PTL timeout) pushed the fast path off
   the road: degrade to the origin-fallback protocol instead of crashing. *)
let escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable =
  (match t.inject with Some plan -> Plan.note_fallback_escalation plan | None -> ());
  origin_fallback t ~proc ~node ~mm ~vaddr ~writable

let remote_fault_untraced t ~proc ~node ~(mm : Process.mm) ~vaddr ~writable =
  let origin = proc.Process.origin in
  let omm = Process.mm_exn proc origin in
  let ptl = ptl_for t ~proc in
  let locked =
    Stramash_ptl.try_with_lock ptl ~actor:node ?inject:t.inject (fun () ->
        t.remote_walks <- t.remote_walks + 1;
        match
          Remote_walker.walk_checked t.env ~actor:node ~owner_mm:omm ~vaddr ?inject:t.inject ()
        with
        | Error _ as e -> e
        | Ok (Some (frame, _flags)) ->
            (* The page exists at the origin: map the same frame; coherent
               shared memory does the rest. *)
            map_local t ~node ~mm ~vaddr ~frame:(frame lsl Addr.page_shift) ~writable;
            t.shared_mappings <- t.shared_mappings + 1;
            Ok `Done
        | Ok None ->
            if Remote_walker.upper_levels_present t.env ~actor:node ~owner_mm:omm ~vaddr then begin
              (* Fast path: allocate node-locally, install the PTE in both
                 tables (origin's in origin format, marked remote-owned so
                 the origin never frees it). Install into the origin table
                 first: if it refuses, return the frame and fall back
                 rather than leaving a half-done mapping. *)
              match alloc_zeroed t ~node with
              | Error _ as e -> e
              | Ok frame ->
                  let installed =
                    Remote_walker.install_leaf t.env ~actor:node ~owner_mm:omm
                      ~vaddr:(Addr.page_base vaddr) ~frame:(frame lsr Addr.page_shift)
                      ~remote_owned:true
                  in
                  if installed then begin
                    map_local t ~node ~mm ~vaddr ~frame ~writable;
                    t.shared_mappings <- t.shared_mappings + 1;
                    Ok `Done
                  end
                  else begin
                    Frame_alloc.free (Env.kernel t.env node).Kernel.frames frame;
                    Ok `Need_fallback
                  end
            end
            else Ok `Need_fallback)
  in
  match locked with
  | Ok (Ok `Done) -> Ok ()
  | Ok (Ok `Need_fallback) -> origin_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Ok (Error (Fault.Walk_failed _)) -> escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Ok (Error _ as e) -> e
  | Error (Fault.Lock_timeout _) -> escalate_to_fallback t ~proc ~node ~mm ~vaddr ~writable
  | Error _ as e -> e

let remote_fault t ~proc ~node ~mm ~vaddr ~writable =
  if not (Trace.enabled ()) then remote_fault_untraced t ~proc ~node ~mm ~vaddr ~writable
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node ~subsys:"stramash_fault" ~op:"remote_fault" ()
    in
    let result = remote_fault_untraced t ~proc ~node ~mm ~vaddr ~writable in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

let handle_fault_untraced t ~proc ~node ~vaddr ~write =
  ignore write;
  let origin = proc.Process.origin in
  let mm = ensure_mm t ~proc ~node in
  match vma_for t ~proc ~node ~vaddr with
  | None ->
      Error
        (Fault.Segfault { pid = proc.Process.pid; vaddr; node = Node_id.to_string node })
  | Some vma -> (
      let writable = vma.Vma.writable in
      let local_io = Env.pt_io t.env ~actor:node ~owner:node in
      match Page_table.walk mm.Process.pgtable local_io ~vaddr with
      | Some _ -> Ok () (* raced/spurious: already mapped *)
      | None ->
          if Node_id.equal node origin then begin
            (* Fresh anon page at the origin. *)
            match alloc_zeroed t ~node with
            | Error _ as e -> e
            | Ok frame ->
                map_local t ~node ~mm ~vaddr ~frame ~writable;
                Ok ()
          end
          else remote_fault t ~proc ~node ~mm ~vaddr ~writable)

let handle_fault t ~proc ~node ~vaddr ~write =
  if not (Trace.enabled ()) then handle_fault_untraced t ~proc ~node ~vaddr ~write
  else begin
    let meter = Env.meter t.env node in
    let sp =
      Trace.span ~at:(Meter.get meter)
        ~tags:[ ("origin", string_of_bool (Node_id.equal node proc.Process.origin)) ]
        ~node ~subsys:"stramash_fault" ~op:"fault" ()
    in
    let result = handle_fault_untraced t ~proc ~node ~vaddr ~write in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("ok", match result with Ok () -> "true" | Error _ -> "false") ]
      sp;
    result
  end

let handle_fault_exn t ~proc ~node ~vaddr ~write =
  Fault.get_exn (handle_fault t ~proc ~node ~vaddr ~write)
