(** Minimal/secure kernel-level data sharing (paper §5, §6 "Prototype
    Limitations").

    A fused kernel must not let a compromised peer roam its entire
    memory: the paper postulates that only *required* data structures be
    shared, everything else protected by hardware (MPU/MMU/IOMMU), and —
    to make such protection practical — that shared structures be packed
    into contiguous physical memory so the protected window is small and
    simple to describe.

    This module implements that mechanism: a per-kernel {e shared window}
    of contiguous frames into which kernel objects are packed (moving
    pages to reorganise data, as the prototype does), plus an MPU-style
    checker that validates remote accesses against the window. The
    Stramash prototype implements the packing but leaves enforcement to
    future work (§6); we provide both, with enforcement off by default to
    match the prototype. *)

type t

val create :
  Stramash_kernel.Env.t ->
  owner:Stramash_sim.Node_id.t ->
  window_bytes:int ->
  t
(** Reserve a contiguous window in the owner kernel's memory. *)

val window : t -> Stramash_mem.Layout.region
val owner : t -> Stramash_sim.Node_id.t

val pack : t -> src:int -> bytes:int -> (int, [ `Window_full ]) result
(** Move [bytes] of kernel data from [src] into the window (the owner
    pays the copy through the cache), returning the new packed address.
    Subsequent remote accessor functions should use the packed address. *)

val packed_bytes : t -> int
val objects_packed : t -> int

val remote_access_allowed : t -> paddr:int -> bool
(** The MPU check a remote kernel's access would face: inside the shared
    window (or outside the owner's memory entirely) is allowed. *)

val check_remote_access :
  t -> actor:Stramash_sim.Node_id.t -> paddr:int -> (unit, [ `Protection_violation ]) result
(** Enforcement entry point: owner accesses always pass; remote accesses
    must fall inside the window. Violations are counted. *)

val violations : t -> int
