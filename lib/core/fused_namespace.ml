module Namespace = Stramash_kernel.Namespace

let fuse_kernels a _b = Namespace.fuse a.Stramash_kernel.Kernel.ns

let same_environment = Namespace.same_view

let cpu_list ~cores_per_node = Namespace.fused_cpu_list ~cores_per_node
