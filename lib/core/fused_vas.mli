(** Fused kernel virtual address space (paper §6.4).

    Stramash-Linux aligns the kernel virtual ranges of the two instances —
    the x86 kernel's vmalloc range is moved to coincide with the Arm
    kernel's direct map and vice versa — so a kernel pointer produced on
    one instance dereferences to the same physical memory on the other.
    We model the result: both kernels direct-map all of physical memory at
    the same [direct_map_base], so fused pointers are interchangeable and
    accessor functions need no pointer arithmetic beyond this mapping. *)

val direct_map_base : int
(** Base of the shared kernel direct map (all 8 GB of physical memory). *)

val kernel_vaddr_of_paddr : int -> int
val paddr_of_kernel_vaddr : int -> int
(** Raises [Invalid_argument] for pointers outside the fused window. *)

val is_fused_pointer : int -> bool

val randomized_layout_disabled : bool
(** The paper disables structure-layout randomisation so shared structs
    decode identically on both kernels; we record the same invariant. *)
