module Layout = Stramash_mem.Layout

let direct_map_base = 0x8000_0000_00 (* 512 GB mark: clear of user space *)

let kernel_vaddr_of_paddr paddr =
  assert (paddr >= 0 && paddr < Layout.total_memory);
  direct_map_base + paddr

let is_fused_pointer vaddr =
  vaddr >= direct_map_base && vaddr < direct_map_base + Layout.total_memory

let paddr_of_kernel_vaddr vaddr =
  if not (is_fused_pointer vaddr) then
    invalid_arg (Printf.sprintf "Fused_vas: 0x%x outside the fused window" vaddr);
  vaddr - direct_map_base

let randomized_layout_disabled = true
