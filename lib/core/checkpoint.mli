(** Per-node kernel checkpoint/restore for the crash-stop failure model.

    At a kill, the dying node's derived kernel structures — per-process
    page tables, VMA trees, and its futex waiter queues — are serialised
    out of simulated physical memory into a flat text blob; the in-memory
    originals are then discarded (the table root is zeroed, so the old
    tree is unreachable and a restore cannot cheat by re-reading it). On
    restart the blob is decoded and the structures re-materialised from
    scratch: fresh table pages, fresh VMA structs, fresh lock word. What
    survives a crash is only the memory *inventory* (frame-allocator
    bitmaps and heap bump pointers, which live in coherent shared memory)
    — everything a kernel derives is rebuilt, which is what makes the
    round-trip equality test meaningful.

    Capture is silent (the dead node can be charged nothing); restore is
    billed to the restarting node through the normal cache-simulated
    page-table io, so recovery has an honest cost. *)

type pte_image = { p_vaddr : int; p_frame : int; p_writable : bool; p_remote_owned : bool }

type vma_image = {
  v_start : int;
  v_end : int;
  v_kind : Stramash_kernel.Vma.kind;
  v_writable : bool;
}

type proc_image = { pid : int; vmas : vma_image list; ptes : pte_image list }

type futex_image = { f_home : Stramash_sim.Node_id.t; f_uaddr : int; f_tid : int }
(** A parked waiter: which kernel's bucket it sat in, the futex word, and
    the waiting thread. *)

type image = {
  node : Stramash_sim.Node_id.t;
  procs : proc_image list;
  futexes : futex_image list;
}

val capture :
  Stramash_kernel.Env.t ->
  node:Stramash_sim.Node_id.t ->
  procs:Stramash_kernel.Process.t list ->
  futexes:futex_image list ->
  image
(** Deterministic snapshot of [node]'s kernel structures: processes sorted
    by pid, leaves in ascending vaddr order. [futexes] is supplied by the
    caller, which knows which drained waiters belong to the dead node. *)

val encode : image -> string
(** Flat line-oriented text blob, stable across runs. The first line is
    a [stramash-checkpoint v2 <body-bytes> <crc32-hex>] header covering
    everything after it, so a torn or bit-flipped image is rejected by
    {!decode} instead of being silently restored. *)

type decode_error =
  | Bad_magic  (** the blob does not start with the checkpoint magic *)
  | Unsupported_version of string
  | Truncated of { expected : int; got : int }
      (** fewer body bytes than the header promises — a torn write *)
  | Checksum_mismatch of { expected : int; got : int }
      (** right length, wrong CRC32 — bit rot inside the image *)
  | Malformed of string  (** header checks passed but a body record is bad *)

val decode_error_to_string : decode_error -> string

val decode : string -> (image, decode_error) result
(** Header checks run in order (magic, version, length, checksum) before
    any body parsing, so every truncation or corruption of a valid blob
    maps to a typed error — never an exception or a wrong image. *)

val discard :
  Stramash_kernel.Env.t ->
  node:Stramash_sim.Node_id.t ->
  procs:Stramash_kernel.Process.t list ->
  unit
(** Crash teardown: unlink every process mm on [node] and zero each page
    table root. Frames and kernel-heap lines are not freed — the
    allocators are the surviving memory inventory. *)

type restore_stats = { restored_procs : int; restored_vmas : int; restored_pages : int }

val restore :
  Stramash_kernel.Env.t -> procs:Stramash_kernel.Process.t list -> image -> restore_stats
(** Re-materialise the image on its node: fresh page tables and VMA sets,
    installed via {!Stramash_kernel.Process.set_mm}. Processes no longer
    in [procs] (exited during the downtime) are skipped. Futex re-queueing
    is the caller's job: it must filter waiters woken while the node was
    down. *)
