module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Addr = Stramash_mem.Addr
module Phys_mem = Stramash_mem.Phys_mem
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Futex = Stramash_kernel.Futex
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Page_table = Stramash_kernel.Page_table
module Ipi = Stramash_interconnect.Ipi
module Trace = Stramash_obs.Trace

type t = { env : Env.t; faults : Stramash_fault.t; mutable ipis : int }

let create env faults = { env; faults; ipis = 0 }
let ipis_sent t = t.ipis

(* Waiters normally queue in the origin kernel's bucket. While the origin
   is crash-stopped its buckets are unreachable, so futex traffic homes on
   the survivor; after the restart, wakes drain both homes (see
   [wake_acting]) so nothing queued during the downtime is stranded. *)
let home_node t ~origin =
  if Env.node_alive t.env origin then origin else Node_id.other origin

(* Resolve the futex word's physical address through the caller's own page
   table, faulting the page in if necessary (shared frame — the word is the
   same memory on both kernels). *)
let word_paddr t ~proc ~node ~uaddr =
  let mm = Stramash_fault.ensure_mm t.faults ~proc ~node in
  let io = Env.pt_io t.env ~actor:node ~owner:node in
  let frame =
    match Page_table.walk mm.Process.pgtable io ~vaddr:uaddr with
    | Some (frame, _) -> frame
    | None -> (
        (* A futex on an unmapped or unmappable word cannot proceed; the
           typed error crosses to the CLI edge as an exception. *)
        Stramash_fault.handle_fault_exn t.faults ~proc ~node ~vaddr:uaddr ~write:true;
        match Page_table.walk mm.Process.pgtable io ~vaddr:uaddr with
        | Some (frame, _) -> frame
        | None ->
            invalid_arg
              (Printf.sprintf "Stramash_futex: fault handler left uaddr=0x%x unmapped" uaddr))
  in
  (frame lsl Addr.page_shift) + Addr.page_offset uaddr

let wait_acting t ~actor ~proc ~thread ~uaddr ~expected =
  let meter = Env.meter t.env actor in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get meter)
        ~tags:[ ("cross", string_of_bool (not (Node_id.equal actor proc.Process.origin))) ]
        ~flow_root:true ~node:actor ~subsys:"futex" ~op:"wait" ()
    else Trace.null
  in
  let t0 = Meter.get meter in
  let home = home_node t ~origin:proc.Process.origin in
  let kernel = Env.kernel t.env home in
  (* Direct access to the home (normally origin) kernel's futex bucket:
     CAS + queue ops by the acting node (remote latency when the actor is
     not the bucket's home). *)
  let bucket = Futex.bucket_addr kernel.Kernel.futexes ~uaddr in
  Env.charge_atomic t.env actor ~paddr:bucket;
  let wp = word_paddr t ~proc ~node:actor ~uaddr in
  Env.charge_load t.env actor ~paddr:wp;
  let value = Phys_mem.read t.env.Env.phys wp ~width:4 in
  let outcome =
    if Int64.logand value 0xFFFFFFFFL = Int64.logand expected 0xFFFFFFFFL then begin
      Futex.enqueue_waiter kernel.Kernel.futexes ~uaddr ~tid:thread.Thread.tid;
      Env.charge_store t.env actor ~paddr:bucket;
      Env.charge_store t.env actor ~paddr:bucket;
      `Block
    end
    else begin
      Env.charge_store t.env actor ~paddr:bucket;
      `Proceed
    end
  in
  if sp != Trace.null then begin
    let t1 = Meter.get meter in
    (* Bucket ops against another node's futex hash are coherent remote
       atomics: the whole sequence is serialized behind the home node. *)
    if not (Node_id.equal home actor) then Trace.add_blocked ~node:actor ~subsys:"futex" (t1 - t0);
    Trace.close ~at:t1
      ~tags:[ ("outcome", match outcome with `Block -> "block" | `Proceed -> "proceed") ]
      sp
  end;
  outcome

let wait t ~proc ~thread ~uaddr ~expected =
  wait_acting t ~actor:thread.Thread.node ~proc ~thread ~uaddr ~expected

let wake_acting t ~actor ~proc ~threads ~uaddr ~nwake =
  let node = actor in
  let meter = Env.meter t.env node in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get meter) ~flow_root:true ~node ~subsys:"futex" ~op:"wake" ()
    else Trace.null
  in
  let t0 = Meter.get meter in
  let home = home_node t ~origin:proc.Process.origin in
  let drain_bucket knode n =
    if n <= 0 then []
    else begin
      let futexes = (Env.kernel t.env knode).Kernel.futexes in
      let bucket = Futex.bucket_addr futexes ~uaddr in
      Env.charge_atomic t.env node ~paddr:bucket;
      let rec collect n acc =
        if n = 0 then List.rev acc
        else
          match Futex.dequeue_waiter futexes ~uaddr with
          | None -> List.rev acc
          | Some tid ->
              Env.charge_load t.env node ~paddr:bucket;
              collect (n - 1) (tid :: acc)
      in
      let woken = collect n [] in
      Env.charge_store t.env node ~paddr:bucket;
      woken
    end
  in
  let woken = drain_bucket home nwake in
  (* Under a chaos schedule waiters can sit in three more places: the
     other live kernel's bucket (queued there while this one was down),
     and the downtime holding area (their own node died mid-wait). Plain
     runs never probe these — the paths stay bit-identical. *)
  let woken =
    if not (Stramash_fault.chaos_armed t.faults) then woken
    else begin
      let alt = Node_id.other home in
      let woken =
        if Env.node_alive t.env alt then
          woken @ drain_bucket alt (nwake - List.length woken)
        else woken
      in
      woken @ Stramash_fault.wake_held t.faults ~uaddr ~limit:(nwake - List.length woken)
    end
  in
  (* One cross-ISA IPI per waiter parked on the other kernel instance —
     unless that instance is dead (the wake takes effect at restart). *)
  List.iter
    (fun tid ->
      match List.find_opt (fun th -> th.Thread.tid = tid) threads with
      | Some th
        when (not (Node_id.equal th.Thread.node node))
             && Env.node_alive t.env th.Thread.node ->
          t.ipis <- t.ipis + 1;
          Meter.add (Env.meter t.env node) (Ipi.cross_isa_ipi_cycles / 8);
          (* triggering the IPI is cheap for the sender; delivery latency
             lands on the waiter via the machine's wake logic *)
          Trace.instant ~node ~subsys:"ipi" ~op:"futex_wake" ()
      | Some _ | None -> ())
    woken;
  if sp != Trace.null then begin
    let t1 = Meter.get meter in
    if not (Node_id.equal home node) then Trace.add_blocked ~node ~subsys:"futex" (t1 - t0);
    Trace.close ~at:t1
      ~tags:[ ("woken", string_of_int (List.length woken)) ]
      sp
  end;
  woken

let wake t ~proc ~thread ~threads ~uaddr ~nwake =
  wake_acting t ~actor:thread.Stramash_kernel.Thread.node ~proc ~threads ~uaddr ~nwake
