module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Env = Stramash_kernel.Env
module Layout = Stramash_mem.Layout
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Trace = Stramash_obs.Trace

type t = {
  env : Env.t;
  lock_addr : int;
  mutable held_by : Node_id.t option;
  mutable acquisitions : int;
  mutable remote_acquisitions : int;
}

let create env ~lock_addr =
  { env; lock_addr; held_by = None; acquisitions = 0; remote_acquisitions = 0 }

let lock_addr t = t.lock_addr
let is_held t = t.held_by <> None

let with_lock t ~actor f =
  if t.held_by <> None then
    invalid_arg "Stramash_ptl.with_lock: lock already held (kernel entry not serialised)";
  let traced = Trace.enabled () in
  let meter = Env.meter t.env actor in
  let acq =
    if traced then Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"ptl" ~op:"acquire" ()
    else Trace.null
  in
  Env.charge_atomic t.env actor ~paddr:t.lock_addr;
  t.held_by <- Some actor;
  t.acquisitions <- t.acquisitions + 1;
  let remote =
    match Layout.locality t.env.Env.hw_model ~node:actor t.lock_addr with
    | Layout.Remote ->
        t.remote_acquisitions <- t.remote_acquisitions + 1;
        true
    | Layout.Local -> false
  in
  if traced then
    Trace.close ~at:(Meter.get meter) ~tags:[ ("remote", string_of_bool remote) ] acq;
  let crit =
    if traced then Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"ptl" ~op:"critical" ()
    else Trace.null
  in
  let finish () =
    Env.charge_store t.env actor ~paddr:t.lock_addr;
    t.held_by <- None;
    if traced then Trace.close ~at:(Meter.get meter) crit
  in
  match f () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

(* Like [with_lock], but under a fault plan the CAS may time out: the
   actor pays a backoff and retries up to the plan's cap, after which the
   caller gets a typed error and degrades (the fault handler then takes
   the origin-fallback path rather than crashing). *)
let try_with_lock t ~actor ?inject f =
  match inject with
  | None -> Ok (with_lock t ~actor f)
  | Some plan ->
      let meter = Env.meter t.env actor in
      let sp =
        if Trace.enabled () then
          Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"ptl" ~op:"contend" ()
        else Trace.null
      in
      let cfg = Plan.config plan in
      let rec acquire attempt burned =
        if Plan.ptl_acquire_timed_out plan then begin
          let pay = cfg.Plan.ptl_backoff_cycles in
          Meter.add (Env.meter t.env actor) pay;
          if attempt + 1 >= cfg.Plan.ptl_max_attempts then
            Error (Fault.Lock_timeout { lock_addr = t.lock_addr; attempts = attempt + 1 })
          else acquire (attempt + 1) (burned + pay)
        end
        else begin
          if burned > 0 then Plan.record_recovery plan ~cycles:burned;
          Ok (with_lock t ~actor f)
        end
      in
      let result = acquire 0 0 in
      if sp != Trace.null then
        Trace.close ~at:(Meter.get meter)
          ~tags:[ ("ok", match result with Ok _ -> "true" | Error _ -> "false") ]
          sp;
      result

let acquisitions t = t.acquisitions
let remote_acquisitions t = t.remote_acquisitions
