module Node_id = Stramash_sim.Node_id
module Env = Stramash_kernel.Env
module Layout = Stramash_mem.Layout

type t = {
  env : Env.t;
  lock_addr : int;
  mutable held_by : Node_id.t option;
  mutable acquisitions : int;
  mutable remote_acquisitions : int;
}

let create env ~lock_addr =
  { env; lock_addr; held_by = None; acquisitions = 0; remote_acquisitions = 0 }

let lock_addr t = t.lock_addr

let with_lock t ~actor f =
  assert (t.held_by = None);
  Env.charge_atomic t.env actor ~paddr:t.lock_addr;
  t.held_by <- Some actor;
  t.acquisitions <- t.acquisitions + 1;
  (match Layout.locality t.env.Env.hw_model ~node:actor t.lock_addr with
  | Layout.Remote -> t.remote_acquisitions <- t.remote_acquisitions + 1
  | Layout.Local -> ());
  let finish () =
    Env.charge_store t.env actor ~paddr:t.lock_addr;
    t.held_by <- None
  in
  match f () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

let acquisitions t = t.acquisitions
let remote_acquisitions t = t.remote_acquisitions
