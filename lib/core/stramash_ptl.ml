module Node_id = Stramash_sim.Node_id
module Meter = Stramash_sim.Meter
module Env = Stramash_kernel.Env
module Layout = Stramash_mem.Layout
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Trace = Stramash_obs.Trace

(* Ownership is a fencing token, not a bare node id: the epoch is the
   holder's liveness epoch at acquisition time. Every crash and every
   restart bumps the node's epoch, so a token minted before a crash can
   never match the node's current epoch again — a zombie restart replaying
   its pre-crash token is rejected instead of silently re-acquiring stale
   ownership. *)
type token = { node : Node_id.t; epoch : int }

type t = {
  env : Env.t;
  lock_addr : int;
  mutable held_by : token option;
  mutable acquisitions : int;
  mutable remote_acquisitions : int;
  mutable breaks : int;
  mutable stale_rejections : int;
}

let create env ~lock_addr =
  {
    env;
    lock_addr;
    held_by = None;
    acquisitions = 0;
    remote_acquisitions = 0;
    breaks = 0;
    stale_rejections = 0;
  }

let lock_addr t = t.lock_addr
let is_held t = t.held_by <> None
let holder t = Option.map (fun tok -> tok.node) t.held_by
let mint t ~actor = { node = actor; epoch = Env.node_epoch t.env actor }

let with_lock t ~actor f =
  if t.held_by <> None then
    invalid_arg "Stramash_ptl.with_lock: lock already held (kernel entry not serialised)";
  let traced = Trace.enabled () in
  let meter = Env.meter t.env actor in
  let acq =
    if traced then
      Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"ptl" ~op:"acquire" ()
    else Trace.null
  in
  let acq_start = Meter.get meter in
  Env.charge_atomic t.env actor ~paddr:t.lock_addr;
  t.held_by <- Some (mint t ~actor);
  t.acquisitions <- t.acquisitions + 1;
  let remote =
    match Layout.locality t.env.Env.hw_model ~node:actor t.lock_addr with
    | Layout.Remote ->
        t.remote_acquisitions <- t.remote_acquisitions + 1;
        true
    | Layout.Local -> false
  in
  if traced then begin
    let acq_end = Meter.get meter in
    (* A remote acquisition is one coherent atomic serialized behind the
       other node's cache line — the whole CAS is blocked-on-remote. *)
    if remote then Trace.add_blocked ~node:actor ~subsys:"ptl" (acq_end - acq_start);
    Trace.close ~at:acq_end ~tags:[ ("remote", string_of_bool remote) ] acq
  end;
  let crit =
    if traced then Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"ptl" ~op:"critical" ()
    else Trace.null
  in
  let finish () =
    Env.charge_store t.env actor ~paddr:t.lock_addr;
    t.held_by <- None;
    if traced then Trace.close ~at:(Meter.get meter) crit
  in
  match f () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

(* Like [with_lock], but under a fault plan the CAS may time out: the
   actor pays a backoff and retries up to the plan's cap, after which the
   caller gets a typed error and degrades (the fault handler then takes
   the origin-fallback path rather than crashing). *)
let try_with_lock t ~actor ?inject f =
  match inject with
  | None -> Ok (with_lock t ~actor f)
  | Some plan ->
      let meter = Env.meter t.env actor in
      let sp =
        if Trace.enabled () then
          Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"ptl"
            ~op:"contend" ()
        else Trace.null
      in
      let cfg = Plan.config plan in
      let peer = Node_id.other actor in
      let rec acquire attempt burned =
        let now = Meter.get meter in
        if Plan.ptl_acquire_timed_out plan then begin
          Plan.observe_failure plan ~peer ~now;
          let pay = cfg.Plan.ptl_backoff_cycles in
          Meter.add (Env.meter t.env actor) pay;
          if attempt + 1 >= cfg.Plan.ptl_max_attempts then
            Error (Fault.Lock_timeout { lock_addr = t.lock_addr; attempts = attempt + 1 })
          else acquire (attempt + 1) (burned + pay)
        end
        else begin
          if burned > 0 then Plan.record_recovery plan ~cycles:burned;
          (* A lock-holder stall window models the peer sitting on the
             PTL: the actor spins that long before its CAS lands. *)
          let stall = Plan.ptl_stall_extra plan ~now in
          if stall > 0 then Meter.add meter stall;
          let acquire_cycles = burned + stall + cfg.Plan.ptl_backoff_cycles in
          Plan.record_op plan ~op:"ptl_acquire" ~cycles:acquire_cycles;
          Plan.observe_service plan ~peer ~cycles:acquire_cycles
            ~nominal:cfg.Plan.ptl_backoff_cycles ~now:(Meter.get meter);
          Ok (with_lock t ~actor f)
        end
      in
      let result = acquire 0 0 in
      if sp != Trace.null then
        Trace.close ~at:(Meter.get meter)
          ~tags:[ ("ok", match result with Ok _ -> "true" | Error _ -> "false") ]
          sp;
      result

let acquisitions t = t.acquisitions
let remote_acquisitions t = t.remote_acquisitions
let breaks t = t.breaks
let stale_rejections t = t.stale_rejections

(* --- explicit token protocol (crash-stop model) ------------------------- *)

let token_current t tok = tok.epoch = Env.node_epoch t.env tok.node

let stale t tok =
  t.stale_rejections <- t.stale_rejections + 1;
  Error (Fault.Stale_token { lock_addr = t.lock_addr; node = Node_id.to_string tok.node; epoch = tok.epoch })

let acquire t ~actor =
  if not (Env.node_alive t.env actor) then
    Error (Fault.Node_dead { node = Node_id.to_string actor; op = "ptl_acquire" })
  else
    match t.held_by with
    | Some _ -> Error (Fault.Lock_timeout { lock_addr = t.lock_addr; attempts = 1 })
    | None ->
        Env.charge_atomic t.env actor ~paddr:t.lock_addr;
        let tok = mint t ~actor in
        t.held_by <- Some tok;
        t.acquisitions <- t.acquisitions + 1;
        Ok tok

(* A zombie replaying its pre-crash token to claim it still owns the lock.
   The CAS really happens (and is charged), but the fencing epoch check
   rejects any token from a superseded incarnation. *)
let reacquire t ~token =
  if not (Env.node_alive t.env token.node) then
    Error (Fault.Node_dead { node = Node_id.to_string token.node; op = "ptl_reacquire" })
  else begin
    Env.charge_atomic t.env token.node ~paddr:t.lock_addr;
    if not (token_current t token) then stale t token
    else
      match t.held_by with
      | Some held when held = token -> Ok ()
      | Some _ -> Error (Fault.Lock_timeout { lock_addr = t.lock_addr; attempts = 1 })
      | None ->
          t.held_by <- Some token;
          t.acquisitions <- t.acquisitions + 1;
          Ok ()
  end

let release t ~token =
  if not (Env.node_alive t.env token.node) then
    Error (Fault.Node_dead { node = Node_id.to_string token.node; op = "ptl_release" })
  else begin
    Env.charge_store t.env token.node ~paddr:t.lock_addr;
    if not (token_current t token) then stale t token
    else
      match t.held_by with
      | Some held when held = token ->
          t.held_by <- None;
          Ok ()
      | _ -> stale t token
  end

(* Survivor-side lock break: the word is force-cleared by [actor] once the
   watchdog has declared the holder dead. The store is real work and is
   charged to the breaker. *)
let break_dead t ~actor =
  match t.held_by with
  | Some tok when not (Env.node_alive t.env tok.node) ->
      Env.charge_store t.env actor ~paddr:t.lock_addr;
      t.held_by <- None;
      t.breaks <- t.breaks + 1;
      if Trace.enabled () then
        Trace.instant ~node:actor ~subsys:"ptl" ~op:"break_dead"
          ~tags:
            [
              ("holder", Node_id.to_string tok.node);
              ("epoch", string_of_int tok.epoch);
              ("lock", Printf.sprintf "0x%x" t.lock_addr);
            ]
          ();
      true
  | _ -> false
