module Env = Stramash_kernel.Env
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Pte = Stramash_kernel.Pte
module Vma = Stramash_kernel.Vma

(* The io's allocator must never fire on read-only walks; owner is
   irrelevant there, and install_leaf never allocates by construction. *)
let io env ~actor =
  {
    Page_table.phys = env.Env.phys;
    charge_read = (fun paddr -> Env.charge_load env actor ~paddr);
    charge_write = (fun paddr -> Env.charge_store env actor ~paddr);
    alloc_table = (fun () -> assert false);
  }

let walk env ~actor ~owner_mm ~vaddr =
  Page_table.walk owner_mm.Process.pgtable (io env ~actor) ~vaddr

let upper_levels_present env ~actor ~owner_mm ~vaddr =
  Page_table.upper_levels_present owner_mm.Process.pgtable (io env ~actor) ~vaddr

let install_leaf env ~actor ~owner_mm ~vaddr ~frame ~remote_owned =
  let flags = { Pte.default_flags with remote_owned } in
  Page_table.set_leaf_if_upper_present owner_mm.Process.pgtable (io env ~actor) ~vaddr ~frame
    flags

let find_vma env ~actor ~owner_mm ~vaddr =
  Env.charge_atomic env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  let charge v = Env.charge_load env actor ~paddr:v.Vma.struct_addr in
  let result = Vma.find ~visit:charge owner_mm.Process.vmas ~vaddr in
  Env.charge_store env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  result
