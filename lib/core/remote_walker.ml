module Meter = Stramash_sim.Meter
module Node_id = Stramash_sim.Node_id
module Env = Stramash_kernel.Env
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Pte = Stramash_kernel.Pte
module Vma = Stramash_kernel.Vma
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Trace = Stramash_obs.Trace

(* The io's allocator must never fire on read-only walks; owner is
   irrelevant there, and install_leaf never allocates by construction. *)
let io env ~actor =
  {
    Page_table.phys = env.Env.phys;
    charge_read = (fun paddr -> Env.charge_load env actor ~paddr);
    charge_write = (fun paddr -> Env.charge_store env actor ~paddr);
    alloc_table = (fun () -> invalid_arg "Remote_walker: remote walks never allocate tables");
  }

let walk env ~actor ~owner_mm ~vaddr =
  if not (Trace.enabled ()) then Page_table.walk owner_mm.Process.pgtable (io env ~actor) ~vaddr
  else begin
    let meter = Env.meter env actor in
    let sp = Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"remote_walker" ~op:"walk" () in
    let result = Page_table.walk owner_mm.Process.pgtable (io env ~actor) ~vaddr in
    Trace.close ~at:(Meter.get meter)
      ~tags:[ ("present", match result with Some _ -> "1" | None -> "0") ]
      sp;
    result
  end

(* [walk] with injectable transient read failures: a faulted read costs
   the retry delay and is re-issued up to the plan's cap, after which the
   caller receives a typed error and degrades to the origin-fallback RPC
   (§9.2.3) instead of crashing. *)
let walk_checked env ~actor ~owner_mm ~vaddr ?inject () =
  match inject with
  | None -> Ok (walk env ~actor ~owner_mm ~vaddr)
  | Some plan ->
      let meter = Env.meter env actor in
      let sp =
        if Trace.enabled () then
          Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"remote_walker" ~op:"request" ()
        else Trace.null
      in
      let cfg = Plan.config plan in
      (* In the two-node system the table owner is always the other
         kernel: its health absorbs walk outcomes, and a slow-down
         window on it stretches the coherent reads the walk issues. *)
      let peer = Node_id.other actor in
      let rec attempt_walk attempt burned =
        if Plan.walk_read_faulted plan then begin
          Plan.observe_failure plan ~peer ~now:(Meter.get meter);
          let pay = cfg.Plan.walk_retry_cycles in
          Meter.add (Env.meter env actor) pay;
          if attempt + 1 >= cfg.Plan.walk_max_attempts then
            Error (Fault.Walk_failed { vaddr; attempts = attempt + 1 })
          else begin
            Plan.note_walk_retry plan;
            attempt_walk (attempt + 1) (burned + pay)
          end
        end
        else begin
          if burned > 0 then Plan.record_recovery plan ~cycles:burned;
          let t0 = Meter.get meter in
          let r = walk env ~actor ~owner_mm ~vaddr in
          let base = Meter.get meter - t0 in
          let extra = Plan.inflate plan ~node:peer ~now:t0 ~cycles:base in
          if extra > 0 then Meter.add meter extra;
          Plan.record_op plan ~op:"remote_walk" ~cycles:(burned + base + extra);
          Plan.observe_service plan ~peer ~cycles:(base + extra) ~nominal:(max 1 base)
            ~now:(Meter.get meter);
          Ok r
        end
      in
      let result = attempt_walk 0 0 in
      if sp != Trace.null then
        Trace.close ~at:(Meter.get meter)
          ~tags:[ ("ok", match result with Ok _ -> "true" | Error _ -> "false") ]
          sp;
      result

let upper_levels_present env ~actor ~owner_mm ~vaddr =
  Page_table.upper_levels_present owner_mm.Process.pgtable (io env ~actor) ~vaddr

let install_leaf env ~actor ~owner_mm ~vaddr ~frame ~remote_owned =
  let flags = { Pte.default_flags with remote_owned } in
  if not (Trace.enabled ()) then
    Page_table.set_leaf_if_upper_present owner_mm.Process.pgtable (io env ~actor) ~vaddr ~frame
      flags
  else begin
    let meter = Env.meter env actor in
    let sp =
      Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"remote_walker" ~op:"install_leaf" ()
    in
    let result =
      Page_table.set_leaf_if_upper_present owner_mm.Process.pgtable (io env ~actor) ~vaddr ~frame
        flags
    in
    Trace.close ~at:(Meter.get meter) sp;
    result
  end

let find_vma env ~actor ~owner_mm ~vaddr =
  let meter = Env.meter env actor in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get meter) ~node:actor ~subsys:"remote_walker" ~op:"find_vma" ()
    else Trace.null
  in
  Env.charge_atomic env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  let charge v = Env.charge_load env actor ~paddr:v.Vma.struct_addr in
  let result = Vma.find ~visit:charge owner_mm.Process.vmas ~vaddr in
  Env.charge_store env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  if sp != Trace.null then Trace.close ~at:(Meter.get meter) sp;
  result
