module Meter = Stramash_sim.Meter
module Node_id = Stramash_sim.Node_id
module Env = Stramash_kernel.Env
module Page_table = Stramash_kernel.Page_table
module Process = Stramash_kernel.Process
module Pte = Stramash_kernel.Pte
module Vma = Stramash_kernel.Vma
module Fault = Stramash_fault_inject.Fault
module Plan = Stramash_fault_inject.Plan
module Trace = Stramash_obs.Trace

(* The io's allocator must never fire on read-only walks; owner is
   irrelevant there, and install_leaf never allocates by construction. *)
let io env ~actor =
  {
    Page_table.phys = env.Env.phys;
    charge_read = (fun paddr -> Env.charge_load env actor ~paddr);
    charge_write = (fun paddr -> Env.charge_store env actor ~paddr);
    alloc_table = (fun () -> invalid_arg "Remote_walker: remote walks never allocate tables");
  }

(* A remote walk is the requester loading the owner's page-table lines
   over the coherent interconnect — there is no responder software, so the
   responder-side hops of the causal path are synthesized from the
   latency table: each read's remote premium ([remote_mem - mem]) is
   round-trip wire, the local-DRAM share is the remote memory system
   serving the line. Estimates are clamped to the observed span (reads
   that hit a local cache cost less than the table says), and the tiling
   [self | request wire | remote serve | reply wire] always sums to the
   walk's end-to-end duration. *)
let synth_remote_hops env ~actor ~flow ~subsys ~reads t0 t1 =
  if flow <> 0 && reads > 0 && t1 > t0 then begin
    let total = t1 - t0 in
    let lat = Stramash_cache.Config.latencies (Stramash_cache.Cache_sim.config env.Env.cache) actor in
    let diff = max 0 (lat.Stramash_mem.Latency.remote_mem - lat.Stramash_mem.Latency.mem) in
    let wire = min (total / 2) (reads * diff / 2) in
    let serve = max 0 (min (total - (2 * wire)) (reads * lat.Stramash_mem.Latency.mem)) in
    let peer = Node_id.other actor in
    let s0 = t1 - ((2 * wire) + serve) in
    let hop node sub op ts te =
      if te > ts then
        Trace.with_flow ~node ~flow (fun () ->
            Trace.close ~at:te (Trace.span ~at:ts ~node ~subsys:sub ~op ()))
    in
    hop peer "interconnect" "request" s0 (s0 + wire);
    hop peer subsys "serve" (s0 + wire) (s0 + wire + serve);
    hop actor "interconnect" "reply" (s0 + wire + serve) t1;
    Trace.add_blocked ~node:actor ~subsys ((2 * wire) + serve)
  end

let walk env ~actor ~owner_mm ~vaddr =
  if not (Trace.enabled ()) then Page_table.walk owner_mm.Process.pgtable (io env ~actor) ~vaddr
  else begin
    let meter = Env.meter env actor in
    let sp =
      Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"remote_walker"
        ~op:"walk" ()
    in
    let reads = ref 0 in
    let io =
      let base = io env ~actor in
      {
        base with
        Page_table.charge_read =
          (fun paddr ->
            incr reads;
            base.Page_table.charge_read paddr);
      }
    in
    let t0 = Meter.get meter in
    let result = Page_table.walk owner_mm.Process.pgtable io ~vaddr in
    let t1 = Meter.get meter in
    synth_remote_hops env ~actor ~flow:(Trace.flow_of sp) ~subsys:"remote_walker" ~reads:!reads
      t0 t1;
    Trace.close ~at:t1
      ~tags:[ ("present", match result with Some _ -> "1" | None -> "0") ]
      sp;
    result
  end

(* [walk] with injectable transient read failures: a faulted read costs
   the retry delay and is re-issued up to the plan's cap, after which the
   caller receives a typed error and degrades to the origin-fallback RPC
   (§9.2.3) instead of crashing. *)
let walk_checked env ~actor ~owner_mm ~vaddr ?inject () =
  match inject with
  | None -> Ok (walk env ~actor ~owner_mm ~vaddr)
  | Some plan ->
      let meter = Env.meter env actor in
      let sp =
        if Trace.enabled () then
          Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"remote_walker"
            ~op:"request" ()
        else Trace.null
      in
      let cfg = Plan.config plan in
      (* In the two-node system the table owner is always the other
         kernel: its health absorbs walk outcomes, and a slow-down
         window on it stretches the coherent reads the walk issues. *)
      let peer = Node_id.other actor in
      let rec attempt_walk attempt burned =
        if Plan.walk_read_faulted plan then begin
          Plan.observe_failure plan ~peer ~now:(Meter.get meter);
          let pay = cfg.Plan.walk_retry_cycles in
          Meter.add (Env.meter env actor) pay;
          if attempt + 1 >= cfg.Plan.walk_max_attempts then
            Error (Fault.Walk_failed { vaddr; attempts = attempt + 1 })
          else begin
            Plan.note_walk_retry plan;
            attempt_walk (attempt + 1) (burned + pay)
          end
        end
        else begin
          if burned > 0 then Plan.record_recovery plan ~cycles:burned;
          let t0 = Meter.get meter in
          let r = walk env ~actor ~owner_mm ~vaddr in
          let base = Meter.get meter - t0 in
          let extra = Plan.inflate plan ~node:peer ~now:t0 ~cycles:base in
          if extra > 0 then Meter.add meter extra;
          Plan.record_op plan ~op:"remote_walk" ~cycles:(burned + base + extra);
          Plan.observe_service plan ~peer ~cycles:(base + extra) ~nominal:(max 1 base)
            ~now:(Meter.get meter);
          Ok r
        end
      in
      let result = attempt_walk 0 0 in
      if sp != Trace.null then
        Trace.close ~at:(Meter.get meter)
          ~tags:[ ("ok", match result with Ok _ -> "true" | Error _ -> "false") ]
          sp;
      result

let upper_levels_present env ~actor ~owner_mm ~vaddr =
  Page_table.upper_levels_present owner_mm.Process.pgtable (io env ~actor) ~vaddr

let install_leaf_plain env ~actor ~owner_mm ~vaddr ~frame ~remote_owned =
  let flags = { Pte.default_flags with remote_owned } in
  if not (Trace.enabled ()) then
    Page_table.set_leaf_if_upper_present owner_mm.Process.pgtable (io env ~actor) ~vaddr ~frame
      flags
  else begin
    let meter = Env.meter env actor in
    let sp =
      Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"remote_walker"
        ~op:"install_leaf" ()
    in
    let accesses = ref 0 in
    let io =
      let base = io env ~actor in
      {
        base with
        Page_table.charge_read =
          (fun paddr ->
            incr accesses;
            base.Page_table.charge_read paddr);
        charge_write =
          (fun paddr ->
            incr accesses;
            base.Page_table.charge_write paddr);
      }
    in
    let t0 = Meter.get meter in
    let result =
      Page_table.set_leaf_if_upper_present owner_mm.Process.pgtable io ~vaddr ~frame flags
    in
    let t1 = Meter.get meter in
    synth_remote_hops env ~actor ~flow:(Trace.flow_of sp) ~subsys:"remote_walker"
      ~reads:!accesses t0 t1;
    Trace.close ~at:t1 sp;
    result
  end

(* With a corruption-armed plan, the cross-format PTE encode can go stale
   (the modelled SDC: the published frame number is off by one line). The
   defence is verify-after-install: read the leaf back through the same
   charged walker path and compare it to the frame we meant to publish;
   on mismatch, re-encode the correct leaf. Both the read-back and the
   re-install are billed to [actor], so detection has an honest cost.
   Unarmed plans skip the whole block and stay bit-identical. *)
let install_leaf env ~actor ~owner_mm ~vaddr ~frame ~remote_owned ?inject () =
  match inject with
  | Some plan when Plan.corruption_armed plan ->
      let corrupt = Plan.pte_corrupted plan in
      let first = if corrupt then frame lxor 1 else frame in
      let installed = install_leaf_plain env ~actor ~owner_mm ~vaddr ~frame:first ~remote_owned in
      if installed then begin
        (match Page_table.walk owner_mm.Process.pgtable (io env ~actor) ~vaddr with
        | Some (f, _) when f = frame -> ()
        | _ ->
            ignore (install_leaf_plain env ~actor ~owner_mm ~vaddr ~frame ~remote_owned);
            Plan.note_pte_repair plan;
            if Trace.enabled () then
              Trace.instant ~node:actor ~subsys:"remote_walker" ~op:"pte_repair"
                ~tags:[ ("vaddr", Printf.sprintf "0x%x" vaddr) ]
                ());
        true
      end
      else false
  | _ -> install_leaf_plain env ~actor ~owner_mm ~vaddr ~frame ~remote_owned

let find_vma env ~actor ~owner_mm ~vaddr =
  let meter = Env.meter env actor in
  let sp =
    if Trace.enabled () then
      Trace.span ~at:(Meter.get meter) ~flow_root:true ~node:actor ~subsys:"remote_walker"
        ~op:"find_vma" ()
    else Trace.null
  in
  let accesses = ref 0 in
  let t0 = Meter.get meter in
  Env.charge_atomic env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  incr accesses;
  let charge v =
    incr accesses;
    Env.charge_load env actor ~paddr:v.Vma.struct_addr
  in
  let result = Vma.find ~visit:charge owner_mm.Process.vmas ~vaddr in
  Env.charge_store env actor ~paddr:(Vma.lock_addr owner_mm.Process.vmas);
  incr accesses;
  if sp != Trace.null then begin
    let t1 = Meter.get meter in
    synth_remote_hops env ~actor ~flow:(Trace.flow_of sp) ~subsys:"remote_walker"
      ~reads:!accesses t0 t1;
    Trace.close ~at:t1 sp
  end;
  result
