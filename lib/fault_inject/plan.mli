(** Seeded, deterministic fault plan.

    A plan owns one private SplitMix64 stream per injection site (message
    layer, IPI, remote walker, PTL, frame allocator), all split from a
    single plan seed in a fixed order. Sites with a zero rate never draw,
    so enabling faults at one site does not perturb decisions at another,
    and the plan seed is independent of the workload seed so a no-fault
    run is bit-identical to a run with no plan at all.

    Decision functions both decide and count: every [`Drop]/[`Lost]/true
    verdict bumps the matching counter in {!metrics}, so a campaign report
    needs no extra bookkeeping at the call sites. *)

type node_event = {
  node : Stramash_sim.Node_id.t;
  kill_at : int;  (** wall cycle at (or after) which the node crash-stops *)
  restart_after : int option;
      (** downtime in cycles before the node restarts; [None] = never *)
}

type gray_window = {
  g_node : Stramash_sim.Node_id.t;
  g_start : int;  (** wall cycle the slow-down window opens *)
  g_len : int;
  g_factor : float;
      (** multiplicative service-time inflation while inside the window;
          must be >= 1.0 *)
}

type flap_burst = {
  fl_start : int;
  fl_len : int;
  fl_drop_rate : float;  (** correlated drop probability during the burst *)
  fl_delay_cycles : int;  (** added to every delivery inside the burst *)
}

type ptl_stall = {
  st_start : int;
  st_len : int;
  st_stall_cycles : int;  (** extra hold time per PTL acquire in the window *)
}

type bit_flip = {
  bf_at : int;  (** wall cycle at (or after) which the flip lands *)
  bf_node : int;  (** preferred victim node, as an index into [Node_id.all] *)
  bf_bits : int;
      (** distinct bits flipped in the low byte of one aligned word, in
          [1, 8] — silent value damage, never a wild pointer (high-bit
          corruption of an index traps at the MMU and is not an SDC) *)
}

type scrub_window = {
  sw_start : int;
  sw_len : int;  (** span of wall cycles the background scrubber is active *)
}

type config = {
  msg_drop_rate : float;  (** probability a ring/TCP message attempt is dropped *)
  msg_delay_rate : float;  (** probability of a delivery delay spike *)
  msg_delay_cycles : int;
  msg_timeout_cycles : int;  (** sender-side loss-detection timeout *)
  msg_backoff_base_cycles : int;
  msg_max_attempts : int;  (** retries before escalating to the reliable path *)
  ipi_loss_rate : float;
  ipi_jitter_rate : float;
  ipi_jitter_cycles : int;
  ipi_timeout_cycles : int;  (** receiver falls back to polling after this *)
  walk_fail_rate : float;  (** transient remote PTE read failure *)
  walk_retry_cycles : int;
  walk_max_attempts : int;
  ptl_timeout_rate : float;
  ptl_backoff_cycles : int;
  ptl_max_attempts : int;
  alloc_fail_rate : float;  (** simulated frame-allocator exhaustion *)
  node_events : node_event list;  (** crash-stop kill/restart schedule *)
  heartbeat_interval_cycles : int;
  heartbeat_miss_threshold : int;  (** missed beats before a peer is declared dead *)
  degraded_walk_penalty_cycles : int;
      (** extra cost of a message-based (Popcorn-style) walk while degraded *)
  gray_slow : gray_window list;  (** per-node slow-down windows *)
  gray_flaps : flap_burst list;  (** correlated link-flap episodes *)
  gray_ptl_stalls : ptl_stall list;  (** PTL lock-holder stall windows *)
  msg_dup_rate : float;  (** probability a delivery is duplicated *)
  msg_reorder_rate : float;  (** probability a delivery is reordered *)
  msg_reorder_cycles : int;
  health_enabled : bool;
      (** arm health scoring + circuit breakers (the breaker-on/off A/B
          switch; only takes effect when a gray schedule is armed) *)
  health_alpha : float;  (** EWMA smoothing factor, (0, 1] *)
  breaker_trip_score : float;
  breaker_probe_interval : int;
  breaker_readmit_probes : int;
  backoff_jitter : float;  (** +/- fraction applied to retry backoff *)
  adaptive_timeout_mult : float;
  heartbeat_readmit_beats : int;
      (** consecutive on-time beats before a suspected peer is re-trusted *)
  corrupt_flips : bit_flip list;  (** seeded single/multi-bit flips in tracked frames *)
  corrupt_msg_rate : float;  (** probability a delivery attempt's payload is corrupted *)
  corrupt_msg_truncate_rate : float;  (** probability an attempt arrives truncated *)
  corrupt_ckpt_rate : float;  (** probability a checkpoint blob is torn mid-write *)
  corrupt_pte_rate : float;  (** probability a remote-walker install lands a stale frame *)
  scrub_enabled : bool;  (** arm the background page scrubber (detection only) *)
  scrub_windows : scrub_window list;  (** active spans; empty = always on *)
  scrub_interval_cycles : int;  (** minimum cycles between scrub sweeps *)
  scrub_pages_per_epoch : int;  (** per-sweep page-verification budget *)
}

val default : config
(** All rates zero, no node events: a plan built from [default] injects
    nothing. *)

val validate : config -> (unit, string) result
(** Full structural validation: rates in [0, 1], cycle counts
    non-negative, attempt counts >= 1, non-overlapping [node_events],
    per-node [gray_slow] windows and [scrub_windows], in-range flip
    events (bits in [1, 8], node index within [Node_id.all]), sane
    health parameters. CLI entry points call this before building a
    machine so a bad flag fails fast with a message instead of deep
    inside a run. *)

val config_fingerprint : config -> int
(** Structural hash of the whole config, echoed next to the seed in
    campaign JSON output for reproducibility. *)

type t

val create : seed:int64 -> config -> t
(** Runs {!validate}, then normalizes [node_events] (sorted by kill
    time).
    @raise Invalid_argument on a malformed config. *)

val config : t -> config
val metrics : t -> Stramash_sim.Metrics.registry
val recovery_histogram : t -> Stramash_sim.Metrics.Histogram.t

(** {2 Message layer} *)

val msg_attempt : t -> [ `Deliver of int | `Drop ]
(** Verdict for one transmission attempt; [`Deliver extra] carries the
    injected delay in cycles (0 when on time). *)

val msg_backoff : t -> attempt:int -> int
(** Cycles the sender burns on attempt [attempt] (0-based): detection
    timeout plus exponential backoff. *)

val msg_attempts_exhausted : t -> attempt:int -> bool
val note_msg_retry : t -> unit
val note_msg_escalation : t -> unit

(** {2 IPI} *)

val ipi_delivery : t -> [ `On_time | `Jitter of int | `Lost ]
val ipi_timeout_cycles : t -> int

(** {2 Remote walker} *)

val walk_read_faulted : t -> bool
val note_walk_retry : t -> unit

(** {2 PTL} *)

val ptl_acquire_timed_out : t -> bool

(** {2 Frame allocator} *)

val alloc_denied : t -> bool
val note_hotplug_recovery : t -> unit
val note_fallback_escalation : t -> unit

(** {2 Recovery accounting} *)

val record_recovery : t -> cycles:int -> unit

(** {2 Crash-stop node failures}

    The schedule itself is data; the runner interprets it at quantum
    boundaries. The [note_*] functions centralise chaos counters in the
    plan's registry so campaign reports and [--metrics-json] see one
    consistent namespace. *)

val node_events : t -> node_event list
(** Sorted by kill time. *)

val chaos_armed : t -> bool
val heartbeat_interval_cycles : t -> int
val heartbeat_miss_threshold : t -> int
val heartbeat_readmit_beats : t -> int
val degraded_walk_penalty_cycles : t -> int

val note_detection_latency : t -> cycles:int -> unit
(** Watchdog detected a dead peer [cycles] after it actually died. *)

val note_node_death : t -> Stramash_sim.Node_id.t -> unit
val note_node_restart : t -> Stramash_sim.Node_id.t -> unit
val note_watchdog_detection : t -> Stramash_sim.Node_id.t -> unit
val note_lock_break : t -> unit
val note_stale_token : t -> unit
val note_waiter_parked : t -> unit
val note_waiter_requeued : t -> unit
val note_blocks_reclaimed : t -> int -> unit
val note_blocks_orphaned : t -> int -> unit
val note_degraded_walk : t -> unit
val note_dead_node_message : t -> unit
val add_downtime_cycles : t -> cycles:int -> unit
val add_degraded_cycles : t -> cycles:int -> unit
val note_checkpoint : t -> bytes:int -> unit
val note_restore : t -> pages:int -> unit

(** {2 Gray failures}

    Window queries are pure in [now] (wall cycles): no RNG state is
    consumed and no cycles are added when the schedule is empty, so an
    unarmed gray plan is bit-identical to no gray plan at all. *)

val gray_armed : t -> bool
(** True when any gray schedule entry or dup/reorder rate is set. *)

val health : t -> Health.t option
(** The health tracker; [Some] iff {!gray_armed} and
    [config.health_enabled]. *)

val slow_factor : t -> node:Stramash_sim.Node_id.t -> now:int -> float
(** Service-time inflation factor for work served by [node] at [now];
    1.0 outside every window. *)

val inflate : t -> node:Stramash_sim.Node_id.t -> now:int -> cycles:int -> int
(** Extra cycles (beyond [cycles]) the current slow-down window adds to
    an operation served by [node]; counts into ["gray.inflated_cycles"]. *)

val msg_attempt_at : t -> now:int -> [ `Deliver of int | `Drop ]
(** Flap-aware {!msg_attempt}: inside a flap burst the correlated drop
    rate applies first and deliveries carry the burst's extra delay.
    Equivalent to {!msg_attempt} when no burst covers [now]. *)

val msg_duplicated : t -> bool
(** Whether this delivery is duplicated (receiver pays twice). *)

val msg_reorder_extra : t -> int
(** Extra delivery cycles simulating queue reordering, 0 normally. *)

val ptl_stall_extra : t -> now:int -> int
(** Extra lock-holder stall cycles for a PTL acquire at [now]. *)

(** {2 Health / circuit breaker}

    Thin wrappers over {!Health} that no-op when health is unarmed, so
    call sites need no option plumbing. *)

val observe_msg_rtt :
  t -> peer:Stramash_sim.Node_id.t -> cycles:int -> nominal:int -> now:int -> unit

val observe_service :
  t -> peer:Stramash_sim.Node_id.t -> cycles:int -> nominal:int -> now:int -> unit

val observe_failure : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit

val breaker_route :
  t -> peer:Stramash_sim.Node_id.t -> now:int -> [ `Fused | `Probe | `Divert ]
(** [`Fused] when health is unarmed or the breaker is closed. *)

val breaker_probe_done : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit
val note_breaker_fallback : t -> unit

val msg_backoff_for : t -> peer:Stramash_sim.Node_id.t -> attempt:int -> int
(** Health-adaptive, jittered replacement for {!msg_backoff}; identical
    to it when health is unarmed. *)

(** {2 Silent data corruption}

    The corruption schedule follows the gray pattern: deciders draw from
    one private stream split off last, guarded on their rates, so an
    unarmed plan (and a plan with only the scrubber on) is bit-identical
    to one with no corruption machinery at all. The [note_*] functions
    centralise the [corruption.*] counter family in the plan registry. *)

val corruption_armed : t -> bool
(** True when any flip event or corruption rate is set. *)

val integrity : t -> Integrity.t option
(** The fingerprint store + injector + scrubber; [Some] iff
    {!corruption_armed} or [config.scrub_enabled]. *)

val scrub_enabled : t -> bool

val msg_corrupt_verdict : t -> [ `Clean | `Corrupt | `Truncated ]
(** Verdict for one delivery attempt's payload integrity; counts
    injections into ["corruption.msg_corrupted"/"corruption.msg_truncated"]. *)

val note_msg_corruption_detected : t -> unit
(** The receiver's CRC framing check rejected the attempt; the caller's
    retransmit loop is the repair. *)

val pte_corrupted : t -> bool
(** Whether this remote-walker leaf install lands a stale frame. *)

val note_pte_repair : t -> unit
(** Verify-after-install caught the stale leaf and re-installed from the
    owner's tables. *)

val ckpt_torn_fraction : t -> float option
(** [Some f] tears the checkpoint blob to its first [f] fraction. *)

val note_ckpt_detected : t -> unit
val note_ckpt_fallback : t -> unit

val corruption_injected : t -> int
(** Total injected corruptions across all sites (flips, messages,
    checkpoints, PTEs) — the campaign's detection denominator. *)

val corruption_detected : t -> int
val corruption_repaired : t -> int
(** Repairs that did not need a checkpoint fallback (replica re-fetch,
    owner re-fetch, message retransmit). *)

val corruption_fallbacks : t -> int
val corruption_unrepaired : t -> int

(** {2 Per-operation latency} *)

val op_names : string list
(** The tracked operation classes, in display order:
    ["fault"], ["remote_walk"], ["msg_rpc"], ["ptl_acquire"]. *)

val record_op : t -> op:string -> cycles:int -> unit
(** Record one operation's latency; no-op unless {!gray_armed} and [op]
    is one of {!op_names}. *)

val op_histograms : t -> (string * Stramash_sim.Metrics.Histogram.t) list

val report : Format.formatter -> t -> unit
(** Deterministic dump: sorted counters plus the recovery-latency
    histogram summary, health state, and per-op latency percentiles. *)
