(** Seeded, deterministic fault plan.

    A plan owns one private SplitMix64 stream per injection site (message
    layer, IPI, remote walker, PTL, frame allocator), all split from a
    single plan seed in a fixed order. Sites with a zero rate never draw,
    so enabling faults at one site does not perturb decisions at another,
    and the plan seed is independent of the workload seed so a no-fault
    run is bit-identical to a run with no plan at all.

    Decision functions both decide and count: every [`Drop]/[`Lost]/true
    verdict bumps the matching counter in {!metrics}, so a campaign report
    needs no extra bookkeeping at the call sites. *)

type node_event = {
  node : Stramash_sim.Node_id.t;
  kill_at : int;  (** wall cycle at (or after) which the node crash-stops *)
  restart_after : int option;
      (** downtime in cycles before the node restarts; [None] = never *)
}

type config = {
  msg_drop_rate : float;  (** probability a ring/TCP message attempt is dropped *)
  msg_delay_rate : float;  (** probability of a delivery delay spike *)
  msg_delay_cycles : int;
  msg_timeout_cycles : int;  (** sender-side loss-detection timeout *)
  msg_backoff_base_cycles : int;
  msg_max_attempts : int;  (** retries before escalating to the reliable path *)
  ipi_loss_rate : float;
  ipi_jitter_rate : float;
  ipi_jitter_cycles : int;
  ipi_timeout_cycles : int;  (** receiver falls back to polling after this *)
  walk_fail_rate : float;  (** transient remote PTE read failure *)
  walk_retry_cycles : int;
  walk_max_attempts : int;
  ptl_timeout_rate : float;
  ptl_backoff_cycles : int;
  ptl_max_attempts : int;
  alloc_fail_rate : float;  (** simulated frame-allocator exhaustion *)
  node_events : node_event list;  (** crash-stop kill/restart schedule *)
  heartbeat_interval_cycles : int;
  heartbeat_miss_threshold : int;  (** missed beats before a peer is declared dead *)
  degraded_walk_penalty_cycles : int;
      (** extra cost of a message-based (Popcorn-style) walk while degraded *)
}

val default : config
(** All rates zero, no node events: a plan built from [default] injects
    nothing. *)

type t

val create : seed:int64 -> config -> t
(** Normalizes and validates [node_events] (sorted by kill time; per-node
    kill/restart intervals must not overlap; an event with no restart must
    be its node's last).
    @raise Invalid_argument on a malformed schedule. *)

val config : t -> config
val metrics : t -> Stramash_sim.Metrics.registry
val recovery_histogram : t -> Stramash_sim.Metrics.Histogram.t

(** {2 Message layer} *)

val msg_attempt : t -> [ `Deliver of int | `Drop ]
(** Verdict for one transmission attempt; [`Deliver extra] carries the
    injected delay in cycles (0 when on time). *)

val msg_backoff : t -> attempt:int -> int
(** Cycles the sender burns on attempt [attempt] (0-based): detection
    timeout plus exponential backoff. *)

val msg_attempts_exhausted : t -> attempt:int -> bool
val note_msg_retry : t -> unit
val note_msg_escalation : t -> unit

(** {2 IPI} *)

val ipi_delivery : t -> [ `On_time | `Jitter of int | `Lost ]
val ipi_timeout_cycles : t -> int

(** {2 Remote walker} *)

val walk_read_faulted : t -> bool
val note_walk_retry : t -> unit

(** {2 PTL} *)

val ptl_acquire_timed_out : t -> bool

(** {2 Frame allocator} *)

val alloc_denied : t -> bool
val note_hotplug_recovery : t -> unit
val note_fallback_escalation : t -> unit

(** {2 Recovery accounting} *)

val record_recovery : t -> cycles:int -> unit

(** {2 Crash-stop node failures}

    The schedule itself is data; the runner interprets it at quantum
    boundaries. The [note_*] functions centralise chaos counters in the
    plan's registry so campaign reports and [--metrics-json] see one
    consistent namespace. *)

val node_events : t -> node_event list
(** Sorted by kill time. *)

val chaos_armed : t -> bool
val heartbeat_interval_cycles : t -> int
val heartbeat_miss_threshold : t -> int
val degraded_walk_penalty_cycles : t -> int

val note_node_death : t -> Stramash_sim.Node_id.t -> unit
val note_node_restart : t -> Stramash_sim.Node_id.t -> unit
val note_watchdog_detection : t -> Stramash_sim.Node_id.t -> unit
val note_lock_break : t -> unit
val note_stale_token : t -> unit
val note_waiter_parked : t -> unit
val note_waiter_requeued : t -> unit
val note_blocks_reclaimed : t -> int -> unit
val note_blocks_orphaned : t -> int -> unit
val note_degraded_walk : t -> unit
val note_dead_node_message : t -> unit
val add_downtime_cycles : t -> cycles:int -> unit
val add_degraded_cycles : t -> cycles:int -> unit
val note_checkpoint : t -> bytes:int -> unit
val note_restore : t -> pages:int -> unit

val report : Format.formatter -> t -> unit
(** Deterministic dump: sorted counters plus the recovery-latency
    histogram summary. *)
