(** Per-peer gray-failure health scoring and circuit breakers.

    Each peer carries an EWMA of its observed/nominal service-time ratio
    (dimensionless, so message RTTs, IPI deliveries, remote walks and PTL
    acquires feed one signal), an EWMA failure rate, and an absolute
    message-RTT EWMA that drives the adaptive loss-detection timeout.

    [score = (1 - fail_ewma) * 1 / max 1 ratio_ewma] lives in [0, 1]; a
    Closed breaker trips Open when the score falls below [trip_score].
    While tripped, {!route} diverts fused-path work to the degraded
    message-walk path, releasing one paced [`Probe] per
    [probe_interval]; {!probe_done} judges each probe against a raised
    hysteresis bar ([trip_score + 0.2]) and only [readmit_probes]
    consecutive passes re-close the breaker, so a recovering peer is
    never re-trusted on a single good sample.

    Deterministic: backoff jitter is the only random draw and comes from
    the private stream passed to {!create}. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type params = {
  alpha : float;  (** EWMA smoothing factor, must lie in (0, 1] *)
  trip_score : float;
  probe_interval : int;
  readmit_probes : int;
  backoff_jitter : float;
  adaptive_timeout_mult : float;
}

type t

val create :
  rng:Stramash_sim.Rng.t -> metrics:Stramash_sim.Metrics.registry -> params -> t
(** Counters ("gray.*") land in [metrics].
    @raise Invalid_argument when [alpha] is outside (0, 1]. *)

val score : t -> peer:Stramash_sim.Node_id.t -> float
val breaker_state : t -> peer:Stramash_sim.Node_id.t -> state
val msg_rtt_ewma : t -> peer:Stramash_sim.Node_id.t -> float
val readmit_score : t -> float

val observe_msg_rtt :
  t -> peer:Stramash_sim.Node_id.t -> cycles:int -> nominal:int -> now:int -> unit
(** A completed message delivery: feeds both the absolute RTT EWMA and
    the service ratio, and decays the failure EWMA. *)

val observe_service :
  t -> peer:Stramash_sim.Node_id.t -> cycles:int -> nominal:int -> now:int -> unit
(** A completed non-message operation (IPI, remote walk, PTL acquire):
    feeds the service ratio only. *)

val observe_failure : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit
(** A timeout/drop/retry against the peer. *)

val route : t -> peer:Stramash_sim.Node_id.t -> now:int -> [ `Fused | `Probe | `Divert ]

val probe_done : t -> peer:Stramash_sim.Node_id.t -> now:int -> unit
(** Judge the probe whose observations have already been recorded. *)

val adaptive_timeout :
  t -> peer:Stramash_sim.Node_id.t -> floor:int -> cap:int -> default:int -> int

val backoff :
  t ->
  peer:Stramash_sim.Node_id.t ->
  attempt:int ->
  base:int ->
  floor:int ->
  cap:int ->
  default:int ->
  int
(** Adaptive timeout plus jittered exponential backoff for attempt
    [attempt] (0-based). *)

val report : Format.formatter -> t -> unit
