(** Silent-data-corruption detection and repair primitives.

    A fingerprint store over paired physical frames (a placement home
    page and its bit-identical replica), the seeded bit-flip injector
    that corrupts them, an epoch-budgeted background scrubber, and the
    replica-backed repair path. Owned by {!Plan} (built iff a corruption
    schedule or the scrubber is armed) the same way {!Health} is; all
    decisions draw from one private stream passed in at creation, and
    every order-sensitive walk uses a sorted roster, so runs replay
    byte-identically from the plan seed. *)

(** {2 CRC32} *)

val crc32_string : string -> int
(** IEEE 802.3 CRC32 (reflected, poly [0xEDB88320]); the check value of
    ["123456789"] is [0xCBF43926]. Used for message framing and
    checkpoint blobs. *)

val crc32_page : Stramash_mem.Phys_mem.t -> frame:int -> int
(** CRC32 of one 4 KiB frame, read through the public [read_u64] path.
    [frame] is a page-aligned physical address. *)

(** {2 Cost model} *)

val scan_cost_cycles : int
(** Cycles to stream one page through the checksum unit. *)

val repair_local_cycles : int
val repair_cross_cycles : int
(** Page re-fetch cost: same-node copy vs. the cross-ISA wire. *)

val msg_crc_cycles : bytes:int -> int
(** Per-message CRC framing cost, paid by sender and receiver. *)

(** {2 Fingerprint store} *)

type t

type repair = {
  rp_frame : int;  (** page-aligned paddr that was re-fetched *)
  rp_src : Stramash_sim.Node_id.t;  (** node the clean copy came from *)
  rp_dst : Stramash_sim.Node_id.t;  (** node whose frame was repaired *)
  rp_latency : int;  (** cycles from injection to repair (exposure) *)
}

type tick_summary = {
  ts_flips : int;  (** injector events that landed this tick *)
  ts_scanned : int;  (** pages CRC-verified *)
  ts_repairs : repair list;
  ts_unrepaired : int;  (** detected corruptions with no clean twin *)
}

val empty_summary : tick_summary

val create :
  rng:Stramash_sim.Rng.t ->
  metrics:Stramash_sim.Metrics.registry ->
  flips:(int * int * int) list ->
  scrub:bool ->
  windows:(int * int) list ->
  interval:int ->
  budget:int ->
  t
(** [flips] are [(at_cycle, node_index, bits)] injection events;
    [windows] are [(start, len)] scrub-active spans (empty = always on);
    the scrubber verifies at most [budget] pages per sweep, sweeping no
    more than once per [interval] cycles. Counters land in [metrics]
    under [corruption.*] and [scrub.*]. *)

val pair :
  t ->
  Stramash_mem.Phys_mem.t ->
  home:int ->
  home_node:Stramash_sim.Node_id.t ->
  replica:int ->
  replica_node:Stramash_sim.Node_id.t ->
  unit
(** Seal a freshly replicated pair: both frames are bit-identical, so
    one CRC covers both and each is the other's repair source. *)

val unpair : t -> home:int -> replica:int -> unit

val check_pair :
  t -> Stramash_mem.Phys_mem.t -> home:int -> replica:int -> now:int -> tick_summary
(** Immediate verify-and-repair of one pair — called at every choke
    point that dissolves it (collapse, reconcile, drain), so corruption
    cannot escape the tracked set when the pair goes away. *)

val tick : t -> Stramash_mem.Phys_mem.t -> now:int -> tick_summary
(** One quantum-boundary step: land every due injection event (events
    with no eligible victim stay queued and retry), then run a scrub
    sweep if the interval has elapsed and a window is open. The caller
    charges {!scan_cost_cycles} per scanned page and the repair
    transfer costs to the simulated clocks. *)

val sweep_all : t -> Stramash_mem.Phys_mem.t -> now:int -> tick_summary
(** Budget-unbounded verify of every tracked frame in roster order — the
    shutdown drain pass, run before the final audit so no injected
    corruption is latent when the campaign proves its memory. *)

val tracked : t -> int
(** Sealed frames currently in the store. *)

val pending_count : t -> int
(** Injected corruptions not yet detected (latent damage). *)

val flips_outstanding : t -> int
(** Scheduled injection events that have not landed yet. *)

val max_exposure_cycles : t -> int
(** Longest observed injection-to-repair window. *)

val audit_clean : t -> Stramash_mem.Phys_mem.t -> bool
(** The post-repair proof obligation: every sealed frame matches its
    fingerprint and no injected corruption is latent. *)
