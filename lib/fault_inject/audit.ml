module Node_id = Stramash_sim.Node_id
module Liveness = Stramash_sim.Liveness
module Addr = Stramash_mem.Addr
module Layout = Stramash_mem.Layout
module Env = Stramash_kernel.Env
module Kernel = Stramash_kernel.Kernel
module Frame_alloc = Stramash_kernel.Frame_alloc
module Futex = Stramash_kernel.Futex
module Page_table = Stramash_kernel.Page_table
module Pte = Stramash_kernel.Pte
module Process = Stramash_kernel.Process
module Thread = Stramash_kernel.Thread
module Vma = Stramash_kernel.Vma

type violation = { check : string; detail : string }
type report = { checks : int; violations : violation list }

let is_clean r = r.violations = []

let pp fmt r =
  Format.fprintf fmt "audit: %d checks, %d violations@." r.checks (List.length r.violations);
  List.iter (fun v -> Format.fprintf fmt "  [%s] %s@." v.check v.detail) r.violations

(* Auditing must observe, not perturb: walks are free of cache charges and
   must never fault in a directory page. *)
let silent_io env =
  {
    Page_table.phys = env.Env.phys;
    charge_read = ignore;
    charge_write = ignore;
    alloc_table = (fun () -> invalid_arg "Audit: walk must not allocate");
  }

let frame_owner env paddr =
  List.find_opt
    (fun node -> Frame_alloc.owns_address (Env.kernel env node).Kernel.frames paddr)
    Node_id.all

(* VMAs live only at the origin; remote mms borrow the origin's ranges
   (paper §6.4), so every table is audited against the origin VMA list. *)
let origin_ranges proc =
  let omm = Process.mm_exn proc proc.Process.origin in
  let ranges = ref [] in
  Vma.iter omm.Process.vmas ~f:(fun vma ->
      ranges := (vma.Vma.v_start, vma.Vma.v_end) :: !ranges);
  List.rev !ranges

let iter_leaves env ~proc ~f =
  let io = silent_io env in
  let ranges = origin_ranges proc in
  List.iter
    (fun (node, mm) ->
      List.iter
        (fun (v_start, v_end) ->
          let vaddr = ref v_start in
          while !vaddr < v_end do
            (match Page_table.walk mm.Process.pgtable io ~vaddr:!vaddr with
            | Some (pfn, flags) -> f ~node ~vaddr:!vaddr ~paddr:(pfn lsl Addr.page_shift) ~flags
            | None -> ());
            vaddr := !vaddr + Addr.page_size
          done)
        ranges)
    proc.Process.mms

let run ~env ~procs ?threads ?held ?ledger ?(extra = []) () =
  let checks = ref 0 in
  let violations = ref [] in
  let bad check detail = violations := { check; detail } :: !violations in
  let global_frames = Hashtbl.create 256 in
  List.iter
    (fun proc ->
      let origin = proc.Process.origin in
      let proc_frames = Hashtbl.create 64 in
      iter_leaves env ~proc ~f:(fun ~node ~vaddr ~paddr ~flags ->
          incr checks;
          match frame_owner env paddr with
          | None ->
              bad "frame-owner"
                (Printf.sprintf "pid=%d %s vaddr=0x%x maps paddr=0x%x owned by no allocator"
                   proc.Process.pid (Node_id.to_string node) vaddr paddr)
          | Some owner ->
              incr checks;
              if not (Frame_alloc.is_allocated (Env.kernel env owner).Kernel.frames paddr) then
                bad "frame-allocated"
                  (Printf.sprintf "pid=%d %s vaddr=0x%x maps freed frame paddr=0x%x"
                     proc.Process.pid (Node_id.to_string node) vaddr paddr);
              (* The remote-owned software bit is meaningful only in the
                 origin's table: set exactly when the other kernel installed
                 the PTE out of its own memory (so the origin must not free
                 the frame at teardown). *)
              if Node_id.equal node origin then begin
                incr checks;
                let expect = not (Node_id.equal owner origin) in
                if flags.Pte.remote_owned <> expect then
                  bad "remote-owned-flag"
                    (Printf.sprintf
                       "pid=%d origin table vaddr=0x%x: remote_owned=%b but frame owner is %s"
                       proc.Process.pid vaddr flags.Pte.remote_owned (Node_id.to_string owner))
              end;
              (* Shared intent: both kernels may map one frame only at the
                 same vaddr (the §6.4 shared-frame fast path). *)
              incr checks;
              (match Hashtbl.find_opt proc_frames paddr with
              | Some v when v <> vaddr ->
                  bad "shared-intent"
                    (Printf.sprintf "pid=%d frame 0x%x mapped at both 0x%x and 0x%x"
                       proc.Process.pid paddr v vaddr)
              | Some _ -> ()
              | None -> Hashtbl.add proc_frames paddr vaddr);
              incr checks;
              (match Hashtbl.find_opt global_frames paddr with
              | Some pid when pid <> proc.Process.pid ->
                  bad "cross-process-alias"
                    (Printf.sprintf "frame 0x%x mapped by both pid=%d and pid=%d" paddr pid
                       proc.Process.pid)
              | _ -> Hashtbl.replace global_frames paddr proc.Process.pid)))
    procs;
  (* Futex waiter lists: every queued tid must name an existing thread,
     blocked on exactly that futex word, on a live node (dead-node waiters
     are parked in the downtime holding area, never left in a queue). *)
  (match threads with
  | None -> ()
  | Some threads ->
      let liveness = env.Env.liveness in
      let find tid = List.find_opt (fun th -> th.Thread.tid = tid) threads in
      List.iter
        (fun node ->
          let futexes = (Env.kernel env node).Kernel.futexes in
          Futex.iter_waiters futexes ~f:(fun ~uaddr ~tid ->
              incr checks;
              match find tid with
              | None ->
                  bad "futex-waiter"
                    (Printf.sprintf "%s bucket 0x%x queues absent tid=%d"
                       (Node_id.to_string node) uaddr tid)
              | Some th ->
                  incr checks;
                  if not (Liveness.is_alive liveness th.Thread.node) then
                    bad "futex-waiter"
                      (Printf.sprintf "%s bucket 0x%x queues tid=%d of dead node %s"
                         (Node_id.to_string node) uaddr tid
                         (Node_id.to_string th.Thread.node));
                  incr checks;
                  (match th.Thread.state with
                  | Thread.Blocked_futex u when u = uaddr -> ()
                  | st ->
                      bad "futex-waiter"
                        (Format.asprintf "%s bucket 0x%x queues tid=%d in state %a"
                           (Node_id.to_string node) uaddr tid Thread.pp_state st))))
        Node_id.all;
      (* the holding area is the dual: only dead-node threads may park there *)
      List.iter
        (fun (uaddr, tid) ->
          incr checks;
          match find tid with
          | None ->
              bad "futex-held"
                (Printf.sprintf "holding area parks absent tid=%d (uaddr=0x%x)" tid uaddr)
          | Some th ->
              incr checks;
              if Liveness.is_alive liveness th.Thread.node then
                bad "futex-held"
                  (Printf.sprintf "holding area parks tid=%d but node %s is alive" tid
                     (Node_id.to_string th.Thread.node)))
        (Option.value ~default:[] held));
  (* Hotplug ledger: a donated block is either owned by a live node or
     orphaned by a dead one — a dead node's non-orphaned block escaped the
     death sweep; an orphaned block under a live owner escaped restart
     re-adoption. *)
  (match ledger with
  | None -> ()
  | Some entries ->
      let liveness = env.Env.liveness in
      List.iter
        (fun (owner, (region : Layout.region), orphaned) ->
          incr checks;
          let alive = Liveness.is_alive liveness owner in
          if orphaned && alive then
            bad "hotplug-ledger"
              (Printf.sprintf "block 0x%x-0x%x orphaned but owner %s is alive" region.Layout.lo
                 region.Layout.hi (Node_id.to_string owner));
          if (not orphaned) && not alive then
            bad "hotplug-ledger"
              (Printf.sprintf "block 0x%x-0x%x owned by dead node %s and not orphaned"
                 region.Layout.lo region.Layout.hi (Node_id.to_string owner)))
        entries);
  List.iter
    (fun (name, ok) ->
      incr checks;
      if not ok then bad "extra" name)
    extra;
  { checks = !checks; violations = List.rev !violations }

let mapped_frames ~env ~proc =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  iter_leaves env ~proc ~f:(fun ~node:_ ~vaddr:_ ~paddr ~flags:_ ->
      if not (Hashtbl.mem seen paddr) then begin
        Hashtbl.add seen paddr ();
        match frame_owner env paddr with
        | Some owner -> acc := (owner, paddr) :: !acc
        | None -> ()
      end);
  List.rev !acc

let check_teardown ~env ~procs ~mapped =
  let checks = ref 0 in
  let violations = ref [] in
  let bad check detail = violations := { check; detail } :: !violations in
  List.iter
    (fun proc ->
      iter_leaves env ~proc ~f:(fun ~node ~vaddr ~paddr:_ ~flags:_ ->
          incr checks;
          bad "teardown-leaf"
            (Printf.sprintf "pid=%d %s table still maps vaddr=0x%x after exit" proc.Process.pid
               (Node_id.to_string node) vaddr)))
    procs;
  List.iter
    (fun (owner, paddr) ->
      incr checks;
      if Frame_alloc.is_allocated (Env.kernel env owner).Kernel.frames paddr then
        bad "frame-leak"
          (Printf.sprintf "frame 0x%x (owner %s) still allocated after exit" paddr
             (Node_id.to_string owner)))
    mapped;
  { checks = !checks; violations = List.rev !violations }
