open Stramash_sim

type node_event = { node : Node_id.t; kill_at : int; restart_after : int option }

type gray_window = { g_node : Node_id.t; g_start : int; g_len : int; g_factor : float }
type flap_burst = { fl_start : int; fl_len : int; fl_drop_rate : float; fl_delay_cycles : int }
type ptl_stall = { st_start : int; st_len : int; st_stall_cycles : int }

type bit_flip = { bf_at : int; bf_node : int; bf_bits : int }
type scrub_window = { sw_start : int; sw_len : int }

type config = {
  (* message layer *)
  msg_drop_rate : float;
  msg_delay_rate : float;
  msg_delay_cycles : int;
  msg_timeout_cycles : int;
  msg_backoff_base_cycles : int;
  msg_max_attempts : int;
  (* IPI *)
  ipi_loss_rate : float;
  ipi_jitter_rate : float;
  ipi_jitter_cycles : int;
  ipi_timeout_cycles : int;
  (* remote page-table walks *)
  walk_fail_rate : float;
  walk_retry_cycles : int;
  walk_max_attempts : int;
  (* Stramash-PTL *)
  ptl_timeout_rate : float;
  ptl_backoff_cycles : int;
  ptl_max_attempts : int;
  (* frame allocator *)
  alloc_fail_rate : float;
  (* crash-stop node failures *)
  node_events : node_event list;
  heartbeat_interval_cycles : int;
  heartbeat_miss_threshold : int;
  degraded_walk_penalty_cycles : int;
  (* gray failures *)
  gray_slow : gray_window list;
  gray_flaps : flap_burst list;
  gray_ptl_stalls : ptl_stall list;
  msg_dup_rate : float;
  msg_reorder_rate : float;
  msg_reorder_cycles : int;
  (* health scoring / circuit breaker *)
  health_enabled : bool;
  health_alpha : float;
  breaker_trip_score : float;
  breaker_probe_interval : int;
  breaker_readmit_probes : int;
  backoff_jitter : float;
  adaptive_timeout_mult : float;
  heartbeat_readmit_beats : int;
  (* silent data corruption *)
  corrupt_flips : bit_flip list;
  corrupt_msg_rate : float;
  corrupt_msg_truncate_rate : float;
  corrupt_ckpt_rate : float;
  corrupt_pte_rate : float;
  scrub_enabled : bool;
  scrub_windows : scrub_window list;
  scrub_interval_cycles : int;
  scrub_pages_per_epoch : int;
}

let default =
  {
    msg_drop_rate = 0.0;
    msg_delay_rate = 0.0;
    msg_delay_cycles = Cycles.of_us 5.0;
    msg_timeout_cycles = Cycles.of_us 20.0;
    msg_backoff_base_cycles = Cycles.of_us 2.0;
    msg_max_attempts = 6;
    ipi_loss_rate = 0.0;
    ipi_jitter_rate = 0.0;
    ipi_jitter_cycles = Cycles.of_us 10.0;
    ipi_timeout_cycles = Cycles.of_us 50.0;
    walk_fail_rate = 0.0;
    walk_retry_cycles = Cycles.of_ns 600.0;
    walk_max_attempts = 3;
    ptl_timeout_rate = 0.0;
    ptl_backoff_cycles = Cycles.of_us 1.0;
    ptl_max_attempts = 4;
    alloc_fail_rate = 0.0;
    node_events = [];
    heartbeat_interval_cycles = Cycles.of_us 10.0;
    heartbeat_miss_threshold = 3;
    degraded_walk_penalty_cycles = Cycles.of_us 3.0;
    gray_slow = [];
    gray_flaps = [];
    gray_ptl_stalls = [];
    msg_dup_rate = 0.0;
    msg_reorder_rate = 0.0;
    msg_reorder_cycles = Cycles.of_us 1.0;
    health_enabled = true;
    health_alpha = 0.2;
    breaker_trip_score = 0.55;
    breaker_probe_interval = Cycles.of_us 500.0;
    breaker_readmit_probes = 3;
    backoff_jitter = 0.25;
    adaptive_timeout_mult = 4.0;
    heartbeat_readmit_beats = 2;
    corrupt_flips = [];
    corrupt_msg_rate = 0.0;
    corrupt_msg_truncate_rate = 0.0;
    corrupt_ckpt_rate = 0.0;
    corrupt_pte_rate = 0.0;
    scrub_enabled = false;
    scrub_windows = [];
    scrub_interval_cycles = Cycles.of_us 50.0;
    scrub_pages_per_epoch = 8;
  }

type t = {
  config : config;
  msg_rng : Rng.t;
  ipi_rng : Rng.t;
  walk_rng : Rng.t;
  ptl_rng : Rng.t;
  alloc_rng : Rng.t;
  gray_rng : Rng.t;
  corrupt_rng : Rng.t;
  metrics : Metrics.registry;
  recovery : Metrics.Histogram.t;
  gray_on : bool;
  health : Health.t option;
  ops : (string * Metrics.Histogram.t) list;
  corrupt_on : bool;
  integrity : Integrity.t option;
}

(* Kill/restart schedules are normalized at plan creation: sorted by kill
   time, with per-node sanity enforced up front so the runner can treat
   the list as a simple cursor. *)
let validate_events events =
  let sorted =
    List.stable_sort (fun a b -> compare (a.kill_at, Node_id.index a.node) (b.kill_at, Node_id.index b.node)) events
  in
  List.iter
    (fun e ->
      if e.kill_at < 0 then invalid_arg "Plan: node_event kill_at must be >= 0";
      match e.restart_after with
      | Some d when d <= 0 -> invalid_arg "Plan: node_event restart_after must be > 0"
      | _ -> ())
    sorted;
  List.iter
    (fun node ->
      let mine = List.filter (fun e -> Node_id.equal e.node node) sorted in
      let rec check = function
        | a :: (b :: _ as rest) ->
            (match a.restart_after with
            | None ->
                invalid_arg
                  "Plan: a node_event without restart_after must be the node's last"
            | Some d ->
                if b.kill_at < a.kill_at + d then
                  invalid_arg "Plan: overlapping node_events for one node");
            check rest
        | _ -> ()
      in
      check mine)
    Node_id.all;
  sorted

(* One place to reject a malformed config before a campaign starts, so
   the CLI can exit with a message instead of failing deep inside a run.
   [create] applies it too, raising Invalid_argument. *)
let validate config =
  let check cond msg = if not cond then failwith msg in
  try
    let rate name v =
      check (v >= 0.0 && v <= 1.0)
        (Printf.sprintf "Plan: %s must be in [0, 1] (got %g)" name v)
    in
    let non_neg name v =
      check (v >= 0) (Printf.sprintf "Plan: %s must be >= 0 (got %d)" name v)
    in
    let at_least name floor v =
      check (v >= floor) (Printf.sprintf "Plan: %s must be >= %d (got %d)" name floor v)
    in
    rate "msg_drop_rate" config.msg_drop_rate;
    rate "msg_delay_rate" config.msg_delay_rate;
    rate "ipi_loss_rate" config.ipi_loss_rate;
    rate "ipi_jitter_rate" config.ipi_jitter_rate;
    rate "walk_fail_rate" config.walk_fail_rate;
    rate "ptl_timeout_rate" config.ptl_timeout_rate;
    rate "alloc_fail_rate" config.alloc_fail_rate;
    rate "msg_dup_rate" config.msg_dup_rate;
    rate "msg_reorder_rate" config.msg_reorder_rate;
    non_neg "msg_delay_cycles" config.msg_delay_cycles;
    non_neg "msg_timeout_cycles" config.msg_timeout_cycles;
    non_neg "msg_backoff_base_cycles" config.msg_backoff_base_cycles;
    non_neg "ipi_jitter_cycles" config.ipi_jitter_cycles;
    non_neg "ipi_timeout_cycles" config.ipi_timeout_cycles;
    non_neg "walk_retry_cycles" config.walk_retry_cycles;
    non_neg "ptl_backoff_cycles" config.ptl_backoff_cycles;
    non_neg "degraded_walk_penalty_cycles" config.degraded_walk_penalty_cycles;
    non_neg "msg_reorder_cycles" config.msg_reorder_cycles;
    at_least "msg_max_attempts" 1 config.msg_max_attempts;
    at_least "walk_max_attempts" 1 config.walk_max_attempts;
    at_least "ptl_max_attempts" 1 config.ptl_max_attempts;
    at_least "heartbeat_interval_cycles" 1 config.heartbeat_interval_cycles;
    at_least "heartbeat_miss_threshold" 1 config.heartbeat_miss_threshold;
    at_least "heartbeat_readmit_beats" 1 config.heartbeat_readmit_beats;
    at_least "breaker_probe_interval" 1 config.breaker_probe_interval;
    at_least "breaker_readmit_probes" 1 config.breaker_readmit_probes;
    check
      (config.health_alpha > 0.0 && config.health_alpha <= 1.0)
      (Printf.sprintf "Plan: health_alpha must be in (0, 1] (got %g)" config.health_alpha);
    check
      (config.breaker_trip_score > 0.0 && config.breaker_trip_score < 1.0)
      (Printf.sprintf "Plan: breaker_trip_score must be in (0, 1) (got %g)"
         config.breaker_trip_score);
    check
      (config.backoff_jitter >= 0.0 && config.backoff_jitter < 1.0)
      (Printf.sprintf "Plan: backoff_jitter must be in [0, 1) (got %g)"
         config.backoff_jitter);
    check
      (config.adaptive_timeout_mult >= 1.0)
      (Printf.sprintf "Plan: adaptive_timeout_mult must be >= 1 (got %g)"
         config.adaptive_timeout_mult);
    (try ignore (validate_events config.node_events)
     with Invalid_argument m -> failwith m);
    List.iter
      (fun w ->
        non_neg "gray_slow start" w.g_start;
        at_least "gray_slow length" 1 w.g_len;
        check (w.g_factor >= 1.0)
          (Printf.sprintf "Plan: gray_slow factor must be >= 1 (got %g)" w.g_factor))
      config.gray_slow;
    List.iter
      (fun node ->
        let mine =
          List.filter (fun w -> Node_id.equal w.g_node node) config.gray_slow
          |> List.sort (fun a b -> compare a.g_start b.g_start)
        in
        let rec overlap = function
          | a :: (b :: _ as rest) ->
              check
                (a.g_start + a.g_len <= b.g_start)
                "Plan: overlapping gray_slow windows for one node";
              overlap rest
          | _ -> ()
        in
        overlap mine)
      Node_id.all;
    List.iter
      (fun fl ->
        non_neg "gray_flaps start" fl.fl_start;
        at_least "gray_flaps length" 1 fl.fl_len;
        rate "gray_flaps drop rate" fl.fl_drop_rate;
        non_neg "gray_flaps delay" fl.fl_delay_cycles)
      config.gray_flaps;
    List.iter
      (fun st ->
        non_neg "gray_ptl_stalls start" st.st_start;
        at_least "gray_ptl_stalls length" 1 st.st_len;
        non_neg "gray_ptl_stalls stall" st.st_stall_cycles)
      config.gray_ptl_stalls;
    rate "corrupt_msg_rate" config.corrupt_msg_rate;
    rate "corrupt_msg_truncate_rate" config.corrupt_msg_truncate_rate;
    rate "corrupt_ckpt_rate" config.corrupt_ckpt_rate;
    rate "corrupt_pte_rate" config.corrupt_pte_rate;
    let nnodes = List.length Node_id.all in
    List.iter
      (fun bf ->
        non_neg "corrupt_flips at" bf.bf_at;
        check
          (bf.bf_bits >= 1 && bf.bf_bits <= 8)
          (Printf.sprintf "Plan: corrupt_flips bits must be in [1, 8] (got %d)" bf.bf_bits);
        check
          (bf.bf_node >= 0 && bf.bf_node < nnodes)
          (Printf.sprintf "Plan: corrupt_flips node index must be in [0, %d) (got %d)" nnodes
             bf.bf_node))
      config.corrupt_flips;
    List.iter
      (fun sw ->
        non_neg "scrub_windows start" sw.sw_start;
        at_least "scrub_windows length" 1 sw.sw_len)
      config.scrub_windows;
    (let sorted =
       List.sort (fun a b -> compare a.sw_start b.sw_start) config.scrub_windows
     in
     let rec overlap = function
       | a :: (b :: _ as rest) ->
           check (a.sw_start + a.sw_len <= b.sw_start) "Plan: overlapping scrub_windows";
           overlap rest
       | _ -> ()
     in
     overlap sorted);
    at_least "scrub_interval_cycles" 1 config.scrub_interval_cycles;
    at_least "scrub_pages_per_epoch" 1 config.scrub_pages_per_epoch;
    Ok ()
  with Failure m -> Error m

(* A structural fingerprint of the whole config, echoed in campaign JSON
   alongside the seed so any output can be traced back to its exact
   parameters. Stable across runs of one binary. *)
let config_fingerprint (config : config) = Hashtbl.hash_param 256 256 config

let gray_armed_config config =
  config.gray_slow <> [] || config.gray_flaps <> []
  || config.gray_ptl_stalls <> [] || config.msg_dup_rate > 0.0
  || config.msg_reorder_rate > 0.0

let corruption_armed_config config =
  config.corrupt_flips <> []
  || config.corrupt_msg_rate > 0.0
  || config.corrupt_msg_truncate_rate > 0.0
  || config.corrupt_ckpt_rate > 0.0
  || config.corrupt_pte_rate > 0.0

let op_names = [ "fault"; "remote_walk"; "msg_rpc"; "ptl_acquire" ]

let create ~seed config =
  (match validate config with Ok () -> () | Error m -> invalid_arg m);
  let config = { config with node_events = validate_events config.node_events } in
  (* One private stream per injection site, split off in a fixed order so
     adding draws at one site never perturbs decisions at another — and the
     workload RNG (a different seed entirely) is untouched. The gray,
     health, and corruption streams split last (in that order),
     preserving every earlier stream's sequence. *)
  let root = Rng.create ~seed in
  let msg_rng = Rng.split root in
  let ipi_rng = Rng.split root in
  let walk_rng = Rng.split root in
  let ptl_rng = Rng.split root in
  let alloc_rng = Rng.split root in
  let gray_rng = Rng.split root in
  let health_rng = Rng.split root in
  let corrupt_rng = Rng.split root in
  let metrics = Metrics.registry () in
  (* Echoed in every campaign's JSON snapshot: any output traces back to
     the exact (seed, config) pair that produced it. *)
  Metrics.set metrics "plan.seed" (Int64.to_int seed);
  Metrics.set metrics "plan.config_fingerprint" (config_fingerprint config);
  let gray_on = gray_armed_config config in
  let health =
    if gray_on && config.health_enabled then
      Some
        (Health.create ~rng:health_rng ~metrics
           {
             Health.alpha = config.health_alpha;
             trip_score = config.breaker_trip_score;
             probe_interval = config.breaker_probe_interval;
             readmit_probes = config.breaker_readmit_probes;
             backoff_jitter = config.backoff_jitter;
             adaptive_timeout_mult = config.adaptive_timeout_mult;
           })
    else None
  in
  let ops =
    if gray_on then
      List.map
        (fun name ->
          ( name,
            Metrics.Histogram.create ~buckets:96 ~lo:0.0
              ~hi:(float_of_int (Cycles.of_us 200.0)) ))
        op_names
    else []
  in
  let corrupt_on = corruption_armed_config config in
  let integrity =
    if corrupt_on || config.scrub_enabled then
      Some
        (Integrity.create ~rng:corrupt_rng ~metrics
           ~flips:(List.map (fun bf -> (bf.bf_at, bf.bf_node, bf.bf_bits)) config.corrupt_flips)
           ~scrub:config.scrub_enabled
           ~windows:(List.map (fun sw -> (sw.sw_start, sw.sw_len)) config.scrub_windows)
           ~interval:config.scrub_interval_cycles ~budget:config.scrub_pages_per_epoch)
    else None
  in
  {
    config;
    msg_rng;
    ipi_rng;
    walk_rng;
    ptl_rng;
    alloc_rng;
    gray_rng;
    corrupt_rng;
    metrics;
    recovery =
      Metrics.Histogram.create ~buckets:64 ~lo:0.0
        ~hi:(float_of_int (Cycles.of_us 200.0));
    gray_on;
    health;
    ops;
    corrupt_on;
    integrity;
  }

let config t = t.config
let metrics t = t.metrics
let recovery_histogram t = t.recovery

(* Guard on the rate before drawing: a zero-rate site consumes no RNG
   state, so enabling faults at one site leaves the others' decision
   sequences (and therefore metrics) bit-identical. *)
let hit rng rate = rate > 0.0 && Rng.float rng 1.0 < rate

(* Injected faults as point events under the "fault" subsystem. The plan
   has no notion of a node; the event inherits the node of the innermost
   open span — i.e. it lands inside the operation it perturbed. *)
let mark op = Stramash_obs.Trace.instant ~subsys:"fault" ~op ()

(* --- message layer ------------------------------------------------------ *)

let msg_attempt t =
  if hit t.msg_rng t.config.msg_drop_rate then begin
    Metrics.incr t.metrics "msg.drops";
    mark "msg_drop";
    `Drop
  end
  else if hit t.msg_rng t.config.msg_delay_rate then begin
    Metrics.incr t.metrics "msg.delay_spikes";
    mark "msg_delay";
    `Deliver t.config.msg_delay_cycles
  end
  else `Deliver 0

let msg_backoff t ~attempt =
  (* Sender burns the full timeout discovering the loss, then backs off
     exponentially before retransmitting. *)
  let exp = if attempt >= 16 then 16 else attempt in
  t.config.msg_timeout_cycles + (t.config.msg_backoff_base_cycles * (1 lsl exp))

let msg_attempts_exhausted t ~attempt = attempt >= t.config.msg_max_attempts

let note_msg_retry t = Metrics.incr t.metrics "msg.retries"
let note_msg_escalation t =
  Metrics.incr t.metrics "msg.escalations";
  mark "msg_escalation"

(* --- IPI ---------------------------------------------------------------- *)

let ipi_delivery t =
  if hit t.ipi_rng t.config.ipi_loss_rate then begin
    Metrics.incr t.metrics "ipi.lost";
    mark "ipi_lost";
    `Lost
  end
  else if hit t.ipi_rng t.config.ipi_jitter_rate then begin
    Metrics.incr t.metrics "ipi.jitter_spikes";
    mark "ipi_jitter";
    `Jitter t.config.ipi_jitter_cycles
  end
  else `On_time

let ipi_timeout_cycles t = t.config.ipi_timeout_cycles

(* --- remote walker ------------------------------------------------------ *)

let walk_read_faulted t =
  if hit t.walk_rng t.config.walk_fail_rate then begin
    Metrics.incr t.metrics "walk.transient_faults";
    mark "walk_transient";
    true
  end
  else false

let note_walk_retry t = Metrics.incr t.metrics "walk.retries"

(* --- PTL ---------------------------------------------------------------- *)

let ptl_acquire_timed_out t =
  if hit t.ptl_rng t.config.ptl_timeout_rate then begin
    Metrics.incr t.metrics "ptl.timeouts";
    mark "ptl_timeout";
    true
  end
  else false

(* --- frame allocator ---------------------------------------------------- *)

let alloc_denied t =
  if hit t.alloc_rng t.config.alloc_fail_rate then begin
    Metrics.incr t.metrics "alloc.denials";
    mark "alloc_denied";
    true
  end
  else false

let note_hotplug_recovery t =
  Metrics.incr t.metrics "alloc.hotplug_recoveries";
  mark "hotplug_recovery"
let note_fallback_escalation t = Metrics.incr t.metrics "fallback.escalations"

let record_recovery t ~cycles =
  Metrics.Histogram.record t.recovery (float_of_int cycles)

(* --- crash-stop node failures ------------------------------------------- *)

let node_events t = t.config.node_events
let chaos_armed t = t.config.node_events <> []
let heartbeat_interval_cycles t = t.config.heartbeat_interval_cycles
let heartbeat_miss_threshold t = t.config.heartbeat_miss_threshold
let heartbeat_readmit_beats t = t.config.heartbeat_readmit_beats
let degraded_walk_penalty_cycles t = t.config.degraded_walk_penalty_cycles

let note_detection_latency t ~cycles =
  Metrics.incr t.metrics "chaos.detections";
  Metrics.add t.metrics "chaos.detection_latency_cycles" cycles

let note_node_death t node =
  Metrics.incr t.metrics (Printf.sprintf "chaos.%s.deaths" (Node_id.to_string node));
  mark "node_death"

let note_node_restart t node =
  Metrics.incr t.metrics (Printf.sprintf "chaos.%s.restarts" (Node_id.to_string node));
  mark "node_restart"

let note_watchdog_detection t node =
  Metrics.incr t.metrics
    (Printf.sprintf "chaos.%s.watchdog_detections" (Node_id.to_string node));
  mark "watchdog_detect"

let note_lock_break t = Metrics.incr t.metrics "chaos.lock_breaks"
let note_stale_token t =
  Metrics.incr t.metrics "chaos.stale_tokens";
  mark "stale_token"
let note_waiter_parked t = Metrics.incr t.metrics "chaos.waiters_parked"
let note_waiter_requeued t = Metrics.incr t.metrics "chaos.waiters_requeued"
let note_blocks_reclaimed t n = Metrics.add t.metrics "chaos.blocks_reclaimed" n
let note_blocks_orphaned t n = Metrics.add t.metrics "chaos.blocks_orphaned" n
let note_degraded_walk t = Metrics.incr t.metrics "chaos.degraded_walks"
let note_dead_node_message t = Metrics.incr t.metrics "chaos.dead_node_messages"
let add_downtime_cycles t ~cycles = Metrics.add t.metrics "chaos.downtime_cycles" cycles
let add_degraded_cycles t ~cycles = Metrics.add t.metrics "chaos.degraded_cycles" cycles
let note_checkpoint t ~bytes =
  Metrics.incr t.metrics "chaos.checkpoints";
  Metrics.add t.metrics "chaos.checkpoint_bytes" bytes
let note_restore t ~pages =
  Metrics.incr t.metrics "chaos.restores";
  Metrics.add t.metrics "chaos.restored_pages" pages

(* --- gray failures ------------------------------------------------------ *)

let gray_armed t = t.gray_on
let health t = t.health

(* Window queries are pure in [now]: they draw no RNG state and add no
   cycles when the schedule is empty, so an unarmed gray plan is
   bit-identical to no gray plan at all. *)
let slow_factor t ~node ~now =
  List.fold_left
    (fun acc w ->
      if Node_id.equal w.g_node node && now >= w.g_start && now < w.g_start + w.g_len
      then Float.max acc w.g_factor
      else acc)
    1.0 t.config.gray_slow

let inflate t ~node ~now ~cycles =
  let f = slow_factor t ~node ~now in
  if f > 1.0 && cycles > 0 then begin
    let extra = int_of_float (float_of_int cycles *. (f -. 1.0)) in
    if extra > 0 then begin
      Metrics.add t.metrics "gray.inflated_cycles" extra;
      Metrics.incr t.metrics "gray.inflations"
    end;
    extra
  end
  else 0

let flap_at t ~now =
  List.find_opt
    (fun fl -> now >= fl.fl_start && now < fl.fl_start + fl.fl_len)
    t.config.gray_flaps

let msg_attempt_at t ~now =
  match flap_at t ~now with
  | Some fl when hit t.gray_rng fl.fl_drop_rate ->
      Metrics.incr t.metrics "gray.flap_drops";
      mark "flap_drop";
      `Drop
  | flap -> (
      let flap_delay =
        match flap with
        | Some fl when fl.fl_delay_cycles > 0 ->
            Metrics.incr t.metrics "gray.flap_delays";
            fl.fl_delay_cycles
        | _ -> 0
      in
      match msg_attempt t with
      | `Drop -> `Drop
      | `Deliver extra -> `Deliver (extra + flap_delay))

let msg_duplicated t =
  if hit t.gray_rng t.config.msg_dup_rate then begin
    Metrics.incr t.metrics "gray.msg_dups";
    mark "msg_dup";
    true
  end
  else false

let msg_reorder_extra t =
  if hit t.gray_rng t.config.msg_reorder_rate then begin
    Metrics.incr t.metrics "gray.msg_reorders";
    mark "msg_reorder";
    t.config.msg_reorder_cycles
  end
  else 0

let ptl_stall_extra t ~now =
  let extra =
    List.fold_left
      (fun acc st ->
        if now >= st.st_start && now < st.st_start + st.st_len then
          max acc st.st_stall_cycles
        else acc)
      0 t.config.gray_ptl_stalls
  in
  if extra > 0 then begin
    Metrics.add t.metrics "gray.ptl_stall_cycles" extra;
    Metrics.incr t.metrics "gray.ptl_stalls"
  end;
  extra

(* --- health / circuit breaker ------------------------------------------- *)

let observe_msg_rtt t ~peer ~cycles ~nominal ~now =
  match t.health with
  | Some h -> Health.observe_msg_rtt h ~peer ~cycles ~nominal ~now
  | None -> ()

let observe_service t ~peer ~cycles ~nominal ~now =
  match t.health with
  | Some h -> Health.observe_service h ~peer ~cycles ~nominal ~now
  | None -> ()

let observe_failure t ~peer ~now =
  match t.health with Some h -> Health.observe_failure h ~peer ~now | None -> ()

let breaker_route t ~peer ~now =
  match t.health with Some h -> Health.route h ~peer ~now | None -> `Fused

let breaker_probe_done t ~peer ~now =
  match t.health with Some h -> Health.probe_done h ~peer ~now | None -> ()

let note_breaker_fallback t =
  Metrics.incr t.metrics "gray.breaker_fallbacks";
  mark "breaker_fallback"

let msg_backoff_for t ~peer ~attempt =
  match t.health with
  | None -> msg_backoff t ~attempt
  | Some h ->
      Health.backoff h ~peer ~attempt ~base:t.config.msg_backoff_base_cycles
        ~floor:t.config.msg_backoff_base_cycles
        ~cap:(2 * t.config.msg_timeout_cycles)
        ~default:t.config.msg_timeout_cycles

(* --- silent data corruption --------------------------------------------- *)

let corruption_armed t = t.corrupt_on
let integrity t = t.integrity
let scrub_enabled t = t.config.scrub_enabled

(* One verdict per delivery attempt, drawn only when corruption is
   armed: an unarmed plan draws no corrupt-stream state, so arming the
   scrubber alone (scrub on, injection off) is bit-identical to no
   corruption machinery at all. Truncation is drawn first, whole-payload
   corruption second, in a fixed order. *)
let msg_corrupt_verdict t =
  if not t.corrupt_on then `Clean
  else if hit t.corrupt_rng t.config.corrupt_msg_truncate_rate then begin
    Metrics.incr t.metrics "corruption.msg_truncated";
    mark "msg_truncated";
    `Truncated
  end
  else if hit t.corrupt_rng t.config.corrupt_msg_rate then begin
    Metrics.incr t.metrics "corruption.msg_corrupted";
    mark "msg_corrupt";
    `Corrupt
  end
  else `Clean

(* The receiver's CRC framing check caught a corrupted attempt: the
   detection is simultaneous with the check, and the retransmit loop the
   caller is already in is the repair. *)
let note_msg_corruption_detected t =
  Metrics.incr t.metrics "corruption.detected";
  Metrics.incr t.metrics "corruption.msg_retransmits";
  Metrics.incr t.metrics "corruption.repaired_retransmit"

(* Stale-PTE corruption in the remote-walker install path. *)
let pte_corrupted t =
  t.corrupt_on
  &&
  if hit t.corrupt_rng t.config.corrupt_pte_rate then begin
    Metrics.incr t.metrics "corruption.pte_stale";
    mark "pte_stale";
    true
  end
  else false

let note_pte_repair t =
  Metrics.incr t.metrics "corruption.detected";
  Metrics.incr t.metrics "corruption.repaired_owner";
  mark "pte_repair"

(* Torn checkpoint blobs: [Some fraction] truncates the encoded image to
   that prefix fraction. *)
let ckpt_torn_fraction t =
  if t.corrupt_on && hit t.corrupt_rng t.config.corrupt_ckpt_rate then begin
    Metrics.incr t.metrics "corruption.ckpt_torn";
    mark "ckpt_torn";
    Some (0.2 +. Rng.float t.corrupt_rng 0.7)
  end
  else None

let note_ckpt_detected t =
  Metrics.incr t.metrics "corruption.detected";
  mark "ckpt_rejected"

let note_ckpt_fallback t =
  Metrics.incr t.metrics "corruption.repaired_checkpoint";
  mark "ckpt_fallback"

let corruption_injected t =
  Metrics.get t.metrics "corruption.flips"
  + Metrics.get t.metrics "corruption.msg_corrupted"
  + Metrics.get t.metrics "corruption.msg_truncated"
  + Metrics.get t.metrics "corruption.ckpt_torn"
  + Metrics.get t.metrics "corruption.pte_stale"

let corruption_detected t = Metrics.get t.metrics "corruption.detected"

let corruption_repaired t =
  Metrics.get t.metrics "corruption.repaired_replica"
  + Metrics.get t.metrics "corruption.repaired_owner"
  + Metrics.get t.metrics "corruption.repaired_retransmit"

let corruption_fallbacks t = Metrics.get t.metrics "corruption.repaired_checkpoint"
let corruption_unrepaired t = Metrics.get t.metrics "corruption.unrepaired"

(* --- per-operation latency ---------------------------------------------- *)

let record_op t ~op ~cycles =
  match List.assoc_opt op t.ops with
  | Some h -> Metrics.Histogram.record h (float_of_int cycles)
  | None -> ()

let op_histograms t = t.ops

(* --- reporting ---------------------------------------------------------- *)

let report fmt t =
  Format.fprintf fmt "fault-injection counters:@.";
  let any =
    Metrics.fold t.metrics ~init:false ~f:(fun _ name v ->
        Format.fprintf fmt "  %-28s %d@." name v;
        true)
  in
  if not any then Format.fprintf fmt "  (no faults injected)@.";
  let h = t.recovery in
  let n = Metrics.Histogram.count h in
  if n > 0 then
    Format.fprintf fmt
      "recovery latency (cycles): n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f@." n
      (Metrics.Histogram.mean h) (Metrics.Histogram.p50 h) (Metrics.Histogram.p95 h)
      (Metrics.Histogram.p99 h)
  else Format.fprintf fmt "recovery latency (cycles): n=0@.";
  (match t.health with Some health -> Health.report fmt health | None -> ());
  List.iter
    (fun (name, oph) ->
      let n = Metrics.Histogram.count oph in
      if n > 0 then
        Format.fprintf fmt
          "op latency[%s] (cycles): n=%d p50=%.0f p95=%.0f p99=%.0f@." name n
          (Metrics.Histogram.p50 oph) (Metrics.Histogram.p95 oph)
          (Metrics.Histogram.p99 oph))
    t.ops
