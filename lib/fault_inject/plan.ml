open Stramash_sim

type node_event = { node : Node_id.t; kill_at : int; restart_after : int option }

type config = {
  (* message layer *)
  msg_drop_rate : float;
  msg_delay_rate : float;
  msg_delay_cycles : int;
  msg_timeout_cycles : int;
  msg_backoff_base_cycles : int;
  msg_max_attempts : int;
  (* IPI *)
  ipi_loss_rate : float;
  ipi_jitter_rate : float;
  ipi_jitter_cycles : int;
  ipi_timeout_cycles : int;
  (* remote page-table walks *)
  walk_fail_rate : float;
  walk_retry_cycles : int;
  walk_max_attempts : int;
  (* Stramash-PTL *)
  ptl_timeout_rate : float;
  ptl_backoff_cycles : int;
  ptl_max_attempts : int;
  (* frame allocator *)
  alloc_fail_rate : float;
  (* crash-stop node failures *)
  node_events : node_event list;
  heartbeat_interval_cycles : int;
  heartbeat_miss_threshold : int;
  degraded_walk_penalty_cycles : int;
}

let default =
  {
    msg_drop_rate = 0.0;
    msg_delay_rate = 0.0;
    msg_delay_cycles = Cycles.of_us 5.0;
    msg_timeout_cycles = Cycles.of_us 20.0;
    msg_backoff_base_cycles = Cycles.of_us 2.0;
    msg_max_attempts = 6;
    ipi_loss_rate = 0.0;
    ipi_jitter_rate = 0.0;
    ipi_jitter_cycles = Cycles.of_us 10.0;
    ipi_timeout_cycles = Cycles.of_us 50.0;
    walk_fail_rate = 0.0;
    walk_retry_cycles = Cycles.of_ns 600.0;
    walk_max_attempts = 3;
    ptl_timeout_rate = 0.0;
    ptl_backoff_cycles = Cycles.of_us 1.0;
    ptl_max_attempts = 4;
    alloc_fail_rate = 0.0;
    node_events = [];
    heartbeat_interval_cycles = Cycles.of_us 10.0;
    heartbeat_miss_threshold = 3;
    degraded_walk_penalty_cycles = Cycles.of_us 3.0;
  }

type t = {
  config : config;
  msg_rng : Rng.t;
  ipi_rng : Rng.t;
  walk_rng : Rng.t;
  ptl_rng : Rng.t;
  alloc_rng : Rng.t;
  metrics : Metrics.registry;
  recovery : Metrics.Histogram.t;
}

(* Kill/restart schedules are normalized at plan creation: sorted by kill
   time, with per-node sanity enforced up front so the runner can treat
   the list as a simple cursor. *)
let validate_events events =
  let sorted =
    List.stable_sort (fun a b -> compare (a.kill_at, Node_id.index a.node) (b.kill_at, Node_id.index b.node)) events
  in
  List.iter
    (fun e ->
      if e.kill_at < 0 then invalid_arg "Plan: node_event kill_at must be >= 0";
      match e.restart_after with
      | Some d when d <= 0 -> invalid_arg "Plan: node_event restart_after must be > 0"
      | _ -> ())
    sorted;
  List.iter
    (fun node ->
      let mine = List.filter (fun e -> Node_id.equal e.node node) sorted in
      let rec check = function
        | a :: (b :: _ as rest) ->
            (match a.restart_after with
            | None ->
                invalid_arg
                  "Plan: a node_event without restart_after must be the node's last"
            | Some d ->
                if b.kill_at < a.kill_at + d then
                  invalid_arg "Plan: overlapping node_events for one node");
            check rest
        | _ -> ()
      in
      check mine)
    Node_id.all;
  sorted

let create ~seed config =
  let config = { config with node_events = validate_events config.node_events } in
  (* One private stream per injection site, split off in a fixed order so
     adding draws at one site never perturbs decisions at another — and the
     workload RNG (a different seed entirely) is untouched. *)
  let root = Rng.create ~seed in
  let msg_rng = Rng.split root in
  let ipi_rng = Rng.split root in
  let walk_rng = Rng.split root in
  let ptl_rng = Rng.split root in
  let alloc_rng = Rng.split root in
  {
    config;
    msg_rng;
    ipi_rng;
    walk_rng;
    ptl_rng;
    alloc_rng;
    metrics = Metrics.registry ();
    recovery =
      Metrics.Histogram.create ~buckets:64 ~lo:0.0
        ~hi:(float_of_int (Cycles.of_us 200.0));
  }

let config t = t.config
let metrics t = t.metrics
let recovery_histogram t = t.recovery

(* Guard on the rate before drawing: a zero-rate site consumes no RNG
   state, so enabling faults at one site leaves the others' decision
   sequences (and therefore metrics) bit-identical. *)
let hit rng rate = rate > 0.0 && Rng.float rng 1.0 < rate

(* Injected faults as point events under the "fault" subsystem. The plan
   has no notion of a node; the event inherits the node of the innermost
   open span — i.e. it lands inside the operation it perturbed. *)
let mark op = Stramash_obs.Trace.instant ~subsys:"fault" ~op ()

(* --- message layer ------------------------------------------------------ *)

let msg_attempt t =
  if hit t.msg_rng t.config.msg_drop_rate then begin
    Metrics.incr t.metrics "msg.drops";
    mark "msg_drop";
    `Drop
  end
  else if hit t.msg_rng t.config.msg_delay_rate then begin
    Metrics.incr t.metrics "msg.delay_spikes";
    mark "msg_delay";
    `Deliver t.config.msg_delay_cycles
  end
  else `Deliver 0

let msg_backoff t ~attempt =
  (* Sender burns the full timeout discovering the loss, then backs off
     exponentially before retransmitting. *)
  let exp = if attempt >= 16 then 16 else attempt in
  t.config.msg_timeout_cycles + (t.config.msg_backoff_base_cycles * (1 lsl exp))

let msg_attempts_exhausted t ~attempt = attempt >= t.config.msg_max_attempts

let note_msg_retry t = Metrics.incr t.metrics "msg.retries"
let note_msg_escalation t =
  Metrics.incr t.metrics "msg.escalations";
  mark "msg_escalation"

(* --- IPI ---------------------------------------------------------------- *)

let ipi_delivery t =
  if hit t.ipi_rng t.config.ipi_loss_rate then begin
    Metrics.incr t.metrics "ipi.lost";
    mark "ipi_lost";
    `Lost
  end
  else if hit t.ipi_rng t.config.ipi_jitter_rate then begin
    Metrics.incr t.metrics "ipi.jitter_spikes";
    mark "ipi_jitter";
    `Jitter t.config.ipi_jitter_cycles
  end
  else `On_time

let ipi_timeout_cycles t = t.config.ipi_timeout_cycles

(* --- remote walker ------------------------------------------------------ *)

let walk_read_faulted t =
  if hit t.walk_rng t.config.walk_fail_rate then begin
    Metrics.incr t.metrics "walk.transient_faults";
    mark "walk_transient";
    true
  end
  else false

let note_walk_retry t = Metrics.incr t.metrics "walk.retries"

(* --- PTL ---------------------------------------------------------------- *)

let ptl_acquire_timed_out t =
  if hit t.ptl_rng t.config.ptl_timeout_rate then begin
    Metrics.incr t.metrics "ptl.timeouts";
    mark "ptl_timeout";
    true
  end
  else false

(* --- frame allocator ---------------------------------------------------- *)

let alloc_denied t =
  if hit t.alloc_rng t.config.alloc_fail_rate then begin
    Metrics.incr t.metrics "alloc.denials";
    mark "alloc_denied";
    true
  end
  else false

let note_hotplug_recovery t =
  Metrics.incr t.metrics "alloc.hotplug_recoveries";
  mark "hotplug_recovery"
let note_fallback_escalation t = Metrics.incr t.metrics "fallback.escalations"

let record_recovery t ~cycles =
  Metrics.Histogram.record t.recovery (float_of_int cycles)

(* --- crash-stop node failures ------------------------------------------- *)

let node_events t = t.config.node_events
let chaos_armed t = t.config.node_events <> []
let heartbeat_interval_cycles t = t.config.heartbeat_interval_cycles
let heartbeat_miss_threshold t = t.config.heartbeat_miss_threshold
let degraded_walk_penalty_cycles t = t.config.degraded_walk_penalty_cycles

let note_node_death t node =
  Metrics.incr t.metrics (Printf.sprintf "chaos.%s.deaths" (Node_id.to_string node));
  mark "node_death"

let note_node_restart t node =
  Metrics.incr t.metrics (Printf.sprintf "chaos.%s.restarts" (Node_id.to_string node));
  mark "node_restart"

let note_watchdog_detection t node =
  Metrics.incr t.metrics
    (Printf.sprintf "chaos.%s.watchdog_detections" (Node_id.to_string node));
  mark "watchdog_detect"

let note_lock_break t = Metrics.incr t.metrics "chaos.lock_breaks"
let note_stale_token t =
  Metrics.incr t.metrics "chaos.stale_tokens";
  mark "stale_token"
let note_waiter_parked t = Metrics.incr t.metrics "chaos.waiters_parked"
let note_waiter_requeued t = Metrics.incr t.metrics "chaos.waiters_requeued"
let note_blocks_reclaimed t n = Metrics.add t.metrics "chaos.blocks_reclaimed" n
let note_blocks_orphaned t n = Metrics.add t.metrics "chaos.blocks_orphaned" n
let note_degraded_walk t = Metrics.incr t.metrics "chaos.degraded_walks"
let note_dead_node_message t = Metrics.incr t.metrics "chaos.dead_node_messages"
let add_downtime_cycles t ~cycles = Metrics.add t.metrics "chaos.downtime_cycles" cycles
let add_degraded_cycles t ~cycles = Metrics.add t.metrics "chaos.degraded_cycles" cycles
let note_checkpoint t ~bytes =
  Metrics.incr t.metrics "chaos.checkpoints";
  Metrics.add t.metrics "chaos.checkpoint_bytes" bytes
let note_restore t ~pages =
  Metrics.incr t.metrics "chaos.restores";
  Metrics.add t.metrics "chaos.restored_pages" pages

(* --- reporting ---------------------------------------------------------- *)

let report fmt t =
  Format.fprintf fmt "fault-injection counters:@.";
  let any =
    Metrics.fold t.metrics ~init:false ~f:(fun _ name v ->
        Format.fprintf fmt "  %-28s %d@." name v;
        true)
  in
  if not any then Format.fprintf fmt "  (no faults injected)@.";
  let h = t.recovery in
  let n = Metrics.Histogram.count h in
  if n > 0 then
    Format.fprintf fmt
      "recovery latency (cycles): n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f@." n
      (Metrics.Histogram.mean h) (Metrics.Histogram.p50 h) (Metrics.Histogram.p95 h)
      (Metrics.Histogram.p99 h)
  else Format.fprintf fmt "recovery latency (cycles): n=0@."
