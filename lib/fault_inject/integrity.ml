(* End-to-end integrity: CRC32 fingerprints over physical pages, the
   seeded bit-flip injector that corrupts them, the epoch-budgeted
   scrubber that detects the damage, and the replica-backed repair path.

   The store tracks only paired frames — replicated pages whose home and
   replica copies are bit-identical by construction (a write to either
   collapses the pair through the placement write hook before it lands),
   so every tracked frame has both a sealed reference CRC and a clean
   twin to repair from. Injection, scanning, and repair all walk a
   sorted roster, never a hashtable, so two runs from one seed touch
   frames in the same order and the whole subsystem replays
   byte-identically.

   Layering: this module sits below [Plan] (which owns the corruption
   schedule and wraps an optional [t] exactly like [Health]); it may use
   the sim and mem layers only. *)

open Stramash_sim
module Phys_mem = Stramash_mem.Phys_mem
module Addr = Stramash_mem.Addr

(* ---------- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_byte crc b =
  let table = Lazy.force crc_table in
  table.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let crc32_string s =
  let crc = ref 0xFFFFFFFF in
  String.iter (fun ch -> crc := crc_byte !crc (Char.code ch)) s;
  !crc lxor 0xFFFFFFFF

(* Page CRC reads the frame as 512 little-endian u64 words through the
   public Phys_mem interface — byte-equivalent to crc32 of the raw page,
   with no extra entry point into the memory model. *)
let words_per_page = Addr.page_size / 8

let crc32_page phys ~frame =
  let crc = ref 0xFFFFFFFF in
  for w = 0 to words_per_page - 1 do
    let v = ref (Phys_mem.read_u64 phys (frame + (8 * w))) in
    for _ = 0 to 7 do
      crc := crc_byte !crc (Int64.to_int (Int64.logand !v 0xFFL));
      v := Int64.shift_right_logical !v 8
    done
  done;
  !crc lxor 0xFFFFFFFF

(* ---------- cost model ---------- *)

(* Scanning a page streams 4 KiB through the checksum unit: charged like
   a local page copy. A repair is a page transfer; cross-ISA it pays the
   same wire cost as a placement replication. *)
let scan_cost_cycles = Cycles.of_ns 400.0
let repair_local_cycles = Cycles.of_ns 600.0
let repair_cross_cycles = Cycles.of_us 2.0
let msg_crc_cycles ~bytes = 4 + (bytes / 64)

(* ---------- fingerprint store ---------- *)

type seal = {
  mutable s_crc : int;  (* reference CRC sealed at pair time *)
  s_node : Node_id.t;  (* node whose memory holds the frame *)
  s_is_home : bool;  (* the authoritative copy (false = placement replica) *)
  mutable s_twin : int;  (* paddr of the bit-identical twin *)
  mutable s_pending : int;  (* cycle the injector hit it; -1 = clean *)
}

type repair = {
  rp_frame : int;
  rp_src : Node_id.t;
  rp_dst : Node_id.t;
  rp_latency : int;  (* detection latency: cycles from injection to repair *)
}

type flip_event = { fe_at : int; fe_node : int; fe_bits : int }

type tick_summary = {
  ts_flips : int;
  ts_scanned : int;
  ts_repairs : repair list;
  ts_unrepaired : int;
}

let empty_summary = { ts_flips = 0; ts_scanned = 0; ts_repairs = []; ts_unrepaired = 0 }

type t = {
  rng : Rng.t;
  metrics : Metrics.registry;
  mutable events : flip_event list;  (* sorted by fe_at; due events retry until a victim exists *)
  seals : (int, seal) Hashtbl.t;  (* paddr of page base -> seal *)
  mutable roster : int array;  (* sorted tracked paddrs *)
  scrub : bool;
  windows : (int * int) list;  (* (start, len); empty = always on *)
  interval : int;
  budget : int;
  mutable cursor : int;
  mutable last_sweep : int;
  mutable max_exposure : int;
}

let create ~rng ~metrics ~flips ~scrub ~windows ~interval ~budget =
  {
    rng;
    metrics;
    events =
      List.stable_sort
        (fun a b -> compare a.fe_at b.fe_at)
        (List.map (fun (at, node, bits) -> { fe_at = at; fe_node = node; fe_bits = bits }) flips);
    seals = Hashtbl.create 64;
    roster = [||];
    scrub;
    windows;
    interval = max 1 interval;
    budget = max 1 budget;
    cursor = 0;
    last_sweep = 0;
    max_exposure = 0;
  }

let tracked t = Hashtbl.length t.seals
let pending_count t = Hashtbl.fold (fun _ s n -> if s.s_pending >= 0 then n + 1 else n) t.seals 0

let rebuild_roster t =
  let frames = Hashtbl.fold (fun f _ acc -> f :: acc) t.seals [] in
  t.roster <- Array.of_list (List.sort compare frames);
  if Array.length t.roster > 0 then t.cursor <- t.cursor mod Array.length t.roster
  else t.cursor <- 0

let pair t phys ~home ~home_node ~replica ~replica_node =
  let crc = crc32_page phys ~frame:home in
  Hashtbl.replace t.seals home
    { s_crc = crc; s_node = home_node; s_is_home = true; s_twin = replica; s_pending = -1 };
  Hashtbl.replace t.seals replica
    { s_crc = crc; s_node = replica_node; s_is_home = false; s_twin = home; s_pending = -1 };
  Metrics.incr t.metrics "scrub.pages_sealed";
  rebuild_roster t

let unpair t ~home ~replica =
  Hashtbl.remove t.seals home;
  Hashtbl.remove t.seals replica;
  rebuild_roster t

(* ---------- detection + repair ---------- *)

let note_detected t seal ~now =
  Metrics.incr t.metrics "corruption.detected";
  if seal.s_pending >= 0 then begin
    let latency = max 0 (now - seal.s_pending) in
    Metrics.add t.metrics "corruption.detection_latency_cycles" latency;
    if latency > t.max_exposure then begin
      t.max_exposure <- latency;
      Metrics.set t.metrics "corruption.exposure_max_cycles" latency
    end;
    latency
  end
  else 0

(* Verify one sealed frame; on mismatch repair from its twin. The twin
   is authoritative only if its own CRC still matches the seal — a twin
   that is itself corrupt cannot repair anyone. *)
let verify_frame t phys ~frame ~now =
  match Hashtbl.find_opt t.seals frame with
  | None -> `Untracked
  | Some seal ->
      if crc32_page phys ~frame = seal.s_crc then `Clean
      else begin
        let latency = note_detected t seal ~now in
        match Hashtbl.find_opt t.seals seal.s_twin with
        | Some ts when ts.s_twin = frame && crc32_page phys ~frame:seal.s_twin = ts.s_crc ->
            Phys_mem.copy_page phys ~src:seal.s_twin ~dst:frame;
            seal.s_pending <- -1;
            (* a damaged home re-fetches from its clean replica; a
               damaged replica re-fetches from the owner's home copy *)
            Metrics.incr t.metrics
              (if seal.s_is_home then "corruption.repaired_replica"
               else "corruption.repaired_owner");
            `Repaired
              { rp_frame = frame; rp_src = ts.s_node; rp_dst = seal.s_node; rp_latency = latency }
        | _ ->
            Metrics.incr t.metrics "corruption.unrepaired";
            `Unrepaired
      end

(* Immediate verify at a pair's choke points (collapse, reconcile,
   drain): corruption must be caught before the pair dissolves, or a
   damaged home frame would escape the tracked set. *)
let check_pair t phys ~home ~replica ~now =
  let fold frame (repairs, unrepaired, scanned) =
    match verify_frame t phys ~frame ~now with
    | `Untracked -> (repairs, unrepaired, scanned)
    | `Clean -> (repairs, unrepaired, scanned + 1)
    | `Repaired r -> (r :: repairs, unrepaired, scanned + 1)
    | `Unrepaired -> (repairs, unrepaired + 1, scanned + 1)
  in
  let repairs, unrepaired, scanned = fold home (fold replica ([], 0, 0)) in
  Metrics.add t.metrics "scrub.pages_scanned" scanned;
  { ts_flips = 0; ts_scanned = scanned; ts_repairs = List.rev repairs; ts_unrepaired = unrepaired }

(* ---------- injection ---------- *)

(* A victim frame must be clean and have a clean twin: flipping a frame
   whose twin is already corrupt would leave the pair unrepairable, and
   re-flipping a pending frame could cancel bits and hide the first
   injection from the detector. Events whose time has come but that find
   no eligible victim stay queued and retry at the next tick. *)
let eligible t seal frame =
  seal.s_pending < 0
  &&
  match Hashtbl.find_opt t.seals seal.s_twin with
  | Some twin -> twin.s_pending < 0 && twin.s_twin = frame
  | None -> false

let pick_victim t ~node_index =
  let all =
    Array.to_list t.roster
    |> List.filter (fun f ->
           match Hashtbl.find_opt t.seals f with Some s -> eligible t s f | None -> false)
  in
  let preferred =
    List.filter
      (fun f ->
        match Hashtbl.find_opt t.seals f with
        | Some s -> Node_id.index s.s_node = node_index
        | None -> false)
      all
  in
  match (if preferred <> [] then preferred else all) with
  | [] -> None
  | pool ->
      let pool = Array.of_list pool in
      Some pool.(Rng.int t.rng (Array.length pool))

(* The injected damage is *silent* by construction: flips land in the
   low byte of an aligned 64-bit word, perturbing the stored value
   without manufacturing a wild pointer. A flip in the high bits of an
   index or address is not an SDC — the MMU faults on the first consume
   and detection is free; the corruption this subsystem exists to catch
   is the kind that changes answers while every access stays mapped,
   leaving the checksum scrubber as the only detector. *)
let flip_bits t phys ~frame ~bits ~now =
  let word = 8 * Rng.int t.rng words_per_page in
  let addr = frame + word in
  let mask = ref 0L in
  let chosen = ref 0 in
  let bits = min bits 8 in
  while !chosen < bits do
    let bit = Rng.int t.rng 8 in
    let m = Int64.shift_left 1L bit in
    if Int64.logand !mask m = 0L then begin
      mask := Int64.logor !mask m;
      incr chosen
    end
  done;
  Phys_mem.write_u64 phys addr (Int64.logxor (Phys_mem.read_u64 phys addr) !mask);
  (match Hashtbl.find_opt t.seals frame with
  | Some seal -> seal.s_pending <- now
  | None -> ());
  Metrics.incr t.metrics "corruption.flips";
  Metrics.add t.metrics "corruption.flipped_bits" bits;
  Stramash_obs.Trace.instant ~subsys:"fault" ~op:"bit_flip" ()

let run_injector t phys ~now =
  let rec go landed = function
    | e :: rest when e.fe_at <= now -> (
        match pick_victim t ~node_index:e.fe_node with
        | Some frame ->
            flip_bits t phys ~frame ~bits:e.fe_bits ~now;
            go (landed + 1) rest
        | None ->
            (* no eligible victim yet: keep this and everything later *)
            (landed, e :: rest))
    | rest -> (landed, rest)
  in
  let landed, remaining = go 0 t.events in
  t.events <- remaining;
  landed

(* ---------- scrubbing ---------- *)

let in_window t ~now =
  t.windows = [] || List.exists (fun (s, l) -> now >= s && now < s + l) t.windows

let run_scrub t phys ~now =
  if
    (not t.scrub)
    || Array.length t.roster = 0
    || now - t.last_sweep < t.interval
    || not (in_window t ~now)
  then ([], 0, 0)
  else begin
    t.last_sweep <- now;
    Metrics.incr t.metrics "scrub.epochs";
    let n = Array.length t.roster in
    let budget = min t.budget n in
    let repairs = ref [] in
    let unrepaired = ref 0 in
    let scanned = ref 0 in
    for i = 0 to budget - 1 do
      let frame = t.roster.((t.cursor + i) mod n) in
      (* a repair earlier in this sweep may have unsealed nothing, but
         the roster is stable within a sweep; verify handles a frame
         whose pair vanished mid-run by reporting [`Untracked] *)
      match verify_frame t phys ~frame ~now with
      | `Untracked -> ()
      | `Clean -> incr scanned
      | `Repaired r ->
          incr scanned;
          repairs := r :: !repairs
      | `Unrepaired ->
          incr scanned;
          incr unrepaired
    done;
    t.cursor <- (if n = 0 then 0 else (t.cursor + budget) mod n);
    Metrics.add t.metrics "scrub.pages_scanned" !scanned;
    (List.rev !repairs, !unrepaired, !scanned)
  end

(* One quantum-boundary tick: land due flips, then scrub. The caller
   charges [scan_cost_cycles] per scanned page and the repair transfer
   costs to the simulated clocks. *)
let tick t phys ~now =
  let landed = run_injector t phys ~now in
  let repairs, unrepaired, scanned = run_scrub t phys ~now in
  { ts_flips = landed; ts_scanned = scanned; ts_repairs = repairs; ts_unrepaired = unrepaired }

let flips_outstanding t = List.length t.events

(* Shutdown drain pass: verify every tracked frame in roster order,
   whatever the budget — run before the final audit so no injected
   corruption is still latent when the campaign proves its memory. *)
let sweep_all t phys ~now =
  let repairs = ref [] in
  let unrepaired = ref 0 in
  let scanned = ref 0 in
  Array.iter
    (fun frame ->
      match verify_frame t phys ~frame ~now with
      | `Untracked -> ()
      | `Clean -> incr scanned
      | `Repaired r ->
          incr scanned;
          repairs := r :: !repairs
      | `Unrepaired ->
          incr scanned;
          incr unrepaired)
    t.roster;
  Metrics.add t.metrics "scrub.pages_scanned" !scanned;
  { ts_flips = 0; ts_scanned = !scanned; ts_repairs = List.rev !repairs; ts_unrepaired = !unrepaired }

(* ---------- audit ---------- *)

(* The proof obligation after every repair: all sealed frames match
   their fingerprints and no injected corruption is still latent. *)
let audit_clean t phys =
  pending_count t = 0
  && Hashtbl.fold
       (fun frame seal ok -> ok && crc32_page phys ~frame = seal.s_crc)
       t.seals true

let max_exposure_cycles t = t.max_exposure
