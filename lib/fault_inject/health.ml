open Stramash_sim

(* Per-peer gray-failure health tracker: EWMA service-ratio + failure-rate
   scoring, a Closed/Open/Half_open circuit breaker with probe-paced,
   hysteresis-gated re-admission, and jittered adaptive backoff.

   All state is deterministic: the only randomness is backoff jitter drawn
   from a private stream handed in at creation, and every decision is a
   pure function of the observation sequence. *)

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type params = {
  alpha : float;  (* EWMA smoothing factor, (0, 1] *)
  trip_score : float;  (* breaker opens when score falls below this *)
  probe_interval : int;  (* cycles between half-open probes while tripped *)
  readmit_probes : int;  (* consecutive good probes before closing *)
  backoff_jitter : float;  (* +/- fraction applied to each backoff *)
  adaptive_timeout_mult : float;  (* timeout = mult * RTT EWMA *)
}

type peer = {
  node : Node_id.t;
  score_key : string;
  state_key : string;
  (* Observed/nominal service-time ratio: dimensionless, so message RTTs,
     IPI deliveries, remote walks and PTL acquires all feed one signal
     without unit mixing. Starts at the healthy fixpoint 1.0. *)
  mutable ratio_ewma : float;
  mutable fail_ewma : float;
  (* Absolute message-RTT EWMA (cycles); only message deliveries feed it,
     and it alone drives the adaptive loss-detection timeout. 0 = no
     samples yet. *)
  mutable msg_rtt_ewma : float;
  mutable state : state;
  mutable probe_successes : int;
  mutable last_probe_at : int;
}

type t = {
  params : params;
  rng : Rng.t;
  metrics : Metrics.registry;
  peers : peer array;
}

let mark op = Stramash_obs.Trace.instant ~subsys:"fault" ~op ()

let create ~rng ~metrics params =
  if params.alpha <= 0.0 || params.alpha > 1.0 then
    invalid_arg "Health: alpha must be in (0, 1]";
  let peers =
    Array.of_list
      (List.map
         (fun node ->
           let name = Node_id.to_string node in
           {
             node;
             score_key = Printf.sprintf "gray.%s.score_milli" name;
             state_key = Printf.sprintf "gray.%s.breaker_state" name;
             ratio_ewma = 1.0;
             fail_ewma = 0.0;
             msg_rtt_ewma = 0.0;
             state = Closed;
             probe_successes = 0;
             last_probe_at = 0;
           })
         Node_id.all)
  in
  { params; rng; metrics; peers }

let peer t node = t.peers.(Node_id.index node)

(* Health in [0, 1]: perfect service ratio with no failures scores 1.0;
   either a rising failure EWMA or service times inflating past nominal
   pulls it down multiplicatively. *)
let score_of p = (1.0 -. p.fail_ewma) *. (1.0 /. Float.max 1.0 p.ratio_ewma)

let score t ~peer:node = score_of (peer t node)
let breaker_state t ~peer:node = (peer t node).state
let msg_rtt_ewma t ~peer:node = (peer t node).msg_rtt_ewma

(* The re-admission bar sits strictly above the trip bar: a peer that has
   barely recovered to trip_score is not re-trusted (hysteresis). *)
let readmit_score t = Float.min 0.95 (t.params.trip_score +. 0.2)

let publish t p =
  Metrics.set t.metrics p.score_key (int_of_float (score_of p *. 1000.0));
  Metrics.set t.metrics p.state_key
    (match p.state with Closed -> 0 | Open -> 1 | Half_open -> 2)

let trip_if_unhealthy t p ~now =
  if p.state = Closed && score_of p < t.params.trip_score then begin
    p.state <- Open;
    p.probe_successes <- 0;
    (* First probe waits a full interval from the trip point. *)
    p.last_probe_at <- now;
    Metrics.incr t.metrics "gray.breaker_trips";
    mark "breaker_trip"
  end

let observe_ratio t p ~cycles ~nominal =
  let nominal = Float.max 1.0 (float_of_int nominal) in
  let ratio = float_of_int (max 0 cycles) /. nominal in
  let a = t.params.alpha in
  p.ratio_ewma <- ((1.0 -. a) *. p.ratio_ewma) +. (a *. ratio);
  p.fail_ewma <- (1.0 -. a) *. p.fail_ewma

let observe_service t ~peer:node ~cycles ~nominal ~now =
  let p = peer t node in
  observe_ratio t p ~cycles ~nominal;
  trip_if_unhealthy t p ~now;
  publish t p

let observe_msg_rtt t ~peer:node ~cycles ~nominal ~now =
  let p = peer t node in
  let a = t.params.alpha in
  let v = float_of_int (max 0 cycles) in
  p.msg_rtt_ewma <-
    (if p.msg_rtt_ewma <= 0.0 then v else ((1.0 -. a) *. p.msg_rtt_ewma) +. (a *. v));
  observe_ratio t p ~cycles ~nominal;
  trip_if_unhealthy t p ~now;
  publish t p

let observe_failure t ~peer:node ~now =
  let p = peer t node in
  let a = t.params.alpha in
  p.fail_ewma <- ((1.0 -. a) *. p.fail_ewma) +. a;
  Metrics.incr t.metrics "gray.observed_failures";
  trip_if_unhealthy t p ~now;
  publish t p

(* Routing decision for one fused-path operation against [peer]. Closed
   passes through; tripped peers divert to the degraded message-walk
   path, except for one paced probe per interval that exercises the fused
   path so recovery can be detected. *)
let route t ~peer:node ~now =
  let p = peer t node in
  match p.state with
  | Closed -> `Fused
  | Open | Half_open ->
      if now - p.last_probe_at >= t.params.probe_interval then begin
        p.last_probe_at <- now;
        Metrics.incr t.metrics "gray.breaker_probes";
        mark "breaker_probe";
        `Probe
      end
      else `Divert

(* Probe verdict: the probe's own observations have already updated the
   EWMAs, so re-admission is judged on the post-probe score against the
   raised hysteresis bar, and only [readmit_probes] consecutive passes
   close the breaker. *)
let probe_done t ~peer:node ~now:_ =
  let p = peer t node in
  if p.state <> Closed then begin
    if score_of p >= readmit_score t then begin
      p.probe_successes <- p.probe_successes + 1;
      if p.probe_successes >= t.params.readmit_probes then begin
        p.state <- Closed;
        p.probe_successes <- 0;
        Metrics.incr t.metrics "gray.breaker_readmissions";
        mark "breaker_readmit"
      end
      else p.state <- Half_open
    end
    else begin
      if p.state = Half_open then Metrics.incr t.metrics "gray.breaker_reopens";
      p.state <- Open;
      p.probe_successes <- 0
    end;
    publish t p
  end

(* Adaptive loss-detection timeout: a multiple of the observed message
   RTT, clamped to [floor, cap]; [default] (the old fixed timeout) until
   the first sample arrives. *)
let adaptive_timeout t ~peer:node ~floor ~cap ~default =
  let p = peer t node in
  if p.msg_rtt_ewma <= 0.0 then default
  else
    let v = int_of_float (t.params.adaptive_timeout_mult *. p.msg_rtt_ewma) in
    max floor (min cap v)

(* Jittered exponential backoff: adaptive timeout plus base * 2^attempt,
   spread by +/- backoff_jitter to decorrelate retry storms. Jitter draws
   come from health's private stream, so arming it never perturbs the
   fault-decision streams. *)
let backoff t ~peer:node ~attempt ~base ~floor ~cap ~default =
  let timeout = adaptive_timeout t ~peer:node ~floor ~cap ~default in
  let exp = if attempt >= 16 then 16 else attempt in
  let raw = timeout + (base * (1 lsl exp)) in
  let j = t.params.backoff_jitter in
  if j <= 0.0 then raw
  else
    let f = Rng.float t.rng (2.0 *. j) -. j in
    max 0 (raw + int_of_float (float_of_int raw *. f))

let report fmt t =
  Array.iter
    (fun p ->
      Format.fprintf fmt
        "  health[%s]: score=%.3f ratio=%.3f fail=%.3f rtt_ewma=%.0f breaker=%s@."
        (Node_id.to_string p.node) (score_of p) p.ratio_ewma p.fail_ewma
        p.msg_rtt_ewma (state_to_string p.state))
    t.peers
