(** Kernel-state invariant checker.

    Run after any simulation — clean or fault-injected — to verify that
    recovery paths never corrupted shared state:

    - every mapped user frame belongs to exactly one live frame allocator
      and is still marked allocated there (a planted double-free fails
      this);
    - in the origin's page table, the remote-owned PTE bit agrees with
      allocator ownership (the teardown protocol of §6.4 relies on it);
    - a frame mapped by both kernels of one process appears at the same
      vaddr on both sides (shared intent, never accidental aliasing);
    - no frame is mapped by two different processes;
    - after [exit_process], no leaf PTEs survive and every previously
      mapped frame has been returned to its allocator.

    The audit walks page tables with a silent io (no cache charges, no
    allocation), so it observes without perturbing timing or state. *)

type violation = { check : string; detail : string }
type report = { checks : int; violations : violation list }

val is_clean : report -> bool
val pp : Format.formatter -> report -> unit

val run :
  env:Stramash_kernel.Env.t ->
  procs:Stramash_kernel.Process.t list ->
  ?threads:Stramash_kernel.Thread.t list ->
  ?held:(int * int) list ->
  ?ledger:(Stramash_sim.Node_id.t * Stramash_mem.Layout.region * bool) list ->
  ?extra:(string * bool) list ->
  unit ->
  report
(** Consistency audit over live processes. [extra] carries caller-side
    predicates (e.g. "PTL quiescent") folded into the same report; a
    [false] entry becomes a violation named by its label.

    [threads] arms the futex-waiter checks: every queued tid must name an
    existing thread, blocked on exactly that futex word, on a live node;
    [held] is the downtime holding area as [(uaddr, tid)] pairs, whose
    dual invariant is that only dead-node threads park there. [ledger]
    (from {!Stramash_core.Global_alloc.ledger}-shaped data) arms the
    hotplug-consistency check: every donated block is live-owned or
    orphaned-by-a-dead-node, never neither. *)

val mapped_frames :
  env:Stramash_kernel.Env.t ->
  proc:Stramash_kernel.Process.t ->
  (Stramash_sim.Node_id.t * int) list
(** Snapshot of [(owning node, frame paddr)] for every distinct user frame
    currently mapped — taken before [exit_process] so {!check_teardown}
    can prove each one was freed. *)

val check_teardown :
  env:Stramash_kernel.Env.t ->
  procs:Stramash_kernel.Process.t list ->
  mapped:(Stramash_sim.Node_id.t * int) list ->
  report
(** After exit: no leaf mappings remain over the processes' VMA ranges and
    no snapshot frame is still allocated. *)
