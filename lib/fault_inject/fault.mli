(** Typed anomaly descriptions shared by every recovery path.

    Module boundaries that can fail (the fault handler, the remote walker,
    the PTL, the messaging layer, the frame allocator) return
    [('a, error) result] rather than raising, so callers choose between
    degrading to a slower correct path and reporting. The [Error]
    exception exists only for the CLI edge, where a typed error finally
    becomes a process exit. *)

type error =
  | Segfault of { pid : int; vaddr : int; node : string }
  | Out_of_memory of { node : string }  (** allocator exhausted even after hotplug *)
  | Walk_failed of { vaddr : int; attempts : int }
      (** remote PTE reads kept failing transiently *)
  | Lock_timeout of { lock_addr : int; attempts : int }
  | Msg_timeout of { label : string; attempts : int }
  | Node_dead of { node : string; op : string }
      (** the peer needed by [op] has crash-stopped *)
  | Stale_token of { lock_addr : int; node : string; epoch : int }
      (** a fencing token from a pre-crash incarnation was presented *)
  | Corrupt_message of { label : string; attempts : int }
      (** every transmission attempt failed its CRC framing check *)

exception Error of error
(** CLI-edge escape hatch; library code returns [result]s instead. *)

val to_string : error -> string
val pp : Format.formatter -> error -> unit

val get_exn : ('a, error) result -> 'a
(** [get_exn (Error e)] raises {!Error}[ e]; for edges only. *)
