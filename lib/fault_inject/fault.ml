type error =
  | Segfault of { pid : int; vaddr : int; node : string }
  | Out_of_memory of { node : string }
  | Walk_failed of { vaddr : int; attempts : int }
  | Lock_timeout of { lock_addr : int; attempts : int }
  | Msg_timeout of { label : string; attempts : int }
  | Node_dead of { node : string; op : string }
  | Stale_token of { lock_addr : int; node : string; epoch : int }
  | Corrupt_message of { label : string; attempts : int }

exception Error of error

let to_string = function
  | Segfault { pid; vaddr; node } ->
      Printf.sprintf "segfault: pid=%d vaddr=0x%x on %s" pid vaddr node
  | Out_of_memory { node } -> Printf.sprintf "out of physical frames on %s" node
  | Walk_failed { vaddr; attempts } ->
      Printf.sprintf "remote walk failed at 0x%x after %d attempts" vaddr attempts
  | Lock_timeout { lock_addr; attempts } ->
      Printf.sprintf "lock acquisition timed out at 0x%x after %d attempts" lock_addr attempts
  | Msg_timeout { label; attempts } ->
      Printf.sprintf "message %S timed out after %d attempts" label attempts
  | Node_dead { node; op } -> Printf.sprintf "node %s is dead (op %s)" node op
  | Stale_token { lock_addr; node; epoch } ->
      Printf.sprintf "stale fencing token for lock 0x%x: %s epoch %d has been superseded"
        lock_addr node epoch
  | Corrupt_message { label; attempts } ->
      Printf.sprintf "message %S failed its integrity check %d times" label attempts

let pp fmt e = Format.pp_print_string fmt (to_string e)

let get_exn = function Ok v -> v | Error e -> raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Stramash fault: " ^ to_string e)
    | _ -> None)
