(* Integration tests: end-to-end properties the paper's evaluation claims,
   checked on reduced workload classes. *)

module Node_id = Stramash_sim.Node_id
module Machine = Stramash_machine.Machine
module Runner = Stramash_machine.Runner
module W = Stramash_workloads
module H = Stramash_harness

let run ~os ~hw_model spec =
  let machine = Machine.create { Machine.default_config with os; hw_model } in
  let proc, thread = Machine.load machine spec in
  Runner.run machine proc thread spec

let shared = Stramash_mem.Layout.Shared
let small_is = W.Npb_is.spec ~params:{ W.Npb_is.nkeys = 16384; max_key = 1024; iterations = 2 } ()

(* ---------- Fig. 9 shape ---------- *)

let test_fig9_ordering_is () =
  let stramash = (run ~os:Machine.Stramash_kernel_os ~hw_model:shared small_is).Runner.wall_cycles in
  let shm = (run ~os:Machine.Popcorn_shm ~hw_model:shared small_is).Runner.wall_cycles in
  let tcp = (run ~os:Machine.Popcorn_tcp ~hw_model:shared small_is).Runner.wall_cycles in
  Alcotest.(check bool) "stramash < popcorn-shm" true (stramash < shm);
  Alcotest.(check bool) "popcorn-shm < popcorn-tcp" true (shm < tcp);
  (* headline: a substantial speedup on the write-intensive benchmark *)
  let ratio = float_of_int shm /. float_of_int stramash in
  Alcotest.(check bool)
    (Printf.sprintf "IS speedup >= 1.5x (got %.2f)" ratio)
    true (ratio >= 1.5)

let test_fully_shared_closest_to_vanilla () =
  let vanilla = (run ~os:Machine.Vanilla ~hw_model:shared small_is).Runner.wall_cycles in
  let fully =
    (run ~os:Machine.Stramash_kernel_os ~hw_model:Stramash_mem.Layout.Fully_shared small_is)
      .Runner.wall_cycles
  in
  let separated =
    (run ~os:Machine.Stramash_kernel_os ~hw_model:Stramash_mem.Layout.Separated small_is)
      .Runner.wall_cycles
  in
  Alcotest.(check bool) "fully shared beats separated" true (fully < separated);
  let gap = Float.abs (float_of_int fully -. float_of_int vanilla) /. float_of_int vanilla in
  Alcotest.(check bool)
    (Printf.sprintf "fully shared within 35%% of vanilla (gap %.2f)" gap)
    true (gap < 0.35)

(* ---------- Table 3 shape ---------- *)

let test_table3_reductions () =
  let p = run ~os:Machine.Popcorn_shm ~hw_model:shared small_is in
  let s = run ~os:Machine.Stramash_kernel_os ~hw_model:shared small_is in
  Alcotest.(check bool) "popcorn sends many messages" true (p.Runner.messages > 100);
  Alcotest.(check bool) "popcorn replicates many pages" true (p.Runner.replicated_pages > 20);
  let msg_reduction = 1.0 -. (float_of_int s.Runner.messages /. float_of_int p.Runner.messages) in
  let page_reduction =
    1.0 -. (float_of_int s.Runner.replicated_pages /. float_of_int (max p.Runner.replicated_pages 1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "message reduction > 90%% (got %.3f)" msg_reduction)
    true (msg_reduction > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "page reduction > 90%% (got %.3f)" page_reduction)
    true (page_reduction > 0.9)

(* ---------- Fig. 12 shape ---------- *)

let test_fig12_monotone_and_extremes () =
  let ratios = H.Micro_experiments.fig12_ratios ~pages:32 ~lines:[ 1; 8; 64 ] () in
  (match ratios with
  | [ (1, r1); (8, r8); (64, r64) ] ->
      Alcotest.(check bool) (Printf.sprintf "1-line ratio large (%.0f)" r1) true (r1 > 20.0);
      Alcotest.(check bool) "monotone decreasing" true (r1 > r8 && r8 > r64);
      Alcotest.(check bool) (Printf.sprintf "full-page ratio small (%.1f)" r64) true (r64 < 8.0)
  | _ -> Alcotest.fail "unexpected ratio list")

(* ---------- Fig. 13 shape ---------- *)

let test_fig13_futex_ordering () =
  let walls = H.Micro_experiments.fig13_walls ~loops:100 in
  let get label =
    match List.find_opt (fun (l, _) -> l = label) walls with
    | Some (_, w) -> w
    | None -> Alcotest.fail ("missing " ^ label)
  in
  let popcorn = get "popcorn-shm (origin-managed)" in
  let regular = get "stramash regular (no futex opt)" in
  let optimized = get "stramash futex-optimized" in
  Alcotest.(check bool) "optimized fastest" true (optimized < regular);
  Alcotest.(check bool) "regular beats popcorn (shared pages already help)" true
    (regular < popcorn)

let test_fig13_scales_linearly () =
  let wall loops =
    List.assoc "stramash futex-optimized" (H.Micro_experiments.fig13_walls ~loops)
  in
  let w100 = wall 100 and w400 = wall 400 in
  let ratio = float_of_int w400 /. float_of_int w100 in
  Alcotest.(check bool) (Printf.sprintf "4x loops ~ 4x time (got %.2f)" ratio) true
    (ratio > 2.5 && ratio < 6.0)

(* ---------- Fig. 7 / Fig. 8 validation bounds ---------- *)

let test_fig7_error_bounds () =
  let errors = H.Validation.fig7_errors () in
  List.iter
    (fun (label, err) ->
      Alcotest.(check bool) (Printf.sprintf "%s < 13%% (got %.3f)" label err) true (err < 0.13))
    errors;
  let avg = List.fold_left (fun a (_, e) -> a +. e) 0.0 errors /. float_of_int (List.length errors) in
  Alcotest.(check bool) (Printf.sprintf "average < 8%% (got %.3f)" avg) true (avg < 0.08)

let test_fig8_gap_bounds () =
  let gaps = H.Validation.fig8_gaps () in
  List.iter
    (fun (label, gap) ->
      Alcotest.(check bool) (Printf.sprintf "%s < 6%% (got %.3f)" label gap) true (gap < 0.06))
    gaps

(* ---------- Fig. 14 shape ---------- *)

let test_fig14_speedups () =
  let speedups = H.Redis_experiment.speedups ~requests:500 () in
  List.iter
    (fun (op, shm, str) ->
      Alcotest.(check bool) (op ^ " shm >= 1") true (shm >= 1.0);
      Alcotest.(check bool) (op ^ " stramash >= shm") true (str >= shm))
    speedups;
  let max_str = List.fold_left (fun a (_, _, s) -> Float.max a s) 0.0 speedups in
  Alcotest.(check bool) (Printf.sprintf "peak stramash speedup ~ 10-15x (got %.1f)" max_str) true
    (max_str > 8.0 && max_str < 18.0)

(* ---------- memory-access microbenchmark shape (Fig. 11) ---------- *)

let test_fig11_warm_reads () =
  let spec_warm = W.Micro_memaccess.spec W.Micro_memaccess.Remote_access_origin_warm in
  let span os =
    let machine = Machine.create { Machine.default_config with os; hw_model = shared } in
    let proc, thread = Machine.load machine spec_warm in
    let r = Runner.run machine proc thread spec_warm in
    Runner.phase_span r ~start:W.Micro_memaccess.measure_start ~stop:W.Micro_memaccess.measure_stop
  in
  (* warmed re-read: SHM reads local replicas, Stramash still reaches back
     to remote memory on cache misses — the paper's "No Cold" takeaway *)
  Alcotest.(check bool) "warmed SHM beats warmed Stramash" true
    (span Machine.Popcorn_shm < span Machine.Stramash_kernel_os)

(* ---------- determinism ---------- *)

let test_runs_are_deterministic () =
  let snapshot () =
    let r = run ~os:Machine.Stramash_kernel_os ~hw_model:shared small_is in
    ( r.Runner.wall_cycles,
      r.Runner.node_cycles.(0),
      r.Runner.node_cycles.(1),
      r.Runner.instructions,
      r.Runner.messages,
      r.Runner.replicated_pages )
  in
  let a = snapshot () and b = snapshot () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_extension_kernels_follow_the_pattern () =
  (* LU/SP: in-place update kernels, strong fused-kernel cases; EP:
     compute-bound, OS-insensitive *)
  let wall ~os spec = (run ~os ~hw_model:shared spec).Runner.wall_cycles in
  let lu = W.Npb_lu.spec ~params:{ W.Npb_lu.n = 12; iterations = 2 } () in
  Alcotest.(check bool) "LU: stramash beats popcorn-shm" true
    (wall ~os:Machine.Stramash_kernel_os lu < wall ~os:Machine.Popcorn_shm lu);
  let ep = W.Npb_ep.spec ~params:{ W.Npb_ep.samples = 30_000; iterations = 2 } () in
  let ep_str = wall ~os:Machine.Stramash_kernel_os ep in
  let ep_shm = wall ~os:Machine.Popcorn_shm ep in
  let gap = Float.abs (float_of_int ep_str -. float_of_int ep_shm) /. float_of_int ep_shm in
  Alcotest.(check bool)
    (Printf.sprintf "EP: OS designs within 10%% (gap %.3f)" gap)
    true (gap < 0.10)

let () =
  Alcotest.run "integration"
    [
      ( "fig9",
        [
          Alcotest.test_case "OS ordering + IS speedup" `Slow test_fig9_ordering_is;
          Alcotest.test_case "fully shared near vanilla" `Slow test_fully_shared_closest_to_vanilla;
        ] );
      ("table3", [ Alcotest.test_case "reductions" `Slow test_table3_reductions ]);
      ("fig12", [ Alcotest.test_case "granularity collapse" `Quick test_fig12_monotone_and_extremes ]);
      ( "fig13",
        [
          Alcotest.test_case "futex ordering" `Quick test_fig13_futex_ordering;
          Alcotest.test_case "linear scaling" `Quick test_fig13_scales_linearly;
        ] );
      ( "validation",
        [
          Alcotest.test_case "fig7 bounds" `Slow test_fig7_error_bounds;
          Alcotest.test_case "fig8 bounds" `Slow test_fig8_gap_bounds;
        ] );
      ("fig14", [ Alcotest.test_case "redis speedups" `Quick test_fig14_speedups ]);
      ("fig11", [ Alcotest.test_case "warm reads" `Quick test_fig11_warm_reads ]);
      ( "robustness",
        [
          Alcotest.test_case "determinism" `Slow test_runs_are_deterministic;
          Alcotest.test_case "extension kernels" `Slow test_extension_kernels_follow_the_pattern;
        ] );
    ]
